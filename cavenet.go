// Package cavenet is a Go reproduction of CAVENET, the Cellular Automaton
// based VEhicular NETwork simulation tool of Barolli et al. (ICDCS
// Workshops 2010).
//
// CAVENET separates vehicular-network simulation into two blocks:
//
//   - the Behavioural Analyzer generates and analyses vehicle mobility with
//     a 1-dimensional Nagel–Schreckenberg cellular automaton (fundamental
//     diagrams, space-time plots, stationarity and long-range-dependence
//     analysis);
//   - the Communication Protocol Simulator evaluates MANET routing
//     protocols (AODV, OLSR, DYMO) over those mobility patterns on an
//     IEEE 802.11 DCF / two-ray-ground network substrate.
//
// This package is the public facade. The quickstart:
//
//	res, err := cavenet.Run(cavenet.Scenario{Protocol: cavenet.DYMO, Seed: 1})
//	fmt.Println(res.TotalPDR())
//
// runs the paper's Table I scenario (30 vehicles on a 3000 m circuit, CBR
// traffic from nodes 1–8 to node 0) and returns the goodput and packet
// delivery metrics of Figs. 8–11.
package cavenet

import (
	"fmt"
	"io"

	"cavenet/internal/core"
	"cavenet/internal/mobility"
	"cavenet/internal/stats"
	"cavenet/internal/trace"
)

// Protocol names a routing protocol under test.
type Protocol = core.Protocol

// The routing protocols evaluated by the paper, plus the GPSR geographic
// baseline added for the urban road-network workloads.
const (
	AODV = core.AODV
	OLSR = core.OLSR
	DYMO = core.DYMO
	GPSR = core.GPSR
)

// Scenario configures a protocol evaluation; the zero value reproduces the
// paper's Table I exactly. See core.ScenarioConfig for every knob.
type Scenario = core.ScenarioConfig

// Result carries the evaluation outputs: per-sender goodput series
// (Figs. 8–10), PDR (Fig. 11), delays, routing overhead and MAC counters.
type Result = core.ScenarioResult

// Run executes one protocol scenario.
func Run(s Scenario) (*Result, error) { return core.RunScenario(s) }

// MobilitySource is the streaming mobility substrate: a forward-only
// cursor over node positions with O(nodes) retained state. A recorded
// *mobility.SampledTrace satisfies it, as do the live CA road, ns-2 and
// BonnMotion playback sources.
type MobilitySource = mobility.Source

// RunOnTrace executes a scenario over a caller-supplied mobility trace,
// e.g. one parsed from an ns-2 scenario file.
func RunOnTrace(s Scenario, t *mobility.SampledTrace) (*Result, error) {
	return core.RunScenarioOnTrace(s, t)
}

// RunOnSource executes a scenario over any mobility source — streaming
// (O(nodes) memory, closed-loop capable) or materialized.
func RunOnSource(s Scenario, src MobilitySource) (*Result, error) {
	return core.RunScenarioOnSource(s, src)
}

// Compare runs the same scenario (and the same mobility trace) once per
// protocol, the way the paper compares AODV, OLSR and DYMO.
func Compare(s Scenario, protocols []Protocol) (map[Protocol]*Result, error) {
	return core.CompareProtocols(s, protocols)
}

// SweepConfig spans a (node count × protocol × trial) experiment grid; see
// core.SweepConfig for the determinism contract.
type SweepConfig = core.SweepConfig

// SweepPoint is one aggregated (protocol, density) cell of a sweep.
type SweepPoint = core.SweepPoint

// Estimate is a mean ± spread summary of Monte-Carlo replications.
type Estimate = stats.Estimate

// Sweep executes a density × protocol × seed grid on the deterministic
// parallel experiment engine: replications run concurrently (one worker
// per core unless cfg.Workers says otherwise), every trial on its own
// forked RNG stream, and the aggregated output is bit-identical for any
// worker count.
func Sweep(cfg SweepConfig) ([]SweepPoint, error) { return core.Sweep(cfg) }

// CircuitTrace generates the Table I mobility input: vehicles on a ring
// ("circuit") driven by the NaS cellular automaton, recorded after warmup.
func CircuitTrace(s Scenario) (*mobility.SampledTrace, error) {
	return core.BuildCircuitTrace(s)
}

// ExportNS2 writes a mobility trace as an ns-2 scenario file, the coupling
// format of the paper's Fig. 3.
func ExportNS2(w io.Writer, t *mobility.SampledTrace) error {
	return trace.Write(w, trace.FromSampled(t))
}

// ImportNS2 parses an ns-2 scenario file into a sampled mobility trace.
// interval and duration (seconds) control the re-sampling of the setdest
// playback.
func ImportNS2(r io.Reader, interval, duration float64) (*mobility.SampledTrace, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("cavenet: non-positive sample interval %v", interval)
	}
	script, err := trace.Parse(r)
	if err != nil {
		return nil, err
	}
	if len(script.Nodes) == 0 {
		return script.Sample(interval, duration), nil
	}
	src, err := script.Source(interval, duration)
	if err != nil {
		return nil, err
	}
	return mobility.Record(src), nil
}

// ImportNS2Source parses an ns-2 scenario file into a streaming mobility
// source: the setdest playback advances live as the simulation pulls
// positions, retaining O(nodes) state instead of the full re-sampled
// matrix. Bit-identical to running on the ImportNS2 trace.
func ImportNS2Source(r io.Reader, interval, duration float64) (MobilitySource, error) {
	script, err := trace.Parse(r)
	if err != nil {
		return nil, err
	}
	return script.Source(interval, duration)
}
