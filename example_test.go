package cavenet_test

import (
	"fmt"

	"cavenet"
	"cavenet/internal/sim"
)

// ExampleRun executes a reduced Table I scenario and prints the delivery
// ratio. (The paper's full scenario is the Scenario zero value; this one is
// shrunk so the example runs instantly.)
func ExampleRun() {
	res, err := cavenet.Run(cavenet.Scenario{
		Protocol:      cavenet.DYMO,
		Nodes:         10,
		CircuitMeters: 1000,
		SimTime:       20 * sim.Second,
		Senders:       []int{1},
		TrafficStart:  5 * sim.Second,
		TrafficStop:   15 * sim.Second,
		CAWarmup:      50,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("sender 1 sent %d packets, PDR %.2f\n", res.Sent[1], res.PDR[1])
	// Output: sender 1 sent 50 packets, PDR 1.00
}

// ExampleFundamentalDiagram sweeps the deterministic flow-density curve and
// prints the free-flow branch, which is exactly J = v_max·ρ.
func ExampleFundamentalDiagram() {
	pts, err := cavenet.FundamentalDiagram(cavenet.FundamentalConfig{
		LaneLength: 100,
		Densities:  []float64{0.05, 0.1},
		Trials:     3,
		Iterations: 100,
		Warmup:     100,
		Seed:       1,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range pts {
		fmt.Printf("rho=%.2f J=%.2f\n", p.Density, p.Flow)
	}
	// Output:
	// rho=0.05 J=0.25
	// rho=0.10 J=0.50
}

// ExampleTransientTime shows the stationarity diagnostic on a toy series.
func ExampleTransientTime() {
	series := []float64{0, 1, 2, 3, 4, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5}
	fmt.Println(cavenet.TransientTime(series, 3))
	// Output: 5
}
