package cavenet

import (
	"testing"

	"cavenet/internal/sim"
	"cavenet/internal/stats"
)

// Tests for the future-work extensions (§V of the paper) exposed through
// the public API.

func TestStationaryRWHasNoDecay(t *testing.T) {
	cfg := RWDecayConfig{Nodes: 300, VMin: 0.1, VMax: 20, Duration: 2000, Seed: 9}
	_, decaying := RandomWaypointDecay(cfg)
	_, stationary := RandomWaypointStationary(cfg)

	meanOf := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	tenth := len(decaying) / 10
	// The classical model decays: last tenth clearly below first tenth.
	if head, tail := meanOf(decaying[:tenth]), meanOf(decaying[len(decaying)-tenth:]); tail > head*0.85 {
		t.Fatalf("classical RW should decay: head %v tail %v", head, tail)
	}
	// The perfect-simulation variant starts at the steady state: first and
	// last tenths agree within a few percent.
	head, tail := meanOf(stationary[:tenth]), meanOf(stationary[len(stationary)-tenth:])
	ratio := tail / head
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("stationary RW drifted: head %v tail %v", head, tail)
	}
	// And its level matches the theoretical stationary mean
	// E[V] = (vmax-vmin)/ln(vmax/vmin) ≈ 3.76 m/s for [0.1, 20].
	theory := (20.0 - 0.1) / 5.2983 // ln(200)
	if overall := meanOf(stationary); overall < theory*0.85 || overall > theory*1.15 {
		t.Fatalf("stationary mean %v, theory %v", overall, theory)
	}
}

func TestTopologyAnalysisOnCircuitTrace(t *testing.T) {
	tr, err := CircuitTrace(Scenario{
		Nodes: 15, CircuitMeters: 1500, SimTime: 30 * sim.Second, CAWarmup: 100, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := AnalyzeTopology(tr, 250)
	if st.MeanDegree <= 0 {
		t.Fatal("circuit trace should have connectivity")
	}
	// 15 vehicles on 1.5 km with 250 m range: dense; links change but the
	// platoon structure keeps the rate moderate.
	if st.ChangeRate < 0 {
		t.Fatal("negative change rate")
	}
	if st.MeanLinkUpSeconds < 0 {
		t.Fatal("negative link lifetime")
	}
}

func TestInterferenceExperimentShape(t *testing.T) {
	res, err := Interference(InterferenceConfig{
		LaneLengthMeters: 1500,
		VehiclesPerLane:  10,
		SimTime:          30 * sim.Second,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1-b's point: the opposite lane's transmissions cost something —
	// at minimum, substantially more MAC retries on the shared channel.
	if res.InterferedRetries <= res.QuietRetries {
		t.Fatalf("interference should add retries: %d vs %d",
			res.InterferedRetries, res.QuietRetries)
	}
	if res.QuietPDR <= 0 {
		t.Fatal("primary flow dead even without interference")
	}
	if res.InterferedPDR > res.QuietPDR+0.05 {
		t.Fatalf("interfered PDR %v should not beat quiet PDR %v",
			res.InterferedPDR, res.QuietPDR)
	}
}

func TestRTSCTSScenarioOption(t *testing.T) {
	cfg := Scenario{
		Protocol:      DYMO,
		Nodes:         10,
		CircuitMeters: 1000,
		SimTime:       20 * sim.Second,
		Senders:       []int{1, 2},
		TrafficStart:  5 * sim.Second,
		TrafficStop:   15 * sim.Second,
		CAWarmup:      50,
		Seed:          6,
		RTSThreshold:  256,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MACStats.RTSTx == 0 || res.MACStats.CTSTx == 0 {
		t.Fatalf("RTS/CTS not exercised: %+v", res.MACStats)
	}
	if res.TotalPDR() <= 0 {
		t.Fatal("no delivery with RTS/CTS enabled")
	}
}

func TestVelocitySeriesIsLRDConsistent(t *testing.T) {
	// Cross-check the two LRD indicators on the same public-API series:
	// ACF partial sums growing and Hurst > 0.5 must co-occur near the
	// critical density.
	series, err := VelocitySeries(VelocityConfig{
		Density: 0.1, SlowdownP: 0.5, Steps: 4096, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	series = series[512:]
	sum50 := stats.ACFSum(series, 50)
	sum500 := stats.ACFSum(series, 500)
	if sum500 <= sum50 {
		t.Fatalf("ACF partial sums not growing (%v → %v); inconsistent with LRD", sum50, sum500)
	}
	if h := Hurst(series); h < 0.7 {
		t.Fatalf("Hurst %v inconsistent with LRD", h)
	}
}
