package cavenet

import (
	"strings"
	"testing"

	"cavenet/internal/sim"
)

func quickScenario(p Protocol) Scenario {
	return Scenario{
		Protocol:      p,
		Nodes:         10,
		CircuitMeters: 1000,
		SimTime:       20 * sim.Second,
		Senders:       []int{1, 2},
		TrafficStart:  5 * sim.Second,
		TrafficStop:   15 * sim.Second,
		CAWarmup:      50,
		Seed:          3,
	}
}

func TestRunQuickstart(t *testing.T) {
	res, err := Run(quickScenario(DYMO))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPDR() <= 0 {
		t.Fatal("no packets delivered in quickstart scenario")
	}
}

func TestCompareFacade(t *testing.T) {
	out, err := Compare(quickScenario(AODV), []Protocol{AODV, OLSR, DYMO})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("results = %d", len(out))
	}
}

func TestNS2RoundTripThroughFacade(t *testing.T) {
	trace, err := CircuitTrace(quickScenario(AODV))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ExportNS2(&sb, trace); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "$node_(0) set X_") {
		t.Fatal("export does not look like an ns-2 scenario")
	}
	back, err := ImportNS2(strings.NewReader(sb.String()), 1, trace.Duration())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != trace.NumNodes() {
		t.Fatalf("round trip lost nodes: %d vs %d", back.NumNodes(), trace.NumNodes())
	}
	// Running the scenario on the re-imported trace must work end to end —
	// the paper's BA→file→CPS pipeline.
	res, err := RunOnTrace(quickScenario(DYMO), back)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPDR() <= 0 {
		t.Fatal("scenario on re-imported trace delivered nothing")
	}
}

func TestAnalysisFacade(t *testing.T) {
	pts, err := FundamentalDiagram(FundamentalConfig{
		LaneLength: 100, Trials: 2, Iterations: 50, Seed: 1,
	})
	if err != nil || len(pts) == 0 {
		t.Fatalf("fundamental diagram: %v", err)
	}
	rows, err := SpaceTime(SpaceTimeConfig{Density: 0.2, SlowdownP: 0.3, Steps: 10, Seed: 1})
	if err != nil || len(rows) != 10 {
		t.Fatalf("space-time: %v", err)
	}
	series, err := VelocitySeries(VelocityConfig{Density: 0.1, SlowdownP: 0.3, Steps: 100, Seed: 1})
	if err != nil || len(series) != 100 {
		t.Fatalf("velocity: %v", err)
	}
	if got := Autocorrelation(series, 10); len(got) != 11 {
		t.Fatalf("acf len = %d", len(got))
	}
	if h := Hurst(series); h <= 0 || h > 1.5 {
		t.Fatalf("hurst = %v", h)
	}
	if tau := TransientTime(series, 3); tau < 0 || tau > 100 {
		t.Fatalf("tau = %d", tau)
	}
	spec, err := Periodogram(VelocityConfig{Density: 0.1, SlowdownP: 0.5, Steps: 1024, Seed: 1})
	if err != nil || len(spec.Spectrum.Freq) == 0 {
		t.Fatalf("periodogram: %v", err)
	}
	res, err := Transient(VelocityConfig{Density: 0.1, SlowdownP: 0, Steps: 500, Seed: 1})
	if err != nil || len(res.Series) != 500 {
		t.Fatalf("transient: %v", err)
	}
	tr, vel := RandomWaypointDecay(RWDecayConfig{Nodes: 10, Duration: 100, Seed: 1})
	if tr.NumNodes() != 10 || len(vel) == 0 {
		t.Fatal("rw decay facade broken")
	}
}
