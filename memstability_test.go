package cavenet

import (
	"math/rand"
	"runtime"
	"testing"

	"cavenet/internal/ca"
	"cavenet/internal/fault"
	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
	"cavenet/internal/netsim"
	"cavenet/internal/routing/aodv"
	"cavenet/internal/routing/dymo"
	"cavenet/internal/routing/olsr"
	"cavenet/internal/scenario/check"
	"cavenet/internal/sim"
	"cavenet/internal/traffic"
)

// Memory-stability tests for the lazy-expiry control plane: over a long
// run at fixed density, dedup and topology table sizes (and the expiry-heap
// backlogs behind them) must hold steady — the lazy heaps actually reclaim
// entries between purges instead of letting seen/dups grow without bound.

// gridPositions lays nodes on a connected grid at the given spacing.
func gridPositions(n int, cols int, spacing float64) []geometry.Vec2 {
	out := make([]geometry.Vec2, n)
	for i := range out {
		out[i] = geometry.Vec2{X: float64(i%cols) * spacing, Y: float64(i/cols) * spacing}
	}
	return out
}

// retainedHeap runs f, garbage-collects, and reports how much heap the
// value f returned keeps retained (net of the pre-existing baseline).
func retainedHeap(t *testing.T, f func() any) (any, uint64) {
	t.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	keep := f()
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc < before.HeapAlloc {
		return keep, 0
	}
	return keep, after.HeapAlloc - before.HeapAlloc
}

// metroRoad builds a 10k-vehicle single-ring road (40k cells keeps the
// same 0.25 density regime as the metro workload) with a fixed seed so
// the recorded and streamed measurements drive identical CA dynamics.
func metroRoad(t *testing.T) *ca.Road {
	t.Helper()
	road, err := ca.NewRoad([]ca.LaneSpec{{
		Config: ca.Config{Length: 40000, Vehicles: 10000, SlowdownP: 0.3, Boundary: ca.RingBoundary},
		Placement: geometry.Ring{
			Center:        geometry.Vec2{X: 150000, Y: 150000},
			Circumference: 300000,
		},
	}}, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	return road
}

// TestMobilityMemoryScalesWithNodesNotSamples is the streaming-mobility
// memory claim at N=10k: driving a live road source across a 300 s
// horizon retains O(nodes) heap (two interpolation rows plus the CA
// state), while recording the same road grows O(nodes × samples). The
// recorded trace for this configuration is ~10k × 301 positions ≈ 48 MB;
// the source must stay at least an order of magnitude below it.
func TestMobilityMemoryScalesWithNodesNotSamples(t *testing.T) {
	const steps = 300
	const horizon = float64(steps) // seconds; CA samples are 1 s apart

	recordedKeep, recordedBytes := retainedHeap(t, func() any {
		return mobility.RecordRoad(metroRoad(t), steps)
	})

	streamedKeep, streamedBytes := retainedHeap(t, func() any {
		src, err := mobility.NewRoadSource(mobility.RoadSourceConfig{Road: metroRoad(t), Steps: steps})
		if err != nil {
			t.Fatal(err)
		}
		// Drive the source across the whole horizon at the world's tick
		// granularity, like a live run would.
		for tick := 0; float64(tick)*0.1 <= horizon; tick++ {
			tsec := float64(tick) * 0.1
			for n := 0; n < src.NumNodes(); n++ {
				src.At(n, tsec)
			}
		}
		return src
	})

	trace := recordedKeep.(*mobility.SampledTrace)
	if trace.NumNodes() != 10000 || trace.NumSamples() != steps+1 {
		t.Fatalf("recorded trace is %d x %d, expected 10000 x %d", trace.NumNodes(), trace.NumSamples(), steps+1)
	}
	// Sanity-floor the recorded measurement against its known payload so a
	// GC accounting glitch cannot make the comparison vacuous.
	if minRecorded := uint64(trace.NumNodes()*trace.NumSamples()) * 16; recordedBytes < minRecorded {
		t.Fatalf("recorded path retained %d B, below its own %d B position payload — measurement broken", recordedBytes, minRecorded)
	}
	if streamedBytes*10 > recordedBytes {
		t.Fatalf("streamed mobility retained %d B vs %d B recorded — not O(nodes) anymore", streamedBytes, recordedBytes)
	}
	runtime.KeepAlive(streamedKeep)
	runtime.KeepAlive(recordedKeep)
}

func TestOLSRTableSizesSteadyOverLongRun(t *testing.T) {
	const n = 12
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: n, Seed: 5, Static: gridPositions(n, 4, 180),
	}, func(node *netsim.Node) netsim.Router {
		// A short DupHold so the dedup steady state is reached well inside
		// the measurement window.
		return olsr.New(node, olsr.Config{DupHold: 5 * sim.Second})
	})
	if err != nil {
		t.Fatal(err)
	}
	var mid [n]olsr.TableStats
	w.Kernel.Schedule(30*sim.Second, func() {
		for i := 0; i < n; i++ {
			mid[i] = w.Node(i).Router().(*olsr.Router).TableStats()
		}
	})
	w.Run(60 * sim.Second)

	for i := 0; i < n; i++ {
		end := w.Node(i).Router().(*olsr.Router).TableStats()
		if mid[i].Dups == 0 || mid[i].Topology == 0 {
			t.Fatalf("node %d: no control state at mid-run: %+v", i, mid[i])
		}
		// Steady state: a fixed topology holds table sizes flat; allow a
		// small slack for tick phase.
		checks := []struct {
			name     string
			mid, end int
		}{
			{"dups", mid[i].Dups, end.Dups},
			{"topology", mid[i].Topology, end.Topology},
			{"twohop", mid[i].TwoHop, end.TwoHop},
			{"links", mid[i].Links, end.Links},
			{"heap", mid[i].HeapItems, end.HeapItems},
		}
		for _, c := range checks {
			if c.end > c.mid+c.mid/2+4 {
				t.Errorf("node %d: %s grew %d → %d over the second half of the run",
					i, c.name, c.mid, c.end)
			}
		}
	}
}

func TestDYMOSeenTableSteadyOverLongRun(t *testing.T) {
	const n = 10
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: n, Seed: 11, Static: gridPositions(n, 5, 180),
	}, func(node *netsim.Node) netsim.Router {
		return dymo.New(node, dymo.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sparse single packets with idle gaps longer than the 5 s route
	// timeout: every send triggers a fresh RREQ flood, so dedup entries
	// keep arriving for the whole run.
	sink := &traffic.Sink{}
	w.Node(0).AttachPort(netsim.PortCBR, sink)
	for s := 1; s < n; s++ {
		for at := sim.Time(s) * sim.Second; at < 55*sim.Second; at += 8 * sim.Second {
			src := w.Node(s)
			w.Kernel.Schedule(at, func() {
				src.SendData(src.NewPacket(0, netsim.PortCBR, 128))
			})
		}
	}
	// Sample the per-node dedup-table sizes once per second; with a 10 s
	// entry hold and a steady discovery rate, the table must plateau, not
	// track the cumulative flood count.
	peak := make([]int, n)
	var tick func()
	tick = func() {
		for i := 0; i < n; i++ {
			if s := w.Node(i).Router().(*dymo.Router).SeenEntries(); s > peak[i] {
				peak[i] = s
			}
		}
		if w.Kernel.Now() < 60*sim.Second {
			w.Kernel.After(sim.Second, tick)
		}
	}
	w.Kernel.Schedule(0, tick)
	w.Run(60 * sim.Second)

	anyTraffic := false
	for i := 0; i < n; i++ {
		if peak[i] > 0 {
			anyTraffic = true
		}
		end := w.Node(i).Router().(*dymo.Router).SeenEntries()
		// ~9 senders × one RREQ try set per 8 s × 10 s hold ⇒ a steady
		// state of a couple dozen entries; the cumulative flood count over
		// the run is several times that, so a leak would blow through this.
		if peak[i] > 60 {
			t.Errorf("node %d: dymo seen table peaked at %d entries (lazy expiry not reclaiming)", i, peak[i])
		}
		if end > peak[i] {
			t.Errorf("node %d: seen table still growing at end of run: %d > peak %d", i, end, peak[i])
		}
	}
	if !anyTraffic {
		t.Fatal("scenario generated no route discoveries; test is vacuous")
	}
}

// dataPlaneSteadyAtScale is the N=1000 steady-state pin behind
// TestAODVDataPlaneSteadyAtScale and TestDYMODataPlaneSteadyAtScale: on a
// static 25×40 grid with four long-lived CBR flows, the second minute of
// the run must allocate no more than the first (discovery floods, table
// growth and pool fills all happen up front; steady forwarding reuses
// dense table slots and pooled packets) and must not grow the retained
// heap beyond a small settle margin.
func dataPlaneSteadyAtScale(t *testing.T, factory netsim.RouterFactory) {
	const (
		n      = 1000
		window = 60 * sim.Second
	)
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: n, Seed: 7, Static: gridPositions(n, 25, 180),
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	sink := &traffic.Sink{}
	w.Node(0).AttachPort(netsim.PortCBR, sink)
	// Senders 2–10 hops out; every flow outlives both windows, so the
	// traffic offered to the second minute is identical to the first.
	for _, s := range []int{55, 130, 260, 380} {
		traffic.NewCBR(w.Node(s), traffic.CBRConfig{
			Dst: 0, PacketBytes: 128, Rate: 5, Stop: 2 * window,
		}).Start()
	}

	var ms runtime.MemStats
	measure := func() (mallocs uint64, retained uint64) {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		return ms.Mallocs, ms.HeapAlloc
	}
	m0, _ := measure()
	w.Run(window)
	m1, r1 := measure()
	w.Run(2 * window)
	m2, r2 := measure()

	if sink.Received == 0 {
		t.Fatal("no packets delivered; the pin is vacuous")
	}
	warm, steady := m1-m0, m2-m1
	if steady > warm+warm/10 {
		t.Fatalf("steady minute allocated %d objects vs %d during warm-up — the data plane is allocating per packet", steady, warm)
	}
	if r2 > r1+r1/4+1<<20 {
		t.Fatalf("retained heap grew %d B → %d B over the steady minute", r1, r2)
	}
}

func TestAODVDataPlaneSteadyAtScale(t *testing.T) {
	dataPlaneSteadyAtScale(t, func(node *netsim.Node) netsim.Router {
		return aodv.New(node, aodv.Config{})
	})
}

func TestDYMODataPlaneSteadyAtScale(t *testing.T) {
	dataPlaneSteadyAtScale(t, func(node *netsim.Node) netsim.Router {
		return dymo.New(node, dymo.Config{})
	})
}

// TestLedgerMemoryBoundedUnderChurn pins the invariant harness's own
// streaming discipline in the regime fault injection makes hardest: node
// churn keeps crashing custodians mid-flow, so packets terminate through
// every path the ledger knows — deliveries, link failures, node:down
// flushes. The live entry count must track packets in flight (plus the
// settle-grace tail), not packets ever sent, and compaction must actually
// retire entries while the run is still churning.
func TestLedgerMemoryBoundedUnderChurn(t *testing.T) {
	const (
		n       = 16
		horizon = 120 * sim.Second
	)
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: n, Seed: 3, Static: gridPositions(n, 4, 180),
	}, func(node *netsim.Node) netsim.Router {
		return dymo.New(node, dymo.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	report := check.NewReport()
	ledger := check.NewLedger(report)
	w.AddHooks(ledger.Hooks())

	plan, err := fault.Spec{ChurnRatePerMin: 4, ChurnDownSec: 2}.Build(3, n, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Empty() {
		t.Fatal("churn plan is empty; the test is vacuous")
	}
	if err := fault.Apply(w, plan); err != nil {
		t.Fatal(err)
	}

	sink := &traffic.Sink{}
	w.Node(0).AttachPort(netsim.PortCBR, sink)
	for _, s := range []int{3, 6, 10, 15} {
		traffic.NewCBR(w.Node(s), traffic.CBRConfig{
			Dst: 0, PacketBytes: 128, Rate: 5, Stop: horizon,
		}).Start()
	}

	peak := 0
	var tick func()
	tick = func() {
		if a := ledger.Active(); a > peak {
			peak = a
		}
		if w.Kernel.Now() < horizon {
			w.Kernel.After(sim.Second, tick)
		}
	}
	w.Kernel.Schedule(0, tick)
	w.Run(horizon)
	ledger.Finish(w)

	if !report.Ok() {
		t.Fatalf("churn run violates conservation:\n%s", report)
	}
	sent, _, _ := ledger.Counts()
	if sent < 1000 {
		t.Fatalf("only %d packets originated; the pin is vacuous", sent)
	}
	if ledger.Retired() == 0 {
		t.Fatal("compaction retired nothing over a two-minute churn run")
	}
	// In flight plus the 10 s settle-grace tail at 20 packets/s is a few
	// hundred entries; O(packets ever sent) would be several thousand.
	if bound := int(sent / 3); peak > bound {
		t.Fatalf("ledger peaked at %d live entries for %d sent packets — growing with history, not in-flight", peak, sent)
	}
	if peak > 900 {
		t.Fatalf("ledger peaked at %d live entries; want the in-flight+grace envelope (<= 900)", peak)
	}
}
