package cavenet

import (
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/netsim"
	"cavenet/internal/routing/dymo"
	"cavenet/internal/routing/olsr"
	"cavenet/internal/sim"
	"cavenet/internal/traffic"
)

// Memory-stability tests for the lazy-expiry control plane: over a long
// run at fixed density, dedup and topology table sizes (and the expiry-heap
// backlogs behind them) must hold steady — the lazy heaps actually reclaim
// entries between purges instead of letting seen/dups grow without bound.

// gridPositions lays nodes on a connected grid at the given spacing.
func gridPositions(n int, cols int, spacing float64) []geometry.Vec2 {
	out := make([]geometry.Vec2, n)
	for i := range out {
		out[i] = geometry.Vec2{X: float64(i%cols) * spacing, Y: float64(i/cols) * spacing}
	}
	return out
}

func TestOLSRTableSizesSteadyOverLongRun(t *testing.T) {
	const n = 12
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: n, Seed: 5, Static: gridPositions(n, 4, 180),
	}, func(node *netsim.Node) netsim.Router {
		// A short DupHold so the dedup steady state is reached well inside
		// the measurement window.
		return olsr.New(node, olsr.Config{DupHold: 5 * sim.Second})
	})
	if err != nil {
		t.Fatal(err)
	}
	var mid [n]olsr.TableStats
	w.Kernel.Schedule(30*sim.Second, func() {
		for i := 0; i < n; i++ {
			mid[i] = w.Node(i).Router().(*olsr.Router).TableStats()
		}
	})
	w.Run(60 * sim.Second)

	for i := 0; i < n; i++ {
		end := w.Node(i).Router().(*olsr.Router).TableStats()
		if mid[i].Dups == 0 || mid[i].Topology == 0 {
			t.Fatalf("node %d: no control state at mid-run: %+v", i, mid[i])
		}
		// Steady state: a fixed topology holds table sizes flat; allow a
		// small slack for tick phase.
		checks := []struct {
			name     string
			mid, end int
		}{
			{"dups", mid[i].Dups, end.Dups},
			{"topology", mid[i].Topology, end.Topology},
			{"twohop", mid[i].TwoHop, end.TwoHop},
			{"links", mid[i].Links, end.Links},
			{"heap", mid[i].HeapItems, end.HeapItems},
		}
		for _, c := range checks {
			if c.end > c.mid+c.mid/2+4 {
				t.Errorf("node %d: %s grew %d → %d over the second half of the run",
					i, c.name, c.mid, c.end)
			}
		}
	}
}

func TestDYMOSeenTableSteadyOverLongRun(t *testing.T) {
	const n = 10
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: n, Seed: 11, Static: gridPositions(n, 5, 180),
	}, func(node *netsim.Node) netsim.Router {
		return dymo.New(node, dymo.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sparse single packets with idle gaps longer than the 5 s route
	// timeout: every send triggers a fresh RREQ flood, so dedup entries
	// keep arriving for the whole run.
	sink := &traffic.Sink{}
	w.Node(0).AttachPort(netsim.PortCBR, sink)
	for s := 1; s < n; s++ {
		for at := sim.Time(s) * sim.Second; at < 55*sim.Second; at += 8 * sim.Second {
			src := w.Node(s)
			w.Kernel.Schedule(at, func() {
				src.SendData(src.NewPacket(0, netsim.PortCBR, 128))
			})
		}
	}
	// Sample the per-node dedup-table sizes once per second; with a 10 s
	// entry hold and a steady discovery rate, the table must plateau, not
	// track the cumulative flood count.
	peak := make([]int, n)
	var tick func()
	tick = func() {
		for i := 0; i < n; i++ {
			if s := w.Node(i).Router().(*dymo.Router).SeenEntries(); s > peak[i] {
				peak[i] = s
			}
		}
		if w.Kernel.Now() < 60*sim.Second {
			w.Kernel.After(sim.Second, tick)
		}
	}
	w.Kernel.Schedule(0, tick)
	w.Run(60 * sim.Second)

	anyTraffic := false
	for i := 0; i < n; i++ {
		if peak[i] > 0 {
			anyTraffic = true
		}
		end := w.Node(i).Router().(*dymo.Router).SeenEntries()
		// ~9 senders × one RREQ try set per 8 s × 10 s hold ⇒ a steady
		// state of a couple dozen entries; the cumulative flood count over
		// the run is several times that, so a leak would blow through this.
		if peak[i] > 60 {
			t.Errorf("node %d: dymo seen table peaked at %d entries (lazy expiry not reclaiming)", i, peak[i])
		}
		if end > peak[i] {
			t.Errorf("node %d: seen table still growing at end of run: %d > peak %d", i, end, peak[i])
		}
	}
	if !anyTraffic {
		t.Fatal("scenario generated no route discoveries; test is vacuous")
	}
}
