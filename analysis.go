package cavenet

import (
	"cavenet/internal/core"
	"cavenet/internal/metrics"
	"cavenet/internal/mobility"
	"cavenet/internal/rng"
	"cavenet/internal/stats"
)

// This file exposes the Behavioural Analyzer half of CAVENET: the traffic
// experiments of §IV-A/§IV-B (Figs. 4–7) and the supporting estimators.

// FundamentalConfig parameterizes a Fig. 4 flow-density sweep.
type FundamentalConfig = core.FundamentalConfig

// FundamentalPoint is one (density, flow) sample with its ensemble spread.
type FundamentalPoint = core.FundamentalPoint

// FundamentalDiagram reproduces Fig. 4: the traffic flow J = ρ·v̄ as a
// function of density, ensemble-averaged over Monte-Carlo trials.
func FundamentalDiagram(cfg FundamentalConfig) ([]FundamentalPoint, error) {
	return core.FundamentalDiagram(cfg)
}

// SpaceTimeConfig parameterizes one Fig. 5 space-time panel.
type SpaceTimeConfig = core.SpaceTimeConfig

// SpaceTime reproduces a Fig. 5 panel: one row per step, -1 for empty
// sites, otherwise the vehicle velocity. Render with plotting of choice or
// the cavenet CLI.
func SpaceTime(cfg SpaceTimeConfig) ([][]int, error) {
	return core.SpaceTimePlot(cfg)
}

// VelocityConfig parameterizes a mean-velocity realization (Figs. 6, 7).
type VelocityConfig = core.VelocityConfig

// VelocitySeries reproduces a Fig. 6 sample path of the average velocity.
func VelocitySeries(cfg VelocityConfig) ([]float64, error) {
	return core.VelocityRealization(cfg)
}

// SpectrumResult bundles a periodogram with its long-range-dependence
// indicators (GPH slope near the origin, R/S Hurst exponent).
type SpectrumResult = core.SpectrumResult

// Periodogram reproduces a Fig. 7 panel: the spectrum of v̄(t) with LRD
// diagnostics. The deterministic model (p=0) yields a flat origin (SRD);
// the stochastic model at low density diverges 1/f-like (LRD).
func Periodogram(cfg VelocityConfig) (SpectrumResult, error) {
	return core.PeriodogramAnalysis(cfg)
}

// TransientResult reports the estimated transient length of a velocity
// series by two independent detectors.
type TransientResult = core.TransientResult

// Transient measures the §IV-B transient time τ from a compact-jam start.
func Transient(cfg VelocityConfig) (TransientResult, error) {
	return core.TransientAnalysis(cfg)
}

// RWDecayConfig parameterizes the Random Waypoint contrast experiment.
type RWDecayConfig = core.RWDecayConfig

// RandomWaypointDecay runs the classical Random Waypoint model and returns
// its mobility trace plus the mean-velocity series, which exhibits the
// velocity-decay problem the paper contrasts with the CA model (§IV-B).
func RandomWaypointDecay(cfg RWDecayConfig) (*mobility.SampledTrace, []float64) {
	return core.RandomWaypointDecay(cfg)
}

// Autocorrelation exposes the SRD/LRD diagnostic of the paper's footnote 2:
// the normalized autocorrelation of a series up to maxLag.
func Autocorrelation(series []float64, maxLag int) []float64 {
	return stats.Autocorrelation(series, maxLag)
}

// Hurst estimates the Hurst exponent of a series by rescaled-range
// analysis (≈0.5 short-range dependent, →1 long-range dependent).
func Hurst(series []float64) float64 { return stats.HurstRS(series) }

// TransientTime estimates how many initial samples of a series belong to
// the transient (see stats.TransientTime).
func TransientTime(series []float64, tol float64) int {
	return stats.TransientTime(series, tol)
}

// RandomWaypointStationary runs the RW model initialized in its stationary
// regime ("perfect simulation", the paper's reference [2]): speeds sampled
// from the 1/v-weighted stationary distribution, nodes starting mid-trip.
// Its velocity series shows no decay, unlike RandomWaypointDecay's.
func RandomWaypointStationary(cfg RWDecayConfig) (*mobility.SampledTrace, []float64) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 50
	}
	if cfg.AreaX == 0 {
		cfg.AreaX = 1000
	}
	if cfg.AreaY == 0 {
		cfg.AreaY = 1000
	}
	if cfg.VMax == 0 {
		cfg.VMax = 20
	}
	if cfg.VMin == 0 {
		cfg.VMin = 0.1
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2000
	}
	return mobility.RandomWaypointStationary(mobility.RandomWaypointConfig{
		Nodes: cfg.Nodes,
		AreaX: cfg.AreaX,
		AreaY: cfg.AreaY,
		VMin:  cfg.VMin,
		VMax:  cfg.VMax,
	}, cfg.Duration, rng.NewSource(cfg.Seed).Stream("rw-stationary"))
}

// TopologyStats summarizes link dynamics over a mobility trace — the
// "topology change" metric the paper's §V defers to future work, plus the
// link-duration analysis of its refs [8][9].
type TopologyStats = metrics.TopologyStats

// AnalyzeTopology measures link-change rate, link lifetimes and mean node
// degree of a mobility trace for the given radio range.
func AnalyzeTopology(tr *mobility.SampledTrace, rangeMeters float64) TopologyStats {
	return metrics.AnalyzeTopology(tr, rangeMeters)
}

// ShadowingConfig parameterizes the log-normal-shadowing connectivity sweep
// of the paper's future-work reference [18].
type ShadowingConfig = core.ShadowingConfig

// ShadowingPoint is one (distance, link probability) sample.
type ShadowingPoint = core.ShadowingPoint

// ShadowingConnectivity sweeps link probability against distance under
// log-normal shadowing; compare with DiskConnectivity's two-ray step.
func ShadowingConnectivity(cfg ShadowingConfig) []ShadowingPoint {
	return core.ShadowingConnectivity(cfg)
}

// DiskConnectivity is the two-ray-ground baseline: a unit step at the
// transmission range.
func DiskConnectivity(distances []float64, rangeMeters float64) []ShadowingPoint {
	return core.DiskConnectivity(distances, rangeMeters)
}
