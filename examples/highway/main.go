// Highway: the multi-lane connectivity analysis of the paper's Fig. 1-a.
//
// A sparse single lane leaves radio gaps between vehicle clusters; adding
// an opposite-direction lane provides relay nodes that bridge those gaps.
// This example quantifies the effect using the scenario registry: it takes
// the registered "bidirectional" workload, derives a single-lane variant,
// and reports how the largest connected component grows when the opposing
// relay lane is present.
//
//	go run ./examples/highway
package main

import (
	"fmt"
	"log"

	"cavenet"
	"cavenet/internal/sim"
)

func main() {
	log.SetFlags(0)
	const (
		rangeM    = 250.0
		steps     = 60
		samplePts = 6
	)

	// The catalogue's bidirectional highway: two opposing lanes. Stretch it
	// and thin the primary lane so the single-lane variant actually has
	// radio gaps, then derive the one-lane control from the same spec.
	double, ok := cavenet.ScenarioByName("bidirectional")
	if !ok {
		log.Fatal("highway: bidirectional scenario not registered")
	}
	double.CircuitMeters = 7500
	double.LaneVehicles = []int{12, 25}
	double.SimTime = sim.Seconds(steps)
	double.Seed = 7
	double.RandomStart = true // clustered starts: the Fig. 1-a radio gaps
	sparse := double.LaneVehicles[0]

	single := double
	single.Lanes = 1
	single.Bidirectional = false
	single.LaneVehicles = []int{sparse}
	// Explicitly empty (not nil, which would default to the Table I
	// workload): the control variant is mobility-only, and its lane-1 flow
	// endpoints do not exist anyway.
	single.Flows = []cavenet.ScenarioFlow{}
	single.Nodes = 0

	singleTr, err := cavenet.ScenarioTrace(single)
	if err != nil {
		log.Fatalf("highway: %v", err)
	}
	doubleTr, err := cavenet.ScenarioTrace(double)
	if err != nil {
		log.Fatalf("highway: %v", err)
	}

	fmt.Printf("7.5 km circuit, %d m radio range, %d vehicles on the sparse lane\n\n", int(rangeM), sparse)
	fmt.Println("time   1-lane components   largest%   2-lane components   largest% (lane-0 nodes only)")
	for i := 0; i <= samplePts; i++ {
		tsec := float64(i) * float64(steps) / float64(samplePts)
		c1 := cavenet.ConnectivityComponents(singleTr, tsec, rangeM)
		f1 := cavenet.LargestComponentFraction(singleTr, tsec, rangeM)
		c2 := cavenet.ConnectivityComponents(doubleTr, tsec, rangeM)
		// Fraction of lane-0 vehicles inside one component when relays from
		// the second lane are available.
		best := 0
		for _, comp := range c2 {
			n := 0
			for _, id := range comp {
				if id < sparse {
					n++
				}
			}
			if n > best {
				best = n
			}
		}
		f2 := float64(best) / float64(sparse)
		fmt.Printf("%4.0fs %12d %12.0f%% %15d %12.0f%%\n",
			tsec, len(c1), f1*100, len(c2), f2*100)
	}
	fmt.Println("\nThe second lane's vehicles act as relays (Fig. 1-a): the sparse lane's")
	fmt.Println("clusters merge into larger components when the opposite lane is present.")
}
