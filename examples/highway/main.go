// Highway: the multi-lane connectivity analysis of the paper's Fig. 1-a.
//
// A sparse single lane leaves radio gaps between vehicle clusters; adding
// an opposite-direction lane provides relay nodes that bridge those gaps.
// This example quantifies the effect: it simulates a 7.5 km highway with
// one and then two lanes and reports how the largest connected component
// grows.
//
//	go run ./examples/highway
package main

import (
	"fmt"
	"log"

	"cavenet"
)

func main() {
	log.SetFlags(0)
	const (
		lengthM   = 7500.0
		rangeM    = 250.0
		sparse    = 12 // vehicles on the sparse lane
		opposite  = 25 // vehicles on the (denser) relay lane
		steps     = 60
		samplePts = 6
	)

	single, err := cavenet.HighwayTrace(cavenet.HighwayConfig{
		Lanes: []cavenet.HighwayLane{
			{LengthMeters: lengthM, Vehicles: sparse, SlowdownP: 0.3},
		},
		Warmup: 200, Steps: steps, Seed: 7,
	})
	if err != nil {
		log.Fatalf("highway: %v", err)
	}
	double, err := cavenet.HighwayTrace(cavenet.HighwayConfig{
		Lanes: []cavenet.HighwayLane{
			{LengthMeters: lengthM, Vehicles: sparse, SlowdownP: 0.3},
			{LengthMeters: lengthM, Vehicles: opposite, SlowdownP: 0.3, OffsetY: 5, Reversed: true},
		},
		Warmup: 200, Steps: steps, Seed: 7,
	})
	if err != nil {
		log.Fatalf("highway: %v", err)
	}

	fmt.Printf("7.5 km highway, %d m radio range, %d vehicles/lane\n\n", int(rangeM), sparse)
	fmt.Println("time   1-lane components   largest%   2-lane components   largest% (lane-0 nodes only)")
	for i := 0; i <= samplePts; i++ {
		tsec := float64(i) * float64(steps) / float64(samplePts)
		c1 := cavenet.ConnectivityComponents(single, tsec, rangeM)
		f1 := cavenet.LargestComponentFraction(single, tsec, rangeM)
		c2 := cavenet.ConnectivityComponents(double, tsec, rangeM)
		// Fraction of lane-0 vehicles inside one component when relays from
		// the second lane are available.
		best := 0
		for _, comp := range c2 {
			n := 0
			for _, id := range comp {
				if id < sparse {
					n++
				}
			}
			if n > best {
				best = n
			}
		}
		f2 := float64(best) / float64(sparse)
		fmt.Printf("%4.0fs %12d %12.0f%% %15d %12.0f%%\n",
			tsec, len(c1), f1*100, len(c2), f2*100)
	}
	fmt.Println("\nThe second lane's vehicles act as relays (Fig. 1-a): the sparse lane's")
	fmt.Println("clusters merge into larger components when the opposite lane is present.")
}
