// Quickstart: run the paper's Table I scenario end to end.
//
// This is the smallest useful CAVENET program — and it no longer assembles
// anything by hand: the Table I workload ("highway") lives in the scenario
// registry, alongside multi-lane, signalized, rush-hour, bidirectional and
// sparse workloads (`cavenet scenario list` shows the catalogue). The
// example fetches it, picks a protocol, runs it under the invariant
// harness, and prints the paper's metrics. It finishes in a few seconds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"cavenet"
)

func main() {
	log.SetFlags(0)

	// The registered "highway" scenario is exactly Table I of the paper:
	// 30 vehicles on a 3000 m circuit, 100 s, CBR 5 pkt/s × 512 B from
	// nodes 1–8 to node 0 between 10 s and 90 s, 802.11 DCF at 2 Mb/s,
	// 250 m range.
	spec, ok := cavenet.ScenarioByName("highway")
	if !ok {
		log.Fatal("quickstart: highway scenario not registered")
	}
	spec.Protocol = cavenet.DYMO
	spec.Seed = 1

	res, report, err := cavenet.RunScenarioChecked(spec)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Printf("scenario: %s\n", spec.Name)
	fmt.Printf("protocol: %s\n", spec.Protocol)
	fmt.Printf("total packet delivery ratio: %.3f\n", res.TotalPDR())
	fmt.Println("\nper-sender results (Fig. 11's DYMO column):")
	fmt.Println("sender  sent  delivered   PDR   meanDelay   meanHops")
	for _, s := range res.Senders {
		fmt.Printf("%4d   %5d   %6d    %.2f   %7.4fs   %6.1f\n",
			s, res.Sent[s], res.Delivered[s], res.PDR[s], res.MeanDelaySec[s], res.MeanHops[s])
	}
	fmt.Printf("\nrouting overhead: %d control packets, %d bytes\n",
		res.ControlPackets, res.ControlBytes)
	if report.Ok() {
		fmt.Println("invariants: packet conservation, TTL, routing loops, CA sanity all hold")
	} else {
		fmt.Printf("invariants VIOLATED:\n%s", report)
	}

	// The BA→CPS coupling of the paper's Fig. 3: the same mobility can be
	// exported as an ns-2 scenario file.
	trace, err := cavenet.CircuitTrace(cavenet.Scenario{Seed: spec.Seed})
	if err != nil {
		log.Fatalf("quickstart: trace: %v", err)
	}
	f, err := os.CreateTemp("", "cavenet-*.tcl")
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	defer f.Close()
	if err := cavenet.ExportNS2(f, trace); err != nil {
		log.Fatalf("quickstart: export: %v", err)
	}
	fmt.Printf("\nns-2 mobility scenario written to %s\n", f.Name())
}
