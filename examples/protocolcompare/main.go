// Protocol comparison: the paper's headline experiment (Figs. 8–11).
//
// Runs AODV, OLSR and DYMO over the SAME cellular-automaton mobility trace
// (Table I) and prints the per-sender PDR comparison of Fig. 11 plus the
// goodput characteristics behind Figs. 8–10. Expect the paper's ordering:
// reactive protocols beat OLSR, DYMO ≈ AODV with lower delay.
//
// With -trials N (N > 1) the comparison becomes a Monte-Carlo ensemble on
// the deterministic parallel experiment engine: N seeded replications per
// protocol run concurrently across cores and the table reports each
// metric as mean ± 95% CI — the error bars the single-trace run cannot
// give.
//
//	go run ./examples/protocolcompare [-full] [-trials 20]
package main

import (
	"flag"
	"fmt"
	"log"

	"cavenet"
	"cavenet/internal/sim"
)

func main() {
	log.SetFlags(0)
	full := flag.Bool("full", true, "run the full 100 s Table I scenario (false: 30 s)")
	seed := flag.Int64("seed", 1, "scenario seed")
	trials := flag.Int("trials", 1, "replications; > 1 reports ensemble mean ± 95% CI")
	flag.Parse()

	cfg := cavenet.Scenario{Seed: *seed}
	if !*full {
		cfg.SimTime = 30 * sim.Second
		cfg.TrafficStop = 25 * sim.Second
	}
	protocols := []cavenet.Protocol{cavenet.AODV, cavenet.OLSR, cavenet.DYMO}

	if *trials > 1 {
		runEnsemble(cfg, protocols, *trials)
		return
	}

	results, err := cavenet.Compare(cfg, protocols)
	if err != nil {
		log.Fatalf("protocolcompare: %v", err)
	}

	fmt.Println("=== Fig. 11: packet delivery ratio per sender ===")
	fmt.Printf("%-8s", "sender")
	for _, p := range protocols {
		fmt.Printf("%8s", p)
	}
	fmt.Println()
	for _, s := range results[protocols[0]].Config.Senders {
		fmt.Printf("%-8d", s)
		for _, p := range protocols {
			fmt.Printf("%8.3f", results[p].PDR[s])
		}
		fmt.Println()
	}

	fmt.Println("\n=== goodput characteristics (Figs. 8–10) ===")
	fmt.Printf("%-8s%12s%14s%16s\n", "proto", "totalPDR", "peak bps", "mean delay (s)")
	offered := 5 * 512 * 8.0
	for _, p := range protocols {
		r := results[p]
		peak := 0.0
		var delaySum float64
		for _, s := range r.Config.Senders {
			for _, bps := range r.Goodput[s] {
				if bps > peak {
					peak = bps
				}
			}
			delaySum += r.MeanDelaySec[s]
		}
		fmt.Printf("%-8s%12.3f%14.0f%16.4f\n",
			p, r.TotalPDR(), peak, delaySum/float64(len(r.Config.Senders)))
		if p == cavenet.AODV && peak > 3*offered {
			fmt.Printf("         ^ AODV peak is %.1f× the offered 20480 bps: buffered bursts\n",
				peak/offered)
		}
	}

	fmt.Println("\n=== routing overhead (the paper's future-work metric) ===")
	for _, p := range protocols {
		r := results[p]
		fmt.Printf("%-8s%8d control packets, %9d bytes\n", p, r.ControlPackets, r.ControlBytes)
	}
}

// runEnsemble replicates the comparison over seeded Monte-Carlo trials on
// the parallel experiment engine and prints mean ± 95% CI per protocol.
func runEnsemble(cfg cavenet.Scenario, protocols []cavenet.Protocol, trials int) {
	pts, err := cavenet.Sweep(cavenet.SweepConfig{
		Base:      cfg,
		Protocols: protocols,
		Trials:    trials,
	})
	if err != nil {
		log.Fatalf("protocolcompare: %v", err)
	}
	fmt.Printf("=== ensemble over %d trials (mean ± 95%% CI) ===\n", trials)
	fmt.Printf("%-8s%20s%22s%24s\n", "proto", "totalPDR", "goodput (bps)", "mean delay (s)")
	for _, pt := range pts {
		fmt.Printf("%-8s%12.3f ± %.3f%15.0f ± %.0f%17.4f ± %.4f\n",
			pt.Protocol,
			pt.PDR.Mean, pt.PDR.CI95,
			pt.GoodputBPS.Mean, pt.GoodputBPS.CI95,
			pt.DelaySec.Mean, pt.DelaySec.CI95)
	}
	fmt.Printf("\n%-8s%20s%20s\n", "proto", "ctrl packets", "MAC retries")
	for _, pt := range pts {
		fmt.Printf("%-8s%12.0f ± %.0f%14.0f ± %.0f\n",
			pt.Protocol,
			pt.ControlPackets.Mean, pt.ControlPackets.CI95,
			pt.MACRetries.Mean, pt.MACRetries.CI95)
	}
}
