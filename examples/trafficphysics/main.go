// Trafficphysics: a tour of the Behavioural Analyzer (Figs. 4–7).
//
// Reproduces, at reduced scale, the traffic-physics results the paper uses
// to argue that VANET mobility needs care before protocol simulation:
//
//   - the fundamental diagram with its free-flow/congested phase transition,
//   - space-time plots showing laminar flow vs. backward-moving jam waves,
//   - the SRD/LRD dichotomy of the mean-velocity process (the deterministic
//     model has a flat spectrum; the stochastic one is 1/f near criticality),
//   - the Random Waypoint velocity decay that the CA model does not suffer.
//
// go run ./examples/trafficphysics
package main

import (
	"fmt"
	"log"
	"os"

	"cavenet"
	"cavenet/internal/plot"
)

func main() {
	log.SetFlags(0)

	fmt.Println("=== Fig. 4: fundamental diagram (flow vs density) ===")
	for _, p := range []float64{0, 0.5} {
		pts, err := cavenet.FundamentalDiagram(cavenet.FundamentalConfig{
			LaneLength: 400, SlowdownP: p, Trials: 10, Iterations: 300, Warmup: 100, Seed: 1,
		})
		if err != nil {
			log.Fatalf("trafficphysics: %v", err)
		}
		peak, at := 0.0, 0.0
		for _, pt := range pts {
			if pt.Flow > peak {
				peak, at = pt.Flow, pt.Density
			}
		}
		fmt.Printf("p=%.1f: peak flow %.3f veh/step at density %.3f\n", p, peak, at)
	}
	fmt.Println("(deterministic peak ≈0.833 at ρ≈0.167; randomization lowers and shifts it)")

	fmt.Println("\n=== Fig. 5: space-time plots ===")
	for _, cfg := range []cavenet.SpaceTimeConfig{
		{LaneLength: 150, Density: 0.0625, SlowdownP: 0.3, Steps: 24, Warmup: 50, Seed: 2},
		{LaneLength: 150, Density: 0.5, SlowdownP: 0.3, Steps: 24, Warmup: 50, Seed: 2},
	} {
		rows, err := cavenet.SpaceTime(cfg)
		if err != nil {
			log.Fatalf("trafficphysics: %v", err)
		}
		fmt.Printf("\nρ=%v p=%v (digits = velocities, dots = empty road):\n", cfg.Density, cfg.SlowdownP)
		if err := plot.SpaceTimeASCII(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("low density: laminar free flow; high density: jam clusters drifting backward")

	fmt.Println("\n=== Fig. 7: SRD vs LRD ===")
	det, err := cavenet.Periodogram(cavenet.VelocityConfig{
		Density: 0.1, SlowdownP: 0, Steps: 4096, Seed: 3,
	})
	if err != nil {
		log.Fatalf("trafficphysics: %v", err)
	}
	sto, err := cavenet.Periodogram(cavenet.VelocityConfig{
		Density: 0.1, SlowdownP: 0.5, Steps: 4096, Seed: 3,
	})
	if err != nil {
		log.Fatalf("trafficphysics: %v", err)
	}
	fmt.Printf("deterministic p=0:   GPH slope %+.2f, Hurst %.2f  → short-range dependent\n",
		det.GPHSlope, det.Hurst)
	fmt.Printf("stochastic p=0.5:    GPH slope %+.2f, Hurst %.2f  → 1/f-like, long-range dependent\n",
		sto.GPHSlope, sto.Hurst)

	fmt.Println("\n=== §IV-B: transient time and the RW contrast ===")
	tr, err := cavenet.Transient(cavenet.VelocityConfig{
		Density: 0.1, SlowdownP: 0, Steps: 1000, Seed: 4,
	})
	if err != nil {
		log.Fatalf("trafficphysics: %v", err)
	}
	fmt.Printf("CA from a compact jam reaches steady state in τ = %d steps (MSER-5: %d)\n",
		tr.Tau, tr.MSER)
	_, vel := cavenet.RandomWaypointDecay(cavenet.RWDecayConfig{
		Nodes: 100, VMin: 0.1, VMax: 20, Duration: 2000, Seed: 5,
	})
	rwTau := cavenet.TransientTime(vel, 3)
	fmt.Printf("Random Waypoint mean velocity still decaying after %d of %d samples\n",
		rwTau, len(vel))
	fmt.Println("(the RW model's velocity decay is the problem the finite-state CA avoids)")
}
