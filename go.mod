module cavenet

go 1.22
