package cavenet

import (
	"cavenet/internal/mobility"
	"cavenet/internal/scenario"
	"cavenet/internal/scenario/check"
)

// This file exposes the scenario registry: the catalogue of first-class
// workloads (multi-lane highways, signalized corridors, rush-hour ramps,
// sparse partitioned networks, ...) that replaces hand-rolled experiment
// mains. Every registered scenario is runnable here and from the
// `cavenet scenario` CLI, sweepable over protocols × seeds, and checkable
// under the cross-protocol invariant harness.

// ScenarioSpec is the declarative workload description: road generator,
// traffic flows, protocol and metric expectations in one plain struct.
type ScenarioSpec = scenario.Spec

// ScenarioFlow is one CBR flow of a scenario workload.
type ScenarioFlow = scenario.Flow

// ScenarioResult carries a scenario run's metrics.
type ScenarioResult = scenario.Result

// InvariantReport lists the invariant violations of a checked run.
type InvariantReport = check.Report

// ScenarioNames lists the registered workload catalogue in sorted order.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName returns a copy of the named registered scenario.
func ScenarioByName(name string) (ScenarioSpec, bool) { return scenario.Get(name) }

// RegisterScenario adds a workload to the registry.
func RegisterScenario(s ScenarioSpec) error { return scenario.Register(s) }

// RunScenarioSpec generates the scenario's mobility and executes it.
func RunScenarioSpec(s ScenarioSpec) (*ScenarioResult, error) { return scenario.Run(s) }

// ScenarioTrace generates only the scenario's mobility trace (lanes,
// signals, lane changes, activation ramps) without running the network —
// the materialized (differential-oracle) view of ScenarioSource.
func ScenarioTrace(s ScenarioSpec) (*mobility.SampledTrace, error) { return scenario.BuildTrace(s) }

// ScenarioSource generates the scenario's mobility as a streaming source:
// the CA road steps live as positions are pulled, retaining O(nodes)
// state — the substrate that runs the 10k-vehicle metro workload.
func ScenarioSource(s ScenarioSpec) (MobilitySource, error) { return scenario.BuildSource(s) }

// RunScenarioChecked runs the scenario under the invariant harness:
// packet conservation, TTL discipline, routing-loop freedom, CA sanity
// and the spec's metric expectations.
func RunScenarioChecked(s ScenarioSpec) (*ScenarioResult, *InvariantReport, error) {
	return scenario.RunChecked(s)
}

// ScenarioSweep runs a scenario × protocol × seed grid on the
// deterministic parallel engine; the output is bit-identical for any
// worker count.
func ScenarioSweep(cfg scenario.SweepConfig) ([]scenario.SweepRow, error) {
	return scenario.Sweep(cfg)
}

// ScenarioSweepConfig spans a scenario × protocol × seed grid.
type ScenarioSweepConfig = scenario.SweepConfig

// ScenarioSweepRow is one aggregated (scenario, protocol) cell.
type ScenarioSweepRow = scenario.SweepRow
