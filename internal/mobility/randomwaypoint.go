package mobility

import (
	"math"
	"math/rand"

	"cavenet/internal/geometry"
)

// RandomWaypointConfig parameterizes the classical Random Waypoint model:
// every node picks a uniform destination in the area and a uniform speed in
// [VMin, VMax], travels there, optionally pauses, and repeats. The paper
// (§I, §IV-B) uses RW as the contrast case: it exhibits the velocity-decay
// problem that the CA model avoids.
type RandomWaypointConfig struct {
	Nodes int
	AreaX float64 // meters
	AreaY float64 // meters
	VMin  float64 // m/s; must be > 0 or the model famously never converges
	VMax  float64 // m/s
	Pause float64 // seconds at each waypoint
	// Interval is the trace sampling period in seconds (default 1).
	Interval float64
}

// RandomWaypointStationary simulates the RW model initialized in its
// stationary regime, following the "perfect simulation" construction of Le
// Boudec & Vojnović (the paper's reference [2]): trip speeds are sampled
// from the speed-stationary distribution (density ∝ 1/v on [vmin, vmax])
// and each node starts mid-trip at a uniform position along it. The
// returned mean-velocity series shows no decay — the fix for the pathology
// that RandomWaypoint exhibits.
func RandomWaypointStationary(cfg RandomWaypointConfig, duration float64, rnd *rand.Rand) (*SampledTrace, []float64) {
	return randomWaypoint(cfg, duration, rnd, true)
}

// RandomWaypoint simulates the RW model for duration seconds and returns a
// sampled trace together with the instantaneous mean-velocity series (one
// entry per sample), which makes the velocity decay of §IV-B directly
// observable.
func RandomWaypoint(cfg RandomWaypointConfig, duration float64, rnd *rand.Rand) (*SampledTrace, []float64) {
	return randomWaypoint(cfg, duration, rnd, false)
}

// RandomWaypointSource streams the RW model as a mobility Source with
// O(nodes) walker state — the streaming counterpart of RandomWaypoint
// (whose materialized trace it is bit-identical to, both being views of
// the same walker stepping).
func RandomWaypointSource(cfg RandomWaypointConfig, duration float64, rnd *rand.Rand) (*Stream, error) {
	return newRandomWaypoint(cfg, duration, rnd, false, nil)
}

// RandomWaypointStationarySource is RandomWaypointSource with the
// stationary-regime initialization of RandomWaypointStationary.
func RandomWaypointStationarySource(cfg RandomWaypointConfig, duration float64, rnd *rand.Rand) (*Stream, error) {
	return newRandomWaypoint(cfg, duration, rnd, true, nil)
}

func randomWaypoint(cfg RandomWaypointConfig, duration float64, rnd *rand.Rand, stationary bool) (*SampledTrace, []float64) {
	var meanVel []float64
	src, err := newRandomWaypoint(cfg, duration, rnd, stationary, &meanVel)
	if err != nil {
		// Node-free configs produced an empty trace historically; keep that.
		if cfg.Interval <= 0 {
			cfg.Interval = 1
		}
		return &SampledTrace{Interval: cfg.Interval}, make([]float64, SampleCount(duration, cfg.Interval))
	}
	trace := Record(src)
	return trace, meanVel
}

type rwWalker struct {
	pos   geometry.Vec2
	dest  geometry.Vec2
	speed float64
	pause float64 // remaining pause time
}

// newRandomWaypoint builds the streaming RW source. A non-nil meanVel
// accumulates the instantaneous mean velocity, one entry per produced
// sample (complete once every sample has been pulled, e.g. by Record);
// nil keeps the stream's retained state strictly O(nodes) — the analysis
// series is a materializing-path artifact.
func newRandomWaypoint(cfg RandomWaypointConfig, duration float64, rnd *rand.Rand, stationary bool, meanVel *[]float64) (*Stream, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 1
	}
	samples := SampleCount(duration, cfg.Interval)
	randPoint := func() geometry.Vec2 {
		return geometry.Vec2{X: rnd.Float64() * cfg.AreaX, Y: rnd.Float64() * cfg.AreaY}
	}
	randSpeed := func() float64 {
		return cfg.VMin + rnd.Float64()*(cfg.VMax-cfg.VMin)
	}
	// stationarySpeed samples from the time-stationary speed distribution
	// f(v) ∝ 1/v on [vmin, vmax] via inverse-transform sampling: slow trips
	// last longer, so a node observed at a random instant is more likely to
	// be on a slow trip.
	stationarySpeed := func() float64 {
		u := rnd.Float64()
		return cfg.VMin * math.Pow(cfg.VMax/cfg.VMin, u)
	}
	walkers := make([]rwWalker, cfg.Nodes)
	for i := range walkers {
		w := rwWalker{pos: randPoint(), dest: randPoint(), speed: randSpeed()}
		if stationary {
			// Start mid-trip with a stationary speed and a uniform fraction
			// of the trip already covered.
			w.speed = stationarySpeed()
			frac := rnd.Float64()
			w.pos = w.pos.Add(w.dest.Sub(w.pos).Scale(frac))
		}
		walkers[i] = w
	}
	fill := func(k int, row []geometry.Vec2) {
		vsum := 0.0
		for i := range walkers {
			w := &walkers[i]
			row[i] = w.pos
			if w.pause <= 0 {
				vsum += w.speed
			}
			// Advance by one interval.
			remain := cfg.Interval
			for remain > 0 {
				if w.pause > 0 {
					hold := w.pause
					if hold > remain {
						hold = remain
					}
					w.pause -= hold
					remain -= hold
					continue
				}
				d := w.pos.Dist(w.dest)
				travel := w.speed * remain
				if travel < d {
					dir := w.dest.Sub(w.pos).Scale(1 / d)
					w.pos = w.pos.Add(dir.Scale(travel))
					remain = 0
				} else {
					w.pos = w.dest
					if w.speed > 0 {
						remain -= d / w.speed
					} else {
						remain = 0
					}
					w.pause = cfg.Pause
					w.dest = randPoint()
					w.speed = randSpeed()
				}
			}
		}
		if meanVel != nil {
			*meanVel = append(*meanVel, vsum/float64(cfg.Nodes))
		}
	}
	return NewStream(StreamConfig{
		Nodes:    cfg.Nodes,
		Interval: cfg.Interval,
		Samples:  samples,
		Fill:     fill,
	})
}
