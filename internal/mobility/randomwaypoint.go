package mobility

import (
	"math"
	"math/rand"

	"cavenet/internal/geometry"
)

// RandomWaypointConfig parameterizes the classical Random Waypoint model:
// every node picks a uniform destination in the area and a uniform speed in
// [VMin, VMax], travels there, optionally pauses, and repeats. The paper
// (§I, §IV-B) uses RW as the contrast case: it exhibits the velocity-decay
// problem that the CA model avoids.
type RandomWaypointConfig struct {
	Nodes int
	AreaX float64 // meters
	AreaY float64 // meters
	VMin  float64 // m/s; must be > 0 or the model famously never converges
	VMax  float64 // m/s
	Pause float64 // seconds at each waypoint
	// Interval is the trace sampling period in seconds (default 1).
	Interval float64
}

// RandomWaypointStationary simulates the RW model initialized in its
// stationary regime, following the "perfect simulation" construction of Le
// Boudec & Vojnović (the paper's reference [2]): trip speeds are sampled
// from the speed-stationary distribution (density ∝ 1/v on [vmin, vmax])
// and each node starts mid-trip at a uniform position along it. The
// returned mean-velocity series shows no decay — the fix for the pathology
// that RandomWaypoint exhibits.
func RandomWaypointStationary(cfg RandomWaypointConfig, duration float64, rnd *rand.Rand) (*SampledTrace, []float64) {
	return randomWaypoint(cfg, duration, rnd, true)
}

// RandomWaypoint simulates the RW model for duration seconds and returns a
// sampled trace together with the instantaneous mean-velocity series (one
// entry per sample), which makes the velocity decay of §IV-B directly
// observable.
func RandomWaypoint(cfg RandomWaypointConfig, duration float64, rnd *rand.Rand) (*SampledTrace, []float64) {
	return randomWaypoint(cfg, duration, rnd, false)
}

func randomWaypoint(cfg RandomWaypointConfig, duration float64, rnd *rand.Rand, stationary bool) (*SampledTrace, []float64) {
	if cfg.Interval <= 0 {
		cfg.Interval = 1
	}
	samples := SampleCount(duration, cfg.Interval)
	trace := &SampledTrace{
		Interval:  cfg.Interval,
		Positions: make([][]geometry.Vec2, cfg.Nodes),
	}
	meanVel := make([]float64, samples)

	type walker struct {
		pos   geometry.Vec2
		dest  geometry.Vec2
		speed float64
		pause float64 // remaining pause time
	}
	randPoint := func() geometry.Vec2 {
		return geometry.Vec2{X: rnd.Float64() * cfg.AreaX, Y: rnd.Float64() * cfg.AreaY}
	}
	randSpeed := func() float64 {
		return cfg.VMin + rnd.Float64()*(cfg.VMax-cfg.VMin)
	}
	// stationarySpeed samples from the time-stationary speed distribution
	// f(v) ∝ 1/v on [vmin, vmax] via inverse-transform sampling: slow trips
	// last longer, so a node observed at a random instant is more likely to
	// be on a slow trip.
	stationarySpeed := func() float64 {
		u := rnd.Float64()
		return cfg.VMin * math.Pow(cfg.VMax/cfg.VMin, u)
	}
	walkers := make([]walker, cfg.Nodes)
	for i := range walkers {
		w := walker{pos: randPoint(), dest: randPoint(), speed: randSpeed()}
		if stationary {
			// Start mid-trip with a stationary speed and a uniform fraction
			// of the trip already covered.
			w.speed = stationarySpeed()
			frac := rnd.Float64()
			w.pos = w.pos.Add(w.dest.Sub(w.pos).Scale(frac))
		}
		walkers[i] = w
	}
	for i := range trace.Positions {
		trace.Positions[i] = make([]geometry.Vec2, 0, samples)
	}

	for s := 0; s < samples; s++ {
		vsum := 0.0
		for i := range walkers {
			w := &walkers[i]
			trace.Positions[i] = append(trace.Positions[i], w.pos)
			if w.pause <= 0 {
				vsum += w.speed
			}
			// Advance by one interval.
			remain := cfg.Interval
			for remain > 0 {
				if w.pause > 0 {
					hold := w.pause
					if hold > remain {
						hold = remain
					}
					w.pause -= hold
					remain -= hold
					continue
				}
				d := w.pos.Dist(w.dest)
				travel := w.speed * remain
				if travel < d {
					dir := w.dest.Sub(w.pos).Scale(1 / d)
					w.pos = w.pos.Add(dir.Scale(travel))
					remain = 0
				} else {
					w.pos = w.dest
					if w.speed > 0 {
						remain -= d / w.speed
					} else {
						remain = 0
					}
					w.pause = cfg.Pause
					w.dest = randPoint()
					w.speed = randSpeed()
				}
			}
		}
		meanVel[s] = vsum / float64(cfg.Nodes)
	}
	return trace, meanVel
}
