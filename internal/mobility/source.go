package mobility

import (
	"fmt"

	"cavenet/internal/geometry"
)

// Source is the streaming mobility substrate: a forward-only cursor over
// node positions with O(nodes) retained state. The network simulator
// drives it directly — one At query per node per mobility tick — so a
// 10k-vehicle run never materializes the O(nodes × samples) position
// matrix that a recorded trace needs.
//
// Contract: time is a cursor, not random access. Callers must query with
// non-decreasing tsec across At calls (any node order within one
// timestep is fine); a Source may advance internal state — e.g. step a
// cellular automaton — when tsec enters a new sample window, and is not
// required to answer for times it has advanced past.
//
// *SampledTrace satisfies Source trivially (random access is a superset
// of cursor access), which is what makes the recorded path the
// differential oracle for every streaming implementation: Record(src)
// materializes a source, and a run driven by src must be bit-identical
// to a run driven by the recording.
type Source interface {
	// NumNodes reports how many nodes the source drives.
	NumNodes() int
	// At returns the position of node at time tsec (seconds), subject to
	// the forward-only cursor contract above.
	At(node int, tsec float64) geometry.Vec2
}

// RowSource is a Source with an explicit sample grid: positions change
// only at interval boundaries and are linearly interpolated in between
// (the SampledTrace semantics). Row hands out whole sample rows, which
// is what Record uses to materialize a source exactly — no float
// re-derivation of sample times, so the recording is bit-identical to
// the rows the source itself interpolates from.
type RowSource interface {
	Source
	// SampleInterval reports the sample period in seconds.
	SampleInterval() float64
	// NumSamples reports the total number of samples covering the
	// source's lifetime (the cursor clamps at the last row).
	NumSamples() int
	// Row copies sample k (node-indexed positions) into dst and returns
	// it. Like At, it is forward-only: k must be non-decreasing across
	// calls, and interleaving with At must also be time-monotone.
	Row(k int, dst []geometry.Vec2) []geometry.Vec2
}

// lerpSample interpolates between two samples of one node. Both
// SampledTrace.At and Stream.At funnel through this helper so the
// recorded and streamed paths perform the identical float operations —
// the arithmetic is part of the bit-identity contract between them.
func lerpSample(a, b geometry.Vec2, frac float64) geometry.Vec2 {
	return geometry.Vec2{
		X: a.X + (b.X-a.X)*frac,
		Y: a.Y + (b.Y-a.Y)*frac,
	}
}

// StreamConfig assembles a Stream.
type StreamConfig struct {
	// Nodes is the node count of the source.
	Nodes int
	// Interval is the sample period in seconds.
	Interval float64
	// Samples is the total sample count (>= 1); queries beyond the last
	// sample clamp to it, exactly like SampledTrace.At.
	Samples int
	// Fill produces sample row k into row (len == Nodes). It is called
	// with strictly increasing k, exactly once per sample, lazily as the
	// cursor advances — this is where a CA steps or a trace replayer
	// advances.
	Fill func(k int, row []geometry.Vec2)
	// OnSample, when non-nil, observes every produced row after Fill —
	// the hook the invariant harness uses to validate motion sample by
	// sample without a recorded array.
	OnSample func(k int, row []geometry.Vec2)
}

// Stream adapts a per-sample row generator into a Source. It retains
// only two adjacent sample rows (O(nodes) state) and interpolates
// between them with arithmetic identical to SampledTrace.At, so a
// streamed run is bit-identical to a run on the Record()-ed trace.
type Stream struct {
	cfg StreamConfig
	// cur holds sample win; next holds sample win+1 (when it exists).
	cur, next []geometry.Vec2
	win       int // -1 until the first row is produced
}

// NewStream validates the config and returns the stream.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("mobility: stream needs a positive node count, have %d", cfg.Nodes)
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("mobility: non-positive sample interval %v", cfg.Interval)
	}
	if cfg.Samples < 1 {
		return nil, fmt.Errorf("mobility: stream needs at least one sample, have %d", cfg.Samples)
	}
	if cfg.Fill == nil {
		return nil, fmt.Errorf("mobility: stream needs a Fill function")
	}
	return &Stream{
		cfg:  cfg,
		cur:  make([]geometry.Vec2, cfg.Nodes),
		next: make([]geometry.Vec2, cfg.Nodes),
		win:  -1,
	}, nil
}

// NumNodes implements Source.
func (s *Stream) NumNodes() int { return s.cfg.Nodes }

// SampleInterval implements RowSource.
func (s *Stream) SampleInterval() float64 { return s.cfg.Interval }

// NumSamples implements RowSource.
func (s *Stream) NumSamples() int { return s.cfg.Samples }

func (s *Stream) produce(k int, row []geometry.Vec2) {
	s.cfg.Fill(k, row)
	if s.cfg.OnSample != nil {
		s.cfg.OnSample(k, row)
	}
}

// ensure advances the window so cur holds sample i (and next holds i+1
// when one exists). Rewinding violates the cursor contract and panics —
// a silent wrong answer here would corrupt a simulation undetectably.
func (s *Stream) ensure(i int) {
	if s.win < 0 {
		s.produce(0, s.cur)
		s.win = 0
		if s.cfg.Samples > 1 {
			s.produce(1, s.next)
		}
	}
	if i < s.win {
		panic(fmt.Sprintf("mobility: stream rewound to sample %d after advancing to %d (Source is a forward-only cursor)", i, s.win))
	}
	for s.win < i {
		s.cur, s.next = s.next, s.cur
		s.win++
		if s.win+1 < s.cfg.Samples {
			s.produce(s.win+1, s.next)
		}
	}
}

// At implements Source with SampledTrace.At's exact semantics: clamp
// before the first and after the last sample, linear interpolation in
// between.
func (s *Stream) At(node int, tsec float64) geometry.Vec2 {
	if tsec <= 0 || s.cfg.Samples == 1 {
		s.ensure(0)
		return s.cur[node]
	}
	idx := tsec / s.cfg.Interval
	i := int(idx)
	if i >= s.cfg.Samples-1 {
		s.ensure(s.cfg.Samples - 2)
		return s.next[node]
	}
	s.ensure(i)
	frac := idx - float64(i)
	return lerpSample(s.cur[node], s.next[node], frac)
}

// Row implements RowSource.
func (s *Stream) Row(k int, dst []geometry.Vec2) []geometry.Vec2 {
	dst = dst[:0]
	switch {
	case k < s.cfg.Samples-1:
		s.ensure(k)
		dst = append(dst, s.cur...)
	case s.cfg.Samples == 1:
		s.ensure(0)
		dst = append(dst, s.cur...)
	default:
		s.ensure(s.cfg.Samples - 2)
		dst = append(dst, s.next...)
	}
	return dst
}

// Record materializes a row source into a SampledTrace — the adapter
// that turns any streaming source back into the retained differential
// oracle: a run driven by the recording must be bit-identical to a run
// driven by the source itself, which is what the scenario package's
// streamed-vs-recorded property test asserts for the whole catalogue.
func Record(src RowSource) *SampledTrace {
	nodes, samples := src.NumNodes(), src.NumSamples()
	t := &SampledTrace{
		Interval:  src.SampleInterval(),
		Positions: make([][]geometry.Vec2, nodes),
	}
	flat := make([]geometry.Vec2, nodes*samples)
	for n := range t.Positions {
		t.Positions[n] = flat[n*samples : (n+1)*samples : (n+1)*samples]
	}
	row := make([]geometry.Vec2, nodes)
	for k := 0; k < samples; k++ {
		row = src.Row(k, row[:0])
		for n := 0; n < nodes; n++ {
			t.Positions[n][k] = row[n]
		}
	}
	return t
}

var (
	_ RowSource = (*Stream)(nil)
	_ RowSource = (*SampledTrace)(nil)
)
