package mobility

import (
	"math/rand"
	"testing"

	"cavenet/internal/ca"
	"cavenet/internal/geometry"
)

func testRoad(t *testing.T, vehicles, cells int, seed int64) *ca.Road {
	t.Helper()
	road, err := ca.NewRoad([]ca.LaneSpec{{
		Config: ca.Config{Length: cells, Vehicles: vehicles, SlowdownP: 0.3, Boundary: ca.RingBoundary},
		Placement: geometry.Ring{
			Center:        geometry.Vec2{X: 500, Y: 500},
			Circumference: float64(cells) * ca.CellLength,
		},
	}}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return road
}

// TestRoadSourceMatchesRecordedTrace is the substrate-level differential:
// the streaming road source must serve, at every query time on the
// world's tick grid, exactly the position the materialized recording of
// an identically seeded road interpolates.
func TestRoadSourceMatchesRecordedTrace(t *testing.T) {
	const steps = 40
	trace := RecordRoad(testRoad(t, 30, 400, 7), steps)

	src, err := NewRoadSource(RoadSourceConfig{Road: testRoad(t, 30, 400, 7), Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if src.NumNodes() != trace.NumNodes() {
		t.Fatalf("source has %d nodes, trace %d", src.NumNodes(), trace.NumNodes())
	}
	// Sweep past the final sample to exercise the clamp as well.
	for tick := 0; tick <= (steps+3)*10; tick++ {
		tsec := float64(tick) * 0.1
		for n := 0; n < src.NumNodes(); n++ {
			if got, want := src.At(n, tsec), trace.At(n, tsec); got != want {
				t.Fatalf("node %d at t=%.1f: streamed %v, recorded %v", n, tsec, got, want)
			}
		}
	}
}

// TestRecordOfSourceRoundTrips asserts Record reproduces the exact rows a
// stream serves: recording the source and re-recording the recording are
// identical traces.
func TestRecordOfSourceRoundTrips(t *testing.T) {
	const steps = 25
	src, err := NewRoadSource(RoadSourceConfig{Road: testRoad(t, 20, 300, 3), Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	a := Record(src)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b := Record(a)
	if a.NumNodes() != b.NumNodes() || a.NumSamples() != b.NumSamples() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", a.NumNodes(), a.NumSamples(), b.NumNodes(), b.NumSamples())
	}
	for n := range a.Positions {
		for k := range a.Positions[n] {
			if a.Positions[n][k] != b.Positions[n][k] {
				t.Fatalf("node %d sample %d differs", n, k)
			}
		}
	}
}

// TestStreamObserversFireInOrder pins the hook contract the invariant
// harness relies on: Fill/OnSample fire once per sample, in order, with
// the overlay applied before observation.
func TestStreamObserversFireInOrder(t *testing.T) {
	const steps = 10
	var observed []int
	var overlaid []int
	src, err := NewRoadSource(RoadSourceConfig{
		Road:  testRoad(t, 5, 60, 1),
		Steps: steps,
		Overlay: func(k int, row []geometry.Vec2) {
			overlaid = append(overlaid, k)
			row[0] = geometry.Vec2{X: -1, Y: -1}
		},
		OnSample: func(k int, row []geometry.Vec2) {
			observed = append(observed, k)
			if row[0] != (geometry.Vec2{X: -1, Y: -1}) {
				t.Fatalf("sample %d observed before the overlay was applied", k)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	Record(src)
	if len(observed) != steps+1 || len(overlaid) != steps+1 {
		t.Fatalf("observed %d samples, overlaid %d, want %d", len(observed), len(overlaid), steps+1)
	}
	for i, k := range observed {
		if k != i {
			t.Fatalf("samples observed out of order: %v", observed)
		}
	}
}

// TestStreamRewindPanics pins the forward-only cursor contract: silently
// serving a stale answer would corrupt a simulation, so rewinding must
// fail loudly.
func TestStreamRewindPanics(t *testing.T) {
	src, err := NewRoadSource(RoadSourceConfig{Road: testRoad(t, 5, 60, 1), Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	src.At(0, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("rewinding the cursor did not panic")
		}
	}()
	src.At(0, 2)
}

// TestRandomWaypointSourceMatchesTrace asserts the streamed RW model is
// bit-identical to the materialized one under the same seed.
func TestRandomWaypointSourceMatchesTrace(t *testing.T) {
	cfg := RandomWaypointConfig{Nodes: 12, AreaX: 500, AreaY: 400, VMin: 1, VMax: 15, Pause: 2}
	const duration = 60.0
	trace, _ := RandomWaypoint(cfg, duration, rand.New(rand.NewSource(5)))
	src, err := RandomWaypointSource(cfg, duration, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; float64(tick)*0.1 <= duration; tick++ {
		tsec := float64(tick) * 0.1
		for n := 0; n < cfg.Nodes; n++ {
			if got, want := src.At(n, tsec), trace.At(n, tsec); got != want {
				t.Fatalf("node %d at t=%.1f: streamed %v, recorded %v", n, tsec, got, want)
			}
		}
	}
}

// TestStreamConfigValidation covers the constructor's rejection paths.
func TestStreamConfigValidation(t *testing.T) {
	fill := func(int, []geometry.Vec2) {}
	cases := []StreamConfig{
		{Nodes: 0, Interval: 1, Samples: 1, Fill: fill},
		{Nodes: 1, Interval: 0, Samples: 1, Fill: fill},
		{Nodes: 1, Interval: 1, Samples: 0, Fill: fill},
		{Nodes: 1, Interval: 1, Samples: 1, Fill: nil},
	}
	for i, cfg := range cases {
		if _, err := NewStream(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}
