package mobility

import (
	"cavenet/internal/ca"
)

// RecordRoad advances the road by steps CA steps and records the absolute
// plane position of every vehicle after each step (plus the initial state),
// producing a SampledTrace at the CA step interval.
//
// Recording is the materialized view of the streaming substrate: it is
// Record over NewRoadSource, which makes it the differential oracle for
// the streamed path — both share one fill loop, so a streamed run and a
// recorded-trace run are bit-identical by construction.
func RecordRoad(road RoadModel, steps int) *SampledTrace {
	return RecordRoadFunc(road, steps, nil)
}

// RecordRoadFunc is RecordRoad with a per-step observer: after every
// Road.Step (and never before recording its positions) the observer runs —
// the hook the invariant harness uses to validate the CA dynamics while
// the trace is produced. A nil observer degrades to RecordRoad.
func RecordRoadFunc(road RoadModel, steps int, after func()) *SampledTrace {
	if steps < 0 {
		steps = 0 // degenerate input: record the initial state only
	}
	if road.TotalVehicles() == 0 {
		// A vehicle-free road streams nothing; step it for the observer's
		// benefit and return the empty trace the recorder always produced.
		WarmupRoadFunc(road, steps, after)
		return &SampledTrace{Interval: ca.StepSeconds}
	}
	src, err := NewRoadSource(RoadSourceConfig{Road: road, Steps: steps, AfterStep: after})
	if err != nil {
		panic(err) // unreachable: the road has vehicles and steps >= 0
	}
	return Record(src)
}

// WarmupRoad advances the road without recording, letting the traffic reach
// its stationary regime before the communication experiment starts — the
// precaution §IV-B of the paper argues for.
func WarmupRoad(road RoadModel, steps int) {
	WarmupRoadFunc(road, steps, nil)
}

// WarmupRoadFunc is WarmupRoad with the same per-step observer hook as
// RecordRoadFunc.
func WarmupRoadFunc(road RoadModel, steps int, after func()) {
	for s := 0; s < steps; s++ {
		road.Step()
		if after != nil {
			after()
		}
	}
}
