package mobility

import (
	"cavenet/internal/ca"
	"cavenet/internal/geometry"
)

// RecordRoad advances the road by steps CA steps and records the absolute
// plane position of every vehicle after each step (plus the initial state),
// producing a SampledTrace at the CA step interval.
func RecordRoad(road *ca.Road, steps int) *SampledTrace {
	return RecordRoadFunc(road, steps, nil)
}

// RecordRoadFunc is RecordRoad with a per-step observer: after every
// Road.Step (and never before recording its positions) the observer runs —
// the hook the invariant harness uses to validate the CA dynamics while
// the trace is produced. A nil observer degrades to RecordRoad.
func RecordRoadFunc(road *ca.Road, steps int, after func()) *SampledTrace {
	n := road.TotalVehicles()
	trace := &SampledTrace{
		Interval:  ca.StepSeconds,
		Positions: make([][]geometry.Vec2, n),
	}
	for i := range trace.Positions {
		trace.Positions[i] = make([]geometry.Vec2, 0, steps+1)
	}
	record := func() {
		positions := road.Positions(nil)
		for i, p := range positions {
			trace.Positions[i] = append(trace.Positions[i], p)
		}
	}
	record()
	for s := 0; s < steps; s++ {
		road.Step()
		if after != nil {
			after()
		}
		record()
	}
	return trace
}

// WarmupRoad advances the road without recording, letting the traffic reach
// its stationary regime before the communication experiment starts — the
// precaution §IV-B of the paper argues for.
func WarmupRoad(road *ca.Road, steps int) {
	WarmupRoadFunc(road, steps, nil)
}

// WarmupRoadFunc is WarmupRoad with the same per-step observer hook as
// RecordRoadFunc.
func WarmupRoadFunc(road *ca.Road, steps int, after func()) {
	for s := 0; s < steps; s++ {
		road.Step()
		if after != nil {
			after()
		}
	}
}
