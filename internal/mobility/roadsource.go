package mobility

import (
	"cavenet/internal/ca"
	"cavenet/internal/geometry"
)

// RoadModel is the steppable traffic-model surface the streaming mobility
// substrate drives: one synchronous CA step at a time, positions read
// back in persistent vehicle-identity order. Both the multi-lane
// *ca.Road and the urban *ca.Network satisfy it, so every road-shaped
// workload — ring, straight line or city grid — streams through the same
// forward-only cursor.
type RoadModel interface {
	// Step advances the model by one CA step (ca.StepSeconds of time).
	Step()
	// TotalVehicles reports the (constant) vehicle count.
	TotalVehicles() int
	// Positions appends the plane position of every vehicle, in persistent
	// global-ID order, to dst.
	Positions(dst []geometry.Vec2) []geometry.Vec2
}

var (
	_ RoadModel = (*ca.Road)(nil)
	_ RoadModel = (*ca.Network)(nil)
)

// RoadSourceConfig assembles a streaming cellular-automaton mobility
// source: the road steps live inside the simulation instead of being
// pre-recorded into a trace.
type RoadSourceConfig struct {
	// Road is the (typically warmed-up) CA traffic model to stream.
	Road RoadModel
	// Steps is how many CA steps the source covers; it serves Steps+1
	// samples (the initial state plus one per step) at ca.StepSeconds
	// and clamps beyond them, exactly like RecordRoad's trace.
	Steps int
	// Static appends fixed plane positions after the vehicles — roadside
	// units and other infrastructure nodes that exist in the network world
	// but never move. Node IDs: vehicles first, then Static in order.
	Static []geometry.Vec2
	// AfterStep, when non-nil, runs after every Road.Step and before the
	// step's positions are read — the hook the invariant harness uses to
	// validate the CA dynamics while the simulation runs.
	AfterStep func()
	// Overlay, when non-nil, rewrites sample row k in place after the
	// road's positions are read — how activation ramps park staged
	// vehicles without materializing the trace they would be edited into.
	Overlay func(k int, row []geometry.Vec2)
	// OnSample, when non-nil, observes every finished row (post-Overlay);
	// see StreamConfig.OnSample.
	OnSample func(k int, row []geometry.Vec2)
}

// NewRoadSource streams a CA road as a mobility Source with O(nodes)
// retained state. The produced samples — and therefore any run driven by
// the source — are bit-identical to RecordRoad over the same road: the
// fill sequence (read initial positions, then step/observe/read per
// sample) is the recorder's exact loop, executed lazily.
func NewRoadSource(cfg RoadSourceConfig) (*Stream, error) {
	road := cfg.Road
	vehicles := road.TotalVehicles()
	fill := func(k int, row []geometry.Vec2) {
		if k > 0 {
			road.Step()
			if cfg.AfterStep != nil {
				cfg.AfterStep()
			}
		}
		road.Positions(row[:0])
		copy(row[vehicles:], cfg.Static)
		if cfg.Overlay != nil {
			cfg.Overlay(k, row)
		}
	}
	return NewStream(StreamConfig{
		Nodes:    vehicles + len(cfg.Static),
		Interval: ca.StepSeconds,
		Samples:  cfg.Steps + 1,
		Fill:     fill,
		OnSample: cfg.OnSample,
	})
}
