package mobility

import (
	"math/rand"
	"testing"

	"cavenet/internal/ca"
	"cavenet/internal/geometry"
)

// The mobility substrate benchmarks behind PERF.md's "Streaming mobility"
// table: materializing a road trace (O(nodes × samples) bytes) versus
// driving the streaming source across the same horizon (O(nodes) bytes).
// Run with -benchmem; the B/op column is the point.

func benchRoad(b *testing.B, vehicles int) *ca.Road {
	b.Helper()
	road, err := ca.NewRoad([]ca.LaneSpec{{
		Config: ca.Config{Length: vehicles * 4, Vehicles: vehicles, SlowdownP: 0.3, Boundary: ca.RingBoundary},
		Placement: geometry.Ring{
			Center:        geometry.Vec2{X: 1000, Y: 1000},
			Circumference: float64(vehicles*4) * ca.CellLength,
		},
	}}, rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}
	return road
}

const benchSteps = 300

// Both benchmarks cover the same end-to-end job — supply every node
// position for a benchSteps-second run at the world's 100 ms tick grid —
// so ns/op is comparable; the recorded path splits it into materializing
// the trace and then querying it, the streamed path fuses the two.
func benchmarkRecordRoad(b *testing.B, vehicles int) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		road := benchRoad(b, vehicles)
		b.StartTimer()
		trace := RecordRoad(road, benchSteps)
		if trace.NumSamples() != benchSteps+1 {
			b.Fatal("short trace")
		}
		for tick := 0; tick <= benchSteps*10; tick++ {
			tsec := float64(tick) * 0.1
			for n := 0; n < trace.NumNodes(); n++ {
				trace.At(n, tsec)
			}
		}
	}
}

func benchmarkStreamRoad(b *testing.B, vehicles int) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		road := benchRoad(b, vehicles)
		b.StartTimer()
		src, err := NewRoadSource(RoadSourceConfig{Road: road, Steps: benchSteps})
		if err != nil {
			b.Fatal(err)
		}
		// Drive the full horizon at the world's 100 ms tick granularity.
		for tick := 0; tick <= benchSteps*10; tick++ {
			tsec := float64(tick) * 0.1
			for n := 0; n < src.NumNodes(); n++ {
				src.At(n, tsec)
			}
		}
	}
}

func BenchmarkMobilityRecordRoadN1k(b *testing.B)  { benchmarkRecordRoad(b, 1000) }
func BenchmarkMobilityStreamRoadN1k(b *testing.B)  { benchmarkStreamRoad(b, 1000) }
func BenchmarkMobilityRecordRoadN10k(b *testing.B) { benchmarkRecordRoad(b, 10000) }
func BenchmarkMobilityStreamRoadN10k(b *testing.B) { benchmarkStreamRoad(b, 10000) }
