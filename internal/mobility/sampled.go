// Package mobility turns traffic models into node movement that the network
// simulator (and ns-2, via the trace package) can consume.
//
// It implements the BA→CPS coupling of the paper's Fig. 2: the cellular
// automaton produces movement patterns; this package maps them into plane
// coordinates using the lane placements of §III-D, samples them at the CA
// step interval, and — for comparison experiments — provides the classical
// Random Waypoint model whose velocity-decay problem §IV-B discusses.
package mobility

import (
	"fmt"

	"cavenet/internal/geometry"
)

// SampledTrace holds node positions sampled at a fixed interval. Positions
// between samples are linearly interpolated; times beyond the last sample
// clamp to it.
type SampledTrace struct {
	// Interval is the sampling period in seconds (the CA's Δt = 1 s for
	// CAVENET traces).
	Interval float64
	// Positions is indexed [node][sample].
	Positions [][]geometry.Vec2
}

// SampleCount reports how many interval-spaced samples cover [0, duration]
// inclusive of both endpoints: floor(duration/interval) + 1, with a
// one-ulp-scale tolerance on the quotient. A bare int(duration/interval)
// drops the final sample whenever the division lands just below an integer
// (0.3/0.1 = 2.999…96), which silently shortened traces by one step.
func SampleCount(duration, interval float64) int {
	q := duration / interval
	if q < 0 {
		return 1
	}
	return int(q+q*4e-16+1e-9) + 1
}

// NumNodes reports the number of nodes in the trace.
func (t *SampledTrace) NumNodes() int { return len(t.Positions) }

// NumSamples reports the number of samples per node (0 for an empty trace).
func (t *SampledTrace) NumSamples() int {
	if len(t.Positions) == 0 {
		return 0
	}
	return len(t.Positions[0])
}

// Duration reports the trace duration in seconds.
func (t *SampledTrace) Duration() float64 {
	n := t.NumSamples()
	if n == 0 {
		return 0
	}
	return float64(n-1) * t.Interval
}

// At returns the position of node at time tsec (seconds), linearly
// interpolating between samples and clamping outside the sampled range.
func (t *SampledTrace) At(node int, tsec float64) geometry.Vec2 {
	samples := t.Positions[node]
	if len(samples) == 0 {
		return geometry.Vec2{}
	}
	if tsec <= 0 {
		return samples[0]
	}
	idx := tsec / t.Interval
	i := int(idx)
	if i >= len(samples)-1 {
		return samples[len(samples)-1]
	}
	frac := idx - float64(i)
	return lerpSample(samples[i], samples[i+1], frac)
}

// SampleInterval implements RowSource.
func (t *SampledTrace) SampleInterval() float64 { return t.Interval }

// Row implements RowSource: sample k of every node, clamped to the last
// sample (a materialized trace supports random access, so the
// forward-only cursor contract is trivially met). A node with no samples
// contributes the zero position, mirroring At.
func (t *SampledTrace) Row(k int, dst []geometry.Vec2) []geometry.Vec2 {
	dst = dst[:0]
	for n := range t.Positions {
		samples := t.Positions[n]
		if len(samples) == 0 {
			dst = append(dst, geometry.Vec2{})
			continue
		}
		i := k
		if i >= len(samples) {
			i = len(samples) - 1
		}
		dst = append(dst, samples[i])
	}
	return dst
}

// Speed returns the average speed of node, in m/s, over the sample interval
// containing tsec.
func (t *SampledTrace) Speed(node int, tsec float64) float64 {
	samples := t.Positions[node]
	if len(samples) < 2 {
		return 0
	}
	i := int(tsec / t.Interval)
	if i >= len(samples)-1 {
		i = len(samples) - 2
	}
	if i < 0 {
		i = 0
	}
	return samples[i].Dist(samples[i+1]) / t.Interval
}

// Validate checks structural invariants: equal sample counts across nodes
// and a positive interval.
func (t *SampledTrace) Validate() error {
	if t.Interval <= 0 {
		return fmt.Errorf("mobility: non-positive sample interval %v", t.Interval)
	}
	if len(t.Positions) == 0 {
		return fmt.Errorf("mobility: trace has no nodes")
	}
	n := len(t.Positions[0])
	for i, p := range t.Positions {
		if len(p) != n {
			return fmt.Errorf("mobility: node %d has %d samples, want %d", i, len(p), n)
		}
	}
	return nil
}
