package mobility

import (
	"math"
	"math/rand"
	"testing"

	"cavenet/internal/ca"
	"cavenet/internal/geometry"
)

func lineTrace() *SampledTrace {
	return &SampledTrace{
		Interval: 1,
		Positions: [][]geometry.Vec2{
			{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}},
			{{X: 5, Y: 5}, {X: 5, Y: 5}, {X: 5, Y: 5}},
		},
	}
}

func TestSampledTraceAccessors(t *testing.T) {
	tr := lineTrace()
	if tr.NumNodes() != 2 || tr.NumSamples() != 3 {
		t.Fatalf("nodes=%d samples=%d", tr.NumNodes(), tr.NumSamples())
	}
	if tr.Duration() != 2 {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSampledTraceInterpolation(t *testing.T) {
	tr := lineTrace()
	if p := tr.At(0, 0.5); p.X != 5 || p.Y != 0 {
		t.Fatalf("At(0.5) = %v", p)
	}
	if p := tr.At(0, 1.25); math.Abs(p.X-12.5) > 1e-12 {
		t.Fatalf("At(1.25) = %v", p)
	}
}

func TestSampledTraceClamping(t *testing.T) {
	tr := lineTrace()
	if p := tr.At(0, -5); p.X != 0 {
		t.Fatalf("negative time should clamp to first sample: %v", p)
	}
	if p := tr.At(0, 99); p.X != 20 {
		t.Fatalf("beyond-end time should clamp to last sample: %v", p)
	}
}

func TestSampledTraceSpeed(t *testing.T) {
	tr := lineTrace()
	if v := tr.Speed(0, 0.5); v != 10 {
		t.Fatalf("Speed = %v, want 10 m/s", v)
	}
	if v := tr.Speed(1, 0.5); v != 0 {
		t.Fatalf("stationary node speed = %v", v)
	}
	// Clamps at the ends.
	if v := tr.Speed(0, 99); v != 10 {
		t.Fatalf("clamped speed = %v", v)
	}
}

func TestSampledTraceValidation(t *testing.T) {
	bad := &SampledTrace{Interval: 1, Positions: [][]geometry.Vec2{
		make([]geometry.Vec2, 3),
		make([]geometry.Vec2, 2),
	}}
	if bad.Validate() == nil {
		t.Fatal("ragged trace must fail validation")
	}
	if (&SampledTrace{Interval: 0, Positions: [][]geometry.Vec2{{}}}).Validate() == nil {
		t.Fatal("zero interval must fail validation")
	}
	if (&SampledTrace{Interval: 1}).Validate() == nil {
		t.Fatal("empty trace must fail validation")
	}
}

func TestSampledTraceEmptyNode(t *testing.T) {
	tr := &SampledTrace{Interval: 1, Positions: [][]geometry.Vec2{{}}}
	if p := tr.At(0, 1); p != (geometry.Vec2{}) {
		t.Fatalf("empty node position = %v", p)
	}
	if tr.Duration() != 0 {
		t.Fatal("empty trace duration should be 0")
	}
}

func TestRecordRoad(t *testing.T) {
	road, err := ca.NewRoad([]ca.LaneSpec{{
		Config:    ca.Config{Length: 100, Vehicles: 10, SlowdownP: 0.3},
		Placement: geometry.Ring{Circumference: 750},
	}}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	tr := RecordRoad(road, 20)
	if tr.NumNodes() != 10 {
		t.Fatalf("nodes = %d", tr.NumNodes())
	}
	if tr.NumSamples() != 21 {
		t.Fatalf("samples = %d, want steps+1", tr.NumSamples())
	}
	if tr.Interval != ca.StepSeconds {
		t.Fatalf("interval = %v", tr.Interval)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every recorded position lies on the ring.
	ring := geometry.Ring{Circumference: 750}
	for n := 0; n < tr.NumNodes(); n++ {
		for s := 0; s < tr.NumSamples(); s++ {
			p := tr.Positions[n][s]
			if r := p.Dist(ring.Center); math.Abs(r-ring.Radius()) > 1e-6 {
				t.Fatalf("node %d sample %d off ring", n, s)
			}
		}
	}
}

func TestWarmupRoadAdvances(t *testing.T) {
	road, err := ca.NewRoad([]ca.LaneSpec{{
		Config:    ca.Config{Length: 50, Vehicles: 5},
		Placement: geometry.Line{Transform: geometry.Identity()},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	WarmupRoad(road, 30)
	if road.StepCount() != 30 {
		t.Fatalf("StepCount = %d", road.StepCount())
	}
}

func TestRandomWaypointStaysInArea(t *testing.T) {
	cfg := RandomWaypointConfig{
		Nodes: 20, AreaX: 500, AreaY: 300, VMin: 1, VMax: 10,
	}
	tr, _ := RandomWaypoint(cfg, 200, rand.New(rand.NewSource(2)))
	for n := range tr.Positions {
		for _, p := range tr.Positions[n] {
			if p.X < -1e-9 || p.X > 500+1e-9 || p.Y < -1e-9 || p.Y > 300+1e-9 {
				t.Fatalf("node %d left the area: %v", n, p)
			}
		}
	}
}

func TestRandomWaypointVelocityDecay(t *testing.T) {
	// The classical RW pathology (§IV-B of the paper): with VMin ≈ 0 the
	// mean velocity decays because slow nodes' trips last longer. The mean
	// over the last tenth must be clearly below the initial mean.
	cfg := RandomWaypointConfig{
		Nodes: 200, AreaX: 1000, AreaY: 1000, VMin: 0.01, VMax: 20,
	}
	_, vel := RandomWaypoint(cfg, 3000, rand.New(rand.NewSource(3)))
	head := vel[0]
	tail := 0.0
	for _, v := range vel[len(vel)-len(vel)/10:] {
		tail += v
	}
	tail /= float64(len(vel) / 10)
	if tail > head*0.8 {
		t.Fatalf("no velocity decay: head %v, tail %v", head, tail)
	}
}

func TestRandomWaypointTraceShape(t *testing.T) {
	cfg := RandomWaypointConfig{Nodes: 3, AreaX: 100, AreaY: 100, VMin: 1, VMax: 5, Interval: 0.5}
	tr, vel := RandomWaypoint(cfg, 10, rand.New(rand.NewSource(4)))
	if tr.NumNodes() != 3 {
		t.Fatalf("nodes = %d", tr.NumNodes())
	}
	if tr.NumSamples() != 21 {
		t.Fatalf("samples = %d, want duration/interval+1", tr.NumSamples())
	}
	if len(vel) != tr.NumSamples() {
		t.Fatalf("velocity series length %d != samples %d", len(vel), tr.NumSamples())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSampleCountFloatTruncation(t *testing.T) {
	cases := []struct {
		duration, interval float64
		want               int
	}{
		{0.3, 0.1, 4},      // 0.3/0.1 = 2.999…96: truncation dropped a sample
		{10, 0.5, 21},      // 10/0.5 = 20.000…04: must not gain one either
		{10, 1, 11},        // exact division
		{10.4, 1, 11},      // genuine remainder still floors
		{0, 1, 1},          // a zero-length trace is the initial sample
		{3600, 0.1, 36001}, // long trace at a fine interval
	}
	for _, c := range cases {
		if got := SampleCount(c.duration, c.interval); got != c.want {
			t.Errorf("SampleCount(%v, %v) = %d, want %d", c.duration, c.interval, got, c.want)
		}
	}
}

func TestRandomWaypointSampleCountRegression(t *testing.T) {
	// duration/interval one ulp below an integer must not lose the final
	// sample: 0.3/0.1 covers t = 0, 0.1, 0.2, 0.3.
	cfg := RandomWaypointConfig{Nodes: 2, AreaX: 10, AreaY: 10, VMin: 1, VMax: 2, Interval: 0.1}
	tr, vel := RandomWaypoint(cfg, 0.3, rand.New(rand.NewSource(6)))
	if tr.NumSamples() != 4 || len(vel) != 4 {
		t.Fatalf("samples = %d, velocity = %d, want 4", tr.NumSamples(), len(vel))
	}
}

func TestRandomWaypointPause(t *testing.T) {
	// With an enormous pause every node is parked at its first waypoint
	// arrival; positions must eventually stop changing.
	cfg := RandomWaypointConfig{Nodes: 5, AreaX: 50, AreaY: 50, VMin: 5, VMax: 10, Pause: 1e9}
	tr, _ := RandomWaypoint(cfg, 100, rand.New(rand.NewSource(5)))
	for n := range tr.Positions {
		last := tr.Positions[n][len(tr.Positions[n])-1]
		prev := tr.Positions[n][len(tr.Positions[n])-2]
		if last.Dist(prev) > 1e-9 {
			t.Fatalf("node %d still moving during infinite pause", n)
		}
	}
}
