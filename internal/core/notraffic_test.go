package core

import "testing"

// Regression for the pre-refactor behavior: an explicitly empty sender
// list is a traffic-free run (control overhead only), not an error.
func TestRunScenarioNoTraffic(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{Senders: []int{}, SimTime: 5e9, Nodes: 5, CircuitMeters: 500})
	if err != nil {
		t.Fatalf("traffic-free scenario errored: %v", err)
	}
	if len(res.Sent) != 0 || res.ControlPackets == 0 {
		t.Fatalf("sent=%v ctrl=%d", res.Sent, res.ControlPackets)
	}
}
