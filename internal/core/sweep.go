package core

import (
	"fmt"

	"cavenet/internal/exp"
	"cavenet/internal/rng"
	"cavenet/internal/stats"
)

// SweepConfig spans a (node count × protocol × trial) experiment grid —
// the shape of every multi-point figure in the paper: density sweeps on
// the x-axis, one curve per protocol, each point a seeded Monte-Carlo
// ensemble.
type SweepConfig struct {
	// Base is the scenario template; Nodes, Protocol and Seed are
	// overridden per grid point, everything else (circuit length, traffic,
	// PHY/MAC parameters) is shared. Base.Seed is the root seed of the
	// whole sweep.
	Base ScenarioConfig
	// Protocols lists the routing protocols to compare; default all three.
	Protocols []Protocol
	// Nodes is the density axis: vehicle counts on the circuit. Default
	// {Base.Nodes} (a single density).
	Nodes []int
	// Trials is the number of replications per grid point (the paper uses
	// 20); trial t of density cell d runs with seed root.Fork(d).Fork(t).
	// Default 1.
	Trials int
	// Workers bounds the worker pool; <= 0 uses every core. The output is
	// bit-identical for any worker count.
	Workers int
}

func (c *SweepConfig) normalize() error {
	if err := c.Base.normalize(); err != nil {
		return err
	}
	if len(c.Protocols) == 0 {
		c.Protocols = []Protocol{AODV, OLSR, DYMO}
	}
	for _, p := range c.Protocols {
		switch p {
		case AODV, OLSR, DYMO, GPSR:
		default:
			return fmt.Errorf("core: unknown protocol %q in sweep", p)
		}
	}
	if len(c.Nodes) == 0 {
		c.Nodes = []int{c.Base.Nodes}
	}
	for _, n := range c.Nodes {
		// A non-positive count would silently re-default to 30 vehicles
		// inside the per-trial normalize while the output row reported the
		// bogus density — reject it here instead.
		if n <= 0 {
			return fmt.Errorf("core: invalid node count %d in sweep", n)
		}
	}
	if c.Trials == 0 {
		c.Trials = 1
	}
	if c.Trials < 0 {
		return fmt.Errorf("core: negative trial count %d", c.Trials)
	}
	return nil
}

// SweepPoint aggregates the Trials replications of one (protocol, nodes)
// grid cell. Every metric is a mean ± spread across trials.
type SweepPoint struct {
	Protocol Protocol `json:"protocol"`
	Nodes    int      `json:"nodes"`
	// DensityPerKM is vehicles per kilometre of circuit.
	DensityPerKM float64 `json:"densityPerKm"`
	Trials       int     `json:"trials"`
	// PDR is the total packet delivery ratio across senders (Fig. 11).
	PDR stats.Estimate `json:"pdr"`
	// GoodputBPS is the summed sender goodput averaged over 1-s bins
	// (Figs. 8–10).
	GoodputBPS stats.Estimate `json:"goodputBps"`
	// DelaySec is the mean end-to-end delay across senders.
	DelaySec stats.Estimate `json:"delaySec"`
	// ControlPackets is the routing overhead per trial.
	ControlPackets stats.Estimate `json:"controlPackets"`
	// MACRetries counts link-layer retransmissions per trial.
	MACRetries stats.Estimate `json:"macRetries"`
}

// trialRow is the scalarized outcome of one scenario run.
type trialRow struct {
	pdr, goodput, delay, ctrl, retries float64
}

func rowOf(res *ScenarioResult) trialRow {
	var row trialRow
	row.pdr = res.TotalPDR()
	var delaySum float64
	var bins int
	for _, s := range res.Config.Senders {
		delaySum += res.MeanDelaySec[s]
		g := res.Goodput[s]
		if len(g) > bins {
			bins = len(g)
		}
	}
	if n := len(res.Config.Senders); n > 0 {
		row.delay = delaySum / float64(n)
	}
	if bins > 0 {
		var sum float64
		for _, s := range res.Config.Senders {
			for _, bps := range res.Goodput[s] {
				sum += bps
			}
		}
		row.goodput = sum / float64(bins)
	}
	row.ctrl = float64(res.ControlPackets)
	row.retries = float64(res.MACStats.Retries)
	return row
}

// Sweep executes the grid on the deterministic parallel engine and returns
// one aggregated point per (protocol, nodes) cell, protocols outermost in
// the order given, densities in the order given.
//
// The unit of parallel work is one (nodes, trial) pair: the job builds the
// cell's CA mobility trace once and evaluates every protocol on that same
// trace, preserving the paper's methodology ("the mobility pattern for all
// scenarios is the same"). Each pair derives its scenario seed as
// root.Fork(densityIndex).Fork(trial), so a trial's result depends only on
// (root seed, cell, trial) — never on scheduling — and the output is
// bit-identical for any Workers value, including 1.
func Sweep(cfg SweepConfig) ([]SweepPoint, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	src := rng.NewSource(cfg.Base.Seed)
	nt, np := cfg.Trials, len(cfg.Protocols)
	rows, err := exp.Map(exp.Runner{Workers: cfg.Workers}, len(cfg.Nodes)*nt, func(j int) ([]trialRow, error) {
		ni, trial := j/nt, j%nt
		run := cfg.Base
		run.Nodes = cfg.Nodes[ni]
		run.Seed = src.Fork(ni).Fork(trial).Seed()
		trace, err := BuildCircuitTrace(run)
		if err != nil {
			return nil, fmt.Errorf("core: sweep trace (nodes=%d trial=%d): %w", run.Nodes, trial, err)
		}
		out := make([]trialRow, np)
		for pi, p := range cfg.Protocols {
			c := run
			c.Protocol = p
			res, err := RunScenarioOnTrace(c, trace)
			if err != nil {
				return nil, fmt.Errorf("core: sweep %s (nodes=%d trial=%d): %w", p, run.Nodes, trial, err)
			}
			out[pi] = rowOf(res)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	points := make([]SweepPoint, 0, np*len(cfg.Nodes))
	samples := make([]float64, nt)
	estimate := func(ni, pi int, pick func(trialRow) float64) stats.Estimate {
		for t := 0; t < nt; t++ {
			samples[t] = pick(rows[ni*nt+t][pi])
		}
		return stats.EstimateOf(samples)
	}
	for pi, p := range cfg.Protocols {
		for ni, nodes := range cfg.Nodes {
			points = append(points, SweepPoint{
				Protocol:       p,
				Nodes:          nodes,
				DensityPerKM:   float64(nodes) / (cfg.Base.CircuitMeters / 1000),
				Trials:         nt,
				PDR:            estimate(ni, pi, func(r trialRow) float64 { return r.pdr }),
				GoodputBPS:     estimate(ni, pi, func(r trialRow) float64 { return r.goodput }),
				DelaySec:       estimate(ni, pi, func(r trialRow) float64 { return r.delay }),
				ControlPackets: estimate(ni, pi, func(r trialRow) float64 { return r.ctrl }),
				MACRetries:     estimate(ni, pi, func(r trialRow) float64 { return r.retries }),
			})
		}
	}
	return points, nil
}
