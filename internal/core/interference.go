package core

import (
	"fmt"

	"cavenet/internal/mac"
	"cavenet/internal/metrics"
	"cavenet/internal/netsim"
	"cavenet/internal/phy"
	"cavenet/internal/routing/aodv"
	"cavenet/internal/sim"
	"cavenet/internal/traffic"
)

// InterferenceConfig parameterizes the Fig. 1-b experiment: a multihop CBR
// flow along one lane while the opposite lane's vehicles generate their own
// traffic, interfering at the radio level ("the message penetration on a
// particular lane can be affected by the radio interference on the opposite
// lane").
type InterferenceConfig struct {
	LaneLengthMeters float64 // default 2000
	VehiclesPerLane  int     // default 16
	SlowdownP        float64 // default 0.3
	// BackgroundRate is the interfering per-node CBR rate in packets/s on
	// the opposite lane (default 10).
	BackgroundRate float64
	// BackgroundBytes is the interfering packet size (default 512).
	BackgroundBytes int
	SimTime         sim.Time // default 60 s
	Seed            int64
}

func (c *InterferenceConfig) normalize() {
	if c.LaneLengthMeters == 0 {
		c.LaneLengthMeters = 2000
	}
	if c.VehiclesPerLane == 0 {
		c.VehiclesPerLane = 16
	}
	if c.SlowdownP == 0 {
		c.SlowdownP = 0.3
	}
	if c.BackgroundRate == 0 {
		c.BackgroundRate = 20
	}
	if c.BackgroundBytes == 0 {
		c.BackgroundBytes = 512
	}
	if c.SimTime == 0 {
		c.SimTime = 60 * sim.Second
	}
}

// InterferenceResult compares the primary flow with a quiet vs. an active
// opposite lane.
type InterferenceResult struct {
	// QuietPDR is the primary flow's delivery ratio when the opposite
	// lane's vehicles are present but silent (pure relay benefit).
	QuietPDR float64
	// InterferedPDR is the same flow when the opposite lane transmits.
	InterferedPDR float64
	// QuietRetries / InterferedRetries total the MAC retries in each run.
	QuietRetries, InterferedRetries uint64
}

// InterferenceExperiment quantifies Fig. 1-b: run the identical two-lane
// mobility twice — once with the opposite lane silent, once with it
// carrying neighbor-to-neighbor CBR — and compare the primary flow's PDR.
func InterferenceExperiment(cfg InterferenceConfig) (InterferenceResult, error) {
	cfg.normalize()
	trace, err := HighwayTrace(HighwayConfig{
		Lanes: []HighwayLane{
			{LengthMeters: cfg.LaneLengthMeters, Vehicles: cfg.VehiclesPerLane, SlowdownP: cfg.SlowdownP},
			{LengthMeters: cfg.LaneLengthMeters, Vehicles: cfg.VehiclesPerLane, SlowdownP: cfg.SlowdownP, OffsetY: 5, Reversed: true},
		},
		Warmup: 200,
		Steps:  int(cfg.SimTime/sim.Second) + 1,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return InterferenceResult{}, err
	}

	run := func(background bool) (float64, uint64, error) {
		world, err := netsim.NewWorld(netsim.WorldConfig{
			Nodes:       2 * cfg.VehiclesPerLane,
			Seed:        cfg.Seed,
			Propagation: phy.TwoRayGround{},
			Channel:     phy.Config{CaptureRatio: 10},
			MAC:         mac.Config{},
			Mobility:    trace,
		}, func(n *netsim.Node) netsim.Router { return aodv.New(n, aodv.Config{}) })
		if err != nil {
			return 0, 0, err
		}
		collector := metrics.NewCollector(sim.Second, cfg.SimTime)
		collector.Bind(world)

		// Primary flow: first lane-0 vehicle to the vehicle half a lane
		// ahead (multihop).
		src := 0
		dst := cfg.VehiclesPerLane / 2
		world.Node(dst).AttachPort(netsim.PortCBR, &traffic.Sink{})
		primary := traffic.NewCBR(world.Node(src), traffic.CBRConfig{
			Dst:   netsim.NodeID(dst),
			Rate:  5,
			Start: 5 * sim.Second,
			Stop:  cfg.SimTime - 5*sim.Second,
		})
		primary.Start()

		if background {
			// Opposite lane: each vehicle unicasts to its follower,
			// saturating the shared channel.
			for i := 0; i < cfg.VehiclesPerLane; i++ {
				from := cfg.VehiclesPerLane + i
				to := cfg.VehiclesPerLane + (i+1)%cfg.VehiclesPerLane
				world.Node(to).AttachPort(netsim.PortCBR+1+i, &traffic.Sink{})
				bg := traffic.NewCBR(world.Node(from), traffic.CBRConfig{
					Dst:         netsim.NodeID(to),
					Port:        netsim.PortCBR + 1 + i,
					Rate:        cfg.BackgroundRate,
					PacketBytes: cfg.BackgroundBytes,
					Start:       5 * sim.Second,
					Stop:        cfg.SimTime - 5*sim.Second,
				})
				bg.Start()
			}
		}
		world.Run(cfg.SimTime)
		var retries uint64
		for _, n := range world.Nodes() {
			retries += n.MAC().Stats().Retries
		}
		return collector.PDR(netsim.NodeID(src)), retries, nil
	}

	quietPDR, quietRetries, err := run(false)
	if err != nil {
		return InterferenceResult{}, fmt.Errorf("core: quiet run: %w", err)
	}
	interfPDR, interfRetries, err := run(true)
	if err != nil {
		return InterferenceResult{}, fmt.Errorf("core: interfered run: %w", err)
	}
	return InterferenceResult{
		QuietPDR:          quietPDR,
		InterferedPDR:     interfPDR,
		QuietRetries:      quietRetries,
		InterferedRetries: interfRetries,
	}, nil
}
