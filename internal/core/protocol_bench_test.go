package core

import (
	"testing"

	"cavenet/internal/sim"
)

// n1kConfig is the routing-scale end-to-end scenario: 1000 vehicles at
// highway density (1 per 15 m) on a 15 km circuit, 10 s of simulated time.
// At this scale the OLSR control plane used to dominate the run — see the
// "Routing control plane" section of PERF.md.
func n1kConfig() ScenarioConfig {
	return ScenarioConfig{
		Nodes:         1000,
		CircuitMeters: 15000,
		SimTime:       10 * sim.Second,
		TrafficStart:  2 * sim.Second,
		TrafficStop:   8 * sim.Second,
		CAWarmup:      50,
		Seed:          1,
	}
}

// BenchmarkCompareProtocolsN1000 runs the paper's protocol comparison at
// N=1000 over a shared mobility trace — the ROADMAP-scale sweep cell.
// Iteration-based benchtime only (the trace is rebuilt per iteration).
func BenchmarkCompareProtocolsN1000(b *testing.B) {
	cfg := n1kConfig()
	for i := 0; i < b.N; i++ {
		if _, err := CompareProtocols(cfg, []Protocol{AODV, OLSR, DYMO}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioOLSRN1000 isolates the OLSR cell of the comparison (the
// control-plane-bound one; the trace build is excluded from the timing).
func BenchmarkScenarioOLSRN1000(b *testing.B) {
	cfg := n1kConfig()
	cfg.Protocol = OLSR
	trace, err := BuildCircuitTrace(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunScenarioOnTrace(cfg, trace); err != nil {
			b.Fatal(err)
		}
	}
}
