package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"cavenet/internal/sim"
)

func sweepScenario() ScenarioConfig {
	return ScenarioConfig{
		CircuitMeters: 1000,
		SimTime:       10 * sim.Second,
		Senders:       []int{1, 2},
		TrafficStart:  2 * sim.Second,
		TrafficStop:   8 * sim.Second,
		CAWarmup:      50,
		Seed:          5,
	}
}

// TestSweepBitIdenticalAcrossWorkerCounts is the engine's determinism
// contract: the same grid with the same root seed must serialize to the
// same bytes whether it ran on 1 worker or 8.
func TestSweepBitIdenticalAcrossWorkerCounts(t *testing.T) {
	grid := SweepConfig{
		Base:      sweepScenario(),
		Protocols: []Protocol{AODV, DYMO},
		Nodes:     []int{8, 10},
		Trials:    2,
	}
	marshal := func(workers int) []byte {
		g := grid
		g.Workers = workers
		pts, err := Sweep(g)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.Marshal(pts)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := marshal(1)
	eight := marshal(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("sweep output differs across worker counts:\n 1: %s\n 8: %s", one, eight)
	}
}

func TestSweepGridShapeAndAggregation(t *testing.T) {
	pts, err := Sweep(SweepConfig{
		Base:      sweepScenario(),
		Protocols: []Protocol{DYMO, AODV},
		Nodes:     []int{10, 8},
		Trials:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 2 protocols × 2 densities", len(pts))
	}
	// Protocols outermost in the given order, densities in the given order.
	wantOrder := []struct {
		p Protocol
		n int
	}{{DYMO, 10}, {DYMO, 8}, {AODV, 10}, {AODV, 8}}
	for i, w := range wantOrder {
		if pts[i].Protocol != w.p || pts[i].Nodes != w.n {
			t.Fatalf("point %d = (%s, %d), want (%s, %d)",
				i, pts[i].Protocol, pts[i].Nodes, w.p, w.n)
		}
	}
	for _, pt := range pts {
		if pt.Trials != 3 || pt.PDR.N != 3 {
			t.Fatalf("point %+v did not aggregate 3 trials", pt)
		}
		if pt.DensityPerKM != float64(pt.Nodes) {
			t.Fatalf("density %v for %d nodes on a 1 km circuit", pt.DensityPerKM, pt.Nodes)
		}
		if pt.PDR.Mean <= 0 {
			t.Fatalf("no traffic delivered for %+v", pt)
		}
	}
}

func TestSweepRejectsUnknownProtocol(t *testing.T) {
	_, err := Sweep(SweepConfig{Base: sweepScenario(), Protocols: []Protocol{"dsr"}})
	if err == nil {
		t.Fatal("unknown protocol must fail")
	}
}

// TestCompareMatchesDirectRuns pins the parallel CompareProtocols to the
// semantics of the sequential loop it replaced: per-protocol results equal
// a direct run over the same trace.
func TestCompareMatchesDirectRuns(t *testing.T) {
	cfg := sweepScenario()
	cfg.Nodes = 10
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	got, err := CompareProtocols(cfg, []Protocol{AODV, OLSR, DYMO})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := BuildCircuitTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Protocol{AODV, OLSR, DYMO} {
		c := cfg
		c.Protocol = p
		want, err := RunScenarioOnTrace(c, trace)
		if err != nil {
			t.Fatal(err)
		}
		if got[p].TotalPDR() != want.TotalPDR() ||
			got[p].ControlPackets != want.ControlPackets ||
			got[p].MACStats.Retries != want.MACStats.Retries {
			t.Fatalf("%s: parallel Compare diverges from direct run", p)
		}
	}
}
