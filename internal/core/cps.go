package core

import (
	"fmt"
	"math"

	"cavenet/internal/ca"
	"cavenet/internal/exp"
	"cavenet/internal/geometry"
	"cavenet/internal/mac"
	"cavenet/internal/mobility"
	"cavenet/internal/rng"
	"cavenet/internal/scenario"
	"cavenet/internal/sim"
)

// Protocol selects the routing protocol under test. It is the scenario
// registry's protocol type: the Table I entry points below are adapters
// over the scenario substrate, which owns world assembly.
type Protocol = scenario.Protocol

// The protocols evaluated by the paper, plus the GPSR geographic
// baseline.
const (
	AODV = scenario.AODV
	OLSR = scenario.OLSR
	DYMO = scenario.DYMO
	GPSR = scenario.GPSR
)

// ScenarioConfig mirrors Table I of the paper. Zero values give exactly the
// paper's parameters: 30 nodes on a 3000 m circuit, 100 s of simulated
// time, CBR 5 packets/s × 512 bytes from nodes 1–8 to node 0 between 10 s
// and 90 s, IEEE 802.11 DCF at 2 Mbps without RTS/CTS, 250 m two-ray-ground
// transmission range, HELLO 1 s, TC 2 s.
type ScenarioConfig struct {
	Protocol Protocol

	Nodes         int     // Table I: 30
	CircuitMeters float64 // Table I: 3000 m circuit
	SlowdownP     float64 // NaS randomization while driving (default 0.3)
	CAWarmup      int     // CA steps discarded before the trace (default 300)

	SimTime      sim.Time // Table I: 100 s
	Receiver     int      // Table I: node 0
	Senders      []int    // Table I: nodes 1..8
	Rate         float64  // Table I: 5 packets/s
	PacketBytes  int      // Table I: 512 bytes
	TrafficStart sim.Time // Table I: 10 s
	TrafficStop  sim.Time // Table I: 90 s

	RangeMeters float64 // Table I: 250 m
	DataRateBPS float64 // Table I: 2 Mb/s

	Seed int64

	// OLSRETX switches OLSR to the ETX/LQ metric of §III-B.1.
	OLSRETX bool
	// AODVNoExpandingRing disables AODV's expanding-ring search (ablation).
	AODVNoExpandingRing bool
	// DYMONoPathAccumulation disables DYMO path accumulation (ablation).
	DYMONoPathAccumulation bool
	// NoCapture disables PHY capture so any overlap collides (ablation).
	NoCapture bool
	// RTSThreshold enables the 802.11 RTS/CTS exchange for unicast data of
	// at least this many bytes. Table I says "RTS/CTS: None", so the
	// default is off; the ablation bench measures the trade-off.
	RTSThreshold int
	// StraightLine uses the pre-improvement open-boundary straight-line
	// mobility instead of the circuit (the paper's §III-B motivation).
	StraightLine bool
	// StaticNodes freezes vehicles at their warm-up positions; used by
	// integration tests that need a stable topology.
	StaticNodes bool
}

func (c *ScenarioConfig) normalize() error {
	switch c.Protocol {
	case AODV, OLSR, DYMO, GPSR:
	case "":
		c.Protocol = AODV
	default:
		return fmt.Errorf("core: unknown protocol %q", c.Protocol)
	}
	if c.Nodes == 0 {
		c.Nodes = 30
	}
	if c.CircuitMeters == 0 {
		c.CircuitMeters = 3000
	}
	if c.SlowdownP == 0 {
		c.SlowdownP = 0.3
	}
	if c.CAWarmup == 0 {
		c.CAWarmup = 300
	}
	if c.SimTime == 0 {
		c.SimTime = 100 * sim.Second
	}
	if c.Senders == nil {
		for i := 1; i <= 8; i++ {
			c.Senders = append(c.Senders, i)
		}
	}
	if c.Rate == 0 {
		c.Rate = 5
	}
	if c.PacketBytes == 0 {
		c.PacketBytes = 512
	}
	if c.TrafficStart == 0 {
		c.TrafficStart = 10 * sim.Second
	}
	if c.TrafficStop == 0 {
		c.TrafficStop = 90 * sim.Second
	}
	if c.RangeMeters == 0 {
		c.RangeMeters = 250
	}
	if c.DataRateBPS == 0 {
		c.DataRateBPS = 2e6
	}
	if c.Receiver < 0 || c.Receiver >= c.Nodes {
		return fmt.Errorf("core: receiver %d out of range", c.Receiver)
	}
	for _, s := range c.Senders {
		if s < 0 || s >= c.Nodes {
			return fmt.Errorf("core: sender %d out of range", s)
		}
		if s == c.Receiver {
			return fmt.Errorf("core: sender %d is the receiver", s)
		}
	}
	return nil
}

// ScenarioResult carries everything Figs. 8–11 plot, plus the overhead and
// delay metrics the paper defers to future work.
type ScenarioResult struct {
	Config ScenarioConfig
	// Goodput maps sender ID to its goodput time series in bps, 1-s bins
	// (Figs. 8–10).
	Goodput map[int][]float64
	// PDR maps sender ID to its packet delivery ratio (Fig. 11).
	PDR map[int]float64
	// Sent and Delivered count data packets per sender.
	Sent, Delivered map[int]uint64
	// MeanDelaySec maps sender ID to mean end-to-end delay of delivered
	// packets in seconds.
	MeanDelaySec map[int]float64
	// MeanHops maps sender ID to the average route length used.
	MeanHops map[int]float64
	// ControlPackets and ControlBytes total the routing overhead.
	ControlPackets, ControlBytes uint64
	// MACStats aggregates MAC counters over all nodes.
	MACStats mac.Stats
	// Drops counts data-packet drops by reason.
	Drops map[string]uint64
}

// TotalPDR reports the delivery ratio across all senders.
func (r *ScenarioResult) TotalPDR() float64 {
	var sent, del uint64
	for _, s := range r.Sent {
		sent += s
	}
	for _, d := range r.Delivered {
		del += d
	}
	if sent == 0 {
		return 0
	}
	return float64(del) / float64(sent)
}

// BuildCircuitTrace produces the Table I mobility input: vehicles on a ring
// lane whose circumference is the configured circuit length, warmed into
// the stationary regime, then recorded for the scenario duration.
func BuildCircuitTrace(cfg ScenarioConfig) (*mobility.SampledTrace, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	cells := int(math.Round(cfg.CircuitMeters / ca.CellLength))
	boundary := ca.RingBoundary
	var placement geometry.LanePlacement = geometry.Ring{
		Center:        geometry.Vec2{X: cfg.CircuitMeters / 2, Y: cfg.CircuitMeters / 2},
		Circumference: cfg.CircuitMeters,
	}
	if cfg.StraightLine {
		boundary = ca.OpenBoundary
		placement = geometry.Line{Transform: geometry.Translate(0, 10)}
	}
	src := rng.NewSource(cfg.Seed)
	road, err := ca.NewRoad([]ca.LaneSpec{{
		Config: ca.Config{
			Length:    cells,
			Vehicles:  cfg.Nodes,
			SlowdownP: cfg.SlowdownP,
			Boundary:  boundary,
		},
		Placement: placement,
	}}, src.Stream("ca"))
	if err != nil {
		return nil, err
	}
	mobility.WarmupRoad(road, cfg.CAWarmup)
	steps := int(cfg.SimTime/sim.Second) + 1
	trace := mobility.RecordRoad(road, steps)
	if cfg.StaticNodes {
		for n := range trace.Positions {
			for i := range trace.Positions[n] {
				trace.Positions[n][i] = trace.Positions[n][0]
			}
		}
	}
	return trace, nil
}

// RunScenario executes one Table I protocol evaluation and returns the
// paper's metrics.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	trace, err := BuildCircuitTrace(cfg)
	if err != nil {
		return nil, err
	}
	return RunScenarioOnTrace(cfg, trace)
}

// spec maps the Table I configuration onto the scenario substrate. The
// road fields only matter for spec-driven mobility generation; the Table I
// entry points always supply their own circuit trace.
func (c *ScenarioConfig) spec() scenario.Spec {
	flows := make([]scenario.Flow, len(c.Senders))
	for i, s := range c.Senders {
		flows[i] = scenario.Flow{
			Src:         s,
			Dst:         c.Receiver,
			Rate:        c.Rate,
			PacketBytes: c.PacketBytes,
			Start:       c.TrafficStart,
			Stop:        c.TrafficStop,
		}
	}
	return scenario.Spec{
		Name:          "table1",
		LaneVehicles:  []int{c.Nodes},
		CircuitMeters: c.CircuitMeters,
		SlowdownP:     c.SlowdownP,
		CAWarmup:      c.CAWarmup,
		Nodes:         c.Nodes,
		Protocol:      c.Protocol,
		SimTime:       c.SimTime,
		RangeMeters:   c.RangeMeters,
		DataRateBPS:   c.DataRateBPS,
		Seed:          c.Seed,
		Flows:         flows,

		OLSRETX:                c.OLSRETX,
		AODVNoExpandingRing:    c.AODVNoExpandingRing,
		DYMONoPathAccumulation: c.DYMONoPathAccumulation,
		NoCapture:              c.NoCapture,
		RTSThreshold:           c.RTSThreshold,
	}
}

// RunScenarioOnTrace runs the protocol evaluation on a caller-provided
// mobility trace (e.g. one parsed from an ns-2 scenario file, preserving
// the paper's BA/CPS separation) — RunScenarioOnSource specialized to
// the materialized oracle. A nil trace means no mobility (a typed nil
// must not masquerade as a live Source).
func RunScenarioOnTrace(cfg ScenarioConfig, trace *mobility.SampledTrace) (*ScenarioResult, error) {
	if trace == nil {
		return RunScenarioOnSource(cfg, nil)
	}
	return RunScenarioOnSource(cfg, trace)
}

// RunScenarioOnSource runs the protocol evaluation over any mobility
// source, streaming or materialized. World assembly is delegated to the
// scenario substrate — this adapter only translates the Table I
// configuration shape.
func RunScenarioOnSource(cfg ScenarioConfig, src mobility.Source) (*ScenarioResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	sres, err := scenario.RunOnSource(cfg.spec(), src)
	if err != nil {
		return nil, err
	}
	return &ScenarioResult{
		Config:         cfg,
		Goodput:        sres.Goodput,
		PDR:            sres.PDR,
		Sent:           sres.Sent,
		Delivered:      sres.Delivered,
		MeanDelaySec:   sres.MeanDelaySec,
		MeanHops:       sres.MeanHops,
		ControlPackets: sres.ControlPackets,
		ControlBytes:   sres.ControlBytes,
		MACStats:       sres.MACStats,
		Drops:          sres.Drops,
	}, nil
}

// CompareProtocols runs the Table I scenario once per protocol on the SAME
// mobility trace ("the mobility pattern for all scenarios is the same"),
// which is what makes Fig. 11's per-sender comparison meaningful.
//
// The per-protocol runs execute concurrently on the exp worker pool: each
// builds its own world and kernel, shares only the read-only trace, and
// seeds every RNG stream from cfg.Seed — so the results are identical to
// the old sequential loop for any worker count.
func CompareProtocols(cfg ScenarioConfig, protocols []Protocol) (map[Protocol]*ScenarioResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	trace, err := BuildCircuitTrace(cfg)
	if err != nil {
		return nil, err
	}
	results, err := exp.Map(exp.Runner{}, len(protocols), func(i int) (*ScenarioResult, error) {
		c := cfg
		c.Protocol = protocols[i]
		res, err := RunScenarioOnTrace(c, trace)
		if err != nil {
			return nil, fmt.Errorf("core: %s scenario: %w", protocols[i], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[Protocol]*ScenarioResult, len(protocols))
	for i, p := range protocols {
		out[p] = results[i]
	}
	return out, nil
}
