package core

import (
	"math"
	"testing"
)

func TestFundamentalDiagramShape(t *testing.T) {
	// Reduced Fig. 4: deterministic curve must rise to ≈vmax/(vmax+1) near
	// ρ=1/(vmax+1) and fall beyond; stochastic curve must lie below it.
	det, err := FundamentalDiagram(FundamentalConfig{
		LaneLength: 200, SlowdownP: 0, Trials: 5, Iterations: 200, Warmup: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sto, err := FundamentalDiagram(FundamentalConfig{
		LaneLength: 200, SlowdownP: 0.5, Trials: 5, Iterations: 200, Warmup: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != len(sto) || len(det) != 20 {
		t.Fatalf("default density grid size = %d, want 20", len(det))
	}
	peak, peakRho := 0.0, 0.0
	for _, p := range det {
		if p.Flow > peak {
			peak = p.Flow
			peakRho = p.Density
		}
	}
	if math.Abs(peak-5.0/6) > 0.05 {
		t.Fatalf("deterministic peak flow = %v, want ≈0.833", peak)
	}
	if math.Abs(peakRho-1.0/6) > 0.06 {
		t.Fatalf("deterministic peak density = %v, want ≈0.167", peakRho)
	}
	// p=0.5 lies strictly below p=0 in the congested branch and at peak.
	for i := range det {
		if det[i].Density > 0.1 && sto[i].Flow >= det[i].Flow {
			t.Fatalf("stochastic flow %v >= deterministic %v at ρ=%v",
				sto[i].Flow, det[i].Flow, det[i].Density)
		}
	}
	// Low-density branch: J grows ≈ linearly with ρ for the deterministic
	// model (free flow at vmax).
	if math.Abs(det[0].Flow-det[0].Density*5) > 0.01 {
		t.Fatalf("free-flow branch J=%v at ρ=%v", det[0].Flow, det[0].Density)
	}
}

func TestFundamentalDiagramError(t *testing.T) {
	if _, err := FundamentalDiagram(FundamentalConfig{
		LaneLength: 10, Densities: []float64{2.0}, Trials: 1, Iterations: 1,
	}); err == nil {
		t.Fatal("density > 1 must error (vehicles exceed sites)")
	}
}

func TestSpaceTimePlotPanels(t *testing.T) {
	// The four Fig. 5 panels, reduced.
	panels := []SpaceTimeConfig{
		{LaneLength: 800, Density: 0.0625, SlowdownP: 0.3, Steps: 50, Seed: 1},
		{LaneLength: 400, Density: 0.5, SlowdownP: 0.3, Steps: 50, Seed: 2},
		{LaneLength: 400, Density: 0.1, SlowdownP: 0, Steps: 50, Seed: 3},
		{LaneLength: 400, Density: 0.5, SlowdownP: 0, Steps: 50, Seed: 4},
	}
	for i, cfg := range panels {
		rows, err := SpaceTimePlot(cfg)
		if err != nil {
			t.Fatalf("panel %d: %v", i, err)
		}
		if len(rows) != 50 || len(rows[0]) != cfg.LaneLength {
			t.Fatalf("panel %d shape = %dx%d", i, len(rows), len(rows[0]))
		}
		want := int(math.Round(cfg.Density * float64(cfg.LaneLength)))
		for _, row := range rows {
			n := 0
			for _, c := range row {
				if c >= 0 {
					n++
				}
			}
			if n != want {
				t.Fatalf("panel %d conservation broken: %d vs %d", i, n, want)
			}
		}
	}
}

func TestVelocityRealizationLevels(t *testing.T) {
	// Fig. 6: ρ=0.1 fluctuates near vmax-p; ρ=0.5 is far slower.
	low, err := VelocityRealization(VelocityConfig{Density: 0.1, SlowdownP: 0.3, Steps: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	high, err := VelocityRealization(VelocityConfig{Density: 0.5, SlowdownP: 0.3, Steps: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs[len(xs)/2:] {
			s += x
		}
		return s / float64(len(xs)/2)
	}
	ml, mh := mean(low), mean(high)
	if ml < 4 || ml > 5 {
		t.Fatalf("low-density velocity = %v, want ≈ vmax-p = 4.7", ml)
	}
	if mh > 1.5 {
		t.Fatalf("high-density velocity = %v, want deeply congested", mh)
	}
}

func TestPeriodogramAnalysisSRDvsLRD(t *testing.T) {
	// Fig. 7: the deterministic model is SRD — after the transient its
	// stationary v̄(t) carries no diverging low-frequency power — while the
	// stochastic model near the critical density is 1/f-like (LRD).
	det, err := PeriodogramAnalysis(VelocityConfig{Density: 0.1, SlowdownP: 0, Steps: 4096, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sto, err := PeriodogramAnalysis(VelocityConfig{Density: 0.1, SlowdownP: 0.5, Steps: 4096, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if det.GPHSlope < -0.3 || det.GPHSlope > 0.3 {
		t.Fatalf("deterministic slope = %v, want ≈0 (SRD)", det.GPHSlope)
	}
	if det.Hurst < 0.4 || det.Hurst > 0.6 {
		t.Fatalf("deterministic Hurst = %v, want ≈0.5", det.Hurst)
	}
	if sto.GPHSlope > -0.8 {
		t.Fatalf("stochastic slope = %v, want strongly negative (1/f)", sto.GPHSlope)
	}
	if sto.Hurst <= 0.8 {
		t.Fatalf("stochastic Hurst = %v, want near 1 (LRD)", sto.Hurst)
	}
	if len(sto.Spectrum.Freq) == 0 {
		t.Fatal("empty spectrum")
	}
}

func TestTransientAnalysis(t *testing.T) {
	res, err := TransientAnalysis(VelocityConfig{Density: 0.1, SlowdownP: 0, Steps: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1000 {
		t.Fatalf("series length = %d", len(res.Series))
	}
	// From a compact jam at ρ=0.1 the deterministic model reaches free flow
	// quickly but not instantly.
	if res.Tau <= 0 || res.Tau > 500 {
		t.Fatalf("tau = %d, want a short positive transient", res.Tau)
	}
	if res.MSER < 0 || res.MSER > 500 {
		t.Fatalf("MSER = %d", res.MSER)
	}
	// After the transient the series must be at vmax.
	if v := res.Series[len(res.Series)-1]; v != 5 {
		t.Fatalf("steady-state velocity = %v, want 5", v)
	}
}

func TestRandomWaypointDecayDefaultConfig(t *testing.T) {
	trace, vel := RandomWaypointDecay(RWDecayConfig{Seed: 8, Duration: 1500, Nodes: 100})
	if trace.NumNodes() != 100 {
		t.Fatalf("nodes = %d", trace.NumNodes())
	}
	if len(vel) != trace.NumSamples() {
		t.Fatal("series/trace mismatch")
	}
	head := vel[0]
	tailMean := 0.0
	tail := vel[len(vel)-100:]
	for _, v := range tail {
		tailMean += v
	}
	tailMean /= float64(len(tail))
	if tailMean >= head {
		t.Fatalf("no decay: head %v tail %v", head, tailMean)
	}
}
