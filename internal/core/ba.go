// Package core assembles CAVENET's two blocks (Fig. 2 of the paper): the
// Behavioural Analyzer (mobility-model experiments on the NaS cellular
// automaton) and the Communication Protocol Simulator (the Table I protocol
// scenarios). Every figure of the paper's evaluation maps to a function
// here; the bench harness and the CLI both call into this package.
package core

import (
	"fmt"
	"math"

	"cavenet/internal/ca"
	"cavenet/internal/exp"
	"cavenet/internal/mobility"
	"cavenet/internal/rng"
	"cavenet/internal/stats"
)

// FundamentalPoint is one (ρ, J) sample of the fundamental diagram.
type FundamentalPoint struct {
	Density float64
	Flow    float64
	StdDev  float64
	// CI95 is the 95% confidence half-width of Flow across the ensemble.
	CI95 float64
}

// FundamentalConfig parameterizes a Fig. 4 sweep.
type FundamentalConfig struct {
	LaneLength int       // L; the paper uses 400
	SlowdownP  float64   // p
	Densities  []float64 // ρ sweep; nil gives the paper's 0.025..0.5 grid
	Trials     int       // ensemble size; the paper uses 20
	Iterations int       // steps per trial; the paper uses 500
	Warmup     int       // discarded steps before measuring
	Seed       int64
}

func (c *FundamentalConfig) normalize() {
	if c.LaneLength == 0 {
		c.LaneLength = 400
	}
	if c.Densities == nil {
		for rho := 0.025; rho <= 0.5001; rho += 0.025 {
			c.Densities = append(c.Densities, rho)
		}
	}
	if c.Trials == 0 {
		c.Trials = 20
	}
	if c.Iterations == 0 {
		c.Iterations = 500
	}
}

// FundamentalDiagram reproduces Fig. 4: flow J = ρ·v̄ against density ρ,
// each point the ensemble average over Trials runs of Iterations steps.
//
// The density × trial grid executes on the exp worker pool, every trial on
// its own hierarchical rng fork (seed → density → trial), and points are
// reduced in trial order — the result is bit-identical for any worker
// count.
func FundamentalDiagram(cfg FundamentalConfig) ([]FundamentalPoint, error) {
	cfg.normalize()
	src := rng.NewSource(cfg.Seed)
	counts := make([]int, len(cfg.Densities))
	for di, rho := range cfg.Densities {
		n := int(math.Round(rho * float64(cfg.LaneLength)))
		if n < 1 {
			n = 1
		}
		counts[di] = n
	}
	flows, err := exp.Map(exp.Runner{}, len(cfg.Densities)*cfg.Trials, func(j int) (float64, error) {
		di, trial := j/cfg.Trials, j%cfg.Trials
		lane, err := ca.NewLane(ca.Config{
			Length:    cfg.LaneLength,
			Vehicles:  counts[di],
			SlowdownP: cfg.SlowdownP,
			Placement: ca.RandomPlacement,
		}, src.Fork(di).Fork(trial).Stream("fundamental"))
		if err != nil {
			return 0, fmt.Errorf("core: fundamental diagram at rho=%v: %w", cfg.Densities[di], err)
		}
		return ca.FundamentalPoint(lane, cfg.Warmup, cfg.Iterations), nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]FundamentalPoint, 0, len(cfg.Densities))
	for di := range cfg.Densities {
		est := stats.EstimateOf(flows[di*cfg.Trials : (di+1)*cfg.Trials])
		out = append(out, FundamentalPoint{
			Density: float64(counts[di]) / float64(cfg.LaneLength),
			Flow:    est.Mean,
			StdDev:  est.StdDev,
			CI95:    est.CI95,
		})
	}
	return out, nil
}

// SpaceTimeConfig parameterizes one Fig. 5 panel.
type SpaceTimeConfig struct {
	LaneLength int
	Density    float64
	SlowdownP  float64
	Steps      int // the paper's panels show ~100 steps
	Warmup     int
	Seed       int64
}

// SpaceTimePlot reproduces one panel of Fig. 5: the occupancy rows after
// warmup.
func SpaceTimePlot(cfg SpaceTimeConfig) ([][]int, error) {
	if cfg.LaneLength == 0 {
		cfg.LaneLength = 400
	}
	if cfg.Steps == 0 {
		cfg.Steps = 100
	}
	n := int(math.Round(cfg.Density * float64(cfg.LaneLength)))
	lane, err := ca.NewLane(ca.Config{
		Length:    cfg.LaneLength,
		Vehicles:  n,
		SlowdownP: cfg.SlowdownP,
		Placement: ca.RandomPlacement,
	}, rng.NewSource(cfg.Seed).Stream("spacetime"))
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Warmup; i++ {
		lane.Step()
	}
	return ca.SpaceTime(lane, cfg.Steps), nil
}

// VelocityConfig parameterizes a Fig. 6 realization.
type VelocityConfig struct {
	LaneLength int
	Density    float64
	SlowdownP  float64
	Steps      int // the paper shows 5000
	// Warmup steps are discarded before spectral analysis (Fig. 6 plots the
	// raw realization including the transient, so VelocityRealization
	// ignores this; PeriodogramAnalysis uses it, defaulting to 512).
	Warmup int
	Seed   int64
}

// VelocityRealization reproduces one curve of Fig. 6: the sample path of
// the average velocity v̄(t).
func VelocityRealization(cfg VelocityConfig) ([]float64, error) {
	if cfg.LaneLength == 0 {
		cfg.LaneLength = 400
	}
	if cfg.Steps == 0 {
		cfg.Steps = 5000
	}
	n := int(math.Round(cfg.Density * float64(cfg.LaneLength)))
	lane, err := ca.NewLane(ca.Config{
		Length:    cfg.LaneLength,
		Vehicles:  n,
		SlowdownP: cfg.SlowdownP,
		Placement: ca.RandomPlacement,
	}, rng.NewSource(cfg.Seed).Stream("velocity"))
	if err != nil {
		return nil, err
	}
	return ca.RunVelocitySeries(lane, cfg.Steps), nil
}

// SpectrumResult is the output of a Fig. 7 periodogram analysis.
type SpectrumResult struct {
	Spectrum stats.Spectrum
	// GPHSlope is the log-log slope near the origin: ≈0 for SRD, clearly
	// negative for 1/f-like LRD.
	GPHSlope float64
	// Hurst is the rescaled-range exponent of the same series: ≈0.5 for
	// SRD, →1 for LRD.
	Hurst float64
}

// PeriodogramAnalysis reproduces one panel of Fig. 7: simulate v̄(t),
// discard the warm-up transient (§IV-B explains why) and estimate the
// stationary spectrum with its long-range-dependence indicators.
func PeriodogramAnalysis(cfg VelocityConfig) (SpectrumResult, error) {
	warmup := cfg.Warmup
	if warmup == 0 {
		warmup = 512
	}
	run := cfg
	run.Steps = cfg.Steps + warmup
	if run.Steps == warmup {
		run.Steps = 5000 + warmup
	}
	series, err := VelocityRealization(run)
	if err != nil {
		return SpectrumResult{}, err
	}
	series = series[warmup:]
	spec := stats.Periodogram(series, stats.Hann)
	return SpectrumResult{
		Spectrum: spec,
		GPHSlope: stats.GPHSlope(spec, 0.1),
		Hurst:    stats.HurstRS(series),
	}, nil
}

// TransientResult summarizes a §IV-B transient-time measurement.
type TransientResult struct {
	Tau    int // steps until stationarity (tolerance-band detector)
	MSER   int // MSER-5 truncation point, for cross-checking
	Series []float64
}

// TransientAnalysis measures the transient duration τ of the deterministic
// (or stochastic) model from a compact-jam start, the worst case for
// convergence.
func TransientAnalysis(cfg VelocityConfig) (TransientResult, error) {
	if cfg.LaneLength == 0 {
		cfg.LaneLength = 400
	}
	if cfg.Steps == 0 {
		cfg.Steps = 2000
	}
	n := int(math.Round(cfg.Density * float64(cfg.LaneLength)))
	lane, err := ca.NewLane(ca.Config{
		Length:    cfg.LaneLength,
		Vehicles:  n,
		SlowdownP: cfg.SlowdownP,
		Placement: ca.CompactPlacement,
	}, rng.NewSource(cfg.Seed).Stream("transient"))
	if err != nil {
		return TransientResult{}, err
	}
	series := ca.RunVelocitySeries(lane, cfg.Steps)
	return TransientResult{
		Tau:    stats.TransientTime(series, 3),
		MSER:   stats.MSER5(series),
		Series: series,
	}, nil
}

// RWDecayConfig parameterizes the Random Waypoint contrast experiment.
type RWDecayConfig struct {
	Nodes    int
	AreaX    float64
	AreaY    float64
	VMin     float64
	VMax     float64
	Duration float64
	Seed     int64
}

// RandomWaypointDecay runs the RW model and returns its mean-velocity
// series, exhibiting the velocity-decay transient the paper contrasts with
// the CA's finite-state stationarity (§IV-B). Small VMin makes the decay
// dramatic.
func RandomWaypointDecay(cfg RWDecayConfig) (*mobility.SampledTrace, []float64) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 50
	}
	if cfg.AreaX == 0 {
		cfg.AreaX = 1000
	}
	if cfg.AreaY == 0 {
		cfg.AreaY = 1000
	}
	if cfg.VMax == 0 {
		cfg.VMax = 20
	}
	if cfg.VMin == 0 {
		cfg.VMin = 0.1
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2000
	}
	return mobility.RandomWaypoint(mobility.RandomWaypointConfig{
		Nodes: cfg.Nodes,
		AreaX: cfg.AreaX,
		AreaY: cfg.AreaY,
		VMin:  cfg.VMin,
		VMax:  cfg.VMax,
	}, cfg.Duration, rng.NewSource(cfg.Seed).Stream("rw"))
}
