package core

import (
	"testing"

	"cavenet/internal/sim"
)

// BenchmarkSweepEnsemble20 is the paper's ensemble unit of work: 20
// replications of one protocol scenario. The engine sizes its pool from
// GOMAXPROCS, so `go test -bench SweepEnsemble20 -cpu 1,2,4,8` produces
// the parallel-speedup column of PERF.md directly.
func BenchmarkSweepEnsemble20(b *testing.B) {
	grid := SweepConfig{
		Base: ScenarioConfig{
			CircuitMeters: 1000,
			Nodes:         10,
			SimTime:       10 * sim.Second,
			Senders:       []int{1, 2},
			TrafficStart:  2 * sim.Second,
			TrafficStop:   8 * sim.Second,
			CAWarmup:      50,
			Seed:          1,
		},
		Protocols: []Protocol{AODV},
		Trials:    20,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(grid); err != nil {
			b.Fatal(err)
		}
	}
}
