package core

import (
	"testing"

	"cavenet/internal/sim"
)

// smallScenario is a reduced Table I configuration that keeps test runtime
// in check: 12 nodes on a 1200 m circuit, 30 s, 3 senders.
func smallScenario(p Protocol) ScenarioConfig {
	return ScenarioConfig{
		Protocol:      p,
		Nodes:         12,
		CircuitMeters: 1200,
		SimTime:       30 * sim.Second,
		Senders:       []int{1, 2, 3},
		TrafficStart:  5 * sim.Second,
		TrafficStop:   25 * sim.Second,
		CAWarmup:      100,
		Seed:          11,
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := smallScenario(AODV)
	bad.Protocol = "ospf"
	if _, err := RunScenario(bad); err == nil {
		t.Fatal("unknown protocol must error")
	}
	bad = smallScenario(AODV)
	bad.Receiver = 99
	if _, err := RunScenario(bad); err == nil {
		t.Fatal("out-of-range receiver must error")
	}
	bad = smallScenario(AODV)
	bad.Senders = []int{0}
	if _, err := RunScenario(bad); err == nil {
		t.Fatal("sender == receiver must error")
	}
	bad = smallScenario(AODV)
	bad.Senders = []int{50}
	if _, err := RunScenario(bad); err == nil {
		t.Fatal("out-of-range sender must error")
	}
}

func TestBuildCircuitTrace(t *testing.T) {
	cfg := smallScenario(AODV)
	tr, err := BuildCircuitTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 12 {
		t.Fatalf("nodes = %d", tr.NumNodes())
	}
	if tr.NumSamples() != 32 {
		t.Fatalf("samples = %d, want simtime+2", tr.NumSamples())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticNodesOption(t *testing.T) {
	cfg := smallScenario(AODV)
	cfg.StaticNodes = true
	tr, err := BuildCircuitTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for n := range tr.Positions {
		for _, p := range tr.Positions[n] {
			if p != tr.Positions[n][0] {
				t.Fatal("StaticNodes must freeze positions")
			}
		}
	}
}

func TestStraightLineOption(t *testing.T) {
	cfg := smallScenario(AODV)
	cfg.StraightLine = true
	tr, err := BuildCircuitTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Straight-line placement keeps everyone at the lane's y offset.
	for n := range tr.Positions {
		for _, p := range tr.Positions[n] {
			if p.Y != 10 {
				t.Fatalf("line lane y = %v", p.Y)
			}
		}
	}
}

func TestRunScenarioAllProtocols(t *testing.T) {
	for _, p := range []Protocol{AODV, OLSR, DYMO} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res, err := RunScenario(smallScenario(p))
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalPDR() < 0.3 {
				t.Fatalf("%s total PDR = %v; network should mostly work", p, res.TotalPDR())
			}
			for _, s := range []int{1, 2, 3} {
				if res.Sent[s] != 100 { // 20 s × 5 pkt/s
					t.Fatalf("sender %d sent %d, want 100", s, res.Sent[s])
				}
				if len(res.Goodput[s]) != 31 {
					t.Fatalf("goodput bins = %d", len(res.Goodput[s]))
				}
			}
			if res.ControlPackets == 0 || res.ControlBytes == 0 {
				t.Fatal("no routing overhead recorded")
			}
			if res.MACStats.DataTx == 0 {
				t.Fatal("no MAC activity recorded")
			}
		})
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a, err := RunScenario(smallScenario(DYMO))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(smallScenario(DYMO))
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 3; s++ {
		if a.PDR[s] != b.PDR[s] || a.Delivered[s] != b.Delivered[s] {
			t.Fatalf("same seed, different results for sender %d", s)
		}
	}
	if a.ControlPackets != b.ControlPackets {
		t.Fatal("control traffic differs across identical runs")
	}
}

func TestCompareProtocolsSharesTrace(t *testing.T) {
	res, err := CompareProtocols(smallScenario(AODV), []Protocol{AODV, DYMO})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	if res[AODV].Config.Protocol != AODV || res[DYMO].Config.Protocol != DYMO {
		t.Fatal("per-protocol configs wrong")
	}
}

func TestGoodputConsistentWithDeliveries(t *testing.T) {
	res, err := RunScenario(smallScenario(DYMO))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 2, 3} {
		bits := 0.0
		for _, bps := range res.Goodput[s] {
			bits += bps // 1-second bins: bps == bits in the bin
		}
		wantBits := float64(res.Delivered[s] * 512 * 8)
		if bits != wantBits {
			t.Fatalf("sender %d: goodput integrates to %v bits, deliveries say %v",
				s, bits, wantBits)
		}
	}
}
