package core

import (
	"cavenet/internal/geometry"
	"cavenet/internal/phy"
	"cavenet/internal/rng"
)

// This file implements the radio-environment study the paper's §V plans
// ("we also plan to extend our work for different radio propagation modes
// and environments [18], [19]"): reference [18] analyzes ad-hoc network
// connectivity under the log-normal shadowing model, where the crisp
// 250 m disk of two-ray ground becomes a probabilistic connection.

// ShadowingConfig parameterizes the connectivity-vs-distance sweep.
type ShadowingConfig struct {
	// Beta is the path-loss exponent (default 2.7).
	Beta float64
	// SigmaDB is the shadowing deviation in dB (default 4; 0 degenerates to
	// the deterministic path-loss disk).
	SigmaDB float64
	// RangeMeters calibrates the receive threshold: the deterministic
	// path-loss power at this distance (default 250, Table I).
	RangeMeters float64
	// Distances to probe; nil gives 50..500 m in 25 m steps.
	Distances []float64
	// Trials per distance (default 2000).
	Trials int
	Seed   int64
}

func (c *ShadowingConfig) normalize() {
	if c.Beta == 0 {
		c.Beta = 2.7
	}
	if c.SigmaDB == 0 {
		c.SigmaDB = 4
	}
	if c.RangeMeters == 0 {
		c.RangeMeters = 250
	}
	if c.Distances == nil {
		for d := 50.0; d <= 500; d += 25 {
			c.Distances = append(c.Distances, d)
		}
	}
	if c.Trials == 0 {
		c.Trials = 2000
	}
}

// ShadowingPoint is one (distance, link probability) sample.
type ShadowingPoint struct {
	DistanceM float64
	LinkProb  float64
}

// ShadowingConnectivity sweeps link probability against distance under
// log-normal shadowing. Under two-ray ground the curve is a step at the
// transmission range; under shadowing it is a smooth sigmoid crossing 0.5
// at the calibrated range — links beyond 250 m become possible and links
// inside it become unreliable, the effect ref [18] studies.
func ShadowingConnectivity(cfg ShadowingConfig) []ShadowingPoint {
	cfg.normalize()
	const txPower = 0.28183815
	rnd := rng.NewSource(cfg.Seed).Stream("shadowing")
	det := phy.Shadowing{Beta: cfg.Beta, SigmaDB: cfg.SigmaDB, Rnd: nil} // mean path loss only
	thresh := det.RxPower(txPower, geometry.Vec2{}, geometry.Vec2{X: cfg.RangeMeters})
	model := phy.Shadowing{Beta: cfg.Beta, SigmaDB: cfg.SigmaDB, Rnd: rnd}
	out := make([]ShadowingPoint, 0, len(cfg.Distances))
	for _, d := range cfg.Distances {
		ok := 0
		for t := 0; t < cfg.Trials; t++ {
			p := model.RxPower(txPower, geometry.Vec2{}, geometry.Vec2{X: d})
			if p >= thresh {
				ok++
			}
		}
		out = append(out, ShadowingPoint{
			DistanceM: d,
			LinkProb:  float64(ok) / float64(cfg.Trials),
		})
	}
	return out
}

// DiskConnectivity gives the two-ray-ground baseline for the same sweep: a
// unit step at the transmission range.
func DiskConnectivity(distances []float64, rangeMeters float64) []ShadowingPoint {
	out := make([]ShadowingPoint, 0, len(distances))
	for _, d := range distances {
		p := 0.0
		if d <= rangeMeters {
			p = 1
		}
		out = append(out, ShadowingPoint{DistanceM: d, LinkProb: p})
	}
	return out
}
