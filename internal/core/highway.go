package core

import (
	"fmt"
	"math"

	"cavenet/internal/ca"
	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
	"cavenet/internal/rng"
)

// HighwayLane describes one straight lane of a multi-lane highway segment
// (the Fig. 1 setting: parallel lanes whose vehicles can relay for each
// other, or interfere with each other).
type HighwayLane struct {
	// LengthMeters is the lane length (rounded to whole 7.5 m cells).
	LengthMeters float64
	// Vehicles is the car count on this lane.
	Vehicles int
	// SlowdownP is the NaS randomization parameter.
	SlowdownP float64
	// OffsetY places the lane in the plane (lane separation is typically a
	// few meters; radio-wise lanes are nearly coincident).
	OffsetY float64
	// Reversed runs traffic in the opposite direction.
	Reversed bool
}

// HighwayConfig assembles a multi-lane highway mobility experiment.
type HighwayConfig struct {
	Lanes  []HighwayLane
	Warmup int // CA steps before recording
	Steps  int // recorded steps
	Seed   int64
}

// HighwayTrace simulates the highway and records the mobility trace of all
// vehicles (global IDs: lane 0 first).
func HighwayTrace(cfg HighwayConfig) (*mobility.SampledTrace, error) {
	if len(cfg.Lanes) == 0 {
		return nil, fmt.Errorf("core: highway needs lanes")
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 100
	}
	specs := make([]ca.LaneSpec, 0, len(cfg.Lanes))
	for i, lane := range cfg.Lanes {
		cells := int(math.Round(lane.LengthMeters / ca.CellLength))
		if cells <= 0 {
			return nil, fmt.Errorf("core: lane %d too short", i)
		}
		specs = append(specs, ca.LaneSpec{
			Config: ca.Config{
				Length:    cells,
				Vehicles:  lane.Vehicles,
				SlowdownP: lane.SlowdownP,
				Boundary:  ca.RingBoundary,
				Placement: ca.RandomPlacement,
			},
			Placement: geometry.Line{Transform: geometry.Translate(0, lane.OffsetY)},
			Reversed:  lane.Reversed,
		})
	}
	road, err := ca.NewRoad(specs, rng.NewSource(cfg.Seed).Stream("highway"))
	if err != nil {
		return nil, err
	}
	mobility.WarmupRoad(road, cfg.Warmup)
	return mobility.RecordRoad(road, cfg.Steps), nil
}

// ConnectivityComponents partitions the nodes of a trace, at time tsec,
// into groups mutually reachable over radios with the given range —
// quantifying the paper's Fig. 1-a point that relay nodes on other lanes
// fill connectivity gaps.
func ConnectivityComponents(tr *mobility.SampledTrace, tsec, rangeMeters float64) [][]int {
	n := tr.NumNodes()
	pos := make([]geometry.Vec2, n)
	for i := 0; i < n; i++ {
		pos[i] = tr.At(i, tsec)
	}
	seen := make([]bool, n)
	var comps [][]int
	for i := 0; i < n; i++ {
		if seen[i] {
			continue
		}
		comp := []int{}
		stack := []int{i}
		seen[i] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for u := 0; u < n; u++ {
				if !seen[u] && pos[v].Dist(pos[u]) <= rangeMeters {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// LargestComponentFraction reports the share of nodes in the biggest
// connectivity component at time tsec — a scalar connectivity index that a
// sweep over time or lane configurations can compare.
func LargestComponentFraction(tr *mobility.SampledTrace, tsec, rangeMeters float64) float64 {
	comps := ConnectivityComponents(tr, tsec, rangeMeters)
	best := 0
	total := 0
	for _, c := range comps {
		total += len(c)
		if len(c) > best {
			best = len(c)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(best) / float64(total)
}
