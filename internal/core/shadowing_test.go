package core

import "testing"

func TestShadowingConnectivitySigmoid(t *testing.T) {
	pts := ShadowingConnectivity(ShadowingConfig{Seed: 1})
	if len(pts) == 0 {
		t.Fatal("empty sweep")
	}
	var at100, at250, at500 float64
	for _, p := range pts {
		switch p.DistanceM {
		case 100:
			at100 = p.LinkProb
		case 250:
			at250 = p.LinkProb
		case 500:
			at500 = p.LinkProb
		}
	}
	if at100 < 0.95 {
		t.Fatalf("P(link) at 100 m = %v, want near 1", at100)
	}
	// At the calibrated range the shadowing deviation is symmetric in dB,
	// so the link probability crosses ≈0.5.
	if at250 < 0.4 || at250 > 0.6 {
		t.Fatalf("P(link) at 250 m = %v, want ≈0.5", at250)
	}
	if at500 > 0.1 {
		t.Fatalf("P(link) at 500 m = %v, want near 0", at500)
	}
	// Monotone non-increasing within estimator noise.
	for i := 1; i < len(pts); i++ {
		if pts[i].LinkProb > pts[i-1].LinkProb+0.05 {
			t.Fatalf("link probability rising at %v m: %v -> %v",
				pts[i].DistanceM, pts[i-1].LinkProb, pts[i].LinkProb)
		}
	}
}

func TestShadowingVsDiskBaseline(t *testing.T) {
	distances := []float64{100, 240, 260, 400}
	disk := DiskConnectivity(distances, 250)
	want := []float64{1, 1, 0, 0}
	for i, p := range disk {
		if p.LinkProb != want[i] {
			t.Fatalf("disk P at %v m = %v, want %v", p.DistanceM, p.LinkProb, want[i])
		}
	}
	// Shadowing gives non-zero probability beyond the disk edge and below
	// one inside it — the qualitative difference ref [18] studies.
	shadow := ShadowingConnectivity(ShadowingConfig{Distances: distances, Seed: 2})
	if shadow[2].LinkProb <= 0 {
		t.Fatal("shadowing should allow links just beyond the disk range")
	}
	if shadow[1].LinkProb >= 1 {
		t.Fatal("shadowing should make links just inside the disk unreliable")
	}
}

func TestShadowingDeterministicSeed(t *testing.T) {
	a := ShadowingConnectivity(ShadowingConfig{Seed: 3, Trials: 500})
	b := ShadowingConnectivity(ShadowingConfig{Seed: 3, Trials: 500})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the sweep")
		}
	}
}
