package netsim

import (
	"reflect"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
	"cavenet/internal/sim"
)

// floodRouter is a trivial Router used to exercise the node plumbing: data
// packets are link-broadcast with duplicate suppression; every node that
// sees a packet addressed to it delivers it.
type floodRouter struct {
	node *Node
	seen map[uint64]bool
}

func newFloodRouter(n *Node) Router {
	return &floodRouter{node: n, seen: make(map[uint64]bool)}
}

func (f *floodRouter) Name() string { return "flood" }
func (f *floodRouter) Start()       {}
func (f *floodRouter) Stop()        {}

func (f *floodRouter) Origin(p *Packet) {
	f.seen[p.UID] = true
	f.node.SendFrame(BroadcastID, p)
}

func (f *floodRouter) Receive(p *Packet, from NodeID) {
	if f.seen[p.UID] {
		return
	}
	f.seen[p.UID] = true
	if p.Dst == f.node.ID() {
		f.node.DeliverLocal(p)
		return
	}
	p.TTL--
	if p.TTL <= 0 {
		f.node.DropData(p, "flood:ttl")
		return
	}
	f.node.NoteForward(p)
	f.node.SendFrame(BroadcastID, p.Clone())
}

func (f *floodRouter) LinkFailure(NodeID, *Packet)      {}
func (f *floodRouter) ControlTraffic() (uint64, uint64) { return 0, 0 }

func staticPositions(n int, spacing float64) []geometry.Vec2 {
	out := make([]geometry.Vec2, n)
	for i := range out {
		out[i] = geometry.Vec2{X: float64(i) * spacing}
	}
	return out
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(WorldConfig{Nodes: 0}, newFloodRouter); err == nil {
		t.Fatal("zero nodes must error")
	}
	if _, err := NewWorld(WorldConfig{Nodes: 3, Static: staticPositions(2, 10)}, newFloodRouter); err == nil {
		t.Fatal("missing static positions must error")
	}
	bad := &mobility.SampledTrace{Interval: 1, Positions: nil}
	if _, err := NewWorld(WorldConfig{Nodes: 3, Mobility: bad}, newFloodRouter); err == nil {
		t.Fatal("invalid trace must error")
	}
	short := &mobility.SampledTrace{
		Interval:  1,
		Positions: [][]geometry.Vec2{{{X: 1}}},
	}
	if _, err := NewWorld(WorldConfig{Nodes: 3, Mobility: short}, newFloodRouter); err == nil {
		t.Fatal("trace with fewer nodes than scenario must error")
	}
	if _, err := NewWorld(WorldConfig{Nodes: 1, Static: staticPositions(1, 0)},
		func(*Node) Router { return nil }); err == nil {
		t.Fatal("nil router must error")
	}
}

func TestEndToEndFloodDelivery(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Nodes:  4,
		Static: staticPositions(4, 200), // chain: only neighbors in range
	}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	// Delivery is terminal custody: p is pooled after the hook returns, so
	// snapshot the value rather than retaining the pointer.
	var delivered []Packet
	w.SetHooks(Hooks{
		DataDelivered: func(n *Node, p *Packet) { delivered = append(delivered, *p) },
	})
	sink := PortFunc(func(p *Packet, at sim.Time) {})
	w.Node(3).AttachPort(PortCBR, sink)

	p := w.Node(0).NewPacket(3, PortCBR, 512)
	w.Kernel.Schedule(0, func() { w.Node(0).SendData(p) })
	w.Run(sim.Second)

	if len(delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(delivered))
	}
	if delivered[0].Hops != 3 {
		t.Fatalf("hops = %d, want 3 (flood over a 4-node chain)", delivered[0].Hops)
	}
	if w.Node(0).Counters().DataOriginated != 1 {
		t.Fatal("originator counter wrong")
	}
	if w.Node(3).Counters().DataDelivered != 1 {
		t.Fatal("destination counter wrong")
	}
	if w.Node(1).Counters().DataForwarded == 0 {
		t.Fatal("relay should have forwarded")
	}
}

func TestLocalDelivery(t *testing.T) {
	w, err := NewWorld(WorldConfig{Nodes: 1, Static: staticPositions(1, 0)}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	w.Node(0).AttachPort(7, PortFunc(func(*Packet, sim.Time) { got++ }))
	p := w.Node(0).NewPacket(0, 7, 10)
	w.Kernel.Schedule(0, func() { w.Node(0).SendData(p) })
	w.Run(sim.Second)
	if got != 1 {
		t.Fatal("self-addressed packet must deliver locally without radio")
	}
}

func TestDuplicatePortPanics(t *testing.T) {
	w, err := NewWorld(WorldConfig{Nodes: 1, Static: staticPositions(1, 0)}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	w.Node(0).AttachPort(7, PortFunc(func(*Packet, sim.Time) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AttachPort must panic")
		}
	}()
	w.Node(0).AttachPort(7, PortFunc(func(*Packet, sim.Time) {}))
}

func TestMobilityUpdatesPositions(t *testing.T) {
	tr := &mobility.SampledTrace{
		Interval: 1,
		Positions: [][]geometry.Vec2{
			{{X: 0}, {X: 100}, {X: 200}},
			{{X: 50}, {X: 50}, {X: 50}},
		},
	}
	w, err := NewWorld(WorldConfig{Nodes: 2, Mobility: tr}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Node(0).Position(); got.X != 0 {
		t.Fatalf("initial position = %v", got)
	}
	w.Run(2 * sim.Second)
	if got := w.Node(0).Position(); got.X < 190 {
		t.Fatalf("node 0 at %v after 2 s, want ≈200", got)
	}
	if got := w.Node(1).Position(); got.X != 50 {
		t.Fatalf("stationary node moved: %v", got)
	}
}

func TestConnectivityMatrix(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Nodes:  3,
		Static: []geometry.Vec2{{X: 0}, {X: 200}, {X: 1000}},
	}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	m := w.ConnectivityMatrix()
	if !m[0][1] || !m[1][0] {
		t.Fatal("nodes 0,1 at 200 m should be connected")
	}
	if m[0][2] || m[1][2] {
		t.Fatal("node 2 at 1000 m should be isolated")
	}
	if m[0][0] {
		t.Fatal("self-connectivity should be false")
	}
}

func TestConnectedComponents(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Nodes:  5,
		Static: []geometry.Vec2{{X: 0}, {X: 200}, {X: 400}, {X: 2000}, {X: 2200}},
	}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	comps := w.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v, want 2", comps)
	}
	sizes := map[int]bool{len(comps[0]): true, len(comps[1]): true}
	if !sizes[3] || !sizes[2] {
		t.Fatalf("component sizes = %v, want {3,2}", comps)
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{UID: 9, TTL: 5, Size: 100}
	c := p.Clone()
	c.TTL = 1
	if p.TTL != 5 {
		t.Fatal("Clone must not share mutable fields")
	}
	if p.String() == "" {
		t.Fatal("String should format")
	}
}

func TestDropHook(t *testing.T) {
	w, err := NewWorld(WorldConfig{Nodes: 1, Static: staticPositions(1, 0)}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	var reasons []string
	w.SetHooks(Hooks{DataDropped: func(n *Node, p *Packet, reason string) {
		reasons = append(reasons, reason)
	}})
	w.Node(0).DropData(&Packet{}, "test:drop")
	if len(reasons) != 1 || reasons[0] != "test:drop" {
		t.Fatalf("reasons = %v", reasons)
	}
	if w.Node(0).Counters().DataDropped != 1 {
		t.Fatal("drop counter not incremented")
	}
}

func TestAddHooksChains(t *testing.T) {
	w, err := NewWorld(WorldConfig{Nodes: 1, Static: staticPositions(1, 0)}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	w.SetHooks(Hooks{
		DataSent:    func(n *Node, p *Packet) { order = append(order, "a.sent") },
		DataDropped: func(n *Node, p *Packet, r string) { order = append(order, "a.drop") },
	})
	w.AddHooks(Hooks{
		DataSent:      func(n *Node, p *Packet) { order = append(order, "b.sent") },
		DataDelivered: func(n *Node, p *Packet) { order = append(order, "b.deliver") },
	})
	n := w.Node(0)
	n.SendData(n.NewPacket(0, PortCBR, 10)) // self: sent then delivered
	n.DropData(&Packet{}, "x:drop")
	want := []string{"a.sent", "b.sent", "b.deliver", "a.drop"}
	if len(order) != len(want) {
		t.Fatalf("hook calls = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hook calls = %v, want %v", order, want)
		}
	}
}

// TestMACQueueDropReachesHooks pins the conservation fix: a data packet
// lost to the MAC's drop-tail queue must surface as a data-plane drop, not
// vanish. The MAC queue is overflowed by sending while the kernel is not
// running (nothing drains).
func TestMACQueueDropReachesHooks(t *testing.T) {
	w, err := NewWorld(WorldConfig{Nodes: 2, Static: staticPositions(2, 10)}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	drops := map[string]int{}
	w.SetHooks(Hooks{DataDropped: func(n *Node, p *Packet, reason string) { drops[reason]++ }})
	n := w.Node(0)
	cap := n.MAC().Config().QueueCap
	for i := 0; i < cap+5; i++ {
		n.SendFrame(1, n.NewPacket(1, PortCBR, 10))
	}
	// One job is in service, QueueCap are queued, 4 dropped.
	if got := drops["mac:queue-full"]; got != 4 {
		t.Fatalf("mac:queue-full drops = %d, want 4", got)
	}
	if got := w.Node(0).Counters().DataDropped; got != 4 {
		t.Fatalf("node drop counter = %d, want 4", got)
	}
}

// TestAddHooksCoversEveryField fails loudly when a field is added to
// Hooks: AddHooks merges each field explicitly, so a new field must be
// wired there too or previously installed observers would silently be
// displaced.
func TestAddHooksCoversEveryField(t *testing.T) {
	if n := reflect.TypeOf(Hooks{}).NumField(); n != 3 {
		t.Fatalf("Hooks has %d fields; update World.AddHooks to chain every field, then this count", n)
	}
}
