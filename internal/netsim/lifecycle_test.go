package netsim

import (
	"fmt"
	"strings"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/sim"
)

// TestNodeDownUpLifecycle drives the fault-injection surface end to end on
// the plain node plumbing: a down node leaves the connectivity graph and
// the air, lifecycle observers fire in both directions, mobility keeps
// tracking while down, and recovery restores service.
func TestNodeDownUpLifecycle(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Nodes:  3,
		Static: staticPositions(3, 100),
	}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	var transitions []bool
	w.Node(1).OnLifecycle(func(up bool) { transitions = append(transitions, up) })

	w.Node(1).Down(false)
	if w.Node(1).IsUp() {
		t.Fatal("node 1 reports up after Down")
	}
	m := w.ConnectivityMatrix()
	if m[0][1] || m[1][0] || m[1][2] {
		t.Fatal("down node still present in the connectivity matrix")
	}
	if !m[0][2] {
		t.Fatal("survivors lost connectivity when an unrelated node went down")
	}
	// Down nodes appear as singleton components, not as members of a cluster.
	comps := w.ConnectedComponents()
	for _, c := range comps {
		for _, id := range c {
			if id == 1 && len(c) != 1 {
				t.Fatalf("down node clustered with survivors: %v", comps)
			}
		}
	}

	// Mobility keeps tracking a down node; the position must land without a
	// grid update (the radio is detached) and survive to recovery.
	w.Node(1).SetPosition(geometry.Vec2{X: 500, Y: 40})
	if got := w.Node(1).Position(); got != (geometry.Vec2{X: 500, Y: 40}) {
		t.Fatalf("position while down = %v", got)
	}

	w.Node(1).SetPosition(geometry.Vec2{X: 100})
	w.Node(1).Up()
	if !w.Node(1).IsUp() {
		t.Fatal("node 1 reports down after Up")
	}
	if m := w.ConnectivityMatrix(); !m[0][1] || !m[1][2] {
		t.Fatal("recovered node did not rejoin the connectivity graph at its tracked position")
	}
	if len(transitions) != 2 || transitions[0] != false || transitions[1] != true {
		t.Fatalf("lifecycle transitions = %v, want [false true]", transitions)
	}
}

// TestDownNodeSendsFlushAsDownDrops pins the custody story for traffic
// originated at (or queued on) a dead station: the MAC refuses the frame
// and the packet terminates as an accounted "node:down" drop instead of
// vanishing.
func TestDownNodeSendsFlushAsDownDrops(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Nodes:  2,
		Static: staticPositions(2, 100),
	}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	drops := make(map[string]int)
	w.SetHooks(Hooks{
		DataDropped: func(n *Node, p *Packet, reason string) { drops[reason]++ },
	})
	w.Node(0).Down(false)
	w.Node(0).SendData(w.Node(0).NewPacket(1, PortCBR, 128))
	w.Run(100 * sim.Millisecond)
	if drops["node:down"] != 1 {
		t.Fatalf("drops = %v, want one node:down", drops)
	}
	if got := w.Node(0).MAC().Stats().DownDrops; got != 1 {
		t.Fatalf("MAC DownDrops = %d, want 1", got)
	}
}

// TestDownNodeHearsNothing pins radio semantics across an outage: frames
// sent while a station is down never reach it, and delivery resumes after
// recovery.
func TestDownNodeHearsNothing(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Nodes:  2,
		Static: staticPositions(2, 100),
	}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	var delivered int
	w.SetHooks(Hooks{
		DataDelivered: func(n *Node, p *Packet) { delivered++ },
	})
	w.Node(1).AttachPort(PortCBR, PortFunc(func(p *Packet, at sim.Time) {}))

	w.Kernel.Schedule(10*sim.Millisecond, func() { w.Node(1).Down(false) })
	w.Kernel.Schedule(20*sim.Millisecond, func() {
		w.Node(0).SendData(w.Node(0).NewPacket(1, PortCBR, 128))
	})
	w.Kernel.Schedule(500*sim.Millisecond, func() { w.Node(1).Up() })
	w.Kernel.Schedule(600*sim.Millisecond, func() {
		w.Node(0).SendData(w.Node(0).NewPacket(1, PortCBR, 128))
	})
	w.Run(sim.Second)
	if delivered != 1 {
		t.Fatalf("delivered %d packets, want exactly the post-recovery one", delivered)
	}
	if rx := w.Node(1).MAC().Stats().DataRx; rx != 1 {
		t.Fatalf("down-phase frame reached the dead MAC: DataRx = %d", rx)
	}
}

// TestLifecyclePanicsCarryTimestamp pins the diagnostic contract of the
// fault API: schedule bugs (double down, up while up) panic with the
// kernel clock in the message so a broken plan is debuggable.
func TestLifecyclePanicsCarryTimestamp(t *testing.T) {
	mustPanicWithClock := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s did not panic", name)
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, "t=") {
				t.Fatalf("%s panic lacks a kernel timestamp: %q", name, msg)
			}
		}()
		f()
	}
	w, err := NewWorld(WorldConfig{
		Nodes:  2,
		Static: staticPositions(2, 100),
	}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	w.Node(0).Down(false)
	mustPanicWithClock("double Down", func() { w.Node(0).Down(false) })
	mustPanicWithClock("Up while up", func() { w.Node(1).Up() })
	mustPanicWithClock("duplicate AttachPort", func() {
		w.Node(1).AttachPort(PortCBR, PortFunc(func(p *Packet, at sim.Time) {}))
		w.Node(1).AttachPort(PortCBR, PortFunc(func(p *Packet, at sim.Time) {}))
	})
}

// TestCrashReplacesRouterGracefulKeepsIt distinguishes the two shutdown
// variants: a crash loses routing state (fresh router instance), a graceful
// shutdown retains it.
func TestCrashReplacesRouterGracefulKeepsIt(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Nodes:  2,
		Static: staticPositions(2, 100),
	}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	before := w.Node(0).Router()
	w.Node(0).Down(true)
	w.Node(0).Up()
	if w.Node(0).Router() != before {
		t.Fatal("graceful shutdown replaced the router")
	}
	w.Node(0).Down(false)
	w.Node(0).Up()
	if w.Node(0).Router() == before {
		t.Fatal("crash kept the old router instance")
	}
}
