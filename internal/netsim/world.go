package netsim

import (
	"fmt"

	"cavenet/internal/geometry"
	"cavenet/internal/mac"
	"cavenet/internal/mobility"
	"cavenet/internal/phy"
	"cavenet/internal/rng"
	"cavenet/internal/sim"
)

// RouterFactory builds the routing protocol instance for a node.
type RouterFactory func(n *Node) Router

// Hooks let the metrics module observe data-plane events without coupling
// the stack to a concrete collector.
type Hooks struct {
	DataSent      func(n *Node, p *Packet)
	DataDelivered func(n *Node, p *Packet)
	DataDropped   func(n *Node, p *Packet, reason string)
}

// WorldConfig assembles a scenario.
type WorldConfig struct {
	// Nodes is the station count.
	Nodes int
	// Seed drives every RNG stream in the scenario.
	Seed int64
	// Propagation defaults to two-ray ground (Table I).
	Propagation phy.Propagation
	// Channel holds radio parameters (ranges, capture).
	Channel phy.Config
	// MAC holds DCF parameters (rates, CW, queue).
	MAC mac.Config
	// Mobility positions the nodes over time; nil keeps nodes wherever
	// Static places them.
	Mobility *mobility.SampledTrace
	// Static is used when Mobility is nil: fixed node positions.
	Static []geometry.Vec2
	// MobilityInterval is how often positions refresh (default 100 ms).
	MobilityInterval sim.Time
}

// World is an assembled scenario: kernel, channel, nodes.
type World struct {
	Kernel  *sim.Kernel
	Channel *phy.Channel
	nodes   []*Node
	cfg     WorldConfig
	src     *rng.Source
	uid     uint64
	hooks   Hooks
}

// NewWorld wires up a scenario. Routers are created per node via factory
// but not started; Run starts them.
func NewWorld(cfg WorldConfig, factory RouterFactory) (*World, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("netsim: node count %d must be positive", cfg.Nodes)
	}
	if cfg.Mobility == nil && len(cfg.Static) != cfg.Nodes {
		return nil, fmt.Errorf("netsim: need %d static positions, have %d", cfg.Nodes, len(cfg.Static))
	}
	if cfg.Mobility != nil {
		if err := cfg.Mobility.Validate(); err != nil {
			return nil, err
		}
		if cfg.Mobility.NumNodes() < cfg.Nodes {
			return nil, fmt.Errorf("netsim: mobility trace has %d nodes, scenario needs %d",
				cfg.Mobility.NumNodes(), cfg.Nodes)
		}
	}
	if cfg.Propagation == nil {
		cfg.Propagation = phy.TwoRayGround{}
	}
	if cfg.MobilityInterval == 0 {
		cfg.MobilityInterval = 100 * sim.Millisecond
	}
	w := &World{
		Kernel: sim.NewKernel(),
		cfg:    cfg,
		src:    rng.NewSource(cfg.Seed),
	}
	w.Channel = phy.NewChannel(w.Kernel, cfg.Propagation, cfg.Channel)
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			id:    NodeID(i),
			world: w,
			ports: make(map[int]PortHandler),
			rnd:   w.src.Stream(fmt.Sprintf("node/%d", i)),
		}
		if cfg.Mobility != nil {
			n.pos = cfg.Mobility.At(i, 0)
		} else {
			n.pos = cfg.Static[i]
		}
		n.radio = w.Channel.Attach(func() geometry.Vec2 { return n.pos })
		n.mac = mac.New(w.Kernel, n.radio, mac.Address(i), cfg.MAC,
			w.src.Stream(fmt.Sprintf("mac/%d", i)), macUpper{n})
		n.router = factory(n)
		if n.router == nil {
			return nil, fmt.Errorf("netsim: router factory returned nil for node %d", i)
		}
		w.nodes = append(w.nodes, n)
	}
	return w, nil
}

// SetHooks installs metric observers; call before Run.
func (w *World) SetHooks(h Hooks) { w.hooks = h }

// Node returns node i.
func (w *World) Node(i int) *Node { return w.nodes[i] }

// NumNodes reports the station count.
func (w *World) NumNodes() int { return len(w.nodes) }

// Nodes returns the node slice (shared; callers must not mutate).
func (w *World) Nodes() []*Node { return w.nodes }

func (w *World) nextUID() uint64 {
	w.uid++
	return w.uid
}

// Run starts all routers and mobility updates, then executes events until
// the given duration of simulated time has elapsed.
func (w *World) Run(duration sim.Time) {
	for _, n := range w.nodes {
		n.router.Start()
	}
	if w.cfg.Mobility != nil {
		w.scheduleMobility(duration)
	}
	w.Kernel.RunUntil(duration)
	for _, n := range w.nodes {
		n.router.Stop()
	}
}

func (w *World) scheduleMobility(duration sim.Time) {
	var tick func()
	tick = func() {
		now := w.Kernel.Now()
		tsec := now.Seconds()
		for i, n := range w.nodes {
			n.SetPosition(w.cfg.Mobility.At(i, tsec))
		}
		if now < duration {
			w.Kernel.After(w.cfg.MobilityInterval, tick)
		}
	}
	w.Kernel.Schedule(0, tick)
}

// ConnectivityMatrix reports which node pairs are currently within decode
// range — the analysis behind the paper's Fig. 1 multi-lane connectivity
// discussion.
func (w *World) ConnectivityMatrix() [][]bool {
	n := len(w.nodes)
	m := make([][]bool, n)
	thresh := w.Channel.RxThreshW()
	for i := range m {
		m[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			power := w.cfg.Propagation.RxPower(
				w.channelTxPower(), w.nodes[i].pos, w.nodes[j].pos)
			ok := power >= thresh
			m[i][j] = ok
			m[j][i] = ok
		}
	}
	return m
}

func (w *World) channelTxPower() float64 {
	if w.cfg.Channel.TxPowerW != 0 {
		return w.cfg.Channel.TxPowerW
	}
	return 0.28183815
}

// ConnectedComponents returns the partition of nodes into radio-connectivity
// components (used by the highway example to show relay lanes closing gaps).
func (w *World) ConnectedComponents() [][]int {
	m := w.ConnectivityMatrix()
	n := len(m)
	seen := make([]bool, n)
	var comps [][]int
	for i := 0; i < n; i++ {
		if seen[i] {
			continue
		}
		var comp []int
		stack := []int{i}
		seen[i] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for u := 0; u < n; u++ {
				if m[v][u] && !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
