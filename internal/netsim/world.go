package netsim

import (
	"fmt"
	"math/rand"

	"cavenet/internal/geometry"
	"cavenet/internal/mac"
	"cavenet/internal/mobility"
	"cavenet/internal/phy"
	"cavenet/internal/rng"
	"cavenet/internal/sim"
)

// RouterFactory builds the routing protocol instance for a node.
type RouterFactory func(n *Node) Router

// Hooks let the metrics module observe data-plane events without coupling
// the stack to a concrete collector.
type Hooks struct {
	DataSent      func(n *Node, p *Packet)
	DataDelivered func(n *Node, p *Packet)
	DataDropped   func(n *Node, p *Packet, reason string)
}

// WorldConfig assembles a scenario.
type WorldConfig struct {
	// Nodes is the station count.
	Nodes int
	// Seed drives every RNG stream in the scenario.
	Seed int64
	// Propagation defaults to two-ray ground (Table I).
	Propagation phy.Propagation
	// Channel holds radio parameters (ranges, capture).
	Channel phy.Config
	// MAC holds DCF parameters (rates, CW, queue).
	MAC mac.Config
	// Mobility positions the nodes over time; nil keeps nodes wherever
	// Static places them. Any mobility.Source works: a materialized
	// *mobility.SampledTrace or a streaming source (CA road, ns-2 /
	// BonnMotion playback) that the world drives live, one forward-only
	// position query per node per tick.
	Mobility mobility.Source
	// Static is used when Mobility is nil: fixed node positions.
	Static []geometry.Vec2
	// MobilityInterval is how often positions refresh (default 100 ms).
	MobilityInterval sim.Time
	// KernelOracle runs the world on the kernel's retained binary-heap
	// event queue instead of the calendar queue. Pop order is
	// bit-identical, so whole runs reproduce exactly; the heap path is
	// only useful as a differential cross-check (see sim.KernelConfig).
	KernelOracle bool
}

// World is an assembled scenario: kernel, channel, nodes.
type World struct {
	Kernel  *sim.Kernel
	Channel *phy.Channel
	nodes   []*Node
	cfg     WorldConfig
	src     *rng.Source
	factory RouterFactory // kept for crash recovery: a crashed node gets a fresh router
	uid     uint64
	hooks   Hooks
	// pktFree recycles the per-reception clones of control broadcasts
	// (see macUpper.MACReceive); the world is single-kernel and
	// single-goroutine, so a plain freelist suffices.
	pktFree []*Packet
}

// clonePacket copies src into a pooled Packet record.
func (w *World) clonePacket(src *Packet) *Packet {
	var p *Packet
	if n := len(w.pktFree); n > 0 {
		p = w.pktFree[n-1]
		w.pktFree[n-1] = nil
		w.pktFree = w.pktFree[:n-1]
	} else {
		p = new(Packet)
	}
	*p = *src
	return p
}

// releasePacket returns a pooled clone; the record is zeroed so it retains
// no payload reference.
func (w *World) releasePacket(p *Packet) {
	*p = Packet{}
	w.pktFree = append(w.pktFree, p)
}

// NewWorld wires up a scenario. Routers are created per node via factory
// but not started; Run starts them.
func NewWorld(cfg WorldConfig, factory RouterFactory) (*World, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("netsim: node count %d must be positive", cfg.Nodes)
	}
	if cfg.Mobility == nil && len(cfg.Static) != cfg.Nodes {
		return nil, fmt.Errorf("netsim: need %d static positions, have %d", cfg.Nodes, len(cfg.Static))
	}
	if cfg.Mobility != nil {
		// Materialized traces carry structural invariants worth checking up
		// front; streaming sources validate at construction instead.
		if v, ok := cfg.Mobility.(interface{ Validate() error }); ok {
			if err := v.Validate(); err != nil {
				return nil, err
			}
		}
		if cfg.Mobility.NumNodes() < cfg.Nodes {
			return nil, fmt.Errorf("netsim: mobility trace has %d nodes, scenario needs %d",
				cfg.Mobility.NumNodes(), cfg.Nodes)
		}
	}
	if cfg.Propagation == nil {
		cfg.Propagation = phy.TwoRayGround{}
	}
	if cfg.MobilityInterval == 0 {
		cfg.MobilityInterval = 100 * sim.Millisecond
	}
	w := &World{
		Kernel:  sim.NewKernelWithConfig(sim.KernelConfig{HeapOracle: cfg.KernelOracle}),
		cfg:     cfg,
		src:     rng.NewSource(cfg.Seed),
		factory: factory,
	}
	w.Channel = phy.NewChannel(w.Kernel, cfg.Propagation, cfg.Channel)
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			id:    NodeID(i),
			world: w,
			ports: make(map[int]PortHandler),
			rnd:   w.src.Stream(fmt.Sprintf("node/%d", i)),
		}
		if cfg.Mobility != nil {
			n.pos = cfg.Mobility.At(i, 0)
		} else {
			n.pos = cfg.Static[i]
		}
		n.radio = w.Channel.Attach(n.pos)
		n.mac = mac.New(w.Kernel, n.radio, mac.Address(i), cfg.MAC,
			w.src.Stream(fmt.Sprintf("mac/%d", i)), macUpper{n})
		n.router = factory(n)
		if n.router == nil {
			return nil, fmt.Errorf("netsim: router factory returned nil for node %d", i)
		}
		w.nodes = append(w.nodes, n)
	}
	return w, nil
}

// SetHooks installs metric observers, replacing any previously installed
// set; call before Run.
func (w *World) SetHooks(h Hooks) { w.hooks = h }

// AddHooks installs additional observers without displacing the ones
// already installed: for each event the existing hook (if any) runs first,
// then the new one. This is what lets the metrics collector and the
// invariant harness watch the same run independently.
func (w *World) AddHooks(h Hooks) {
	prev := w.hooks
	if prev.DataSent != nil && h.DataSent != nil {
		a, b := prev.DataSent, h.DataSent
		h.DataSent = func(n *Node, p *Packet) { a(n, p); b(n, p) }
	} else if h.DataSent == nil {
		h.DataSent = prev.DataSent
	}
	if prev.DataDelivered != nil && h.DataDelivered != nil {
		a, b := prev.DataDelivered, h.DataDelivered
		h.DataDelivered = func(n *Node, p *Packet) { a(n, p); b(n, p) }
	} else if h.DataDelivered == nil {
		h.DataDelivered = prev.DataDelivered
	}
	if prev.DataDropped != nil && h.DataDropped != nil {
		a, b := prev.DataDropped, h.DataDropped
		h.DataDropped = func(n *Node, p *Packet, reason string) { a(n, p, reason); b(n, p, reason) }
	} else if h.DataDropped == nil {
		h.DataDropped = prev.DataDropped
	}
	w.hooks = h
}

// Stream derives a named deterministic RNG stream from the world's seed;
// the fault layer uses it so impairment loss draws stay decorrelated from
// every node- and MAC-level stream.
func (w *World) Stream(name string) *rand.Rand { return w.src.Stream(name) }

// Node returns node i.
func (w *World) Node(i int) *Node { return w.nodes[i] }

// NumNodes reports the station count.
func (w *World) NumNodes() int { return len(w.nodes) }

// Nodes returns the node slice (shared; callers must not mutate).
func (w *World) Nodes() []*Node { return w.nodes }

func (w *World) nextUID() uint64 {
	w.uid++
	return w.uid
}

// Run starts all routers and mobility updates, then executes events until
// the given duration of simulated time has elapsed.
func (w *World) Run(duration sim.Time) {
	for _, n := range w.nodes {
		n.router.Start()
	}
	if w.cfg.Mobility != nil {
		w.scheduleMobility(duration)
	}
	w.Kernel.RunUntil(duration)
	for _, n := range w.nodes {
		n.router.Stop()
	}
}

func (w *World) scheduleMobility(duration sim.Time) {
	var tick func()
	tick = func() {
		now := w.Kernel.Now()
		tsec := now.Seconds()
		for i, n := range w.nodes {
			// Parked or static vehicles sample the same position every
			// tick; skipping them avoids pointless spatial-index churn.
			if p := w.cfg.Mobility.At(i, tsec); p != n.pos {
				n.SetPosition(p)
			}
		}
		if now < duration {
			w.Kernel.After(w.cfg.MobilityInterval, tick)
		}
	}
	w.Kernel.Schedule(0, tick)
}

// ConnectivityMatrix reports which node pairs are currently within decode
// range — the analysis behind the paper's Fig. 1 multi-lane connectivity
// discussion. The rows share one flat []bool backing array, and when the
// channel's spatial culling is active only grid-near pairs are evaluated,
// so sparse topologies cost O(N·neighbors) model evaluations instead of
// O(N²).
func (w *World) ConnectivityMatrix() [][]bool {
	n := len(w.nodes)
	m := make([][]bool, n)
	flat := make([]bool, n*n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	thresh := w.Channel.RxThreshW()
	txW := w.Channel.TxPowerW()
	for i := 0; i < n; i++ {
		node := w.nodes[i]
		// A down node has no links; the grid path skips it implicitly
		// (its radio is detached from the index), the brute path here.
		if node.down {
			continue
		}
		if w.Channel.EachNearRx(node.pos, func(rx *phy.Radio) {
			// Evaluate each unordered pair once, from its lower index.
			// Radios attached to the channel beyond the world's nodes
			// (monitors, sniffers) are not part of node connectivity.
			j := rx.Index()
			if j <= i || j >= n {
				return
			}
			power := w.cfg.Propagation.RxPower(txW, node.pos, w.nodes[j].pos)
			ok := power >= thresh
			m[i][j] = ok
			m[j][i] = ok
		}) {
			continue
		}
		for j := i + 1; j < n; j++ {
			if w.nodes[j].down {
				continue
			}
			power := w.cfg.Propagation.RxPower(txW, node.pos, w.nodes[j].pos)
			ok := power >= thresh
			m[i][j] = ok
			m[j][i] = ok
		}
	}
	return m
}

// ConnectedComponents returns the partition of nodes into radio-connectivity
// components (used by the highway example to show relay lanes closing gaps).
// With spatial culling active the traversal expands each node through a
// grid query instead of materializing the O(N²) connectivity matrix; both
// paths share one flood fill, differing only in how a node's unseen
// neighbors are enumerated.
func (w *World) ConnectedComponents() [][]int {
	n := len(w.nodes)
	seen := make([]bool, n)
	var neighbors func(v int, visit func(u int))
	if w.Channel.Culling() {
		thresh := w.Channel.RxThreshW()
		txW := w.Channel.TxPowerW()
		neighbors = func(v int, visit func(u int)) {
			src := w.nodes[v]
			// A down node is a singleton component: its radio is out of
			// the grid so nobody reaches it, and it reaches nobody.
			if src.down {
				return
			}
			w.Channel.EachNearRx(src.pos, func(rx *phy.Radio) {
				// Skip non-node radios (see ConnectivityMatrix) and
				// already-seen nodes before paying for the model.
				u := rx.Index()
				if u >= n || seen[u] {
					return
				}
				if w.cfg.Propagation.RxPower(txW, src.pos, w.nodes[u].pos) >= thresh {
					visit(u)
				}
			})
		}
	} else {
		m := w.ConnectivityMatrix()
		neighbors = func(v int, visit func(u int)) {
			for u := 0; u < n; u++ {
				if m[v][u] && !seen[u] {
					visit(u)
				}
			}
		}
	}
	var comps [][]int
	for i := 0; i < n; i++ {
		if seen[i] {
			continue
		}
		var comp []int
		stack := []int{i}
		seen[i] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			neighbors(v, func(u int) {
				seen[u] = true
				stack = append(stack, u)
			})
		}
		comps = append(comps, comp)
	}
	return comps
}
