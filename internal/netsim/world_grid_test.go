package netsim

import (
	"math/rand"
	"sort"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/phy"
)

// TestConnectivityGridMatchesBruteForce checks the grid-backed
// ConnectivityMatrix and ConnectedComponents against the all-pairs oracle
// on a random topology.
func TestConnectivityGridMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	const n = 150
	pos := make([]geometry.Vec2, n)
	for i := range pos {
		pos[i] = geometry.Vec2{X: rnd.Float64() * 5000, Y: rnd.Float64() * 2000}
	}
	build := func(brute bool) *World {
		w, err := NewWorld(WorldConfig{
			Nodes:   n,
			Static:  pos,
			Channel: phy.Config{BruteForce: brute},
		}, newFloodRouter)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	grid, brute := build(false), build(true)
	if !grid.Channel.Culling() || brute.Channel.Culling() {
		t.Fatal("culling flags not wired through WorldConfig.Channel")
	}

	gm, bm := grid.ConnectivityMatrix(), brute.ConnectivityMatrix()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if gm[i][j] != bm[i][j] {
				t.Fatalf("matrix mismatch at (%d,%d): grid %v, brute %v",
					i, j, gm[i][j], bm[i][j])
			}
		}
	}

	canon := func(comps [][]int) [][]int {
		for _, c := range comps {
			sort.Ints(c)
		}
		sort.Slice(comps, func(a, b int) bool { return comps[a][0] < comps[b][0] })
		return comps
	}
	gc, bc := canon(grid.ConnectedComponents()), canon(brute.ConnectedComponents())
	if len(gc) != len(bc) {
		t.Fatalf("component count: grid %d, brute %d", len(gc), len(bc))
	}
	for i := range gc {
		if len(gc[i]) != len(bc[i]) {
			t.Fatalf("component %d size: grid %d, brute %d", i, len(gc[i]), len(bc[i]))
		}
		for j := range gc[i] {
			if gc[i][j] != bc[i][j] {
				t.Fatalf("component %d differs: grid %v, brute %v", i, gc[i], bc[i])
			}
		}
	}
}

// TestConnectivityIgnoresExtraChannelRadios pins that radios attached to
// the world's channel beyond its nodes (monitors, sniffers) neither crash
// nor join the node connectivity analysis on the grid path.
func TestConnectivityIgnoresExtraChannelRadios(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Nodes:  3,
		Static: []geometry.Vec2{{X: 0}, {X: 200}, {X: 400}},
	}, newFloodRouter)
	if err != nil {
		t.Fatal(err)
	}
	w.Channel.Attach(geometry.Vec2{X: 100}) // sniffer in the thick of it
	m := w.ConnectivityMatrix()
	if len(m) != 3 || !m[0][1] || !m[1][2] {
		t.Fatalf("matrix with sniffer attached = %v", m)
	}
	comps := w.ConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("components with sniffer attached = %v", comps)
	}
}
