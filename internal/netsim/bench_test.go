package netsim

import (
	"fmt"
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/phy"
)

func benchWorld(b *testing.B, n int, brute bool) *World {
	rnd := rand.New(rand.NewSource(1))
	pos := make([]geometry.Vec2, n)
	length := float64(n) * 40
	for i := range pos {
		pos[i] = geometry.Vec2{X: rnd.Float64() * length, Y: rnd.Float64() * 1500}
	}
	w, err := NewWorld(WorldConfig{
		Nodes:   n,
		Static:  pos,
		Channel: phy.Config{BruteForce: brute},
	}, newFloodRouter)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkConnectivityMatrix measures the Fig. 1 connectivity analysis at
// increasing scale; "brute" is the all-pairs oracle sweep.
func BenchmarkConnectivityMatrix(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		for _, mode := range []struct {
			name  string
			brute bool
		}{{"grid", false}, {"brute", true}} {
			b.Run(fmt.Sprintf("%s/N=%d", mode.name, n), func(b *testing.B) {
				w := benchWorld(b, n, mode.brute)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if m := w.ConnectivityMatrix(); len(m) != n {
						b.Fatal("bad matrix")
					}
				}
			})
		}
	}
}

// BenchmarkConnectedComponents measures the component partition used by the
// highway relay-lane analysis.
func BenchmarkConnectedComponents(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		for _, mode := range []struct {
			name  string
			brute bool
		}{{"grid", false}, {"brute", true}} {
			b.Run(fmt.Sprintf("%s/N=%d", mode.name, n), func(b *testing.B) {
				w := benchWorld(b, n, mode.brute)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if comps := w.ConnectedComponents(); len(comps) == 0 {
						b.Fatal("no components")
					}
				}
			})
		}
	}
}
