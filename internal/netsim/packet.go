// Package netsim assembles the CPS node stack: network-layer packets, the
// per-node protocol plumbing (radio → MAC → router → application ports) and
// the World scenario container that wires mobility, channel and traffic
// together — the role ns-2 plays for the paper.
package netsim

import (
	"fmt"

	"cavenet/internal/sim"
)

// NodeID identifies a node; node IDs double as MAC addresses.
type NodeID int

// BroadcastID addresses all nodes in range.
const BroadcastID NodeID = -1

// Kind classifies network-layer packets.
type Kind int

// Packet kinds.
const (
	KindData Kind = iota + 1
	KindControl
)

// Well-known ports.
const (
	// PortCBR is the default application traffic port.
	PortCBR = 1000
	// PortRouting is where routing-protocol messages are demultiplexed.
	PortRouting = 255
)

// IPHeaderBytes is the network-layer header overhead added to payload
// sizes, matching ns-2's accounting of a CBR packet over IP.
const IPHeaderBytes = 20

// DefaultTTL bounds forwarding loops; 32 is ns-2's default for DSR/AODV
// class protocols and more than enough for 30 nodes.
const DefaultTTL = 32

// Packet is the network-layer PDU.
type Packet struct {
	UID       uint64
	Kind      Kind
	Src       NodeID
	Dst       NodeID
	Port      int
	TTL       int
	Size      int // bytes on the wire at the network layer
	Payload   any
	CreatedAt sim.Time
	Hops      int
}

// Clone returns a shallow copy (payload shared); flooding protocols clone
// before mutating TTL/Hops on divergent paths.
func (p *Packet) Clone() *Packet {
	c := *p
	return &c
}

// String summarizes the packet for diagnostics.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{uid=%d %d->%d port=%d size=%d ttl=%d}",
		p.UID, p.Src, p.Dst, p.Port, p.Size, p.TTL)
}

// Router is a routing protocol instance bound to one node.
//
// Data path: locally-originated packets enter via Origin; packets arriving
// from the MAC that are not addressed to this node (or are control traffic
// on PortRouting) enter via Receive. The router sends frames with
// Node.SendFrame and delivers data with Node.DeliverLocal.
//
// Data packets are pooled too, with custody-transfer semantics: the clone
// a router receives is its own until it hands the packet to exactly one
// terminal event — Node.DeliverLocal, Node.DropData, or Node.SendFrame
// (after which the MAC completion releases it). After that call the
// pointer is dead: the pool may zero and reuse it, so routers must read
// anything they still need (say, the destination of a dropped packet)
// before the handoff, and must not park the same pointer in two places.
// World hooks and PortHandlers observe packets during their terminal
// events and must copy values, never retain the pointer.
type Router interface {
	// Name identifies the protocol ("aodv", "olsr", "dymo", "static", ...).
	Name() string
	// Start begins protocol operation (timers, hello emission).
	Start()
	// Stop halts all protocol timers.
	Stop()
	// Origin routes a locally generated data packet.
	Origin(p *Packet)
	// Receive handles a packet handed up by the MAC: either a routing
	// control message or a data packet to forward. KindControl packets
	// are pooled: the *Packet is only valid for the duration of the call,
	// so a router that re-floods one must Clone it first (payloads are
	// not pooled and may be retained).
	Receive(p *Packet, from NodeID)
	// LinkFailure is data-link feedback: a unicast to next exhausted its
	// MAC retries while carrying p.
	LinkFailure(next NodeID, p *Packet)
	// ControlTraffic reports cumulative routing overhead (packets, bytes).
	ControlTraffic() (packets, bytes uint64)
}

// PortHandler consumes data packets delivered to a local port.
type PortHandler interface {
	HandlePacket(p *Packet, at sim.Time)
}

// PortFunc adapts a function to PortHandler.
type PortFunc func(p *Packet, at sim.Time)

// HandlePacket implements PortHandler.
func (f PortFunc) HandlePacket(p *Packet, at sim.Time) { f(p, at) }
