package netsim

import (
	"fmt"
	"math/rand"

	"cavenet/internal/geometry"
	"cavenet/internal/mac"
	"cavenet/internal/phy"
	"cavenet/internal/sim"
)

// NodeCounters tracks per-node data-plane events.
type NodeCounters struct {
	DataOriginated uint64
	DataDelivered  uint64
	DataForwarded  uint64
	DataDropped    uint64 // no route / TTL expiry / router discard
}

// Node is one simulated station: position, radio, MAC, router and
// application ports.
type Node struct {
	id     NodeID
	world  *World
	pos    geometry.Vec2
	radio  *phy.Radio
	mac    *mac.DCF
	router Router
	ports  map[int]PortHandler
	rnd    *rand.Rand

	down      bool
	lifecycle []func(up bool) // fault-injection observers (traffic sources)

	counters NodeCounters
}

// ID reports the node identifier.
func (n *Node) ID() NodeID { return n.id }

// Kernel exposes the shared simulation kernel to routers and agents.
func (n *Node) Kernel() *sim.Kernel { return n.world.Kernel }

// Rand exposes the node's deterministic RNG stream.
func (n *Node) Rand() *rand.Rand { return n.rnd }

// Position reports the node's current location.
func (n *Node) Position() geometry.Vec2 { return n.pos }

// PeerPosition reports the current plane position of another node in the
// same world — the idealized location service geographic routing assumes:
// a sender knows where its destination is, but learns about relay
// candidates only through beacons. Out-of-range ids report ok=false.
func (n *Node) PeerPosition(id NodeID) (geometry.Vec2, bool) {
	if int(id) < 0 || int(id) >= len(n.world.nodes) {
		return geometry.Vec2{}, false
	}
	return n.world.nodes[id].pos, true
}

// SetPosition moves the node (called by the world's mobility driver),
// keeping the channel's spatial index in sync.
func (n *Node) SetPosition(p geometry.Vec2) {
	n.pos = p
	n.radio.SetPosition(p)
}

// MAC exposes the MAC for stats collection.
func (n *Node) MAC() *mac.DCF { return n.mac }

// IsUp reports whether the node is in service (not taken down by fault
// injection).
func (n *Node) IsUp() bool { return !n.down }

// OnLifecycle registers an observer for fault-injection transitions: f is
// called with up=false when the node goes down and up=true when it
// recovers. Traffic sources use it to pause and resume their flows.
func (n *Node) OnLifecycle(f func(up bool)) {
	n.lifecycle = append(n.lifecycle, f)
}

// dataBufferer is implemented by routers that park data packets while
// discovering a route (AODV, DYMO); a crash drains those buffers as
// explicit drops before the router state is discarded.
type dataBufferer interface {
	EachBuffered(f func(p *Packet))
}

// Down takes the node out of service: its router stops, its MAC flushes
// every queued frame upward as a "node:down" drop, and its radio leaves the
// air (and the spatial index) so neighbors stop hearing it mid-flight.
// A crash (graceful=false) additionally loses all routing state: buffered
// data packets drain as "node:down" drops and the router is replaced with a
// fresh instance, so a recovered node rejoins the network cold. Taking a
// down node down again is a fault-schedule bug and panics.
func (n *Node) Down(graceful bool) {
	if n.down {
		panic(fmt.Sprintf("netsim: t=%v: node %d already down", n.world.Kernel.Now(), n.id))
	}
	n.down = true
	n.router.Stop()
	// MAC flush first: frames in the interface queue route through
	// macUpper.MACDownDrop and terminate in the ledger.
	n.mac.Down()
	if !graceful {
		if b, ok := n.router.(dataBufferer); ok {
			b.EachBuffered(func(p *Packet) {
				n.DropData(p, "node:down")
			})
		}
		n.router = n.world.factory(n)
		if n.router == nil {
			panic(fmt.Sprintf("netsim: t=%v: router factory returned nil for node %d", n.world.Kernel.Now(), n.id))
		}
	}
	n.radio.Detach()
	for _, f := range n.lifecycle {
		f(false)
	}
}

// Up returns a down node to service: radio back on the air at the node's
// current position (mobility keeps tracking while down), MAC reset, router
// restarted — the original instance after a graceful shutdown, the fresh
// replacement after a crash. Bringing an in-service node up is a
// fault-schedule bug and panics.
func (n *Node) Up() {
	if !n.down {
		panic(fmt.Sprintf("netsim: t=%v: node %d already up", n.world.Kernel.Now(), n.id))
	}
	n.down = false
	n.radio.Reattach()
	n.mac.Up()
	n.router.Start()
	for _, f := range n.lifecycle {
		f(true)
	}
}

// Router exposes the routing protocol instance.
func (n *Node) Router() Router { return n.router }

// Counters returns a copy of the node's data-plane counters.
func (n *Node) Counters() NodeCounters { return n.counters }

// AttachPort registers a handler for data packets addressed to this node on
// the given port. Registering a port twice is a scenario bug and panics.
func (n *Node) AttachPort(port int, h PortHandler) {
	if _, dup := n.ports[port]; dup {
		panic(fmt.Sprintf("netsim: t=%v: node %d: port %d already attached", n.world.Kernel.Now(), n.id, port))
	}
	n.ports[port] = h
}

// NewPacket allocates a data packet originating here.
func (n *Node) NewPacket(dst NodeID, port, payloadBytes int) *Packet {
	return &Packet{
		UID:       n.world.nextUID(),
		Kind:      KindData,
		Src:       n.id,
		Dst:       dst,
		Port:      port,
		TTL:       DefaultTTL,
		Size:      payloadBytes + IPHeaderBytes,
		CreatedAt: n.world.Kernel.Now(),
	}
}

// SendData originates a data packet toward dst via the routing protocol.
func (n *Node) SendData(p *Packet) {
	n.counters.DataOriginated++
	if h := n.world.hooks.DataSent; h != nil {
		h(n, p)
	}
	if p.Dst == n.id {
		n.DeliverLocal(p)
		return
	}
	n.router.Origin(p)
}

// SendFrame hands a packet to the MAC addressed to the given next hop
// (BroadcastID for link-layer broadcast).
func (n *Node) SendFrame(next NodeID, p *Packet) {
	n.mac.Send(mac.Address(next), p, p.Size)
}

// DeliverLocal hands a data packet to its destination port. Delivery is a
// terminal custody event: once the port handler returns, p goes back to
// the world's packet pool, so neither handlers nor hooks may retain it.
func (n *Node) DeliverLocal(p *Packet) {
	n.counters.DataDelivered++
	if h := n.world.hooks.DataDelivered; h != nil {
		h(n, p)
	}
	if handler, ok := n.ports[p.Port]; ok {
		handler.HandlePacket(p, n.world.Kernel.Now())
	}
	n.world.releasePacket(p)
}

// DropData records a data packet discarded by the router (no route, TTL).
// A drop is a terminal custody event: once the hooks return, p goes back
// to the world's packet pool, so callers must not touch it afterwards.
func (n *Node) DropData(p *Packet, reason string) {
	n.dropData(p, reason, true)
}

func (n *Node) dropData(p *Packet, reason string, release bool) {
	n.counters.DataDropped++
	if h := n.world.hooks.DataDropped; h != nil {
		h(n, p, reason)
	}
	if release {
		n.world.releasePacket(p)
	}
}

// NoteForward records a data packet forwarded through this node.
func (n *Node) NoteForward(p *Packet) { n.counters.DataForwarded++ }

// macUpper adapts the node to the MAC's Upper interface.
type macUpper struct{ n *Node }

var _ mac.Upper = macUpper{}

// MACReceive implements mac.Upper.
func (u macUpper) MACReceive(payload any, from mac.Address) {
	shared, ok := payload.(*Packet)
	if !ok {
		panic(fmt.Sprintf("netsim: t=%v: node %d: MAC delivered %T",
			u.n.world.Kernel.Now(), u.n.id, payload))
	}
	n := u.n
	if shared.Kind == KindControl {
		// The channel hands every receiver the same payload pointer, so the
		// per-receiver view is a clone — and control packets are consumed
		// within Router.Receive (routers re-clone before re-flooding; see
		// the Router contract in packet.go), so the clone comes from the
		// world's pool and goes straight back. Flood-heavy protocols pay
		// zero allocations per control reception this way. Data packets —
		// including any on PortRouting, which routers may retain through
		// SendFrame — must not take this path.
		p := n.world.clonePacket(shared)
		p.Hops++
		n.router.Receive(p, NodeID(from))
		n.world.releasePacket(p)
		return
	}
	// Data packets outlive the receive callback (delivery to ports,
	// forwarding, discovery buffers), so each receiver still needs a
	// private clone — but the clone comes from the pool, because every
	// data packet now terminates through exactly one custody event that
	// returns it: DeliverLocal, DropData, or the sender-side MACSendDone
	// of an acknowledged unicast hop.
	p := n.world.clonePacket(shared)
	p.Hops++
	switch {
	case p.Port == PortRouting:
		n.router.Receive(p, NodeID(from))
	case p.Dst == n.id, p.Dst == BroadcastID:
		n.DeliverLocal(p)
	default:
		// Data in transit: the routing protocol forwards it.
		n.router.Receive(p, NodeID(from))
	}
}

// MACSendDone implements mac.SendDoneObserver: a unicast frame was
// acknowledged, so the sender-side packet pointer is dead — every receiver
// in range decoded (and cloned) the frame at least a SIFS before the ACK
// arrived, and the sending router released custody at SendFrame. Broadcast
// completions never reach here: their receivers decode the shared pointer
// at the same timestamp as the sender's tx-done, so the sender's copy must
// stay live (it is left to the garbage collector, as before pooling).
func (u macUpper) MACSendDone(to mac.Address, payload any) {
	p, ok := payload.(*Packet)
	if !ok {
		return
	}
	u.n.world.releasePacket(p)
}

// MACSendFailed implements mac.Upper.
func (u macUpper) MACSendFailed(to mac.Address, payload any) {
	p, ok := payload.(*Packet)
	if !ok {
		return
	}
	u.n.router.LinkFailure(NodeID(to), p)
}

// MACQueueDrop implements mac.QueueDropObserver: a drop-tail loss of a data
// packet is a data-plane drop like any other and must reach the metrics
// hooks — without this, queue-overflow losses silently violated packet
// conservation. Control packets are the routing protocol's own traffic and
// are only counted in the MAC stats.
func (u macUpper) MACQueueDrop(to mac.Address, payload any) {
	p, ok := payload.(*Packet)
	if !ok || p.Kind != KindData {
		return
	}
	u.n.DropData(p, "mac:queue-full")
}

// MACDownDrop implements mac.DownObserver: when fault injection takes the
// interface down, every data frame in MAC custody terminates as an
// explicit "node:down" drop so the conservation ledger sees where it died.
// Control frames, as with queue drops, are only MAC statistics.
func (u macUpper) MACDownDrop(to mac.Address, payload any) {
	p, ok := payload.(*Packet)
	if !ok || p.Kind != KindData {
		return
	}
	// No pool release here: the flushed frame may still be on the air (a
	// crash mid-transmission), and its receivers only decode — and clone —
	// the shared pointer when the signal ends. The packet is left to the
	// garbage collector instead, as all packets were before pooling.
	u.n.dropData(p, "node:down", false)
}
