// Package metrics computes the paper's evaluation quantities: the
// per-sender goodput-over-time surfaces of Figs. 8–10, the Packet Delivery
// Ratio of Fig. 11, routing overhead (the paper's future-work metric) and
// end-to-end delay.
package metrics

import (
	"strings"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// Collector observes data-plane events via netsim.Hooks and aggregates
// them. Attach with Bind before World.Run.
type Collector struct {
	binWidth sim.Time
	bins     int

	sent        map[netsim.NodeID]uint64
	delivered   map[netsim.NodeID]uint64
	bytesRx     map[netsim.NodeID]uint64
	delaySum    map[netsim.NodeID]sim.Time
	hopSum      map[netsim.NodeID]uint64
	goodput     map[netsim.NodeID][]uint64 // received payload bits per bin, by sender
	drops       map[string]uint64
	unreachable map[netsim.NodeID]uint64 // per-sender routing-unreachable drops
}

// NewCollector creates a collector with the given goodput bin width and
// horizon (number of bins). The paper uses 1-second bins over 100 s.
func NewCollector(binWidth sim.Time, horizon sim.Time) *Collector {
	bins := int(horizon/binWidth) + 1
	return &Collector{
		binWidth:    binWidth,
		bins:        bins,
		sent:        make(map[netsim.NodeID]uint64),
		delivered:   make(map[netsim.NodeID]uint64),
		bytesRx:     make(map[netsim.NodeID]uint64),
		delaySum:    make(map[netsim.NodeID]sim.Time),
		hopSum:      make(map[netsim.NodeID]uint64),
		goodput:     make(map[netsim.NodeID][]uint64),
		drops:       make(map[string]uint64),
		unreachable: make(map[netsim.NodeID]uint64),
	}
}

// Bind installs the collector's observers on a world.
func (c *Collector) Bind(w *netsim.World) {
	w.SetHooks(netsim.Hooks{
		DataSent: func(n *netsim.Node, p *netsim.Packet) {
			c.sent[p.Src]++
		},
		DataDelivered: func(n *netsim.Node, p *netsim.Packet) {
			now := n.Kernel().Now()
			c.delivered[p.Src]++
			payload := uint64(p.Size - netsim.IPHeaderBytes)
			c.bytesRx[p.Src] += payload
			c.delaySum[p.Src] += now - p.CreatedAt
			c.hopSum[p.Src] += uint64(p.Hops)
			series := c.goodput[p.Src]
			if series == nil {
				series = make([]uint64, c.bins)
				c.goodput[p.Src] = series
			}
			bin := int(now / c.binWidth)
			if bin >= 0 && bin < len(series) {
				series[bin] += payload * 8
			}
		},
		DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
			c.drops[reason]++
			// Routing-unreachable drops get a per-sender attribution so a
			// flow whose destination crashed (or never came up) is
			// distinguishable from congestion or mobility loss.
			if strings.HasSuffix(reason, ":no-route") || strings.HasSuffix(reason, ":no-forward-route") {
				c.unreachable[p.Src]++
			}
		},
	})
}

// Sent reports packets originated by src.
func (c *Collector) Sent(src netsim.NodeID) uint64 { return c.sent[src] }

// Delivered reports packets from src that reached their destination.
func (c *Collector) Delivered(src netsim.NodeID) uint64 { return c.delivered[src] }

// PDR reports the packet delivery ratio for sender src (Fig. 11).
func (c *Collector) PDR(src netsim.NodeID) float64 {
	s := c.sent[src]
	if s == 0 {
		return 0
	}
	return float64(c.delivered[src]) / float64(s)
}

// GoodputBPS returns the goodput time series for sender src in bits per
// second per bin (Figs. 8–10). The slice has one entry per bin and is a
// fresh copy.
func (c *Collector) GoodputBPS(src netsim.NodeID) []float64 {
	series := c.goodput[src]
	out := make([]float64, c.bins)
	if series == nil {
		return out
	}
	scale := 1 / c.binWidth.Seconds()
	for i, bits := range series {
		out[i] = float64(bits) * scale
	}
	return out
}

// MeanDelay reports the average end-to-end delay of delivered packets from
// src; zero when nothing was delivered.
func (c *Collector) MeanDelay(src netsim.NodeID) sim.Time {
	d := c.delivered[src]
	if d == 0 {
		return 0
	}
	return c.delaySum[src] / sim.Time(d)
}

// MeanHops reports the average hop count of delivered packets from src.
func (c *Collector) MeanHops(src netsim.NodeID) float64 {
	d := c.delivered[src]
	if d == 0 {
		return 0
	}
	return float64(c.hopSum[src]) / float64(d)
}

// Unreachable reports packets from src dropped because routing had no
// route to their destination (":no-route" / ":no-forward-route" reasons) —
// the signature of a destination that is down or was never reachable.
func (c *Collector) Unreachable(src netsim.NodeID) uint64 { return c.unreachable[src] }

// TotalUnreachable sums routing-unreachable drops across all senders.
func (c *Collector) TotalUnreachable() uint64 {
	var total uint64
	for _, v := range c.unreachable {
		total += v
	}
	return total
}

// Drops reports drop counts by reason.
func (c *Collector) Drops() map[string]uint64 {
	out := make(map[string]uint64, len(c.drops))
	for k, v := range c.drops {
		out[k] = v
	}
	return out
}

// TotalPDR reports the delivery ratio across all senders.
func (c *Collector) TotalPDR() float64 {
	sent, delivered, _ := c.Totals()
	if sent == 0 {
		return 0
	}
	return float64(delivered) / float64(sent)
}

// Totals reports the data-plane ledger across all senders: packets
// originated, delivered, and dropped with a recorded reason.
func (c *Collector) Totals() (sent, delivered, dropped uint64) {
	for _, s := range c.sent {
		sent += s
	}
	for _, d := range c.delivered {
		delivered += d
	}
	for _, d := range c.drops {
		dropped += d
	}
	return sent, delivered, dropped
}

// InFlight reports sent − delivered − dropped: the packets still in MAC
// queues or router buffers when the run ended. It can dip slightly
// negative on 802.11 ACK-loss forks, where one packet legitimately earns
// both a delivery and a link-failure drop. The scenario invariant harness
// (internal/scenario/check) audits the per-packet version of this ledger
// against actual end-of-run custody.
func (c *Collector) InFlight() int64 {
	sent, delivered, dropped := c.Totals()
	return int64(sent) - int64(delivered) - int64(dropped)
}

// RoutingOverhead sums control traffic across all routers of a world — the
// routing-overhead metric the paper defers to future work.
func RoutingOverhead(w *netsim.World) (packets, bytes uint64) {
	for _, n := range w.Nodes() {
		p, b := n.Router().ControlTraffic()
		packets += p
		bytes += b
	}
	return packets, bytes
}
