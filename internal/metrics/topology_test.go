package metrics

import (
	"math"
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
)

func TestAnalyzeTopologyStaticPair(t *testing.T) {
	tr := &mobility.SampledTrace{
		Interval: 1,
		Positions: [][]geometry.Vec2{
			{{X: 0}, {X: 0}, {X: 0}, {X: 0}},
			{{X: 100}, {X: 100}, {X: 100}, {X: 100}},
		},
	}
	st := AnalyzeTopology(tr, 250)
	if st.LinkChanges != 0 {
		t.Fatalf("static pair changes = %d", st.LinkChanges)
	}
	if st.MeanDegree != 1 {
		t.Fatalf("degree = %v, want 1", st.MeanDegree)
	}
	if len(st.LinkUpDurations) != 0 {
		t.Fatal("uncompleted episode must be censored")
	}
}

func TestAnalyzeTopologyBreakAndReform(t *testing.T) {
	// Node 1 walks out of range at t=2..3 and returns at t=4.
	tr := &mobility.SampledTrace{
		Interval: 1,
		Positions: [][]geometry.Vec2{
			{{X: 0}, {X: 0}, {X: 0}, {X: 0}, {X: 0}, {X: 0}},
			{{X: 100}, {X: 100}, {X: 400}, {X: 400}, {X: 100}, {X: 100}},
		},
	}
	st := AnalyzeTopology(tr, 250)
	// Transitions: down at t=2, up at t=4 → 2 changes.
	if st.LinkChanges != 2 {
		t.Fatalf("changes = %d, want 2", st.LinkChanges)
	}
	if len(st.LinkUpDurations) != 1 || st.LinkUpDurations[0] != 2 {
		t.Fatalf("durations = %v, want one 2 s episode", st.LinkUpDurations)
	}
	if math.Abs(st.ChangeRate-2.0/5) > 1e-12 {
		t.Fatalf("rate = %v", st.ChangeRate)
	}
}

func TestAnalyzeTopologyDegenerate(t *testing.T) {
	if st := AnalyzeTopology(&mobility.SampledTrace{Interval: 1}, 250); st.LinkChanges != 0 {
		t.Fatal("empty trace should be all zeros")
	}
	one := &mobility.SampledTrace{Interval: 1, Positions: [][]geometry.Vec2{{{X: 0}}}}
	if st := AnalyzeTopology(one, 250); st.MeanDegree != 0 {
		t.Fatal("single node has no links")
	}
}

func TestAnalyzeTopologyCAvsRW(t *testing.T) {
	// The CA circuit's links should live much longer than Random
	// Waypoint's at comparable scales — the quantitative version of the
	// paper's point that VANET mobility differs fundamentally from RW.
	caScenario := func() *mobility.SampledTrace {
		// Vehicles on a ring move with similar velocities: relative
		// positions change slowly.
		tr := &mobility.SampledTrace{Interval: 1}
		n, samples := 10, 120
		tr.Positions = make([][]geometry.Vec2, n)
		for i := 0; i < n; i++ {
			tr.Positions[i] = make([]geometry.Vec2, samples)
			for s := 0; s < samples; s++ {
				// All move at 30 m/s with small per-node offsets.
				x := float64(i)*200 + float64(s)*30 + float64(i%3)*float64(s)*0.5
				tr.Positions[i][s] = geometry.Vec2{X: x}
			}
		}
		return tr
	}()
	rwScenario, _ := mobility.RandomWaypoint(mobility.RandomWaypointConfig{
		Nodes: 10, AreaX: 2000, AreaY: 2000, VMin: 10, VMax: 30,
	}, 119, testRand())
	caStats := AnalyzeTopology(caScenario, 250)
	rwStats := AnalyzeTopology(rwScenario, 250)
	if caStats.ChangeRate >= rwStats.ChangeRate {
		t.Fatalf("platoon link-change rate %v should be below RW %v",
			caStats.ChangeRate, rwStats.ChangeRate)
	}
}

func testRand() *rand.Rand { return rand.New(rand.NewSource(77)) }

func TestAnalyzeTopologyDegenerateRange(t *testing.T) {
	tr := &mobility.SampledTrace{
		Interval: 1,
		Positions: [][]geometry.Vec2{
			{{X: 0}, {X: 0}, {X: 0}},
			{{X: 0}, {X: 0}, {X: 0}},
		},
	}
	// Range 0: the coincident pair stays linked, nothing panics.
	st := AnalyzeTopology(tr, 0)
	if st.LinkChanges != 0 || st.MeanDegree != 1 {
		t.Fatalf("range 0: changes=%d degree=%v, want 0 changes, degree 1", st.LinkChanges, st.MeanDegree)
	}
	// Negative range: no links at all.
	st = AnalyzeTopology(tr, -5)
	if st.MeanDegree != 0 || st.LinkChanges != 0 {
		t.Fatalf("negative range: %+v, want no links", st)
	}
}
