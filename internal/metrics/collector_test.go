package metrics

import (
	"math"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// directRouter delivers everything locally on the destination node without
// radio, so metric timing is fully controlled by the test.
type directRouter struct {
	n   *netsim.Node
	dst *netsim.Node
}

func (r *directRouter) Name() string { return "direct" }
func (r *directRouter) Start()       {}
func (r *directRouter) Stop()        {}
func (r *directRouter) Origin(p *netsim.Packet) {
	p.Hops = 2
	r.dst.DeliverLocal(p)
}
func (r *directRouter) Receive(*netsim.Packet, netsim.NodeID)     {}
func (r *directRouter) LinkFailure(netsim.NodeID, *netsim.Packet) {}
func (r *directRouter) ControlTraffic() (uint64, uint64)          { return 3, 300 }

func TestCollectorGoodputAndPDR(t *testing.T) {
	var world *netsim.World
	factory := func(n *netsim.Node) netsim.Router { return &directRouter{n: n} }
	world, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:  2,
		Static: []geometry.Vec2{{X: 0}, {X: 10}},
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	// Wire the direct routers to the destination node.
	for i := 0; i < 2; i++ {
		if dr, ok := world.Node(i).Router().(*directRouter); ok {
			dr.dst = world.Node(1)
		}
	}
	c := NewCollector(sim.Second, 10*sim.Second)
	c.Bind(world)

	send := func(at sim.Time) {
		world.Kernel.Schedule(at, func() {
			p := world.Node(0).NewPacket(1, netsim.PortCBR, 512)
			world.Node(0).SendData(p)
		})
	}
	send(500 * sim.Millisecond)  // bin 0
	send(1500 * sim.Millisecond) // bin 1
	send(1800 * sim.Millisecond) // bin 1
	world.Run(10 * sim.Second)

	if got := c.Sent(0); got != 3 {
		t.Fatalf("Sent = %d", got)
	}
	if got := c.Delivered(0); got != 3 {
		t.Fatalf("Delivered = %d", got)
	}
	if got := c.PDR(0); got != 1 {
		t.Fatalf("PDR = %v", got)
	}
	gp := c.GoodputBPS(0)
	if gp[0] != 512*8 {
		t.Fatalf("bin 0 goodput = %v, want %d", gp[0], 512*8)
	}
	if gp[1] != 2*512*8 {
		t.Fatalf("bin 1 goodput = %v, want %d", gp[1], 2*512*8)
	}
	if gp[2] != 0 {
		t.Fatalf("bin 2 goodput = %v, want 0", gp[2])
	}
	if got := c.MeanHops(0); got != 2 {
		t.Fatalf("MeanHops = %v", got)
	}
	if d := c.MeanDelay(0); d != 0 {
		t.Fatalf("MeanDelay = %v, want 0 (instant delivery)", d)
	}
}

func TestCollectorUnknownSender(t *testing.T) {
	c := NewCollector(sim.Second, 5*sim.Second)
	if c.PDR(42) != 0 || c.Sent(42) != 0 || c.MeanDelay(42) != 0 || c.MeanHops(42) != 0 {
		t.Fatal("unknown sender should report zeros")
	}
	gp := c.GoodputBPS(42)
	if len(gp) != 6 {
		t.Fatalf("goodput bins = %d, want horizon/bin+1", len(gp))
	}
	for _, v := range gp {
		if v != 0 {
			t.Fatal("unknown sender goodput should be zero")
		}
	}
}

func TestCollectorTotalPDR(t *testing.T) {
	var world *netsim.World
	world, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:  3,
		Static: []geometry.Vec2{{X: 0}, {X: 10}, {X: 20}},
	}, func(n *netsim.Node) netsim.Router { return &directRouter{n: n} })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		world.Node(i).Router().(*directRouter).dst = world.Node(2)
	}
	c := NewCollector(sim.Second, 5*sim.Second)
	c.Bind(world)
	world.Kernel.Schedule(0, func() {
		world.Node(0).SendData(world.Node(0).NewPacket(2, 1, 100))
		world.Node(1).SendData(world.Node(1).NewPacket(2, 1, 100))
	})
	world.Run(sim.Second)
	if got := c.TotalPDR(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("TotalPDR = %v", got)
	}
}

func TestRoutingOverheadSums(t *testing.T) {
	world, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:  4,
		Static: []geometry.Vec2{{X: 0}, {X: 10}, {X: 20}, {X: 30}},
	}, func(n *netsim.Node) netsim.Router { return &directRouter{n: n} })
	if err != nil {
		t.Fatal(err)
	}
	pkts, bytes := RoutingOverhead(world)
	if pkts != 12 || bytes != 1200 {
		t.Fatalf("overhead = %d pkts %d bytes, want 12/1200", pkts, bytes)
	}
}

func TestCollectorTotalsAndInFlight(t *testing.T) {
	world, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:  2,
		Static: []geometry.Vec2{{X: 0}, {X: 10}},
	}, func(n *netsim.Node) netsim.Router { return &directRouter{n: n} })
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(sim.Second, sim.Second)
	c.Bind(world)
	h := world.Node(0)
	// One packet delivered (dst == self short-circuits to DeliverLocal).
	h.SendData(h.NewPacket(0, netsim.PortCBR, 100))
	// One sent and then dropped (the send is recorded directly: the stub
	// router would otherwise null-deref on an unwired destination).
	p2 := h.NewPacket(1, netsim.PortCBR, 100)
	c.sent[p2.Src]++
	h.DropData(p2, "x:drop")
	sent, delivered, dropped := c.Totals()
	if sent != 2 || delivered != 1 || dropped != 1 {
		t.Fatalf("Totals = %d/%d/%d, want 2/1/1", sent, delivered, dropped)
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
	// A third packet still unresolved at "end of run".
	c.sent[0]++
	if got := c.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
}

func TestCollectorDrops(t *testing.T) {
	world, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:  1,
		Static: []geometry.Vec2{{X: 0}},
	}, func(n *netsim.Node) netsim.Router { return &directRouter{n: n} })
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(sim.Second, sim.Second)
	c.Bind(world)
	world.Node(0).DropData(&netsim.Packet{}, "x:reason")
	world.Node(0).DropData(&netsim.Packet{}, "x:reason")
	drops := c.Drops()
	if drops["x:reason"] != 2 {
		t.Fatalf("drops = %v", drops)
	}
	// Returned map is a copy.
	drops["x:reason"] = 99
	if c.Drops()["x:reason"] != 2 {
		t.Fatal("Drops must return a copy")
	}
}
