package metrics

import (
	"sort"

	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
	"cavenet/internal/spatial"
)

// This file implements the "topology change" metric the paper's §V defers
// to future work, plus the link-duration analysis its related work
// (the IMPORTANT/PATHS framework, refs [8][9]) builds on: how long do
// radio links live under a given mobility model?

// TopologyStats summarizes link dynamics over a mobility trace.
type TopologyStats struct {
	// LinkChanges counts link up/down transitions over the whole trace.
	LinkChanges int
	// ChangeRate is LinkChanges divided by the trace duration (events/s).
	ChangeRate float64
	// MeanLinkUpSeconds is the average duration of completed link-up
	// episodes (links still up at the end are excluded, matching the
	// censoring convention of the PATHS analysis).
	MeanLinkUpSeconds float64
	// LinkUpDurations lists every completed link-up episode in seconds.
	LinkUpDurations []float64
	// MeanDegree is the time-averaged number of neighbors per node.
	MeanDegree float64
}

// AnalyzeTopology replays a mobility trace at its native sampling interval
// and measures link dynamics for the given radio range.
//
// Each sample maintains a spatial grid of node positions (updated with
// incremental moves between samples), so only grid-near pairs pay a
// distance test; links that went down are found by rechecking the set of
// currently-up pairs, which is the sparse neighbor set rather than all
// N(N-1)/2 pairs. The output is identical to the all-pairs scan, including
// the order of LinkUpDurations.
func AnalyzeTopology(tr *mobility.SampledTrace, rangeMeters float64) TopologyStats {
	n := tr.NumNodes()
	samples := tr.NumSamples()
	var stats TopologyStats
	if n < 2 || samples < 2 {
		return stats
	}
	up := make(map[[2]int]int) // pair -> sample index the link came up
	degreeSum := 0.0
	// A degenerate (zero or negative) range still has a defined answer —
	// only coincident nodes link at range 0, nothing at negative range —
	// but needs a positive cell size for the index.
	cell := rangeMeters
	if cell <= 0 {
		cell = 1
	}
	grid := spatial.NewGrid(cell)
	positions := make([]geometry.Vec2, n)
	var nearBuf []int32
	var downs [][2]int
	for s := 0; s < samples; s++ {
		tsec := float64(s) * tr.Interval
		for i := 0; i < n; i++ {
			p := tr.At(i, tsec)
			if s == 0 {
				grid.Insert(i, p)
			} else if p != positions[i] {
				grid.Move(i, p)
			}
			positions[i] = p
		}
		links := 0
		// Pass 1: discover connected pairs from each node's grid
		// neighborhood; record up-transitions.
		for i := 0; i < n; i++ {
			nearBuf = grid.Near(nearBuf[:0], positions[i], rangeMeters)
			for _, jj := range nearBuf {
				j := int(jj)
				if j <= i || positions[i].Dist(positions[j]) > rangeMeters {
					continue
				}
				links++
				pair := [2]int{i, j}
				if _, wasUp := up[pair]; !wasUp {
					up[pair] = s
					if s > 0 {
						stats.LinkChanges++
					}
				}
			}
		}
		// Pass 2: any tracked pair now out of range went down this sample.
		// Sort the downs so LinkUpDurations keeps the deterministic (i,j)
		// order of the original all-pairs scan.
		downs = downs[:0]
		for pair := range up {
			if positions[pair[0]].Dist(positions[pair[1]]) > rangeMeters {
				downs = append(downs, pair)
			}
		}
		sort.Slice(downs, func(a, b int) bool {
			if downs[a][0] != downs[b][0] {
				return downs[a][0] < downs[b][0]
			}
			return downs[a][1] < downs[b][1]
		})
		for _, pair := range downs {
			stats.LinkUpDurations = append(stats.LinkUpDurations,
				float64(s-up[pair])*tr.Interval)
			delete(up, pair)
			stats.LinkChanges++
		}
		degreeSum += 2 * float64(links) / float64(n)
	}
	duration := tr.Duration()
	if duration > 0 {
		stats.ChangeRate = float64(stats.LinkChanges) / duration
	}
	if len(stats.LinkUpDurations) > 0 {
		sum := 0.0
		for _, d := range stats.LinkUpDurations {
			sum += d
		}
		stats.MeanLinkUpSeconds = sum / float64(len(stats.LinkUpDurations))
	}
	stats.MeanDegree = degreeSum / float64(samples)
	return stats
}
