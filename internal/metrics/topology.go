package metrics

import (
	"cavenet/internal/mobility"
)

// This file implements the "topology change" metric the paper's §V defers
// to future work, plus the link-duration analysis its related work
// (the IMPORTANT/PATHS framework, refs [8][9]) builds on: how long do
// radio links live under a given mobility model?

// TopologyStats summarizes link dynamics over a mobility trace.
type TopologyStats struct {
	// LinkChanges counts link up/down transitions over the whole trace.
	LinkChanges int
	// ChangeRate is LinkChanges divided by the trace duration (events/s).
	ChangeRate float64
	// MeanLinkUpSeconds is the average duration of completed link-up
	// episodes (links still up at the end are excluded, matching the
	// censoring convention of the PATHS analysis).
	MeanLinkUpSeconds float64
	// LinkUpDurations lists every completed link-up episode in seconds.
	LinkUpDurations []float64
	// MeanDegree is the time-averaged number of neighbors per node.
	MeanDegree float64
}

// AnalyzeTopology replays a mobility trace at its native sampling interval
// and measures link dynamics for the given radio range.
func AnalyzeTopology(tr *mobility.SampledTrace, rangeMeters float64) TopologyStats {
	n := tr.NumNodes()
	samples := tr.NumSamples()
	var stats TopologyStats
	if n < 2 || samples < 2 {
		return stats
	}
	up := make(map[[2]int]int) // pair -> sample index the link came up
	degreeSum := 0.0
	for s := 0; s < samples; s++ {
		tsec := float64(s) * tr.Interval
		links := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pair := [2]int{i, j}
				connected := tr.At(i, tsec).Dist(tr.At(j, tsec)) <= rangeMeters
				_, wasUp := up[pair]
				switch {
				case connected && !wasUp:
					up[pair] = s
					if s > 0 {
						stats.LinkChanges++
					}
				case !connected && wasUp:
					stats.LinkUpDurations = append(stats.LinkUpDurations,
						float64(s-up[pair])*tr.Interval)
					delete(up, pair)
					stats.LinkChanges++
				}
				if connected {
					links++
				}
			}
		}
		degreeSum += 2 * float64(links) / float64(n)
	}
	duration := tr.Duration()
	if duration > 0 {
		stats.ChangeRate = float64(stats.LinkChanges) / duration
	}
	if len(stats.LinkUpDurations) > 0 {
		sum := 0.0
		for _, d := range stats.LinkUpDurations {
			sum += d
		}
		stats.MeanLinkUpSeconds = sum / float64(len(stats.LinkUpDurations))
	}
	stats.MeanDegree = degreeSum / float64(samples)
	return stats
}
