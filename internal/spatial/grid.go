// Package spatial provides a uniform-grid index over point positions, the
// neighbor-culling structure behind the PHY broadcast fast path and the
// world connectivity queries.
//
// The plane is partitioned into square cells of a fixed size; each indexed
// item lives in exactly one cell. A range query visits only the cells that
// intersect the query disc, so with a cell size equal to the query radius a
// lookup touches at most a 3×3 neighborhood regardless of how many items
// exist elsewhere. Items are identified by small non-negative integers
// chosen by the caller (CAVENET uses the radio index), which keeps the
// per-item bookkeeping in a flat slice.
//
// The index is deliberately conservative: Near reports every item whose
// cell intersects the query disc, a superset of the items actually within
// the radius. Callers apply their own exact predicate (received power
// against a threshold, Euclidean distance) to the candidates, so replacing
// a brute-force scan with a grid query is semantics-preserving as long as
// the predicate can never accept a point farther away than the query
// radius.
//
// Iteration order is deterministic: Near walks cells in row-major order and
// items within a cell in insertion order, never ranging over a Go map, so
// simulation runs stay reproducible.
package spatial

import (
	"fmt"
	"math"

	"cavenet/internal/geometry"
)

// item is the per-id bookkeeping: current position, the packed key of the
// occupied cell, and whether the id is currently indexed.
type item struct {
	pos     geometry.Vec2
	key     uint64
	present bool
}

// Grid is a uniform spatial hash over 2-D points. The zero value is not
// useful; construct with NewGrid. Grid is not safe for concurrent use,
// matching the single-threaded simulation kernel.
type Grid struct {
	cell  float64
	inv   float64 // 1/cell, hoisted out of the key computation
	cells map[uint64][]int32
	items []item
	count int
}

// NewGrid returns an empty grid with the given cell size in meters. For
// radius-r queries the sweet spot is cellSize == r: each query then scans
// at most 3×3 cells. A non-positive cell size is a construction bug and
// panics.
func NewGrid(cellSize float64) *Grid {
	if !(cellSize > 0) {
		panic(fmt.Sprintf("spatial: cell size %v must be positive", cellSize))
	}
	return &Grid{
		cell:  cellSize,
		inv:   1 / cellSize,
		cells: make(map[uint64][]int32),
	}
}

// CellSize reports the configured cell edge length in meters.
func (g *Grid) CellSize() float64 { return g.cell }

// Len reports the number of indexed items.
func (g *Grid) Len() int { return g.count }

// key packs the cell coordinates of pos into a single map key. Coordinates
// are floored so negative positions land in the correct cell.
func (g *Grid) key(pos geometry.Vec2) uint64 {
	kx := int32(math.Floor(pos.X * g.inv))
	ky := int32(math.Floor(pos.Y * g.inv))
	return uint64(uint32(kx))<<32 | uint64(uint32(ky))
}

func (g *Grid) ensure(id int) *item {
	for id >= len(g.items) {
		g.items = append(g.items, item{})
	}
	return &g.items[id]
}

// Insert adds id at pos. Inserting an id that is already present is an
// indexing bug and panics; use Move instead.
func (g *Grid) Insert(id int, pos geometry.Vec2) {
	if id < 0 {
		panic(fmt.Sprintf("spatial: negative id %d", id))
	}
	it := g.ensure(id)
	if it.present {
		panic(fmt.Sprintf("spatial: id %d already present", id))
	}
	k := g.key(pos)
	*it = item{pos: pos, key: k, present: true}
	g.cells[k] = append(g.cells[k], int32(id))
	g.count++
}

// Move updates the position of id. When the new position maps to the same
// cell only the stored position changes — the common case for mobility
// ticks, where a vehicle advances a few meters inside a 550 m cell. Moving
// an absent id panics.
func (g *Grid) Move(id int, pos geometry.Vec2) {
	if id < 0 || id >= len(g.items) || !g.items[id].present {
		panic(fmt.Sprintf("spatial: move of absent id %d", id))
	}
	it := &g.items[id]
	k := g.key(pos)
	if k == it.key {
		it.pos = pos
		return
	}
	g.removeFromCell(it.key, int32(id))
	it.pos = pos
	it.key = k
	g.cells[k] = append(g.cells[k], int32(id))
}

// Remove deletes id from the index. Removing an absent id panics.
func (g *Grid) Remove(id int) {
	if id < 0 || id >= len(g.items) || !g.items[id].present {
		panic(fmt.Sprintf("spatial: remove of absent id %d", id))
	}
	it := &g.items[id]
	g.removeFromCell(it.key, int32(id))
	*it = item{}
	g.count--
}

func (g *Grid) removeFromCell(key uint64, id int32) {
	ids := g.cells[key]
	for i, v := range ids {
		if v == id {
			// Preserve insertion order so query iteration stays
			// deterministic across runs that replay the same moves.
			copy(ids[i:], ids[i+1:])
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(g.cells, key)
		return
	}
	g.cells[key] = ids
}

// Position reports the indexed position of id and whether it is present.
func (g *Grid) Position(id int) (geometry.Vec2, bool) {
	if id < 0 || id >= len(g.items) || !g.items[id].present {
		return geometry.Vec2{}, false
	}
	return g.items[id].pos, true
}

// Nearest reports the indexed item strictly within limit meters of pos
// that minimizes distance, breaking exact-distance ties toward the
// smallest id. With no such item it reports ok=false.
//
// The result is exact and deterministic even though cells are visited in
// map order: candidates are ranked by the strict total order (distance,
// id), and a cell is pruned only when the minimum distance from pos to
// the cell rectangle — a lower bound on the distance to any member —
// strictly exceeds the best distance seen so far, so no cell that could
// hold the winner (or a tie for it) is ever skipped. The distance of each
// surviving candidate is computed with the same Vec2.Dist call a brute
// scan over the indexed positions would make, which keeps Nearest
// bit-identical to that scan — the property the geographic-forwarding
// differential oracle asserts.
func (g *Grid) Nearest(pos geometry.Vec2, limit float64) (id int, dist float64, ok bool) {
	if !(limit > 0) || g.count == 0 {
		return -1, 0, false
	}
	best, bestID := limit, -1
	for key, ids := range g.cells {
		kx := int32(key >> 32)
		ky := int32(uint32(key))
		var dx, dy float64
		if lo := float64(kx) * g.cell; pos.X < lo {
			dx = lo - pos.X
		} else if hi := lo + g.cell; pos.X > hi {
			dx = pos.X - hi
		}
		if lo := float64(ky) * g.cell; pos.Y < lo {
			dy = lo - pos.Y
		} else if hi := lo + g.cell; pos.Y > hi {
			dy = pos.Y - hi
		}
		if math.Hypot(dx, dy) > best {
			continue
		}
		for _, cand := range ids {
			d := pos.Dist(g.items[cand].pos)
			if d >= limit {
				continue
			}
			if bestID < 0 || d < best || (d == best && int(cand) < bestID) {
				best, bestID = d, int(cand)
			}
		}
	}
	if bestID < 0 {
		return -1, 0, false
	}
	return bestID, best, true
}

// Near appends to buf the ids of every item whose cell intersects the disc
// of the given radius around pos, and returns the extended slice. The
// result is a superset of the items within the radius; callers apply their
// exact acceptance test to each candidate. Passing a reused buf[:0] makes
// steady-state queries allocation-free.
func (g *Grid) Near(buf []int32, pos geometry.Vec2, radius float64) []int32 {
	if radius < 0 {
		return buf
	}
	x0 := int32(math.Floor((pos.X - radius) * g.inv))
	x1 := int32(math.Floor((pos.X + radius) * g.inv))
	y0 := int32(math.Floor((pos.Y - radius) * g.inv))
	y1 := int32(math.Floor((pos.Y + radius) * g.inv))
	for kx := x0; kx <= x1; kx++ {
		for ky := y0; ky <= y1; ky++ {
			key := uint64(uint32(kx))<<32 | uint64(uint32(ky))
			buf = append(buf, g.cells[key]...)
		}
	}
	return buf
}
