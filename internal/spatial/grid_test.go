package spatial

import (
	"math/rand"
	"sort"
	"testing"

	"cavenet/internal/geometry"
)

func collect(g *Grid, pos geometry.Vec2, radius float64) []int {
	ids := g.Near(nil, pos, radius)
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	sort.Ints(out)
	return out
}

func TestGridInsertAndNear(t *testing.T) {
	g := NewGrid(100)
	g.Insert(0, geometry.Vec2{X: 10, Y: 10})
	g.Insert(1, geometry.Vec2{X: 90, Y: 10})
	g.Insert(2, geometry.Vec2{X: 500, Y: 500})
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	got := collect(g, geometry.Vec2{X: 50, Y: 50}, 100)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Near = %v, want [0 1]", got)
	}
}

func TestGridNearIsSuperset(t *testing.T) {
	// Items just outside the radius but inside an intersecting cell may be
	// reported: Near is conservative, never exact.
	g := NewGrid(100)
	g.Insert(0, geometry.Vec2{X: 199, Y: 0})
	got := collect(g, geometry.Vec2{}, 100)
	if len(got) != 1 {
		t.Fatalf("conservative query dropped a candidate: %v", got)
	}
}

func TestGridMoveAcrossCells(t *testing.T) {
	g := NewGrid(100)
	g.Insert(7, geometry.Vec2{X: 50, Y: 50})
	g.Move(7, geometry.Vec2{X: 1050, Y: 50})
	if got := collect(g, geometry.Vec2{X: 50, Y: 50}, 100); len(got) != 0 {
		t.Fatalf("item still visible at old cell: %v", got)
	}
	if got := collect(g, geometry.Vec2{X: 1000, Y: 0}, 100); len(got) != 1 || got[0] != 7 {
		t.Fatalf("item not found at new cell: %v", got)
	}
	if pos, ok := g.Position(7); !ok || pos.X != 1050 {
		t.Fatalf("Position = %v, %v", pos, ok)
	}
}

func TestGridMoveWithinCellKeepsPosition(t *testing.T) {
	g := NewGrid(100)
	g.Insert(0, geometry.Vec2{X: 10, Y: 10})
	g.Move(0, geometry.Vec2{X: 20, Y: 30})
	pos, ok := g.Position(0)
	if !ok || pos != (geometry.Vec2{X: 20, Y: 30}) {
		t.Fatalf("Position after in-cell move = %v, %v", pos, ok)
	}
	if got := collect(g, geometry.Vec2{}, 50); len(got) != 1 {
		t.Fatalf("Near after in-cell move = %v", got)
	}
}

func TestGridRemove(t *testing.T) {
	g := NewGrid(100)
	g.Insert(0, geometry.Vec2{})
	g.Insert(1, geometry.Vec2{X: 1})
	g.Remove(0)
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if got := collect(g, geometry.Vec2{}, 10); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Near after remove = %v", got)
	}
	if _, ok := g.Position(0); ok {
		t.Fatal("removed id still has a position")
	}
}

func TestGridNegativeCoordinates(t *testing.T) {
	g := NewGrid(100)
	g.Insert(0, geometry.Vec2{X: -150, Y: -150})
	g.Insert(1, geometry.Vec2{X: 150, Y: 150})
	got := collect(g, geometry.Vec2{X: -150, Y: -150}, 100)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Near in negative quadrant = %v, want [0]", got)
	}
}

func TestGridPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero cell", func() { NewGrid(0) }},
		{"negative id", func() { NewGrid(1).Insert(-1, geometry.Vec2{}) }},
		{"double insert", func() {
			g := NewGrid(1)
			g.Insert(0, geometry.Vec2{})
			g.Insert(0, geometry.Vec2{})
		}},
		{"move absent", func() { NewGrid(1).Move(3, geometry.Vec2{}) }},
		{"remove absent", func() { NewGrid(1).Remove(3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

// TestGridMatchesBruteForce drives a random insert/move/remove workload and
// checks every query returns a superset of the brute-force answer while
// never reporting an item outside the scanned cell neighborhood.
func TestGridMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	const n = 200
	const cell = 550.0
	g := NewGrid(cell)
	pos := make([]geometry.Vec2, n)
	present := make([]bool, n)
	randPos := func() geometry.Vec2 {
		return geometry.Vec2{X: rnd.Float64()*8000 - 4000, Y: rnd.Float64()*8000 - 4000}
	}
	for i := 0; i < n; i++ {
		pos[i] = randPos()
		present[i] = true
		g.Insert(i, pos[i])
	}
	for step := 0; step < 2000; step++ {
		id := rnd.Intn(n)
		switch op := rnd.Intn(4); {
		case op == 0 && present[id]:
			g.Remove(id)
			present[id] = false
		case op == 1 && !present[id]:
			pos[id] = randPos()
			present[id] = true
			g.Insert(id, pos[id])
		case present[id]:
			pos[id] = randPos()
			g.Move(id, pos[id])
		}
		if step%20 != 0 {
			continue
		}
		center := randPos()
		radius := rnd.Float64() * 1200
		got := map[int]bool{}
		for _, v := range g.Near(nil, center, radius) {
			if got[int(v)] {
				t.Fatalf("step %d: duplicate id %d in query result", step, v)
			}
			got[int(v)] = true
		}
		for i := 0; i < n; i++ {
			within := present[i] && pos[i].Dist(center) <= radius
			if within && !got[i] {
				t.Fatalf("step %d: id %d within radius %v missing from query", step, i, radius)
			}
			// Conservative bound: anything reported lies in a cell that
			// intersects the bounding square, i.e. within (radius+cell)·√2.
			if got[i] && pos[i].Dist(center) > (radius+cell)*1.4143 {
				t.Fatalf("step %d: id %d at %v reported far outside radius %v",
					step, i, pos[i].Dist(center), radius)
			}
		}
	}
}

// bruteNearest is the reference answer for Nearest: a full scan applying
// the documented strict (distance, id) order with the same Dist calls.
func bruteNearest(pos []geometry.Vec2, present []bool, q geometry.Vec2, limit float64) (int, float64, bool) {
	best, bestID := limit, -1
	for i := range pos {
		if !present[i] {
			continue
		}
		d := q.Dist(pos[i])
		if d >= limit {
			continue
		}
		if bestID < 0 || d < best || (d == best && i < bestID) {
			best, bestID = d, i
		}
	}
	if bestID < 0 {
		return -1, 0, false
	}
	return bestID, best, true
}

// TestGridNearestMatchesBruteForce checks Nearest is bit-identical to a
// brute-force scan across a random insert/move/remove workload, including
// queries whose limit excludes everything (the detached-radio case).
func TestGridNearestMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	const n = 150
	g := NewGrid(550)
	pos := make([]geometry.Vec2, n)
	present := make([]bool, n)
	randPos := func() geometry.Vec2 {
		return geometry.Vec2{X: rnd.Float64()*6000 - 3000, Y: rnd.Float64()*6000 - 3000}
	}
	for i := 0; i < n; i++ {
		pos[i] = randPos()
		present[i] = true
		g.Insert(i, pos[i])
	}
	for step := 0; step < 3000; step++ {
		id := rnd.Intn(n)
		switch op := rnd.Intn(4); {
		case op == 0 && present[id]:
			g.Remove(id)
			present[id] = false
		case op == 1 && !present[id]:
			pos[id] = randPos()
			present[id] = true
			g.Insert(id, pos[id])
		case present[id]:
			pos[id] = randPos()
			g.Move(id, pos[id])
		}
		q := randPos()
		limit := rnd.Float64() * 2000 // often excludes every item
		gotID, gotD, gotOK := g.Nearest(q, limit)
		wantID, wantD, wantOK := bruteNearest(pos, present, q, limit)
		if gotID != wantID || gotD != wantD || gotOK != wantOK {
			t.Fatalf("step %d: Nearest(%v, %v) = (%d, %v, %v), brute force says (%d, %v, %v)",
				step, q, limit, gotID, gotD, gotOK, wantID, wantD, wantOK)
		}
	}
}

// TestGridNearestTieBreak pins the documented tie rule: exact equal
// distances resolve to the smallest id, regardless of insertion order or
// cell layout.
func TestGridNearestTieBreak(t *testing.T) {
	g := NewGrid(100)
	// Mirror-image points around the query — bitwise-equal distances, in
	// different cells, inserted high id first.
	g.Insert(9, geometry.Vec2{X: 250, Y: 0})
	g.Insert(4, geometry.Vec2{X: -250, Y: 0})
	id, d, ok := g.Nearest(geometry.Vec2{}, 1000)
	if !ok || id != 4 || d != 250 {
		t.Fatalf("Nearest = (%d, %v, %v), want (4, 250, true)", id, d, ok)
	}
	// Same tie within one cell.
	g2 := NewGrid(1000)
	g2.Insert(7, geometry.Vec2{X: 10, Y: 0})
	g2.Insert(3, geometry.Vec2{X: 0, Y: 10})
	if id, _, _ := g2.Nearest(geometry.Vec2{}, 50); id != 3 {
		t.Fatalf("in-cell tie broke to %d, want 3", id)
	}
}

// TestGridNearestLimitIsStrict: an item exactly at the limit is not
// "strictly within" it.
func TestGridNearestLimitIsStrict(t *testing.T) {
	g := NewGrid(100)
	g.Insert(0, geometry.Vec2{X: 300, Y: 0})
	if _, _, ok := g.Nearest(geometry.Vec2{}, 300); ok {
		t.Fatal("item at exactly the limit was accepted")
	}
	if id, _, ok := g.Nearest(geometry.Vec2{}, 300.0001); !ok || id != 0 {
		t.Fatal("item just inside the limit was rejected")
	}
	if _, _, ok := g.Nearest(geometry.Vec2{}, 0); ok {
		t.Fatal("non-positive limit accepted an item")
	}
	if _, _, ok := NewGrid(100).Nearest(geometry.Vec2{}, 100); ok {
		t.Fatal("empty grid reported an item")
	}
}

func TestGridNearReusesBuffer(t *testing.T) {
	g := NewGrid(100)
	for i := 0; i < 32; i++ {
		g.Insert(i, geometry.Vec2{X: float64(i), Y: float64(i)})
	}
	buf := make([]int32, 0, 64)
	out := g.Near(buf[:0], geometry.Vec2{X: 16, Y: 16}, 90)
	if len(out) == 0 {
		t.Fatal("query returned nothing")
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = g.Near(buf[:0], geometry.Vec2{X: 16, Y: 16}, 90)
	})
	if allocs != 0 {
		t.Fatalf("Near with reused buffer allocated %v times per run", allocs)
	}
}
