// Package mac implements the IEEE 802.11 Distributed Coordination Function
// used by the paper's evaluation (Table I: "IEEE802.11 DCF", 2 Mbps, no
// RTS/CTS): CSMA/CA with DIFS deference and binary-exponential slotted
// backoff, unicast acknowledgements with retry limits, broadcast frames,
// virtual carrier sense (NAV) and a drop-tail interface queue.
//
// Timing and size constants default to the ns-2 802.11 (DSSS) values so the
// CPS substrate matches what the paper ran on.
package mac

import (
	"fmt"
	"math/rand"

	"cavenet/internal/phy"
	"cavenet/internal/sim"
)

// Address identifies a station. CAVENET uses the node ID directly.
type Address int

// Broadcast is the all-stations address.
const Broadcast Address = -1

// Config holds DCF parameters. Zero fields take ns-2 DSSS defaults.
type Config struct {
	SlotTime     sim.Time // default 20 µs
	SIFS         sim.Time // default 10 µs
	DIFS         sim.Time // default SIFS + 2·slot = 50 µs
	Preamble     sim.Time // PLCP preamble+header, default 192 µs
	DataRateBPS  float64  // default 2 Mb/s (Table I)
	BasicRateBPS float64  // control-frame rate, default 1 Mb/s
	CWMin        int      // default 31
	CWMax        int      // default 1023
	RetryLimit   int      // default 7 (short retry limit; RTS/CTS is off)
	QueueCap     int      // interface queue capacity, default 50 (ns-2 ifq)
	HeaderBytes  int      // MAC data header+FCS, default 28
	AckBytes     int      // ACK frame size, default 14
	// RTSThreshold enables the RTS/CTS exchange for unicast payloads of at
	// least this many bytes. Zero (the default) disables RTS/CTS entirely,
	// matching Table I of the paper ("RTS/CTS: None"); the ablation bench
	// turns it on to measure the hidden-terminal trade-off.
	RTSThreshold int
	RTSBytes     int // RTS frame size, default 20
	CTSBytes     int // CTS frame size, default 14
	LongRetry    int // retry limit for RTS-protected frames, default 4
}

func (c *Config) normalize() {
	if c.SlotTime == 0 {
		c.SlotTime = 20 * sim.Microsecond
	}
	if c.SIFS == 0 {
		c.SIFS = 10 * sim.Microsecond
	}
	if c.DIFS == 0 {
		c.DIFS = c.SIFS + 2*c.SlotTime
	}
	if c.Preamble == 0 {
		c.Preamble = 192 * sim.Microsecond
	}
	if c.DataRateBPS == 0 {
		c.DataRateBPS = 2e6
	}
	if c.BasicRateBPS == 0 {
		c.BasicRateBPS = 1e6
	}
	if c.CWMin == 0 {
		c.CWMin = 31
	}
	if c.CWMax == 0 {
		c.CWMax = 1023
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = 7
	}
	if c.QueueCap == 0 {
		c.QueueCap = 50
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 28
	}
	if c.AckBytes == 0 {
		c.AckBytes = 14
	}
	if c.RTSBytes == 0 {
		c.RTSBytes = 20
	}
	if c.CTSBytes == 0 {
		c.CTSBytes = 14
	}
	if c.LongRetry == 0 {
		c.LongRetry = 4
	}
}

// Upper is the network-layer interface the MAC delivers to.
type Upper interface {
	// MACReceive delivers a decoded data frame's payload. from is the
	// transmitting station.
	MACReceive(payload any, from Address)
	// MACSendFailed reports that a unicast to 'to' exhausted its retries —
	// the data-link feedback AODV and DYMO use for link monitoring.
	MACSendFailed(to Address, payload any)
}

// QueueDropObserver is an optional Upper extension: when implemented, the
// MAC reports every drop-tail interface-queue drop instead of discarding
// the frame silently. Without it a queued packet can vanish from the
// network layer's ledger with no drop event — the accounting hole the
// packet-conservation invariant harness exists to catch.
type QueueDropObserver interface {
	MACQueueDrop(to Address, payload any)
}

// SendDoneObserver is an optional Upper extension: when implemented, the
// MAC reports every unicast frame whose ACK arrived. By that instant every
// station in range has already decoded the frame (receivers decode at the
// end of the data airtime, a SIFS plus an ACK airtime before the sender
// hears the ACK), so the notification is the earliest point at which the
// sender-side payload pointer is provably dead — the hook the network
// layer's packet pool uses to reclaim forwarded data packets. Broadcast
// completions are not reported: their receivers decode the shared payload
// at the same timestamp as the sender's tx-done.
type SendDoneObserver interface {
	MACSendDone(to Address, payload any)
}

// DownObserver is an optional Upper extension for fault injection: Down
// flushes the station's custody — the in-flight job and the whole backlog —
// through it, so the network layer can terminate each packet with an
// explicit drop instead of letting it vanish with the dead interface.
type DownObserver interface {
	MACDownDrop(to Address, payload any)
}

// Kind distinguishes MAC frame types.
type Kind int

// Frame kinds.
const (
	KindData Kind = iota + 1
	KindAck
	KindRTS
	KindCTS
)

// Frame is the MAC PDU carried inside a phy.Frame payload.
type Frame struct {
	Kind    Kind
	From    Address
	To      Address
	Seq     uint16
	Retry   bool
	NAV     sim.Time // medium reservation beyond this frame (covers the ACK)
	Payload any
}

// Stats counts MAC-level events for the metrics module.
type Stats struct {
	DataTx      uint64 // data frame transmissions, including retries
	DataRx      uint64 // data frames accepted for this station
	AckTx       uint64
	AckRx       uint64
	RTSTx       uint64
	CTSTx       uint64
	Retries     uint64
	Failures    uint64 // unicasts dropped after retry exhaustion
	QueueDrops  uint64 // drop-tail interface-queue drops
	DownDrops   uint64 // frames flushed because the interface went down
	Duplicates  uint64 // retransmitted frames filtered by dedup
	BytesTx     uint64 // on-air data bytes including MAC header
	NAVSettings uint64
}

type txJob struct {
	to      Address
	payload any
	bytes   int // network-layer bytes
}

// DCF is one station's MAC instance.
type DCF struct {
	cfg    Config
	kernel *sim.Kernel
	radio  *phy.Radio
	rnd    *rand.Rand
	addr   Address
	upper  Upper
	// sendDone caches the optional SendDoneObserver assertion so the ACK
	// hot path pays a nil check instead of a type assertion per frame.
	sendDone SendDoneObserver

	queue   []txJob
	current *txJob
	retries int
	cw      int
	backoff int

	difsTimer *sim.Timer
	slotTimer *sim.Timer
	ackTimer  *sim.Timer
	ctsTimer  *sim.Timer
	navTimer  *sim.Timer

	navUntil    sim.Time
	down        bool
	awaitingAck bool
	awaitingCTS bool
	ackSeq      uint16
	ackFrom     Address
	seq         uint16
	// Receive dedup state, dense-indexed by sender address (station
	// addresses are small and dense; data frames never come from
	// Broadcast). Replaces the two maps the seed used, which cost a map
	// lookup per received frame.
	lastSeq  []uint16
	haveLast []bool

	stats Stats
}

// New creates a DCF station bound to a radio. The radio's handler is set to
// the new MAC.
func New(k *sim.Kernel, radio *phy.Radio, addr Address, cfg Config, rnd *rand.Rand, upper Upper) *DCF {
	cfg.normalize()
	d := &DCF{
		cfg:    cfg,
		kernel: k,
		radio:  radio,
		rnd:    rnd,
		addr:   addr,
		upper:  upper,
		cw:     cfg.CWMin,
	}
	d.sendDone, _ = upper.(SendDoneObserver)
	d.difsTimer = sim.NewTimer(k, d.onDIFS)
	d.slotTimer = sim.NewTimer(k, d.onSlot)
	d.ackTimer = sim.NewTimer(k, d.onAckTimeout)
	d.ctsTimer = sim.NewTimer(k, d.onCTSTimeout)
	d.navTimer = sim.NewTimer(k, d.resume)
	radio.SetHandler(d)
	return d
}

// Addr reports the station address.
func (d *DCF) Addr() Address { return d.addr }

// Stats returns a copy of the MAC counters.
func (d *DCF) Stats() Stats { return d.stats }

// QueueLen reports the current transmit backlog: queued frames plus the
// in-flight job still contending or awaiting its ACK/retries. Counting
// only the queue made the backlog read 0 while a frame was still retrying.
func (d *DCF) QueueLen() int {
	n := len(d.queue)
	if d.current != nil {
		n++
	}
	return n
}

// EachQueued visits the payload of every frame in the station's custody:
// the in-flight job first, then the backlog in queue order. The invariant
// harness uses it to prove that every unterminated data packet is still
// physically held somewhere.
func (d *DCF) EachQueued(f func(payload any)) {
	if d.current != nil {
		f(d.current.payload)
	}
	for i := range d.queue {
		f(d.queue[i].payload)
	}
}

// Config reports the normalized configuration.
func (d *DCF) Config() Config { return d.cfg }

// dataDuration is the on-air time of a data frame with the given
// network-layer payload size.
func (d *DCF) dataDuration(bytes int) sim.Time {
	bits := float64((bytes + d.cfg.HeaderBytes) * 8)
	return d.cfg.Preamble + sim.Time(bits/d.cfg.DataRateBPS*float64(sim.Second))
}

func (d *DCF) ackDuration() sim.Time {
	return d.controlDuration(d.cfg.AckBytes)
}

func (d *DCF) controlDuration(bytes int) sim.Time {
	bits := float64(bytes * 8)
	return d.cfg.Preamble + sim.Time(bits/d.cfg.BasicRateBPS*float64(sim.Second))
}

// useRTS reports whether the current job warrants an RTS/CTS exchange.
func (d *DCF) useRTS(job *txJob) bool {
	return job.to != Broadcast && d.cfg.RTSThreshold > 0 && job.bytes >= d.cfg.RTSThreshold
}

// retryLimit selects the short or long retry counter per 802.11 rules.
func (d *DCF) retryLimit(job *txJob) int {
	if d.useRTS(job) {
		return d.cfg.LongRetry
	}
	return d.cfg.RetryLimit
}

// IsDown reports whether the interface is administratively down.
func (d *DCF) IsDown() bool { return d.down }

// Down takes the interface out of service: every timer stops, contention
// state resets, and the station's entire custody — the in-flight job and
// the backlog — is flushed through the DownObserver (when the upper layer
// implements it) so each packet terminates with an accountable drop. The
// radio itself is detached separately by the node lifecycle; an own
// transmission already on the air completes at the PHY but the down MAC
// ignores its completion. Calling Down on a down interface is a no-op.
func (d *DCF) Down() {
	if d.down {
		return
	}
	d.down = true
	d.difsTimer.Stop()
	d.slotTimer.Stop()
	d.ackTimer.Stop()
	d.ctsTimer.Stop()
	d.navTimer.Stop()
	d.awaitingAck = false
	d.awaitingCTS = false
	d.navUntil = 0
	obs, _ := d.upper.(DownObserver)
	if d.current != nil {
		job := *d.current
		d.current = nil
		// Retire the flushed MSDU's sequence number: the receiver may have
		// cached it in its dedup filter, and a post-recovery frame reusing
		// it would be ACKed yet silently discarded as a retransmission.
		d.seq++
		d.stats.DownDrops++
		if obs != nil {
			obs.MACDownDrop(job.to, job.payload)
		}
	}
	for i := range d.queue {
		job := d.queue[i]
		d.queue[i] = txJob{}
		d.stats.DownDrops++
		if obs != nil {
			obs.MACDownDrop(job.to, job.payload)
		}
	}
	d.queue = d.queue[:0]
	d.cw = d.cfg.CWMin
	d.backoff = 0
}

// Up returns a down interface to service with a clean slate (empty queue,
// CWMin). Calling Up on a live interface is a no-op.
func (d *DCF) Up() { d.down = false }

// Send queues a frame for transmission. to may be Broadcast. bytes is the
// network-layer packet size used for air-time computation.
func (d *DCF) Send(to Address, payload any, bytes int) {
	if d.down {
		// A down interface accepts nothing; flush straight through the
		// observer so the packet still terminates accountably.
		d.stats.DownDrops++
		if o, ok := d.upper.(DownObserver); ok {
			o.MACDownDrop(to, payload)
		}
		return
	}
	if len(d.queue) >= d.cfg.QueueCap {
		d.stats.QueueDrops++
		if o, ok := d.upper.(QueueDropObserver); ok {
			o.MACQueueDrop(to, payload)
		}
		return
	}
	d.queue = append(d.queue, txJob{to: to, payload: payload, bytes: bytes})
	d.kick()
}

// kick starts service of the next queued frame when the MAC is idle.
func (d *DCF) kick() {
	if d.current != nil || len(d.queue) == 0 {
		return
	}
	job := d.queue[0]
	d.queue = d.queue[1:]
	d.current = &job
	d.retries = 0
	d.cw = d.cfg.CWMin
	d.backoff = d.rnd.Intn(d.cw + 1)
	d.resume()
}

// mediumIdle reports whether both physical and virtual carrier sense are
// clear.
func (d *DCF) mediumIdle() bool {
	return !d.radio.CarrierBusy() && d.kernel.Now() >= d.navUntil
}

// resume makes contention progress whenever conditions may have changed.
func (d *DCF) resume() {
	if d.down {
		return
	}
	if d.current == nil || d.awaitingAck || d.awaitingCTS {
		return
	}
	if d.difsTimer.Active() || d.slotTimer.Active() {
		return
	}
	if !d.mediumIdle() {
		return // a carrier/NAV/txdone event will call resume again
	}
	d.difsTimer.Reset(d.cfg.DIFS)
}

func (d *DCF) onDIFS() {
	if !d.mediumIdle() {
		return
	}
	d.scheduleSlot()
}

func (d *DCF) scheduleSlot() {
	if d.backoff <= 0 {
		d.transmitCurrent()
		return
	}
	d.slotTimer.Reset(d.cfg.SlotTime)
}

func (d *DCF) onSlot() {
	if !d.mediumIdle() {
		// Frozen: after the medium clears we re-defer a full DIFS.
		return
	}
	d.backoff--
	d.scheduleSlot()
}

func (d *DCF) freeze() {
	d.difsTimer.Stop()
	d.slotTimer.Stop()
}

func (d *DCF) transmitCurrent() {
	if d.radio.Transmitting() {
		// An ACK/CTS transmission is in flight; retry after it completes.
		return
	}
	job := d.current
	if d.useRTS(job) {
		d.sendRTS(job)
		return
	}
	d.sendDataFrame(job)
}

func (d *DCF) sendDataFrame(job *txJob) {
	frame := &Frame{
		Kind:    KindData,
		From:    d.addr,
		To:      job.to,
		Seq:     d.seq,
		Retry:   d.retries > 0,
		Payload: job.payload,
	}
	dur := d.dataDuration(job.bytes)
	if job.to != Broadcast {
		frame.NAV = d.cfg.SIFS + d.ackDuration()
	}
	d.stats.DataTx++
	d.stats.BytesTx += uint64(job.bytes + d.cfg.HeaderBytes)
	d.radio.Transmit(frame, job.bytes+d.cfg.HeaderBytes, dur)
	if job.to == Broadcast {
		// Completion handled in RadioTxDone.
		return
	}
	d.awaitingAck = true
	d.ackSeq = frame.Seq
	d.ackFrom = job.to
	// Timeout: frame airtime + SIFS + ACK airtime + slack for propagation
	// and slot alignment.
	d.ackTimer.Reset(dur + d.cfg.SIFS + d.ackDuration() + 2*d.cfg.SlotTime)
}

func (d *DCF) sendRTS(job *txJob) {
	rtsDur := d.controlDuration(d.cfg.RTSBytes)
	ctsDur := d.controlDuration(d.cfg.CTSBytes)
	// The RTS reserves the medium for the whole exchange that follows it:
	// SIFS + CTS + SIFS + DATA + SIFS + ACK.
	nav := 3*d.cfg.SIFS + ctsDur + d.dataDuration(job.bytes) + d.ackDuration()
	rts := &Frame{Kind: KindRTS, From: d.addr, To: job.to, Seq: d.seq, NAV: nav}
	d.stats.RTSTx++
	d.radio.Transmit(rts, d.cfg.RTSBytes, rtsDur)
	d.awaitingCTS = true
	d.ctsTimer.Reset(rtsDur + d.cfg.SIFS + ctsDur + 2*d.cfg.SlotTime)
}

func (d *DCF) onCTSTimeout() {
	if !d.awaitingCTS {
		return
	}
	d.awaitingCTS = false
	d.retryCurrent()
}

func (d *DCF) onAckTimeout() {
	if !d.awaitingAck {
		return
	}
	d.awaitingAck = false
	d.retryCurrent()
}

// retryCurrent backs off and retransmits the current frame, or gives up
// after the applicable retry limit.
func (d *DCF) retryCurrent() {
	d.retries++
	d.stats.Retries++
	if d.retries > d.retryLimit(d.current) {
		d.stats.Failures++
		job := *d.current
		d.finishJob()
		if d.upper != nil {
			d.upper.MACSendFailed(job.to, job.payload)
		}
		return
	}
	if d.cw < d.cfg.CWMax {
		d.cw = d.cw*2 + 1
		if d.cw > d.cfg.CWMax {
			d.cw = d.cfg.CWMax
		}
	}
	d.backoff = d.rnd.Intn(d.cw + 1)
	d.resume()
}

// finishJob completes the current frame (success or final failure) and
// moves on. The sequence number advances per transmitted MSDU.
func (d *DCF) finishJob() {
	d.current = nil
	d.seq++
	d.kick()
}

// Radio handler implementation.

var _ phy.Handler = (*DCF)(nil)

// RadioCarrier implements phy.Handler.
func (d *DCF) RadioCarrier(busy bool) {
	if d.down {
		return
	}
	if busy {
		d.freeze()
		return
	}
	d.resume()
}

// RadioTxDone implements phy.Handler.
func (d *DCF) RadioTxDone(f *phy.Frame) {
	frame, ok := f.Payload.(*Frame)
	if !ok {
		panic(fmt.Sprintf("mac: foreign payload %T on own radio", f.Payload))
	}
	if d.down {
		// Our last transmission finished airing after the interface went
		// down; its job was already flushed.
		return
	}
	if frame.Kind == KindData && frame.To == Broadcast && d.current != nil {
		d.finishJob()
		return
	}
	// Unicast data completion is decided by ACK/timeout; ACK tx needs no
	// follow-up. Either way the medium state changed for us.
	d.resume()
}

// RadioReceive implements phy.Handler.
func (d *DCF) RadioReceive(f *phy.Frame, _ float64) {
	frame, ok := f.Payload.(*Frame)
	if !ok {
		panic(fmt.Sprintf("mac: foreign payload %T", f.Payload))
	}
	if d.down {
		// A reception that was mid-decode when the interface went down
		// completes at the PHY; a dead station hears nothing.
		return
	}
	switch frame.Kind {
	case KindAck:
		d.handleAck(frame)
	case KindData:
		d.handleData(frame)
	case KindRTS:
		d.handleRTS(frame)
	case KindCTS:
		d.handleCTS(frame)
	}
}

func (d *DCF) handleRTS(frame *Frame) {
	if frame.To != d.addr {
		d.observeNAV(frame)
		return
	}
	ctsDur := d.controlDuration(d.cfg.CTSBytes)
	cts := &Frame{
		Kind: KindCTS,
		From: d.addr,
		To:   frame.From,
		Seq:  frame.Seq,
		NAV:  frame.NAV - d.cfg.SIFS - ctsDur,
	}
	d.kernel.After(d.cfg.SIFS, func() {
		// The down check matters: the interface may crash during the SIFS
		// and a detached radio panics on Transmit.
		if d.down || d.radio.Transmitting() {
			return
		}
		d.stats.CTSTx++
		d.radio.Transmit(cts, d.cfg.CTSBytes, ctsDur)
	})
}

func (d *DCF) handleCTS(frame *Frame) {
	if frame.To != d.addr {
		d.observeNAV(frame)
		return
	}
	if !d.awaitingCTS || frame.From != d.current.to {
		return
	}
	d.awaitingCTS = false
	d.ctsTimer.Stop()
	job := d.current
	d.kernel.After(d.cfg.SIFS, func() {
		if d.down || d.radio.Transmitting() || d.current == nil {
			return
		}
		d.sendDataFrame(job)
	})
}

// observeNAV honors the medium reservation of an overheard frame.
func (d *DCF) observeNAV(frame *Frame) {
	if frame.NAV <= 0 {
		return
	}
	until := d.kernel.Now() + frame.NAV
	if until > d.navUntil {
		d.navUntil = until
		d.stats.NAVSettings++
		d.freeze()
		d.navTimer.ResetAt(until)
	}
}

func (d *DCF) handleAck(frame *Frame) {
	if frame.To != d.addr {
		return
	}
	d.stats.AckRx++
	if d.awaitingAck && frame.From == d.ackFrom && frame.Seq == d.ackSeq {
		d.awaitingAck = false
		d.ackTimer.Stop()
		job := *d.current
		d.finishJob()
		if d.sendDone != nil {
			d.sendDone.MACSendDone(job.to, job.payload)
		}
	}
}

func (d *DCF) handleData(frame *Frame) {
	switch frame.To {
	case d.addr:
		d.sendAckAfterSIFS(frame)
		from := int(frame.From)
		if from >= len(d.haveLast) {
			d.growDedup(from)
		}
		if d.haveLast[from] && d.lastSeq[from] == frame.Seq && frame.Retry {
			d.stats.Duplicates++
			return
		}
		d.lastSeq[from] = frame.Seq
		d.haveLast[from] = true
		d.stats.DataRx++
		if d.upper != nil {
			d.upper.MACReceive(frame.Payload, frame.From)
		}
	case Broadcast:
		d.stats.DataRx++
		if d.upper != nil {
			d.upper.MACReceive(frame.Payload, frame.From)
		}
	default:
		// Overheard frame: honor its NAV reservation.
		d.observeNAV(frame)
	}
}

// growDedup extends the dedup slices to cover sender address from.
func (d *DCF) growDedup(from int) {
	n := from + 1
	ls := make([]uint16, n)
	copy(ls, d.lastSeq)
	d.lastSeq = ls
	hl := make([]bool, n)
	copy(hl, d.haveLast)
	d.haveLast = hl
}

func (d *DCF) sendAckAfterSIFS(frame *Frame) {
	ack := &Frame{Kind: KindAck, From: d.addr, To: frame.From, Seq: frame.Seq}
	d.kernel.After(d.cfg.SIFS, func() {
		if d.down || d.radio.Transmitting() {
			// Down: the interface crashed during the SIFS; a detached radio
			// panics on Transmit. Transmitting should not happen (SIFS
			// preempts contention), but never double-transmit.
			return
		}
		d.stats.AckTx++
		d.radio.Transmit(ack, d.cfg.AckBytes, d.ackDuration())
	})
}
