package mac

import (
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/phy"
	"cavenet/internal/sim"
)

// rtsNet builds stations on a line with RTS/CTS enabled for payloads of at
// least threshold bytes.
func rtsNet(t *testing.T, n int, spacing float64, threshold int, csRange float64) (*sim.Kernel, []*DCF, []*upperRec) {
	t.Helper()
	k := sim.NewKernel()
	cfg := phy.Config{CaptureRatio: 10}
	if csRange > 0 {
		cfg.CSRangeM = csRange
	}
	c := phy.NewChannel(k, phy.TwoRayGround{}, cfg)
	var macs []*DCF
	var ups []*upperRec
	for i := 0; i < n; i++ {
		pos := geometry.Vec2{X: float64(i) * spacing}
		radio := c.Attach(pos)
		up := &upperRec{}
		macs = append(macs, New(k, radio, Address(i),
			Config{RTSThreshold: threshold},
			rand.New(rand.NewSource(int64(i+1))), up))
		ups = append(ups, up)
	}
	return k, macs, ups
}

func TestRTSCTSBasicExchange(t *testing.T) {
	k, macs, ups := rtsNet(t, 2, 100, 100, 0)
	macs[0].Send(1, "big", 512)
	k.RunUntil(sim.Second)
	if len(ups[1].received) != 1 {
		t.Fatalf("received %d", len(ups[1].received))
	}
	s0, s1 := macs[0].Stats(), macs[1].Stats()
	if s0.RTSTx != 1 {
		t.Fatalf("RTSTx = %d, want 1", s0.RTSTx)
	}
	if s1.CTSTx != 1 {
		t.Fatalf("CTSTx = %d, want 1", s1.CTSTx)
	}
	if s0.AckRx != 1 || s1.AckTx != 1 {
		t.Fatal("the protected data frame must still be ACKed")
	}
}

func TestRTSThresholdSpares(t *testing.T) {
	// Payload below the threshold goes out without the handshake.
	k, macs, ups := rtsNet(t, 2, 100, 256, 0)
	macs[0].Send(1, "small", 64)
	k.RunUntil(sim.Second)
	if len(ups[1].received) != 1 {
		t.Fatal("delivery failed")
	}
	if macs[0].Stats().RTSTx != 0 {
		t.Fatal("small frame must not use RTS")
	}
}

func TestRTSNeverForBroadcast(t *testing.T) {
	k, macs, ups := rtsNet(t, 3, 80, 1, 0)
	macs[0].Send(Broadcast, "b", 512)
	k.RunUntil(sim.Second)
	if macs[0].Stats().RTSTx != 0 {
		t.Fatal("broadcast must never use RTS")
	}
	if len(ups[1].received) != 1 || len(ups[2].received) != 1 {
		t.Fatal("broadcast delivery failed")
	}
}

func TestRTSDisabledByDefault(t *testing.T) {
	var c Config
	c.normalize()
	if c.RTSThreshold != 0 {
		t.Fatal("Table I says RTS/CTS None: the default threshold must be 0")
	}
	if c.RTSBytes != 20 || c.CTSBytes != 14 || c.LongRetry != 4 {
		t.Fatalf("RTS constants wrong: %+v", c)
	}
}

func TestCTSTimeoutRetriesWithLongLimit(t *testing.T) {
	// Receiver out of range: no CTS; the frame fails after LongRetry tries.
	k, macs, ups := rtsNet(t, 2, 2000, 100, 0)
	macs[0].Send(1, "lost", 512)
	k.RunUntil(10 * sim.Second)
	if len(ups[0].failed) != 1 {
		t.Fatalf("failures = %d", len(ups[0].failed))
	}
	st := macs[0].Stats()
	if st.RTSTx != uint64(macs[0].Config().LongRetry)+1 {
		t.Fatalf("RTSTx = %d, want LongRetry+1 attempts", st.RTSTx)
	}
	if st.DataTx != 0 {
		t.Fatal("data must never fly without a CTS")
	}
}

func TestRTSCTSHiddenTerminalImproves(t *testing.T) {
	// Hidden-terminal topology (CS range shrunk to decode range so the
	// outer stations cannot sense each other). With RTS/CTS the hidden
	// sender defers via the CTS's NAV, reducing data-frame retries.
	run := func(threshold int) uint64 {
		k, macs, ups := rtsNet(t, 3, 200, threshold, 250)
		const n = 15
		for i := 0; i < n; i++ {
			macs[0].Send(1, 100+i, 512)
			macs[2].Send(1, 200+i, 512)
		}
		k.RunUntil(30 * sim.Second)
		if len(ups[1].received) < 2*n-4 {
			t.Fatalf("threshold %d: delivered only %d/%d", threshold, len(ups[1].received), 2*n)
		}
		return macs[0].Stats().Retries + macs[2].Stats().Retries
	}
	without := run(0)
	with := run(100)
	if with >= without {
		t.Fatalf("RTS/CTS should reduce hidden-terminal retries: %d with vs %d without",
			with, without)
	}
}

func TestThirdPartyHonorsRTSNAV(t *testing.T) {
	k, macs, _ := rtsNet(t, 3, 100, 100, 0)
	macs[0].Send(1, "data", 512)
	k.RunUntil(sim.Second)
	// Station 2 overhears the RTS (and CTS) and must have set its NAV.
	if macs[2].Stats().NAVSettings == 0 {
		t.Fatal("third party ignored RTS/CTS NAV")
	}
}
