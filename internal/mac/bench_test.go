package mac

import (
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/phy"
	"cavenet/internal/sim"
)

// BenchmarkSaturatedPair measures the MAC's event cost moving a batch of
// frames between two stations on a clean channel.
func BenchmarkSaturatedPair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		c := phy.NewChannel(k, phy.TwoRayGround{}, phy.Config{CaptureRatio: 10})
		posA := geometry.Vec2{}
		posB := geometry.Vec2{X: 100}
		up := &upperRec{}
		a := New(k, c.Attach(posA), 0, Config{},
			rand.New(rand.NewSource(1)), &upperRec{})
		New(k, c.Attach(posB), 1, Config{},
			rand.New(rand.NewSource(2)), up)
		for j := 0; j < 50; j++ {
			a.Send(1, j, 512)
		}
		k.RunUntil(5 * sim.Second)
		if len(up.received) != 50 {
			b.Fatalf("delivered %d/50", len(up.received))
		}
	}
}

// BenchmarkContention measures 8 stations all broadcasting into one
// collision domain.
func BenchmarkContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		c := phy.NewChannel(k, phy.TwoRayGround{}, phy.Config{CaptureRatio: 10})
		var macs []*DCF
		for s := 0; s < 8; s++ {
			pos := geometry.Vec2{X: float64(s) * 20}
			macs = append(macs, New(k, c.Attach(pos),
				Address(s), Config{}, rand.New(rand.NewSource(int64(s+1))), &upperRec{}))
		}
		for s := 0; s < 8; s++ {
			for j := 0; j < 10; j++ {
				macs[s].Send(Broadcast, j, 256)
			}
		}
		k.RunUntil(5 * sim.Second)
	}
}
