package mac

import (
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/phy"
	"cavenet/internal/sim"
)

// upperRec records MAC deliveries and failures for one station.
type upperRec struct {
	received []any
	from     []Address
	failed   []any
	failedTo []Address
}

func (u *upperRec) MACReceive(payload any, from Address) {
	u.received = append(u.received, payload)
	u.from = append(u.from, from)
}

func (u *upperRec) MACSendFailed(to Address, payload any) {
	u.failed = append(u.failed, payload)
	u.failedTo = append(u.failedTo, to)
}

// testNet builds n stations on a line with the given spacing (meters).
func testNet(t *testing.T, n int, spacing float64) (*sim.Kernel, []*DCF, []*upperRec) {
	t.Helper()
	k := sim.NewKernel()
	c := phy.NewChannel(k, phy.TwoRayGround{}, phy.Config{CaptureRatio: 10})
	var macs []*DCF
	var ups []*upperRec
	for i := 0; i < n; i++ {
		x := float64(i) * spacing
		pos := geometry.Vec2{X: x}
		radio := c.Attach(pos)
		up := &upperRec{}
		m := New(k, radio, Address(i), Config{}, rand.New(rand.NewSource(int64(i+1))), up)
		macs = append(macs, m)
		ups = append(ups, up)
	}
	return k, macs, ups
}

func TestUnicastDelivery(t *testing.T) {
	k, macs, ups := testNet(t, 2, 100)
	macs[0].Send(1, "payload", 512)
	k.RunUntil(sim.Second)
	if len(ups[1].received) != 1 || ups[1].received[0] != "payload" {
		t.Fatalf("station 1 received %v", ups[1].received)
	}
	if ups[1].from[0] != 0 {
		t.Fatalf("from = %v", ups[1].from[0])
	}
	st := macs[0].Stats()
	if st.DataTx != 1 || st.AckRx != 1 {
		t.Fatalf("sender stats = %+v", st)
	}
	if macs[1].Stats().AckTx != 1 {
		t.Fatalf("receiver should have ACKed: %+v", macs[1].Stats())
	}
}

func TestBroadcastDelivery(t *testing.T) {
	k, macs, ups := testNet(t, 4, 80) // farthest receiver at 240 m < 250 m range
	macs[0].Send(Broadcast, "bcast", 64)
	k.RunUntil(sim.Second)
	for i := 1; i < 4; i++ {
		if len(ups[i].received) != 1 {
			t.Fatalf("station %d received %d frames", i, len(ups[i].received))
		}
	}
	// Broadcasts are never ACKed.
	for i := 1; i < 4; i++ {
		if macs[i].Stats().AckTx != 0 {
			t.Fatalf("station %d ACKed a broadcast", i)
		}
	}
}

func TestRetryExhaustionReportsFailure(t *testing.T) {
	// Station 1 is far outside range: no ACK ever comes back.
	k, macs, ups := testNet(t, 2, 2000)
	macs[0].Send(1, "lost", 512)
	k.RunUntil(5 * sim.Second)
	if len(ups[0].failed) != 1 || ups[0].failed[0] != "lost" {
		t.Fatalf("failure feedback = %v", ups[0].failed)
	}
	if ups[0].failedTo[0] != 1 {
		t.Fatalf("failedTo = %v", ups[0].failedTo)
	}
	st := macs[0].Stats()
	if st.Failures != 1 {
		t.Fatalf("Failures = %d", st.Failures)
	}
	if st.Retries != uint64(macs[0].Config().RetryLimit)+1 {
		t.Fatalf("Retries = %d, want retryLimit+1", st.Retries)
	}
	// Retransmissions show as DataTx.
	if st.DataTx != uint64(macs[0].Config().RetryLimit)+1 {
		t.Fatalf("DataTx = %d", st.DataTx)
	}
}

func TestQueueDropTail(t *testing.T) {
	k, macs, _ := testNet(t, 2, 100)
	cap := macs[0].Config().QueueCap
	// The first Send dequeues immediately into service, so cap+1 sends fit;
	// everything beyond that must be dropped.
	for i := 0; i < cap+10; i++ {
		macs[0].Send(1, i, 512)
	}
	if drops := macs[0].Stats().QueueDrops; drops != 9 {
		t.Fatalf("QueueDrops = %d, want 9", drops)
	}
	k.RunUntil(10 * sim.Second)
}

func TestManyPacketsAllDelivered(t *testing.T) {
	k, macs, ups := testNet(t, 2, 100)
	const n = 30
	for i := 0; i < n; i++ {
		macs[0].Send(1, i, 512)
	}
	k.RunUntil(5 * sim.Second)
	if len(ups[1].received) != n {
		t.Fatalf("received %d/%d", len(ups[1].received), n)
	}
	// In-order delivery on a clean channel.
	for i, p := range ups[1].received {
		if p != i {
			t.Fatalf("out of order at %d: %v", i, p)
		}
	}
}

func TestContendersBothDeliver(t *testing.T) {
	// Two stations saturate the channel toward a third; DCF must let both
	// make progress without deadlock.
	k, macs, ups := testNet(t, 3, 100)
	const n = 20
	for i := 0; i < n; i++ {
		macs[0].Send(2, 1000+i, 512)
		macs[1].Send(2, 2000+i, 512)
	}
	k.RunUntil(10 * sim.Second)
	var from0, from1 int
	for _, p := range ups[2].received {
		if p.(int) >= 2000 {
			from1++
		} else {
			from0++
		}
	}
	if from0 != n || from1 != n {
		t.Fatalf("delivered %d from A, %d from B; want %d each", from0, from1, n)
	}
}

func TestHiddenTerminalEventualDelivery(t *testing.T) {
	// Stations 0 and 2 cannot hear each other but both reach station 1 —
	// the classic hidden-terminal setup. With the default 550 m CS range a
	// 3-station line cannot be hidden, so this test shrinks carrier sense
	// to the decode range.
	k := sim.NewKernel()
	c := phy.NewChannel(k, phy.TwoRayGround{}, phy.Config{CaptureRatio: 10, CSRangeM: 250})
	var macs []*DCF
	var ups []*upperRec
	for i := 0; i < 3; i++ {
		pos := geometry.Vec2{X: float64(i) * 200} // 0↔2 at 400 m: hidden
		radio := c.Attach(pos)
		up := &upperRec{}
		macs = append(macs, New(k, radio, Address(i), Config{}, rand.New(rand.NewSource(int64(i+1))), up))
		ups = append(ups, up)
	}
	const n = 10
	for i := 0; i < n; i++ {
		macs[0].Send(1, 100+i, 512)
		macs[2].Send(1, 200+i, 512)
	}
	k.RunUntil(20 * sim.Second)
	if len(ups[1].received) < n {
		t.Fatalf("hidden-terminal scenario delivered only %d frames", len(ups[1].received))
	}
	retries := macs[0].Stats().Retries + macs[2].Stats().Retries
	if retries == 0 {
		t.Fatal("expected retries under hidden-terminal collisions")
	}
}

func TestDuplicateFiltering(t *testing.T) {
	// Force an ACK loss by dropping the ACK through a one-way topology is
	// hard to stage; instead verify the dedup cache logic directly: same
	// (src, seq) with the retry flag set must be filtered.
	k, macs, ups := testNet(t, 2, 100)
	frame := &Frame{Kind: KindData, From: 0, To: 1, Seq: 7, Payload: "x"}
	macs[1].handleData(frame)
	retry := &Frame{Kind: KindData, From: 0, To: 1, Seq: 7, Retry: true, Payload: "x"}
	macs[1].handleData(retry)
	if len(ups[1].received) != 1 {
		t.Fatalf("duplicate not filtered: %v", ups[1].received)
	}
	if macs[1].Stats().Duplicates != 1 {
		t.Fatalf("Duplicates = %d", macs[1].Stats().Duplicates)
	}
	k.RunUntil(sim.Second) // drain scheduled ACKs
}

func TestNAVDefersThirdParty(t *testing.T) {
	// Station 2 overhears a unicast between 0 and 1 and must set its NAV.
	k, macs, _ := testNet(t, 3, 100)
	macs[0].Send(1, "data", 2000)
	k.RunUntil(sim.Second)
	if macs[2].Stats().NAVSettings == 0 {
		t.Fatal("third party never set its NAV")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.normalize()
	if c.SlotTime != 20*sim.Microsecond || c.SIFS != 10*sim.Microsecond {
		t.Fatalf("timing defaults wrong: %+v", c)
	}
	if c.DIFS != 50*sim.Microsecond {
		t.Fatalf("DIFS = %v, want 50 µs", c.DIFS)
	}
	if c.CWMin != 31 || c.CWMax != 1023 || c.RetryLimit != 7 {
		t.Fatalf("contention defaults wrong: %+v", c)
	}
	if c.DataRateBPS != 2e6 {
		t.Fatalf("data rate = %v, want 2 Mb/s (Table I)", c.DataRateBPS)
	}
}

func TestAirTimeComputation(t *testing.T) {
	k, macs, _ := testNet(t, 2, 100)
	_ = k
	d := macs[0]
	// 512+28 bytes at 2 Mb/s = 2160 µs + 192 µs preamble.
	want := 192*sim.Microsecond + sim.Time(float64((512+28)*8)/2e6*float64(sim.Second))
	if got := d.dataDuration(512); got != want {
		t.Fatalf("dataDuration = %v, want %v", got, want)
	}
	// ACK: 14 bytes at 1 Mb/s + preamble.
	wantAck := 192*sim.Microsecond + sim.Time(float64(14*8)/1e6*float64(sim.Second))
	if got := d.ackDuration(); got != wantAck {
		t.Fatalf("ackDuration = %v, want %v", got, wantAck)
	}
}

func TestByteCounters(t *testing.T) {
	k, macs, _ := testNet(t, 2, 100)
	macs[0].Send(1, "x", 512)
	k.RunUntil(sim.Second)
	if got := macs[0].Stats().BytesTx; got != 512+28 {
		t.Fatalf("BytesTx = %d, want payload+header", got)
	}
}

func TestBroadcastUnderLoadNoDeadlock(t *testing.T) {
	// All four stations broadcast simultaneously; DCF backoff must
	// serialize them without livelock.
	k, macs, ups := testNet(t, 4, 50)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			macs[i].Send(Broadcast, i*10+j, 100)
		}
	}
	k.RunUntil(5 * sim.Second)
	total := 0
	for _, up := range ups {
		total += len(up.received)
	}
	// 20 broadcasts × 3 receivers each = 60 if no collisions at all; the
	// shared backoff should deliver the large majority.
	if total < 40 {
		t.Fatalf("broadcast delivery too low: %d/60", total)
	}
}

// TestQueueLenIncludesInFlight is the regression test for backlog
// undercounting: the job being served (contending, transmitting or
// retrying) is part of the interface backlog, not just the waiting queue.
func TestQueueLenIncludesInFlight(t *testing.T) {
	// Station 1 is far out of range, so the unicast retries until the
	// limit — the frame stays in flight for a long, observable window.
	k, macs, _ := testNet(t, 2, 10000)
	if macs[0].QueueLen() != 0 {
		t.Fatalf("idle QueueLen = %d, want 0", macs[0].QueueLen())
	}
	macs[0].Send(1, "a", 512)
	macs[0].Send(1, "b", 512)
	if got := macs[0].QueueLen(); got != 2 {
		t.Fatalf("QueueLen with 1 in-flight + 1 queued = %d, want 2", got)
	}
	// One retry round in: the first frame is still the current job.
	k.RunUntil(5 * sim.Millisecond)
	if got := macs[0].QueueLen(); got == 0 {
		t.Fatal("QueueLen reads 0 while a frame is still retrying")
	}
	// After both frames exhaust their retries the backlog drains.
	k.RunUntil(5 * sim.Second)
	if got := macs[0].QueueLen(); got != 0 {
		t.Fatalf("QueueLen after retry exhaustion = %d, want 0", got)
	}
	if f := macs[0].Stats().Failures; f != 2 {
		t.Fatalf("failures = %d, want 2", f)
	}
}

// dropRec is upperRec plus the optional queue-drop observer.
type dropRec struct {
	upperRec
	queueDrops []any
}

func (u *dropRec) MACQueueDrop(to Address, payload any) {
	u.queueDrops = append(u.queueDrops, payload)
}

func TestQueueDropObserverNotified(t *testing.T) {
	k := sim.NewKernel()
	c := phy.NewChannel(k, phy.TwoRayGround{}, phy.Config{CaptureRatio: 10})
	up := &dropRec{}
	m := New(k, c.Attach(geometry.Vec2{}), 0, Config{QueueCap: 2}, rand.New(rand.NewSource(1)), up)
	for i := 0; i < 5; i++ {
		m.Send(Broadcast, i, 100)
	}
	// One in service, two queued, two dropped and observed.
	if got := m.Stats().QueueDrops; got != 2 {
		t.Fatalf("QueueDrops = %d, want 2", got)
	}
	if len(up.queueDrops) != 2 || up.queueDrops[0] != 3 || up.queueDrops[1] != 4 {
		t.Fatalf("observed drops = %v, want [3 4]", up.queueDrops)
	}
}

// TestDownRetiresInFlightSeq is the regression test for a post-crash
// sequence-number reuse hole: a non-graceful Down flushes the in-flight
// MSDU, but the receiver may already hold its sequence number in the dedup
// cache. If the first MSDU after recovery reused that number, a
// retransmission of it would be ACKed by the receiver yet silently
// filtered as a duplicate of the flushed frame — the packet would vanish
// with no drop event. Down must therefore retire the flushed job's seq.
func TestDownRetiresInFlightSeq(t *testing.T) {
	k, macs, ups := testNet(t, 2, 100)
	// First MSDU (seq 0) delivers normally.
	macs[0].Send(1, "pre", 512)
	k.RunUntil(10 * sim.Millisecond)
	if len(ups[1].received) != 1 {
		t.Fatalf("precondition: first frame not delivered: %v", ups[1].received)
	}
	// Second MSDU goes in flight; the receiver hears it (caching its seq in
	// the dedup filter) but the sender crashes before processing the ACK.
	macs[0].Send(1, "doomed", 512)
	for i := 0; macs[1].Stats().DataRx < 2; i++ {
		if i > 1000 {
			t.Fatal("second frame never reached the receiver")
		}
		k.RunUntil(k.Now() + 100*sim.Microsecond)
	}
	inflight := macs[0].seq // the sequence number the doomed frame aired with
	macs[0].Down()
	if macs[0].Stats().DownDrops != 1 {
		t.Fatalf("DownDrops = %d, want the in-flight job flushed", macs[0].Stats().DownDrops)
	}
	if macs[0].seq == inflight {
		t.Fatalf("Down left seq %d unretired; the next MSDU would reuse it", inflight)
	}
	// After recovery the next MSDU uses a fresh sequence number, so even a
	// retransmission of it passes the receiver's dedup filter.
	macs[0].Up()
	macs[0].Send(1, "fresh", 512)
	k.RunUntil(k.Now() + 20*sim.Millisecond)
	if n := len(ups[1].received); n != 3 || ups[1].received[2] != "fresh" {
		t.Fatalf("post-recovery frame not delivered: %v", ups[1].received)
	}
}

func TestEachQueuedVisitsCustody(t *testing.T) {
	k := sim.NewKernel()
	c := phy.NewChannel(k, phy.TwoRayGround{}, phy.Config{CaptureRatio: 10})
	m := New(k, c.Attach(geometry.Vec2{}), 0, Config{}, rand.New(rand.NewSource(1)), &upperRec{})
	for i := 0; i < 3; i++ {
		m.Send(Broadcast, i, 100)
	}
	var seen []any
	m.EachQueued(func(p any) { seen = append(seen, p) })
	// The in-flight job first, then the backlog in order.
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 1 || seen[2] != 2 {
		t.Fatalf("EachQueued = %v, want [0 1 2]", seen)
	}
	if m.QueueLen() != 3 {
		t.Fatalf("QueueLen = %d", m.QueueLen())
	}
}
