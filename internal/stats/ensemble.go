package stats

import (
	"math"

	"cavenet/internal/exp"
)

// Ensemble runs trials independent replications of an experiment and
// averages a scalar result — the Monte-Carlo machinery behind each point of
// the paper's fundamental diagram (Fig. 4: "each point ... is the ensemble
// average over 20 trials").
//
// Trials execute concurrently on the exp worker pool, one per core, and
// are reduced in trial order, so the result is bit-identical to a
// sequential run. run receives the trial index and must be safe for
// concurrent calls; determinism is the caller's job (fork a seeded RNG per
// trial and derive nothing from shared mutable state).
func Ensemble(trials int, run func(trial int) float64) (mean, stddev float64) {
	est := EnsembleCI(trials, run)
	return est.Mean, est.StdDev
}

// Estimate summarizes the replications of one experiment cell.
type Estimate struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stdDev"`
	// CI95 is the half-width of the 95% confidence interval for the mean
	// (Student-t, n-1 degrees of freedom); the interval is Mean ± CI95.
	CI95 float64 `json:"ci95"`
	N    int     `json:"n"`
}

// EstimateOf reduces a sample slice to an Estimate.
func EstimateOf(xs []float64) Estimate {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return Estimate{Mean: w.Mean(), StdDev: w.StdDev(), CI95: w.CI95(), N: w.N()}
}

// EnsembleCI is Ensemble with the full summary: mean, spread and the 95%
// confidence interval the paper's error bars call for. Same parallel
// execution and concurrency contract as Ensemble.
func EnsembleCI(trials int, run func(trial int) float64) Estimate {
	vals, _ := exp.Map(exp.Runner{}, trials, func(t int) (float64, error) {
		return run(t), nil
	})
	return EstimateOf(vals)
}

// EnsembleSeries averages a whole series across trials, executing the
// trials concurrently (same contract as Ensemble: run must be
// concurrency-safe and fully determined by the trial index). All trials
// must return series of the same length; a mismatch is an error expressed
// by panic since it is a harness bug, not a runtime condition.
func EnsembleSeries(trials int, run func(trial int) []float64) []float64 {
	series, _ := exp.Map(exp.Runner{}, trials, func(t int) ([]float64, error) {
		return run(t), nil
	})
	var acc []float64
	for _, s := range series {
		if acc == nil {
			acc = make([]float64, len(s))
		}
		if len(s) != len(acc) {
			panic("stats: EnsembleSeries length mismatch across trials")
		}
		for i, x := range s {
			acc[i] += x
		}
	}
	for i := range acc {
		acc[i] /= float64(trials)
	}
	return acc
}

// Histogram counts samples into equal-width bins spanning [lo, hi]. Samples
// outside the range are clamped into the edge bins (the distribution tails
// still show up rather than silently vanishing). NaN samples are counted
// separately and never binned: Go's NaN→int conversion is
// platform-defined, so before the guard a NaN landed in an arbitrary edge
// bin on some architectures.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
	// NaN counts rejected not-a-number samples.
	NaN int
}

// NewHistogram builds a histogram with the given number of bins; bins must
// be positive and hi > lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample. NaN is counted in h.NaN and otherwise ignored.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.NaN++
		return
	}
	bins := len(h.Counts)
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(bins))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.N++
}

// Fraction reports the share of finite samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}
