package stats

// Ensemble runs trials independent replications of an experiment and
// averages a scalar result — the Monte-Carlo machinery behind each point of
// the paper's fundamental diagram (Fig. 4: "each point ... is the ensemble
// average over 20 trials").
//
// run receives the trial index; determinism is the caller's job (fork a
// seeded RNG per trial).
func Ensemble(trials int, run func(trial int) float64) (mean, stddev float64) {
	var w Welford
	for t := 0; t < trials; t++ {
		w.Add(run(t))
	}
	return w.Mean(), w.StdDev()
}

// EnsembleSeries averages a whole series across trials. All trials must
// return series of the same length; shorter series are an error expressed
// by panic since it is a harness bug, not a runtime condition.
func EnsembleSeries(trials int, run func(trial int) []float64) []float64 {
	var acc []float64
	for t := 0; t < trials; t++ {
		s := run(t)
		if acc == nil {
			acc = make([]float64, len(s))
		}
		if len(s) != len(acc) {
			panic("stats: EnsembleSeries length mismatch across trials")
		}
		for i, x := range s {
			acc[i] += x
		}
	}
	for i := range acc {
		acc[i] /= float64(trials)
	}
	return acc
}

// Histogram counts samples into equal-width bins spanning [lo, hi]. Samples
// outside the range are clamped into the edge bins (the distribution tails
// still show up rather than silently vanishing).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram builds a histogram with the given number of bins; bins must
// be positive and hi > lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(bins))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.N++
}

// Fraction reports the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}
