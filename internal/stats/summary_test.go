package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 100
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(xs)-1)
		return math.Abs(w.Mean()-mean) < 1e-9 &&
			math.Abs(w.Variance()-naiveVar) < 1e-9*(1+naiveVar) &&
			w.N() == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty Welford should be all zeros")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Fatal("single-sample Welford: mean 5, var 0")
	}
}

func TestMeanVarianceHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if got := Variance(xs); math.Abs(got-5.0/3) > 1e-12 {
		t.Fatalf("Variance = %v, want 5/3", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("MinMax(nil) should be zeros")
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 3x - 2 recovered exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 2
	}
	slope, intercept := LinearFit(xs, ys)
	if math.Abs(slope-3) > 1e-12 || math.Abs(intercept+2) > 1e-12 {
		t.Fatalf("fit = %v, %v; want 3, -2", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	slope, intercept := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if slope != 0 || intercept != 2 {
		t.Fatalf("vertical data: got %v, %v; want 0, mean(y)=2", slope, intercept)
	}
	slope, intercept = LinearFit([]float64{1}, []float64{5})
	if slope != 0 || intercept != 5 {
		t.Fatalf("single point: got %v, %v", slope, intercept)
	}
}

func TestLinearFitMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	LinearFit([]float64{1, 2}, []float64{1})
}

func TestLinearFitNoisy(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	n := 1000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 0.5*xs[i] + 10 + rnd.NormFloat64()
	}
	slope, intercept := LinearFit(xs, ys)
	if math.Abs(slope-0.5) > 0.01 || math.Abs(intercept-10) > 2 {
		t.Fatalf("noisy fit = %v, %v", slope, intercept)
	}
}
