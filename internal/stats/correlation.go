package stats

import "math"

// Autocorrelation returns the normalized sample autocorrelation r(k) of the
// series for lags 0..maxLag (footnote 2 of the paper defines SRD/LRD in
// terms of the summability of r(k)). r(0) is always 1 for a non-constant
// series. A constant series returns all zeros beyond lag 0.
func Autocorrelation(series []float64, maxLag int) []float64 {
	n := len(series)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	out := make([]float64, maxLag+1)
	mean := Mean(series)
	var c0 float64
	for _, x := range series {
		d := x - mean
		c0 += d * d
	}
	if c0 == 0 {
		if len(out) > 0 {
			out[0] = 1
		}
		return out
	}
	for k := 0; k <= maxLag; k++ {
		var ck float64
		for i := 0; i+k < n; i++ {
			ck += (series[i] - mean) * (series[i+k] - mean)
		}
		out[k] = ck / c0
	}
	return out
}

// ACFSum returns the partial sum Σ_{k=1..maxLag} r(k) of the
// autocorrelation. For an SRD process the partial sums converge; steadily
// growing partial sums are the finite-sample signature of LRD.
func ACFSum(series []float64, maxLag int) float64 {
	acf := Autocorrelation(series, maxLag)
	sum := 0.0
	for k := 1; k < len(acf); k++ {
		sum += acf[k]
	}
	return sum
}

// HurstRS estimates the Hurst exponent by rescaled-range analysis: the
// series is cut into blocks of doubling sizes, R/S is averaged per size, and
// H is the slope of log(R/S) against log(size). H ≈ 0.5 for SRD processes;
// H → 1 signals LRD. Series shorter than 32 samples return 0.5.
func HurstRS(series []float64) float64 {
	n := len(series)
	if n < 32 {
		return 0.5
	}
	var logSize, logRS []float64
	for size := 8; size <= n/4; size *= 2 {
		var acc Welford
		for start := 0; start+size <= n; start += size {
			rs := rescaledRange(series[start : start+size])
			if rs > 0 {
				acc.Add(rs)
			}
		}
		if acc.N() == 0 {
			continue
		}
		logSize = append(logSize, math.Log(float64(size)))
		logRS = append(logRS, math.Log(acc.Mean()))
	}
	if len(logSize) < 2 {
		return 0.5
	}
	h, _ := LinearFit(logSize, logRS)
	return h
}

func rescaledRange(block []float64) float64 {
	mean := Mean(block)
	var cum, lo, hi, ss float64
	for _, x := range block {
		d := x - mean
		cum += d
		if cum < lo {
			lo = cum
		}
		if cum > hi {
			hi = cum
		}
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(block)))
	if std == 0 {
		return 0
	}
	return (hi - lo) / std
}
