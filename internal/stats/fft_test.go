package stats

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTConstant(t *testing.T) {
	// FFT of a constant is an impulse at DC of magnitude n.
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = 2
	}
	FFT(x)
	if cmplx.Abs(x[0]-complex(float64(2*n), 0)) > 1e-9 {
		t.Fatalf("DC bin = %v, want %d", x[0], 2*n)
	}
	for i := 1; i < n; i++ {
		if cmplx.Abs(x[i]) > 1e-9 {
			t.Fatalf("bin %d = %v, want 0", i, x[i])
		}
	}
}

func TestFFTSinusoidPeak(t *testing.T) {
	n := 64
	k := 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*float64(k*i)/float64(n)), 0)
	}
	FFT(x)
	// Energy concentrates in bins k and n-k.
	for i := 0; i < n; i++ {
		mag := cmplx.Abs(x[i])
		if i == k || i == n-k {
			if mag < float64(n)/2-1e-9 {
				t.Fatalf("bin %d magnitude %v too small", i, mag)
			}
		} else if mag > 1e-9 {
			t.Fatalf("leakage at bin %d: %v", i, mag)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	n := 128
	x := make([]complex128, n)
	timeEnergy := 0.0
	for i := range x {
		v := rnd.NormFloat64()
		x[i] = complex(v, 0)
		timeEnergy += v * v
	}
	FFT(x)
	freqEnergy := 0.0
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := 1 << (1 + szRaw%8) // 2..256
		rnd := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rnd.NormFloat64(), rnd.NormFloat64())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	n := 32
	rnd := rand.New(rand.NewSource(2))
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := 0; i < n; i++ {
		a[i] = complex(rnd.NormFloat64(), 0)
		b[i] = complex(rnd.NormFloat64(), 0)
		sum[i] = 2*a[i] + 3*b[i]
	}
	FFT(a)
	FFT(b)
	FFT(sum)
	for i := 0; i < n; i++ {
		want := 2*a[i] + 3*b[i]
		if cmplx.Abs(sum[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestFFTNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT of non-power-of-two length must panic")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestFFTEmptyAndOne(t *testing.T) {
	FFT(nil) // must not panic
	x := []complex128{42}
	FFT(x)
	if x[0] != 42 {
		t.Fatal("length-1 FFT is identity")
	}
	IFFT(nil)
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
