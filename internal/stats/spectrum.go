package stats

import "math"

// Window selects the taper applied before computing a periodogram.
type Window int

const (
	// Rectangular applies no taper.
	Rectangular Window = iota + 1
	// Hann applies the raised-cosine taper, trading main-lobe width for
	// sidelobe suppression; preferred when hunting for 1/f divergence.
	Hann
)

func windowCoeffs(w Window, n int) []float64 {
	c := make([]float64, n)
	switch w {
	case Hann:
		if n == 1 {
			c[0] = 1
			return c
		}
		for i := range c {
			c[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		}
	default:
		for i := range c {
			c[i] = 1
		}
	}
	return c
}

// Spectrum is a one-sided power spectral density estimate.
type Spectrum struct {
	// Freq holds the frequency of each bin in cycles per sample, strictly
	// positive and increasing (the zero-frequency bin is dropped: the
	// paper's Fig. 7 plots log f, and the DC bin only encodes the mean).
	Freq []float64
	// Power holds the PSD estimate for each bin.
	Power []float64
}

// Periodogram estimates the PSD of series with the given window. The series
// mean is removed first; the series is zero-padded to a power of two.
func Periodogram(series []float64, w Window) Spectrum {
	n := len(series)
	if n < 2 {
		return Spectrum{}
	}
	mean := Mean(series)
	coeffs := windowCoeffs(w, n)
	wss := 0.0
	for _, c := range coeffs {
		wss += c * c
	}
	padded := NextPow2(n)
	buf := make([]complex128, padded)
	for i, x := range series {
		buf[i] = complex((x-mean)*coeffs[i], 0)
	}
	FFT(buf)
	bins := padded / 2
	out := Spectrum{
		Freq:  make([]float64, bins),
		Power: make([]float64, bins),
	}
	norm := 1 / wss
	for k := 1; k <= bins; k++ {
		re := real(buf[k])
		im := imag(buf[k])
		out.Freq[k-1] = float64(k) / float64(padded)
		out.Power[k-1] = (re*re + im*im) * norm
	}
	return out
}

// WelchPSD averages periodograms over 50%-overlapping segments of the given
// length (rounded up to a power of two), reducing estimator variance at the
// cost of low-frequency resolution.
func WelchPSD(series []float64, segment int, w Window) Spectrum {
	if segment <= 1 || segment > len(series) {
		return Periodogram(series, w)
	}
	segment = NextPow2(segment)
	if segment > len(series) {
		segment >>= 1
	}
	step := segment / 2
	var acc Spectrum
	count := 0
	for start := 0; start+segment <= len(series); start += step {
		p := Periodogram(series[start:start+segment], w)
		if acc.Power == nil {
			acc = Spectrum{Freq: p.Freq, Power: make([]float64, len(p.Power))}
		}
		for i := range p.Power {
			acc.Power[i] += p.Power[i]
		}
		count++
	}
	if count == 0 {
		return Periodogram(series, w)
	}
	for i := range acc.Power {
		acc.Power[i] /= float64(count)
	}
	return acc
}

// GPHSlope runs the Geweke–Porter-Hudak log-periodogram regression over the
// lowest fraction of frequency bins and returns the slope of
// log P(f) against log f. A slope near 0 indicates short-range dependence
// (the paper's Fig. 7-a); a clearly negative slope indicates 1/f-like
// long-range dependence (Fig. 7-b). fraction is clamped to (0, 1].
func GPHSlope(s Spectrum, fraction float64) float64 {
	if len(s.Freq) == 0 {
		return 0
	}
	if fraction <= 0 || fraction > 1 {
		fraction = 0.1
	}
	m := int(float64(len(s.Freq)) * fraction)
	if m < 4 {
		m = min(4, len(s.Freq))
	}
	logf := make([]float64, 0, m)
	logp := make([]float64, 0, m)
	for i := 0; i < m; i++ {
		if s.Power[i] <= 0 {
			continue
		}
		logf = append(logf, math.Log(s.Freq[i]))
		logp = append(logp, math.Log(s.Power[i]))
	}
	slope, _ := LinearFit(logf, logp)
	return slope
}
