package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func whiteNoise(n int, seed int64) []float64 {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rnd.NormFloat64()
	}
	return out
}

func TestAutocorrelationLagZeroIsOne(t *testing.T) {
	acf := Autocorrelation(whiteNoise(500, 1), 10)
	if math.Abs(acf[0]-1) > 1e-12 {
		t.Fatalf("r(0) = %v, want 1", acf[0])
	}
}

func TestAutocorrelationBounded(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		acf := Autocorrelation(xs, len(xs)-1)
		for _, r := range acf {
			if r > 1+1e-9 || r < -1-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAutocorrelationWhiteNoiseDecays(t *testing.T) {
	acf := Autocorrelation(whiteNoise(5000, 2), 20)
	for k := 1; k <= 20; k++ {
		if math.Abs(acf[k]) > 0.1 {
			t.Fatalf("white noise r(%d) = %v, want ≈0", k, acf[k])
		}
	}
}

func TestAutocorrelationPeriodicSignal(t *testing.T) {
	// Period-4 signal: r(4) should be strongly positive, r(2) negative.
	n := 400
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 4)
	}
	acf := Autocorrelation(xs, 8)
	if acf[4] < 0.8 {
		t.Fatalf("r(4) = %v, want near 1", acf[4])
	}
	if acf[2] > -0.8 {
		t.Fatalf("r(2) = %v, want near -1", acf[2])
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	xs := []float64{3, 3, 3, 3, 3}
	acf := Autocorrelation(xs, 3)
	if acf[0] != 1 {
		t.Fatalf("constant series r(0) = %v, want 1 by convention", acf[0])
	}
	for k := 1; k < len(acf); k++ {
		if acf[k] != 0 {
			t.Fatalf("constant series r(%d) = %v", k, acf[k])
		}
	}
}

func TestAutocorrelationLagClamping(t *testing.T) {
	acf := Autocorrelation([]float64{1, 2, 3}, 99)
	if len(acf) != 3 {
		t.Fatalf("lag should clamp to n-1; got len %d", len(acf))
	}
	if Autocorrelation(nil, 5) != nil {
		t.Fatal("empty series should give nil")
	}
}

func TestACFSumSRDSmall(t *testing.T) {
	sum := ACFSum(whiteNoise(5000, 3), 100)
	if math.Abs(sum) > 1.5 {
		t.Fatalf("white-noise ACF partial sum = %v, want small", sum)
	}
}

func TestHurstWhiteNoiseHalf(t *testing.T) {
	h := HurstRS(whiteNoise(8192, 4))
	if h < 0.35 || h > 0.68 {
		t.Fatalf("white-noise Hurst = %v, want ≈0.5", h)
	}
}

func TestHurstRandomWalkHigh(t *testing.T) {
	noise := whiteNoise(8192, 5)
	walk := make([]float64, len(noise))
	acc := 0.0
	for i, x := range noise {
		acc += x
		walk[i] = acc
	}
	h := HurstRS(walk)
	if h < 0.8 {
		t.Fatalf("random-walk Hurst = %v, want near 1", h)
	}
}

func TestHurstShortSeriesDefault(t *testing.T) {
	if h := HurstRS(make([]float64, 10)); h != 0.5 {
		t.Fatalf("short series Hurst = %v, want 0.5 default", h)
	}
}
