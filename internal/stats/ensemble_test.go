package stats

import (
	"math"
	"testing"
)

func TestEnsembleMeanStd(t *testing.T) {
	mean, sd := Ensemble(4, func(trial int) float64 { return float64(trial) })
	if mean != 1.5 {
		t.Fatalf("mean = %v", mean)
	}
	want := math.Sqrt(5.0 / 3)
	if math.Abs(sd-want) > 1e-12 {
		t.Fatalf("sd = %v, want %v", sd, want)
	}
}

func TestEnsembleSeriesAverages(t *testing.T) {
	got := EnsembleSeries(3, func(trial int) []float64 {
		return []float64{float64(trial), float64(trial * 2)}
	})
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("series = %v, want [1 2]", got)
	}
}

func TestEnsembleSeriesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	EnsembleSeries(2, func(trial int) []float64 {
		return make([]float64, trial+1)
	})
}

func TestEnsembleCIMatchesSequentialWelford(t *testing.T) {
	// The parallel ensemble must reduce in trial order: bit-identical to a
	// hand-rolled sequential Welford pass over the same trial values.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = math.Sin(float64(i)) * float64(i%7)
	}
	est := EnsembleCI(len(vals), func(trial int) float64 { return vals[trial] })
	var w Welford
	for _, v := range vals {
		w.Add(v)
	}
	if est.Mean != w.Mean() || est.StdDev != w.StdDev() || est.CI95 != w.CI95() || est.N != w.N() {
		t.Fatalf("parallel estimate %+v differs from sequential reduction", est)
	}
}

func TestWelfordCI95(t *testing.T) {
	var w Welford
	for _, x := range []float64{1, 2, 3, 4, 5} {
		w.Add(x)
	}
	// sd = sqrt(2.5), n = 5, t(4) = 2.776.
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if got := w.CI95(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
	var one Welford
	one.Add(3)
	if one.CI95() != 0 {
		t.Fatal("CI95 of a single sample must be 0")
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	// Regression: NaN→int conversion is platform-defined in Go, so a NaN
	// sample could land in an arbitrary bin. It must be counted aside.
	h := NewHistogram(0, 1, 4)
	h.Add(math.NaN())
	h.Add(0.5)
	h.Add(math.NaN())
	if h.N != 1 || h.NaN != 2 {
		t.Fatalf("N = %d, NaN = %d, want 1 and 2", h.N, h.NaN)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 1 {
		t.Fatalf("NaN leaked into a bin: %v", h.Counts)
	}
	if h.Fraction(2) != 1 { // 0.5 lands in [0.5, 0.75)
		t.Fatalf("fractions skewed by NaN: %v", h.Counts)
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9, 9.9} {
		h.Add(x)
	}
	if h.N != 7 {
		t.Fatalf("N = %d", h.N)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 7 {
		t.Fatalf("bin total = %d", total)
	}
	if h.Counts[0] != 2 { // 0.5 and 1.0 fall in [0,2)
		t.Fatalf("bin 0 = %d, want 2", h.Counts[0])
	}
	if got := h.Fraction(0); math.Abs(got-2.0/7) > 1e-12 {
		t.Fatalf("Fraction(0) = %v", got)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-100)
	h.Add(+100)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("outliers not clamped to edge bins: %v", h.Counts)
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid histogram must panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Fatal("fraction of empty histogram should be 0")
	}
}
