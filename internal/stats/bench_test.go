package stats

import (
	"math/rand"
	"testing"
)

func benchSeries(n int) []float64 {
	rnd := rand.New(rand.NewSource(1))
	out := make([]float64, n)
	for i := range out {
		out[i] = rnd.NormFloat64()
	}
	return out
}

func BenchmarkFFT1024(b *testing.B) {
	src := make([]complex128, 1024)
	for i := range src {
		src[i] = complex(float64(i%17), 0)
	}
	buf := make([]complex128, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		FFT(buf)
	}
}

func BenchmarkPeriodogram8192(b *testing.B) {
	series := benchSeries(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Periodogram(series, Hann)
	}
}

func BenchmarkAutocorrelation(b *testing.B) {
	series := benchSeries(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Autocorrelation(series, 100)
	}
}

func BenchmarkHurstRS(b *testing.B) {
	series := benchSeries(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HurstRS(series)
	}
}

func BenchmarkTransientTime(b *testing.B) {
	series := benchSeries(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TransientTime(series, 3)
	}
}
