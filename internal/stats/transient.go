package stats

import "math"

// TransientTime estimates the transient duration τ of a series (§IV-B of
// the paper): the number of initial samples to discard before the process
// can be treated as stationary.
//
// The estimator smooths the series with a moving average, derives a
// tolerance band of tol standard deviations around the steady-state mean
// (both estimated from the final half), and reports the start of the first
// window-length run that stays inside the band. A trend guard first checks
// that the last two quarters agree; a series that is still drifting returns
// len(series) — the signal that the simulation was too short, exactly the
// diagnostic the paper wants before protocol simulations are trusted.
func TransientTime(series []float64, tol float64) int {
	n := len(series)
	if n == 0 {
		return 0
	}
	if tol <= 0 {
		tol = 3
	}

	// Trend guard: quarters 3 and 4 must agree within the noise of their
	// means, otherwise the series has not settled at all.
	if n >= 8 {
		q3 := series[n/2 : 3*n/4]
		q4 := series[3*n/4:]
		sd := math.Max(math.Sqrt(Variance(q3)), math.Sqrt(Variance(q4)))
		noise := tol * sd / math.Sqrt(float64(len(q4)))
		if noise == 0 {
			noise = 1e-12
		}
		if math.Abs(Mean(q4)-Mean(q3)) > noise {
			return n
		}
	}

	w := n / 50
	if w < 1 {
		w = 1
	}
	smoothed := movingAverage(series, w)
	tail := smoothed[len(smoothed)/2:]
	mean := Mean(tail)
	band := tol * math.Sqrt(Variance(tail))
	if band == 0 {
		band = 1e-12
	}

	// First run of >= w consecutive in-band smoothed samples.
	run := 0
	for i, v := range smoothed {
		if math.Abs(v-mean) <= band {
			run++
			if run >= w {
				return i - run + 1
			}
		} else {
			run = 0
		}
	}
	return n
}

// movingAverage returns the trailing moving average of the series with the
// given window (window 1 returns a copy).
func movingAverage(series []float64, window int) []float64 {
	n := len(series)
	out := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += series[i]
		if i >= window {
			sum -= series[i-window]
		}
		size := window
		if i+1 < window {
			size = i + 1
		}
		out[i] = sum / float64(size)
	}
	return out
}

// MSER5 implements the MSER-5 truncation heuristic: the series is averaged
// into batches of 5, and the truncation point minimizes the standard error
// of the remaining batch means. It is a standard alternative transient
// detector, included so the two estimators can cross-check each other. The
// returned index is in original-sample units.
func MSER5(series []float64) int {
	const batch = 5
	nb := len(series) / batch
	if nb < 4 {
		return 0
	}
	means := make([]float64, nb)
	for i := 0; i < nb; i++ {
		means[i] = Mean(series[i*batch : (i+1)*batch])
	}
	best, bestAt := math.Inf(1), 0
	// Standard MSER rule: do not truncate more than half the series.
	for d := 0; d < nb/2; d++ {
		rest := means[d:]
		v := Variance(rest)
		stat := v / float64(len(rest))
		if stat < best {
			best = stat
			bestAt = d
		}
	}
	return bestAt * batch
}
