// Package stats is CAVENET's statistics toolbox. It provides the estimators
// the paper's Behavioural Analyzer relies on: running moments, the
// autocorrelation function used to define SRD vs. LRD (footnote 2), the
// periodogram of Fig. 7, Hurst-exponent estimators, transient-time
// detection (§IV-B), and a Monte-Carlo ensemble runner (Fig. 4).
package stats

import "math"

// Welford accumulates mean and variance in one pass with the numerically
// stable Welford recurrence.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add feeds one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N reports the sample count.
func (w *Welford) N() int { return w.n }

// Mean reports the sample mean; zero before any sample.
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the unbiased sample variance; zero with fewer than two
// samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev reports the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// tCrit95 holds two-sided 95% Student-t critical values for 1..30 degrees
// of freedom; beyond that the normal 1.96 is within half a percent.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 reports the half-width of the 95% confidence interval for the mean
// (Student-t with n-1 degrees of freedom — at the paper's 20 trials the
// normal approximation would understate the interval by ~7%). Zero with
// fewer than two samples.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	df := w.n - 1
	t := 1.96
	if df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	return t * w.StdDev() / math.Sqrt(float64(w.n))
}

// Mean returns the arithmetic mean of xs; zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Variance()
}

// MinMax returns the extrema of xs; (0, 0) for an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It is used for the GPH log-periodogram regression and the R/S Hurst
// estimator. Fewer than two points yield (0, mean(y)).
func LinearFit(x, y []float64) (slope, intercept float64) {
	n := len(x)
	if n != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	if n < 2 {
		return 0, Mean(y)
	}
	mx, my := Mean(x), Mean(y)
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		num += dx * (y[i] - my)
		den += dx * dx
	}
	if den == 0 {
		return 0, my
	}
	slope = num / den
	return slope, my - slope*mx
}
