// Package stats is CAVENET's statistics toolbox. It provides the estimators
// the paper's Behavioural Analyzer relies on: running moments, the
// autocorrelation function used to define SRD vs. LRD (footnote 2), the
// periodogram of Fig. 7, Hurst-exponent estimators, transient-time
// detection (§IV-B), and a Monte-Carlo ensemble runner (Fig. 4).
package stats

import "math"

// Welford accumulates mean and variance in one pass with the numerically
// stable Welford recurrence.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add feeds one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N reports the sample count.
func (w *Welford) N() int { return w.n }

// Mean reports the sample mean; zero before any sample.
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the unbiased sample variance; zero with fewer than two
// samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev reports the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Mean returns the arithmetic mean of xs; zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Variance()
}

// MinMax returns the extrema of xs; (0, 0) for an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It is used for the GPH log-periodogram regression and the R/S Hurst
// estimator. Fewer than two points yield (0, mean(y)).
func LinearFit(x, y []float64) (slope, intercept float64) {
	n := len(x)
	if n != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	if n < 2 {
		return 0, Mean(y)
	}
	mx, my := Mean(x), Mean(y)
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		num += dx * (y[i] - my)
		den += dx * dx
	}
	if den == 0 {
		return 0, my
	}
	slope = num / den
	return slope, my - slope*mx
}
