package stats

import (
	"math"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. The length of x must be a power of two; FFT panics
// otherwise (callers pad with NextPow2).
func FFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("stats: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterfly passes.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// IFFT computes the inverse FFT in place (power-of-two length required).
func IFFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	FFT(x)
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
