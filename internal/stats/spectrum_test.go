package stats

import (
	"math"
	"math/rand"
	"testing"
)

func sinusoid(n int, freq float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2 * math.Pi * freq * float64(i))
	}
	return out
}

func TestPeriodogramPeakLocation(t *testing.T) {
	// A pure tone at f=0.125 cycles/sample must peak at that bin.
	series := sinusoid(256, 0.125)
	for _, w := range []Window{Rectangular, Hann} {
		spec := Periodogram(series, w)
		best := 0
		for i := range spec.Power {
			if spec.Power[i] > spec.Power[best] {
				best = i
			}
		}
		if math.Abs(spec.Freq[best]-0.125) > 0.01 {
			t.Fatalf("window %v: peak at f=%v, want 0.125", w, spec.Freq[best])
		}
	}
}

func TestPeriodogramMeanRemoved(t *testing.T) {
	// A constant series has no power anywhere (DC is removed).
	series := make([]float64, 128)
	for i := range series {
		series[i] = 7.5
	}
	spec := Periodogram(series, Rectangular)
	for i, p := range spec.Power {
		if p > 1e-18 {
			t.Fatalf("bin %d power %v for constant input", i, p)
		}
	}
}

func TestPeriodogramShortSeries(t *testing.T) {
	if s := Periodogram(nil, Hann); len(s.Freq) != 0 {
		t.Fatal("empty series should give empty spectrum")
	}
	if s := Periodogram([]float64{1}, Hann); len(s.Freq) != 0 {
		t.Fatal("length-1 series should give empty spectrum")
	}
}

func TestPeriodogramFrequenciesAscendPositive(t *testing.T) {
	spec := Periodogram(sinusoid(100, 0.3), Hann)
	prev := 0.0
	for _, f := range spec.Freq {
		if f <= prev {
			t.Fatalf("frequencies not strictly increasing: %v after %v", f, prev)
		}
		prev = f
	}
	if spec.Freq[len(spec.Freq)-1] > 0.5+1e-12 {
		t.Fatal("frequencies exceed Nyquist")
	}
}

func TestWelchReducesVariance(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	series := make([]float64, 2048)
	for i := range series {
		series[i] = rnd.NormFloat64()
	}
	raw := Periodogram(series, Rectangular)
	welch := WelchPSD(series, 256, Rectangular)
	varOf := func(s Spectrum) float64 { return Variance(s.Power) }
	if varOf(welch) >= varOf(raw) {
		t.Fatalf("Welch variance %v should be below raw periodogram %v",
			varOf(welch), varOf(raw))
	}
}

func TestWelchDegenerateFallsBack(t *testing.T) {
	series := sinusoid(64, 0.25)
	a := WelchPSD(series, 0, Hann)
	b := Periodogram(series, Hann)
	if len(a.Power) != len(b.Power) {
		t.Fatal("degenerate Welch should fall back to plain periodogram")
	}
}

func TestGPHSlopeWhiteNoiseFlat(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	series := make([]float64, 4096)
	for i := range series {
		series[i] = rnd.NormFloat64()
	}
	slope := GPHSlope(Periodogram(series, Hann), 0.1)
	if math.Abs(slope) > 0.6 {
		t.Fatalf("white-noise GPH slope = %v, want ≈0", slope)
	}
}

func TestGPHSlopeLRDNegative(t *testing.T) {
	// A 1/f-like series via aggregated random walks resets: cumulative sum
	// of white noise has slope ≈ -2, firmly negative.
	rnd := rand.New(rand.NewSource(5))
	series := make([]float64, 4096)
	acc := 0.0
	for i := range series {
		acc += rnd.NormFloat64()
		series[i] = acc
	}
	slope := GPHSlope(Periodogram(series, Hann), 0.1)
	if slope > -1 {
		t.Fatalf("random-walk GPH slope = %v, want strongly negative", slope)
	}
}

func TestGPHSlopeEmptySpectrum(t *testing.T) {
	if got := GPHSlope(Spectrum{}, 0.1); got != 0 {
		t.Fatalf("empty spectrum slope = %v", got)
	}
}

func TestGPHSlopeBadFractionClamped(t *testing.T) {
	spec := Periodogram(sinusoid(128, 0.1), Hann)
	if got, gotDefault := GPHSlope(spec, -1), GPHSlope(spec, 0.1); got != gotDefault {
		t.Fatalf("invalid fraction should clamp to default: %v vs %v", got, gotDefault)
	}
}
