package stats

import (
	"math"
	"math/rand"
	"testing"
)

// decayingSeries ramps from 0 to level over ramp steps, then fluctuates
// around level with the given noise.
func decayingSeries(n, ramp int, level, noise float64, seed int64) []float64 {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		base := level
		if i < ramp {
			base = level * float64(i) / float64(ramp)
		}
		out[i] = base + rnd.NormFloat64()*noise
	}
	return out
}

func TestTransientTimeDetectsRamp(t *testing.T) {
	series := decayingSeries(2000, 400, 5, 0.05, 1)
	tau := TransientTime(series, 3)
	if tau < 200 || tau > 450 {
		t.Fatalf("tau = %d, want ≈400 (ramp end)", tau)
	}
}

func TestTransientTimeStationaryZero(t *testing.T) {
	series := decayingSeries(1000, 0, 5, 0.05, 2)
	tau := TransientTime(series, 4)
	if tau > 50 {
		t.Fatalf("tau = %d for stationary series, want ≈0", tau)
	}
}

func TestTransientTimeNeverSettles(t *testing.T) {
	// Monotonically growing series: last sample is always outside the band
	// of the tail mean.
	series := make([]float64, 500)
	for i := range series {
		series[i] = float64(i) * float64(i)
	}
	if tau := TransientTime(series, 1); tau != len(series) {
		t.Fatalf("tau = %d for non-settling series, want n", tau)
	}
}

func TestTransientTimeDeterministicExact(t *testing.T) {
	// Deterministic convergence: the first sample at the steady-state value
	// is index 5, so 5 samples belong to the transient.
	series := []float64{0, 1, 2, 3, 4, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5}
	tau := TransientTime(series, 3)
	if tau != 5 {
		t.Fatalf("tau = %d, want 5", tau)
	}
}

func TestTransientTimeEdgeCases(t *testing.T) {
	if TransientTime(nil, 3) != 0 {
		t.Fatal("empty series tau should be 0")
	}
	if TransientTime([]float64{1}, 3) != 0 {
		t.Fatal("singleton stationary series tau should be 0")
	}
	// Non-positive tolerance falls back to default rather than panicking.
	series := decayingSeries(500, 100, 2, 0.01, 3)
	if tau := TransientTime(series, 0); tau == 0 || tau > 150 {
		t.Fatalf("default-tolerance tau = %d", tau)
	}
}

func TestMSER5DetectsRamp(t *testing.T) {
	series := decayingSeries(2000, 400, 5, 0.05, 4)
	trunc := MSER5(series)
	if trunc < 150 || trunc > 600 {
		t.Fatalf("MSER-5 truncation = %d, want near 400", trunc)
	}
}

func TestMSER5Stationary(t *testing.T) {
	series := decayingSeries(1000, 0, 5, 0.05, 5)
	if trunc := MSER5(series); trunc > 300 {
		t.Fatalf("MSER-5 on stationary series = %d, want small", trunc)
	}
}

func TestMSER5Short(t *testing.T) {
	if MSER5(make([]float64, 10)) != 0 {
		t.Fatal("short series should truncate nothing")
	}
}

func TestDetectorsAgreeOnCleanRamp(t *testing.T) {
	series := decayingSeries(3000, 600, 10, 0.02, 6)
	tau := TransientTime(series, 3)
	mser := MSER5(series)
	if math.Abs(float64(tau-mser)) > 300 {
		t.Fatalf("detectors disagree wildly: tau=%d mser=%d", tau, mser)
	}
}
