// Package fault makes failures a declarative, seeded part of a scenario:
// a Plan is an ordered list of node crash/recovery and link-impairment
// events, derived deterministically from a seed (rng.Fork per node, so a
// sweep's plans are bit-identical for any worker count) and executed by
// kernel-scheduled actuators inside a netsim.World.
//
// The failure semantics are layered through the existing stack rather than
// short-circuited around it: a NodeDown detaches the radio from the
// spatial grid and the PHY (neighbors simply stop hearing it), the MAC
// flushes its interface queue upward as "node:down" drops so the
// packet-conservation ledger can account for every packet the dead node
// held, and routers of surviving nodes discover the loss the same way
// they discover mobility — unicasts fail, HELLOs stop. A fault-free Plan
// is a strict no-op: Apply touches nothing, so runs stay byte-identical
// to the plain path (the empty-plan differential tests pin this).
package fault

import (
	"fmt"
	"sort"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// Kind enumerates the fault event types.
type Kind uint8

// Fault event kinds. The numeric order is also the tie-break order for
// events sharing a timestamp, so a zero-length down interval still executes
// Down before Up.
const (
	// NodeDown takes a node's radio off the air: grid detach, MAC queue
	// flush ("node:down" drops), router stop. Graceful keeps the router's
	// state for recovery; a crash loses it (and drops the packets parked in
	// its discovery buffers).
	NodeDown Kind = iota + 1
	// NodeUp re-inserts the radio at the node's current position and
	// restarts the stack (a fresh router instance after a crash).
	NodeUp
	// ImpairOn installs per-pair loss/attenuation on link (A, B) in the
	// channel, applied after the grid cull so culling semantics are
	// preserved (attenuation only ever reduces power).
	ImpairOn
	// ImpairOff removes the pair's impairment.
	ImpairOff
)

func (k Kind) String() string {
	switch k {
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	case ImpairOn:
		return "impair-on"
	case ImpairOff:
		return "impair-off"
	}
	return fmt.Sprintf("fault.Kind(%d)", uint8(k))
}

// Event is one scheduled fault.
type Event struct {
	// At is the absolute simulation time the fault actuates.
	At sim.Time
	// Kind selects the actuator.
	Kind Kind
	// Node is the NodeDown/NodeUp target.
	Node int
	// Graceful marks a NodeDown as a shutdown (router state survives to
	// recovery) instead of a crash (state loss).
	Graceful bool
	// A and B are the ImpairOn/ImpairOff link endpoints (unordered pair).
	A, B int
	// Loss is the ImpairOn per-reception erasure probability in [0, 1].
	Loss float64
	// AttenDB is the ImpairOn extra path attenuation in dB (>= 0).
	AttenDB float64
}

// Plan is an ordered fault schedule. The zero value is the empty plan,
// which Apply treats as "no faults": it installs nothing and perturbs
// nothing.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules no events.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// eventLess is the canonical plan order: time, then kind, then identity.
// Build sorts with it and Validate requires it, so two plans built from the
// same spec compare equal element-wise and actuate identically.
func eventLess(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// pairKey normalizes an unordered link pair.
func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Validate checks the plan against a world of the given node count: events
// sorted in canonical order, node and link indices in range, Down/Up
// strictly alternating per node, ImpairOn/ImpairOff strictly alternating
// per pair, loss probabilities in [0, 1] and attenuations non-negative.
func (p Plan) Validate(nodes int) error {
	down := make(map[int]bool)
	impaired := make(map[[2]int]bool)
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("fault: event %d (%s) at negative time %v", i, e.Kind, e.At)
		}
		if i > 0 && eventLess(e, p.Events[i-1]) {
			return fmt.Errorf("fault: event %d (%s at %v) out of order", i, e.Kind, e.At)
		}
		switch e.Kind {
		case NodeDown, NodeUp:
			if e.Node < 0 || e.Node >= nodes {
				return fmt.Errorf("fault: event %d targets node %d of %d", i, e.Node, nodes)
			}
			if e.Kind == NodeDown {
				if down[e.Node] {
					return fmt.Errorf("fault: event %d downs node %d while already down", i, e.Node)
				}
				down[e.Node] = true
			} else {
				if !down[e.Node] {
					return fmt.Errorf("fault: event %d brings node %d up while already up", i, e.Node)
				}
				down[e.Node] = false
			}
		case ImpairOn, ImpairOff:
			if e.A < 0 || e.A >= nodes || e.B < 0 || e.B >= nodes {
				return fmt.Errorf("fault: event %d impairs pair (%d,%d) of %d nodes", i, e.A, e.B, nodes)
			}
			if e.A == e.B {
				return fmt.Errorf("fault: event %d impairs self-link %d", i, e.A)
			}
			k := pairKey(e.A, e.B)
			if e.Kind == ImpairOn {
				if impaired[k] {
					return fmt.Errorf("fault: event %d impairs pair (%d,%d) while already impaired", i, e.A, e.B)
				}
				if e.Loss < 0 || e.Loss > 1 {
					return fmt.Errorf("fault: event %d loss %v outside [0,1]", i, e.Loss)
				}
				if e.AttenDB < 0 {
					return fmt.Errorf("fault: event %d negative attenuation %v dB", i, e.AttenDB)
				}
				impaired[k] = true
			} else {
				if !impaired[k] {
					return fmt.Errorf("fault: event %d clears unimpaired pair (%d,%d)", i, e.A, e.B)
				}
				impaired[k] = false
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, uint8(e.Kind))
		}
	}
	return nil
}

// hasImpair reports whether the plan carries any link impairment.
func (p Plan) hasImpair() bool {
	for _, e := range p.Events {
		if e.Kind == ImpairOn {
			return true
		}
	}
	return false
}

// Window is one half-open fault interval [From, To).
type Window struct {
	From, To sim.Time
}

// Windows merges every fault interval of the plan — node downtimes and
// link impairments, open intervals closed at horizon — into a sorted,
// disjoint list. The resilience meter classifies traffic by membership.
func (p Plan) Windows(horizon sim.Time) []Window {
	raw := p.intervals(horizon)
	sort.Slice(raw, func(i, j int) bool { return raw[i].From < raw[j].From })
	var out []Window
	for _, w := range raw {
		if w.To <= w.From {
			continue
		}
		if n := len(out); n > 0 && w.From <= out[n-1].To {
			if w.To > out[n-1].To {
				out[n-1].To = w.To
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

// intervals lists every raw fault interval, unmerged and clipped to
// [0, horizon]. Residual open intervals (faults still active at the
// horizon) are appended in sorted key order — never in map-range order —
// so the list is identical on every call; a map-ordered walk here once
// made DowntimeNodeSec and the merged Windows differ between replays of
// the same plan (float summation order, unstable merge ties).
func (p Plan) intervals(horizon sim.Time) []Window {
	var out []Window
	downAt := make(map[int]sim.Time)
	impairAt := make(map[[2]int]sim.Time)
	for _, e := range p.Events {
		switch e.Kind {
		case NodeDown:
			downAt[e.Node] = e.At
		case NodeUp:
			out = append(out, clipWindow(downAt[e.Node], e.At, horizon))
			delete(downAt, e.Node)
		case ImpairOn:
			impairAt[pairKey(e.A, e.B)] = e.At
		case ImpairOff:
			k := pairKey(e.A, e.B)
			out = append(out, clipWindow(impairAt[k], e.At, horizon))
			delete(impairAt, k)
		}
	}
	for _, from := range sortedResiduals(downAt) {
		out = append(out, clipWindow(from, horizon, horizon))
	}
	for _, k := range sortedPairKeys(impairAt) {
		out = append(out, clipWindow(impairAt[k], horizon, horizon))
	}
	return out
}

// sortedResiduals returns the map's values ordered by node index.
func sortedResiduals(m map[int]sim.Time) []sim.Time {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]sim.Time, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// sortedPairKeys returns the map's keys in lexicographic pair order.
func sortedPairKeys(m map[[2]int]sim.Time) [][2]int {
	keys := make([][2]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

func clipWindow(from, to, horizon sim.Time) Window {
	if to > horizon {
		to = horizon
	}
	if from > to {
		from = to
	}
	return Window{From: from, To: to}
}

// Recoveries lists the NodeUp times of the plan in actuation order — the
// instants the resilience meter measures re-convergence from.
func (p Plan) Recoveries() []sim.Time {
	var out []sim.Time
	for _, e := range p.Events {
		if e.Kind == NodeUp {
			out = append(out, e.At)
		}
	}
	return out
}

// DowntimeNodeSec totals node-seconds of downtime over [0, horizon]; a
// node still down at the horizon contributes up to the horizon.
func (p Plan) DowntimeNodeSec(horizon sim.Time) float64 {
	total := 0.0
	downAt := make(map[int]sim.Time)
	for _, e := range p.Events {
		switch e.Kind {
		case NodeDown:
			downAt[e.Node] = e.At
		case NodeUp:
			w := clipWindow(downAt[e.Node], e.At, horizon)
			total += (w.To - w.From).Seconds()
			delete(downAt, e.Node)
		}
	}
	for _, from := range sortedResiduals(downAt) {
		w := clipWindow(from, horizon, horizon)
		total += (w.To - w.From).Seconds()
	}
	return total
}

// Apply validates the plan against the world and schedules one kernel
// actuator per event. Call after netsim.NewWorld and before World.Run. An
// empty plan applies nothing — the world is left byte-identical to a run
// that never saw the fault package.
func Apply(w *netsim.World, p Plan) error {
	if err := p.Validate(w.NumNodes()); err != nil {
		return err
	}
	if p.Empty() {
		return nil
	}
	if p.hasImpair() {
		// A dedicated named stream keeps impairment loss draws decorrelated
		// from (and invisible to) every other RNG consumer in the world.
		w.Channel.SetImpairRand(w.Stream("fault/impair"))
	}
	for _, e := range p.Events {
		e := e
		switch e.Kind {
		case NodeDown:
			w.Kernel.ScheduleArg(e.At, applyDown, &downArg{w: w, e: e})
		case NodeUp:
			w.Kernel.ScheduleArg(e.At, applyUp, &downArg{w: w, e: e})
		case ImpairOn:
			w.Kernel.ScheduleArg(e.At, applyImpairOn, &downArg{w: w, e: e})
		case ImpairOff:
			w.Kernel.ScheduleArg(e.At, applyImpairOff, &downArg{w: w, e: e})
		}
	}
	return nil
}

// downArg carries one scheduled actuator's target; package-level callbacks
// plus an argument record keep Apply from allocating a closure per event.
type downArg struct {
	w *netsim.World
	e Event
}

var (
	applyDown      = func(a any) { d := a.(*downArg); d.w.Node(d.e.Node).Down(d.e.Graceful) }
	applyUp        = func(a any) { d := a.(*downArg); d.w.Node(d.e.Node).Up() }
	applyImpairOn  = func(a any) { d := a.(*downArg); d.w.Channel.SetImpairment(d.e.A, d.e.B, d.e.Loss, d.e.AttenDB) }
	applyImpairOff = func(a any) { d := a.(*downArg); d.w.Channel.ClearImpairment(d.e.A, d.e.B) }
)
