package fault

import (
	"sort"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// Resilience summarizes how traffic fared against the fault plan: delivery
// ratio during vs. outside merged fault windows, and how quickly the
// network re-converged (first data delivery) after each recovery.
type Resilience struct {
	// Windows is the number of merged fault windows in the plan.
	Windows int `json:"windows"`
	// DowntimeNodeSec is the plan's total node-seconds of downtime.
	DowntimeNodeSec float64 `json:"downtimeNodeSec"`
	// SentDuring/SentOutside split originations by whether the packet was
	// created inside a fault window; Delivered* likewise (classified by
	// origination time, so a packet sent during a blackout but delivered
	// after it still counts against the during-window ratio).
	SentDuring       uint64 `json:"sentDuring"`
	SentOutside      uint64 `json:"sentOutside"`
	DeliveredDuring  uint64 `json:"deliveredDuring"`
	DeliveredOutside uint64 `json:"deliveredOutside"`
	// PDRDuring/PDROutside are the corresponding delivery ratios (0 when
	// nothing was sent in the class).
	PDRDuring  float64 `json:"pdrDuring"`
	PDROutside float64 `json:"pdrOutside"`
	// Recoveries counts NodeUp events; Reconverged counts those recoveries
	// that were followed by at least one data delivery before the run (or
	// the next recovery accounting) ended, and MeanReconvergeSec averages
	// the delay from recovery to that first delivery.
	Recoveries        int     `json:"recoveries"`
	Reconverged       int     `json:"reconverged"`
	MeanReconvergeSec float64 `json:"meanReconvergeSec"`
}

// Meter observes a world run and classifies traffic against a fault plan.
// Install its Hooks with World.AddHooks after the metrics collector binds,
// then call Result after the run.
type Meter struct {
	windows    []Window
	recoveries []sim.Time
	ri         int // next recovery awaiting its first post-recovery delivery
	reconvSum  float64
	reconv     int
	res        Resilience
}

// NewMeter prepares a meter for the plan over [0, horizon].
func NewMeter(p Plan, horizon sim.Time) *Meter {
	m := &Meter{
		windows:    p.Windows(horizon),
		recoveries: p.Recoveries(),
	}
	m.res.Windows = len(m.windows)
	m.res.DowntimeNodeSec = p.DowntimeNodeSec(horizon)
	m.res.Recoveries = len(m.recoveries)
	return m
}

// during reports whether t falls inside a merged fault window.
func (m *Meter) during(t sim.Time) bool {
	i := sort.Search(len(m.windows), func(i int) bool { return m.windows[i].To > t })
	return i < len(m.windows) && m.windows[i].From <= t
}

// Hooks returns the world hooks that feed the meter; chain them with
// World.AddHooks so existing collectors keep firing.
func (m *Meter) Hooks() netsim.Hooks {
	return netsim.Hooks{
		DataSent: func(n *netsim.Node, p *netsim.Packet) {
			if m.during(p.CreatedAt) {
				m.res.SentDuring++
			} else {
				m.res.SentOutside++
			}
		},
		DataDelivered: func(n *netsim.Node, p *netsim.Packet) {
			if m.during(p.CreatedAt) {
				m.res.DeliveredDuring++
			} else {
				m.res.DeliveredOutside++
			}
			now := n.Kernel().Now()
			// Recoveries are sorted; the streaming index credits each one
			// with the first delivery anywhere in the network at or after
			// it — the coarse "data flows again" re-convergence signal.
			for m.ri < len(m.recoveries) && m.recoveries[m.ri] <= now {
				m.reconvSum += (now - m.recoveries[m.ri]).Seconds()
				m.reconv++
				m.ri++
			}
		},
	}
}

// Result finalizes and returns the resilience summary.
func (m *Meter) Result() Resilience {
	r := m.res
	if r.SentDuring > 0 {
		r.PDRDuring = float64(r.DeliveredDuring) / float64(r.SentDuring)
	}
	if r.SentOutside > 0 {
		r.PDROutside = float64(r.DeliveredOutside) / float64(r.SentOutside)
	}
	r.Reconverged = m.reconv
	if m.reconv > 0 {
		r.MeanReconvergeSec = m.reconvSum / float64(m.reconv)
	}
	return r
}
