package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"cavenet/internal/rng"
	"cavenet/internal/sim"
)

// Input caps for Validate / ParseSpec, per the trace-parser hardening
// pattern: a fuzzer (or a hostile -faults string) must not be able to make
// Build materialize an unbounded plan.
const (
	maxChurnRatePerMin = 600   // ten outages per node-second is already absurd
	maxSpecSeconds     = 1e9   // ~31 simulated years
	maxAttenDB         = 200   // beyond any physical link budget
	maxImpairs         = 256   // explicit per-pair impairment list
	maxSpecText        = 4096  // ParseSpec input length
	maxSpecClauses     = 64    // ParseSpec clause count
	maxEventsPerNode   = 10000 // churn sampling backstop
)

// Impair describes one explicit per-pair link impairment window.
type Impair struct {
	// A and B are the link endpoints (unordered pair).
	A, B int
	// StartSec and DurSec bound the impairment window in seconds.
	StartSec, DurSec float64
	// Loss is the per-reception erasure probability in [0, 1].
	Loss float64
	// AttenDB is extra path attenuation in dB (>= 0).
	AttenDB float64
}

// Spec is the declarative, seed-independent description of a fault
// workload; Build expands it against a concrete seed, node count and time
// horizon into a Plan. The zero Spec is fault-free.
type Spec struct {
	// ChurnRatePerMin is the per-node outage rate: each node alternates
	// exponentially-distributed up periods (mean 60/rate seconds) with fixed
	// down periods of ChurnDownSec. Zero disables churn.
	ChurnRatePerMin float64
	// ChurnDownSec is the churn outage duration (default 4 s).
	ChurnDownSec float64
	// ChurnGraceful makes churn outages graceful shutdowns instead of
	// crashes with state loss.
	ChurnGraceful bool

	// BlackoutStartSec/BlackoutDurSec crash a random fraction of the fleet
	// (BlackoutFraction, default 0.5) simultaneously for the window. Zero
	// duration disables the blackout.
	BlackoutStartSec, BlackoutDurSec float64
	BlackoutFraction                 float64

	// PartitionStartSec/PartitionDurSec impair every link crossing the
	// index midline (a < n/2 <= b) with loss 1, splitting the fleet into two
	// halves for the window. Zero duration disables the partition.
	PartitionStartSec, PartitionDurSec float64

	// Impairs lists explicit per-pair impairment windows.
	Impairs []Impair
}

// Empty reports whether the spec describes no faults at all.
func (s Spec) Empty() bool {
	return s.ChurnRatePerMin == 0 && s.BlackoutDurSec == 0 &&
		s.PartitionDurSec == 0 && len(s.Impairs) == 0
}

// Clone returns a deep copy (the Impairs slice is not shared).
func (s Spec) Clone() Spec {
	if len(s.Impairs) > 0 {
		s.Impairs = append([]Impair(nil), s.Impairs...)
	}
	return s
}

func finiteNonNeg(v float64, max float64, what string) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("fault: %s %v is not finite", what, v)
	}
	if v < 0 {
		return fmt.Errorf("fault: %s %v is negative", what, v)
	}
	if v > max {
		return fmt.Errorf("fault: %s %v exceeds cap %v", what, v, max)
	}
	return nil
}

// Validate bounds every knob of the spec. The caps double as the fuzz
// hardening for ParseSpec: any spec that validates expands to a plan of
// bounded size in bounded time.
func (s Spec) Validate() error {
	checks := []struct {
		v, max float64
		what   string
	}{
		{s.ChurnRatePerMin, maxChurnRatePerMin, "churn rate/min"},
		{s.ChurnDownSec, maxSpecSeconds, "churn down seconds"},
		{s.BlackoutStartSec, maxSpecSeconds, "blackout start"},
		{s.BlackoutDurSec, maxSpecSeconds, "blackout duration"},
		{s.BlackoutFraction, 1, "blackout fraction"},
		{s.PartitionStartSec, maxSpecSeconds, "partition start"},
		{s.PartitionDurSec, maxSpecSeconds, "partition duration"},
	}
	for _, c := range checks {
		if err := finiteNonNeg(c.v, c.max, c.what); err != nil {
			return err
		}
	}
	if len(s.Impairs) > maxImpairs {
		return fmt.Errorf("fault: %d impairments exceed cap %d", len(s.Impairs), maxImpairs)
	}
	for i, im := range s.Impairs {
		if im.A == im.B {
			return fmt.Errorf("fault: impair %d is a self-link %d", i, im.A)
		}
		if im.A < 0 || im.B < 0 {
			return fmt.Errorf("fault: impair %d has negative endpoint (%d,%d)", i, im.A, im.B)
		}
		pairs := []struct {
			v, max float64
			what   string
		}{
			{im.StartSec, maxSpecSeconds, fmt.Sprintf("impair %d start", i)},
			{im.DurSec, maxSpecSeconds, fmt.Sprintf("impair %d duration", i)},
			{im.Loss, 1, fmt.Sprintf("impair %d loss", i)},
			{im.AttenDB, maxAttenDB, fmt.Sprintf("impair %d attenuation dB", i)},
		}
		for _, c := range pairs {
			if err := finiteNonNeg(c.v, c.max, c.what); err != nil {
				return err
			}
		}
	}
	return nil
}

// Build expands the spec into a concrete Plan for a world of the given
// node count over [0, horizon]. The plan depends only on (spec, seed,
// nodes, horizon): churn samples one dedicated substream per node
// (root.Fork(node).Stream("fault/churn")) and the blackout victim set one
// fleet-level stream, so plans are bit-identical across sweep worker
// counts and unrelated to the world's own RNG consumption.
func (s Spec) Build(seed int64, nodes int, horizon sim.Time) (Plan, error) {
	if err := s.Validate(); err != nil {
		return Plan{}, err
	}
	if s.Empty() || nodes == 0 || horizon <= 0 {
		return Plan{}, nil
	}
	root := rng.NewSource(seed)

	// Per-node down intervals from churn and blackout, merged before being
	// flattened to events so overlaps cannot produce double-Down sequences.
	type span struct {
		from, to sim.Time
		graceful bool
	}
	downs := make([][]span, nodes)

	if s.ChurnRatePerMin > 0 {
		meanUp := 60 / s.ChurnRatePerMin
		downDur := s.ChurnDownSec
		if downDur == 0 {
			downDur = 4
		}
		for i := 0; i < nodes; i++ {
			rnd := root.Fork(i).Stream("fault/churn")
			t := sim.Time(0)
			for ev := 0; ev < maxEventsPerNode; ev++ {
				up := sim.Seconds(rnd.ExpFloat64() * meanUp)
				if up < sim.Millisecond {
					up = sim.Millisecond
				}
				t += up
				if t >= horizon {
					break
				}
				end := t + sim.Seconds(downDur)
				downs[i] = append(downs[i], span{from: t, to: end, graceful: s.ChurnGraceful})
				t = end
				if t >= horizon {
					break
				}
			}
		}
	}

	if s.BlackoutDurSec > 0 {
		frac := s.BlackoutFraction
		if frac == 0 {
			frac = 0.5
		}
		victims := int(math.Floor(frac * float64(nodes)))
		if victims > 0 {
			rnd := root.Stream("fault/blackout")
			perm := rnd.Perm(nodes)[:victims]
			sort.Ints(perm)
			from := sim.Seconds(s.BlackoutStartSec)
			to := from + sim.Seconds(s.BlackoutDurSec)
			for _, i := range perm {
				downs[i] = append(downs[i], span{from: from, to: to})
			}
		}
	}

	var events []Event
	for i, spans := range downs {
		if len(spans) == 0 {
			continue
		}
		sort.Slice(spans, func(a, b int) bool { return spans[a].from < spans[b].from })
		merged := spans[:1]
		for _, sp := range spans[1:] {
			last := &merged[len(merged)-1]
			if sp.from <= last.to {
				if sp.to > last.to {
					last.to = sp.to
				}
				// A crash overlapping a graceful shutdown is a crash.
				last.graceful = last.graceful && sp.graceful
				continue
			}
			merged = append(merged, sp)
		}
		for _, sp := range merged {
			if sp.from >= horizon {
				continue
			}
			events = append(events, Event{At: sp.from, Kind: NodeDown, Node: i, Graceful: sp.graceful})
			if sp.to < horizon {
				// A recovery at or past the horizon is clipped away: the
				// node simply stays down to the end of the run.
				events = append(events, Event{At: sp.to, Kind: NodeUp, Node: i})
			}
		}
	}

	impairs := append([]Impair(nil), s.Impairs...)
	if s.PartitionDurSec > 0 && nodes >= 2 {
		half := nodes / 2
		for a := 0; a < half; a++ {
			for b := half; b < nodes; b++ {
				impairs = append(impairs, Impair{
					A: a, B: b,
					StartSec: s.PartitionStartSec, DurSec: s.PartitionDurSec,
					Loss: 1,
				})
			}
		}
	}
	seen := make(map[[2]int]bool)
	for _, im := range impairs {
		if im.A >= nodes || im.B >= nodes {
			// Explicit impairments referencing nodes beyond this world are
			// skipped rather than rejected, so one spec can serve scenarios
			// of different sizes (Shrunk property runs included).
			continue
		}
		k := pairKey(im.A, im.B)
		if seen[k] {
			return Plan{}, fmt.Errorf("fault: duplicate impairment for pair (%d,%d)", im.A, im.B)
		}
		seen[k] = true
		from := sim.Seconds(im.StartSec)
		to := from + sim.Seconds(im.DurSec)
		if im.DurSec == 0 || from >= horizon {
			continue
		}
		events = append(events, Event{At: from, Kind: ImpairOn, A: im.A, B: im.B, Loss: im.Loss, AttenDB: im.AttenDB})
		if to < horizon {
			events = append(events, Event{At: to, Kind: ImpairOff, A: im.A, B: im.B})
		}
	}

	sort.SliceStable(events, func(i, j int) bool { return eventLess(events[i], events[j]) })
	plan := Plan{Events: events}
	if err := plan.Validate(nodes); err != nil {
		return Plan{}, err
	}
	return plan, nil
}

// ParseSpec parses the CLI fault grammar: semicolon-separated clauses
//
//	churn:RATE[,DOWNSEC[,graceful]]
//	blackout:START,DUR[,FRACTION]
//	partition:START,DUR
//	impair:A-B,START,DUR[,LOSS[,ATTENDB]]
//
// e.g. "churn:1.5,4;impair:0-3,10,20,0.5,3". Whitespace around clauses is
// ignored; each of churn/blackout/partition may appear at most once. The
// result is validated (and thereby capped) before return.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	if len(text) > maxSpecText {
		return s, fmt.Errorf("fault: spec text %d bytes exceeds cap %d", len(text), maxSpecText)
	}
	clauses := strings.Split(text, ";")
	if len(clauses) > maxSpecClauses {
		return s, fmt.Errorf("fault: %d clauses exceed cap %d", len(clauses), maxSpecClauses)
	}
	var haveChurn, haveBlackout, havePartition bool
	for _, clause := range clauses {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return s, fmt.Errorf("fault: clause %q lacks ':'", clause)
		}
		args := strings.Split(rest, ",")
		switch kind {
		case "churn":
			if haveChurn {
				return s, fmt.Errorf("fault: duplicate churn clause")
			}
			haveChurn = true
			if len(args) < 1 || len(args) > 3 {
				return s, fmt.Errorf("fault: churn wants RATE[,DOWNSEC[,graceful]], got %q", rest)
			}
			rate, err := parseNum(args[0], "churn rate")
			if err != nil {
				return s, err
			}
			s.ChurnRatePerMin = rate
			if len(args) >= 2 {
				down, err := parseNum(args[1], "churn down seconds")
				if err != nil {
					return s, err
				}
				s.ChurnDownSec = down
			}
			if len(args) == 3 {
				if args[2] != "graceful" {
					return s, fmt.Errorf("fault: churn third argument must be 'graceful', got %q", args[2])
				}
				s.ChurnGraceful = true
			}
		case "blackout":
			if haveBlackout {
				return s, fmt.Errorf("fault: duplicate blackout clause")
			}
			haveBlackout = true
			if len(args) < 2 || len(args) > 3 {
				return s, fmt.Errorf("fault: blackout wants START,DUR[,FRACTION], got %q", rest)
			}
			var err error
			if s.BlackoutStartSec, err = parseNum(args[0], "blackout start"); err != nil {
				return s, err
			}
			if s.BlackoutDurSec, err = parseNum(args[1], "blackout duration"); err != nil {
				return s, err
			}
			if len(args) == 3 {
				if s.BlackoutFraction, err = parseNum(args[2], "blackout fraction"); err != nil {
					return s, err
				}
			}
		case "partition":
			if havePartition {
				return s, fmt.Errorf("fault: duplicate partition clause")
			}
			havePartition = true
			if len(args) != 2 {
				return s, fmt.Errorf("fault: partition wants START,DUR, got %q", rest)
			}
			var err error
			if s.PartitionStartSec, err = parseNum(args[0], "partition start"); err != nil {
				return s, err
			}
			if s.PartitionDurSec, err = parseNum(args[1], "partition duration"); err != nil {
				return s, err
			}
		case "impair":
			if len(args) < 3 || len(args) > 5 {
				return s, fmt.Errorf("fault: impair wants A-B,START,DUR[,LOSS[,ATTENDB]], got %q", rest)
			}
			aStr, bStr, ok := strings.Cut(args[0], "-")
			if !ok {
				return s, fmt.Errorf("fault: impair pair %q lacks '-'", args[0])
			}
			a, err := strconv.Atoi(strings.TrimSpace(aStr))
			if err != nil {
				return s, fmt.Errorf("fault: impair endpoint %q: %v", aStr, err)
			}
			b, err := strconv.Atoi(strings.TrimSpace(bStr))
			if err != nil {
				return s, fmt.Errorf("fault: impair endpoint %q: %v", bStr, err)
			}
			im := Impair{A: a, B: b}
			if im.StartSec, err = parseNum(args[1], "impair start"); err != nil {
				return s, err
			}
			if im.DurSec, err = parseNum(args[2], "impair duration"); err != nil {
				return s, err
			}
			if len(args) >= 4 {
				if im.Loss, err = parseNum(args[3], "impair loss"); err != nil {
					return s, err
				}
			}
			if len(args) == 5 {
				if im.AttenDB, err = parseNum(args[4], "impair attenuation"); err != nil {
					return s, err
				}
			}
			s.Impairs = append(s.Impairs, im)
		default:
			return s, fmt.Errorf("fault: unknown clause kind %q", kind)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func parseNum(text, what string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
	if err != nil {
		return 0, fmt.Errorf("fault: %s %q: %v", what, text, err)
	}
	return v, nil
}
