package fault

import (
	"math"
	"reflect"
	"testing"

	"cavenet/internal/sim"
)

// residualPlan leaves many nodes and links down at the horizon, at
// timestamps chosen so every summation order gives a different float
// total: the regression shape for the map-ordered residual walk that
// once made DowntimeNodeSec differ between replays of the same plan.
func residualPlan(nodes int) Plan {
	var p Plan
	for n := 0; n < nodes; n++ {
		// Irrational-ish offsets so partial sums don't round to the same
		// value under reordering.
		at := sim.Seconds(1.0 + float64(n)*math.Pi/7.0)
		p.Events = append(p.Events, Event{At: at, Kind: NodeDown, Node: n})
		if n%3 == 0 {
			p.Events = append(p.Events, Event{At: at, Kind: ImpairOn, A: n, B: n + 1, Loss: 0.5})
		}
	}
	return p
}

// TestResidualDowntimeDeterministic replays DowntimeNodeSec and Windows
// over a plan full of still-open faults: every call must produce
// bit-identical output. Go randomizes map iteration per range statement,
// so a map-ordered residual walk fails this test in a handful of
// repetitions.
func TestResidualDowntimeDeterministic(t *testing.T) {
	p := residualPlan(60)
	horizon := sim.Seconds(120)
	wantDown := p.DowntimeNodeSec(horizon)
	wantWin := p.Windows(horizon)
	if wantDown <= 0 || len(wantWin) == 0 {
		t.Fatalf("plan has no residual downtime to measure (down=%v windows=%d)", wantDown, len(wantWin))
	}
	for i := 0; i < 200; i++ {
		if got := p.DowntimeNodeSec(horizon); got != wantDown {
			t.Fatalf("call %d: DowntimeNodeSec = %v, want %v (residual summation order leaked)", i, got, wantDown)
		}
		if got := p.Windows(horizon); !reflect.DeepEqual(got, wantWin) {
			t.Fatalf("call %d: Windows diverged from first call", i)
		}
	}
}
