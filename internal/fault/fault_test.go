package fault

import (
	"reflect"
	"strings"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/netsim"
	"cavenet/internal/routing/aodv"
	"cavenet/internal/sim"
)

// fullSpec exercises every generator at once.
func fullSpec() Spec {
	return Spec{
		ChurnRatePerMin:  3,
		ChurnDownSec:     2,
		BlackoutStartSec: 5,
		BlackoutDurSec:   3,
		BlackoutFraction: 0.4,
		Impairs: []Impair{
			{A: 0, B: 1, StartSec: 2, DurSec: 6, Loss: 0.3, AttenDB: 2},
		},
	}
}

func TestBuildDeterministic(t *testing.T) {
	const nodes = 12
	horizon := 30 * sim.Second
	a, err := fullSpec().Build(42, nodes, horizon)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fullSpec().Build(42, nodes, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Builds from identical inputs diverged")
	}
	if a.Empty() {
		t.Fatal("full spec built an empty plan; the determinism check is vacuous")
	}
	c, err := fullSpec().Build(43, nodes, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("changing the seed left the plan unchanged")
	}
	if err := a.Validate(nodes); err != nil {
		t.Fatalf("built plan fails its own validation: %v", err)
	}
}

func TestBuildChurnAlternatesWithinHorizon(t *testing.T) {
	const nodes = 8
	horizon := 60 * sim.Second
	plan, err := Spec{ChurnRatePerMin: 6, ChurnDownSec: 1}.Build(7, nodes, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Empty() {
		t.Fatal("6 outages/min over 60 s produced no events")
	}
	down := make(map[int]bool)
	downs := 0
	for i, e := range plan.Events {
		if e.At < 0 || e.At >= horizon {
			t.Fatalf("event %d at %v outside [0, %v)", i, e.At, horizon)
		}
		switch e.Kind {
		case NodeDown:
			if down[e.Node] {
				t.Fatalf("event %d downs node %d twice", i, e.Node)
			}
			down[e.Node] = true
			downs++
		case NodeUp:
			if !down[e.Node] {
				t.Fatalf("event %d ups node %d while up", i, e.Node)
			}
			down[e.Node] = false
		default:
			t.Fatalf("churn-only spec produced %v", e.Kind)
		}
	}
	if downs < nodes {
		t.Fatalf("only %d outages across %d nodes; expected churn on most of the fleet", downs, nodes)
	}
}

func TestValidateRejects(t *testing.T) {
	ev := func(es ...Event) Plan { return Plan{Events: es} }
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"negative time", ev(Event{At: -1, Kind: NodeDown, Node: 0}), "negative time"},
		{"out of order", ev(
			Event{At: 2 * sim.Second, Kind: NodeDown, Node: 0},
			Event{At: sim.Second, Kind: NodeUp, Node: 0}), "out of order"},
		{"node out of range", ev(Event{Kind: NodeDown, Node: 9}), "of 4"},
		{"double down", ev(
			Event{At: 1, Kind: NodeDown, Node: 1},
			Event{At: 2, Kind: NodeDown, Node: 1}), "already down"},
		{"up while up", ev(Event{At: 1, Kind: NodeUp, Node: 1}), "already up"},
		{"self link", ev(Event{Kind: ImpairOn, A: 2, B: 2}), "self-link"},
		{"loss out of range", ev(Event{Kind: ImpairOn, A: 0, B: 1, Loss: 1.5}), "outside [0,1]"},
		{"negative attenuation", ev(Event{Kind: ImpairOn, A: 0, B: 1, AttenDB: -3}), "negative attenuation"},
		{"double impair", ev(
			Event{At: 1, Kind: ImpairOn, A: 0, B: 1},
			Event{At: 2, Kind: ImpairOn, A: 1, B: 0}), "already impaired"},
		{"clear unimpaired", ev(Event{At: 1, Kind: ImpairOff, A: 0, B: 1}), "unimpaired"},
		{"unknown kind", ev(Event{Kind: Kind(99)}), "unknown kind"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate(4)
			if err == nil {
				t.Fatalf("plan validated; want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestWindowsMergeAndDowntime(t *testing.T) {
	p := Plan{Events: []Event{
		{At: 1 * sim.Second, Kind: NodeDown, Node: 0},
		{At: 2 * sim.Second, Kind: NodeDown, Node: 1},
		{At: 3 * sim.Second, Kind: NodeUp, Node: 0},
		{At: 4 * sim.Second, Kind: NodeUp, Node: 1},
		{At: 10 * sim.Second, Kind: ImpairOn, A: 0, B: 1, Loss: 1},
		{At: 12 * sim.Second, Kind: ImpairOff, A: 0, B: 1},
		// Open at the horizon: node 2 never recovers.
		{At: 18 * sim.Second, Kind: NodeDown, Node: 2},
	}}
	horizon := 20 * sim.Second
	if err := p.Validate(3); err != nil {
		t.Fatal(err)
	}
	got := p.Windows(horizon)
	want := []Window{
		{From: 1 * sim.Second, To: 4 * sim.Second},
		{From: 10 * sim.Second, To: 12 * sim.Second},
		{From: 18 * sim.Second, To: 20 * sim.Second},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Windows = %v, want %v", got, want)
	}
	// Node downtime: (1..3) + (2..4) + (18..20 clipped) = 6 node-seconds;
	// impairments are not node downtime.
	if d := p.DowntimeNodeSec(horizon); d != 6 {
		t.Fatalf("DowntimeNodeSec = %v, want 6", d)
	}
	if rec := p.Recoveries(); len(rec) != 2 || rec[0] != 3*sim.Second || rec[1] != 4*sim.Second {
		t.Fatalf("Recoveries = %v", rec)
	}
}

func TestParseSpec(t *testing.T) {
	good := []struct {
		text string
		want Spec
	}{
		{"churn:1.5", Spec{ChurnRatePerMin: 1.5}},
		{"churn:2,6,graceful", Spec{ChurnRatePerMin: 2, ChurnDownSec: 6, ChurnGraceful: true}},
		{"blackout:10,8", Spec{BlackoutStartSec: 10, BlackoutDurSec: 8}},
		{"blackout:10,8,0.7", Spec{BlackoutStartSec: 10, BlackoutDurSec: 8, BlackoutFraction: 0.7}},
		{"partition:5,20", Spec{PartitionStartSec: 5, PartitionDurSec: 20}},
		{"impair:0-3,4,12,0.5,3", Spec{Impairs: []Impair{{A: 0, B: 3, StartSec: 4, DurSec: 12, Loss: 0.5, AttenDB: 3}}}},
		{" churn:1 ; partition:5,5 ", Spec{ChurnRatePerMin: 1, PartitionStartSec: 5, PartitionDurSec: 5}},
		{"", Spec{}},
	}
	for _, c := range good {
		got, err := ParseSpec(c.text)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.text, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.text, got, c.want)
		}
	}
	bad := []string{
		"churn",                              // no colon
		"churn:x",                            // not a number
		"churn:1;churn:2",                    // duplicate clause
		"churn:-1",                           // negative
		"churn:1e9",                          // over cap
		"churn:NaN",                          // not finite
		"blackout:10",                        // too few args
		"blackout:10,8,1.5",                  // fraction over 1
		"partition:1,2,3",                    // too many args
		"impair:03,1,1",                      // pair lacks '-'
		"impair:0-0,1,1",                     // self link
		"impair:0-1,1,1,2",                   // loss over 1
		"impair:0-1,1,1,0.5,999",             // attenuation over cap
		"warp:1",                             // unknown kind
		strings.Repeat("churn:1;", 100),      // too many clauses
		"churn:" + strings.Repeat("1", 5000), // too long
	}
	for _, text := range bad {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted; want error", text)
		}
	}
}

// buildTrafficWorld wires a small static AODV world with scheduled CBR-like
// sends, returning the world after Run. apply lets the caller touch the
// world between construction and Run.
func buildTrafficWorld(t *testing.T, apply func(w *netsim.World)) *netsim.World {
	t.Helper()
	const n = 9
	pos := make([]geometry.Vec2, n)
	for i := range pos {
		pos[i] = geometry.Vec2{X: float64(i%3) * 180, Y: float64(i/3) * 180}
	}
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: n, Seed: 21, Static: pos,
	}, func(node *netsim.Node) netsim.Router { return aodv.New(node, aodv.Config{}) })
	if err != nil {
		t.Fatal(err)
	}
	w.Node(0).AttachPort(netsim.PortCBR, netsim.PortFunc(func(p *netsim.Packet, at sim.Time) {}))
	for s := 1; s < n; s++ {
		src := w.Node(s)
		for at := sim.Time(s) * 100 * sim.Millisecond; at < 8*sim.Second; at += 400 * sim.Millisecond {
			w.Kernel.Schedule(at, func() {
				src.SendData(src.NewPacket(0, netsim.PortCBR, 128))
			})
		}
	}
	if apply != nil {
		apply(w)
	}
	w.Run(10 * sim.Second)
	return w
}

// TestEmptyPlanIsByteIdenticalNoOp is the differential gate: applying the
// empty Plan must leave a run indistinguishable from one that never called
// into the fault package at all.
func TestEmptyPlanIsByteIdenticalNoOp(t *testing.T) {
	plain := buildTrafficWorld(t, nil)
	empty := buildTrafficWorld(t, func(w *netsim.World) {
		if err := Apply(w, Plan{}); err != nil {
			t.Fatal(err)
		}
	})
	if a, b := plain.Kernel.Processed(), empty.Kernel.Processed(); a != b {
		t.Fatalf("kernel processed %d events without the fault layer, %d with an empty plan", a, b)
	}
	for i := 0; i < plain.NumNodes(); i++ {
		if a, b := plain.Node(i).Counters(), empty.Node(i).Counters(); a != b {
			t.Fatalf("node %d counters diverged: %+v vs %+v", i, a, b)
		}
		if a, b := plain.Node(i).MAC().Stats(), empty.Node(i).MAC().Stats(); a != b {
			t.Fatalf("node %d MAC stats diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestApplyChurnPerturbs is the non-vacuity partner of the empty-plan gate:
// a real plan must actually change the run.
func TestApplyChurnPerturbs(t *testing.T) {
	plan, err := Spec{ChurnRatePerMin: 8, ChurnDownSec: 2}.Build(21, 9, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Empty() {
		t.Fatal("churn plan is empty")
	}
	plain := buildTrafficWorld(t, nil)
	churned := buildTrafficWorld(t, func(w *netsim.World) {
		if err := Apply(w, plan); err != nil {
			t.Fatal(err)
		}
	})
	downs := 0
	for i := 0; i < churned.NumNodes(); i++ {
		downs += int(churned.Node(i).MAC().Stats().DownDrops)
	}
	if plain.Kernel.Processed() == churned.Kernel.Processed() && downs == 0 {
		t.Fatal("churn plan left the run untouched")
	}
}

func TestApplyRejectsInvalidPlan(t *testing.T) {
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: 2, Seed: 1, Static: []geometry.Vec2{{X: 0, Y: 0}, {X: 50, Y: 0}},
	}, func(node *netsim.Node) netsim.Router { return aodv.New(node, aodv.Config{}) })
	if err != nil {
		t.Fatal(err)
	}
	bad := Plan{Events: []Event{{Kind: NodeDown, Node: 7}}}
	if err := Apply(w, bad); err == nil {
		t.Fatal("Apply accepted a plan targeting a node outside the world")
	}
}

func TestMeterClassifiesByWindow(t *testing.T) {
	p := Plan{Events: []Event{
		{At: 4 * sim.Second, Kind: NodeDown, Node: 0},
		{At: 6 * sim.Second, Kind: NodeUp, Node: 0},
	}}
	m := NewMeter(p, 10*sim.Second)
	if got := m.Result(); got.Windows != 1 || got.DowntimeNodeSec != 2 || got.Recoveries != 1 {
		t.Fatalf("meter header = %+v", got)
	}
	if m.during(3 * sim.Second) {
		t.Fatal("t=3s classified as inside the [4,6) window")
	}
	if !m.during(4 * sim.Second) {
		t.Fatal("t=4s classified as outside the [4,6) window")
	}
	if m.during(6 * sim.Second) {
		t.Fatal("t=6s classified as inside the half-open [4,6) window")
	}
}
