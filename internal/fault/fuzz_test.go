package fault

import (
	"testing"

	"cavenet/internal/sim"
)

// FuzzParseSpec hardens the CLI fault-plan grammar: no input may panic the
// parser, and any spec the parser accepts must expand into a valid,
// bounded plan (the input caps exist exactly so a hostile -faults string
// cannot make Build materialize an unbounded schedule).
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		"churn:1.5",
		"churn:2,6,graceful",
		"blackout:10,8,0.5",
		"partition:5,20",
		"impair:0-3,4,12,0.5,3",
		"churn:1.5,4;impair:0-3,10,20,0.5,3",
		"churn:;;;",
		"impair:0-0,1,1",
		"blackout:1e308,1e308",
		"churn:NaN",
		"impair:-1--2,1,1",
		"churn:600;blackout:0,1e9,1;partition:0,1e9",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := ParseSpec(text)
		if err != nil {
			return
		}
		// The parser validated the spec, so expansion must succeed for any
		// reasonable world (size mismatches are tolerated by design: explicit
		// impairments beyond the node count are skipped, not rejected) — with
		// the single exception of duplicate explicit impairment pairs, which
		// only Build can see.
		plan, err := spec.Build(1, 20, 20*sim.Second)
		if err != nil {
			return
		}
		if err := plan.Validate(20); err != nil {
			t.Fatalf("ParseSpec(%q) accepted a spec whose plan fails validation: %v", text, err)
		}
		if len(plan.Events) > 2*20*maxEventsPerNode+2*maxImpairs+2*20*20 {
			t.Fatalf("ParseSpec(%q) expanded to %d events despite the caps", text, len(plan.Events))
		}
	})
}
