package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
)

// This file implements the BonnMotion waypoint format, the second trace
// format the paper's §III promises is "straightforward" to add: one line
// per node, whitespace-separated (time x y) triples.
//
//	0.0 12.5 30.0 1.0 20.0 30.0 2.0 27.5 30.0 ...

// WriteBonnMotion emits a sampled trace in BonnMotion format, one waypoint
// per sample.
func WriteBonnMotion(w io.Writer, t *mobility.SampledTrace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for n := 0; n < t.NumNodes(); n++ {
		for i, p := range t.Positions[n] {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%.4f %.4f %.4f",
				float64(i)*t.Interval, p.X, p.Y); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// waypoint is one (time, position) BonnMotion entry.
type waypoint struct {
	t float64
	p geometry.Vec2
}

// ParseBonnMotion reads a BonnMotion file back into a sampled trace with
// the given sampling interval (waypoints between samples are linearly
// interpolated, which matches BonnMotion's constant-speed-segments
// semantics). It is the materialized view of ParseBonnMotionSource.
func ParseBonnMotion(r io.Reader, interval float64) (*mobility.SampledTrace, error) {
	src, err := ParseBonnMotionSource(r, interval)
	if err != nil {
		return nil, err
	}
	// The sample count is input-controlled (the last waypoint time): a
	// single line "1e18 0 0" must not allocate petabytes when
	// materialized. Bound the trace; legitimate traces stay far below
	// this, and the streaming source has no such ceiling to begin with.
	const maxCells = 1 << 22
	if samples := src.NumSamples(); samples > maxCells/src.NumNodes() {
		return nil, fmt.Errorf("trace: %d nodes x %d samples exceeds the re-sampling limit (shorten the trace, widen the interval, or use ParseBonnMotionSource)",
			src.NumNodes(), samples)
	}
	return mobility.Record(src), nil
}

// ParseBonnMotionSource reads a BonnMotion file into a streaming mobility
// source: retained state is the waypoint list itself (the input) plus two
// interpolation rows, instead of the O(nodes × samples) matrix
// ParseBonnMotion materializes — so re-sampling a long trace at a fine
// interval no longer blows up memory with the sample count.
func ParseBonnMotionSource(r io.Reader, interval float64) (*mobility.Stream, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("trace: non-positive interval %v", interval)
	}
	var nodes [][]waypoint
	maxT := 0.0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields)%3 != 0 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want multiple of 3", lineNo, len(fields))
		}
		var wps []waypoint
		prev := -1.0
		for i := 0; i < len(fields); i += 3 {
			t, err1 := strconv.ParseFloat(fields[i], 64)
			x, err2 := strconv.ParseFloat(fields[i+1], 64)
			y, err3 := strconv.ParseFloat(fields[i+2], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("trace: line %d: bad waypoint near field %d", lineNo, i)
			}
			if t <= prev && i > 0 {
				return nil, fmt.Errorf("trace: line %d: waypoint times not increasing", lineNo)
			}
			prev = t
			wps = append(wps, waypoint{t: t, p: geometry.Vec2{X: x, Y: y}})
		}
		if len(wps) == 0 {
			return nil, fmt.Errorf("trace: line %d: empty node", lineNo)
		}
		if last := wps[len(wps)-1].t; last > maxT {
			maxT = last
		}
		nodes = append(nodes, wps)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("trace: empty BonnMotion file")
	}
	// Even streamed, the sample count must stay a sane integer: a final
	// waypoint at 1e18 s would overflow the sample arithmetic before any
	// memory is at risk.
	if maxT/interval > 1<<40 {
		return nil, fmt.Errorf("trace: final waypoint at %g s yields an unreasonable sample count at interval %g", maxT, interval)
	}
	samples := mobility.SampleCount(maxT, interval)
	return mobility.NewStream(mobility.StreamConfig{
		Nodes:    len(nodes),
		Interval: interval,
		Samples:  samples,
		Fill: func(k int, row []geometry.Vec2) {
			at := float64(k) * interval
			for n, wps := range nodes {
				row[n] = interpolateWaypoints(wps, at)
			}
		},
	})
}

func interpolateWaypoints(wps []waypoint, at float64) geometry.Vec2 {
	if at <= wps[0].t {
		return wps[0].p
	}
	for i := 1; i < len(wps); i++ {
		if at <= wps[i].t {
			a, b := wps[i-1], wps[i]
			span := b.t - a.t
			if span <= 0 {
				return b.p
			}
			frac := (at - a.t) / span
			return geometry.Vec2{
				X: a.p.X + (b.p.X-a.p.X)*frac,
				Y: a.p.Y + (b.p.Y-a.p.Y)*frac,
			}
		}
	}
	return wps[len(wps)-1].p
}
