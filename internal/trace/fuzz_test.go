package trace

import (
	"bytes"
	"strings"
	"testing"
)

// The fuzz targets harden the two external-input surfaces of the repo:
// the ns-2 scenario parser and the BonnMotion parser. Both accept
// arbitrary files from other tools, so they must never panic, hang, or
// allocate unboundedly, and anything they accept must survive the
// round-trip through the sampler and the writer.
//
// Run them with `make fuzz-smoke` (seconds) or `go test -fuzz` (open
// ended).

const ns2Seed = `$node_(0) set X_ 662.5000
$node_(0) set Y_ 50.0000
$node_(0) set Z_ 0.0000
$node_(1) set X_ 100.0000
$node_(1) set Y_ 50.0000
$node_(1) set Z_ 0.0000
$ns_ at 1.0000 "$node_(0) setdest 670.0000 50.0000 7.5000"
$ns_ at 2.0000 "$node_(1) setdest 120.0000 50.0000 5.0000"
# a comment ns-2 files may carry
set god_ [God instance]
`

const bonnSeed = `0.0 12.5 30.0 1.0 20.0 30.0 2.0 27.5 30.0
0.0 0.0 0.0 2.5 10.0 10.0
`

func FuzzParseNS2(f *testing.F) {
	f.Add([]byte(ns2Seed))
	f.Add([]byte(`$node_(3) set X_ 1`))
	f.Add([]byte(`$ns_ at 0.5 "$node_(0) setdest 1 2 3"`))
	f.Add([]byte(`$node_(999999999999) set X_ 1`))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		script, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Bound per-exec work: a single "$node_(1048575) set X_ 1" line is
		// valid and would make the sampling/round-trip below allocate
		// millions of positions per exec, collapsing fuzz throughput.
		if len(script.Nodes) > 2000 {
			return
		}
		// Whatever parses must sample and re-serialize without panicking.
		tr := script.Sample(1.0, 5.0)
		if tr.NumNodes() > 0 {
			if got := tr.NumSamples(); got != 6 {
				t.Fatalf("Sample(1, 5) produced %d samples, want 6", got)
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, script); err != nil {
			t.Fatalf("Write of parsed script failed: %v", err)
		}
		// And the writer's output must parse back.
		if _, err := Parse(&buf); err != nil {
			t.Fatalf("round-trip re-parse failed: %v", err)
		}
	})
}

func FuzzParseBonnMotion(f *testing.F) {
	f.Add([]byte(bonnSeed), 1.0)
	f.Add([]byte("0.0 1 1"), 0.5)
	f.Add([]byte("1e18 0 0"), 1.0)
	f.Add([]byte("# comment\n\n0 1 2"), 2.0)
	f.Add([]byte(""), 1.0)
	f.Fuzz(func(t *testing.T, data []byte, interval float64) {
		tr, err := ParseBonnMotion(bytes.NewReader(data), interval)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails Validate: %v", err)
		}
		// Sampling anywhere inside (and beyond) the trace must not panic.
		for n := 0; n < tr.NumNodes(); n++ {
			tr.At(n, 0)
			tr.At(n, tr.Duration())
			tr.At(n, tr.Duration()+10)
		}
		// The round trip below is O(nodes × samples); the parser's
		// re-sampling cap admits multi-million-sample traces, which would
		// collapse fuzz throughput to a handful of execs per second. Bound
		// the per-exec work, not the parser.
		if tr.NumNodes()*tr.NumSamples() > 10_000 {
			return
		}
		// The writer must serialize what the parser accepted, and the
		// output must parse back with the same shape.
		var buf bytes.Buffer
		if err := WriteBonnMotion(&buf, tr); err != nil {
			t.Fatalf("WriteBonnMotion failed: %v", err)
		}
		back, err := ParseBonnMotion(strings.NewReader(buf.String()), interval)
		if err != nil {
			t.Fatalf("round-trip re-parse failed: %v", err)
		}
		if back.NumNodes() != tr.NumNodes() {
			t.Fatalf("round trip changed node count: %d -> %d", tr.NumNodes(), back.NumNodes())
		}
	})
}
