package trace

import (
	"strings"
	"testing"

	"cavenet/internal/geometry"
)

// TestScriptSourceMatchesSample asserts streaming ns-2 playback is
// bit-identical to the materialized Sample of the same script, across the
// whole tick grid including the clamp beyond the last sample.
func TestScriptSourceMatchesSample(t *testing.T) {
	s := &Script{Nodes: []NodeScript{
		{Initial: geometry.Vec2{X: 10, Y: 20}, Cmds: []SetDest{
			{At: 1, Dest: geometry.Vec2{X: 100, Y: 20}, Speed: 12.5},
			{At: 8, Dest: geometry.Vec2{X: 100, Y: 200}, Speed: 7},
		}},
		{Initial: geometry.Vec2{X: 0, Y: 0}},
		{Initial: geometry.Vec2{X: 5, Y: 5}, Cmds: []SetDest{
			{At: 0.25, Dest: geometry.Vec2{X: 5, Y: 305}, Speed: 30},
			{At: 0.25, Dest: geometry.Vec2{X: 305, Y: 5}, Speed: 30},
		}},
	}}
	const interval, duration = 1.0, 25.0
	sampled := s.Sample(interval, duration)
	src, err := s.Source(interval, duration)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; float64(tick)*0.1 <= duration+3; tick++ {
		tsec := float64(tick) * 0.1
		for n := range s.Nodes {
			if got, want := src.At(n, tsec), sampled.At(n, tsec); got != want {
				t.Fatalf("node %d at t=%.1f: streamed %v, sampled %v", n, tsec, got, want)
			}
		}
	}
}

// TestParseBonnMotionSourceMatchesParse asserts the streaming BonnMotion
// reader serves exactly what the materializing parser interpolates.
func TestParseBonnMotionSourceMatchesParse(t *testing.T) {
	input := "0.0 0 0 5.0 50 0 10.0 50 80\n" +
		"0.0 10 10 4.0 10 90\n" +
		"2.0 7 7\n"
	const interval = 0.5
	sampled, err := ParseBonnMotion(strings.NewReader(input), interval)
	if err != nil {
		t.Fatal(err)
	}
	src, err := ParseBonnMotionSource(strings.NewReader(input), interval)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumNodes() != sampled.NumNodes() || src.NumSamples() != sampled.NumSamples() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d",
			src.NumNodes(), src.NumSamples(), sampled.NumNodes(), sampled.NumSamples())
	}
	for tick := 0; float64(tick)*0.1 <= 12; tick++ {
		tsec := float64(tick) * 0.1
		for n := 0; n < src.NumNodes(); n++ {
			if got, want := src.At(n, tsec), sampled.At(n, tsec); got != want {
				t.Fatalf("node %d at t=%.1f: streamed %v, sampled %v", n, tsec, got, want)
			}
		}
	}
}

// TestParseBonnMotionSourceUnbounded pins the streaming reader's memory
// contract: a trace whose re-sampled size would blow the materializing
// cap still streams (only two rows are ever retained), while the
// materializing parser keeps refusing it.
func TestParseBonnMotionSourceUnbounded(t *testing.T) {
	// 2^22 cells is the materializing cap; 6e6 samples at 1 s blows it
	// for a single node while remaining a perfectly sane stream.
	input := "0.0 0 0 6000000.0 1000 1000\n"
	if _, err := ParseBonnMotion(strings.NewReader(input), 1); err == nil {
		t.Fatal("materializing parser accepted a trace beyond its re-sampling cap")
	}
	src, err := ParseBonnMotionSource(strings.NewReader(input), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the interpolation far into the trace.
	got := src.At(0, 3000000)
	if got.X < 499 || got.X > 501 {
		t.Fatalf("midpoint = %v, want ~(500,500)", got)
	}
}
