package trace

import (
	"math"
	"strings"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
)

func TestWriteFormat(t *testing.T) {
	s := &Script{Nodes: []NodeScript{
		{
			Initial: geometry.Vec2{X: 662.5, Y: 50},
			Cmds: []SetDest{
				{At: 1, Dest: geometry.Vec2{X: 670, Y: 50}, Speed: 7.5},
			},
		},
	}}
	var sb strings.Builder
	if err := Write(&sb, s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$node_(0) set X_ 662.5000",
		"$node_(0) set Y_ 50.0000",
		"$node_(0) set Z_ 0.0000",
		`$ns_ at 1.0000 "$node_(0) setdest 670.0000 50.0000 7.5000"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	orig := &Script{Nodes: []NodeScript{
		{
			Initial: geometry.Vec2{X: 100, Y: 200},
			Cmds: []SetDest{
				{At: 0, Dest: geometry.Vec2{X: 150, Y: 200}, Speed: 10},
				{At: 5, Dest: geometry.Vec2{X: 150, Y: 300}, Speed: 20},
			},
		},
		{Initial: geometry.Vec2{X: 7, Y: 8}},
	}}
	var sb strings.Builder
	if err := Write(&sb, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Nodes) != 2 {
		t.Fatalf("parsed %d nodes", len(parsed.Nodes))
	}
	if parsed.Nodes[0].Initial != orig.Nodes[0].Initial {
		t.Fatalf("initial mismatch: %v", parsed.Nodes[0].Initial)
	}
	if len(parsed.Nodes[0].Cmds) != 2 {
		t.Fatalf("parsed %d commands", len(parsed.Nodes[0].Cmds))
	}
	for i, c := range parsed.Nodes[0].Cmds {
		o := orig.Nodes[0].Cmds[i]
		if c.At != o.At || c.Dest != o.Dest || c.Speed != o.Speed {
			t.Fatalf("cmd %d mismatch: %+v vs %+v", i, c, o)
		}
	}
}

func TestParseIgnoresUnrelatedLines(t *testing.T) {
	input := `
# a comment
set opt(x) 1000
$node_(0) set X_ 5.0
$node_(0) set Y_ 6.0
$node_(0) set Z_ 0.0
$ns_ at 10.0 "$god_ set-dist 1 2 1"
$ns_ at 2.0 "$node_(0) setdest 50.0 6.0 1.0"
`
	s, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 1 || len(s.Nodes[0].Cmds) != 1 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Nodes[0].Initial.X != 5 {
		t.Fatalf("initial = %v", s.Nodes[0].Initial)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"$node_(0) set X_ notanumber",
		"$node_(0) set Q_ 1.0",
		"$node_(x) set X_ 1.0",
		"$node_(0 set X_ 1.0",
		`$ns_ at abc "$node_(0) setdest 1 2 3"`,
		`$ns_ at 1.0 "$node_(0) setdest 1 2"`,
		`$ns_ at 1.0 "$node_(0) setdest a b c"`,
		"$node_(-3) set X_ 1.0",
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Fatalf("Parse(%q) should fail", in)
		}
	}
}

func TestFromSampledAddsDelta(t *testing.T) {
	st := &mobility.SampledTrace{
		Interval: 1,
		Positions: [][]geometry.Vec2{
			{{X: 0, Y: 0}, {X: 10, Y: 0}},
		},
	}
	s := FromSampled(st)
	if s.Nodes[0].Initial.X != Delta || s.Nodes[0].Initial.Y != Delta {
		t.Fatalf("Δ offset not applied: %v", s.Nodes[0].Initial)
	}
	if len(s.Nodes[0].Cmds) != 1 {
		t.Fatalf("cmds = %d", len(s.Nodes[0].Cmds))
	}
	if got := s.Nodes[0].Cmds[0].Speed; got != 10 {
		t.Fatalf("speed = %v", got)
	}
}

func TestFromSampledSkipsStationary(t *testing.T) {
	st := &mobility.SampledTrace{
		Interval: 1,
		Positions: [][]geometry.Vec2{
			{{X: 3, Y: 3}, {X: 3, Y: 3}, {X: 3, Y: 3}},
		},
	}
	s := FromSampled(st)
	if len(s.Nodes[0].Cmds) != 0 {
		t.Fatalf("stationary node emitted %d commands", len(s.Nodes[0].Cmds))
	}
}

func TestSampleReplaySemantics(t *testing.T) {
	// One node: at t=0 head to (10,0) at 1 m/s; arrival at t=10, then hold.
	s := &Script{Nodes: []NodeScript{{
		Initial: geometry.Vec2{},
		Cmds:    []SetDest{{At: 0, Dest: geometry.Vec2{X: 10}, Speed: 1}},
	}}}
	tr := s.Sample(1, 15)
	if tr.NumSamples() != 16 {
		t.Fatalf("samples = %d", tr.NumSamples())
	}
	if p := tr.Positions[0][5]; math.Abs(p.X-5) > 1e-9 {
		t.Fatalf("t=5 position = %v, want x=5", p)
	}
	if p := tr.Positions[0][12]; math.Abs(p.X-10) > 1e-9 {
		t.Fatalf("t=12 position = %v, want parked at destination", p)
	}
}

func TestSampleMidCourseRedirect(t *testing.T) {
	// Second setdest preempts the first before arrival.
	s := &Script{Nodes: []NodeScript{{
		Initial: geometry.Vec2{},
		Cmds: []SetDest{
			{At: 0, Dest: geometry.Vec2{X: 100}, Speed: 1},
			{At: 5, Dest: geometry.Vec2{X: 5, Y: 40}, Speed: 2},
		},
	}}}
	tr := s.Sample(1, 10)
	// At t=5 the node is at (5,0); it then climbs toward (5,40) at 2 m/s.
	if p := tr.Positions[0][5]; math.Abs(p.X-5) > 1e-9 || math.Abs(p.Y) > 1e-9 {
		t.Fatalf("t=5 position = %v", p)
	}
	if p := tr.Positions[0][10]; math.Abs(p.X-5) > 1e-9 || math.Abs(p.Y-10) > 1e-9 {
		t.Fatalf("t=10 position = %v, want (5,10)", p)
	}
}

func TestRoundTripSampledTrace(t *testing.T) {
	// SampledTrace → ns-2 script → parse → re-sample ≈ original (+Δ).
	orig := &mobility.SampledTrace{
		Interval: 1,
		Positions: [][]geometry.Vec2{
			{{X: 0, Y: 0}, {X: 7.5, Y: 0}, {X: 22.5, Y: 0}, {X: 30, Y: 0}},
			{{X: 50, Y: 10}, {X: 42.5, Y: 10}, {X: 35, Y: 10}, {X: 35, Y: 10}},
		},
	}
	var sb strings.Builder
	if err := Write(&sb, FromSampled(orig)); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	re := parsed.Sample(1, 3)
	for n := 0; n < orig.NumNodes(); n++ {
		for i := 0; i < orig.NumSamples(); i++ {
			want := orig.Positions[n][i]
			got := re.Positions[n][i]
			if math.Abs(got.X-want.X-Delta) > 0.01 || math.Abs(got.Y-want.Y-Delta) > 0.01 {
				t.Fatalf("node %d sample %d: got %v, want %v+Δ", n, i, got, want)
			}
		}
	}
}
