package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// PacketLog writes an ns-2-style wireless packet trace of the CPS run:
// one line per agent-level event, in the classic format
//
//	s 10.000000000 _1_ AGT --- 42 cbr 532 [1:0 0:0 32]
//	r 10.004310000 _0_ AGT --- 42 cbr 532 [1:0 0:0 29]
//	D 11.200000000 _5_ RTR no-route 43 cbr 532 [2:0 0:0 30]
//
// (event, time, node, layer, reason, uid, type, bytes, [src:port dst:port
// ttl]). The format is close enough to ns-2's old wireless trace that the
// usual awk one-liners for PDR/delay keep working.
type PacketLog struct {
	w   *bufio.Writer
	err error
}

// NewPacketLog wraps w; call Flush when the run completes.
func NewPacketLog(w io.Writer) *PacketLog {
	return &PacketLog{w: bufio.NewWriter(w)}
}

// Hooks returns netsim observers that record agent-level send/receive/drop
// events to the log. Install with World.SetHooks (or merge with your own).
func (l *PacketLog) Hooks() netsim.Hooks {
	return netsim.Hooks{
		DataSent: func(n *netsim.Node, p *netsim.Packet) {
			l.event('s', n.Kernel().Now(), int(n.ID()), "AGT", "---", p)
		},
		DataDelivered: func(n *netsim.Node, p *netsim.Packet) {
			l.event('r', n.Kernel().Now(), int(n.ID()), "AGT", "---", p)
		},
		DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
			l.event('D', n.Kernel().Now(), int(n.ID()), "RTR", sanitize(reason), p)
		},
	}
}

func sanitize(reason string) string {
	return strings.ReplaceAll(reason, " ", "_")
}

func (l *PacketLog) event(kind byte, at sim.Time, node int, layer, reason string, p *netsim.Packet) {
	if l.err != nil {
		return
	}
	_, l.err = fmt.Fprintf(l.w, "%c %.9f _%d_ %s %s %d cbr %d [%d:%d %d:%d %d]\n",
		kind, at.Seconds(), node, layer, reason,
		p.UID, p.Size, p.Src, p.Port, p.Dst, p.Port, p.TTL)
}

// Flush drains buffered lines and reports the first write error, if any.
func (l *PacketLog) Flush() error {
	if l.err != nil {
		return l.err
	}
	return l.w.Flush()
}

// PacketLogSummary aggregates a packet trace back into the paper's
// metrics: packets sent, received and dropped per source node.
type PacketLogSummary struct {
	Sent     map[int]int
	Received map[int]int
	Dropped  map[int]int
	// DelaySum accumulates end-to-end delay per source, computable because
	// uids are unique; MeanDelay derives from it.
	delayBySrc map[int]float64
	sentAt     map[uint64]float64
	srcOf      map[uint64]int
}

// SummarizePacketLog parses a packet trace produced by PacketLog.
func SummarizePacketLog(r io.Reader) (*PacketLogSummary, error) {
	s := &PacketLogSummary{
		Sent:       make(map[int]int),
		Received:   make(map[int]int),
		Dropped:    make(map[int]int),
		delayBySrc: make(map[int]float64),
		sentAt:     make(map[uint64]float64),
		srcOf:      make(map[uint64]int),
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 8 {
			return nil, fmt.Errorf("trace: line %d: short event %q", lineNo, line)
		}
		at, err1 := strconv.ParseFloat(fields[1], 64)
		uid, err2 := strconv.ParseUint(fields[5], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("trace: line %d: bad numbers in %q", lineNo, line)
		}
		src, err := parseEndpoint(fields[8])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		switch fields[0] {
		case "s":
			s.Sent[src]++
			s.sentAt[uid] = at
			s.srcOf[uid] = src
		case "r":
			s.Received[src]++
			if t0, ok := s.sentAt[uid]; ok {
				s.delayBySrc[src] += at - t0
			}
		case "D":
			s.Dropped[src]++
		default:
			return nil, fmt.Errorf("trace: line %d: unknown event %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseEndpoint(field string) (int, error) {
	field = strings.TrimPrefix(field, "[")
	host, _, ok := strings.Cut(field, ":")
	if !ok {
		return 0, fmt.Errorf("malformed endpoint %q", field)
	}
	return strconv.Atoi(host)
}

// PDR reports delivered/sent for one source.
func (s *PacketLogSummary) PDR(src int) float64 {
	if s.Sent[src] == 0 {
		return 0
	}
	return float64(s.Received[src]) / float64(s.Sent[src])
}

// MeanDelay reports the average end-to-end delay in seconds for packets
// from src.
func (s *PacketLogSummary) MeanDelay(src int) float64 {
	if s.Received[src] == 0 {
		return 0
	}
	return s.delayBySrc[src] / float64(s.Received[src])
}
