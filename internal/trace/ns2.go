// Package trace reads and writes the ns-2 wireless mobility scenario
// format, preserving the paper's BA→CPS decoupling: the Behavioural
// Analyzer exports movement patterns "in a textual format compatible with
// the CPS's language" (§III), and the CPS replays them.
//
// The format is the classical ns-2 one (Fig. 3-b of the paper):
//
//	$node_(3) set X_ 662.5
//	$node_(3) set Y_ 50.0
//	$node_(3) set Z_ 0.0
//	$ns_ at 1.00 "$node_(3) setdest 670.0 50.0 7.50"
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
)

// SetDest is one movement command: at time At the node turns toward Dest
// and travels at Speed (m/s) until it arrives or receives another command.
type SetDest struct {
	At    float64
	Dest  geometry.Vec2
	Speed float64
}

// NodeScript is the full movement program of one node.
type NodeScript struct {
	Initial geometry.Vec2
	Cmds    []SetDest
}

// Script is an ns-2 mobility scenario: one script per node.
type Script struct {
	Nodes []NodeScript
}

// Delta is added to exported coordinates, mirroring the paper's Δ parameter
// ("used to avoid an apparent bug in ns-2, which fires strange errors when
// the absolute position is 0", footnote 3).
const Delta = 0.5

// FromSampled converts a sampled trace into an ns-2 script by emitting one
// setdest per sample interval, with the speed that covers the displacement
// in exactly one interval. Stationary intervals emit no command.
func FromSampled(t *mobility.SampledTrace) *Script {
	s := &Script{Nodes: make([]NodeScript, t.NumNodes())}
	for n := 0; n < t.NumNodes(); n++ {
		samples := t.Positions[n]
		if len(samples) == 0 {
			continue
		}
		ns := NodeScript{Initial: samples[0].Add(geometry.Vec2{X: Delta, Y: Delta})}
		for i := 1; i < len(samples); i++ {
			prev, cur := samples[i-1], samples[i]
			d := prev.Dist(cur)
			if d == 0 {
				continue
			}
			ns.Cmds = append(ns.Cmds, SetDest{
				At:    float64(i-1) * t.Interval,
				Dest:  cur.Add(geometry.Vec2{X: Delta, Y: Delta}),
				Speed: d / t.Interval,
			})
		}
		s.Nodes[n] = ns
	}
	return s
}

// Sample replays the script's setdest semantics and produces a sampled
// trace with the given interval and duration (seconds).
func (s *Script) Sample(interval, duration float64) *mobility.SampledTrace {
	samples := mobility.SampleCount(duration, interval)
	out := &mobility.SampledTrace{
		Interval:  interval,
		Positions: make([][]geometry.Vec2, len(s.Nodes)),
	}
	for n, script := range s.Nodes {
		out.Positions[n] = replay(script, interval, samples)
	}
	return out
}

func replay(script NodeScript, interval float64, samples int) []geometry.Vec2 {
	pos := script.Initial
	cmds := append([]SetDest(nil), script.Cmds...)
	sort.SliceStable(cmds, func(i, j int) bool { return cmds[i].At < cmds[j].At })
	out := make([]geometry.Vec2, 0, samples)
	var active *SetDest
	next := 0
	now := 0.0
	advance := func(until float64) {
		for now < until {
			// Activate any command due.
			if next < len(cmds) && cmds[next].At <= now {
				active = &cmds[next]
				next++
				continue
			}
			stepEnd := until
			if next < len(cmds) && cmds[next].At < stepEnd {
				stepEnd = cmds[next].At
			}
			dt := stepEnd - now
			if active != nil {
				d := pos.Dist(active.Dest)
				if d > 0 && active.Speed > 0 {
					travel := active.Speed * dt
					if travel >= d {
						pos = active.Dest
						active = nil
					} else {
						dir := active.Dest.Sub(pos).Scale(1 / d)
						pos = pos.Add(dir.Scale(travel))
					}
				} else {
					active = nil
				}
			}
			now = stepEnd
		}
	}
	for i := 0; i < samples; i++ {
		advance(float64(i) * interval)
		out = append(out, pos)
	}
	return out
}

// Write emits the script in ns-2 scenario syntax.
func Write(w io.Writer, s *Script) error {
	bw := bufio.NewWriter(w)
	for i, n := range s.Nodes {
		fmt.Fprintf(bw, "$node_(%d) set X_ %.4f\n", i, n.Initial.X)
		fmt.Fprintf(bw, "$node_(%d) set Y_ %.4f\n", i, n.Initial.Y)
		fmt.Fprintf(bw, "$node_(%d) set Z_ 0.0000\n", i)
	}
	for i, n := range s.Nodes {
		for _, c := range n.Cmds {
			fmt.Fprintf(bw, "$ns_ at %.4f \"$node_(%d) setdest %.4f %.4f %.4f\"\n",
				c.At, i, c.Dest.X, c.Dest.Y, c.Speed)
		}
	}
	return bw.Flush()
}

// MaxNodes bounds how many node slots a parsed scenario may address. Node
// IDs index into a dense slice, so without the bound a single crafted line
// ($node_(999999999) ...) would allocate gigabytes — a robustness hole the
// fuzz targets exercise. Real scenario files use small dense IDs.
const MaxNodes = 1 << 20

// Parse reads an ns-2 mobility scenario back into a Script. Unknown lines
// are ignored (real scenario files mix mobility with other OTcl commands);
// malformed mobility lines are errors.
func Parse(r io.Reader) (*Script, error) {
	s := &Script{}
	ensure := func(id int) error {
		if id >= MaxNodes {
			return fmt.Errorf("node id %d exceeds the %d-node limit", id, MaxNodes)
		}
		for len(s.Nodes) <= id {
			s.Nodes = append(s.Nodes, NodeScript{})
		}
		return nil
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "$node_("):
			id, rest, err := parseNodeRef(line)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			fields := strings.Fields(rest)
			if len(fields) != 3 || fields[0] != "set" {
				return nil, fmt.Errorf("trace: line %d: malformed set command %q", lineNo, line)
			}
			val, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad coordinate: %w", lineNo, err)
			}
			if err := ensure(id); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			switch fields[1] {
			case "X_":
				s.Nodes[id].Initial.X = val
			case "Y_":
				s.Nodes[id].Initial.Y = val
			case "Z_":
				// Ignored: CAVENET is planar.
			default:
				return nil, fmt.Errorf("trace: line %d: unknown attribute %q", lineNo, fields[1])
			}
		case strings.HasPrefix(line, "$ns_ at "):
			cmd, err := parseAt(line)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			if cmd != nil {
				if err := ensure(cmd.node); err != nil {
					return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
				}
				s.Nodes[cmd.node].Cmds = append(s.Nodes[cmd.node].Cmds, cmd.sd)
			}
		default:
			// Ignore unrelated OTcl.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return s, nil
}

func parseNodeRef(line string) (id int, rest string, err error) {
	end := strings.Index(line, ")")
	if end < 0 {
		return 0, "", fmt.Errorf("malformed node reference %q", line)
	}
	id, err = strconv.Atoi(line[len("$node_("):end])
	if err != nil {
		return 0, "", fmt.Errorf("bad node id: %w", err)
	}
	if id < 0 {
		return 0, "", fmt.Errorf("negative node id %d", id)
	}
	return id, strings.TrimSpace(line[end+1:]), nil
}

type atCmd struct {
	node int
	sd   SetDest
}

func parseAt(line string) (*atCmd, error) {
	rest := strings.TrimPrefix(line, "$ns_ at ")
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, fmt.Errorf("malformed at command %q", line)
	}
	at, err := strconv.ParseFloat(rest[:sp], 64)
	if err != nil {
		return nil, fmt.Errorf("bad time: %w", err)
	}
	body := strings.TrimSpace(rest[sp+1:])
	body = strings.Trim(body, `"`)
	if !strings.HasPrefix(body, "$node_(") {
		// Some other scheduled OTcl command; skip.
		return nil, nil
	}
	id, tail, err := parseNodeRef(body)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(tail)
	if len(fields) != 4 || fields[0] != "setdest" {
		return nil, fmt.Errorf("malformed setdest %q", body)
	}
	x, err1 := strconv.ParseFloat(fields[1], 64)
	y, err2 := strconv.ParseFloat(fields[2], 64)
	v, err3 := strconv.ParseFloat(fields[3], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("bad setdest numbers %q", body)
	}
	return &atCmd{node: id, sd: SetDest{At: at, Dest: geometry.Vec2{X: x, Y: y}, Speed: v}}, nil
}
