// Package trace reads and writes the ns-2 wireless mobility scenario
// format, preserving the paper's BA→CPS decoupling: the Behavioural
// Analyzer exports movement patterns "in a textual format compatible with
// the CPS's language" (§III), and the CPS replays them.
//
// The format is the classical ns-2 one (Fig. 3-b of the paper):
//
//	$node_(3) set X_ 662.5
//	$node_(3) set Y_ 50.0
//	$node_(3) set Z_ 0.0
//	$ns_ at 1.00 "$node_(3) setdest 670.0 50.0 7.50"
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
)

// SetDest is one movement command: at time At the node turns toward Dest
// and travels at Speed (m/s) until it arrives or receives another command.
type SetDest struct {
	At    float64
	Dest  geometry.Vec2
	Speed float64
}

// NodeScript is the full movement program of one node.
type NodeScript struct {
	Initial geometry.Vec2
	Cmds    []SetDest
}

// Script is an ns-2 mobility scenario: one script per node.
type Script struct {
	Nodes []NodeScript
}

// Delta is added to exported coordinates, mirroring the paper's Δ parameter
// ("used to avoid an apparent bug in ns-2, which fires strange errors when
// the absolute position is 0", footnote 3).
const Delta = 0.5

// FromSampled converts a sampled trace into an ns-2 script by emitting one
// setdest per sample interval, with the speed that covers the displacement
// in exactly one interval. Stationary intervals emit no command.
func FromSampled(t *mobility.SampledTrace) *Script {
	s := &Script{Nodes: make([]NodeScript, t.NumNodes())}
	for n := 0; n < t.NumNodes(); n++ {
		samples := t.Positions[n]
		if len(samples) == 0 {
			continue
		}
		ns := NodeScript{Initial: samples[0].Add(geometry.Vec2{X: Delta, Y: Delta})}
		for i := 1; i < len(samples); i++ {
			prev, cur := samples[i-1], samples[i]
			d := prev.Dist(cur)
			if d == 0 {
				continue
			}
			ns.Cmds = append(ns.Cmds, SetDest{
				At:    float64(i-1) * t.Interval,
				Dest:  cur.Add(geometry.Vec2{X: Delta, Y: Delta}),
				Speed: d / t.Interval,
			})
		}
		s.Nodes[n] = ns
	}
	return s
}

// Sample replays the script's setdest semantics and produces a sampled
// trace with the given interval and duration (seconds). It is the
// materialized view of Source — both pull the same per-node replayers, so
// running on the trace and running on the source are bit-identical.
func (s *Script) Sample(interval, duration float64) *mobility.SampledTrace {
	if interval <= 0 {
		// The old code silently produced garbage sample counts here, so
		// failing loudly at the cause is the kinder contract for an API
		// without an error return; ImportNS2 validates before calling.
		panic(fmt.Sprintf("trace: Sample: non-positive sample interval %v", interval))
	}
	if len(s.Nodes) == 0 {
		// Node-free scripts sample to an empty trace.
		return &mobility.SampledTrace{
			Interval:  interval,
			Positions: make([][]geometry.Vec2, 0),
		}
	}
	src, err := s.Source(interval, duration)
	if err != nil {
		panic(fmt.Sprintf("trace: Sample: %v", err))
	}
	return mobility.Record(src)
}

// Source replays the script as a streaming mobility source: per-node
// setdest playback state is O(commands) — the script itself — and only
// two interpolation rows are retained, instead of the O(nodes × samples)
// matrix Sample materializes.
func (s *Script) Source(interval, duration float64) (*mobility.Stream, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("trace: non-positive sample interval %v", interval)
	}
	replays := make([]*nodeReplay, len(s.Nodes))
	for n, script := range s.Nodes {
		replays[n] = newNodeReplay(script)
	}
	return mobility.NewStream(mobility.StreamConfig{
		Nodes:    len(s.Nodes),
		Interval: interval,
		Samples:  mobility.SampleCount(duration, interval),
		Fill: func(k int, row []geometry.Vec2) {
			at := float64(k) * interval
			for n, r := range replays {
				r.advance(at)
				row[n] = r.pos
			}
		},
	})
}

// nodeReplay is the incremental setdest interpreter for one node: the
// current position plus a cursor into the time-sorted command list.
type nodeReplay struct {
	pos    geometry.Vec2
	cmds   []SetDest
	active *SetDest
	next   int
	now    float64
}

func newNodeReplay(script NodeScript) *nodeReplay {
	cmds := append([]SetDest(nil), script.Cmds...)
	sort.SliceStable(cmds, func(i, j int) bool { return cmds[i].At < cmds[j].At })
	return &nodeReplay{pos: script.Initial, cmds: cmds}
}

// advance plays the node forward to the given time (non-decreasing across
// calls).
func (r *nodeReplay) advance(until float64) {
	for r.now < until {
		// Activate any command due.
		if r.next < len(r.cmds) && r.cmds[r.next].At <= r.now {
			r.active = &r.cmds[r.next]
			r.next++
			continue
		}
		stepEnd := until
		if r.next < len(r.cmds) && r.cmds[r.next].At < stepEnd {
			stepEnd = r.cmds[r.next].At
		}
		dt := stepEnd - r.now
		if r.active != nil {
			d := r.pos.Dist(r.active.Dest)
			if d > 0 && r.active.Speed > 0 {
				travel := r.active.Speed * dt
				if travel >= d {
					r.pos = r.active.Dest
					r.active = nil
				} else {
					dir := r.active.Dest.Sub(r.pos).Scale(1 / d)
					r.pos = r.pos.Add(dir.Scale(travel))
				}
			} else {
				r.active = nil
			}
		}
		r.now = stepEnd
	}
}

// Write emits the script in ns-2 scenario syntax.
func Write(w io.Writer, s *Script) error {
	bw := bufio.NewWriter(w)
	for i, n := range s.Nodes {
		fmt.Fprintf(bw, "$node_(%d) set X_ %.4f\n", i, n.Initial.X)
		fmt.Fprintf(bw, "$node_(%d) set Y_ %.4f\n", i, n.Initial.Y)
		fmt.Fprintf(bw, "$node_(%d) set Z_ 0.0000\n", i)
	}
	for i, n := range s.Nodes {
		for _, c := range n.Cmds {
			fmt.Fprintf(bw, "$ns_ at %.4f \"$node_(%d) setdest %.4f %.4f %.4f\"\n",
				c.At, i, c.Dest.X, c.Dest.Y, c.Speed)
		}
	}
	return bw.Flush()
}

// MaxNodes bounds how many node slots a parsed scenario may address. Node
// IDs index into a dense slice, so without the bound a single crafted line
// ($node_(999999999) ...) would allocate gigabytes — a robustness hole the
// fuzz targets exercise. Real scenario files use small dense IDs.
const MaxNodes = 1 << 20

// Parse reads an ns-2 mobility scenario back into a Script. Unknown lines
// are ignored (real scenario files mix mobility with other OTcl commands);
// malformed mobility lines are errors.
func Parse(r io.Reader) (*Script, error) {
	s := &Script{}
	ensure := func(id int) error {
		if id >= MaxNodes {
			return fmt.Errorf("node id %d exceeds the %d-node limit", id, MaxNodes)
		}
		for len(s.Nodes) <= id {
			s.Nodes = append(s.Nodes, NodeScript{})
		}
		return nil
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "$node_("):
			id, rest, err := parseNodeRef(line)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			fields := strings.Fields(rest)
			if len(fields) != 3 || fields[0] != "set" {
				return nil, fmt.Errorf("trace: line %d: malformed set command %q", lineNo, line)
			}
			val, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad coordinate: %w", lineNo, err)
			}
			if err := ensure(id); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			switch fields[1] {
			case "X_":
				s.Nodes[id].Initial.X = val
			case "Y_":
				s.Nodes[id].Initial.Y = val
			case "Z_":
				// Ignored: CAVENET is planar.
			default:
				return nil, fmt.Errorf("trace: line %d: unknown attribute %q", lineNo, fields[1])
			}
		case strings.HasPrefix(line, "$ns_ at "):
			cmd, err := parseAt(line)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			if cmd != nil {
				if err := ensure(cmd.node); err != nil {
					return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
				}
				s.Nodes[cmd.node].Cmds = append(s.Nodes[cmd.node].Cmds, cmd.sd)
			}
		default:
			// Ignore unrelated OTcl.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return s, nil
}

func parseNodeRef(line string) (id int, rest string, err error) {
	end := strings.Index(line, ")")
	if end < 0 {
		return 0, "", fmt.Errorf("malformed node reference %q", line)
	}
	id, err = strconv.Atoi(line[len("$node_("):end])
	if err != nil {
		return 0, "", fmt.Errorf("bad node id: %w", err)
	}
	if id < 0 {
		return 0, "", fmt.Errorf("negative node id %d", id)
	}
	return id, strings.TrimSpace(line[end+1:]), nil
}

type atCmd struct {
	node int
	sd   SetDest
}

func parseAt(line string) (*atCmd, error) {
	rest := strings.TrimPrefix(line, "$ns_ at ")
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, fmt.Errorf("malformed at command %q", line)
	}
	at, err := strconv.ParseFloat(rest[:sp], 64)
	if err != nil {
		return nil, fmt.Errorf("bad time: %w", err)
	}
	body := strings.TrimSpace(rest[sp+1:])
	body = strings.Trim(body, `"`)
	if !strings.HasPrefix(body, "$node_(") {
		// Some other scheduled OTcl command; skip.
		return nil, nil
	}
	id, tail, err := parseNodeRef(body)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(tail)
	if len(fields) != 4 || fields[0] != "setdest" {
		return nil, fmt.Errorf("malformed setdest %q", body)
	}
	x, err1 := strconv.ParseFloat(fields[1], 64)
	y, err2 := strconv.ParseFloat(fields[2], 64)
	v, err3 := strconv.ParseFloat(fields[3], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("bad setdest numbers %q", body)
	}
	return &atCmd{node: id, sd: SetDest{At: at, Dest: geometry.Vec2{X: x, Y: y}, Speed: v}}, nil
}
