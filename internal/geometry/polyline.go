package geometry

import (
	"fmt"
	"math"
	"sort"
)

// Polyline places a lane along a chain of straight segments — the
// "graph-segment" placement of the urban road network: a street between
// two intersections is one polyline (usually a single segment), and the
// along-lane CA coordinate advances through the vertices in order.
//
// Build one with NewPolyline so the cumulative arc lengths are computed
// once; the zero value is not usable.
type Polyline struct {
	points []Vec2
	// cum[i] is the arc length from points[0] to points[i]; cum[len-1] is
	// the total length.
	cum []float64
}

var _ LanePlacement = Polyline{}

// NewPolyline builds a placement through the given vertices. At least two
// vertices are required and consecutive vertices must not coincide (a
// zero-length segment has no heading).
func NewPolyline(points ...Vec2) (Polyline, error) {
	if len(points) < 2 {
		return Polyline{}, fmt.Errorf("geometry: polyline needs >= 2 points, have %d", len(points))
	}
	cum := make([]float64, len(points))
	for i := 1; i < len(points); i++ {
		seg := points[i].Dist(points[i-1])
		if seg == 0 {
			return Polyline{}, fmt.Errorf("geometry: polyline has coincident vertices %d and %d at %v", i-1, i, points[i])
		}
		cum[i] = cum[i-1] + seg
	}
	return Polyline{points: append([]Vec2(nil), points...), cum: cum}, nil
}

// Length reports the total arc length of the polyline.
func (p Polyline) Length() float64 { return p.cum[len(p.cum)-1] }

// segmentAt locates the segment containing arc coordinate x (clamped to
// the polyline) and the offset into it.
func (p Polyline) segmentAt(x float64) (i int, off float64) {
	if x <= 0 {
		return 0, 0
	}
	if total := p.Length(); x >= total {
		return len(p.points) - 2, total - p.cum[len(p.points)-2]
	}
	// First vertex strictly beyond x starts the segment after ours.
	i = sort.SearchFloat64s(p.cum, x)
	if p.cum[i] > x || i == len(p.cum)-1 {
		i--
	}
	return i, x - p.cum[i]
}

// Place implements LanePlacement. Coordinates outside [0, Length] clamp to
// the endpoints, mirroring how an open-boundary lane keeps vehicles on the
// street.
func (p Polyline) Place(x float64) Vec2 {
	i, off := p.segmentAt(x)
	a, b := p.points[i], p.points[i+1]
	t := off / b.Dist(a)
	return a.Add(b.Sub(a).Scale(t))
}

// Heading implements LanePlacement.
func (p Polyline) Heading(x float64) float64 {
	i, _ := p.segmentAt(x)
	d := p.points[i+1].Sub(p.points[i])
	return math.Atan2(d.Y, d.X)
}
