// Package geometry provides the planar primitives CAVENET uses to place
// lanes in the simulation area: 2-D vectors and the affine lane
// transformations of §III-D of the paper.
//
// A lane is simulated in its own 1-D coordinate system; an affine transform
// A(k) maps the relative coordinate vector (X, Y, 1) of a vehicle on lane k
// to absolute plane coordinates used when exporting ns-2 traces.
package geometry

import (
	"fmt"
	"math"
)

// Vec2 is a point or displacement in the plane, in meters.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return math.Hypot(v.X-w.X, v.Y-w.Y) }

// String formats the vector with centimeter precision.
func (v Vec2) String() string { return fmt.Sprintf("(%.2f, %.2f)", v.X, v.Y) }

// Affine is a 2-D affine transformation stored as the top two rows of a
// homogeneous 3×3 matrix:
//
//	| A B C |   | x |
//	| D E F | · | y |
//	| 0 0 1 |   | 1 |
type Affine struct {
	A, B, C float64
	D, E, F float64
}

// Identity returns the identity transform.
func Identity() Affine { return Affine{A: 1, E: 1} }

// Translate returns a transform that shifts by (tx, ty).
func Translate(tx, ty float64) Affine { return Affine{A: 1, C: tx, E: 1, F: ty} }

// Rotate returns a rotation by theta radians about the origin.
func Rotate(theta float64) Affine {
	s, c := math.Sincos(theta)
	return Affine{A: c, B: -s, D: s, E: c}
}

// Scaling returns a transform that scales x by sx and y by sy.
func Scaling(sx, sy float64) Affine { return Affine{A: sx, E: sy} }

// ReflectX returns a reflection across the y axis (x -> -x). Combined with a
// translation this places an opposite-direction lane, as in Fig. 3 of the
// paper.
func ReflectX() Affine { return Affine{A: -1, E: 1} }

// SwapXY returns the transform that exchanges the axes, used by the paper's
// third-lane example where the lane runs vertically.
func SwapXY() Affine { return Affine{B: 1, D: 1} }

// Apply maps point p through the transform.
func (t Affine) Apply(p Vec2) Vec2 {
	return Vec2{
		X: t.A*p.X + t.B*p.Y + t.C,
		Y: t.D*p.X + t.E*p.Y + t.F,
	}
}

// Compose returns the transform equivalent to applying u first, then t
// (i.e. the matrix product t·u).
func (t Affine) Compose(u Affine) Affine {
	return Affine{
		A: t.A*u.A + t.B*u.D,
		B: t.A*u.B + t.B*u.E,
		C: t.A*u.C + t.B*u.F + t.C,
		D: t.D*u.A + t.E*u.D,
		E: t.D*u.B + t.E*u.E,
		F: t.D*u.C + t.E*u.F + t.F,
	}
}

// Det returns the determinant of the linear part; zero means the transform
// collapses the plane and is not invertible.
func (t Affine) Det() float64 { return t.A*t.E - t.B*t.D }

// Invert returns the inverse transform. It reports ok=false when the
// transform is singular.
func (t Affine) Invert() (inv Affine, ok bool) {
	det := t.Det()
	if math.Abs(det) < 1e-12 {
		return Affine{}, false
	}
	id := 1 / det
	inv = Affine{
		A: t.E * id,
		B: -t.B * id,
		D: -t.D * id,
		E: t.A * id,
	}
	inv.C = -(inv.A*t.C + inv.B*t.F)
	inv.F = -(inv.D*t.C + inv.E*t.F)
	return inv, true
}

// LanePlacement maps a 1-D lane coordinate (meters along the lane) to a
// plane position. It abstracts the two lane shapes CAVENET supports: the
// original straight line (affine transform, Fig. 3) and the improved
// circuit.
type LanePlacement interface {
	// Place maps the along-lane coordinate x, in meters, to absolute plane
	// coordinates.
	Place(x float64) Vec2
	// Heading reports the direction of travel, in radians, at coordinate x.
	Heading(x float64) float64
}

// Line places a lane as a straight segment via an affine transform applied
// to (x, 0).
type Line struct {
	Transform Affine
}

var _ LanePlacement = Line{}

// Place implements LanePlacement.
func (l Line) Place(x float64) Vec2 { return l.Transform.Apply(Vec2{X: x}) }

// Heading implements LanePlacement.
func (l Line) Heading(float64) float64 {
	return math.Atan2(l.Transform.D, l.Transform.A)
}

// Ring places a lane on a circle of the given circumference — the paper's
// "improvement": vehicles wrap around smoothly so head and tail of the lane
// stay within radio reach instead of teleporting across the area.
type Ring struct {
	Center        Vec2
	Circumference float64
	// RadialOffset displaces the circle radius without changing the
	// along-lane coordinate scale, so parallel lanes of one multi-lane
	// circuit share a circumference (and hence a CA length) while staying a
	// few meters apart in the plane.
	RadialOffset float64
}

var _ LanePlacement = Ring{}

// Radius reports the circle radius implied by the circumference, including
// the radial offset.
func (r Ring) Radius() float64 { return r.Circumference/(2*math.Pi) + r.RadialOffset }

// Place implements LanePlacement.
func (r Ring) Place(x float64) Vec2 {
	theta := 2 * math.Pi * x / r.Circumference
	rad := r.Radius()
	return Vec2{
		X: r.Center.X + rad*math.Cos(theta),
		Y: r.Center.Y + rad*math.Sin(theta),
	}
}

// Heading implements LanePlacement.
func (r Ring) Heading(x float64) float64 {
	theta := 2 * math.Pi * x / r.Circumference
	return theta + math.Pi/2
}
