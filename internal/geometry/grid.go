package geometry

import "fmt"

// GridSegment is one directed street of a Manhattan road grid: a straight
// lane from intersection From to intersection To.
type GridSegment struct {
	From, To int  // intersection indices into RoadGrid.Intersections
	A, B     Vec2 // plane endpoints (A at the From intersection)
}

// Length reports the street length in meters.
func (s GridSegment) Length() float64 { return s.B.Dist(s.A) }

// RoadGrid is the layout of a Manhattan-style urban grid: Rows × Cols
// signalizable intersections joined by one-way streets. It is pure
// geometry — the CA layer turns each segment into a NaS lane and each
// intersection into a transfer point.
type RoadGrid struct {
	Rows, Cols  int
	BlockMeters float64
	// Intersections[r*Cols+c] is the plane position of intersection (r, c).
	Intersections []Vec2
	// Segments are the directed streets. Outgoing[i] indexes the segments
	// leaving intersection i; every intersection has at least one.
	Segments []GridSegment
	Outgoing [][]int
}

// Intersection reports the index of intersection (r, c).
func (g *RoadGrid) Intersection(r, c int) int { return r*g.Cols + c }

// Manhattan generates a Rows × Cols one-way grid with blockMeters between
// adjacent intersections, anchored at origin (intersection (0,0)).
//
// Directions follow the classic alternating one-way scheme — interior row
// r runs east when r is even, west otherwise; interior column c runs
// north when c is odd, south otherwise — except that the boundary is
// forced into a counterclockwise ring (row 0 east, column Cols-1 north,
// row Rows-1 west, column 0 south). The ring guarantees every
// intersection keeps an outgoing street, and every interior one-way
// street both drains to and is fed from the ring, so the street graph is
// strongly connected: no vehicle can ever be trapped.
func Manhattan(rows, cols int, blockMeters float64, origin Vec2) (*RoadGrid, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("geometry: manhattan grid needs >= 2 rows and cols, have %dx%d", rows, cols)
	}
	if blockMeters <= 0 {
		return nil, fmt.Errorf("geometry: non-positive block length %v", blockMeters)
	}
	g := &RoadGrid{Rows: rows, Cols: cols, BlockMeters: blockMeters}
	g.Intersections = make([]Vec2, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.Intersections[g.Intersection(r, c)] = Vec2{
				X: origin.X + float64(c)*blockMeters,
				Y: origin.Y + float64(r)*blockMeters,
			}
		}
	}
	g.Outgoing = make([][]int, rows*cols)
	addSeg := func(from, to int) {
		g.Outgoing[from] = append(g.Outgoing[from], len(g.Segments))
		g.Segments = append(g.Segments, GridSegment{
			From: from, To: to,
			A: g.Intersections[from], B: g.Intersections[to],
		})
	}
	// Horizontal streets: one segment per block of each row.
	for r := 0; r < rows; r++ {
		east := r%2 == 0
		switch r {
		case 0:
			east = true
		case rows - 1:
			east = false
		}
		for c := 0; c < cols-1; c++ {
			a, b := g.Intersection(r, c), g.Intersection(r, c+1)
			if east {
				addSeg(a, b)
			} else {
				addSeg(b, a)
			}
		}
	}
	// Vertical streets: one segment per block of each column.
	for c := 0; c < cols; c++ {
		north := c%2 == 1
		switch c {
		case 0:
			north = false
		case cols - 1:
			north = true
		}
		for r := 0; r < rows-1; r++ {
			a, b := g.Intersection(r, c), g.Intersection(r+1, c)
			if north {
				addSeg(a, b)
			} else {
				addSeg(b, a)
			}
		}
	}
	return g, nil
}
