package geometry

import (
	"math"
	"testing"
)

func TestPolylinePlaceAndClamp(t *testing.T) {
	p, err := NewPolyline(Vec2{0, 0}, Vec2{10, 0}, Vec2{10, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Length(); got != 15 {
		t.Fatalf("length = %v, want 15", got)
	}
	cases := []struct {
		x    float64
		want Vec2
	}{
		{-3, Vec2{0, 0}},  // clamp low
		{0, Vec2{0, 0}},   // first vertex
		{4, Vec2{4, 0}},   // inside first segment
		{10, Vec2{10, 0}}, // interior vertex
		{12, Vec2{10, 2}}, // inside second segment
		{15, Vec2{10, 5}}, // last vertex
		{99, Vec2{10, 5}}, // clamp high
	}
	for _, c := range cases {
		if got := p.Place(c.x); got.Dist(c.want) > 1e-12 {
			t.Errorf("Place(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if h := p.Heading(4); h != 0 {
		t.Errorf("Heading(4) = %v, want 0", h)
	}
	if h := p.Heading(12); math.Abs(h-math.Pi/2) > 1e-12 {
		t.Errorf("Heading(12) = %v, want pi/2", h)
	}
}

func TestPolylineRejectsDegenerate(t *testing.T) {
	if _, err := NewPolyline(Vec2{1, 1}); err == nil {
		t.Error("single-point polyline accepted")
	}
	if _, err := NewPolyline(Vec2{0, 0}, Vec2{0, 0}, Vec2{1, 0}); err == nil {
		t.Error("coincident-vertex polyline accepted")
	}
}

// TestManhattanStronglyConnected proves the direction scheme's promise: on
// every grid size, every intersection can reach every other by following
// one-way streets, so no vehicle is ever trapped.
func TestManhattanStronglyConnected(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {2, 5}, {3, 3}, {4, 3}, {5, 5}, {2, 3}, {3, 2}} {
		rows, cols := dims[0], dims[1]
		g, err := Manhattan(rows, cols, 150, Vec2{})
		if err != nil {
			t.Fatal(err)
		}
		n := rows * cols
		if len(g.Intersections) != n {
			t.Fatalf("%dx%d: %d intersections", rows, cols, len(g.Intersections))
		}
		wantSegs := rows*(cols-1) + cols*(rows-1)
		if len(g.Segments) != wantSegs {
			t.Fatalf("%dx%d: %d segments, want %d", rows, cols, len(g.Segments), wantSegs)
		}
		fwd := make([][]int, n)
		rev := make([][]int, n)
		indeg := make([]int, n)
		for _, s := range g.Segments {
			fwd[s.From] = append(fwd[s.From], s.To)
			rev[s.To] = append(rev[s.To], s.From)
			indeg[s.To]++
		}
		for i := 0; i < n; i++ {
			if len(g.Outgoing[i]) == 0 {
				t.Errorf("%dx%d: intersection %d has no outgoing street", rows, cols, i)
			}
			if indeg[i] == 0 {
				t.Errorf("%dx%d: intersection %d has no incoming street", rows, cols, i)
			}
		}
		reach := func(adj [][]int) int {
			seen := make([]bool, n)
			stack := []int{0}
			seen[0] = true
			count := 1
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, u := range adj[v] {
					if !seen[u] {
						seen[u] = true
						count++
						stack = append(stack, u)
					}
				}
			}
			return count
		}
		if got := reach(fwd); got != n {
			t.Errorf("%dx%d: only %d/%d intersections reachable from 0", rows, cols, got, n)
		}
		if got := reach(rev); got != n {
			t.Errorf("%dx%d: only %d/%d intersections reach 0", rows, cols, got, n)
		}
	}
}

func TestManhattanRejectsDegenerate(t *testing.T) {
	if _, err := Manhattan(1, 5, 100, Vec2{}); err == nil {
		t.Error("1-row grid accepted")
	}
	if _, err := Manhattan(3, 3, 0, Vec2{}); err == nil {
		t.Error("zero block length accepted")
	}
}
