package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func vecAlmostEq(a, b Vec2) bool { return almostEq(a.X, b.X) && almostEq(a.Y, b.Y) }

func TestVecOps(t *testing.T) {
	v := Vec2{3, 4}
	w := Vec2{1, -2}
	if got := v.Add(w); !vecAlmostEq(got, Vec2{4, 2}) {
		t.Fatalf("Add = %v", got)
	}
	if got := v.Sub(w); !vecAlmostEq(got, Vec2{2, 6}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Scale(2); !vecAlmostEq(got, Vec2{6, 8}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Dot(w); !almostEq(got, -5) {
		t.Fatalf("Dot = %v", got)
	}
	if got := v.Norm(); !almostEq(got, 5) {
		t.Fatalf("Norm = %v", got)
	}
	if got := v.Dist(Vec2{0, 0}); !almostEq(got, 5) {
		t.Fatalf("Dist = %v", got)
	}
	if got := v.String(); got != "(3.00, 4.00)" {
		t.Fatalf("String = %q", got)
	}
}

func TestAffineIdentity(t *testing.T) {
	p := Vec2{2, 3}
	if got := Identity().Apply(p); !vecAlmostEq(got, p) {
		t.Fatalf("Identity.Apply = %v", got)
	}
}

func TestAffineConstructors(t *testing.T) {
	if got := Translate(5, -1).Apply(Vec2{1, 1}); !vecAlmostEq(got, Vec2{6, 0}) {
		t.Fatalf("Translate = %v", got)
	}
	if got := Rotate(math.Pi / 2).Apply(Vec2{1, 0}); !vecAlmostEq(got, Vec2{0, 1}) {
		t.Fatalf("Rotate = %v", got)
	}
	if got := Scaling(2, 3).Apply(Vec2{1, 1}); !vecAlmostEq(got, Vec2{2, 3}) {
		t.Fatalf("Scaling = %v", got)
	}
	if got := ReflectX().Apply(Vec2{2, 3}); !vecAlmostEq(got, Vec2{-2, 3}) {
		t.Fatalf("ReflectX = %v", got)
	}
	if got := SwapXY().Apply(Vec2{2, 3}); !vecAlmostEq(got, Vec2{3, 2}) {
		t.Fatalf("SwapXY = %v", got)
	}
}

// TestPaperThirdLane reproduces the paper's §III-D example: the third lane
// runs vertically via the transform [[0 1 XS/2][1 0 Δ][0 0 1]].
func TestPaperThirdLane(t *testing.T) {
	const xs = 1000.0
	const delta = 0.5
	a := Affine{A: 0, B: 1, C: xs / 2, D: 1, E: 0, F: delta}
	got := a.Apply(Vec2{X: 100, Y: 0})
	want := Vec2{X: xs / 2, Y: 100 + delta}
	if !vecAlmostEq(got, want) {
		t.Fatalf("third lane transform: got %v, want %v", got, want)
	}
}

func TestAffineComposeMatchesSequentialApply(t *testing.T) {
	// Inputs come in as int16 to keep magnitudes bounded; the property is
	// exact algebra, not float-overflow behaviour.
	f := func(a, b, c, d, e, fcoef, x, y int16) bool {
		s := func(v int16) float64 { return float64(v) / 128 }
		t1 := Affine{A: s(a), B: s(b), C: s(c), D: s(d), E: s(e), F: s(fcoef)}
		t2 := Rotate(s(a)).Compose(Translate(s(b), s(c)))
		p := Vec2{s(x), s(y)}
		lhs := t1.Compose(t2).Apply(p)
		rhs := t1.Apply(t2.Apply(p))
		return math.Abs(lhs.X-rhs.X) < 1e-6*(1+math.Abs(rhs.X)) &&
			math.Abs(lhs.Y-rhs.Y) < 1e-6*(1+math.Abs(rhs.Y))
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAffineInvertRoundTrip(t *testing.T) {
	tr := Rotate(0.7).Compose(Translate(10, -3)).Compose(Scaling(2, 0.5))
	inv, ok := tr.Invert()
	if !ok {
		t.Fatal("transform should be invertible")
	}
	p := Vec2{3.3, -7.1}
	if got := inv.Apply(tr.Apply(p)); !vecAlmostEq(got, p) {
		t.Fatalf("Invert round trip: %v != %v", got, p)
	}
}

func TestAffineSingularInvert(t *testing.T) {
	if _, ok := (Affine{}).Invert(); ok {
		t.Fatal("zero transform must report non-invertible")
	}
	if got := (Affine{}).Det(); got != 0 {
		t.Fatalf("Det = %v", got)
	}
}

func TestLinePlacement(t *testing.T) {
	l := Line{Transform: Translate(100, 50)}
	if got := l.Place(20); !vecAlmostEq(got, Vec2{120, 50}) {
		t.Fatalf("Line.Place = %v", got)
	}
	if got := l.Heading(0); !almostEq(got, 0) {
		t.Fatalf("Line.Heading = %v", got)
	}
	rev := Line{Transform: ReflectX()}
	if got := rev.Heading(0); !almostEq(math.Abs(got), math.Pi) {
		t.Fatalf("reversed lane heading = %v, want ±π", got)
	}
}

func TestRingPlacement(t *testing.T) {
	r := Ring{Center: Vec2{0, 0}, Circumference: 2 * math.Pi * 100}
	if !almostEq(r.Radius(), 100) {
		t.Fatalf("Radius = %v", r.Radius())
	}
	if got := r.Place(0); !vecAlmostEq(got, Vec2{100, 0}) {
		t.Fatalf("Place(0) = %v", got)
	}
	quarter := r.Circumference / 4
	if got := r.Place(quarter); !vecAlmostEq(got, Vec2{0, 100}) {
		t.Fatalf("Place(C/4) = %v", got)
	}
	// Wrap-around continuity: positions at x and x+C coincide.
	a := r.Place(123.4)
	b := r.Place(123.4 + r.Circumference)
	if !vecAlmostEq(a, b) {
		t.Fatalf("ring placement not periodic: %v vs %v", a, b)
	}
}

func TestRingPlacementStaysOnCircle(t *testing.T) {
	r := Ring{Center: Vec2{10, 20}, Circumference: 3000}
	f := func(raw int32) bool {
		x := float64(raw) / 100 // within ±2.1e7 m, sane trig range
		p := r.Place(x)
		return math.Abs(p.Dist(r.Center)-r.Radius()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRingHeadingTangent(t *testing.T) {
	r := Ring{Circumference: 2 * math.Pi}
	// At x=0 (angle 0), travel direction should be +y (π/2).
	if got := r.Heading(0); !almostEq(got, math.Pi/2) {
		t.Fatalf("Heading(0) = %v, want π/2", got)
	}
}
