// Package traffic provides the application-layer agents of the paper's
// evaluation: a Constant Bit Rate source (Table I: 5 packets/s of 512
// bytes, active between 10 s and 90 s) and a sink that records deliveries.
package traffic

import (
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// CBRConfig parameterizes a constant-bit-rate flow.
type CBRConfig struct {
	// Dst is the traffic destination.
	Dst netsim.NodeID
	// Port is the destination port (default netsim.PortCBR).
	Port int
	// PacketBytes is the application payload size (Table I: 512).
	PacketBytes int
	// Rate is packets per second (Table I: 5).
	Rate float64
	// Start and Stop bound the active period (Table I: 10 s and 90 s).
	Start, Stop sim.Time
}

func (c *CBRConfig) normalize() {
	if c.Port == 0 {
		c.Port = netsim.PortCBR
	}
	if c.PacketBytes == 0 {
		c.PacketBytes = 512
	}
	if c.Rate == 0 {
		c.Rate = 5
	}
}

// CBR is a constant-bit-rate source attached to a node.
type CBR struct {
	cfg   CBRConfig
	node  *netsim.Node
	sent  uint64
	ev    sim.Handle
	began bool // Start has been called and StopNow has not
}

// NewCBR attaches a CBR source to node; call Start to begin. The source
// follows the node's fault lifecycle: while the node is down the flow emits
// nothing, and on recovery it resumes at the configured rate for whatever
// remains of its window (a window already past stays finished — recovery
// does not resurrect dead flows).
func NewCBR(node *netsim.Node, cfg CBRConfig) *CBR {
	cfg.normalize()
	c := &CBR{cfg: cfg, node: node}
	node.OnLifecycle(func(up bool) {
		if !c.began {
			return
		}
		if up {
			c.Start()
			return
		}
		c.node.Kernel().Cancel(c.ev)
		c.ev = sim.Handle{}
	})
	return c
}

// Sent reports the number of packets originated so far.
func (c *CBR) Sent() uint64 { return c.sent }

// Config reports the normalized flow configuration.
func (c *CBR) Config() CBRConfig { return c.cfg }

// Start schedules the flow. A flow whose window already lies entirely in
// the past (Stop > 0 and the clamped start is at or past it) emits
// nothing and schedules nothing. Calling Start on a flow with a pending
// emission reschedules it instead of stacking a second emission chain, so
// StopNow followed by Start restarts cleanly at the configured rate.
func (c *CBR) Start() {
	k := c.node.Kernel()
	k.Cancel(c.ev)
	c.ev = sim.Handle{}
	c.began = true
	start := c.cfg.Start
	if start < k.Now() {
		start = k.Now()
	}
	if c.cfg.Stop > 0 && start >= c.cfg.Stop {
		return
	}
	c.ev = k.ScheduleArg(start, cbrEmit, c)
}

// StopNow cancels any pending emission and detaches the flow from the
// node's fault lifecycle (a recovery after StopNow does not restart it).
func (c *CBR) StopNow() {
	c.node.Kernel().Cancel(c.ev)
	c.ev = sim.Handle{}
	c.began = false
}

// cbrEmit is the shared emission callback; package-level so rescheduling
// reuses a pooled kernel event without allocating a closure.
func cbrEmit(a any) {
	c := a.(*CBR)
	k := c.node.Kernel()
	if c.cfg.Stop > 0 && k.Now() >= c.cfg.Stop {
		c.ev = sim.Handle{}
		return
	}
	p := c.node.NewPacket(c.cfg.Dst, c.cfg.Port, c.cfg.PacketBytes)
	c.node.SendData(p)
	c.sent++
	interval := sim.Seconds(1 / c.cfg.Rate)
	c.ev = k.AfterArg(interval, cbrEmit, c)
}

// Sink counts packets arriving on a port; deliveries are also visible to
// the world metrics hooks, so Sink is mostly a convenience for examples and
// tests.
type Sink struct {
	Received uint64
	Bytes    uint64
	LastAt   sim.Time
}

// HandlePacket implements netsim.PortHandler.
func (s *Sink) HandlePacket(p *netsim.Packet, at sim.Time) {
	s.Received++
	s.Bytes += uint64(p.Size - netsim.IPHeaderBytes)
	s.LastAt = at
}

var _ netsim.PortHandler = (*Sink)(nil)
