package traffic

import (
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// loopRouter delivers every originated packet straight back to the local
// node, which is enough to count CBR emissions.
type loopRouter struct{ n *netsim.Node }

func (r *loopRouter) Name() string                              { return "loop" }
func (r *loopRouter) Start()                                    {}
func (r *loopRouter) Stop()                                     {}
func (r *loopRouter) Origin(p *netsim.Packet)                   { r.n.DeliverLocal(p) }
func (r *loopRouter) Receive(*netsim.Packet, netsim.NodeID)     {}
func (r *loopRouter) LinkFailure(netsim.NodeID, *netsim.Packet) {}
func (r *loopRouter) ControlTraffic() (uint64, uint64)          { return 0, 0 }

func testWorld(t *testing.T) *netsim.World {
	t.Helper()
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:  2,
		Static: []geometry.Vec2{{X: 0}, {X: 100}},
	}, func(n *netsim.Node) netsim.Router { return &loopRouter{n: n} })
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCBRTableIParameters(t *testing.T) {
	// Table I: 5 pkt/s × 512 B between 10 s and 90 s → exactly 400 packets.
	w := testWorld(t)
	sink := &Sink{}
	w.Node(1).AttachPort(netsim.PortCBR, sink)
	cbr := NewCBR(w.Node(0), CBRConfig{
		Dst:   1,
		Start: 10 * sim.Second,
		Stop:  90 * sim.Second,
	})
	cbr.Start()
	w.Run(100 * sim.Second)
	if cbr.Sent() != 400 {
		t.Fatalf("sent = %d, want 400", cbr.Sent())
	}
	cfg := cbr.Config()
	if cfg.Rate != 5 || cfg.PacketBytes != 512 || cfg.Port != netsim.PortCBR {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestCBRDeliversToSink(t *testing.T) {
	w := testWorld(t)
	sink := &Sink{}
	// loopRouter sends Origin packets back to the origin node, so attach
	// the sink there and address the flow to the other node.
	w.Node(0).AttachPort(netsim.PortCBR, sink)
	cbr := NewCBR(w.Node(0), CBRConfig{Dst: 1, Start: 0, Stop: 2 * sim.Second})
	cbr.Start()
	w.Run(3 * sim.Second)
	if sink.Received != uint64(cbr.Sent()) {
		t.Fatalf("sink received %d, sent %d", sink.Received, cbr.Sent())
	}
	if sink.Bytes != sink.Received*512 {
		t.Fatalf("sink bytes = %d", sink.Bytes)
	}
}

func TestCBRStopNow(t *testing.T) {
	w := testWorld(t)
	cbr := NewCBR(w.Node(0), CBRConfig{Dst: 1, Start: sim.Second})
	cbr.Start()
	cbr.StopNow()
	w.Run(5 * sim.Second)
	if cbr.Sent() != 0 {
		t.Fatalf("sent = %d after StopNow", cbr.Sent())
	}
}

func TestCBRRateSpacing(t *testing.T) {
	w := testWorld(t)
	var times []sim.Time
	w.Node(0).AttachPort(netsim.PortCBR, netsim.PortFunc(func(p *netsim.Packet, at sim.Time) {
		times = append(times, at)
	}))
	cbr := NewCBR(w.Node(0), CBRConfig{Dst: 1, Rate: 10, Start: 0, Stop: sim.Second})
	cbr.Start()
	w.Run(2 * sim.Second)
	if len(times) != 10 {
		t.Fatalf("emitted %d packets, want 10", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != 100*sim.Millisecond {
			t.Fatalf("interval %v, want 100 ms", times[i]-times[i-1])
		}
	}
}

func TestCBRWindowEntirelyInPastEmitsNothing(t *testing.T) {
	// Regression: starting a flow whose [Start, Stop) window has already
	// closed must emit zero packets and leave nothing scheduled.
	w := testWorld(t)
	var count int
	w.Node(0).AttachPort(netsim.PortCBR, netsim.PortFunc(func(*netsim.Packet, sim.Time) { count++ }))
	var cbr *CBR
	w.Kernel.Schedule(8*sim.Second, func() {
		cbr = NewCBR(w.Node(0), CBRConfig{Dst: 1, Start: sim.Second, Stop: 5 * sim.Second})
		cbr.Start() // clamped start (8 s) is past Stop (5 s)
		if cbr.ev.Scheduled() {
			t.Error("dead flow left an emission scheduled")
		}
	})
	w.Run(20 * sim.Second)
	if count != 0 || cbr.Sent() != 0 {
		t.Fatalf("dead window emitted %d packets (Sent=%d)", count, cbr.Sent())
	}
}

func TestCBRRestartAfterStopNow(t *testing.T) {
	// StopNow then Start must resume a single emission chain at the
	// configured rate — not stack a second one.
	w := testWorld(t)
	var times []sim.Time
	w.Node(0).AttachPort(netsim.PortCBR, netsim.PortFunc(func(p *netsim.Packet, at sim.Time) {
		times = append(times, at)
	}))
	cbr := NewCBR(w.Node(0), CBRConfig{Dst: 1, Rate: 10, Start: 0, Stop: 2 * sim.Second})
	cbr.Start()
	w.Kernel.Schedule(500*sim.Millisecond, func() { cbr.StopNow() })
	w.Kernel.Schedule(sim.Second, func() { cbr.Start() })
	w.Run(3 * sim.Second)
	// 0 s..0.4 s (5 packets: the 0.5 s emission is cancelled), then
	// 1.0 s..1.9 s (10 packets).
	if len(times) != 15 {
		t.Fatalf("emitted %d packets, want 15: %v", len(times), times)
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] < 100*sim.Millisecond {
			t.Fatalf("emissions %v and %v closer than the CBR interval", times[i-1], times[i])
		}
	}
}

func TestCBRDoubleStartDoesNotDoubleRate(t *testing.T) {
	w := testWorld(t)
	cbr := NewCBR(w.Node(0), CBRConfig{Dst: 1, Rate: 5, Start: 0, Stop: 2 * sim.Second})
	cbr.Start()
	cbr.Start() // must reschedule, not stack a second chain
	w.Run(3 * sim.Second)
	if cbr.Sent() != 10 {
		t.Fatalf("sent %d packets after double Start, want 10", cbr.Sent())
	}
}

func TestCBRLateStartClamps(t *testing.T) {
	w := testWorld(t)
	w.Kernel.Schedule(5*sim.Second, func() {
		cbr := NewCBR(w.Node(0), CBRConfig{Dst: 1, Start: sim.Second, Stop: 7 * sim.Second})
		cbr.Start() // start time already past; must clamp to now
	})
	var count int
	w.Node(0).AttachPort(netsim.PortCBR, netsim.PortFunc(func(*netsim.Packet, sim.Time) { count++ }))
	w.Run(10 * sim.Second)
	if count != 10 { // 5 s..7 s at 5 pkt/s
		t.Fatalf("count = %d, want 10", count)
	}
}
