// Package plot renders CAVENET analysis results as ASCII art and CSV —
// the stand-in for the paper's MATLAB figure windows. The data series are
// exact; only the presentation is textual.
package plot

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// SpaceTimeASCII renders the space-time occupancy rows of ca.SpaceTime as
// the paper's Fig. 5: one text row per time step, '.' for empty sites and
// the vehicle velocity digit for occupied ones (velocities above 9 print
// as '+'). Space runs left→right, time top→bottom.
func SpaceTimeASCII(w io.Writer, rows [][]int) error {
	bw := bufio.NewWriter(w)
	for _, row := range rows {
		var sb strings.Builder
		sb.Grow(len(row) + 1)
		for _, v := range row {
			switch {
			case v < 0:
				sb.WriteByte('.')
			case v <= 9:
				sb.WriteByte(byte('0' + v))
			default:
				sb.WriteByte('+')
			}
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Series writes an (x, y) table as CSV with a header.
func Series(w io.Writer, xName, yName string, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("plot: series length mismatch %d vs %d", len(xs), len(ys))
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s,%s\n", xName, yName)
	for i := range xs {
		fmt.Fprintf(bw, "%s,%s\n", formatFloat(xs[i]), formatFloat(ys[i]))
	}
	return bw.Flush()
}

// MultiSeries writes several aligned y-columns against one x-column.
func MultiSeries(w io.Writer, xName string, xs []float64, names []string, ys [][]float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s", xName)
	for _, n := range names {
		fmt.Fprintf(bw, ",%s", n)
	}
	fmt.Fprintln(bw)
	for i := range xs {
		fmt.Fprintf(bw, "%s", formatFloat(xs[i]))
		for j := range ys {
			v := math.NaN()
			if i < len(ys[j]) {
				v = ys[j][i]
			}
			fmt.Fprintf(bw, ",%s", formatFloat(v))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Surface writes a goodput surface (Figs. 8–10): rows are senders, columns
// are time bins.
func Surface(w io.Writer, rowName string, rows []int, colName string, cols []float64, vals [][]float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\\%s", rowName, colName)
	for _, c := range cols {
		fmt.Fprintf(bw, ",%s", formatFloat(c))
	}
	fmt.Fprintln(bw)
	for i, r := range rows {
		fmt.Fprintf(bw, "%d", r)
		for j := range cols {
			v := math.NaN()
			if j < len(vals[i]) {
				v = vals[i][j]
			}
			fmt.Fprintf(bw, ",%s", formatFloat(v))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// AsciiChart renders a quick y-vs-index line chart with the given height,
// for terminal inspection of series like v(t).
func AsciiChart(w io.Writer, series []float64, height int) error {
	if len(series) == 0 || height <= 0 {
		return nil
	}
	lo, hi := series[0], series[0]
	for _, v := range series {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(series)))
	}
	for x, v := range series {
		y := int((v - lo) / (hi - lo) * float64(height-1))
		grid[height-1-y][x] = '*'
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "max %.3f\n", hi)
	for _, row := range grid {
		bw.Write(row)
		bw.WriteByte('\n')
	}
	fmt.Fprintf(bw, "min %.3f\n", lo)
	return bw.Flush()
}

func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'g', 8, 64)
}
