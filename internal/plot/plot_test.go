package plot

import (
	"strings"
	"testing"
)

func TestSpaceTimeASCII(t *testing.T) {
	rows := [][]int{
		{-1, 0, 3, -1},
		{12, -1, -1, 9},
	}
	var sb strings.Builder
	if err := SpaceTimeASCII(&sb, rows); err != nil {
		t.Fatal(err)
	}
	want := ".03.\n+..9\n"
	if sb.String() != want {
		t.Fatalf("got %q, want %q", sb.String(), want)
	}
}

func TestSeriesCSV(t *testing.T) {
	var sb strings.Builder
	err := Series(&sb, "x", "y", []float64{1, 2}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 || lines[0] != "x,y" || lines[1] != "1,10" {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestSeriesLengthMismatch(t *testing.T) {
	var sb strings.Builder
	if err := Series(&sb, "x", "y", []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestMultiSeries(t *testing.T) {
	var sb strings.Builder
	err := MultiSeries(&sb, "t", []float64{0, 1},
		[]string{"a", "b"}, [][]float64{{5, 6}, {7}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "t,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != "1,6," {
		t.Fatalf("missing value should be empty: %q", lines[2])
	}
}

func TestSurface(t *testing.T) {
	var sb strings.Builder
	err := Surface(&sb, "sender", []int{1, 2}, "t", []float64{0, 1},
		[][]float64{{100, 200}, {300, 400}})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "sender\\t,0,1\n") {
		t.Fatalf("header wrong: %q", out)
	}
	if !strings.Contains(out, "1,100,200") || !strings.Contains(out, "2,300,400") {
		t.Fatalf("rows wrong: %q", out)
	}
}

func TestAsciiChart(t *testing.T) {
	var sb strings.Builder
	if err := AsciiChart(&sb, []float64{0, 1, 2, 3}, 4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "max 3.000") || !strings.Contains(out, "min 0.000") {
		t.Fatalf("chart missing bounds: %q", out)
	}
	if strings.Count(out, "*") != 4 {
		t.Fatalf("chart should plot 4 points: %q", out)
	}
}

func TestAsciiChartDegenerate(t *testing.T) {
	var sb strings.Builder
	if err := AsciiChart(&sb, nil, 5); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatal("empty series should render nothing")
	}
	// Constant series must not divide by zero.
	if err := AsciiChart(&sb, []float64{2, 2}, 3); err != nil {
		t.Fatal(err)
	}
}
