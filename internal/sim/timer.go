package sim

// Timer is a resettable one-shot timer built on a Kernel. It is the
// building block for protocol timeouts (route lifetimes, HELLO validity,
// retransmission timers) where the deadline moves every time fresh state
// arrives.
//
// The zero value is not useful; construct with NewTimer.
type Timer struct {
	kernel *Kernel
	fn     func()
	ev     Handle
}

// NewTimer returns a stopped timer that will invoke fn when it expires.
func NewTimer(k *Kernel, fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	return &Timer{kernel: k, fn: fn}
}

// Reset (re)arms the timer to fire d from now, replacing any pending
// deadline.
func (t *Timer) Reset(d Time) {
	t.Stop()
	t.ev = t.kernel.AfterArg(d, timerFire, t)
}

// timerFire is the shared expiry callback; keeping it package-level means a
// Reset allocates no closure, only reuses a pooled event record.
func timerFire(a any) {
	t := a.(*Timer)
	t.ev = Handle{}
	t.fn()
}

// ResetAt (re)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.ev = t.kernel.ScheduleArg(at, timerFire, t)
}

// Stop cancels the pending deadline, if any. It reports whether a deadline
// was pending.
func (t *Timer) Stop() bool {
	ok := t.kernel.Cancel(t.ev)
	t.ev = Handle{}
	return ok
}

// Active reports whether the timer has a pending deadline.
func (t *Timer) Active() bool { return t.ev.Scheduled() }

// Deadline reports the pending fire time; valid only when Active.
func (t *Timer) Deadline() Time { return t.ev.At() }

// Ticker repeatedly invokes a callback at a fixed period, with optional
// per-tick jitter supplied by the caller. Protocol HELLO/TC emission uses
// jittered tickers to avoid the synchronized-broadcast artifacts real
// implementations also avoid.
type Ticker struct {
	kernel  *Kernel
	period  Time
	jitter  func() Time // extra delay added to each tick; may be nil
	fn      func()
	ev      Handle
	stopped bool
}

// NewTicker returns a stopped ticker. jitter, when non-nil, is sampled once
// per tick and added to the period (it may return negative values as long as
// period+jitter stays positive).
func NewTicker(k *Kernel, period Time, jitter func() Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker with non-positive period")
	}
	if fn == nil {
		panic("sim: NewTicker with nil callback")
	}
	return &Ticker{kernel: k, period: period, jitter: jitter, fn: fn}
}

// Start schedules the first tick one (jittered) period from now.
func (t *Ticker) Start() {
	t.Stop()
	t.stopped = false
	t.schedule()
}

// StartNow fires the first tick immediately (as a scheduled event at the
// current time) and continues periodically.
func (t *Ticker) StartNow() {
	t.Stop()
	t.stopped = false
	t.ev = t.kernel.AfterArg(0, tickerFire, t)
}

func (t *Ticker) schedule() {
	d := t.period
	if t.jitter != nil {
		d += t.jitter()
	}
	if d <= 0 {
		d = 1
	}
	t.ev = t.kernel.AfterArg(d, tickerFire, t)
}

// tickerFire is the shared tick callback, package-level for the same
// zero-closure reason as timerFire.
func tickerFire(a any) {
	t := a.(*Ticker)
	t.ev = Handle{}
	t.fn()
	// The callback may have restarted the ticker itself (Start/StartNow
	// from inside fn); re-arming here too would fork a second, orphaned
	// tick chain firing at double rate.
	if !t.stopped && !t.ev.Scheduled() {
		t.schedule()
	}
}

// Stop cancels future ticks; safe to call from inside the tick callback.
func (t *Ticker) Stop() {
	t.stopped = true
	t.kernel.Cancel(t.ev)
	t.ev = Handle{}
}
