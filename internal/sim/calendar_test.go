package sim

import (
	"math/rand"
	"testing"
)

// popRecord is one executed event as observed by a differential run:
// the fire time, the event's insertion sequence (via the payload), and
// the kernel clock at execution.
type popRecord struct {
	id  int
	at  Time
	now Time
}

// diffWorkload drives one kernel through a deterministic pseudo-random
// schedule/cancel/run workload and returns the full pop log. The rng
// stream and the decision points depend only on (seed, cfg params), so
// the calendar and oracle runs see bit-identical operation sequences.
func diffWorkload(k *Kernel, seed int64, ops int, cancelFrac float64, farFrac float64, burst int) []popRecord {
	rng := rand.New(rand.NewSource(seed))
	var log []popRecord
	var handles []Handle
	var ids []int
	nextID := 0
	schedule := func(at Time) {
		id := nextID
		nextID++
		h := k.ScheduleArg(at, func(a any) {
			log = append(log, popRecord{id: a.(int), at: at, now: k.Now()})
		}, id)
		handles = append(handles, h)
		ids = append(ids, id)
	}
	for i := 0; i < ops; i++ {
		switch r := rng.Float64(); {
		case r < 0.55:
			at := k.Now() + Time(rng.Int63n(int64(50*Millisecond)))
			if rng.Float64() < farFrac {
				at = k.Now() + Time(rng.Int63n(int64(1000*Second)))
			}
			schedule(at)
			// Same-time bursts stress the shared-bucket and seq tie-break
			// paths.
			for b := 0; b < burst && rng.Float64() < 0.3; b++ {
				schedule(at)
			}
		case r < 0.55+cancelFrac:
			if len(handles) > 0 {
				j := rng.Intn(len(handles))
				k.Cancel(handles[j])
				handles[j] = handles[len(handles)-1]
				handles = handles[:len(handles)-1]
				ids[j] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
			}
		case r < 0.9:
			k.RunUntil(k.Now() + Time(rng.Int63n(int64(20*Millisecond))))
		default:
			for s := rng.Intn(5); s > 0 && k.Step(); s-- {
			}
		}
	}
	k.Run()
	return log
}

// TestCalendarMatchesHeapOracle is the tentpole differential gate: over
// randomized schedule/cancel/run sequences — cancel-heavy, far-future
// overflow, same-time bursts — the calendar queue must pop the identical
// (time, seq, payload) sequence as the retained binary-heap oracle.
func TestCalendarMatchesHeapOracle(t *testing.T) {
	cases := []struct {
		name       string
		ops        int
		cancelFrac float64
		farFrac    float64
		burst      int
	}{
		{"mixed", 4000, 0.15, 0.02, 2},
		{"cancel-heavy", 4000, 0.35, 0.01, 0},
		{"far-future", 3000, 0.10, 0.40, 1},
		{"bursty-ties", 3000, 0.10, 0.00, 8},
		{"tiny", 200, 0.20, 0.10, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				cal := diffWorkload(NewKernel(), seed, tc.ops, tc.cancelFrac, tc.farFrac, tc.burst)
				ora := diffWorkload(NewKernelWithConfig(KernelConfig{HeapOracle: true}),
					seed, tc.ops, tc.cancelFrac, tc.farFrac, tc.burst)
				if len(cal) != len(ora) {
					t.Fatalf("seed %d: calendar popped %d events, oracle %d", seed, len(cal), len(ora))
				}
				for i := range cal {
					if cal[i] != ora[i] {
						t.Fatalf("seed %d: pop %d diverged: calendar %+v, oracle %+v",
							seed, i, cal[i], ora[i])
					}
				}
			}
		})
	}
}

// TestCalendarPendingMatchesOracle cross-checks the live-event count under
// lazy cancellation: Pending must never include dead records.
func TestCalendarPendingMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cal := NewKernel()
		ora := NewKernelWithConfig(KernelConfig{HeapOracle: true})
		var hc, ho []Handle
		for i := 0; i < 2000; i++ {
			switch r := rng.Float64(); {
			case r < 0.5:
				at := cal.Now() + Time(rng.Int63n(int64(Second)))
				hc = append(hc, cal.Schedule(at, noop))
				ho = append(ho, ora.Schedule(at, noop))
			case r < 0.85:
				if len(hc) > 0 {
					j := rng.Intn(len(hc))
					gc := cal.Cancel(hc[j])
					go2 := ora.Cancel(ho[j])
					if gc != go2 {
						t.Fatalf("seed %d: Cancel disagreed: calendar %v, oracle %v", seed, gc, go2)
					}
					hc[j], hc = hc[len(hc)-1], hc[:len(hc)-1]
					ho[j], ho = ho[len(ho)-1], ho[:len(ho)-1]
				}
			default:
				end := cal.Now() + Time(rng.Int63n(int64(200*Millisecond)))
				cal.RunUntil(end)
				ora.RunUntil(end)
			}
			if cal.Pending() != ora.Pending() {
				t.Fatalf("seed %d op %d: Pending: calendar %d, oracle %d",
					seed, i, cal.Pending(), ora.Pending())
			}
			if cal.Now() != ora.Now() {
				t.Fatalf("seed %d op %d: Now: calendar %v, oracle %v",
					seed, i, cal.Now(), ora.Now())
			}
		}
	}
}

// TestCalendarOverflowPromotion pins the two-tier boundary: events far
// beyond the bucket window must still fire in exact (time, seq) order as
// the clock reaches them, including ties between bucket and overflow
// residents scheduled at the same instant.
func TestCalendarOverflowPromotion(t *testing.T) {
	k := NewKernel()
	var order []int
	// Near events fill buckets; far events (hours out) start in overflow.
	k.Schedule(2*Second, func() { order = append(order, 0) })
	far := 3600 * Second
	k.Schedule(far, func() { order = append(order, 1) }) // overflow, tie at `far`
	k.Schedule(far, func() { order = append(order, 2) }) // overflow, same time, later seq
	k.Schedule(Second, func() {
		order = append(order, 3)
		// Scheduled mid-run at the same far instant: higher seq, must fire
		// after the two overflow residents.
		k.Schedule(far, func() { order = append(order, 4) })
	})
	k.Run()
	want := []int{3, 0, 1, 2, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if k.Now() != far {
		t.Fatalf("Now() = %v, want %v", k.Now(), far)
	}
}

// TestCalendarResizeCrossings forces grow and shrink rebuilds in one run
// and checks ordering survives them.
func TestCalendarResizeCrossings(t *testing.T) {
	k := NewKernel()
	var pops []Time
	record := func() { pops = append(pops, k.Now()) }
	// Grow: push well past 2x calMinBuckets.
	for i := 0; i < 2000; i++ {
		k.Schedule(Time(i%977)*Millisecond, record)
	}
	// Drain most of it (shrink rebuilds fire on the way down).
	k.Run()
	for i := 1; i < len(pops); i++ {
		if pops[i] < pops[i-1] {
			t.Fatalf("pop order regressed across resize: %v after %v", pops[i], pops[i-1])
		}
	}
	if len(pops) != 2000 {
		t.Fatalf("popped %d, want 2000", len(pops))
	}
}
