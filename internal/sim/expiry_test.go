package sim

import "testing"

func TestExpiryHeapOrdersAndExpires(t *testing.T) {
	var h ExpiryHeap[string]
	live := map[string]Time{"a": 10, "b": 20, "c": 30}
	h.Push("c", 30)
	h.Push("a", 10)
	h.Push("b", 20)

	var gone []string
	expire := func(now Time) {
		h.Expire(now,
			func(k string) (Time, bool) { u, ok := live[k]; return u, ok },
			func(k string) { delete(live, k); gone = append(gone, k) })
	}

	expire(5)
	if len(gone) != 0 || h.Len() != 3 {
		t.Fatalf("nothing should expire at t=5: gone=%v len=%d", gone, h.Len())
	}
	expire(20)
	if len(gone) != 2 || gone[0] != "a" || gone[1] != "b" {
		t.Fatalf("want [a b] expired in deadline order, got %v", gone)
	}
	if h.Len() != 1 {
		t.Fatalf("heap should still track c, len=%d", h.Len())
	}
}

func TestExpiryHeapRefreshedEntryReRegisters(t *testing.T) {
	var h ExpiryHeap[int]
	until := Time(10)
	h.Push(1, until)

	// The entry's lifetime was extended after the push: the stale deadline
	// surfaces, the key is re-registered, nothing expires.
	until = 50
	expired := 0
	h.Expire(25,
		func(int) (Time, bool) { return until, true },
		func(int) { expired++ })
	if expired != 0 {
		t.Fatalf("refreshed entry expired %d times", expired)
	}
	if h.Len() != 1 {
		t.Fatalf("key must stay registered, len=%d", h.Len())
	}
	// At the extended deadline it finally expires.
	h.Expire(50,
		func(int) (Time, bool) { return until, false },
		func(int) { expired++ })
	if expired != 1 || h.Len() != 0 {
		t.Fatalf("want exactly one expiry at the live deadline, got %d (len=%d)", expired, h.Len())
	}
}

func TestExpiryHeapVanishedKeyExpiresOnce(t *testing.T) {
	var h ExpiryHeap[int]
	h.Push(7, 10)
	var got []int
	h.Expire(10,
		func(int) (Time, bool) { return 0, false },
		func(k int) { got = append(got, k) })
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("vanished key must surface exactly once, got %v", got)
	}
	if h.Len() != 0 {
		t.Fatal("heap not drained")
	}
}

// TestExpiryHeapKeepWithPassedDeadlineExpires guards against an infinite
// re-push loop: current reporting keep=true with a deadline that is not in
// the future must be treated as expired.
func TestExpiryHeapKeepWithPassedDeadlineExpires(t *testing.T) {
	var h ExpiryHeap[int]
	h.Push(1, 10)
	expired := 0
	h.Expire(10,
		func(int) (Time, bool) { return 10, true },
		func(int) { expired++ })
	if expired != 1 || h.Len() != 0 {
		t.Fatalf("stale keep must expire: expired=%d len=%d", expired, h.Len())
	}
}
