package sim

import (
	"fmt"
	"strings"
	"testing"
)

// The burst tests below pin the expiry substrate's behavior under the
// load shape fault injection creates: a blackout expires whole
// neighborhoods of protocol state in one purge wave, so Expire must drain
// an arbitrarily large expired prefix in one call, leave survivors
// untouched, and coalesce refreshed entries by re-registration instead of
// duplicating heap items.

func TestExpiryHeapMassExpiryBurst(t *testing.T) {
	var h ExpiryHeap[int]
	live := make(map[int]Time)
	const n = 100000
	for i := 0; i < n; i++ {
		d := Time(i%1000) + 1
		live[i] = d
		h.Push(i, d)
	}
	// Nothing is due yet: a purge attempt must touch nothing.
	h.Expire(0,
		func(k int) (Time, bool) { u, ok := live[k]; return u, ok },
		func(k int) { t.Fatalf("key %d expired before its deadline", k) })
	if h.Len() != n {
		t.Fatalf("idle Expire changed the heap: %d items, want %d", h.Len(), n)
	}
	// Half the deadlines pass at once.
	gone := 0
	h.Expire(500,
		func(k int) (Time, bool) { u, ok := live[k]; return u, ok },
		func(k int) { delete(live, k); gone++ })
	wantGone := 0
	for i := 0; i < n; i++ {
		if Time(i%1000)+1 <= 500 {
			wantGone++
		}
	}
	if gone != wantGone {
		t.Fatalf("burst expired %d keys, want %d", gone, wantGone)
	}
	if h.Len() != n-wantGone {
		t.Fatalf("heap holds %d items after the burst, want %d", h.Len(), n-wantGone)
	}
	// The rest goes in a second wave.
	h.Expire(1001,
		func(k int) (Time, bool) { u, ok := live[k]; return u, ok },
		func(k int) { delete(live, k) })
	if h.Len() != 0 || len(live) != 0 {
		t.Fatalf("final wave left %d heap items and %d live entries", h.Len(), len(live))
	}
}

// TestExpiryHeapBurstRefreshCoalesces pins the lazy-refresh contract at
// scale: extending every entry's lifetime before a mass deadline costs one
// re-registration per key — the heap stays at one item per live key rather
// than accreting a stale copy per refresh.
func TestExpiryHeapBurstRefreshCoalesces(t *testing.T) {
	var h ExpiryHeap[int]
	live := make(map[int]Time)
	const n = 50000
	for i := 0; i < n; i++ {
		live[i] = 10
		h.Push(i, 10)
	}
	for i := 0; i < n; i++ {
		live[i] = 100 // refresh: map only, no Push
	}
	h.Expire(10,
		func(k int) (Time, bool) { u, ok := live[k]; return u, ok },
		func(k int) { t.Fatalf("key %d expired despite its refreshed deadline", k) })
	if h.Len() != n {
		t.Fatalf("refresh wave left %d heap items, want %d (one per key)", h.Len(), n)
	}
	gone := 0
	h.Expire(100,
		func(k int) (Time, bool) { u, ok := live[k]; return u, ok },
		func(k int) { delete(live, k); gone++ })
	if gone != n || h.Len() != 0 {
		t.Fatalf("refreshed deadlines expired %d of %d keys, %d heap items left", gone, n, h.Len())
	}
}

// TestExpiryHeapIdlePurgeAllocatesNothing pins the O(expired) claim's
// constant factor: purging when nothing is due must not allocate.
func TestExpiryHeapIdlePurgeAllocatesNothing(t *testing.T) {
	var h ExpiryHeap[int]
	for i := 0; i < 1000; i++ {
		h.Push(i, 1000)
	}
	current := func(k int) (Time, bool) { return 1000, true }
	expired := func(k int) {}
	allocs := testing.AllocsPerRun(100, func() {
		h.Expire(5, current, expired)
	})
	if allocs != 0 {
		t.Fatalf("idle Expire allocates %.1f objects per call", allocs)
	}
}

func TestExpiringSetMassBurst(t *testing.T) {
	var s ExpiringSet[uint64]
	const n = 50000
	for i := uint64(0); i < n; i++ {
		s.Add(i, Time(i%100)+1)
	}
	if s.Len() != n || s.Deadlines() != n {
		t.Fatalf("populated set has %d entries / %d deadlines", s.Len(), s.Deadlines())
	}
	s.Expire(50)
	want := 0
	for i := 0; i < n; i++ {
		if Time(i%100)+1 > 50 {
			want++
		}
	}
	if s.Len() != want {
		t.Fatalf("after the burst: %d live entries, want %d", s.Len(), want)
	}
	if s.Deadlines() != s.Len() {
		t.Fatalf("%d heap items for %d live entries — the purge left stale deadlines", s.Deadlines(), s.Len())
	}
	if s.Contains(0) || !s.Contains(99) {
		t.Fatal("membership disagrees with deadlines after the burst")
	}
	s.Expire(1000)
	if s.Len() != 0 || s.Deadlines() != 0 {
		t.Fatalf("final purge left %d entries / %d deadlines", s.Len(), s.Deadlines())
	}
}

// TestSchedulePastPanicCarriesClock pins the kernel's diagnostic contract:
// scheduling behind the clock reports where the clock was, where the
// request landed, and how far in the past it was.
func TestSchedulePastPanicCarriesClock(t *testing.T) {
	k := NewKernel()
	k.Schedule(5*Second, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("scheduling in the past did not panic")
			}
			msg := fmt.Sprint(r)
			for _, want := range []string{"t=5", "2.000000s", "in the past"} {
				if !strings.Contains(msg, want) {
					t.Fatalf("panic %q lacks %q", msg, want)
				}
			}
		}()
		k.Schedule(3*Second, func() {})
	})
	k.Run()
}
