package sim

import (
	"testing"
)

// FuzzKernelDifferential feeds a byte stream as a schedule/cancel/step/
// run-until op sequence to a calendar-queue kernel and the heap oracle in
// lockstep, checking on every op that:
//
//   - pop sequences are bit-identical: same (time, payload id) in the same
//     order, clocks in lockstep — the determinism contract every golden
//     depends on;
//   - pop times are monotone non-decreasing and same-time events fire in
//     seq (insertion) order;
//   - no cancelled event ever fires, and Cancel/Pending agree between the
//     two queues — a free-list record reused after cancellation must never
//     resurrect the old handle.
//
// Wired into `make fuzz-smoke`; hunt with:
//
//	go test ./internal/sim -fuzz FuzzKernelDifferential
func FuzzKernelDifferential(f *testing.F) {
	f.Add([]byte{0x10, 0x22, 0x80, 0x41, 0xc0, 0x05, 0x33, 0x90})
	f.Add([]byte{0x00, 0x00, 0x00, 0xff, 0xff, 0x7f, 0x01, 0x02, 0x03})
	f.Add([]byte("schedule/cancel soup with a long tail of bytes to chew"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cal := NewKernel()
		ora := NewKernelWithConfig(KernelConfig{HeapOracle: true})

		type fired struct {
			id int
			at Time
		}
		var calLog, oraLog []fired
		cancelled := map[int]bool{}
		nextID := 0

		var hc, ho []Handle
		var seqs []uint64 // scheduling seq per outstanding handle pair

		schedule := func(at Time) {
			id := nextID
			nextID++
			hc = append(hc, cal.ScheduleArg(at, func(a any) {
				calLog = append(calLog, fired{id: a.(int), at: cal.Now()})
			}, id))
			ho = append(ho, ora.ScheduleArg(at, func(a any) {
				oraLog = append(oraLog, fired{id: a.(int), at: ora.Now()})
			}, id))
			seqs = append(seqs, uint64(id))
		}

		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i], Time(data[i+1]), Time(data[i+2])
			switch op % 4 {
			case 0: // schedule a near event; b==0 makes same-time ties likely
				schedule(cal.Now() + a*Time(Millisecond) + b*Time(Microsecond))
			case 1: // schedule far out: exercises the overflow tier
				schedule(cal.Now() + a*Time(10*Second) + b*Time(Millisecond))
			case 2: // cancel a pseudo-random outstanding handle
				if len(hc) > 0 {
					j := int(a+b*7) % len(hc)
					gc := cal.Cancel(hc[j])
					go2 := ora.Cancel(ho[j])
					if gc != go2 {
						t.Fatalf("Cancel disagreed: calendar %v, oracle %v", gc, go2)
					}
					if gc {
						cancelled[int(seqs[j])] = true
					}
					hc[j], hc = hc[len(hc)-1], hc[:len(hc)-1]
					ho[j], ho = ho[len(ho)-1], ho[:len(ho)-1]
					seqs[j], seqs = seqs[len(seqs)-1], seqs[:len(seqs)-1]
				}
			case 3: // advance: bounded RunUntil or single steps
				if a%2 == 0 {
					end := cal.Now() + b*Time(Millisecond)
					cal.RunUntil(end)
					ora.RunUntil(end)
				} else {
					cal.Step()
					ora.Step()
				}
			}
			if cal.Pending() != ora.Pending() {
				t.Fatalf("op %d: Pending: calendar %d, oracle %d", i, cal.Pending(), ora.Pending())
			}
			if cal.Now() != ora.Now() {
				t.Fatalf("op %d: Now: calendar %v, oracle %v", i, cal.Now(), ora.Now())
			}
		}
		cal.Run()
		ora.Run()

		if len(calLog) != len(oraLog) {
			t.Fatalf("calendar fired %d events, oracle %d", len(calLog), len(oraLog))
		}
		var last fired
		for i := range calLog {
			if calLog[i] != oraLog[i] {
				t.Fatalf("pop %d diverged: calendar %+v, oracle %+v", i, calLog[i], oraLog[i])
			}
			if calLog[i].at < last.at {
				t.Fatalf("pop %d: time regressed: %v after %v", i, calLog[i].at, last.at)
			}
			if calLog[i].at == last.at && i > 0 && calLog[i].id < last.id {
				// IDs are assigned in scheduling (seq) order, so equal-time
				// events must fire in increasing id order.
				t.Fatalf("pop %d: seq tie-break violated: id %d after %d at %v",
					i, calLog[i].id, last.id, calLog[i].at)
			}
			if cancelled[calLog[i].id] {
				t.Fatalf("cancelled event %d fired at %v", calLog[i].id, calLog[i].at)
			}
			last = calLog[i]
		}
	})
}
