package sim

// ExpiryHeap tracks soft deadlines for keyed protocol state (link tuples,
// topology tuples, duplicate-suppression entries) so that purging costs
// O(expired) instead of a full sweep of every live entry.
//
// The heap is lazy: it records the deadline a key had when it was pushed.
// If the underlying entry's lifetime is extended afterwards, the stale heap
// item still surfaces at the old deadline — Expire then asks the caller for
// the entry's current deadline and re-registers the key instead of expiring
// it. Callers therefore push once per entry creation, never per refresh,
// which keeps the heap at one item per live key.
//
// The zero value is an empty heap ready for use.
type ExpiryHeap[K comparable] struct {
	items []expiryItem[K]
}

type expiryItem[K comparable] struct {
	until Time
	key   K
}

// Len reports the number of registered items (live keys plus any stale
// duplicates that have not yet surfaced).
func (h *ExpiryHeap[K]) Len() int { return len(h.items) }

// Push registers key with the given deadline. Push once when the entry is
// created; lifetime extensions are discovered lazily through Expire's
// current callback.
func (h *ExpiryHeap[K]) Push(key K, until Time) {
	h.items = append(h.items, expiryItem[K]{until: until, key: key})
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].until <= h.items[i].until {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *ExpiryHeap[K]) pop() expiryItem[K] {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	var zero expiryItem[K]
	h.items[n] = zero // release the key for GC
	h.items = h.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.items[l].until < h.items[min].until {
			min = l
		}
		if r < n && h.items[r].until < h.items[min].until {
			min = r
		}
		if min == i {
			break
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
	return top
}

// Expire surfaces every registered deadline that has passed. For each such
// key it calls current, which reports the entry's live deadline: when keep
// is true and the deadline is still in the future the key is re-registered
// at it (the entry was refreshed since the push); otherwise expired(key) is
// invoked and the caller is expected to delete the underlying entry. Keys
// whose entries are already gone must report keep=false.
func (h *ExpiryHeap[K]) Expire(now Time, current func(K) (Time, bool), expired func(K)) {
	for len(h.items) > 0 && h.items[0].until <= now {
		it := h.pop()
		if until, keep := current(it.key); keep && until > now {
			h.Push(it.key, until)
		} else {
			expired(it.key)
		}
	}
}

// ExpiringSet is a keyed set with per-entry deadlines — the shape of a
// protocol duplicate-suppression table. Entries are added once with a
// fixed deadline (deadlines are not refreshed) and retired lazily by
// Expire at O(expired) cost. The zero value is an empty set ready for use.
type ExpiringSet[K comparable] struct {
	m map[K]Time
	h ExpiryHeap[K]
}

// Add installs key with the given deadline. Adding a key that is already
// present is allowed but wasteful (one extra heap item until it expires);
// dedup tables check Contains first.
func (s *ExpiringSet[K]) Add(key K, until Time) {
	if s.m == nil {
		s.m = make(map[K]Time)
	}
	s.m[key] = until
	s.h.Push(key, until)
}

// Contains reports whether key is present (and not yet expired by Expire).
func (s *ExpiringSet[K]) Contains(key K) bool {
	_, ok := s.m[key]
	return ok
}

// Len reports the number of live entries.
func (s *ExpiringSet[K]) Len() int { return len(s.m) }

// Deadlines reports the number of registered heap items (for memory
// accounting; at most one per live entry plus stale duplicates).
func (s *ExpiringSet[K]) Deadlines() int { return s.h.Len() }

// Expire deletes every entry whose deadline has passed.
func (s *ExpiringSet[K]) Expire(now Time) {
	s.h.Expire(now,
		func(k K) (Time, bool) { u, ok := s.m[k]; return u, ok && u > now },
		func(k K) { delete(s.m, k) })
}
