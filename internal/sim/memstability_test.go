package sim

import (
	"runtime"
	"testing"
)

// Memory-stability pin for the calendar queue's lazy cancellation: dead
// records are reclaimed by scan, compaction, and rebuild sweeps, so a
// cancel-heavy workload must settle into a bounded steady state — the free
// list, the bucket array, and the overflow heap all stop growing no matter
// how long the churn runs.

// TestKernelCancelChurnMemoryStable runs 1M schedule/cancel cycles against
// a small live working set and pins the retained structures.
func TestKernelCancelChurnMemoryStable(t *testing.T) {
	k := NewKernel()

	// A live backdrop of periodic tickers keeps the queue non-trivial.
	const liveSet = 256
	for i := 0; i < liveSet; i++ {
		i := i
		var tick func()
		tick = func() { k.After(Time(i%17+1)*Millisecond, tick) }
		k.After(Time(i%17+1)*Millisecond, tick)
	}

	const cycles = 1_000_000
	warm := cycles / 10
	var freeHigh, bucketHigh, overflowHigh int
	measure := func() {
		if n := len(k.free); n > freeHigh {
			freeHigh = n
		}
		if n := len(k.cal.buckets); n > bucketHigh {
			bucketHigh = n
		}
		if n := len(k.cal.overflow); n > overflowHigh {
			overflowHigh = n
		}
	}

	var before, after runtime.MemStats
	for i := 0; i < cycles; i++ {
		// Mix near and far deadlines so both the bucket tier and the
		// overflow heap see cancelled records.
		d := Time(i%43+1) * Millisecond
		if i%11 == 0 {
			d = Time(i%7+1) * 100 * Second
		}
		k.Cancel(k.After(d, noop))
		if i%1024 == 0 {
			k.RunUntil(k.Now() + Millisecond)
		}
		if i == warm {
			runtime.GC()
			runtime.ReadMemStats(&before)
		}
		if i >= warm {
			measure()
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)

	// Structural pins: the high-water marks after warm-up must stay within
	// the compaction bound — O(live set + slack), not O(cycles).
	if limit := 4 * (liveSet + calDeadSlack + calMinBuckets); freeHigh > limit {
		t.Fatalf("free list grew to %d records under cancel churn (limit %d)", freeHigh, limit)
	}
	if bucketHigh > 16*calMinBuckets {
		t.Fatalf("bucket array grew to %d under cancel churn", bucketHigh)
	}
	if limit := 4 * (liveSet + calDeadSlack); overflowHigh > limit {
		t.Fatalf("overflow heap grew to %d entries under cancel churn (limit %d)", overflowHigh, limit)
	}

	// Heap pin: the post-warm-up retained bytes must not drift with cycle
	// count. 1 MiB of headroom absorbs GC noise; a leak of even one pooled
	// record per cycle would be ~50 MiB.
	if after.HeapAlloc > before.HeapAlloc && after.HeapAlloc-before.HeapAlloc > 1<<20 {
		t.Fatalf("retained heap grew %d bytes across %d cancel cycles",
			after.HeapAlloc-before.HeapAlloc, cycles-warm)
	}
}
