package sim

import (
	"math/bits"
	"slices"
	"sort"
)

// calendar is the production event queue: a bucketed calendar queue
// (Brown, CACM 1988) specialized for the kernel's workload — a large set
// of near-future timers (HELLO/TC tickers, DCF backoffs, mobility ticks)
// churning at roughly fixed intervals, plus a thin tail of far-future
// deadlines.
//
// Structure. Time is divided into fixed-width "days" (width = 1<<shift
// nanoseconds); day d hashes to bucket d & mask over a power-of-two bucket
// array. Each bucket keeps its events in strict (time, seq) order behind a
// head cursor: popping advances the cursor instead of shifting the slice,
// so draining the large same-timestamp bursts a synchronized fleet
// produces (10k mobility ticks sharing one instant share one bucket) is
// O(1) per event rather than O(bucket). A scan cursor (scanDay) walks days
// in increasing order; because an event's day determines its bucket,
// visiting days in order visits event times in order, which is what makes
// the pop order bit-identical to the heap oracle's (time, seq) contract.
//
// Rolling window. Events within len(buckets) days ahead of the cursor go
// into buckets; everything farther out goes to overflow: a plain
// (time, seq) min-heap, the same shape ExpiryHeap uses for protocol
// deadlines. Overflow events are promoted into buckets when they become
// due — next compares the overflow head against the bucket minimum on
// every pop, so promotion can never be late. The window slides forward as
// the cursor advances; scheduling before the cursor (always >= now, so
// only possible after a peek advanced the cursor past a quiet stretch)
// simply rolls the cursor back, paid for by the scheduler of that event.
//
// Sizing. The bucket array doubles when live events exceed 2x the bucket
// count and rebuilds down when they fall under a quarter of it; each
// rebuild re-derives the day width from the live events' spread (width ~
// 2x the mean gap, rounded up to a power of two), so day arithmetic stays
// a shift and the active window tracks the workload's actual horizon. A
// scan that completes a full lap without a hit (the width has drifted far
// from the distribution) also triggers a rebuild, which re-parks the
// cursor on the minimum event.
//
// Lazy cancellation. Cancel marks the record dead and bumps its
// generation; the record is reclaimed when the scan reaches it, when a
// rebuild sweeps it, or — so cancel-heavy churn cannot grow memory without
// bound — by a compaction sweep once dead records outnumber live ones by
// calDeadSlack. Every reclamation feeds the kernel's free list, keeping
// the steady state allocation-free.
type calendar struct {
	buckets []calBucket
	mask    int64 // len(buckets) - 1
	shift   uint  // day width = 1 << shift nanoseconds
	scanDay int64 // next day the pop scan will inspect
	bLive   int   // live events resident in buckets
	bDead   int   // cancelled records still occupying buckets

	overflow []*event // min-heap on (time, seq): events beyond the window
	ovLive   int
	ovDead   int

	// shrinkStreak counts consecutive pops that left the queue below the
	// shrink threshold; see pop for the hysteresis it implements.
	shrinkStreak int

	scratch []*event // rebuild staging, reused across rebuilds
}

// calBucket is one day list: evs[head:] holds the pending events, in
// strict (time, seq) order when sorted is set. Future days accept
// out-of-order appends (sorted drops to false) and are sorted once when
// the scan cursor reaches them — O(B log B) for the whole day instead of
// an O(B) memmove per out-of-order insert, which matters when a
// synchronized fleet parks thousands of same-instant ticks in one day.
// Slots before head are spent (nil) and are reused by insertions that
// precede the current minimum; the slice resets to its base once the
// cursor drains it.
type calBucket struct {
	head   int
	sorted bool
	evs    []*event
}

const (
	calMinBuckets = 64
	calMaxBuckets = 1 << 22
	calInitShift  = 20 // ~1 ms days before the first adaptive rebuild
	calMinShift   = 10 // ~1 µs floor on the day width
	calDeadSlack  = 64 // dead records tolerated beyond the live count
)

// pending reports the number of live queued events.
func (c *calendar) pending() int { return c.bLive + c.ovLive }

// day maps a timestamp to its day index under the current width.
func (c *calendar) day(at Time) int64 { return int64(at >> c.shift) }

// first returns the bucket's current head event, or nil when drained.
func (b *calBucket) first() *event {
	if b.head == len(b.evs) {
		return nil
	}
	return b.evs[b.head]
}

// dropHead retires the bucket's head slot, resetting the slice once empty
// so its capacity is reused from the base.
func (b *calBucket) dropHead() {
	b.evs[b.head] = nil
	b.head++
	if b.head == len(b.evs) {
		b.head = 0
		b.evs = b.evs[:0]
	}
}

// insert places a freshly scheduled event. The caller has set at/seq.
func (c *calendar) insert(k *Kernel, ev *event) {
	if c.buckets == nil {
		c.buckets = make([]calBucket, calMinBuckets)
		c.mask = calMinBuckets - 1
		c.shift = calInitShift
		c.scanDay = c.day(ev.at)
	}
	d := c.day(ev.at)
	if c.bLive+c.bDead+c.ovLive+c.ovDead == 0 {
		// Empty queue: re-anchor the cursor at the event so a long quiet
		// gap costs nothing to scan across.
		c.scanDay = d
	}
	if d-c.scanDay >= int64(len(c.buckets)) {
		ev.index = calOverflowIdx
		c.ovPush(ev)
		c.ovLive++
	} else {
		ev.index = calBucketIdx
		c.bucketPut(d, ev)
		c.bLive++
		if d < c.scanDay {
			c.scanDay = d
		}
	}
	if total := c.bLive + c.ovLive; total > 2*len(c.buckets) && len(c.buckets) < calMaxBuckets {
		c.rebuild(k)
	}
}

// bucketPut inserts ev into day d's bucket. In-order arrivals append and
// keep the bucket sorted; an out-of-order arrival for a future day appends
// too and just marks the bucket for a deferred sort (scanMin sorts it when
// the cursor gets there). Only the day currently being drained inserts
// positionally — there the insertion point is near the head, and the spent
// slots the cursor left behind absorb the shift.
func (c *calendar) bucketPut(d int64, ev *event) {
	b := &c.buckets[int(d&c.mask)]
	n := len(b.evs)
	if b.head == n {
		b.head = 0
		b.sorted = true
		b.evs = append(b.evs[:0], ev)
		return
	}
	if !b.sorted || eventLess(b.evs[n-1], ev) {
		b.evs = append(b.evs, ev)
		return
	}
	if d != c.scanDay {
		b.evs = append(b.evs, ev)
		b.sorted = false
		return
	}
	act := b.evs[b.head:]
	i := sort.Search(len(act), func(i int) bool { return eventLess(ev, act[i]) })
	if b.head > 0 && i <= len(act)-i {
		// Shift the (shorter) prefix into the spent slot in front.
		copy(b.evs[b.head-1:], b.evs[b.head:b.head+i])
		b.head--
	} else {
		b.evs = append(b.evs, nil)
		copy(b.evs[b.head+i+1:], b.evs[b.head+i:])
	}
	b.evs[b.head+i] = ev
}

// scanMin returns the minimum live event resident in buckets; the caller
// guarantees bLive > 0. Dead records surfacing at bucket heads are
// recycled on the way. On return, the result is the head of the bucket at
// scanDay.
func (c *calendar) scanMin(k *Kernel) *event {
	for steps := 0; ; {
		b := &c.buckets[int(c.scanDay&c.mask)]
		if !b.sorted {
			slices.SortFunc(b.evs[b.head:], eventCmp)
			b.sorted = true
		}
		for ev := b.first(); ev != nil && ev.dead; ev = b.first() {
			c.bDead--
			k.recycle(ev)
			b.dropHead()
		}
		if ev := b.first(); ev != nil && c.day(ev.at) == c.scanDay {
			return ev
		}
		c.scanDay++
		steps++
		if steps > len(c.buckets) {
			// A full lap without a hit: the day width has drifted far from
			// the pending distribution. Rebuild re-derives it and parks the
			// cursor on the minimum event.
			c.rebuild(k)
			steps = 0
		}
	}
}

// next returns the earliest live event without removing it, or nil when
// the queue is empty. It leaves the result at the head of the bucket at
// scanDay, so an immediately following pop is O(1).
func (c *calendar) next(k *Kernel) *event {
	for {
		var ev *event
		if c.bLive > 0 {
			ev = c.scanMin(k)
		}
		// Promote overflow deadlines due before the bucket minimum. The
		// overflow peek is O(1), so the common no-promotion case costs one
		// comparison.
		promoted := false
		for len(c.overflow) > 0 {
			h := c.overflow[0]
			if h.dead {
				c.ovPop()
				c.ovDead--
				k.recycle(h)
				continue
			}
			if ev != nil && eventLess(ev, h) {
				break
			}
			c.ovPop()
			c.ovLive--
			d := c.day(h.at)
			h.index = calBucketIdx
			c.bucketPut(d, h)
			c.bLive++
			if d < c.scanDay {
				c.scanDay = d
			}
			promoted = true
			break
		}
		if promoted {
			continue // rescan: the promoted event may now be the minimum
		}
		return ev
	}
}

// pop removes and returns the earliest live event, or nil when empty.
func (c *calendar) pop(k *Kernel) *event {
	ev := c.next(k)
	if ev == nil {
		return nil
	}
	b := &c.buckets[int(c.scanDay&c.mask)]
	if b.first() != ev {
		panic("sim: calendar cursor desynchronized from minimum event")
	}
	b.dropHead()
	c.bLive--
	ev.index = noIdx
	// Shrink hysteresis: rebuilding down the moment the live count dips
	// under a quarter of the bucket count made a fleet that drains and
	// re-arms within one tick (the MetroArrivals shape: ~10k events popped
	// and rescheduled at every mobility beat) thrash a shrink rebuild at
	// the bottom of every drain and a grow rebuild right after. Only
	// shrink once the queue has stayed small for a full bucket-count's
	// worth of pops — a transient drain never gets that far, while a
	// genuinely settled queue still compacts. Rebuilds do not affect pop
	// order, so the hysteresis is invisible to the heap oracle.
	if total := c.bLive + c.ovLive; total*4 < len(c.buckets) && len(c.buckets) > calMinBuckets {
		c.shrinkStreak++
		if c.shrinkStreak > len(c.buckets) {
			c.rebuild(k)
		}
	} else {
		c.shrinkStreak = 0
	}
	return ev
}

// cancelled accounts for a lazily cancelled record and triggers a
// compaction sweep when dead records outnumber live ones by more than the
// slack — the bound that keeps cancel-heavy churn at O(live) memory.
func (c *calendar) cancelled(k *Kernel, ev *event) {
	if ev.index == calOverflowIdx {
		c.ovLive--
		c.ovDead++
	} else {
		c.bLive--
		c.bDead++
	}
	if c.bDead+c.ovDead > c.bLive+c.ovLive+calDeadSlack {
		c.compact(k)
	}
}

// compact sweeps every dead record out of the buckets and the overflow
// heap, recycling them to the kernel's free list.
func (c *calendar) compact(k *Kernel) {
	for bi := range c.buckets {
		b := &c.buckets[bi]
		w := 0
		for _, ev := range b.evs[b.head:] {
			if ev.dead {
				k.recycle(ev)
			} else {
				b.evs[w] = ev
				w++
			}
		}
		for i := w; i < len(b.evs); i++ {
			b.evs[i] = nil
		}
		b.evs = b.evs[:w]
		b.head = 0
	}
	w := 0
	for _, ev := range c.overflow {
		if ev.dead {
			k.recycle(ev)
		} else {
			c.overflow[w] = ev
			w++
		}
	}
	for i := w; i < len(c.overflow); i++ {
		c.overflow[i] = nil
	}
	c.overflow = c.overflow[:w]
	c.ovHeapify()
	c.bDead, c.ovDead = 0, 0
}

// rebuild resizes the bucket array to ~2x the live event count, re-derives
// the day width from the live events' spread, drops dead records, and
// redistributes everything (overflow included) under the new geometry. The
// cursor is parked on the minimum event's day.
func (c *calendar) rebuild(k *Kernel) {
	s := c.scratch[:0]
	for bi := range c.buckets {
		b := &c.buckets[bi]
		for i, ev := range b.evs[b.head:] {
			if ev.dead {
				k.recycle(ev)
			} else {
				s = append(s, ev)
			}
			b.evs[b.head+i] = nil
		}
		b.evs = b.evs[:0]
		b.head = 0
	}
	for i, ev := range c.overflow {
		if ev.dead {
			k.recycle(ev)
		} else {
			s = append(s, ev)
		}
		c.overflow[i] = nil
	}
	c.overflow = c.overflow[:0]
	c.bLive, c.bDead, c.ovLive, c.ovDead = 0, 0, 0, 0
	c.shrinkStreak = 0

	n := len(s)
	size := calMinBuckets
	for size < 2*n && size < calMaxBuckets {
		size <<= 1
	}
	if size != len(c.buckets) {
		c.buckets = make([]calBucket, size)
		c.mask = int64(size - 1)
	}
	if n > 0 {
		minAt, maxAt := s[0].at, s[0].at
		for _, ev := range s[1:] {
			if ev.at < minAt {
				minAt = ev.at
			}
			if ev.at > maxAt {
				maxAt = ev.at
			}
		}
		if maxAt > minAt {
			// Day width ~ 2x the mean inter-event gap, so the live set
			// occupies about half its days at ~2 events each and the window
			// (size * width ~ 4x the spread) leaves room to roll forward.
			c.shift = shiftFor(2 * ((maxAt - minAt) / Time(n)))
		}
		if maxShift := uint(62 - bits.Len(uint(size-1))); c.shift > maxShift {
			c.shift = maxShift
		}
		if c.shift < calMinShift {
			c.shift = calMinShift
		}
		c.scanDay = c.day(minAt)
	}
	for _, ev := range s {
		d := c.day(ev.at)
		if d-c.scanDay >= int64(size) {
			ev.index = calOverflowIdx
			c.ovPush(ev)
			c.ovLive++
		} else {
			ev.index = calBucketIdx
			c.bucketPut(d, ev)
			c.bLive++
		}
	}
	for i := range s {
		s[i] = nil
	}
	c.scratch = s[:0]
}

// shiftFor returns the smallest shift whose day width covers w.
func shiftFor(w Time) uint {
	if w <= 1 {
		return calMinShift
	}
	return uint(bits.Len64(uint64(w - 1)))
}

// ovPush adds ev to the overflow min-heap.
func (c *calendar) ovPush(ev *event) {
	c.overflow = append(c.overflow, ev)
	i := len(c.overflow) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(c.overflow[i], c.overflow[p]) {
			break
		}
		c.overflow[i], c.overflow[p] = c.overflow[p], c.overflow[i]
		i = p
	}
}

// ovPop removes and returns the overflow head.
func (c *calendar) ovPop() *event {
	h := c.overflow[0]
	n := len(c.overflow) - 1
	c.overflow[0] = c.overflow[n]
	c.overflow[n] = nil
	c.overflow = c.overflow[:n]
	c.ovSiftDown(0)
	return h
}

func (c *calendar) ovSiftDown(i int) {
	n := len(c.overflow)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && eventLess(c.overflow[l], c.overflow[min]) {
			min = l
		}
		if r < n && eventLess(c.overflow[r], c.overflow[min]) {
			min = r
		}
		if min == i {
			return
		}
		c.overflow[i], c.overflow[min] = c.overflow[min], c.overflow[i]
		i = min
	}
}

func (c *calendar) ovHeapify() {
	for i := len(c.overflow)/2 - 1; i >= 0; i-- {
		c.ovSiftDown(i)
	}
}
