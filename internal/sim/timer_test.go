package sim

import "testing"

func TestTimerFires(t *testing.T) {
	k := NewKernel()
	fired := 0
	tm := NewTimer(k, func() { fired++ })
	tm.Reset(Second)
	if !tm.Active() {
		t.Fatal("timer should be active after Reset")
	}
	if tm.Deadline() != Second {
		t.Fatalf("Deadline() = %v, want 1s", tm.Deadline())
	}
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Active() {
		t.Fatal("timer should be inactive after firing")
	}
}

func TestTimerResetReplacesDeadline(t *testing.T) {
	k := NewKernel()
	var at Time
	tm := NewTimer(k, func() { at = k.Now() })
	tm.Reset(Second)
	tm.Reset(3 * Second)
	k.Run()
	if at != 3*Second {
		t.Fatalf("fired at %v, want 3s (second Reset wins)", at)
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := NewTimer(k, func() { fired = true })
	tm.Reset(Second)
	if !tm.Stop() {
		t.Fatal("Stop should report true for an armed timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	k.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerResetAt(t *testing.T) {
	k := NewKernel()
	var at Time
	tm := NewTimer(k, func() { at = k.Now() })
	tm.ResetAt(5 * Second)
	k.Run()
	if at != 5*Second {
		t.Fatalf("fired at %v, want 5s", at)
	}
}

func TestTimerRearmInsideCallback(t *testing.T) {
	k := NewKernel()
	count := 0
	var tm *Timer
	tm = NewTimer(k, func() {
		count++
		if count < 3 {
			tm.Reset(Second)
		}
	})
	tm.Reset(Second)
	k.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestNewTimerNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTimer(nil fn) must panic")
		}
	}()
	NewTimer(NewKernel(), nil)
}

func TestTickerPeriodic(t *testing.T) {
	k := NewKernel()
	var times []Time
	tk := NewTicker(k, Second, nil, func() { times = append(times, k.Now()) })
	tk.Start()
	k.RunUntil(3500 * Millisecond)
	tk.Stop()
	if len(times) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", times)
	}
	for i, at := range times {
		want := Time(i+1) * Second
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStartNow(t *testing.T) {
	k := NewKernel()
	var times []Time
	tk := NewTicker(k, Second, nil, func() { times = append(times, k.Now()) })
	tk.StartNow()
	k.RunUntil(2500 * Millisecond)
	tk.Stop()
	if len(times) != 3 || times[0] != 0 {
		t.Fatalf("ticks = %v, want first tick at t=0", times)
	}
}

func TestTickerJitter(t *testing.T) {
	k := NewKernel()
	var times []Time
	jitter := func() Time { return 100 * Millisecond }
	tk := NewTicker(k, Second, jitter, func() { times = append(times, k.Now()) })
	tk.Start()
	k.RunUntil(2500 * Millisecond)
	tk.Stop()
	if len(times) != 2 {
		t.Fatalf("ticks = %v, want 2", times)
	}
	if times[0] != 1100*Millisecond || times[1] != 2200*Millisecond {
		t.Fatalf("jittered ticks = %v, want [1.1s 2.2s]", times)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	k := NewKernel()
	count := 0
	var tk *Ticker
	tk = NewTicker(k, Second, nil, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	tk.Start()
	k.RunUntil(10 * Second)
	if count != 2 {
		t.Fatalf("count = %d, want 2 (stopped from callback)", count)
	}
}

func TestTickerNegativeJitterClamped(t *testing.T) {
	k := NewKernel()
	count := 0
	jitter := func() Time { return -2 * Second } // would make delay <= 0
	tk := NewTicker(k, Second, jitter, func() { count++ })
	tk.Start()
	k.RunUntil(10 * Millisecond)
	tk.Stop()
	if count == 0 {
		t.Fatal("ticker with over-negative jitter should still fire (clamped to 1ns)")
	}
}

func TestNewTickerValidation(t *testing.T) {
	k := NewKernel()
	for _, tc := range []struct {
		name   string
		period Time
		fn     func()
	}{
		{"zero period", 0, func() {}},
		{"nil fn", Second, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			NewTicker(k, tc.period, nil, tc.fn)
		})
	}
}

func TestTickerRestartFromCallbackDoesNotDoubleSchedule(t *testing.T) {
	k := NewKernel()
	ticks := 0
	var tk *Ticker
	tk = NewTicker(k, Second, nil, func() {
		ticks++
		if ticks == 1 {
			// Change cadence mid-run: restart from inside the callback.
			tk.Start()
		}
	})
	tk.Start()
	k.RunUntil(10 * Second)
	tk.Stop()
	// One tick chain: first fire at 1s, restart, then 2s..10s = 10 total.
	// A forked chain would roughly double this.
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10 (single chain)", ticks)
	}
	if k.Pending() != 0 {
		t.Fatalf("pending events after Stop = %d, want 0 (no orphaned chain)", k.Pending())
	}
}
