package sim

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	k := NewKernel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(k.Now()+Time(i%1000)*Microsecond, func() {})
		if i%1024 == 1023 {
			k.Run()
		}
	}
	k.Run()
}

func BenchmarkTimerResetStorm(b *testing.B) {
	k := NewKernel()
	t := NewTimer(k, func() {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset(Second)
	}
	t.Stop()
	k.Run()
}

func BenchmarkEventChurnWithCancels(b *testing.B) {
	k := NewKernel()
	events := make([]Handle, 0, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events = append(events, k.Schedule(k.Now()+Time(i%977)*Microsecond, func() {}))
		if len(events) == 128 {
			for j := 0; j < 64; j++ {
				k.Cancel(events[j])
			}
			k.Run()
			events = events[:0]
		}
	}
	k.Run()
}
