package sim

import (
	"math/rand"
	"testing"
)

// benchBoth runs a kernel benchmark against the production calendar queue
// and the retained heap oracle, so `make bench-kernel` reports the pair
// side by side.
func benchBoth(b *testing.B, fn func(b *testing.B, mk func() *Kernel)) {
	b.Run("calendar", func(b *testing.B) {
		fn(b, NewKernel)
	})
	b.Run("oracle", func(b *testing.B) {
		fn(b, func() *Kernel { return NewKernelWithConfig(KernelConfig{HeapOracle: true}) })
	})
}

func BenchmarkScheduleAndRun(b *testing.B) {
	benchBoth(b, func(b *testing.B, mk func() *Kernel) {
		k := mk()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.Schedule(k.Now()+Time(i%1000)*Microsecond, func() {})
			if i%1024 == 1023 {
				k.Run()
			}
		}
		k.Run()
	})
}

func BenchmarkTimerResetStorm(b *testing.B) {
	benchBoth(b, func(b *testing.B, mk func() *Kernel) {
		k := mk()
		t := NewTimer(k, func() {})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Reset(Second)
		}
		t.Stop()
		k.Run()
	})
}

func BenchmarkEventChurnWithCancels(b *testing.B) {
	benchBoth(b, func(b *testing.B, mk func() *Kernel) {
		k := mk()
		events := make([]Handle, 0, 128)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			events = append(events, k.Schedule(k.Now()+Time(i%977)*Microsecond, func() {}))
			if len(events) == 128 {
				for j := 0; j < 64; j++ {
					k.Cancel(events[j])
				}
				k.Run()
				events = events[:0]
			}
		}
		k.Run()
	})
}

// BenchmarkPeriodicTickers10k is the protocol-timer shape: 10k interleaved
// fixed-period tickers (HELLO/TC/mobility tick analogues) with staggered
// phases, measured per fired event at a steady 10k pending.
func BenchmarkPeriodicTickers10k(b *testing.B) {
	benchBoth(b, func(b *testing.B, mk func() *Kernel) {
		k := mk()
		const n = 10_000
		periods := [...]Time{100 * Millisecond, 250 * Millisecond, Second}
		for i := 0; i < n; i++ {
			p := periods[i%len(periods)]
			var tick func()
			phase := Time(i) * Microsecond
			tick = func() { k.After(p, tick) }
			k.After(p+phase, tick)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.Step()
		}
	})
}

// BenchmarkCancelHeavy cancels well over half of what it schedules before
// the deadline arrives — the retransmission-timer pattern that lazy
// cancellation is built for.
func BenchmarkCancelHeavy(b *testing.B) {
	benchBoth(b, func(b *testing.B, mk func() *Kernel) {
		k := mk()
		var pend []Handle
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pend = append(pend, k.After(Time(i%311+1)*Microsecond, noop))
			if len(pend) == 64 {
				for _, h := range pend[:48] { // 75% cancelled
					k.Cancel(h)
				}
				k.RunUntil(k.Now() + 100*Microsecond)
				pend = pend[:0]
			}
		}
		k.Run()
	})
}

// BenchmarkFarFutureOverflow keeps a deep overflow tier (route lifetimes,
// long timeouts) behind the near-future churn, forcing the promotion path.
func BenchmarkFarFutureOverflow(b *testing.B) {
	benchBoth(b, func(b *testing.B, mk func() *Kernel) {
		k := mk()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%8 == 0 {
				k.After(Time(i%97+1)*10*Second, noop) // far tail
			}
			k.After(Time(i%211+1)*Microsecond, noop)
			if i%512 == 511 {
				k.RunUntil(k.Now() + 300*Microsecond)
			}
		}
		k.Run()
	})
}

// BenchmarkMetroArrivals replays the metro workload's arrival shape in
// miniature: synchronized 100 ms tick bursts over the whole fleet, DCF-like
// microsecond-scale follow-ups after each burst event, and a sprinkle of
// cancelled timeouts.
func BenchmarkMetroArrivals(b *testing.B) {
	benchBoth(b, func(b *testing.B, mk func() *Kernel) {
		k := mk()
		const fleet = 2000
		rng := rand.New(rand.NewSource(1))
		var burst func()
		pending := 0
		burst = func() {
			pending--
			// Each tick spawns a couple of near-future MAC-ish events.
			k.After(Time(rng.Intn(500)+20)*Microsecond, noop)
			h := k.After(Time(rng.Intn(2000)+100)*Microsecond, noop)
			if rng.Intn(2) == 0 {
				k.Cancel(h)
			}
			if pending == 0 {
				// Re-arm the whole fleet at the next tick instant.
				at := k.Now() + 100*Millisecond
				for i := 0; i < fleet; i++ {
					k.Schedule(at, burst)
				}
				pending = fleet
			}
		}
		at := k.Now() + 100*Millisecond
		for i := 0; i < fleet; i++ {
			k.Schedule(at, burst)
		}
		pending = fleet
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.Step()
		}
	})
}

// benchSchedulePop measures one schedule+pop pair while n unrelated events
// stay pending — the depth scaling the calendar flattens from the heap's
// O(log n).
func benchSchedulePop(b *testing.B, n int) {
	benchBoth(b, func(b *testing.B, mk func() *Kernel) {
		k := mk()
		for i := 0; i < n; i++ {
			// Background set spread over ~1 s, far enough out to stay put.
			k.Schedule(Second+Time(i)*Microsecond, noop)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.AfterArg(Microsecond, noopArg, nil)
			k.Step()
		}
	})
}

func BenchmarkSchedulePopPending1k(b *testing.B)   { benchSchedulePop(b, 1_000) }
func BenchmarkSchedulePopPending10k(b *testing.B)  { benchSchedulePop(b, 10_000) }
func BenchmarkSchedulePopPending100k(b *testing.B) { benchSchedulePop(b, 100_000) }
