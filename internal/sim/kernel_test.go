package sim

import (
	"testing"
)

// forBothKernels runs a test against the calendar queue and the retained
// heap oracle; both must satisfy the same observable contract.
func forBothKernels(t *testing.T, fn func(t *testing.T, k *Kernel)) {
	t.Helper()
	t.Run("calendar", func(t *testing.T) { fn(t, NewKernel()) })
	t.Run("oracle", func(t *testing.T) {
		fn(t, NewKernelWithConfig(KernelConfig{HeapOracle: true}))
	})
}

func TestTimeConversions(t *testing.T) {
	if got := Seconds(1.5); got != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v, want %v", got, 1500*Millisecond)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("(2s).Seconds() = %v, want 2", got)
	}
	if got := Micros(50); got != 50*Microsecond {
		t.Fatalf("Micros(50) = %v, want %v", got, 50*Microsecond)
	}
	if got := (1500 * Millisecond).String(); got != "1.500000s" {
		t.Fatalf("String() = %q", got)
	}
}

func TestKernelOrdersByTime(t *testing.T) {
	forBothKernels(t, testKernelOrdersByTime)
}

func testKernelOrdersByTime(t *testing.T, k *Kernel) {
	var order []int
	k.Schedule(3*Second, func() { order = append(order, 3) })
	k.Schedule(1*Second, func() { order = append(order, 1) })
	k.Schedule(2*Second, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
	if k.Now() != 3*Second {
		t.Fatalf("Now() = %v, want 3s", k.Now())
	}
}

func TestKernelFIFOTieBreak(t *testing.T) {
	forBothKernels(t, testKernelFIFOTieBreak)
}

func testKernelFIFOTieBreak(t *testing.T, k *Kernel) {
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(Second, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of insertion order: %v", order)
		}
	}
}

func TestKernelCancel(t *testing.T) {
	forBothKernels(t, testKernelCancel)
}

func testKernelCancel(t *testing.T, k *Kernel) {
	fired := false
	ev := k.Schedule(Second, func() { fired = true })
	if !k.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if k.Cancel(ev) {
		t.Fatal("second Cancel should be a no-op returning false")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestKernelCancelZeroHandle(t *testing.T) {
	k := NewKernel()
	if k.Cancel(Handle{}) {
		t.Fatal("Cancel of the zero Handle should return false")
	}
	if (Handle{}).Scheduled() {
		t.Fatal("zero Handle should not report Scheduled")
	}
}

func TestKernelRunUntil(t *testing.T) {
	forBothKernels(t, testKernelRunUntil)
}

func testKernelRunUntil(t *testing.T, k *Kernel) {
	var fired []int
	k.Schedule(1*Second, func() { fired = append(fired, 1) })
	k.Schedule(5*Second, func() { fired = append(fired, 5) })
	k.RunUntil(2 * Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if k.Now() != 2*Second {
		t.Fatalf("Now() = %v, want 2s (clock advances to horizon)", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
	k.RunUntil(10 * Second)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want both", fired)
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(Second, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	k.Schedule(0, func() {})
}

func TestKernelNilCallbackPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback must panic")
		}
	}()
	k.Schedule(Second, nil)
}

func TestKernelReentrantScheduling(t *testing.T) {
	k := NewKernel()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			k.After(Second, chain)
		}
	}
	k.Schedule(0, chain)
	k.Run()
	if count != 5 {
		t.Fatalf("chained executions = %d, want 5", count)
	}
	if k.Now() != 4*Second {
		t.Fatalf("Now() = %v, want 4s", k.Now())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.Schedule(1*Second, func() { ran++; k.Stop() })
	k.Schedule(2*Second, func() { ran++ })
	k.Run()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (Stop halts the loop)", ran)
	}
	k.Run()
	if ran != 2 {
		t.Fatalf("ran = %d after second Run, want 2", ran)
	}
}

func TestKernelProcessedCount(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 7; i++ {
		k.Schedule(Time(i)*Second, func() {})
	}
	k.Run()
	if k.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7", k.Processed())
	}
}

func TestEventScheduledAccessors(t *testing.T) {
	k := NewKernel()
	ev := k.Schedule(3*Second, func() {})
	if !ev.Scheduled() {
		t.Fatal("event should report Scheduled before firing")
	}
	if ev.At() != 3*Second {
		t.Fatalf("At() = %v, want 3s", ev.At())
	}
	k.Run()
	if ev.Scheduled() {
		t.Fatal("event should not report Scheduled after firing")
	}
}

func TestKernelManyEventsHeapStress(t *testing.T) {
	forBothKernels(t, testKernelManyEventsStress)
}

func testKernelManyEventsStress(t *testing.T, k *Kernel) {
	// Interleave schedules and cancels to exercise queue bookkeeping.
	var events []Handle
	for i := 0; i < 1000; i++ {
		at := Time((i*7919)%997) * Millisecond
		events = append(events, k.Schedule(at, func() {}))
	}
	for i := 0; i < len(events); i += 3 {
		k.Cancel(events[i])
	}
	var last Time
	count := 0
	for k.Pending() > 0 {
		next, ok := k.peekTime()
		if !ok {
			t.Fatal("peekTime reported empty while Pending > 0")
		}
		if next < last {
			t.Fatalf("pop order violated: %v after %v", next, last)
		}
		last = next
		k.Step()
		count++
	}
	want := 1000 - (1000+2)/3
	if count != want {
		t.Fatalf("executed %d events, want %d", count, want)
	}
}

// --- event-pool recycling ---

func TestKernelCancelAfterFireIsNoOp(t *testing.T) {
	k := NewKernel()
	fired := 0
	ev := k.Schedule(Second, func() { fired++ })
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Cancel(ev) {
		t.Fatal("Cancel of an already-fired event must return false")
	}
	if ev.Scheduled() {
		t.Fatal("fired event still reports Scheduled")
	}
}

func TestKernelStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	k := NewKernel()
	stale := k.Schedule(Second, func() {})
	k.Run() // fires; the record returns to the free list

	// The next Schedule reuses the freed record under a new generation.
	fired := false
	fresh := k.Schedule(2*Second, func() { fired = true })
	if stale.Scheduled() {
		t.Fatal("stale handle reports Scheduled after its record was recycled")
	}
	if stale.At() != 0 {
		t.Fatalf("stale handle At() = %v, want 0", stale.At())
	}
	if k.Cancel(stale) {
		t.Fatal("stale handle cancelled the recycled record's new event")
	}
	if !fresh.Scheduled() {
		t.Fatal("fresh event lost its scheduling to a stale cancel")
	}
	k.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestKernelCancelThenRescheduleReusesRecord(t *testing.T) {
	k := NewKernel()
	a := k.Schedule(Second, noop)
	k.Cancel(a)
	fired := false
	b := k.Schedule(Second, func() { fired = true })
	if a.Scheduled() {
		t.Fatal("cancelled handle reports Scheduled after reuse")
	}
	if !b.Scheduled() || b.At() != Second {
		t.Fatalf("reused event not scheduled correctly: %v %v", b.Scheduled(), b.At())
	}
	k.Run()
	if !fired {
		t.Fatal("rescheduled event did not fire")
	}
}

func TestKernelScheduleArg(t *testing.T) {
	k := NewKernel()
	got := 0
	fn := func(a any) { got = a.(int) }
	k.ScheduleArg(Second, fn, 41)
	k.AfterArg(2*Second, func(a any) { got += a.(int) }, 1)
	k.Run()
	if got != 42 {
		t.Fatalf("arg callbacks computed %d, want 42", got)
	}
}

func TestKernelScheduleSteadyStateAllocFree(t *testing.T) {
	forBothKernels(t, func(t *testing.T, k *Kernel) {
		var sink *Kernel = k
		// Warm the pool, then check a schedule+run cycle allocates nothing.
		for i := 0; i < 64; i++ {
			sink.After(Time(i), noop)
		}
		k.Run()
		allocs := testing.AllocsPerRun(200, func() {
			sink.AfterArg(Microsecond, noopArg, sink)
			sink.Run()
		})
		if allocs != 0 {
			t.Fatalf("steady-state ScheduleArg+Run allocated %v times per op", allocs)
		}
	})
}

func TestKernelCancelChurnAllocFree(t *testing.T) {
	// Lazy cancellation must not leak records: a schedule-heavy loop where
	// most events are cancelled before firing has to settle into a state
	// where compaction feeds every record back to the free list.
	k := NewKernel()
	for i := 0; i < 256; i++ {
		k.Cancel(k.After(Time(i)+Second, noop))
	}
	k.Run()
	allocs := testing.AllocsPerRun(500, func() {
		h := k.AfterArg(Second, noopArg, nil)
		k.Cancel(h)
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+cancel allocated %v times per op", allocs)
	}
}

func TestHandleWhen(t *testing.T) {
	forBothKernels(t, func(t *testing.T, k *Kernel) {
		// A pending time-zero event is ambiguous through At but not When.
		h := k.Schedule(0, noop)
		if at, ok := h.When(); !ok || at != 0 {
			t.Fatalf("When() = (%v, %v), want (0, true) while pending", at, ok)
		}
		h2 := k.Schedule(3*Second, noop)
		if at, ok := h2.When(); !ok || at != 3*Second {
			t.Fatalf("When() = (%v, %v), want (3s, true)", at, ok)
		}
		k.Run()
		if at, ok := h2.When(); ok || at != 0 {
			t.Fatalf("When() = (%v, %v) after firing, want (0, false)", at, ok)
		}
		h3 := k.Schedule(5*Second, noop)
		k.Cancel(h3)
		if _, ok := h3.When(); ok {
			t.Fatal("When() reports pending after Cancel")
		}
	})
}

func noop()       {}
func noopArg(any) {}
