// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the CPS substrate of CAVENET: it plays the role ns-2's
// scheduler plays in the paper. Events are executed in strictly
// non-decreasing timestamp order; ties are broken by insertion order so a
// run is fully reproducible. The kernel is single-threaded by design — all
// model code (PHY, MAC, routing, traffic) runs inside event callbacks.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"strconv"
)

// Time is a simulation timestamp in nanoseconds since the start of the run.
//
// Nanosecond resolution comfortably covers 802.11 slot times (20 µs) while
// an int64 still spans ~292 years of simulated time.
type Time int64

// Common durations expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Seconds converts a floating-point second count to a Time.
func Seconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// Micros converts a floating-point microsecond count to a Time.
func Micros(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string {
	return strconv.FormatFloat(t.Seconds(), 'f', 6, 64) + "s"
}

// Event is a scheduled callback. The zero value is not useful; events are
// created by Kernel.Schedule or Kernel.After and may be cancelled.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // position in the heap, -1 once popped or cancelled
}

// At reports the time the event is (or was) scheduled to fire.
func (e *Event) At() Time { return e.at }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Kernel is a discrete-event scheduler. Create one with NewKernel.
type Kernel struct {
	now       Time
	seq       uint64
	queue     eventQueue
	processed uint64
	stopped   bool
}

// NewKernel returns an empty kernel positioned at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now reports the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of events waiting in the queue.
func (k *Kernel) Pending() int { return len(k.queue) }

// Processed reports the total number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// panics: it is always a model bug and silently clamping would hide it.
func (k *Kernel) Schedule(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := &Event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return ev
}

// After queues fn to run d after the current time. Negative d panics.
func (k *Kernel) After(d Time, fn func()) *Event {
	return k.Schedule(k.now+d, fn)
}

// Cancel removes a pending event from the queue. It reports whether the
// event was still pending; cancelling an already-fired or already-cancelled
// event is a harmless no-op.
func (k *Kernel) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&k.queue, ev.index)
	ev.index = -1
	ev.fn = nil
	return true
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	ev := heap.Pop(&k.queue).(*Event)
	k.now = ev.at
	k.processed++
	fn := ev.fn
	ev.fn = nil
	fn()
	return true
}

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps <= end, then sets the clock to
// end. Events scheduled after end remain queued.
func (k *Kernel) RunUntil(end Time) {
	k.stopped = false
	for !k.stopped {
		if len(k.queue) == 0 || k.queue[0].at > end {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < end {
		k.now = end
	}
}
