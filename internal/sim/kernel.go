// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the CPS substrate of CAVENET: it plays the role ns-2's
// scheduler plays in the paper. Events are executed in strictly
// non-decreasing timestamp order; ties are broken by insertion order so a
// run is fully reproducible. The kernel is single-threaded by design — all
// model code (PHY, MAC, routing, traffic) runs inside event callbacks.
//
// The production event queue is a bucketed calendar queue (calendar.go):
// O(1) amortized schedule and pop for the near-future timer churn that
// dominates a protocol run. The original container/heap implementation is
// retained behind KernelConfig.HeapOracle as the differential oracle — both
// paths pop in the identical strict (time, seq) order, and the randomized
// differential and fuzz tests assert bit-identical pop sequences.
//
// Event records are pooled: once an event fires or is cancelled its record
// returns to a free list and is reused by a later Schedule, so the steady
// state of a long run performs no per-event heap allocation. Callers hold
// Handle values, which pair the record pointer with a generation number;
// a handle to a recycled record is detected by the generation mismatch and
// behaves exactly like a handle to a fired event (not scheduled, Cancel is
// a no-op), never touching the record's new occupant.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"strconv"
)

// Time is a simulation timestamp in nanoseconds since the start of the run.
//
// Nanosecond resolution comfortably covers 802.11 slot times (20 µs) while
// an int64 still spans ~292 years of simulated time.
type Time int64

// Common durations expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Seconds converts a floating-point second count to a Time.
func Seconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// Micros converts a floating-point microsecond count to a Time.
func Micros(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string {
	return strconv.FormatFloat(t.Seconds(), 'f', 6, 64) + "s"
}

// Queue-position markers stored in event.index. The heap oracle keeps real
// indices (>= 0); the calendar queue only records which tier holds the
// record, because lazy cancellation never needs to locate it.
const (
	noIdx          = -1 // not queued
	calBucketIdx   = -2 // resident in a calendar bucket
	calOverflowIdx = -3 // resident in the far-future overflow heap
)

// event is a pooled scheduled-callback record. Exactly one of fn and afn is
// set while the event is pending. gen increments every time the record is
// released, invalidating outstanding handles. dead marks a cancelled record
// that still physically occupies a calendar bucket (lazy cancellation); it
// is skipped and recycled when the scan reaches it.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	afn   func(any)
	arg   any
	index int // heap position, or a cal*Idx tier marker, or noIdx
	gen   uint64
	dead  bool
}

// eventLess is the kernel's total order: time, then insertion sequence.
// Both queue implementations pop in exactly this order — it is the
// determinism contract every downstream golden depends on.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventCmp is eventLess as a three-way comparison for slices.SortFunc.
// Sequence numbers are unique, so the order is total and any comparison
// sort produces the identical permutation — sort stability is irrelevant
// to the determinism contract.
func eventCmp(a, b *event) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.seq < b.seq {
		return -1
	}
	return 1
}

// Handle identifies a scheduled event. It is a small value, cheap to copy
// and store; the zero Handle refers to no event (not scheduled, cancel is a
// no-op). A handle outlives its event harmlessly: once the event fires or
// is cancelled the handle reports not-scheduled even after the kernel
// recycles the underlying record for a new event.
type Handle struct {
	ev  *event
	gen uint64
}

// live reports whether the handle still refers to the pending incarnation
// of its event record. Cancellation bumps the generation immediately (even
// when the record is reclaimed lazily), so live is false the moment the
// event stops being pending.
func (h Handle) live() bool { return h.ev != nil && h.ev.gen == h.gen }

// Scheduled reports whether the event is still pending.
func (h Handle) Scheduled() bool { return h.live() }

// At reports the time the event is scheduled to fire; it returns 0 once the
// event has fired, been cancelled, or been recycled. Caveat: that sentinel
// is indistinguishable from a genuinely pending time-zero event — use When
// where the distinction matters.
func (h Handle) At() Time {
	if !h.live() {
		return 0
	}
	return h.ev.at
}

// When reports the pending fire time and whether the event is still
// scheduled; unlike At, a pending time-zero event is unambiguous.
func (h Handle) When() (Time, bool) {
	if !h.live() {
		return 0, false
	}
	return h.ev.at, true
}

// eventQueue is the container/heap implementation — the pre-calendar event
// queue, retained as the differential oracle (KernelConfig.HeapOracle).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool { return eventLess(q[i], q[j]) }

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = noIdx
	*q = old[:n-1]
	return ev
}

// KernelConfig selects the event-queue implementation.
type KernelConfig struct {
	// HeapOracle switches the kernel to the original binary-heap event
	// queue. It is the retained differential oracle: pop order is
	// bit-identical to the calendar queue, so whole runs reproduce exactly.
	// Use it to cross-check a suspected kernel bug or as the reference side
	// of a differential test; the calendar path is strictly faster.
	HeapOracle bool
}

// Kernel is a discrete-event scheduler. Create one with NewKernel.
type Kernel struct {
	now       Time
	seq       uint64
	oracle    bool
	heapq     eventQueue // oracle path (HeapOracle)
	cal       calendar   // production path
	free      []*event   // recycled event records
	processed uint64
	stopped   bool
}

// NewKernel returns an empty kernel positioned at time zero, using the
// calendar-queue event set.
func NewKernel() *Kernel {
	return NewKernelWithConfig(KernelConfig{})
}

// NewKernelWithConfig returns an empty kernel with an explicit queue
// selection; see KernelConfig.
func NewKernelWithConfig(cfg KernelConfig) *Kernel {
	return &Kernel{oracle: cfg.HeapOracle}
}

// Now reports the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of events waiting in the queue. Cancelled
// records awaiting lazy reclamation are not counted.
func (k *Kernel) Pending() int {
	if k.oracle {
		return len(k.heapq)
	}
	return k.cal.pending()
}

// Processed reports the total number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// alloc takes an event record from the free list, or grows the pool.
func (k *Kernel) alloc(at Time) *event {
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		ev = &event{index: noIdx}
	}
	ev.at = at
	ev.seq = k.seq
	k.seq++
	return ev
}

// invalidate bumps the record's generation (cutting off every outstanding
// handle) and drops its callback references. The record may still occupy a
// calendar bucket afterwards; recycle returns it to the free list once it
// is physically out of the queue.
func (k *Kernel) invalidate(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
}

// recycle returns a record that is no longer queued to the free list.
func (k *Kernel) recycle(ev *event) {
	ev.dead = false
	ev.index = noIdx
	k.free = append(k.free, ev)
}

// release invalidates outstanding handles to ev and returns the record to
// the free list.
func (k *Kernel) release(ev *event) {
	k.invalidate(ev)
	k.recycle(ev)
}

func (k *Kernel) push(ev *event) Handle {
	if k.oracle {
		heap.Push(&k.heapq, ev)
	} else {
		k.cal.insert(k, ev)
	}
	return Handle{ev: ev, gen: ev.gen}
}

// Schedule queues fn to run at absolute time at. Scheduling in the past
// panics: it is always a model bug and silently clamping would hide it.
func (k *Kernel) Schedule(at Time, fn func()) Handle {
	if at < k.now {
		panic(fmt.Sprintf("sim: t=%v: schedule at %v is %v in the past", k.now, at, k.now-at))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := k.alloc(at)
	ev.fn = fn
	return k.push(ev)
}

// ScheduleArg queues fn(arg) to run at absolute time at. Unlike Schedule,
// the callback receives its state as an argument, so hot paths can pass a
// package-level func plus a pointer argument and avoid allocating a closure
// per event. The same past-time and nil-callback panics apply.
func (k *Kernel) ScheduleArg(at Time, fn func(any), arg any) Handle {
	if at < k.now {
		panic(fmt.Sprintf("sim: t=%v: schedule at %v is %v in the past", k.now, at, k.now-at))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := k.alloc(at)
	ev.afn = fn
	ev.arg = arg
	return k.push(ev)
}

// After queues fn to run d after the current time. Negative d panics.
func (k *Kernel) After(d Time, fn func()) Handle {
	return k.Schedule(k.now+d, fn)
}

// AfterArg queues fn(arg) to run d after the current time; see ScheduleArg.
func (k *Kernel) AfterArg(d Time, fn func(any), arg any) Handle {
	return k.ScheduleArg(k.now+d, fn, arg)
}

// Cancel removes a pending event from the queue. It reports whether the
// event was still pending; cancelling an already-fired, already-cancelled
// or recycled handle is a harmless no-op.
//
// On the calendar path cancellation is lazy: the handle dies immediately
// (Scheduled reports false, the generation is bumped), but the record stays
// in its bucket marked dead until the scan reaches it or a compaction sweep
// reclaims it — there is no positional removal to pay for.
func (k *Kernel) Cancel(h Handle) bool {
	if !h.live() {
		return false
	}
	ev := h.ev
	if k.oracle {
		if ev.index < 0 {
			return false
		}
		heap.Remove(&k.heapq, ev.index)
		ev.index = noIdx
		k.release(ev)
		return true
	}
	if ev.index != calBucketIdx && ev.index != calOverflowIdx {
		return false
	}
	k.invalidate(ev)
	ev.dead = true
	k.cal.cancelled(k, ev)
	return true
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	var ev *event
	if k.oracle {
		if len(k.heapq) == 0 {
			return false
		}
		ev = heap.Pop(&k.heapq).(*event)
	} else {
		ev = k.cal.pop(k)
		if ev == nil {
			return false
		}
	}
	k.now = ev.at
	k.processed++
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	// Recycle before running so the callback can schedule into the freed
	// record; its handle is distinguished by the bumped generation.
	k.release(ev)
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
	return true
}

// peekTime reports the earliest pending event time without executing it.
// On the calendar path the lookup may advance the scan cursor and reclaim
// cancelled records — deterministic state changes that never affect pop
// order.
func (k *Kernel) peekTime() (Time, bool) {
	if k.oracle {
		if len(k.heapq) == 0 {
			return 0, false
		}
		return k.heapq[0].at, true
	}
	ev := k.cal.next(k)
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps <= end, then sets the clock to
// end. Events scheduled after end remain queued.
func (k *Kernel) RunUntil(end Time) {
	k.stopped = false
	for !k.stopped {
		at, ok := k.peekTime()
		if !ok || at > end {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < end {
		k.now = end
	}
}
