package scenario

import (
	"math"
	"reflect"
	"testing"
)

// streamDiffSeeds reports the seed bank for the streamed-vs-recorded
// differential suite (trimmed in -short mode like the invariant bank).
func streamDiffSeeds() []int64 {
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 2}
}

// TestStreamedMatchesRecorded is the gate of the streaming-mobility
// refactor: for every catalogued scenario × protocol × seed, the run
// driven by the live streaming source must be bit-identical — metrics,
// per-sender series, drop reasons, control-plane wire counters, MAC
// counters — to the run driven by the materialized recording of the same
// source. reflect.DeepEqual over the full Result covers every exported
// field, so any divergence between the two mobility paths fails loudly.
func TestStreamedMatchesRecorded(t *testing.T) {
	for _, name := range propertyNames(t) {
		spec, _ := Get(name)
		for _, proto := range AllProtocols() {
			t.Run(string(proto)+"/"+name, func(t *testing.T) {
				t.Parallel()
				for _, seed := range streamDiffSeeds() {
					run := spec.Shrunk()
					run.Protocol = proto
					run.Seed = seed
					streamed, err := Run(run)
					if err != nil {
						t.Fatalf("seed %d streamed: %v", seed, err)
					}
					trace, err := BuildTrace(run)
					if err != nil {
						t.Fatalf("seed %d trace: %v", seed, err)
					}
					recorded, err := RunOnTrace(run, trace)
					if err != nil {
						t.Fatalf("seed %d recorded: %v", seed, err)
					}
					if !reflect.DeepEqual(streamed, recorded) {
						t.Fatalf("seed %d: streamed run diverged from the recorded-trace run\nstreamed:  %+v\nrecorded: %+v",
							seed, streamed, recorded)
					}
				}
			})
		}
	}
}

// metroScaled returns the metro workload rescaled to a testable fleet —
// the same 4-lane coupled, signalized structure at the same density.
func metroScaled(t *testing.T, vehicles int) Spec {
	t.Helper()
	spec, ok := Get("metro")
	if !ok {
		t.Fatal("metro not registered")
	}
	scaled, err := spec.WithVehicles(vehicles)
	if err != nil {
		t.Fatal(err)
	}
	return scaled
}

// TestMetroScaledStreamedMatchesRecorded runs the metro structure (four
// coupled lanes, signals, lane changes) through the full network-level
// differential at a scaled fleet, covering the heavy spec's code paths
// without the 10k-node runtime.
func TestMetroScaledStreamedMatchesRecorded(t *testing.T) {
	run := metroScaled(t, 200).Shrunk()
	run.Seed = 3
	streamed, err := Run(run)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := BuildTrace(run)
	if err != nil {
		t.Fatal(err)
	}
	recorded, err := RunOnTrace(run, trace)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, recorded) {
		t.Fatal("scaled metro: streamed run diverged from the recorded-trace run")
	}
}

// TestMetroScaledInvariants gives the heavy workload its targeted
// invariant coverage: the scaled metro must hold every harness invariant
// under all three protocols.
func TestMetroScaledInvariants(t *testing.T) {
	for _, proto := range AllProtocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			t.Parallel()
			if proto == OLSR && testing.Short() {
				// OLSR's proactive control plane at this density is the slow
				// cell by an order of magnitude; -short (and the race job,
				// which runs -short) keeps the reactive protocols only.
				t.Skip("OLSR scaled-metro cell skipped in short mode")
			}
			run := metroScaled(t, 100).Shrunk()
			run.Protocol = proto
			run.Seed = 2
			_, report, err := RunChecked(run)
			if err != nil {
				t.Fatal(err)
			}
			if !report.Ok() {
				t.Errorf("invariants violated:\n%s", report)
			}
		})
	}
}

// TestMetroMobilityStreamsBitIdentical exercises the full 10k-vehicle
// metro mobility at scale: every position the streaming source serves
// across the whole run, at the world's 100 ms tick grid, must equal the
// materialized recording's answer exactly. This is the memory claim's
// correctness half — the streamed path that makes metro affordable is
// still the same mobility.
func TestMetroMobilityStreamsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-vehicle mobility sweep skipped in short mode")
	}
	spec, ok := Get("metro")
	if !ok {
		t.Fatal("metro not registered")
	}
	src, err := BuildSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := BuildTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumNodes() != trace.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", src.NumNodes(), trace.NumNodes())
	}
	horizon := spec.SimTime.Seconds()
	diffs := 0
	for tick := 0; ; tick++ {
		tsec := float64(tick) * 0.1
		if tsec > horizon {
			break
		}
		for n := 0; n < src.NumNodes(); n++ {
			if got, want := src.At(n, tsec), trace.At(n, tsec); got != want {
				diffs++
				if diffs <= 5 {
					t.Errorf("node %d at t=%.1f: streamed %v, recorded %v", n, tsec, got, want)
				}
			}
		}
	}
	if diffs > 0 {
		t.Fatalf("%d position divergences between streamed and recorded metro mobility", diffs)
	}
}

// TestWithVehicles pins the scale-override semantics: density (vehicles
// per meter of circuit) is preserved, lanes stay populated, and signal
// positions scale with the circuit.
func TestWithVehicles(t *testing.T) {
	spec, _ := Get("metro")
	scaled, err := spec.WithVehicles(200)
	if err != nil {
		t.Fatal(err)
	}
	if got := scaled.TotalVehicles(); got != 200 {
		t.Fatalf("scaled to %d vehicles, want 200", got)
	}
	origDensity := float64(spec.TotalVehicles()) / spec.CircuitMeters
	newDensity := float64(scaled.TotalVehicles()) / scaled.CircuitMeters
	if math.Abs(newDensity-origDensity)/origDensity > 0.05 {
		t.Fatalf("density drifted: %g -> %g", origDensity, newDensity)
	}
	for i, v := range scaled.LaneVehicles {
		if v <= 0 {
			t.Fatalf("lane %d emptied by scaling", i)
		}
	}
	for i, sig := range scaled.Signals {
		if sig.PositionMeters >= scaled.CircuitMeters {
			t.Fatalf("signal %d at %v m beyond the scaled %v m circuit", i, sig.PositionMeters, scaled.CircuitMeters)
		}
	}
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
	// Scaling below a flow endpoint must fail loudly, not silently rewire
	// the workload.
	if _, err := spec.WithVehicles(5); err == nil {
		t.Fatal("scaling below the flow endpoints succeeded")
	}
}
