package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"cavenet/internal/ca"
)

// TestUrbanSpecValidation covers the street-grid spec surface: defaults,
// knob incompatibilities and the caps that keep hostile specs from
// forcing huge allocations.
func TestUrbanSpecValidation(t *testing.T) {
	base := func() Spec {
		return Spec{Name: "u", GridRows: 3, GridCols: 3}
	}
	s, err := base().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if s.BlockMeters != 150 || s.GridVehicles != 40 {
		t.Fatalf("urban defaults: block=%v fleet=%d", s.BlockMeters, s.GridVehicles)
	}
	if s.Nodes != 40 {
		t.Fatalf("urban Nodes defaulted to %d, want the fleet", s.Nodes)
	}

	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"one-sided grid", func(s *Spec) { s.GridCols = 0 }, "at least 2x2"},
		{"degenerate grid", func(s *Spec) { s.GridRows, s.GridCols = 1, 5 }, "at least 2x2"},
		{"grid side cap", func(s *Spec) { s.GridRows = maxGridDim + 1 }, "side cap"},
		{"ring knobs rejected", func(s *Spec) { s.CircuitMeters = 3000 }, "incompatible"},
		{"ramp rejected", func(s *Spec) { s.RampSeconds = 10 }, "incompatible"},
		{"short blocks", func(s *Spec) { s.BlockMeters = 20 }, "shorter than"},
		{"block cap", func(s *Spec) { s.BlockMeters = 50000 }, "10 km cap"},
		{"over capacity", func(s *Spec) { s.GridVehicles = 100000 }, "capacity"},
		{"half a signal cycle", func(s *Spec) { s.GridSignalGreen = 20 }, "signal cycle"},
		{"station count drift", func(s *Spec) { s.Nodes = 10 }, "stations for a grid"},
		{"rsu off grid", func(s *Spec) {
			s.Uplink = &Uplink{Row: 7, Col: 0, ExternalBase: 1000, ExternalCount: 4}
		}, "outside"},
		{"external range under node ids", func(s *Spec) {
			s.Uplink = &Uplink{Row: 1, Col: 1, ExternalBase: 30, ExternalCount: 4}
		}, "above every node ID"},
		{"empty external range", func(s *Spec) {
			s.Uplink = &Uplink{Row: 1, Col: 1, ExternalBase: 1000}
		}, "external range size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("invalid spec accepted: %+v", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// An uplink without a grid has nowhere to stand.
	if err := (Spec{Name: "r", Uplink: &Uplink{ExternalBase: 100, ExternalCount: 1}}).Validate(); err == nil {
		t.Fatal("ring spec with an uplink accepted")
	}
	// A sender must not mix uplink and in-network destinations.
	mixed := base()
	mixed.Uplink = &Uplink{Row: 1, Col: 1, ExternalBase: 1000, ExternalCount: 4}
	mixed.Flows = []Flow{{Src: 2, Dst: 1000}, {Src: 2, Dst: 0}}
	if err := mixed.Validate(); err == nil || !strings.Contains(err.Error(), "mixes") {
		t.Fatalf("mixed-destination sender accepted: %v", err)
	}
}

// TestWithVehiclesGridRescale pins the urban scale-override semantics:
// fleet density per street-meter is preserved (block length stretches
// with the fleet, snapped to the CA cell grid), while grid shape,
// signals and the uplink stay fixed.
func TestWithVehiclesGridRescale(t *testing.T) {
	spec, ok := Get("downtown")
	if !ok {
		t.Fatal("downtown not registered")
	}
	orig, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	streets := float64(orig.GridRows*(orig.GridCols-1) + orig.GridCols*(orig.GridRows-1))
	scaled, err := spec.WithVehicles(2 * orig.GridVehicles)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.GridVehicles != 2*orig.GridVehicles {
		t.Fatalf("scaled fleet = %d", scaled.GridVehicles)
	}
	if scaled.GridRows != orig.GridRows || scaled.GridCols != orig.GridCols {
		t.Fatalf("scaling changed the grid shape: %dx%d", scaled.GridRows, scaled.GridCols)
	}
	if scaled.GridSignalGreen != orig.GridSignalGreen || scaled.GridSignalRed != orig.GridSignalRed {
		t.Fatal("scaling changed the signal cycle")
	}
	if !reflect.DeepEqual(scaled.Uplink, orig.Uplink) {
		t.Fatalf("scaling changed the uplink: %+v", scaled.Uplink)
	}
	origDensity := float64(orig.GridVehicles) / (streets * orig.BlockMeters)
	newDensity := float64(scaled.GridVehicles) / (streets * scaled.BlockMeters)
	if math.Abs(newDensity-origDensity)/origDensity > 0.05 {
		t.Fatalf("street density drifted: %g -> %g veh/m", origDensity, newDensity)
	}
	if rem := math.Mod(scaled.BlockMeters, ca.CellLength); rem != 0 {
		t.Fatalf("scaled block %v m not on the CA cell grid", scaled.BlockMeters)
	}
	if scaled.Nodes != scaled.GridVehicles+1 {
		t.Fatalf("scaled Nodes = %d, want fleet+RSU", scaled.Nodes)
	}
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
	// Scaling to the same fleet is the identity.
	same, err := spec.WithVehicles(orig.GridVehicles)
	if err != nil {
		t.Fatal(err)
	}
	if same.BlockMeters != orig.BlockMeters {
		t.Fatalf("identity rescale moved the block length: %v", same.BlockMeters)
	}
}

// TestGPSROracleRunIdentity is the run-level differential contract: GPSR
// routed through the brute-force neighbor-scan oracle must reproduce the
// spatial-grid fast path bit for bit.
func TestGPSROracleRunIdentity(t *testing.T) {
	spec, ok := Get("manhattan")
	if !ok {
		t.Fatal("manhattan not registered")
	}
	run := spec.Shrunk()
	run.Seed = 11
	fast, err := Run(run)
	if err != nil {
		t.Fatal(err)
	}
	run.GPSROracle = true
	oracle, err := Run(run)
	if err != nil {
		t.Fatal(err)
	}
	// The result echoes its spec; align the one knob that legitimately
	// differs so DeepEqual checks only the simulation outputs.
	oracle.Spec.GPSROracle = false
	if !reflect.DeepEqual(fast, oracle) {
		t.Fatal("GPSR oracle and fast-path runs diverged")
	}
}

// TestUplinkStats pins the V2I accounting: a downtown run reports the
// uplink slice of the workload, and its totals reconcile with the
// per-sender counters of the external flows.
func TestUplinkStats(t *testing.T) {
	spec, ok := Get("downtown")
	if !ok {
		t.Fatal("downtown not registered")
	}
	run := spec.Shrunk()
	run.Seed = 5
	res, err := Run(run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Uplink == nil {
		t.Fatal("downtown run reported no uplink stats")
	}
	var sent, del uint64
	for _, f := range run.Flows {
		if !run.ExternalDst(f.Dst) {
			continue
		}
		sent += res.Sent[f.Src]
		del += res.Delivered[f.Src]
	}
	if res.Uplink.Sent != sent || res.Uplink.Delivered != del {
		t.Fatalf("uplink totals %+v do not reconcile with senders (%d/%d)", res.Uplink, del, sent)
	}
	if res.Uplink.Sent == 0 || res.Uplink.Delivered == 0 {
		t.Fatalf("OLSR HNA uplink carried nothing: %+v", res.Uplink)
	}
	if want := float64(del) / float64(sent); res.Uplink.PDR != want {
		t.Fatalf("uplink PDR = %v, want %v", res.Uplink.PDR, want)
	}

	// Without an uplink the result stays structurally identical to before:
	// no stats block at all.
	manhattan, _ := Get("manhattan")
	plain, err := Run(manhattan.Shrunk())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Uplink != nil {
		t.Fatalf("uplink stats on a spec without an uplink: %+v", plain.Uplink)
	}
}
