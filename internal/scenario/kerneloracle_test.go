package scenario

import (
	"reflect"
	"testing"
)

// TestKernelOracleRunIdentity is the whole-run differential contract for
// the event kernel: a scenario executed on the retained binary-heap oracle
// must reproduce the calendar-queue run bit for bit — same metrics, same
// per-second series, same fault outcomes. The churn entry is the sharpest
// probe: fault-driven crashes and retransmission timeouts make the run
// cancellation-heavy, exercising the lazy-cancel path end to end.
func TestKernelOracleRunIdentity(t *testing.T) {
	for _, name := range []string{"churn", "manhattan"} {
		t.Run(name, func(t *testing.T) {
			spec, ok := Get(name)
			if !ok {
				t.Fatalf("%s not registered", name)
			}
			run := spec.Shrunk()
			run.Seed = 17
			fast, err := Run(run)
			if err != nil {
				t.Fatal(err)
			}
			run.KernelOracle = true
			oracle, err := Run(run)
			if err != nil {
				t.Fatal(err)
			}
			// The result echoes its spec; align the one knob that
			// legitimately differs so DeepEqual checks only the simulation
			// outputs.
			oracle.Spec.KernelOracle = false
			if !reflect.DeepEqual(fast, oracle) {
				t.Fatal("kernel oracle and calendar-queue runs diverged")
			}
		})
	}
}
