package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"cavenet/internal/sim"
)

// TestCatalogue asserts the registry ships the promised workloads and that
// every spec validates.
func TestCatalogue(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Fatalf("catalogue has %d scenarios, want >= 7: %v", len(names), names)
	}
	for _, want := range []string{"highway", "multilane", "signalized", "rushhour", "bidirectional", "sparse", "metro"} {
		if _, ok := Get(want); !ok {
			t.Errorf("catalogue is missing %q", want)
		}
	}
	for _, s := range Specs() {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s does not validate: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("spec %s has no description", s.Name)
		}
	}
}

// TestRegistryCopies asserts Get hands out isolated copies: mutating a
// returned spec (or a Shrunk derivative) must not corrupt the catalogue.
func TestRegistryCopies(t *testing.T) {
	a, ok := Get("highway")
	if !ok {
		t.Fatal("highway not registered")
	}
	sh := a.Shrunk()
	if len(sh.Flows) == 0 {
		t.Fatal("shrunk spec has no flows")
	}
	sh.Flows[0].Rate = 999
	sh.LaneVehicles[0] = 1
	b, _ := Get("highway")
	if len(b.Flows) > 0 && b.Flows[0].Rate == 999 {
		t.Fatal("Shrunk aliases the registered spec's flows")
	}
	if b.LaneVehicles != nil && b.LaneVehicles[0] == 1 {
		t.Fatal("Shrunk aliases the registered spec's lane vehicles")
	}
}

// TestRegisterRejects covers duplicate and invalid registrations.
func TestRegisterRejects(t *testing.T) {
	if err := Register(Spec{Name: "highway"}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register(Spec{}); err == nil {
		t.Fatal("nameless registration accepted")
	}
	if err := Register(Spec{Name: "bad", Flows: []Flow{{Src: 3, Dst: 3}}}); err == nil {
		t.Fatal("self-flow registration accepted")
	}
}

// invariantSeeds reports the seed bank for the property suite: ≥ 20 seeds
// normally, trimmed in -short mode.
func invariantSeeds() []int64 {
	n := 20
	if testing.Short() {
		n = 3
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// propertyNames lists the catalogue entries the exhaustive property
// suites cover: everything except Heavy scale workloads, which get
// targeted scaled coverage (see streaming_test.go) instead of the full
// scenario × protocol × seed grid.
func propertyNames(t *testing.T) []string {
	t.Helper()
	var names []string
	for _, name := range Names() {
		spec, ok := Get(name)
		if !ok {
			t.Fatalf("catalogue entry %q vanished", name)
		}
		if !spec.Heavy {
			names = append(names, name)
		}
	}
	return names
}

// TestCatalogueInvariants is the property-based suite of the issue: every
// registered scenario × every protocol × a bank of random seeds, run under
// the full invariant harness. Any violation — a vanished packet, a TTL
// anomaly, a routing loop, a CA collision or teleport, a missed metric
// floor — fails the test with the full report.
func TestCatalogueInvariants(t *testing.T) {
	for _, name := range propertyNames(t) {
		spec, _ := Get(name)
		for _, proto := range AllProtocols() {
			t.Run(fmt.Sprintf("%s/%s", name, proto), func(t *testing.T) {
				t.Parallel()
				for _, seed := range invariantSeeds() {
					run := spec.Shrunk()
					run.Protocol = proto
					run.Seed = seed
					res, report, err := RunChecked(run)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if !report.Ok() {
						t.Errorf("seed %d: invariants violated:\n%s", seed, report)
					}
					if res == nil || len(res.Senders) == 0 {
						t.Fatalf("seed %d: empty result", seed)
					}
				}
			})
		}
	}
}

// TestScenarioDeterminism is the determinism regression: every scenario
// replayed twice must produce deeply equal results, extending the PR 2
// bit-identical contract to the registry.
func TestScenarioDeterminism(t *testing.T) {
	for _, name := range propertyNames(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, _ := Get(name)
			run := spec.Shrunk()
			run.Seed = 42
			a, err := Run(run)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(run)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("scenario %s replay diverged", name)
			}
		})
	}
}

// TestSweepBitIdenticalAcrossWorkers extends the experiment engine's
// determinism contract to the scenario grid: the JSON-serialized sweep
// output must be byte-identical for 1 and 8 workers.
func TestSweepBitIdenticalAcrossWorkers(t *testing.T) {
	scenarios := []string{"highway", "sparse"}
	if testing.Short() {
		scenarios = scenarios[:1]
	}
	encode := func(workers int) []byte {
		rows, err := Sweep(SweepConfig{
			Scenarios: scenarios,
			Protocols: []Protocol{AODV, DYMO},
			Trials:    2,
			Seed:      7,
			Workers:   workers,
			Shrunk:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(rows); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := encode(1)
	eight := encode(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("sweep output differs between 1 and 8 workers:\n%s\nvs\n%s", one, eight)
	}
}

// TestSweepChecked asserts the checked sweep counts zero violations over
// the catalogue cells it covers.
func TestSweepChecked(t *testing.T) {
	rows, err := Sweep(SweepConfig{
		Scenarios: []string{"signalized"},
		Protocols: []Protocol{OLSR},
		Trials:    1,
		Seed:      3,
		Shrunk:    true,
		Checked:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Violations != 0 {
			t.Errorf("%s/%s: %d invariant violations in sweep", row.Scenario, row.Protocol, row.Violations)
		}
	}
}

// TestShrunkPreservesIdentity asserts shrinking rescales time without
// touching the scenario's structure.
func TestShrunkPreservesIdentity(t *testing.T) {
	spec, _ := Get("multilane")
	sh := spec.Shrunk()
	if sh.SimTime != 20*sim.Second {
		t.Fatalf("shrunk sim time = %v", sh.SimTime)
	}
	if sh.Lanes != 3 || sh.LaneChangeP != 0.3 {
		t.Fatalf("shrinking changed the road structure: %+v", sh)
	}
	if got, want := len(sh.Flows), 6; got != want {
		t.Fatalf("shrunk flow count = %d, want %d", got, want)
	}
	for _, f := range sh.Flows {
		if f.Stop > sh.SimTime {
			t.Fatalf("shrunk flow window %v..%v exceeds sim time %v", f.Start, f.Stop, sh.SimTime)
		}
	}
}

// TestRampClampedToHorizon pins the fix for shortened rush-hour runs: a
// ramp longer than half the horizon is clamped so every vehicle activates
// within the run instead of being silently stranded in staging.
func TestRampClampedToHorizon(t *testing.T) {
	s, err := Spec{Name: "r", LaneVehicles: []int{10}, RampSeconds: 40, SimTime: 15 * sim.Second}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if s.RampSeconds != 7.5 {
		t.Fatalf("RampSeconds = %v, want 7.5", s.RampSeconds)
	}
	for i, at := range s.activationSteps() {
		if at > int(s.SimTime.Seconds()) {
			t.Fatalf("node %d activates at step %d, beyond the %v horizon", i, at, s.SimTime)
		}
	}
}

// TestEmptyFlowsMeansNoTraffic pins the nil-vs-empty Flows contract: nil
// defaults to the Table I workload, an explicit empty slice is a
// traffic-free (control-overhead-only) scenario.
func TestEmptyFlowsMeansNoTraffic(t *testing.T) {
	withDefault, err := Spec{Name: "d"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if len(withDefault.Flows) != 8 {
		t.Fatalf("nil flows -> %d flows, want the 8 Table I defaults", len(withDefault.Flows))
	}
	quiet, err := Spec{Name: "q", Flows: []Flow{}, SimTime: 5 * sim.Second}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if len(quiet.Flows) != 0 {
		t.Fatalf("explicit empty flows resurrected %d flows", len(quiet.Flows))
	}
	res, err := Run(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Senders) != 0 || res.ControlPackets == 0 {
		t.Fatalf("traffic-free run: senders=%v ctrl=%d", res.Senders, res.ControlPackets)
	}
}
