package scenario

import (
	"fmt"

	"cavenet/internal/netsim"
	"cavenet/internal/routing/aodv"
	"cavenet/internal/routing/dymo"
	"cavenet/internal/routing/gpsr"
	"cavenet/internal/routing/olsr"
)

// Protocol selects the routing protocol under test. (The core package
// aliases this type, so the paper-facing API is unchanged.)
type Protocol string

// The protocols evaluated by the paper, plus GPSR: the geographic
// baseline the urban workloads add — position beacons instead of routes,
// for comparison against the paper's topological three.
const (
	AODV Protocol = "aodv"
	OLSR Protocol = "olsr"
	DYMO Protocol = "dymo"
	GPSR Protocol = "gpsr"
)

// AllProtocols lists the supported routing protocols: the paper's three
// in its comparison order, then GPSR.
func AllProtocols() []Protocol { return []Protocol{AODV, OLSR, DYMO, GPSR} }

// ParseProtocol maps a protocol name to its constant.
func ParseProtocol(name string) (Protocol, error) {
	switch Protocol(name) {
	case AODV, OLSR, DYMO, GPSR:
		return Protocol(name), nil
	default:
		return "", fmt.Errorf("scenario: unknown protocol %q", name)
	}
}

// routerFactory builds the per-node router for the spec's protocol and
// ablation knobs.
func (s *Spec) routerFactory() netsim.RouterFactory {
	switch s.Protocol {
	case OLSR:
		etx := s.OLSRETX
		// V2I uplink: the RSU gateway advertises the external range via
		// HNA. Wired inside the factory — not after world assembly — so a
		// crash-replacement router re-advertises when the RSU recovers.
		gw := netsim.NodeID(-1)
		var assoc olsr.NetworkAssoc
		if u := s.Uplink; u != nil {
			gw = netsim.NodeID(s.GatewayNode())
			assoc = olsr.NetworkAssoc{
				From: netsim.NodeID(u.ExternalBase),
				To:   netsim.NodeID(u.ExternalBase + u.ExternalCount - 1),
			}
		}
		return func(n *netsim.Node) netsim.Router {
			r := olsr.New(n, olsr.Config{ETX: etx})
			if n.ID() == gw {
				r.AdvertiseNetwork(assoc)
			}
			return r
		}
	case GPSR:
		oracle := s.GPSROracle
		return func(n *netsim.Node) netsim.Router {
			return gpsr.New(n, gpsr.Config{Oracle: oracle})
		}
	case DYMO:
		pa := !s.DYMONoPathAccumulation
		oracle := s.DataPlaneOracle
		return func(n *netsim.Node) netsim.Router {
			return dymo.New(n, dymo.Config{PathAccumulation: &pa, Oracle: oracle})
		}
	default:
		er := !s.AODVNoExpandingRing
		oracle := s.DataPlaneOracle
		return func(n *netsim.Node) netsim.Router {
			return aodv.New(n, aodv.Config{ExpandingRing: &er, Oracle: oracle})
		}
	}
}
