package scenario

import (
	"fmt"

	"cavenet/internal/netsim"
	"cavenet/internal/routing/aodv"
	"cavenet/internal/routing/dymo"
	"cavenet/internal/routing/olsr"
)

// Protocol selects the routing protocol under test. (The core package
// aliases this type, so the paper-facing API is unchanged.)
type Protocol string

// The protocols evaluated by the paper.
const (
	AODV Protocol = "aodv"
	OLSR Protocol = "olsr"
	DYMO Protocol = "dymo"
)

// AllProtocols lists the paper's three routing protocols in its comparison
// order.
func AllProtocols() []Protocol { return []Protocol{AODV, OLSR, DYMO} }

// ParseProtocol maps a protocol name to its constant.
func ParseProtocol(name string) (Protocol, error) {
	switch Protocol(name) {
	case AODV, OLSR, DYMO:
		return Protocol(name), nil
	default:
		return "", fmt.Errorf("scenario: unknown protocol %q", name)
	}
}

// routerFactory builds the per-node router for the spec's protocol and
// ablation knobs.
func (s *Spec) routerFactory() netsim.RouterFactory {
	switch s.Protocol {
	case OLSR:
		etx := s.OLSRETX
		return func(n *netsim.Node) netsim.Router {
			return olsr.New(n, olsr.Config{ETX: etx})
		}
	case DYMO:
		pa := !s.DYMONoPathAccumulation
		return func(n *netsim.Node) netsim.Router {
			return dymo.New(n, dymo.Config{PathAccumulation: &pa})
		}
	default:
		er := !s.AODVNoExpandingRing
		return func(n *netsim.Node) netsim.Router {
			return aodv.New(n, aodv.Config{ExpandingRing: &er})
		}
	}
}
