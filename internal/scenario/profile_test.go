package scenario

import (
	"os"
	"testing"
)

// TestMetroProfileRun is a manual profiling hook, enabled by
// CAVENET_PROFILE_METRO=1; see PERF.md's regeneration notes.
func TestMetroProfileRun(t *testing.T) {
	if os.Getenv("CAVENET_PROFILE_METRO") == "" {
		t.Skip("set CAVENET_PROFILE_METRO=1 to run")
	}
	spec, _ := Get("metro")
	spec.SimTime = spec.SimTime / 6
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
}
