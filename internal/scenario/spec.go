// Package scenario is the declarative workload registry of the repo: a
// Scenario spec bundles a road/mobility generator (lanes, density,
// signals, ramps), a traffic workload (CBR flows), a routing protocol and
// metric expectations in one plain config struct. Specs are registered
// into a catalogue (Register/Get/Names), runnable from the CLI
// (`cavenet scenario list|run`), sweepable over scenarios × protocols ×
// seeds on the deterministic parallel engine (Sweep), and checkable under
// the cross-protocol invariant harness (RunChecked).
//
// Every future workload registers a Spec here instead of hand-rolling a
// main(): registration buys CLI access, property tests across protocols
// and seeds, determinism regression, and the invariant harness for free.
package scenario

import (
	"fmt"
	"math"

	"cavenet/internal/ca"
	"cavenet/internal/fault"
	"cavenet/internal/sim"
)

// Flow is one constant-bit-rate traffic flow of a scenario.
type Flow struct {
	// Src and Dst are node IDs (global vehicle IDs of the road).
	Src, Dst int
	// Rate is packets per second (default 5, Table I).
	Rate float64
	// PacketBytes is the application payload size (default 512, Table I).
	PacketBytes int
	// Start and Stop bound the active window; zero values default to
	// SimTime/10 and SimTime − SimTime/10 (Table I's 10 s and 90 s shape).
	Start, Stop sim.Time
}

// SignalSpec places a traffic signal on one lane of the scenario road.
type SignalSpec struct {
	// Lane indexes the signalized lane.
	Lane int
	// PositionMeters locates the blocked site along the lane.
	PositionMeters float64
	// GreenSteps/RedSteps set the cycle in CA steps (1 s each); OffsetSteps
	// shifts the phase.
	GreenSteps, RedSteps, OffsetSteps int
}

// Uplink declares the V2I infrastructure uplink of an urban scenario: a
// fixed roadside unit (RSU) placed at a grid intersection, appended to
// the node list after the fleet, advertising an external address range
// via OLSR HNA (the car-to-hotspot workload of the paper's §II). Flows
// may then address any ID in the external range; vehicles route them to
// the RSU — the MANET-side endpoint — which delivers them locally.
// Protocols without network-association support drop such flows
// explicitly, so the workload stays conservation-clean under every
// protocol even though only OLSR can complete the uplink.
type Uplink struct {
	// Row, Col locate the RSU's intersection on the grid.
	Row, Col int
	// ExternalBase and ExternalCount define the advertised external
	// destination range [ExternalBase, ExternalBase+ExternalCount). The
	// range must sit above every node ID.
	ExternalBase, ExternalCount int
}

// Contains reports whether dst falls in the advertised external range.
func (u *Uplink) Contains(dst int) bool {
	return dst >= u.ExternalBase && dst < u.ExternalBase+u.ExternalCount
}

// Expect declares the metric floors a scenario promises to meet under
// every routing protocol; the invariant harness reports a violation when a
// run falls short. Zero values disable a bound.
type Expect struct {
	// MinTotalPDR is the minimum packet delivery ratio across all senders.
	MinTotalPDR float64
	// MinDelivered is the minimum total number of delivered data packets.
	MinDelivered uint64
	// MaxMeanDelaySec caps the per-sender mean end-to-end delay.
	MaxMeanDelaySec float64
}

// Spec is the plain config struct a Scenario is constructed from. The zero
// value (plus a Name) reproduces the paper's Table I single-lane highway.
type Spec struct {
	// Name identifies the scenario in the registry and the CLI.
	Name string
	// Description is the one-line catalogue summary.
	Description string

	// ---- Road / mobility generator ----

	// Lanes is the number of parallel lanes (default 1).
	Lanes int
	// LaneVehicles is the vehicle count per lane. A single entry is
	// replicated across lanes; the default is {30} (Table I).
	LaneVehicles []int
	// CircuitMeters is the ring-lane circumference (default 3000, Table I).
	CircuitMeters float64
	// SlowdownP is the NaS randomization parameter (default 0.3).
	SlowdownP float64
	// CAWarmup is the number of CA steps discarded before recording
	// (default 300).
	CAWarmup int
	// LaneSpacingM separates parallel lanes radially (default 4 m).
	LaneSpacingM float64
	// RandomStart places vehicles at random distinct sites instead of the
	// default even spacing — clustered initial conditions for
	// connectivity studies.
	RandomStart bool
	// LaneChangeP > 0 couples same-direction lanes with the symmetric
	// lane-change rule at that probability.
	LaneChangeP float64
	// Bidirectional reverses the second half of the lanes (opposing
	// traffic, Fig. 1's interference setting). Incompatible with
	// LaneChangeP.
	Bidirectional bool
	// Signals places traffic signals on lanes (queue-forming crosspoints).
	Signals []SignalSpec
	// RampSeconds > 0 staggers network entry over the first RampSeconds of
	// the run (rush hour): node i is parked in an isolated staging area
	// until its activation time i·RampSeconds/(N−1), then joins the road.
	RampSeconds float64
	// ---- Urban road-network generator ----

	// GridRows and GridCols switch the road generator from ring lanes to
	// a Manhattan street grid of one-way signalized segments (both must
	// be >= 2 when either is set; see geometry.Manhattan for the
	// direction scheme). Grid specs size their fleet with GridVehicles
	// and reject the ring-only knobs (Lanes, LaneVehicles, CircuitMeters,
	// Bidirectional, LaneChangeP, Signals, RandomStart, RampSeconds).
	GridRows, GridCols int
	// BlockMeters is the street length between adjacent intersections
	// (default 150 m, a downtown block of 20 CA cells).
	BlockMeters float64
	// GridVehicles is the total fleet, apportioned over the grid's
	// streets proportionally to length (default 40).
	GridVehicles int
	// GridSignalGreen and GridSignalRed set every intersection's
	// exit-signal cycle in CA steps (1 s each); vertical streets run in
	// antiphase. Both zero means unsignalized intersections.
	GridSignalGreen, GridSignalRed int
	// Uplink declares a V2I roadside-unit gateway (urban specs only).
	Uplink *Uplink

	// Heavy marks a scenario too large for the exhaustive property
	// suites (every-scenario × every-protocol × 20 seeds) and for the
	// default sweep catalogue: tests and sweeps cover heavy scenarios
	// with targeted, scaled or explicitly named runs instead. It has no
	// effect on running the scenario itself.
	Heavy bool

	// ---- Network & traffic workload ----

	// Nodes is the station count (default: all vehicles).
	Nodes int
	// Protocol is the routing protocol under test (default AODV).
	Protocol Protocol
	// SimTime is the simulated duration (default 100 s, Table I).
	SimTime sim.Time
	// RangeMeters is the radio decode range (default 250, Table I).
	RangeMeters float64
	// DataRateBPS is the 802.11 data rate (default 2 Mb/s, Table I).
	DataRateBPS float64
	// Seed drives every RNG stream of the scenario.
	Seed int64
	// Flows is the CBR workload; the default is Table I's nodes 1–8 → 0.
	Flows []Flow

	// ---- Ablations (shared with the core adapter) ----

	OLSRETX                bool
	AODVNoExpandingRing    bool
	DYMONoPathAccumulation bool
	NoCapture              bool
	RTSThreshold           int
	// GPSROracle routes GPSR greedy next-hop selection through the
	// retained brute-force neighbor scan (the differential oracle)
	// instead of the spatial-grid fast path; results are bit-identical.
	GPSROracle bool
	// DataPlaneOracle routes the AODV and DYMO routing tables through
	// their retained map-based implementations (the differential oracles)
	// instead of the dense-index fast paths; results are bit-identical.
	DataPlaneOracle bool
	// KernelOracle runs the simulation on the kernel's retained
	// binary-heap event queue instead of the calendar queue; pop order
	// (and therefore every result) is bit-identical, only slower.
	KernelOracle bool

	// ---- Fault injection ----

	// Faults declares the scenario's fault workload (node churn, blackout
	// windows, link impairments); the zero value is fault-free and leaves
	// the run byte-identical to a world that never saw the fault layer.
	// The plan is expanded per run from (Faults, Seed, Nodes, SimTime), so
	// sweeps stay bit-identical for any worker count.
	Faults fault.Spec

	// Expect declares the scenario's metric floors.
	Expect Expect
}

// Urban reports whether the spec uses the road-network (street grid)
// generator instead of ring lanes.
func (s *Spec) Urban() bool { return s.GridRows != 0 || s.GridCols != 0 }

// rsuCount reports the number of fixed roadside-unit nodes appended after
// the fleet.
func (s *Spec) rsuCount() int {
	if s.Uplink != nil {
		return 1
	}
	return 0
}

// GatewayNode reports the RSU gateway's node ID (the first static node
// after the fleet), or -1 when the spec declares no uplink.
func (s *Spec) GatewayNode() int {
	if s.Uplink == nil {
		return -1
	}
	return s.TotalVehicles()
}

// ExternalDst reports whether dst addresses the uplink's external range
// (and therefore terminates at the gateway RSU rather than at a node).
func (s *Spec) ExternalDst(dst int) bool {
	return s.Uplink != nil && s.Uplink.Contains(dst)
}

// TotalVehicles reports the vehicle count across lanes — or the grid
// fleet size for urban specs (after normalize).
func (s *Spec) TotalVehicles() int {
	if s.Urban() {
		return s.GridVehicles
	}
	n := 0
	for _, v := range s.LaneVehicles {
		n += v
	}
	return n
}

// maxGridDim caps the street-grid side length: far beyond any plausible
// workload, small enough that hostile specs (fuzzers, config files)
// cannot force quadratic intersection/segment allocations.
const maxGridDim = 64

// normalizeUrban validates and defaults the street-grid generator knobs.
func (s *Spec) normalizeUrban() error {
	if s.GridRows < 2 || s.GridCols < 2 {
		return fmt.Errorf("scenario %s: street grid %dx%d needs at least 2x2 intersections", s.Name, s.GridRows, s.GridCols)
	}
	if s.GridRows > maxGridDim || s.GridCols > maxGridDim {
		return fmt.Errorf("scenario %s: street grid %dx%d exceeds the %d-intersection side cap", s.Name, s.GridRows, s.GridCols, maxGridDim)
	}
	if s.Lanes != 0 || len(s.LaneVehicles) != 0 || s.CircuitMeters != 0 || s.Bidirectional ||
		s.LaneChangeP != 0 || len(s.Signals) != 0 || s.RandomStart || s.RampSeconds != 0 {
		return fmt.Errorf("scenario %s: ring-road knobs are incompatible with a street grid", s.Name)
	}
	if s.BlockMeters == 0 {
		s.BlockMeters = 150
	}
	if minBlock := float64(s.vmax()+1) * ca.CellLength; s.BlockMeters < minBlock {
		return fmt.Errorf("scenario %s: %v m blocks are shorter than the %v m a street needs (vmax+1 cells)", s.Name, s.BlockMeters, minBlock)
	}
	if s.BlockMeters > 10000 {
		return fmt.Errorf("scenario %s: %v m blocks exceed the 10 km cap", s.Name, s.BlockMeters)
	}
	if s.GridVehicles == 0 {
		s.GridVehicles = 40
	}
	if s.GridVehicles < 0 {
		return fmt.Errorf("scenario %s: negative fleet %d", s.Name, s.GridVehicles)
	}
	// Mirror ca.NewGridNetwork's per-street capacity (half the sites of
	// each street) so over-dense specs fail at validation, not at build.
	cells := int(s.BlockMeters/ca.CellLength + 0.5)
	if cells < s.vmax()+1 {
		cells = s.vmax() + 1
	}
	streets := s.GridRows*(s.GridCols-1) + s.GridCols*(s.GridRows-1)
	if capacity := streets * (cells / 2); s.GridVehicles > capacity {
		return fmt.Errorf("scenario %s: %d vehicles exceed the grid's capacity of %d", s.Name, s.GridVehicles, capacity)
	}
	if s.GridSignalGreen < 0 || s.GridSignalRed < 0 || (s.GridSignalGreen == 0) != (s.GridSignalRed == 0) {
		return fmt.Errorf("scenario %s: signal cycle %d/%d (both phases positive, or both zero for unsignalized)", s.Name, s.GridSignalGreen, s.GridSignalRed)
	}
	if u := s.Uplink; u != nil {
		if u.Row < 0 || u.Row >= s.GridRows || u.Col < 0 || u.Col >= s.GridCols {
			return fmt.Errorf("scenario %s: uplink RSU at intersection (%d,%d) outside the %dx%d grid", s.Name, u.Row, u.Col, s.GridRows, s.GridCols)
		}
		if u.ExternalCount <= 0 || u.ExternalCount > 1<<20 {
			return fmt.Errorf("scenario %s: uplink external range size %d", s.Name, u.ExternalCount)
		}
		if u.ExternalBase <= s.GridVehicles || u.ExternalBase > 1<<30 {
			return fmt.Errorf("scenario %s: uplink external base %d must sit above every node ID (fleet %d + RSU)", s.Name, u.ExternalBase, s.GridVehicles)
		}
	}
	return nil
}

func (s *Spec) normalize() error {
	if s.Urban() {
		if err := s.normalizeUrban(); err != nil {
			return err
		}
		return s.normalizeShared()
	}
	if s.Uplink != nil {
		return fmt.Errorf("scenario %s: a V2I uplink needs a street grid for its RSU", s.Name)
	}
	if s.BlockMeters != 0 || s.GridVehicles != 0 || s.GridSignalGreen != 0 || s.GridSignalRed != 0 {
		return fmt.Errorf("scenario %s: street-grid knobs without GridRows/GridCols", s.Name)
	}
	if s.Lanes == 0 {
		s.Lanes = 1
	}
	if s.Lanes < 0 {
		return fmt.Errorf("scenario %s: negative lane count %d", s.Name, s.Lanes)
	}
	switch len(s.LaneVehicles) {
	case 0:
		s.LaneVehicles = []int{30}
	case 1:
	default:
		if len(s.LaneVehicles) != s.Lanes {
			return fmt.Errorf("scenario %s: %d lane vehicle counts for %d lanes", s.Name, len(s.LaneVehicles), s.Lanes)
		}
	}
	if len(s.LaneVehicles) == 1 && s.Lanes > 1 {
		v := s.LaneVehicles[0]
		s.LaneVehicles = make([]int, s.Lanes)
		for i := range s.LaneVehicles {
			s.LaneVehicles[i] = v
		}
	}
	for i, v := range s.LaneVehicles {
		if v <= 0 {
			return fmt.Errorf("scenario %s: lane %d has %d vehicles", s.Name, i, v)
		}
	}
	if s.CircuitMeters == 0 {
		s.CircuitMeters = 3000
	}
	if s.CircuitMeters < ca.CellLength {
		return fmt.Errorf("scenario %s: circuit %v m shorter than one cell", s.Name, s.CircuitMeters)
	}
	if s.LaneChangeP < 0 || s.LaneChangeP > 1 {
		return fmt.Errorf("scenario %s: lane-change probability %v outside [0,1]", s.Name, s.LaneChangeP)
	}
	if s.LaneChangeP > 0 && s.Bidirectional {
		return fmt.Errorf("scenario %s: lane changes across opposing lanes are not modeled", s.Name)
	}
	if s.LaneChangeP > 0 && s.Lanes < 2 {
		return fmt.Errorf("scenario %s: lane changes need >= 2 lanes", s.Name)
	}
	if s.Bidirectional && s.Lanes < 2 {
		return fmt.Errorf("scenario %s: bidirectional traffic needs >= 2 lanes", s.Name)
	}
	cells := int(math.Round(s.CircuitMeters / ca.CellLength))
	for i, sig := range s.Signals {
		if sig.Lane < 0 || sig.Lane >= s.Lanes {
			return fmt.Errorf("scenario %s: signal %d on lane %d of %d", s.Name, i, sig.Lane, s.Lanes)
		}
		site := int(math.Round(sig.PositionMeters / ca.CellLength))
		if site < 0 || site >= cells {
			return fmt.Errorf("scenario %s: signal %d at %v m outside the lane", s.Name, i, sig.PositionMeters)
		}
	}
	if s.RampSeconds < 0 {
		return fmt.Errorf("scenario %s: negative ramp %v", s.Name, s.RampSeconds)
	}
	return s.normalizeShared()
}

// normalizeShared defaults and validates the knobs common to both road
// generators: CA parameters, station count, protocol, timing, radio and
// the traffic workload.
func (s *Spec) normalizeShared() error {
	if s.SlowdownP == 0 {
		s.SlowdownP = 0.3
	}
	if s.SlowdownP < 0 || s.SlowdownP > 1 {
		return fmt.Errorf("scenario %s: slowdown probability %v outside [0,1]", s.Name, s.SlowdownP)
	}
	if s.CAWarmup == 0 {
		s.CAWarmup = 300
	}
	if s.LaneSpacingM == 0 {
		s.LaneSpacingM = 4
	}
	if s.Urban() {
		// Urban worlds network the whole fleet plus any RSU: the gateway's
		// node ID is TotalVehicles(), and a partial station count would
		// shift it silently.
		want := s.TotalVehicles() + s.rsuCount()
		if s.Nodes == 0 {
			s.Nodes = want
		}
		if s.Nodes != want {
			return fmt.Errorf("scenario %s: %d stations for a grid of %d vehicles + %d RSU", s.Name, s.Nodes, s.TotalVehicles(), s.rsuCount())
		}
	} else {
		if s.Nodes == 0 {
			s.Nodes = s.TotalVehicles()
		}
		if s.Nodes < 0 || s.Nodes > s.TotalVehicles() {
			return fmt.Errorf("scenario %s: %d stations for %d vehicles", s.Name, s.Nodes, s.TotalVehicles())
		}
	}
	switch s.Protocol {
	case AODV, OLSR, DYMO, GPSR:
	case "":
		s.Protocol = AODV
	default:
		return fmt.Errorf("scenario %s: unknown protocol %q", s.Name, s.Protocol)
	}
	if s.SimTime == 0 {
		s.SimTime = 100 * sim.Second
	}
	if s.SimTime < 0 {
		return fmt.Errorf("scenario %s: negative sim time %v", s.Name, s.SimTime)
	}
	// A ramp longer than the horizon would strand the tail of the fleet in
	// the staging area for the whole run — silently turning a density ramp
	// into a smaller static network (e.g. a rushhour run shortened with
	// -time). Clamp so activation always completes with the second half of
	// the run at full density.
	if half := s.SimTime.Seconds() / 2; s.RampSeconds > half {
		s.RampSeconds = half
	}
	if s.RangeMeters == 0 {
		s.RangeMeters = 250
	}
	if s.DataRateBPS == 0 {
		s.DataRateBPS = 2e6
	}
	// nil means "default workload" (Table I's 1–8 → 0); an explicitly
	// empty, non-nil slice is a traffic-free scenario — legitimate for
	// control-overhead-only measurements.
	if s.Flows == nil {
		s.Flows = make([]Flow, 0, 8)
		for i := 1; i <= 8 && i < s.Nodes; i++ {
			s.Flows = append(s.Flows, Flow{Src: i, Dst: 0})
		}
	}
	// A sender must not mix external (uplink) and in-network destinations:
	// per-sender delivery counters would then conflate V2I and V2V traffic
	// and the uplink PDR could not be attributed exactly.
	extSender := make(map[int]bool)
	for i := range s.Flows {
		f := &s.Flows[i]
		ext := s.ExternalDst(f.Dst)
		if f.Src < 0 || f.Src >= s.Nodes || f.Dst < 0 || (!ext && f.Dst >= s.Nodes) {
			return fmt.Errorf("scenario %s: flow %d endpoints %d->%d outside [0,%d)", s.Name, i, f.Src, f.Dst, s.Nodes)
		}
		if was, seen := extSender[f.Src]; seen && was != ext {
			return fmt.Errorf("scenario %s: flow %d: sender %d mixes uplink and in-network destinations", s.Name, i, f.Src)
		}
		extSender[f.Src] = ext
		if f.Src == f.Dst {
			return fmt.Errorf("scenario %s: flow %d sends to itself", s.Name, i)
		}
		if f.Rate == 0 {
			f.Rate = 5
		}
		if f.Rate < 0 {
			return fmt.Errorf("scenario %s: flow %d rate %v", s.Name, i, f.Rate)
		}
		if f.PacketBytes == 0 {
			f.PacketBytes = 512
		}
		if f.Start == 0 {
			f.Start = s.SimTime / 10
		}
		if f.Stop == 0 {
			f.Stop = s.SimTime - s.SimTime/10
		}
		if f.Stop < f.Start {
			return fmt.Errorf("scenario %s: flow %d window [%v,%v] inverted", s.Name, i, f.Start, f.Stop)
		}
	}
	if err := s.Faults.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return nil
}

// Validate normalizes a copy of the spec and reports whether it is
// runnable.
func (s Spec) Validate() error {
	s = s.clone()
	return s.normalize()
}

// Normalized returns a copy of the spec with every default applied.
func (s Spec) Normalized() (Spec, error) {
	s = s.clone()
	err := s.normalize()
	return s, err
}

// clone deep-copies the spec's slices so mutating one copy (normalize
// defaults, Shrunk rewrites) can never alias another — in particular the
// registered catalogue entries. Flows preserves nil-ness: nil means
// "default workload" while an empty non-nil slice means "no traffic", and
// collapsing the latter to nil would resurrect the default.
func (s Spec) clone() Spec {
	s.LaneVehicles = append([]int(nil), s.LaneVehicles...)
	s.Signals = append([]SignalSpec(nil), s.Signals...)
	if s.Flows != nil {
		s.Flows = append(make([]Flow, 0, len(s.Flows)), s.Flows...)
	}
	if s.Uplink != nil {
		u := *s.Uplink
		s.Uplink = &u
	}
	s.Faults = s.Faults.Clone()
	return s
}

// Shrunk returns a copy scaled down for fast property tests: simulation
// time is cut to 20 s, flow windows to [2 s, 18 s], the CA warmup to 100
// steps and any activation ramp to the first half of the run. Densities,
// lane structure and flow endpoints — the scenario's identity — are
// untouched.
func (s Spec) Shrunk() Spec {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return s
	}
	if s.SimTime > 20*sim.Second {
		s.SimTime = 20 * sim.Second
	}
	for i := range s.Flows {
		s.Flows[i].Start = 2 * sim.Second
		s.Flows[i].Stop = s.SimTime - 2*sim.Second
	}
	if s.CAWarmup > 100 {
		s.CAWarmup = 100
	}
	if half := s.SimTime.Seconds() / 2; s.RampSeconds > half {
		s.RampSeconds = half
	}
	return s
}

// WithVehicles returns a copy of the spec rescaled to a total of n
// vehicles at the original traffic density: vehicles are distributed
// over the existing lanes proportionally and the circuit (with its
// signal positions) is stretched or shrunk by the same factor, so the
// CA dynamics stay in the same regime — the quick scale-experiment knob
// behind `cavenet scenario run -nodes`. Urban specs rescale the same
// way: the block length stretches by the fleet factor (snapped to the
// CA cell grid), so vehicles-per-street-meter is preserved while the
// grid shape, signals and any uplink stay fixed. Flows are kept as
// declared; scaling below a flow endpoint is a validation error.
func (s Spec) WithVehicles(n int) (Spec, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return s, err
	}
	orig := s.TotalVehicles()
	if n <= 0 {
		return s, fmt.Errorf("scenario %s: cannot rescale to %d vehicles", s.Name, n)
	}
	if n == orig {
		return s, nil
	}
	factor := float64(n) / float64(orig)
	if s.Urban() {
		s.GridVehicles = n
		s.BlockMeters = math.Round(s.BlockMeters*factor/ca.CellLength) * ca.CellLength
		s.Nodes = n + s.rsuCount()
		err := s.normalize()
		return s, err
	}
	// Largest-remainder apportionment keeps every lane populated and the
	// counts summing exactly to n.
	counts := make([]int, len(s.LaneVehicles))
	rem := make([]float64, len(s.LaneVehicles))
	total := 0
	for i, v := range s.LaneVehicles {
		exact := float64(v) * factor
		counts[i] = int(exact)
		rem[i] = exact - float64(counts[i])
		total += counts[i]
	}
	for total < n {
		best := 0
		for i := range rem {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		total++
	}
	for i := range counts {
		if counts[i] == 0 {
			return s, fmt.Errorf("scenario %s: rescaling to %d vehicles empties lane %d", s.Name, n, i)
		}
	}
	s.LaneVehicles = counts
	s.CircuitMeters = math.Round(s.CircuitMeters*factor/ca.CellLength) * ca.CellLength
	for i := range s.Signals {
		s.Signals[i].PositionMeters *= factor
	}
	s.Nodes = n
	err := s.normalize()
	return s, err
}

// activationSteps reports, for a ramp scenario, the trace sample index at
// which each node joins the road (0 for always-active nodes); nil without
// a ramp.
func (s *Spec) activationSteps() []int {
	if s.RampSeconds <= 0 || s.Nodes < 2 {
		return nil
	}
	steps := make([]int, s.Nodes)
	for i := range steps {
		at := s.RampSeconds * float64(i) / float64(s.Nodes-1)
		steps[i] = int(math.Ceil(at))
	}
	return steps
}

// vmax reports the speed limit in sites per step (the CA default; specs
// currently do not override it).
func (s *Spec) vmax() int { return ca.DefaultVMax }

// MaxSampleStepMeters bounds how far any vehicle can move between two
// trace samples: the CA speed limit plus one lane-change sideways hop,
// with a meter of slack for ring-chord rounding.
func (s *Spec) MaxSampleStepMeters() float64 {
	return float64(s.vmax())*ca.CellLength + s.LaneSpacingM + 1
}
