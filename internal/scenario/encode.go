package scenario

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteSweepCSV renders sweep rows in the CLI's CSV dialect. Both
// `cavenet scenario sweep` and the experiment service's artifact endpoint
// call this one renderer, so their outputs are byte-identical by
// construction. Every write is error-checked: a closed pipe or full disk
// surfaces as an error instead of silently truncating the table.
func WriteSweepCSV(w io.Writer, rows []SweepRow) error {
	if _, err := fmt.Fprintln(w, "# scenario x protocol x seed sweep; metrics are mean over trials with a 95% CI half-width"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "scenario,protocol,trials,pdr,pdrCI95,delay_s,delayCI95_s,ctrlPackets,ctrlPacketsCI95,delivered,violations,downtimeSec,faultPDR"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.4f,%.4f,%.5f,%.5f,%.1f,%.1f,%d,%d,%.1f,%.4f\n",
			r.Scenario, r.Protocol, r.Trials,
			r.PDR.Mean, r.PDR.CI95,
			r.DelaySec.Mean, r.DelaySec.CI95,
			r.ControlPackets.Mean, r.ControlPackets.CI95,
			r.Delivered, r.Violations,
			r.DowntimeSec.Mean, r.FaultPDR.Mean); err != nil {
			return err
		}
	}
	return nil
}

// WriteSweepJSON renders sweep rows as the CLI's indented JSON document.
func WriteSweepJSON(w io.Writer, rows []SweepRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
