package scenario

import (
	"reflect"
	"testing"
)

// TestDataPlaneOracleRunIdentity is the whole-run differential contract
// for the AODV and DYMO dense-index routing tables: a scenario routed
// through the retained map-based oracle tables must reproduce the
// dense-path run bit for bit — same metrics, same per-second series, same
// fault outcomes. The churn entry is the sharpest probe: crashes exercise
// breakVia/RERR floods, discovery-buffer drains and cold router
// replacement; downtown adds urban mobility plus uplink flows toward
// external addresses no AODV/DYMO route ever resolves, exercising the
// discovery-timeout and no-route paths.
func TestDataPlaneOracleRunIdentity(t *testing.T) {
	for _, proto := range []Protocol{AODV, DYMO} {
		for _, name := range []string{"churn", "downtown"} {
			t.Run(string(proto)+"/"+name, func(t *testing.T) {
				spec, ok := Get(name)
				if !ok {
					t.Fatalf("%s not registered", name)
				}
				run := spec.Shrunk()
				run.Protocol = proto
				run.Seed = 23
				fast, err := Run(run)
				if err != nil {
					t.Fatal(err)
				}
				run.DataPlaneOracle = true
				oracle, err := Run(run)
				if err != nil {
					t.Fatal(err)
				}
				// The result echoes its spec; align the one knob that
				// legitimately differs so DeepEqual checks only the
				// simulation outputs.
				oracle.Spec.DataPlaneOracle = false
				if !reflect.DeepEqual(fast, oracle) {
					t.Fatal("dataplane oracle and dense-path runs diverged")
				}
			})
		}
	}
}
