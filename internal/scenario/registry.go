package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps scenario names to their specs. Registration normally
// happens from init (the built-in catalogue) but is safe at any time.
var registry = struct {
	sync.RWMutex
	specs map[string]Spec
}{specs: make(map[string]Spec)}

// Register adds a scenario to the registry. The spec must validate and
// the name must be unused; it is stored in normalized form, so Get hands
// out specs with every default made explicit.
func Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("scenario: registering a spec without a name")
	}
	norm, err := s.Normalized()
	if err != nil {
		return err
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.specs[s.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", s.Name)
	}
	registry.specs[s.Name] = norm
	return nil
}

// MustRegister is Register for init-time catalogue entries.
func MustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Get returns a copy of the named scenario's spec.
func Get(name string) (Spec, bool) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.specs[name]
	if !ok {
		return Spec{}, false
	}
	return s.clone(), true
}

// Names lists the registered scenario names in sorted order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.specs))
	for name := range registry.specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Specs returns copies of all registered specs in sorted-name order.
func Specs() []Spec {
	names := Names()
	out := make([]Spec, 0, len(names))
	for _, name := range names {
		s, _ := Get(name)
		out = append(out, s)
	}
	return out
}
