package scenario

import (
	"reflect"
	"testing"
)

// faultScenarios are the catalogue's fault-injection workloads.
var faultScenarios = []string{"churn", "blackout", "flaky-corridor"}

// TestFaultPlanDeterministic is the fault analogue of the sweep-determinism
// contract: plans are derived from forked RNG roots, never from worker
// scheduling, so a sweep over the fault workloads is bit-identical for any
// worker count — resilience columns included.
func TestFaultPlanDeterministic(t *testing.T) {
	cfg := SweepConfig{
		Scenarios: faultScenarios,
		Trials:    2,
		Seed:      7,
		Shrunk:    true,
		Checked:   true,
	}
	serial := cfg
	serial.Workers = 1
	parallel := cfg
	parallel.Workers = 8
	a, err := Sweep(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault sweep diverged across worker counts:\n1 worker: %+v\n8 workers: %+v", a, b)
	}
	for _, row := range a {
		if row.Violations != 0 {
			t.Errorf("%s/%s: %d invariant violations under faults", row.Scenario, row.Protocol, row.Violations)
		}
	}
	// Non-vacuity: the node-fault rows must report downtime.
	for _, row := range a {
		if row.Scenario != "flaky-corridor" && row.DowntimeSec.Mean <= 0 {
			t.Errorf("%s/%s: zero downtime in a node-fault workload", row.Scenario, row.Protocol)
		}
	}
}

// TestFaultWorkloadsBite pins that the catalogue's fault scenarios actually
// perturb the run (crash drops recorded, resilience populated) while every
// invariant — conservation with the "node:down" custody rule included —
// still holds.
func TestFaultWorkloadsBite(t *testing.T) {
	churn, _ := Get("churn")
	churn = churn.Shrunk()
	churn.Protocol = AODV
	churn.Seed = 1
	res, rep, err := RunChecked(churn)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("churn violates invariants:\n%s", rep)
	}
	if res.Resilience == nil {
		t.Fatal("churn run returned no resilience summary")
	}
	r := res.Resilience
	if r.Windows == 0 || r.DowntimeNodeSec <= 0 || r.Recoveries == 0 {
		t.Fatalf("churn resilience is vacuous: %+v", r)
	}
	if res.Drops["node:down"] == 0 {
		t.Fatal("churn run recorded no node:down drops; crashes flushed nothing")
	}
	if r.SentDuring == 0 || r.DeliveredDuring == 0 {
		t.Fatalf("no traffic classified into fault windows: %+v", r)
	}

	blackout, _ := Get("blackout")
	blackout = blackout.Shrunk()
	blackout.Protocol = AODV
	blackout.Seed = 1
	res, rep, err = RunChecked(blackout)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("blackout violates invariants:\n%s", rep)
	}
	r = res.Resilience
	if r == nil || r.Windows != 1 {
		t.Fatalf("blackout resilience = %+v, want one merged window", r)
	}
	if r.PDRDuring >= r.PDROutside {
		t.Fatalf("blackout PDR during window %.3f not below outside %.3f — the mass crash did nothing", r.PDRDuring, r.PDROutside)
	}

	flaky, _ := Get("flaky-corridor")
	flaky = flaky.Shrunk()
	flaky.Protocol = AODV
	flaky.Seed = 1
	res, rep, err = RunChecked(flaky)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("flaky-corridor violates invariants:\n%s", rep)
	}
	r = res.Resilience
	if r == nil || r.Windows != 1 || r.DowntimeNodeSec != 0 || r.Recoveries != 0 {
		t.Fatalf("flaky-corridor resilience = %+v, want one pure-impairment window with no downtime", r)
	}
}

// TestFaultFreeResultShape pins the structural no-op: a scenario without
// faults yields a nil Resilience pointer and no node:down drops, so
// fault-free results marshal identically to pre-fault ones.
func TestFaultFreeResultShape(t *testing.T) {
	s, _ := Get("highway")
	s = s.Shrunk()
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience != nil {
		t.Fatalf("fault-free run carries a resilience summary: %+v", res.Resilience)
	}
	if n := res.Drops["node:down"]; n != 0 {
		t.Fatalf("fault-free run recorded %d node:down drops", n)
	}
	if res.MACStats.DownDrops != 0 {
		t.Fatalf("fault-free run recorded %d MAC down-flush drops", res.MACStats.DownDrops)
	}
}
