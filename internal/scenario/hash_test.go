package scenario

import "testing"

// TestHashCanonical pins the hash's identity contract: normalization is
// the canonical form, so a spec and its fully spelled-out normalization
// share one hash, and repeated hashing is stable.
func TestHashCanonical(t *testing.T) {
	spec, ok := Get("highway")
	if !ok {
		t.Fatal("highway scenario missing from catalogue")
	}
	h1, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash not stable: %s vs %s", h1, h2)
	}
	norm, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	hn, err := norm.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hn != h1 {
		t.Fatalf("normalized spec hashes differently: %s vs %s", hn, h1)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not a sha256 hex digest", h1)
	}
}

// TestHashSensitivity: any material change to the workload must change
// the content address — the property the serve result cache keys on.
func TestHashSensitivity(t *testing.T) {
	base, ok := Get("highway")
	if !ok {
		t.Fatal("highway scenario missing from catalogue")
	}
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Spec){
		"seed":     func(s *Spec) { s.Seed += 1 },
		"protocol": func(s *Spec) { s.Protocol = GPSR },
		"simtime":  func(s *Spec) { s.SimTime *= 2 },
		"churn":    func(s *Spec) { s.Faults.ChurnRatePerMin = 7 },
	}
	for name, mutate := range mutations {
		s := base.clone()
		mutate(&s)
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == h0 {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
	// Distinct scenarios must not collide.
	other, ok := Get("sparse")
	if !ok {
		t.Fatal("sparse scenario missing from catalogue")
	}
	ho, err := other.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ho == h0 {
		t.Error("distinct scenarios share a hash")
	}
}
