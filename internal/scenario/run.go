package scenario

import (
	"fmt"

	"cavenet/internal/fault"
	"cavenet/internal/mac"
	"cavenet/internal/metrics"
	"cavenet/internal/mobility"
	"cavenet/internal/netsim"
	"cavenet/internal/phy"
	"cavenet/internal/scenario/check"
	"cavenet/internal/sim"
	"cavenet/internal/traffic"
)

// Result carries a scenario run's outcome: the paper's metrics keyed by
// sender node ID, plus the aggregate overhead and MAC counters.
type Result struct {
	// Spec is the normalized scenario that ran.
	Spec Spec
	// Senders lists the distinct flow sources in first-appearance order.
	Senders []int
	// Goodput maps sender ID to its goodput time series in bps, 1-s bins.
	Goodput map[int][]float64
	// PDR maps sender ID to its packet delivery ratio.
	PDR map[int]float64
	// Sent and Delivered count data packets per sender.
	Sent, Delivered map[int]uint64
	// MeanDelaySec maps sender ID to the mean end-to-end delay of its
	// delivered packets.
	MeanDelaySec map[int]float64
	// MeanHops maps sender ID to the average route length used.
	MeanHops map[int]float64
	// ControlPackets and ControlBytes total the routing overhead.
	ControlPackets, ControlBytes uint64
	// InFlight is sent − delivered − dropped at end of run (can dip
	// negative on ACK-loss forks; see metrics.Collector.InFlight).
	InFlight int64
	// MACStats aggregates MAC counters over all nodes.
	MACStats mac.Stats
	// Drops counts data-packet drops by reason.
	Drops map[string]uint64
	// Unreachable maps sender ID to packets dropped because routing had no
	// route to their destination — the loss signature of a dead or
	// never-reachable destination, kept apart from congestion loss.
	Unreachable map[int]uint64
	// Resilience summarizes traffic against the fault plan; nil when the
	// scenario declares no faults, so fault-free results stay structurally
	// identical to pre-fault ones.
	Resilience *fault.Resilience
	// Uplink summarizes the V2I uplink workload; nil unless the spec
	// declares an uplink and at least one flow targets its external range.
	Uplink *UplinkStats
}

// UplinkStats aggregates the flows addressed to the uplink's external
// range — the traffic that must exit the MANET through the RSU gateway.
// Senders cannot mix uplink and in-network destinations (normalize
// rejects it), so these totals attribute exactly.
type UplinkStats struct {
	Sent, Delivered uint64
	PDR             float64
}

// TotalPDR reports the delivery ratio across all senders.
func (r *Result) TotalPDR() float64 {
	var sent, del uint64
	for _, s := range r.Sent {
		sent += s
	}
	for _, d := range r.Delivered {
		del += d
	}
	if sent == 0 {
		return 0
	}
	return float64(del) / float64(sent)
}

// TotalDelivered reports the delivered packet count across all senders.
func (r *Result) TotalDelivered() uint64 {
	var del uint64
	for _, d := range r.Delivered {
		del += d
	}
	return del
}

// Run generates the spec's mobility and executes the scenario on the
// streaming substrate: the CA road steps live inside the kernel, O(nodes)
// mobility state, no materialized trace. The recorded path (BuildTrace +
// RunOnTrace) is the retained differential oracle — bit-identical by the
// streamed-vs-recorded property test.
func Run(s Spec) (*Result, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	src, err := buildSource(&s, nil)
	if err != nil {
		return nil, err
	}
	return runOnSource(&s, src, nil)
}

// RunOnSource executes the scenario's network evaluation over a
// caller-provided mobility source (streaming or materialized).
func RunOnSource(s Spec, src mobility.Source) (*Result, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return runOnSource(&s, src, nil)
}

// RunOnTrace executes the scenario's network evaluation over a
// caller-provided materialized mobility trace — RunOnSource specialized
// to the recorded oracle. A nil trace means no mobility (a typed nil
// must not masquerade as a live Source).
func RunOnTrace(s Spec, trace *mobility.SampledTrace) (*Result, error) {
	if trace == nil {
		return RunOnSource(s, nil)
	}
	return RunOnSource(s, trace)
}

// RunChecked runs the scenario under the full invariant harness: CA and
// trace sanity consumed from the mobility stream as it advances, the
// packet-conservation ledger and TTL discipline during the run, the
// routing-loop walk and custody settlement afterwards, and the spec's
// metric expectations on the result. The returned report lists every
// violation; err covers configuration problems only.
func RunChecked(s Spec) (*Result, *check.Report, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, nil, err
	}
	report := check.NewReport()
	src, err := buildSource(&s, report)
	if err != nil {
		return nil, nil, err
	}
	res, err := runCheckedOnSource(&s, src, report)
	return res, report, err
}

// RunCheckedOnSource is RunChecked over a pre-built mobility source whose
// generation-time checks (if any) the caller owns.
func RunCheckedOnSource(s Spec, src mobility.Source) (*Result, *check.Report, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, nil, err
	}
	report := check.NewReport()
	res, err := runCheckedOnSource(&s, src, report)
	return res, report, err
}

// RunCheckedOnTrace is RunCheckedOnSource over a materialized trace;
// callers that share one recorded trace across protocol runs use it.
func RunCheckedOnTrace(s Spec, trace *mobility.SampledTrace) (*Result, *check.Report, error) {
	if trace == nil {
		return RunCheckedOnSource(s, nil)
	}
	return RunCheckedOnSource(s, trace)
}

func runCheckedOnSource(s *Spec, src mobility.Source, report *check.Report) (*Result, error) {
	res, err := runOnSource(s, src, report)
	if err != nil {
		return nil, err
	}
	checkExpect(s, res, report)
	return res, nil
}

// checkExpect evaluates the spec's metric floors on a finished result.
func checkExpect(s *Spec, res *Result, report *check.Report) {
	e := s.Expect
	if e.MinTotalPDR > 0 {
		if pdr := res.TotalPDR(); pdr < e.MinTotalPDR {
			report.Add("expect", "total PDR %.3f below the scenario's floor %.3f", pdr, e.MinTotalPDR)
		}
	}
	if e.MinDelivered > 0 {
		if del := res.TotalDelivered(); del < e.MinDelivered {
			report.Add("expect", "%d packets delivered, scenario promises >= %d", del, e.MinDelivered)
		}
	}
	if e.MaxMeanDelaySec > 0 {
		for _, snd := range res.Senders {
			if d := res.MeanDelaySec[snd]; d > e.MaxMeanDelaySec {
				report.Add("expect", "sender %d mean delay %.3fs above the scenario's cap %.3fs", snd, d, e.MaxMeanDelaySec)
			}
		}
	}
}

// runOnSource assembles the world — this is the single place in the repo
// where a protocol-evaluation world is wired together; the core package's
// Table I entry points delegate here — and executes the run, pulling node
// positions from the mobility source per tick. A non-nil report
// additionally installs the invariant ledger and runs the post-run loop
// walk and custody settlement.
func runOnSource(s *Spec, src mobility.Source, report *check.Report) (*Result, error) {
	capture := 10.0
	if s.NoCapture {
		capture = 0
	}
	world, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:       s.Nodes,
		Seed:        s.Seed,
		Propagation: phy.TwoRayGround{},
		Channel: phy.Config{
			RxRangeM:     s.RangeMeters,
			CSRangeM:     s.RangeMeters * 2.2,
			CaptureRatio: capture,
		},
		MAC:          mac.Config{DataRateBPS: s.DataRateBPS, RTSThreshold: s.RTSThreshold},
		Mobility:     src,
		KernelOracle: s.KernelOracle,
	}, s.routerFactory())
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}

	collector := metrics.NewCollector(sim.Second, s.SimTime)
	collector.Bind(world)

	var ledger *check.Ledger
	if report != nil {
		ledger = check.NewLedger(report)
		world.AddHooks(ledger.Hooks())
	}

	// Fault plan: expanded deterministically from the spec and applied as
	// kernel-scheduled actuators. An empty plan installs nothing — the
	// fault-free path stays byte-identical to a world that never imported
	// the fault layer (the empty-plan differential test pins this).
	var meter *fault.Meter
	if !s.Faults.Empty() {
		plan, err := s.Faults.Build(s.Seed, s.Nodes, s.SimTime)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		if err := fault.Apply(world, plan); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		meter = fault.NewMeter(plan, s.SimTime)
		world.AddHooks(meter.Hooks())
	}

	// One sink per distinct destination node, attached before any source
	// starts (flows all ride the CBR port). External uplink destinations
	// terminate at the gateway RSU — the MANET-side endpoint of the
	// advertised range — so every external ID shares the gateway's sink.
	sinks := make(map[int]*traffic.Sink)
	for _, f := range s.Flows {
		node := f.Dst
		if s.ExternalDst(f.Dst) {
			node = s.GatewayNode()
		}
		if sinks[node] == nil {
			sk := &traffic.Sink{}
			world.Node(node).AttachPort(netsim.PortCBR, sk)
			sinks[node] = sk
		}
	}
	for _, f := range s.Flows {
		cbr := traffic.NewCBR(world.Node(f.Src), traffic.CBRConfig{
			Dst:         netsim.NodeID(f.Dst),
			PacketBytes: f.PacketBytes,
			Rate:        f.Rate,
			Start:       f.Start,
			Stop:        f.Stop,
		})
		cbr.Start()
	}

	world.Run(s.SimTime)

	if report != nil {
		check.Loops(world, report)
		ledger.Finish(world)
	}

	senders := make([]int, 0, len(s.Flows))
	seen := make(map[int]bool, len(s.Flows))
	for _, f := range s.Flows {
		if !seen[f.Src] {
			seen[f.Src] = true
			senders = append(senders, f.Src)
		}
	}
	res := &Result{
		Spec:         *s,
		Senders:      senders,
		Goodput:      make(map[int][]float64, len(senders)),
		PDR:          make(map[int]float64, len(senders)),
		Sent:         make(map[int]uint64, len(senders)),
		Delivered:    make(map[int]uint64, len(senders)),
		MeanDelaySec: make(map[int]float64, len(senders)),
		MeanHops:     make(map[int]float64, len(senders)),
		InFlight:     collector.InFlight(),
		Drops:        collector.Drops(),
		Unreachable:  make(map[int]uint64, len(senders)),
	}
	for _, snd := range senders {
		id := netsim.NodeID(snd)
		res.Goodput[snd] = collector.GoodputBPS(id)
		res.PDR[snd] = collector.PDR(id)
		res.Sent[snd] = collector.Sent(id)
		res.Delivered[snd] = collector.Delivered(id)
		res.MeanDelaySec[snd] = collector.MeanDelay(id).Seconds()
		res.MeanHops[snd] = collector.MeanHops(id)
		if u := collector.Unreachable(id); u > 0 {
			res.Unreachable[snd] = u
		}
	}
	if meter != nil {
		r := meter.Result()
		res.Resilience = &r
	}
	if s.Uplink != nil {
		ext := make(map[int]bool, len(s.Flows))
		for _, f := range s.Flows {
			if s.ExternalDst(f.Dst) {
				ext[f.Src] = true
			}
		}
		if len(ext) > 0 {
			u := &UplinkStats{}
			for _, snd := range senders {
				if !ext[snd] {
					continue
				}
				u.Sent += res.Sent[snd]
				u.Delivered += res.Delivered[snd]
			}
			if u.Sent > 0 {
				u.PDR = float64(u.Delivered) / float64(u.Sent)
			}
			res.Uplink = u
		}
	}
	res.ControlPackets, res.ControlBytes = metrics.RoutingOverhead(world)
	for _, n := range world.Nodes() {
		st := n.MAC().Stats()
		res.MACStats.DataTx += st.DataTx
		res.MACStats.DataRx += st.DataRx
		res.MACStats.AckTx += st.AckTx
		res.MACStats.AckRx += st.AckRx
		res.MACStats.RTSTx += st.RTSTx
		res.MACStats.CTSTx += st.CTSTx
		res.MACStats.Retries += st.Retries
		res.MACStats.Failures += st.Failures
		res.MACStats.QueueDrops += st.QueueDrops
		res.MACStats.DownDrops += st.DownDrops
		res.MACStats.Duplicates += st.Duplicates
		res.MACStats.BytesTx += st.BytesTx
		res.MACStats.NAVSettings += st.NAVSettings
	}
	return res, nil
}
