package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Hash returns the canonical content hash of the spec: a SHA-256 over
// the deterministic JSON encoding of the fully normalized spec. Two
// specs that normalize to the same workload — regardless of which
// defaults were spelled out — hash identically, and any material change
// (a flow, a seed, a fault clause, a protocol) changes the hash.
//
// Runs are deterministic (the PR 2 engine contract), so the hash
// identifies the *result* of a run, not just its input: it is the
// content address the experiment service's result cache keys on,
// together with the code version. The encoding walks only exported
// struct fields in declaration order over slices and plain values (no
// maps anywhere in Spec), so it is reproducible within one build;
// cross-build stability is the code-version component's job.
func (s Spec) Hash() (string, error) {
	n, err := s.Normalized()
	if err != nil {
		return "", fmt.Errorf("scenario: hashing unnormalizable spec: %w", err)
	}
	b, err := json.Marshal(n)
	if err != nil {
		return "", fmt.Errorf("scenario: encoding spec %s: %w", n.Name, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
