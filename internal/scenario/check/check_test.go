package check

import (
	"strings"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

func TestReportCapsPerCheck(t *testing.T) {
	r := NewReport()
	for i := 0; i < maxPerCheck+10; i++ {
		r.Add("ttl", "violation %d", i)
	}
	if got := len(r.Violations()); got != maxPerCheck {
		t.Fatalf("recorded %d violations, want cap %d", got, maxPerCheck)
	}
	if !strings.Contains(r.String(), "and 10 more") {
		t.Fatalf("truncation summary missing:\n%s", r.String())
	}
	if r.Ok() {
		t.Fatal("report with violations claims Ok")
	}
}

// mkPacket builds a data packet as the hooks would see it.
func mkPacket(uid uint64, ttl, hops int) *netsim.Packet {
	return &netsim.Packet{UID: uid, Kind: netsim.KindData, TTL: ttl, Hops: hops}
}

func TestLedgerCleanLifecycles(t *testing.T) {
	rep := NewReport()
	l := NewLedger(rep)
	h := l.Hooks()

	// Delivered after 3 hops: TTL decremented twice at forwarders.
	h.DataSent(nil, mkPacket(1, netsim.DefaultTTL, 0))
	h.DataDelivered(nil, mkPacket(1, netsim.DefaultTTL-2, 3))

	// Dropped for TTL expiry exactly at zero.
	h.DataSent(nil, mkPacket(2, netsim.DefaultTTL, 0))
	h.DataDropped(nil, mkPacket(2, 0, netsim.DefaultTTL), "aodv:ttl")

	// ACK-loss fork: link-failure drop then delivery of the live copy.
	h.DataSent(nil, mkPacket(3, netsim.DefaultTTL, 0))
	h.DataDropped(nil, mkPacket(3, netsim.DefaultTTL-1, 1), "aodv:link-failure")
	h.DataDelivered(nil, mkPacket(3, netsim.DefaultTTL-1, 2))

	// Still in flight, held in custody.
	h.DataSent(nil, mkPacket(4, netsim.DefaultTTL, 0))
	l.finish(map[uint64]bool{4: true})

	if !rep.Ok() {
		t.Fatalf("clean lifecycles flagged:\n%s", rep)
	}
	if s, d, dr := l.Counts(); s != 4 || d != 2 || dr != 2 {
		t.Fatalf("counts = %d/%d/%d", s, d, dr)
	}
}

// TestLedgerCompactsSettledEntries pins the compaction contract: fully
// accounted packets are retired settleGrace after their last event, so
// the live entry count tracks packets in flight, not packets ever sent —
// while a late ACK-loss fork inside the grace window still reconciles
// against its entry.
func TestLedgerCompactsSettledEntries(t *testing.T) {
	rep := NewReport()
	l := NewLedger(rep)
	var now sim.Time
	l.SetClock(func() sim.Time { return now })
	h := l.Hooks()

	const packets = 500
	for i := 0; i < packets; i++ {
		uid := uint64(i + 1)
		now = sim.Time(i) * sim.Second
		h.DataSent(nil, mkPacket(uid, netsim.DefaultTTL, 0))
		if i%3 == 0 {
			// Loss-heavy fate: the packet's only terminal is the ACK-loss
			// fork's link-failure drop — these must retire too, or the map
			// grows O(total packets) in exactly the partition workloads.
			h.DataDropped(nil, mkPacket(uid, netsim.DefaultTTL-1, 1), "aodv:link-failure")
		} else {
			h.DataDelivered(nil, mkPacket(uid, netsim.DefaultTTL-1, 2))
		}
	}
	// Every entry beyond the grace window must be retired; the live count
	// is bounded by the packets settled within the last settleGrace.
	live := int(settleGrace/sim.Second) + 2
	if l.Active() > live {
		t.Fatalf("ledger holds %d live entries after %d settled packets (want <= %d): compaction not reclaiming", l.Active(), packets, live)
	}
	if l.Retired() == 0 {
		t.Fatal("no entries retired")
	}
	if !rep.Ok() {
		t.Fatalf("clean settled lifecycles flagged:\n%s", rep)
	}

	// A late ACK-loss fork within the grace window must still reconcile:
	// deliver, then the sender's link-failure drop arrives a little later.
	forkUID := uint64(packets + 1)
	h.DataSent(nil, mkPacket(forkUID, netsim.DefaultTTL, 0))
	h.DataDelivered(nil, mkPacket(forkUID, netsim.DefaultTTL-1, 2))
	now += 2 * sim.Second
	h.DataDropped(nil, mkPacket(forkUID, netsim.DefaultTTL-1, 1), "aodv:link-failure")
	if !rep.Ok() {
		t.Fatalf("in-grace ACK-loss fork flagged:\n%s", rep)
	}

	// Retirement never hides a vanished packet: an unterminated entry
	// survives compaction and still fails custody settlement.
	h.DataSent(nil, mkPacket(uint64(packets+2), netsim.DefaultTTL, 0))
	now += settleGrace * 3
	h.DataSent(nil, mkPacket(uint64(packets+3), netsim.DefaultTTL, 0))
	l.finish(map[uint64]bool{uint64(packets + 3): true})
	if rep.Ok() || !strings.Contains(rep.String(), "vanished") {
		t.Fatalf("compaction hid a vanished packet:\n%s", rep)
	}
}

func TestLedgerCatchesVanishedPacket(t *testing.T) {
	rep := NewReport()
	l := NewLedger(rep)
	h := l.Hooks()
	h.DataSent(nil, mkPacket(9, netsim.DefaultTTL, 0))
	l.finish(nil) // no terminal event, no custody
	if rep.Ok() || !strings.Contains(rep.String(), "vanished") {
		t.Fatalf("vanished packet not caught:\n%s", rep)
	}
}

func TestLedgerCatchesDuplicateDelivery(t *testing.T) {
	rep := NewReport()
	l := NewLedger(rep)
	h := l.Hooks()
	h.DataSent(nil, mkPacket(1, netsim.DefaultTTL, 0))
	h.DataDelivered(nil, mkPacket(1, netsim.DefaultTTL, 1))
	h.DataDelivered(nil, mkPacket(1, netsim.DefaultTTL, 1))
	if rep.Ok() || !strings.Contains(rep.String(), "delivered 2 times") {
		t.Fatalf("duplicate delivery not caught:\n%s", rep)
	}
}

func TestLedgerCatchesUnexplainedDropAfterDelivery(t *testing.T) {
	rep := NewReport()
	l := NewLedger(rep)
	h := l.Hooks()
	h.DataSent(nil, mkPacket(1, netsim.DefaultTTL, 0))
	h.DataDelivered(nil, mkPacket(1, netsim.DefaultTTL, 1))
	// A no-route drop after delivery has no ACK-loss fork to explain it.
	h.DataDropped(nil, mkPacket(1, netsim.DefaultTTL-1, 1), "aodv:no-forward-route")
	if rep.Ok() {
		t.Fatal("unexplained second terminal not caught")
	}
}

func TestLedgerCatchesTTLAnomalies(t *testing.T) {
	rep := NewReport()
	l := NewLedger(rep)
	h := l.Hooks()
	// Originated with a pre-decremented TTL.
	h.DataSent(nil, mkPacket(1, netsim.DefaultTTL-1, 0))
	// Delivered with an impossible TTL/hop combination (skipped decrement).
	h.DataSent(nil, mkPacket(2, netsim.DefaultTTL, 0))
	h.DataDelivered(nil, mkPacket(2, netsim.DefaultTTL, 3))
	// TTL-expiry drop with TTL still positive.
	h.DataSent(nil, mkPacket(3, netsim.DefaultTTL, 0))
	h.DataDropped(nil, mkPacket(3, 4, netsim.DefaultTTL-4), "olsr:ttl")
	if got := len(rep.Violations()); got < 3 {
		t.Fatalf("expected >= 3 TTL violations, got %d:\n%s", got, rep)
	}
}

// loopRouter is a stub sequence-numbered-style router whose table is wired
// into a cycle.
type loopRouter struct {
	id   netsim.NodeID
	next map[netsim.NodeID]netsim.NodeID
}

func (r *loopRouter) Name() string                                 { return "loop" }
func (r *loopRouter) Start()                                       {}
func (r *loopRouter) Stop()                                        {}
func (r *loopRouter) Origin(p *netsim.Packet)                      {}
func (r *loopRouter) Receive(p *netsim.Packet, from netsim.NodeID) {}
func (r *loopRouter) LinkFailure(next netsim.NodeID, p *netsim.Packet) {
}
func (r *loopRouter) ControlTraffic() (uint64, uint64) { return 0, 0 }
func (r *loopRouter) Table(dst netsim.NodeID) (netsim.NodeID, int, bool) {
	n, ok := r.next[dst]
	return n, 1, ok
}

// treeRouter is a stub link-state-style router (Route method).
type treeRouter struct {
	routes map[netsim.NodeID][2]int // dst -> (next, hops)
}

func (r *treeRouter) Name() string                                     { return "tree" }
func (r *treeRouter) Start()                                           {}
func (r *treeRouter) Stop()                                            {}
func (r *treeRouter) Origin(p *netsim.Packet)                          {}
func (r *treeRouter) Receive(p *netsim.Packet, from netsim.NodeID)     {}
func (r *treeRouter) LinkFailure(next netsim.NodeID, p *netsim.Packet) {}
func (r *treeRouter) ControlTraffic() (uint64, uint64)                 { return 0, 0 }
func (r *treeRouter) Route(dst netsim.NodeID) (netsim.NodeID, int, bool) {
	e, ok := r.routes[dst]
	return netsim.NodeID(e[0]), e[1], ok
}

func staticWorld(t *testing.T, n int, factory netsim.RouterFactory) *netsim.World {
	t.Helper()
	pos := make([]geometry.Vec2, n)
	for i := range pos {
		pos[i] = geometry.Vec2{X: float64(100 * i)}
	}
	w, err := netsim.NewWorld(netsim.WorldConfig{Nodes: n, Static: pos}, factory)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLoopsCatchesCrossNodeCycle(t *testing.T) {
	// 0 -> 1 -> 0 toward destination 2.
	w := staticWorld(t, 3, func(n *netsim.Node) netsim.Router {
		r := &loopRouter{id: n.ID(), next: map[netsim.NodeID]netsim.NodeID{}}
		if n.ID() == 0 {
			r.next[2] = 1
		}
		if n.ID() == 1 {
			r.next[2] = 0
		}
		return r
	})
	rep := NewReport()
	Loops(w, rep)
	if rep.Ok() || !strings.Contains(rep.String(), "routing loop") {
		t.Fatalf("cross-node cycle not caught:\n%s", rep)
	}
}

func TestLoopsAcceptsCleanChain(t *testing.T) {
	// 0 -> 1 -> 2 (and each node routes 1 hop to its neighbor).
	w := staticWorld(t, 3, func(n *netsim.Node) netsim.Router {
		r := &loopRouter{id: n.ID(), next: map[netsim.NodeID]netsim.NodeID{}}
		switch n.ID() {
		case 0:
			r.next[1], r.next[2] = 1, 1
		case 1:
			r.next[0], r.next[2] = 0, 2
		case 2:
			r.next[0], r.next[1] = 1, 1
		}
		return r
	})
	rep := NewReport()
	Loops(w, rep)
	if !rep.Ok() {
		t.Fatalf("clean chain flagged:\n%s", rep)
	}
}

func TestLoopsCatchesInconsistentTree(t *testing.T) {
	// A link-state table whose 2-hop route goes via a node it has no
	// 1-hop route to.
	w := staticWorld(t, 3, func(n *netsim.Node) netsim.Router {
		r := &treeRouter{routes: map[netsim.NodeID][2]int{}}
		if n.ID() == 0 {
			r.routes[2] = [2]int{1, 2} // via 1, but no route to 1 at all
		}
		return r
	})
	rep := NewReport()
	Loops(w, rep)
	if rep.Ok() || !strings.Contains(rep.String(), "not a 1-hop neighbor") {
		t.Fatalf("inconsistent tree not caught:\n%s", rep)
	}
}

func TestTraceCatchesTeleport(t *testing.T) {
	tr := &mobility.SampledTrace{
		Interval: 1,
		Positions: [][]geometry.Vec2{
			{{X: 0}, {X: 10}, {X: 500}}, // 490 m in one second
		},
	}
	rep := NewReport()
	Trace(tr, 42.5, nil, rep)
	if rep.Ok() || !strings.Contains(rep.String(), "teleported") {
		t.Fatalf("teleport not caught:\n%s", rep)
	}
}

func TestTraceExemptsDeclaredActivation(t *testing.T) {
	tr := &mobility.SampledTrace{
		Interval: 1,
		Positions: [][]geometry.Vec2{
			{{X: -600}, {X: -600}, {X: 1000}, {X: 1010}},
		},
	}
	rep := NewReport()
	Trace(tr, 42.5, []int{2}, rep)
	if !rep.Ok() {
		t.Fatalf("declared activation jump flagged:\n%s", rep)
	}
}

// TestTraceHandlesRaggedTrace pins graceful handling of hand-built
// traces with unequal per-node sample counts: report (or ignore), never
// panic.
func TestTraceHandlesRaggedTrace(t *testing.T) {
	tr := &mobility.SampledTrace{
		Interval: 1,
		Positions: [][]geometry.Vec2{
			{{X: 0}, {X: 10}, {X: 20}},
			{}, // node with no samples at all
			{{X: 5}},
		},
	}
	rep := NewReport()
	Trace(tr, 42.5, nil, rep)
	if !rep.Ok() {
		t.Fatalf("ragged but teleport-free trace flagged:\n%s", rep)
	}
}

func TestReportTotalCountsBeyondCap(t *testing.T) {
	r := NewReport()
	for i := 0; i < maxPerCheck+10; i++ {
		r.Add("conservation", "violation %d", i)
	}
	r.Add("ttl", "one more")
	if got := r.Total(); got != maxPerCheck+11 {
		t.Fatalf("Total = %d, want %d", got, maxPerCheck+11)
	}
}
