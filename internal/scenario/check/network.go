package check

import "cavenet/internal/ca"

// NetworkWatcher validates road-network CA dynamics while the network is
// being stepped: call AfterStep after every Network.Step. It is the urban
// generalization of RoadWatcher — the ring-only Σv ≤ L−N rule becomes a
// per-segment bound that accounts for the open exit. Checks, per step:
//
//   - conservation: every persistent global ID maps to exactly one
//     vehicle, on exactly one (segment, site) — the closed system never
//     loses or duplicates a car across intersection hops;
//   - velocity bounds: 0 ≤ v ≤ vmax, positions inside the segment;
//   - hop-aware motion consistency: a vehicle either advanced exactly its
//     velocity within its segment, or crossed into the successor it had
//     chosen with path displacement (L_from − pos_from) + pos_to equal to
//     its velocity;
//   - flow ≤ capacity per segment: intra-segment gaps sum to at most
//     L − N and the exiting leader adds at most vmax, so Σv ≤ (L−N)+vmax.
type NetworkWatcher struct {
	net    *ca.Network
	report *Report
	prev   []ca.NetVehicle
	counts []int
	sumVel []int
}

// WatchNetwork starts watching net (snapshotting its current state).
func WatchNetwork(net *ca.Network, report *Report) *NetworkWatcher {
	w := &NetworkWatcher{net: net, report: report}
	w.prev = make([]ca.NetVehicle, net.TotalVehicles())
	w.snapshot()
	return w
}

func (w *NetworkWatcher) snapshot() {
	for i := range w.prev {
		w.prev[i] = w.net.Vehicle(i)
	}
}

// AfterStep validates the network state produced by the latest Step.
func (w *NetworkWatcher) AfterStep() {
	net := w.net
	step := net.StepCount()
	vmax := net.VMax()
	segs := net.NumSegments()
	if cap(w.counts) < segs {
		w.counts = make([]int, segs)
		w.sumVel = make([]int, segs)
	}
	counts, sumVel := w.counts[:segs], w.sumVel[:segs]
	for s := range counts {
		counts[s], sumVel[s] = 0, 0
	}
	occupied := make(map[[2]int]int, net.TotalVehicles())
	for i := 0; i < net.TotalVehicles(); i++ {
		v := net.Vehicle(i)
		if v.ID != i {
			w.report.Add("ca", "step %d: vehicle slot %d holds ID %d", step, i, v.ID)
		}
		if v.Seg < 0 || v.Seg >= segs || v.Pos < 0 || v.Pos >= net.SegmentLen(v.Seg) {
			w.report.Add("ca", "step %d: vehicle %d at invalid site (segment %d, site %d)", step, i, v.Seg, v.Pos)
			continue
		}
		if v.Vel < 0 || v.Vel > vmax {
			w.report.Add("ca", "step %d: vehicle %d velocity %d outside [0,%d]", step, i, v.Vel, vmax)
		}
		if other, clash := occupied[[2]int{v.Seg, v.Pos}]; clash {
			w.report.Add("ca", "step %d: vehicles %d and %d collide on segment %d site %d", step, other, i, v.Seg, v.Pos)
		}
		occupied[[2]int{v.Seg, v.Pos}] = i
		counts[v.Seg]++
		sumVel[v.Seg] += v.Vel

		p := w.prev[i]
		if v.Seg == p.Seg && v.Pos >= p.Pos {
			if v.Pos-p.Pos != v.Vel {
				w.report.Add("ca", "step %d: vehicle %d moved %d sites with velocity %d", step, i, v.Pos-p.Pos, v.Vel)
			}
		} else {
			// Intersection hop: must land in the chosen successor with path
			// displacement equal to the velocity.
			if v.Seg != p.Next {
				w.report.Add("ca", "step %d: vehicle %d hopped %d -> %d but had chosen %d", step, i, p.Seg, v.Seg, p.Next)
			} else if d := net.SegmentLen(p.Seg) - p.Pos + v.Pos; d != v.Vel {
				w.report.Add("ca", "step %d: vehicle %d crossed with displacement %d at velocity %d", step, i, d, v.Vel)
			}
		}
	}
	for s := 0; s < segs; s++ {
		if counts[s] != net.SegmentVehicles(s) {
			w.report.Add("ca", "step %d: segment %d holds %d vehicles but reports %d", step, s, counts[s], net.SegmentVehicles(s))
		}
		if counts[s] == 0 {
			continue
		}
		if limit := net.SegmentLen(s) - counts[s] + vmax; sumVel[s] > limit {
			w.report.Add("ca", "step %d: segment %d total velocity %d exceeds (L-N)+vmax = %d (L=%d, N=%d)",
				step, s, sumVel[s], limit, net.SegmentLen(s), counts[s])
		}
	}
	w.snapshot()
}
