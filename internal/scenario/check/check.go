// Package check is the cross-protocol invariant harness: it wraps any
// scenario run and asserts properties that must hold for *every* workload
// and every routing protocol, independent of the metrics a particular
// experiment cares about:
//
//   - packet conservation — every originated data packet is delivered,
//     dropped with a recorded reason, or still physically held in a MAC
//     queue or a route-discovery buffer when the run ends; nothing
//     vanishes, nothing is delivered twice;
//   - TTL monotonicity — TTL decreases by exactly one per forwarding hop,
//     is never negative, and TTL-expiry drops happen exactly at zero;
//   - no routing loops — the next-hop walk from every node toward every
//     destination terminates;
//   - CA sanity — the cellular-automaton mobility never puts two vehicles
//     in one cell, never teleports a vehicle, and never exceeds the
//     ring-lane flow capacity;
//   - scenario expectations — per-scenario metric floors (minimum PDR,
//     delivery counts) declared in the scenario spec.
//
// The harness reports violations instead of panicking, so a failing
// property surfaces with every broken instance, not just the first.
package check

import (
	"fmt"
	"sort"
	"strings"
)

// Violation is one broken invariant instance.
type Violation struct {
	// Check names the invariant family ("conservation", "ttl", "loops",
	// "ca", "trace", "expect").
	Check string
	// Detail describes the broken instance.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Check + ": " + v.Detail }

// maxPerCheck bounds how many violations one invariant family records; a
// systematically broken invariant would otherwise bury the report (and the
// memory) under millions of identical lines.
const maxPerCheck = 16

// Report accumulates violations from all the checks wrapped around one
// scenario run.
type Report struct {
	violations []Violation
	perCheck   map[string]int
	truncated  map[string]int
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{perCheck: make(map[string]int), truncated: make(map[string]int)}
}

// Add records a violation, keeping at most maxPerCheck per invariant
// family (the rest are counted and summarized by String).
func (r *Report) Add(check, format string, args ...any) {
	r.perCheck[check]++
	if r.perCheck[check] > maxPerCheck {
		r.truncated[check]++
		return
	}
	r.violations = append(r.violations, Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
}

// Merge appends previously collected violations (subject to the same
// per-family cap).
func (r *Report) Merge(vs []Violation) {
	for _, v := range vs {
		r.Add(v.Check, "%s", v.Detail)
	}
}

// Ok reports whether no invariant was violated.
func (r *Report) Ok() bool { return len(r.violations) == 0 }

// Violations returns the recorded violations (capped per family; use
// Total for the uncapped count).
func (r *Report) Violations() []Violation { return r.violations }

// Total reports the number of violations observed, including those
// truncated beyond the per-family recording cap — the number to use when
// comparing the severity of runs.
func (r *Report) Total() int {
	n := 0
	for _, c := range r.perCheck {
		n += c
	}
	return n
}

// String lists every violation, one per line, with truncation summaries.
func (r *Report) String() string {
	if r.Ok() {
		return "all invariants hold"
	}
	var b strings.Builder
	for _, v := range r.violations {
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	checks := make([]string, 0, len(r.truncated))
	for check := range r.truncated {
		checks = append(checks, check)
	}
	sort.Strings(checks)
	for _, check := range checks {
		fmt.Fprintf(&b, "%s: ... and %d more\n", check, r.truncated[check])
	}
	return b.String()
}
