package check

import "cavenet/internal/netsim"

// The two next-hop query shapes the repo's routing protocols expose
// encode two different loop-freedom guarantees:
//
//   - Table (AODV, DYMO): sequence-numbered distance vector. The protocol
//     invariant is loop freedom across nodes at every instant — along any
//     next-hop chain the (destination sequence number, −hops) pair
//     strictly improves — so the harness walks the cross-node next-hop
//     graph and any cycle is a bug.
//
//   - Route (OLSR): link state. Each node's table is a shortest-path tree
//     over that node's *own* topology view; during convergence two nodes'
//     views may legitimately disagree, so transient cross-node micro-loops
//     are textbook behavior (a looping packet burns TTL, which the TTL
//     invariant audits). The per-node invariant that must always hold is
//     self-consistency: every route's next hop is itself a valid one-hop
//     route of the same table.
type routeQuerier interface {
	Route(dst netsim.NodeID) (netsim.NodeID, int, bool)
}

type tableQuerier interface {
	Table(dst netsim.NodeID) (netsim.NodeID, int, bool)
}

// Loops verifies the "no routing loops" invariant appropriate to each
// node's protocol: the cross-node walk for sequence-numbered tables, the
// per-table tree consistency for link-state tables (see above).
func Loops(w *netsim.World, report *Report) {
	n := w.NumNodes()
	query := make([]func(dst netsim.NodeID) (netsim.NodeID, int, bool), n)
	crossNode := true
	for i := 0; i < n; i++ {
		switch q := w.Node(i).Router().(type) {
		case routeQuerier:
			query[i] = q.Route
			crossNode = false
		case tableQuerier:
			query[i] = q.Table
		}
	}
	if crossNode {
		crossNodeWalk(n, query, report)
	} else {
		perTableTree(n, query, report)
	}
}

// crossNodeWalk follows next hops node to node from every (src, dst) pair;
// any revisit is a loop. A walk may legitimately end early at a node
// without a route (an incomplete table is not a loop); what it must never
// do is cycle.
func crossNodeWalk(n int, query []func(netsim.NodeID) (netsim.NodeID, int, bool), report *Report) {
	// stamp is an epoch-marked scratch: stamp[v] == walkID marks v as on
	// the current walk without clearing between the N² walks.
	stamp := make([]int, n)
	walkID := 0
	for src := 0; src < n; src++ {
		if query[src] == nil {
			continue
		}
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			walkID++
			cur := src
			stamp[cur] = walkID
			for {
				if query[cur] == nil {
					break
				}
				next, _, ok := query[cur](netsim.NodeID(dst))
				if !ok {
					break // no route here: the walk terminates
				}
				if int(next) < 0 || int(next) >= n {
					report.Add("loops", "node %d routes to %d via out-of-world next hop %d", cur, dst, next)
					break
				}
				if int(next) == dst {
					break // reached the destination
				}
				if stamp[next] == walkID {
					report.Add("loops", "routing loop toward %d: node %d's next hop %d was already visited (walk from %d)",
						dst, cur, next, src)
					break
				}
				cur = int(next)
				stamp[cur] = walkID
			}
		}
	}
}

// perTableTree checks that each node's table is a self-consistent
// shortest-path tree: a one-hop route's next hop is the destination
// itself, and a multi-hop route's next hop is a valid one-hop route of
// the same table.
func perTableTree(n int, query []func(netsim.NodeID) (netsim.NodeID, int, bool), report *Report) {
	for src := 0; src < n; src++ {
		if query[src] == nil {
			continue
		}
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			next, hops, ok := query[src](netsim.NodeID(dst))
			if !ok {
				continue
			}
			if int(next) < 0 || int(next) >= n {
				report.Add("loops", "node %d routes to %d via out-of-world next hop %d", src, dst, next)
				continue
			}
			if int(next) == src {
				report.Add("loops", "node %d routes to %d via itself", src, dst)
				continue
			}
			if hops < 1 {
				report.Add("loops", "node %d routes to %d in %d hops", src, dst, hops)
				continue
			}
			if hops == 1 {
				if int(next) != dst {
					report.Add("loops", "node %d's 1-hop route to %d goes via %d", src, dst, next)
				}
				continue
			}
			nn, nhops, nok := query[src](next)
			if !nok || nhops != 1 || nn != next {
				report.Add("loops", "node %d routes to %d via %d, which is not a 1-hop neighbor route (hops=%d ok=%v)",
					src, dst, next, nhops, nok)
			}
		}
	}
}
