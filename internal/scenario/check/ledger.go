package check

import (
	"sort"
	"strings"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// fate tracks what has happened to one originated data packet.
//
// A packet normally meets exactly one terminal event (delivered or
// dropped). The one legitimate exception is the 802.11 ACK-loss fork: the
// receiver decodes a data frame and forwards it onward, but the ACK is
// lost, so the sender retries to exhaustion and records a link-failure
// drop for a packet that lives on (and may be delivered, dropped again, or
// parked). Every such fork is witnessed by exactly one link-failure drop,
// so the sound conservation invariant is
//
//	deliveries ≤ 1   and   deliveries + drops ≤ fork witnesses + 1.
//
// A "node:down" drop is the fault-injection analogue of the same fork: the
// crashing node's in-flight frame may already have been decoded downstream
// (so the packet lives on) while the flush records a drop for the local
// copy — and two custodians of ACK-loss replicas can even crash
// independently, each recording its own witness. Both reasons therefore
// count as fork witnesses (lfDropped).
type fate struct {
	delivered int
	dropped   int
	lfDropped int
	// gen invalidates stale settled-queue entries: it bumps on every event,
	// so a queued retirement only fires if nothing happened since.
	gen uint32
}

func (f *fate) terminals() int { return f.delivered + f.dropped }

// settled reports whether the packet is a retirement candidate:
//
//   - fully accounted (exactly one terminal beyond what ACK-loss forks
//     explain): dead, bar a fork's late link-failure drop, which lands
//     within one MAC retry sequence;
//   - or terminated only by link-failure forks (the dominant fate in
//     loss-heavy, partition-prone workloads): the forwarded copy is
//     nominally still live, but each of its subsequent events bumps the
//     generation and re-arms the grace timer, so only an entry quiet for
//     a whole grace period — long past any queue or discovery-buffer
//     residence — is actually retired. Custody settlement skips entries
//     with any terminal either way, so retiring them loses no detection.
//
// Without the second clause the fates map would grow O(packets ever
// sent) in exactly the workloads (sparse, partitioned) that drop most
// traffic via link failures.
func (f *fate) settled() bool {
	if f.delivered > 1 || f.terminals() == 0 {
		return false
	}
	return f.terminals() == f.lfDropped+1 || f.terminals() == f.lfDropped
}

// settleGrace is how long a settled entry lingers before retirement. An
// ACK-loss fork's late link-failure drop arrives within one MAC retry
// sequence of the receiver's forward (milliseconds; bounded by retry
// count × backoff, far under a second even on a congested channel), so a
// multi-second grace keeps the fork rule exact while the ledger's live
// size tracks packets-in-flight instead of packets-ever-sent.
const settleGrace = 10 * sim.Second

// settledEntry queues one retirement candidate.
type settledEntry struct {
	uid uint64
	gen uint32
	at  sim.Time
}

// Ledger audits the data plane of one world run through the netsim hooks:
// it keeps per-UID packet fates and verifies the TTL discipline at every
// event. After the run, Finish settles the conservation equation
//
//	sent = delivered + dropped + in-flight
//
// where in-flight is not inferred by subtraction but proven: every packet
// with no terminal event must still be physically held by a MAC queue or a
// route-discovery buffer somewhere in the world.
//
// The fates map is compacted as the run proceeds: a fully accounted
// packet (see fate.settled) is retired settleGrace after its last event,
// so the ledger's memory is O(packets in flight + recent), not O(total
// packets originated) — the same streaming discipline as the mobility
// substrate, applied to the harness itself.
type Ledger struct {
	report *Report
	fates  map[uint64]*fate
	// queue is the FIFO of retirement candidates; event times are
	// monotone (hooks fire in kernel order), so it is drained from the
	// front. head indexes the first live entry.
	queue []settledEntry
	head  int
	// now supplies the simulation clock; overridable for synthetic tests.
	// The default reads the observed node's kernel (nil nodes — as in
	// synthetic hook tests — freeze the clock, disabling retirement).
	now func(n *netsim.Node) sim.Time

	sent, delivered, dropped uint64
	retired                  uint64
}

// NewLedger creates a ledger reporting into report.
func NewLedger(report *Report) *Ledger {
	return &Ledger{
		report: report,
		fates:  make(map[uint64]*fate),
		now: func(n *netsim.Node) sim.Time {
			if n == nil {
				return 0
			}
			return n.Kernel().Now()
		},
	}
}

// SetClock overrides the ledger's clock (synthetic tests drive
// retirement without a kernel).
func (l *Ledger) SetClock(now func() sim.Time) {
	l.now = func(*netsim.Node) sim.Time { return now() }
}

// Active reports the live per-UID entry count (retired entries excluded).
func (l *Ledger) Active() int { return len(l.fates) }

// Retired reports how many settled entries compaction has retired.
func (l *Ledger) Retired() uint64 { return l.retired }

// Hooks returns the observers to install with World.AddHooks.
func (l *Ledger) Hooks() netsim.Hooks {
	return netsim.Hooks{
		DataSent:      l.onSent,
		DataDelivered: l.onDelivered,
		DataDropped:   l.onDropped,
	}
}

// afterEvent runs the compaction bookkeeping once an event has been
// applied to f: enqueue a (re-)settled entry and retire candidates whose
// grace expired with no newer event.
func (l *Ledger) afterEvent(uid uint64, f *fate, now sim.Time) {
	f.gen++
	if f.settled() {
		l.queue = append(l.queue, settledEntry{uid: uid, gen: f.gen, at: now})
	}
	for l.head < len(l.queue) {
		e := l.queue[l.head]
		if e.at+settleGrace > now {
			break
		}
		l.head++
		if cur, ok := l.fates[e.uid]; ok && cur.gen == e.gen {
			delete(l.fates, e.uid)
			l.retired++
		}
		// Reclaim the drained prefix once it dominates the queue.
		if l.head > 64 && l.head*2 > len(l.queue) {
			l.queue = append(l.queue[:0], l.queue[l.head:]...)
			l.head = 0
		}
	}
}

func (l *Ledger) onSent(n *netsim.Node, p *netsim.Packet) {
	l.sent++
	if _, dup := l.fates[p.UID]; dup {
		l.report.Add("conservation", "packet uid=%d originated twice", p.UID)
		return
	}
	f := &fate{}
	l.fates[p.UID] = f
	if p.TTL != netsim.DefaultTTL {
		l.report.Add("ttl", "packet uid=%d originated with TTL %d, want %d", p.UID, p.TTL, netsim.DefaultTTL)
	}
	if p.Hops != 0 {
		l.report.Add("ttl", "packet uid=%d originated with hop count %d", p.UID, p.Hops)
	}
	l.afterEvent(p.UID, f, l.now(n))
}

func (l *Ledger) onDelivered(n *netsim.Node, p *netsim.Packet) {
	l.delivered++
	f := l.fates[p.UID]
	if f == nil {
		l.report.Add("conservation", "delivered packet uid=%d was never originated", p.UID)
		return
	}
	f.delivered++
	if f.delivered > 1 {
		l.report.Add("conservation", "packet uid=%d delivered %d times", p.UID, f.delivered)
	} else if f.terminals() > f.lfDropped+1 {
		l.report.Add("conservation",
			"packet uid=%d delivered after a drop no ACK-loss fork explains (%d drops, %d link failures)",
			p.UID, f.dropped, f.lfDropped)
	}
	// TTL discipline at delivery: Hops counts MAC receptions, and every
	// reception except the final one passed through a router that
	// decremented TTL exactly once, so TTL + Hops == DefaultTTL + 1.
	if p.Hops < 1 {
		l.report.Add("ttl", "packet uid=%d delivered with hop count %d", p.UID, p.Hops)
	}
	if p.TTL < 1 {
		l.report.Add("ttl", "packet uid=%d delivered with TTL %d", p.UID, p.TTL)
	}
	if p.TTL+p.Hops != netsim.DefaultTTL+1 {
		l.report.Add("ttl", "packet uid=%d delivered with TTL %d after %d hops (want TTL+hops=%d)",
			p.UID, p.TTL, p.Hops, netsim.DefaultTTL+1)
	}
	l.afterEvent(p.UID, f, l.now(n))
}

func (l *Ledger) onDropped(n *netsim.Node, p *netsim.Packet, reason string) {
	l.dropped++
	f := l.fates[p.UID]
	if f == nil {
		l.report.Add("conservation", "dropped packet uid=%d (%s) was never originated", p.UID, reason)
		return
	}
	f.dropped++
	// node:down is the custody rule for crashed custodians: like a
	// link-failure, it can witness a fork whose other copy lives on
	// downstream (see the fate invariant above).
	if strings.HasSuffix(reason, ":link-failure") || reason == "node:down" {
		f.lfDropped++
	}
	if f.terminals() > f.lfDropped+1 {
		l.report.Add("conservation",
			"packet uid=%d dropped (%s) beyond what ACK-loss forks explain (%d deliveries, %d drops, %d link failures)",
			p.UID, reason, f.delivered, f.dropped, f.lfDropped)
	}
	// A drop either happens at a router after its decrement (TTL+hops ==
	// DefaultTTL) or before any forwarding work on this hop (== +1, e.g. a
	// queue drop at the originator). TTL expiry must fire exactly at zero.
	if sum := p.TTL + p.Hops; sum != netsim.DefaultTTL && sum != netsim.DefaultTTL+1 {
		l.report.Add("ttl", "packet uid=%d dropped (%s) with TTL %d after %d hops", p.UID, reason, p.TTL, p.Hops)
	}
	if strings.HasSuffix(reason, ":ttl") {
		if p.TTL != 0 {
			l.report.Add("ttl", "packet uid=%d dropped for TTL expiry with TTL %d", p.UID, p.TTL)
		}
	} else if p.TTL < 1 {
		l.report.Add("ttl", "packet uid=%d dropped (%s) with non-positive TTL %d", p.UID, reason, p.TTL)
	}
	l.afterEvent(p.UID, f, l.now(n))
}

// dataBufferer is the optional router extension exposing parked data
// packets (AODV and DYMO route-discovery buffers implement it).
type dataBufferer interface {
	EachBuffered(f func(p *netsim.Packet))
}

// Finish settles the ledger against the world's end-of-run custody state.
func (l *Ledger) Finish(w *netsim.World) {
	custody := make(map[uint64]bool)
	for _, n := range w.Nodes() {
		n.MAC().EachQueued(func(payload any) {
			if p, ok := payload.(*netsim.Packet); ok && p.Kind == netsim.KindData {
				custody[p.UID] = true
			}
		})
		if b, ok := n.Router().(dataBufferer); ok {
			b.EachBuffered(func(p *netsim.Packet) { custody[p.UID] = true })
		}
	}
	l.finish(custody)
}

// finish is the custody settlement, split out so tests can feed a
// synthetic custody set. Retired entries all had a terminal event, so
// compaction never hides a vanished packet.
func (l *Ledger) finish(custody map[uint64]bool) {
	vanished := make([]uint64, 0)
	for uid, f := range l.fates {
		if f.delivered+f.dropped > 0 {
			continue
		}
		if !custody[uid] {
			vanished = append(vanished, uid)
		}
	}
	sort.Slice(vanished, func(i, j int) bool { return vanished[i] < vanished[j] })
	for _, uid := range vanished {
		l.report.Add("conservation",
			"packet uid=%d vanished: not delivered, not dropped, and not held by any MAC queue or router buffer", uid)
	}
}

// Counts reports the ledger totals (hook events, not unique packets).
func (l *Ledger) Counts() (sent, delivered, dropped uint64) {
	return l.sent, l.delivered, l.dropped
}
