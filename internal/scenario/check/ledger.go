package check

import (
	"sort"
	"strings"

	"cavenet/internal/netsim"
)

// fate tracks what has happened to one originated data packet.
//
// A packet normally meets exactly one terminal event (delivered or
// dropped). The one legitimate exception is the 802.11 ACK-loss fork: the
// receiver decodes a data frame and forwards it onward, but the ACK is
// lost, so the sender retries to exhaustion and records a link-failure
// drop for a packet that lives on (and may be delivered, dropped again, or
// parked). Every such fork is witnessed by exactly one link-failure drop,
// so the sound conservation invariant is
//
//	deliveries ≤ 1   and   deliveries + drops ≤ link-failure drops + 1.
type fate struct {
	delivered int
	dropped   int
	lfDropped int
}

func (f *fate) terminals() int { return f.delivered + f.dropped }

// Ledger audits the data plane of one world run through the netsim hooks:
// it keeps per-UID packet fates and verifies the TTL discipline at every
// event. After the run, Finish settles the conservation equation
//
//	sent = delivered + dropped + in-flight
//
// where in-flight is not inferred by subtraction but proven: every packet
// with no terminal event must still be physically held by a MAC queue or a
// route-discovery buffer somewhere in the world.
type Ledger struct {
	report *Report
	fates  map[uint64]*fate

	sent, delivered, dropped uint64
}

// NewLedger creates a ledger reporting into report.
func NewLedger(report *Report) *Ledger {
	return &Ledger{report: report, fates: make(map[uint64]*fate)}
}

// Hooks returns the observers to install with World.AddHooks.
func (l *Ledger) Hooks() netsim.Hooks {
	return netsim.Hooks{
		DataSent:      l.onSent,
		DataDelivered: l.onDelivered,
		DataDropped:   l.onDropped,
	}
}

func (l *Ledger) onSent(n *netsim.Node, p *netsim.Packet) {
	l.sent++
	if _, dup := l.fates[p.UID]; dup {
		l.report.Add("conservation", "packet uid=%d originated twice", p.UID)
		return
	}
	l.fates[p.UID] = &fate{}
	if p.TTL != netsim.DefaultTTL {
		l.report.Add("ttl", "packet uid=%d originated with TTL %d, want %d", p.UID, p.TTL, netsim.DefaultTTL)
	}
	if p.Hops != 0 {
		l.report.Add("ttl", "packet uid=%d originated with hop count %d", p.UID, p.Hops)
	}
}

func (l *Ledger) onDelivered(n *netsim.Node, p *netsim.Packet) {
	l.delivered++
	f := l.fates[p.UID]
	if f == nil {
		l.report.Add("conservation", "delivered packet uid=%d was never originated", p.UID)
		return
	}
	f.delivered++
	if f.delivered > 1 {
		l.report.Add("conservation", "packet uid=%d delivered %d times", p.UID, f.delivered)
	} else if f.terminals() > f.lfDropped+1 {
		l.report.Add("conservation",
			"packet uid=%d delivered after a drop no ACK-loss fork explains (%d drops, %d link failures)",
			p.UID, f.dropped, f.lfDropped)
	}
	// TTL discipline at delivery: Hops counts MAC receptions, and every
	// reception except the final one passed through a router that
	// decremented TTL exactly once, so TTL + Hops == DefaultTTL + 1.
	if p.Hops < 1 {
		l.report.Add("ttl", "packet uid=%d delivered with hop count %d", p.UID, p.Hops)
	}
	if p.TTL < 1 {
		l.report.Add("ttl", "packet uid=%d delivered with TTL %d", p.UID, p.TTL)
	}
	if p.TTL+p.Hops != netsim.DefaultTTL+1 {
		l.report.Add("ttl", "packet uid=%d delivered with TTL %d after %d hops (want TTL+hops=%d)",
			p.UID, p.TTL, p.Hops, netsim.DefaultTTL+1)
	}
}

func (l *Ledger) onDropped(n *netsim.Node, p *netsim.Packet, reason string) {
	l.dropped++
	f := l.fates[p.UID]
	if f == nil {
		l.report.Add("conservation", "dropped packet uid=%d (%s) was never originated", p.UID, reason)
		return
	}
	f.dropped++
	if strings.HasSuffix(reason, ":link-failure") {
		f.lfDropped++
	}
	if f.terminals() > f.lfDropped+1 {
		l.report.Add("conservation",
			"packet uid=%d dropped (%s) beyond what ACK-loss forks explain (%d deliveries, %d drops, %d link failures)",
			p.UID, reason, f.delivered, f.dropped, f.lfDropped)
	}
	// A drop either happens at a router after its decrement (TTL+hops ==
	// DefaultTTL) or before any forwarding work on this hop (== +1, e.g. a
	// queue drop at the originator). TTL expiry must fire exactly at zero.
	if sum := p.TTL + p.Hops; sum != netsim.DefaultTTL && sum != netsim.DefaultTTL+1 {
		l.report.Add("ttl", "packet uid=%d dropped (%s) with TTL %d after %d hops", p.UID, reason, p.TTL, p.Hops)
	}
	if strings.HasSuffix(reason, ":ttl") {
		if p.TTL != 0 {
			l.report.Add("ttl", "packet uid=%d dropped for TTL expiry with TTL %d", p.UID, p.TTL)
		}
	} else if p.TTL < 1 {
		l.report.Add("ttl", "packet uid=%d dropped (%s) with non-positive TTL %d", p.UID, reason, p.TTL)
	}
}

// dataBufferer is the optional router extension exposing parked data
// packets (AODV and DYMO route-discovery buffers implement it).
type dataBufferer interface {
	EachBuffered(f func(p *netsim.Packet))
}

// Finish settles the ledger against the world's end-of-run custody state.
func (l *Ledger) Finish(w *netsim.World) {
	custody := make(map[uint64]bool)
	for _, n := range w.Nodes() {
		n.MAC().EachQueued(func(payload any) {
			if p, ok := payload.(*netsim.Packet); ok && p.Kind == netsim.KindData {
				custody[p.UID] = true
			}
		})
		if b, ok := n.Router().(dataBufferer); ok {
			b.EachBuffered(func(p *netsim.Packet) { custody[p.UID] = true })
		}
	}
	l.finish(custody)
}

// finish is the custody settlement, split out so tests can feed a
// synthetic custody set.
func (l *Ledger) finish(custody map[uint64]bool) {
	vanished := make([]uint64, 0)
	for uid, f := range l.fates {
		if f.delivered+f.dropped > 0 {
			continue
		}
		if !custody[uid] {
			vanished = append(vanished, uid)
		}
	}
	sort.Slice(vanished, func(i, j int) bool { return vanished[i] < vanished[j] })
	for _, uid := range vanished {
		l.report.Add("conservation",
			"packet uid=%d vanished: not delivered, not dropped, and not held by any MAC queue or router buffer", uid)
	}
}

// Counts reports the ledger totals (hook events, not unique packets).
func (l *Ledger) Counts() (sent, delivered, dropped uint64) {
	return l.sent, l.delivered, l.dropped
}
