package check

import (
	"cavenet/internal/ca"
	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
)

// RoadWatcher validates the cellular-automaton dynamics of a road while it
// is being stepped: call AfterStep after every Road.Step. It checks, per
// lane and per step,
//
//   - no collisions: vehicle positions are strictly increasing (distinct
//     cells, order preserved — overtaking within a lane is impossible);
//   - velocity bounds: 0 ≤ v ≤ vmax;
//   - motion consistency: each vehicle moved exactly its velocity
//     (mod lane length), tracked across lane changes by persistent ID;
//   - flow ≤ capacity: Σ v ≤ L − N on a ring lane (velocities are gap
//     limited and ring gaps sum to L − N, so the flow ρ·v̄ can never
//     exceed 1 − ρ).
type RoadWatcher struct {
	road   *ca.Road
	report *Report
	// prev maps the tracking key to the vehicle's position before the step.
	prev    map[int]ca.Vehicle
	scratch []ca.Vehicle
}

// WatchRoad starts watching road (snapshotting its current state).
func WatchRoad(road *ca.Road, report *Report) *RoadWatcher {
	w := &RoadWatcher{road: road, report: report, prev: make(map[int]ca.Vehicle)}
	w.snapshot()
	return w
}

// key identifies a vehicle across steps: the persistent global ID on a
// coupled road, (lane, per-lane ID) otherwise (vehicles never migrate when
// uncoupled).
func (w *RoadWatcher) key(lane int, v ca.Vehicle) int {
	if w.road.LaneChangesEnabled() {
		return v.ID
	}
	return lane*(1<<21) + v.ID
}

func (w *RoadWatcher) snapshot() {
	for k := range w.prev {
		delete(w.prev, k)
	}
	for li := 0; li < w.road.NumLanes(); li++ {
		w.scratch = w.road.Lane(li).Vehicles(w.scratch[:0])
		for _, v := range w.scratch {
			w.prev[w.key(li, v)] = v
		}
	}
}

// AfterStep validates the road state produced by the latest Road.Step.
func (w *RoadWatcher) AfterStep() {
	step := w.road.StepCount()
	for li := 0; li < w.road.NumLanes(); li++ {
		lane := w.road.Lane(li)
		cfg := lane.Config()
		w.scratch = lane.Vehicles(w.scratch[:0])
		sumVel := 0
		for vi, v := range w.scratch {
			if v.Pos < 0 || v.Pos >= cfg.Length {
				w.report.Add("ca", "step %d lane %d: vehicle %d at out-of-lane site %d", step, li, v.ID, v.Pos)
			}
			if v.Vel < 0 || v.Vel > cfg.VMax {
				w.report.Add("ca", "step %d lane %d: vehicle %d velocity %d outside [0,%d]", step, li, v.ID, v.Vel, cfg.VMax)
			}
			sumVel += v.Vel
			if vi > 0 && w.scratch[vi-1].Pos >= v.Pos {
				w.report.Add("ca", "step %d lane %d: vehicles %d and %d collide or disorder at sites %d,%d",
					step, li, w.scratch[vi-1].ID, v.ID, w.scratch[vi-1].Pos, v.Pos)
			}
			prev, seen := w.prev[w.key(li, v)]
			if !seen {
				w.report.Add("ca", "step %d lane %d: vehicle %d appeared from nowhere", step, li, v.ID)
				continue
			}
			// Motion consistency: mod-L displacement equals the velocity.
			// Ring wrap-arounds are covered by the modulo; an open-boundary
			// teleport (Laps bump) is that boundary's defined behavior.
			if cfg.Boundary == ca.RingBoundary || v.Laps == prev.Laps {
				moved := v.Pos - prev.Pos
				if moved < 0 {
					moved += cfg.Length
				}
				if moved != v.Vel {
					w.report.Add("ca", "step %d lane %d: vehicle %d teleported %d sites with velocity %d",
						step, li, v.ID, moved, v.Vel)
				}
			}
		}
		// Flow ≤ capacity: on a ring, gaps sum to L − N and every velocity
		// is gap limited, so Σv ≤ L − N.
		if cfg.Boundary == ca.RingBoundary && sumVel > cfg.Length-len(w.scratch) {
			w.report.Add("ca", "step %d lane %d: total velocity %d exceeds ring capacity %d (L=%d, N=%d)",
				step, li, sumVel, cfg.Length-len(w.scratch), cfg.Length, len(w.scratch))
		}
	}
	// Coupled roads: a vehicle must never be lost or duplicated across the
	// road as a whole.
	if w.road.LaneChangesEnabled() {
		seen := make(map[int]bool, w.road.TotalVehicles())
		for li := 0; li < w.road.NumLanes(); li++ {
			w.scratch = w.road.Lane(li).Vehicles(w.scratch[:0])
			for _, v := range w.scratch {
				if seen[v.ID] {
					w.report.Add("ca", "step %d: vehicle %d exists on two lanes", step, v.ID)
				}
				seen[v.ID] = true
			}
		}
		if len(seen) != w.road.TotalVehicles() {
			w.report.Add("ca", "step %d: %d distinct vehicles, want %d", step, len(seen), w.road.TotalVehicles())
		}
	}
	w.snapshot()
}

// TraceWatcher validates motion sample by sample as a mobility stream
// produces it: between consecutive samples no node may move farther than
// maxStepMeters (the physical speed limit plus lane-change slack), except
// at its declared activation step — the single jump from the staging area
// onto the road that a density-ramp scenario schedules. Retained state is
// one sample row (O(nodes)), so the check rides the streaming substrate
// without a recorded array.
type TraceWatcher struct {
	maxStep float64
	act     []int // activation sample per node; nil without a ramp
	report  *Report
	prev    []geometry.Vec2
	prevK   int
}

// WatchTrace builds a watcher; install its OnSample as the stream's
// sample observer (mobility.StreamConfig.OnSample / RoadSourceConfig.OnSample).
func WatchTrace(maxStepMeters float64, activationStep []int, report *Report) *TraceWatcher {
	// prevK starts at -2 so the first row (k == 0) never pairs with the
	// (empty) previous row.
	return &TraceWatcher{maxStep: maxStepMeters, act: activationStep, report: report, prevK: -2}
}

// OnSample validates the step from the previously observed sample row to
// this one (rows must arrive in sample order, which the stream guarantees).
func (w *TraceWatcher) OnSample(k int, row []geometry.Vec2) {
	if w.prevK == k-1 {
		for n := range row {
			act := -1
			if n < len(w.act) {
				act = w.act[n]
			}
			if k == act {
				continue // the declared staging→road activation jump
			}
			if d := w.prev[n].Dist(row[n]); d > w.maxStep {
				w.report.Add("trace", "node %d teleported %.1f m between samples %d and %d (limit %.1f m)",
					n, d, k-1, k, w.maxStep)
			}
		}
	}
	w.prev = append(w.prev[:0], row...)
	w.prevK = k
}

// Trace validates a fully materialized mobility trace by feeding it
// through a TraceWatcher row by row — one code path for the recorded and
// streamed checks. activationStep may be nil when no ramp is in play.
func Trace(tr *mobility.SampledTrace, maxStepMeters float64, activationStep []int, report *Report) {
	w := WatchTrace(maxStepMeters, activationStep, report)
	row := make([]geometry.Vec2, tr.NumNodes())
	for k := 0; k < tr.NumSamples(); k++ {
		row = tr.Row(k, row[:0])
		w.OnSample(k, row)
	}
}
