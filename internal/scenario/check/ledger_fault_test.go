package check

import (
	"testing"

	"cavenet/internal/netsim"
)

// The node:down custody rule: a crashing custodian's flush records a drop
// for a packet whose other copy (decoded downstream before the crash) may
// live on — exactly the ACK-loss fork shape, so "node:down" counts as a
// fork witness. These synthetic lifecycles pin the rule's boundaries.

func TestLedgerNodeDownForkAllowsDownstreamDelivery(t *testing.T) {
	rep := NewReport()
	l := NewLedger(rep)
	h := l.Hooks()

	// Crash flush at the originator (no forwarding work yet: TTL untouched),
	// then the copy already on the air is delivered downstream.
	h.DataSent(nil, mkPacket(1, netsim.DefaultTTL, 0))
	h.DataDropped(nil, mkPacket(1, netsim.DefaultTTL, 0), "node:down")
	h.DataDelivered(nil, mkPacket(1, netsim.DefaultTTL-1, 2))

	// Crash flush at a forwarder, one hop in.
	h.DataSent(nil, mkPacket(2, netsim.DefaultTTL, 0))
	h.DataDropped(nil, mkPacket(2, netsim.DefaultTTL-1, 1), "node:down")
	h.DataDelivered(nil, mkPacket(2, netsim.DefaultTTL-2, 3))

	// Two custodians of ACK-loss replicas crash independently: two
	// node:down witnesses, then the surviving copy is delivered.
	h.DataSent(nil, mkPacket(3, netsim.DefaultTTL, 0))
	h.DataDropped(nil, mkPacket(3, netsim.DefaultTTL-1, 1), "node:down")
	h.DataDropped(nil, mkPacket(3, netsim.DefaultTTL-2, 2), "node:down")
	h.DataDelivered(nil, mkPacket(3, netsim.DefaultTTL-2, 3))

	// A node:down drop can also just terminate the packet outright.
	h.DataSent(nil, mkPacket(4, netsim.DefaultTTL, 0))
	h.DataDropped(nil, mkPacket(4, netsim.DefaultTTL, 0), "node:down")
	l.finish(map[uint64]bool{})

	if !rep.Ok() {
		t.Fatalf("legitimate node:down fates flagged:\n%s", rep)
	}
}

func TestLedgerNodeDownDoesNotExcuseDoubleDelivery(t *testing.T) {
	rep := NewReport()
	l := NewLedger(rep)
	h := l.Hooks()

	h.DataSent(nil, mkPacket(1, netsim.DefaultTTL, 0))
	h.DataDropped(nil, mkPacket(1, netsim.DefaultTTL-1, 1), "node:down")
	h.DataDelivered(nil, mkPacket(1, netsim.DefaultTTL-1, 2))
	h.DataDelivered(nil, mkPacket(1, netsim.DefaultTTL-1, 2))

	if rep.Ok() {
		t.Fatal("double delivery behind a node:down fork went unflagged")
	}
}

func TestLedgerOrdinaryDropStillNotAForkWitness(t *testing.T) {
	rep := NewReport()
	l := NewLedger(rep)
	h := l.Hooks()

	// A queue-full drop followed by a delivery is the classic conservation
	// bug; node:down's fork status must not have loosened it.
	h.DataSent(nil, mkPacket(1, netsim.DefaultTTL, 0))
	h.DataDropped(nil, mkPacket(1, netsim.DefaultTTL, 0), "mac:queue-full")
	h.DataDelivered(nil, mkPacket(1, netsim.DefaultTTL-1, 2))

	if rep.Ok() {
		t.Fatal("delivery after a non-fork drop went unflagged")
	}
}

func TestLedgerCrashedPacketsMayNotVanish(t *testing.T) {
	rep := NewReport()
	l := NewLedger(rep)
	h := l.Hooks()

	// A packet with no terminal event and no custody at settlement is the
	// exact signature of a crash that silently discarded its queue instead
	// of flushing it as node:down drops.
	h.DataSent(nil, mkPacket(1, netsim.DefaultTTL, 0))
	l.finish(map[uint64]bool{})

	if rep.Ok() {
		t.Fatal("vanished packet (crash without flush) went unflagged")
	}
}
