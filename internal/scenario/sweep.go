package scenario

import (
	"fmt"

	"cavenet/internal/exp"
	"cavenet/internal/mobility"
	"cavenet/internal/rng"
	"cavenet/internal/scenario/check"
	"cavenet/internal/sim"
	"cavenet/internal/stats"
)

// SweepConfig spans a scenario × protocol × seed grid — the registry
// generalization of the core package's density sweep: the axis is the
// whole catalogue, not just the vehicle count.
type SweepConfig struct {
	// Scenarios names the registered scenarios to run; default: the whole
	// catalogue in sorted order.
	Scenarios []string
	// Protocols lists the routing protocols; default all three.
	Protocols []Protocol
	// Trials is the number of seeded replications per cell (default 1);
	// trial t of scenario cell i runs with seed root.Fork(i).Fork(t).
	Trials int
	// Seed is the root seed of the grid.
	Seed int64
	// Workers bounds the worker pool; <= 0 uses every core. Output is
	// bit-identical for any worker count.
	Workers int
	// Shrunk runs the test-sized spec variants (see Spec.Shrunk).
	Shrunk bool
	// Checked wraps every run in the invariant harness and reports the
	// violation count per cell.
	Checked bool
	// OverrideTimeSec > 0 replaces every spec's simulated duration, with
	// flow windows re-derived from the new horizon (the CLI's
	// `scenario run -time` semantics, applied grid-wide).
	OverrideTimeSec float64
	// OverrideNodes > 0 rescales every spec to this fleet size at its
	// declared density (Spec.WithVehicles, applied grid-wide).
	OverrideNodes int
}

// SweepRow aggregates the trials of one (scenario, protocol) cell.
type SweepRow struct {
	Scenario string   `json:"scenario"`
	Protocol Protocol `json:"protocol"`
	Trials   int      `json:"trials"`
	// PDR, DelaySec and ControlPackets are mean ± spread across trials.
	PDR            stats.Estimate `json:"pdr"`
	DelaySec       stats.Estimate `json:"delaySec"`
	ControlPackets stats.Estimate `json:"controlPackets"`
	// Delivered totals delivered packets across trials.
	Delivered uint64 `json:"delivered"`
	// Violations totals invariant violations across trials (Checked only).
	Violations int `json:"violations"`
	// DowntimeSec is the fault plan's node-seconds of downtime per trial
	// (zero for fault-free scenarios).
	DowntimeSec stats.Estimate `json:"downtimeSec"`
	// FaultPDR is the delivery ratio of packets originated inside fault
	// windows (zero for fault-free scenarios).
	FaultPDR stats.Estimate `json:"faultPDR"`
}

// TrialResult is the scalarized outcome of one (scenario, protocol,
// trial) run — the unit of work a sweep cell produces per protocol, and
// the value the experiment service's content-addressed result cache
// stores: runs are deterministic, so two runs of the same normalized
// spec produce the same TrialResult bit for bit.
type TrialResult struct {
	PDR            float64 `json:"pdr"`
	DelaySec       float64 `json:"delaySec"`
	ControlPackets float64 `json:"controlPackets"`
	DowntimeSec    float64 `json:"downtimeSec"`
	FaultPDR       float64 `json:"faultPDR"`
	Delivered      uint64  `json:"delivered"`
	Violations     int     `json:"violations"`
}

// Grid is a fully expanded, validated sweep: the ordered (scenario ×
// trial) cell list with its protocol axis. Sweep runs a Grid on the
// parallel engine; the experiment service (internal/serve) runs the same
// cells behind its job queue and result cache. Cell j covers scenario
// j/Trials, trial j%Trials.
type Grid struct {
	// Scenarios, Protocols, Trials, Seed and Checked are the validated
	// axes (defaults applied).
	Scenarios []string
	Protocols []Protocol
	Trials    int
	Seed      int64
	Checked   bool

	specs []Spec
}

// NewGrid validates a sweep config and expands it: scenario names are
// resolved (shrunk and overridden as requested), the protocol axis is
// checked, and the trial count defaulted. The returned grid is
// immutable; its cells can run in any order and still produce identical
// results.
func NewGrid(cfg SweepConfig) (*Grid, error) {
	if len(cfg.Scenarios) == 0 {
		// Heavy catalogue entries (10k-vehicle workloads) join a sweep only
		// when named explicitly.
		for _, name := range Names() {
			if s, ok := Get(name); ok && !s.Heavy {
				cfg.Scenarios = append(cfg.Scenarios, name)
			}
		}
	}
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = AllProtocols()
	}
	// The per-protocol runs below bypass spec re-normalization, so the
	// protocol axis must be validated here — an unknown name would
	// otherwise silently run the default router under the wrong label.
	for _, p := range cfg.Protocols {
		if _, err := ParseProtocol(string(p)); err != nil {
			return nil, err
		}
	}
	if cfg.Trials == 0 {
		cfg.Trials = 1
	}
	if cfg.Trials < 0 {
		return nil, fmt.Errorf("scenario: negative trial count %d", cfg.Trials)
	}
	specs := make([]Spec, len(cfg.Scenarios))
	for i, name := range cfg.Scenarios {
		s, ok := Get(name)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown scenario %q", name)
		}
		if cfg.Shrunk {
			s = s.Shrunk()
		}
		if cfg.OverrideNodes > 0 {
			scaled, err := s.WithVehicles(cfg.OverrideNodes)
			if err != nil {
				return nil, err
			}
			s = scaled
		}
		if cfg.OverrideTimeSec > 0 {
			s.SimTime = sim.Seconds(cfg.OverrideTimeSec)
			for f := range s.Flows {
				s.Flows[f].Start = 0 // re-derive the window from the new horizon
				s.Flows[f].Stop = 0
			}
			if err := s.Validate(); err != nil {
				return nil, err
			}
		}
		specs[i] = s
	}
	return &Grid{
		Scenarios: cfg.Scenarios,
		Protocols: cfg.Protocols,
		Trials:    cfg.Trials,
		Seed:      cfg.Seed,
		Checked:   cfg.Checked,
		specs:     specs,
	}, nil
}

// Cells reports the number of (scenario, trial) cells in the grid.
func (g *Grid) Cells() int { return len(g.specs) * g.Trials }

// Cell decomposes a cell index into its scenario name and trial.
func (g *Grid) Cell(j int) (scenarioName string, trial int) {
	return g.Scenarios[j/g.Trials], j % g.Trials
}

// CellSpec returns the normalized base spec of cell j: the scenario's
// spec with the cell's forked seed applied and every default made
// explicit. The spec's Protocol field still carries the scenario's own
// default; a run of the cell overrides it per protocol-axis entry — the
// per-(cell, protocol) spec (see RunCell) is the canonical identity a
// content-addressed result cache keys on.
func (g *Grid) CellSpec(j int) (Spec, error) {
	if j < 0 || j >= g.Cells() {
		return Spec{}, fmt.Errorf("scenario: cell %d outside grid of %d", j, g.Cells())
	}
	si, trial := j/g.Trials, j%g.Trials
	base := g.specs[si].clone()
	base.Seed = rng.NewSource(g.Seed).Fork(si).Fork(trial).Seed()
	if err := base.normalize(); err != nil {
		return Spec{}, err
	}
	return base, nil
}

// RunCell executes cell j for the given subset of the grid's protocol
// axis and returns one TrialResult per requested protocol, in argument
// order. Every protocol of the cell sees the same seeded mobility
// pattern (the paper's "same mobility pattern" methodology): normal
// specs record it once and share the trace, Heavy specs stream a fresh
// replay per protocol to keep mobility memory O(nodes) — the
// streamed-vs-recorded differential test proves the two bit-identical.
// Results depend only on (grid, j, protocol), never on which other cells
// ran or in what order — the property that makes per-cell caching sound.
func (g *Grid) RunCell(j int, protocols []Protocol) ([]TrialResult, error) {
	base, err := g.CellSpec(j)
	if err != nil {
		return nil, err
	}
	_, trial := g.Cell(j)
	var shared *mobility.SampledTrace
	if !base.Heavy {
		src, err := buildSource(&base, nil)
		if err != nil {
			return nil, fmt.Errorf("scenario: sweep mobility (%s trial %d): %w", base.Name, trial, err)
		}
		shared = mobility.Record(src)
	}
	out := make([]TrialResult, len(protocols))
	for pi, p := range protocols {
		run := base.clone()
		run.Protocol = p
		var msrc mobility.Source = shared
		if shared == nil {
			s, err := buildSource(&run, nil)
			if err != nil {
				return nil, fmt.Errorf("scenario: sweep mobility (%s trial %d): %w", base.Name, trial, err)
			}
			msrc = s
		}
		var res *Result
		var violations int
		if g.Checked {
			report := check.NewReport()
			r, err := runCheckedOnSource(&run, msrc, report)
			if err != nil {
				return nil, fmt.Errorf("scenario: sweep %s/%s trial %d: %w", base.Name, p, trial, err)
			}
			res, violations = r, report.Total()
		} else {
			r, err := runOnSource(&run, msrc, nil)
			if err != nil {
				return nil, fmt.Errorf("scenario: sweep %s/%s trial %d: %w", base.Name, p, trial, err)
			}
			res = r
		}
		var delaySum float64
		for _, snd := range res.Senders {
			delaySum += res.MeanDelaySec[snd]
		}
		if len(res.Senders) > 0 {
			delaySum /= float64(len(res.Senders))
		}
		out[pi] = TrialResult{
			PDR:            res.TotalPDR(),
			DelaySec:       delaySum,
			ControlPackets: float64(res.ControlPackets),
			Delivered:      res.TotalDelivered(),
			Violations:     violations,
		}
		if r := res.Resilience; r != nil {
			out[pi].DowntimeSec = r.DowntimeNodeSec
			out[pi].FaultPDR = r.PDRDuring
		}
	}
	return out, nil
}

// Aggregate reduces the per-cell results — cells[j][pi] is cell j under
// the grid's pi-th protocol — into the sweep's (scenario, protocol) rows
// with Student-t confidence intervals, in the same deterministic order
// Sweep emits.
func (g *Grid) Aggregate(cells [][]TrialResult) []SweepRow {
	nt, np := g.Trials, len(g.Protocols)
	out := make([]SweepRow, 0, len(g.specs)*np)
	samples := make([]float64, nt)
	for si, name := range g.Scenarios {
		for pi, p := range g.Protocols {
			row := SweepRow{Scenario: name, Protocol: p, Trials: nt}
			pick := func(f func(TrialResult) float64) stats.Estimate {
				for t := 0; t < nt; t++ {
					samples[t] = f(cells[si*nt+t][pi])
				}
				return stats.EstimateOf(samples)
			}
			row.PDR = pick(func(r TrialResult) float64 { return r.PDR })
			row.DelaySec = pick(func(r TrialResult) float64 { return r.DelaySec })
			row.ControlPackets = pick(func(r TrialResult) float64 { return r.ControlPackets })
			row.DowntimeSec = pick(func(r TrialResult) float64 { return r.DowntimeSec })
			row.FaultPDR = pick(func(r TrialResult) float64 { return r.FaultPDR })
			for t := 0; t < nt; t++ {
				row.Delivered += cells[si*nt+t][pi].Delivered
				row.Violations += cells[si*nt+t][pi].Violations
			}
			out = append(out, row)
		}
	}
	return out
}

// Sweep executes the grid on the deterministic parallel engine. The unit
// of work is one (scenario, trial) cell (see Grid.RunCell); all
// randomness derives from the cell's index, so the output is
// bit-identical for every worker count.
func Sweep(cfg SweepConfig) ([]SweepRow, error) {
	g, err := NewGrid(cfg)
	if err != nil {
		return nil, err
	}
	cells, err := exp.Map(exp.Runner{Workers: cfg.Workers}, g.Cells(), func(j int) ([]TrialResult, error) {
		return g.RunCell(j, g.Protocols)
	})
	if err != nil {
		return nil, err
	}
	return g.Aggregate(cells), nil
}
