package scenario

import (
	"fmt"

	"cavenet/internal/exp"
	"cavenet/internal/mobility"
	"cavenet/internal/rng"
	"cavenet/internal/scenario/check"
	"cavenet/internal/stats"
)

// SweepConfig spans a scenario × protocol × seed grid — the registry
// generalization of the core package's density sweep: the axis is the
// whole catalogue, not just the vehicle count.
type SweepConfig struct {
	// Scenarios names the registered scenarios to run; default: the whole
	// catalogue in sorted order.
	Scenarios []string
	// Protocols lists the routing protocols; default all three.
	Protocols []Protocol
	// Trials is the number of seeded replications per cell (default 1);
	// trial t of scenario cell i runs with seed root.Fork(i).Fork(t).
	Trials int
	// Seed is the root seed of the grid.
	Seed int64
	// Workers bounds the worker pool; <= 0 uses every core. Output is
	// bit-identical for any worker count.
	Workers int
	// Shrunk runs the test-sized spec variants (see Spec.Shrunk).
	Shrunk bool
	// Checked wraps every run in the invariant harness and reports the
	// violation count per cell.
	Checked bool
}

// SweepRow aggregates the trials of one (scenario, protocol) cell.
type SweepRow struct {
	Scenario string   `json:"scenario"`
	Protocol Protocol `json:"protocol"`
	Trials   int      `json:"trials"`
	// PDR, DelaySec and ControlPackets are mean ± spread across trials.
	PDR            stats.Estimate `json:"pdr"`
	DelaySec       stats.Estimate `json:"delaySec"`
	ControlPackets stats.Estimate `json:"controlPackets"`
	// Delivered totals delivered packets across trials.
	Delivered uint64 `json:"delivered"`
	// Violations totals invariant violations across trials (Checked only).
	Violations int `json:"violations"`
	// DowntimeSec is the fault plan's node-seconds of downtime per trial
	// (zero for fault-free scenarios).
	DowntimeSec stats.Estimate `json:"downtimeSec"`
	// FaultPDR is the delivery ratio of packets originated inside fault
	// windows (zero for fault-free scenarios).
	FaultPDR stats.Estimate `json:"faultPDR"`
}

// sweepTrial is the scalarized outcome of one (scenario, protocol, trial)
// run.
type sweepTrial struct {
	pdr, delay, ctrl   float64
	downtime, faultPDR float64
	delivered          uint64
	violations         int
}

// Sweep executes the grid on the deterministic parallel engine. The unit
// of work is one (scenario, trial) pair: every protocol of the cell runs
// over a fresh streaming replay of the same seeded mobility (the paper's
// "same mobility pattern" methodology — replaying the CA beats retaining
// its O(nodes × samples) recording, and the streamed-vs-recorded property
// test proves the runs bit-identical), deriving all randomness from the
// pair's index — so the output is bit-identical for every worker count.
func Sweep(cfg SweepConfig) ([]SweepRow, error) {
	if len(cfg.Scenarios) == 0 {
		// Heavy catalogue entries (10k-vehicle workloads) join a sweep only
		// when named explicitly.
		for _, name := range Names() {
			if s, ok := Get(name); ok && !s.Heavy {
				cfg.Scenarios = append(cfg.Scenarios, name)
			}
		}
	}
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = AllProtocols()
	}
	// The per-protocol runs below bypass spec re-normalization, so the
	// protocol axis must be validated here — an unknown name would
	// otherwise silently run the default router under the wrong label.
	for _, p := range cfg.Protocols {
		if _, err := ParseProtocol(string(p)); err != nil {
			return nil, err
		}
	}
	if cfg.Trials == 0 {
		cfg.Trials = 1
	}
	if cfg.Trials < 0 {
		return nil, fmt.Errorf("scenario: negative trial count %d", cfg.Trials)
	}
	specs := make([]Spec, len(cfg.Scenarios))
	for i, name := range cfg.Scenarios {
		s, ok := Get(name)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown scenario %q", name)
		}
		if cfg.Shrunk {
			s = s.Shrunk()
		}
		specs[i] = s
	}
	src := rng.NewSource(cfg.Seed)
	nt, np := cfg.Trials, len(cfg.Protocols)
	rows, err := exp.Map(exp.Runner{Workers: cfg.Workers}, len(specs)*nt, func(j int) ([]sweepTrial, error) {
		si, trial := j/nt, j%nt
		base := specs[si].clone()
		base.Seed = src.Fork(si).Fork(trial).Seed()
		if err := base.normalize(); err != nil {
			return nil, err
		}
		// Every protocol of the cell sees the same seeded mobility pattern.
		// Normal-sized specs record it once and share the trace (the CA and
		// its warmup run once per cell); Heavy specs stream a fresh replay
		// per protocol instead — re-stepping the CA is what keeps their
		// mobility memory O(nodes). The streamed-vs-recorded differential
		// test proves the two choices bit-identical.
		var shared *mobility.SampledTrace
		if !base.Heavy {
			src, err := buildSource(&base, nil)
			if err != nil {
				return nil, fmt.Errorf("scenario: sweep mobility (%s trial %d): %w", base.Name, trial, err)
			}
			shared = mobility.Record(src)
		}
		out := make([]sweepTrial, np)
		for pi, p := range cfg.Protocols {
			run := base.clone()
			run.Protocol = p
			var msrc mobility.Source = shared
			if shared == nil {
				s, err := buildSource(&run, nil)
				if err != nil {
					return nil, fmt.Errorf("scenario: sweep mobility (%s trial %d): %w", base.Name, trial, err)
				}
				msrc = s
			}
			var res *Result
			var violations int
			if cfg.Checked {
				report := check.NewReport()
				r, err := runCheckedOnSource(&run, msrc, report)
				if err != nil {
					return nil, fmt.Errorf("scenario: sweep %s/%s trial %d: %w", base.Name, p, trial, err)
				}
				res, violations = r, report.Total()
			} else {
				r, err := runOnSource(&run, msrc, nil)
				if err != nil {
					return nil, fmt.Errorf("scenario: sweep %s/%s trial %d: %w", base.Name, p, trial, err)
				}
				res = r
			}
			var delaySum float64
			for _, snd := range res.Senders {
				delaySum += res.MeanDelaySec[snd]
			}
			if len(res.Senders) > 0 {
				delaySum /= float64(len(res.Senders))
			}
			out[pi] = sweepTrial{
				pdr:        res.TotalPDR(),
				delay:      delaySum,
				ctrl:       float64(res.ControlPackets),
				delivered:  res.TotalDelivered(),
				violations: violations,
			}
			if r := res.Resilience; r != nil {
				out[pi].downtime = r.DowntimeNodeSec
				out[pi].faultPDR = r.PDRDuring
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]SweepRow, 0, len(specs)*np)
	samples := make([]float64, nt)
	for si, name := range cfg.Scenarios {
		for pi, p := range cfg.Protocols {
			row := SweepRow{Scenario: name, Protocol: p, Trials: nt}
			pick := func(f func(sweepTrial) float64) stats.Estimate {
				for t := 0; t < nt; t++ {
					samples[t] = f(rows[si*nt+t][pi])
				}
				return stats.EstimateOf(samples)
			}
			row.PDR = pick(func(r sweepTrial) float64 { return r.pdr })
			row.DelaySec = pick(func(r sweepTrial) float64 { return r.delay })
			row.ControlPackets = pick(func(r sweepTrial) float64 { return r.ctrl })
			row.DowntimeSec = pick(func(r sweepTrial) float64 { return r.downtime })
			row.FaultPDR = pick(func(r sweepTrial) float64 { return r.faultPDR })
			for t := 0; t < nt; t++ {
				row.Delivered += rows[si*nt+t][pi].delivered
				row.Violations += rows[si*nt+t][pi].violations
			}
			out = append(out, row)
		}
	}
	return out, nil
}
