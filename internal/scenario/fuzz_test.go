package scenario

import (
	"testing"

	"cavenet/internal/ca"
)

// FuzzUrbanSpec throws arbitrary street-grid knobs at spec validation.
// Any input either fails Validate with an error or normalizes into a spec
// whose derived quantities respect the documented caps — in particular the
// grid-side and block-length bounds that keep a hostile spec from forcing
// quadratic intersection/segment allocations, and the capacity rule that
// NewGridNetwork would otherwise reject at build time.
func FuzzUrbanSpec(f *testing.F) {
	f.Add(3, 3, 150.0, 40, 25, 20, 1, 1, 1000, 8)
	f.Add(2, 2, 0.0, 0, 0, 0, -1, 0, 0, 0)            // all defaults, no uplink
	f.Add(64, 64, 10000.0, 1, 1, 1, 63, 63, 1<<30, 1) // every cap edge
	f.Add(4, 4, 7.5, 100000, 25, 20, 0, 0, 100, 1)
	f.Add(-5, 7, -1.0, -1, -1, -1, 5, 5, 50, -3)
	f.Fuzz(func(t *testing.T, rows, cols int, block float64, fleet, green, red, uRow, uCol, uBase, uCount int) {
		s := Spec{
			Name:            "fuzz",
			GridRows:        rows,
			GridCols:        cols,
			BlockMeters:     block,
			GridVehicles:    fleet,
			GridSignalGreen: green,
			GridSignalRed:   red,
		}
		if uRow >= 0 {
			s.Uplink = &Uplink{Row: uRow, Col: uCol, ExternalBase: uBase, ExternalCount: uCount}
		}
		norm, err := s.Normalized()
		if err != nil {
			return
		}
		if !norm.Urban() {
			// Only the all-zero grid tuple may normalize into a ring spec;
			// any dangling grid knob must have been rejected above.
			if rows != 0 || cols != 0 || block != 0 || fleet != 0 || green != 0 || red != 0 {
				t.Fatalf("ring spec accepted dangling grid knobs: %+v", norm)
			}
			return
		}
		if norm.GridRows > maxGridDim || norm.GridCols > maxGridDim || norm.GridRows < 2 || norm.GridCols < 2 {
			t.Fatalf("grid %dx%d escaped the side caps", norm.GridRows, norm.GridCols)
		}
		if norm.BlockMeters <= 0 || norm.BlockMeters > 10000 {
			t.Fatalf("block length %v escaped its bounds", norm.BlockMeters)
		}
		cells := int(norm.BlockMeters/ca.CellLength + 0.5)
		if cells < ca.DefaultVMax+1 {
			cells = ca.DefaultVMax + 1
		}
		streets := norm.GridRows*(norm.GridCols-1) + norm.GridCols*(norm.GridRows-1)
		if norm.GridVehicles < 0 || norm.GridVehicles > streets*(cells/2) {
			t.Fatalf("fleet %d escaped the capacity rule", norm.GridVehicles)
		}
		if norm.Nodes != norm.GridVehicles+norm.rsuCount() {
			t.Fatalf("Nodes %d != fleet %d + RSU %d", norm.Nodes, norm.GridVehicles, norm.rsuCount())
		}
		if u := norm.Uplink; u != nil {
			if u.Row < 0 || u.Row >= norm.GridRows || u.Col < 0 || u.Col >= norm.GridCols {
				t.Fatalf("RSU intersection (%d,%d) escaped the grid", u.Row, u.Col)
			}
			if u.ExternalBase <= norm.GridVehicles || u.ExternalCount <= 0 || u.ExternalCount > 1<<20 {
				t.Fatalf("external range [%d,+%d) escaped its bounds", u.ExternalBase, u.ExternalCount)
			}
		}
		// A validated spec must survive a second normalization (idempotence)
		// and the density-preserving rescale round trip.
		if err := norm.Validate(); err != nil {
			t.Fatalf("normalized spec fails re-validation: %v", err)
		}
		if norm.GridVehicles > 0 {
			if _, err := norm.WithVehicles(norm.GridVehicles * 2); err != nil {
				// Doubling can legitimately overflow capacity or the block
				// cap; it must fail with an error, never panic.
				return
			}
		}
	})
}
