package scenario

import (
	"cavenet/internal/fault"
	"cavenet/internal/sim"
)

// The built-in scenario catalogue. Each entry is a first-class workload:
// listable and runnable from `cavenet scenario`, swept by Sweep, and
// property-tested under the invariant harness across every protocol and a
// bank of seeds by the scenario test suite.
//
// Expectations are floors that must hold for *every* protocol (and for
// the shrunk test-sized variants), so they are deliberately conservative;
// tighter per-protocol claims belong in experiments, not in the
// catalogue contract.
func init() {
	// 1. The paper's Table I baseline: a single-lane 3 km circuit, 30
	// vehicles, CBR from nodes 1–8 to node 0.
	MustRegister(Spec{
		Name:        "highway",
		Description: "paper baseline: single-lane 3 km circuit, 30 vehicles, CBR 1-8 to 0 (Table I)",
		Expect:      Expect{MinTotalPDR: 0.10, MinDelivered: 20},
	})

	// 2. Multi-lane highway with lane-change coupling: three parallel
	// lanes on concentric rings, vehicles overtaking through the symmetric
	// lane-change rule, cross-lane flows toward a lane-0 receiver.
	MustRegister(Spec{
		Name:         "multilane",
		Description:  "3-lane 3 km circuit with lane changes; cross-lane flows to a lane-0 receiver",
		Lanes:        3,
		LaneVehicles: []int{12, 12, 12},
		LaneChangeP:  0.3,
		Flows: []Flow{
			{Src: 6, Dst: 0}, {Src: 12, Dst: 0}, {Src: 18, Dst: 0},
			{Src: 24, Dst: 0}, {Src: 30, Dst: 0}, {Src: 35, Dst: 0},
		},
		Expect: Expect{MinDelivered: 10},
	})

	// 3. Signalized corridor: two traffic signals with offset phases chop
	// the ring into platoons — queues form at red, dissolve at green, and
	// connectivity oscillates with the cycle.
	MustRegister(Spec{
		Name:          "signalized",
		Description:   "2.25 km corridor with two offset traffic signals; platoon traffic, 24 vehicles",
		CircuitMeters: 2250,
		LaneVehicles:  []int{24},
		Signals: []SignalSpec{
			{Lane: 0, PositionMeters: 0, GreenSteps: 40, RedSteps: 20},
			{Lane: 0, PositionMeters: 1125, GreenSteps: 40, RedSteps: 20, OffsetSteps: 30},
		},
		Flows: []Flow{
			{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 0},
			{Src: 4, Dst: 0}, {Src: 5, Dst: 0}, {Src: 6, Dst: 0},
		},
		Expect: Expect{MinDelivered: 10},
	})

	// 4. Rush hour: a density ramp. 36 vehicles drive the circuit but join
	// the network staggered over the first 40 s, so the relay density the
	// flows see grows as the run progresses.
	MustRegister(Spec{
		Name:         "rushhour",
		Description:  "density ramp: 36 vehicles join the 3 km circuit over the first 40 s",
		LaneVehicles: []int{36},
		RampSeconds:  40,
		Expect:       Expect{MinDelivered: 5},
	})

	// 5. Bidirectional highway: two opposing-direction lanes; opposite-lane
	// vehicles both relay (Fig. 1-a) and interfere (Fig. 1-b), and flows
	// cross the median.
	MustRegister(Spec{
		Name:          "bidirectional",
		Description:   "two opposing lanes, 15+15 vehicles; flows cross the median",
		Lanes:         2,
		LaneVehicles:  []int{15, 15},
		Bidirectional: true,
		Flows: []Flow{
			{Src: 15, Dst: 0}, {Src: 16, Dst: 1}, {Src: 17, Dst: 2},
			{Src: 20, Dst: 5}, {Src: 3, Dst: 22}, {Src: 7, Dst: 25},
		},
		Expect: Expect{MinDelivered: 10},
	})

	// 6. Metro: the scale workload. 10,000 vehicles on four coupled lanes
	// of a 75 km orbital with two signalized crosspoints — a fleet whose
	// recorded trace would cost O(nodes × samples) memory before a single
	// packet moved; only the streaming mobility substrate runs it
	// comfortably. Heavy: property suites and default sweeps cover it
	// with targeted scaled runs, not the full 20-seed bank.
	MustRegister(Spec{
		Name:          "metro",
		Description:   "scale: 10k vehicles, 4 coupled lanes on a 75 km orbital, 2 signals (streaming mobility)",
		Lanes:         4,
		LaneVehicles:  []int{2500, 2500, 2500, 2500},
		CircuitMeters: 75000,
		LaneChangeP:   0.1,
		Signals: []SignalSpec{
			{Lane: 0, PositionMeters: 0, GreenSteps: 45, RedSteps: 25},
			{Lane: 1, PositionMeters: 37500, GreenSteps: 45, RedSteps: 25, OffsetSteps: 35},
		},
		SimTime: 30 * sim.Second,
		Heavy:   true,
		Expect:  Expect{MinDelivered: 5},
	})

	// 7. Sparse network: 10 vehicles on a 6 km circuit at 250 m radio
	// range — the network spends most of its time partitioned into
	// clusters that split and heal as vehicles bunch up. No delivery floor:
	// the point of the workload is exercising partitions, route errors and
	// discovery storms without violating conservation or looping.
	MustRegister(Spec{
		Name:          "sparse",
		Description:   "partition/healing: 10 vehicles on a 6 km circuit, mostly disconnected",
		CircuitMeters: 6000,
		LaneVehicles:  []int{10},
		Flows: []Flow{
			{Src: 1, Dst: 0, Rate: 2}, {Src: 4, Dst: 0, Rate: 2}, {Src: 7, Dst: 0, Rate: 2},
		},
		SimTime: 100 * sim.Second,
		Expect:  Expect{},
	})

	// 8. Churn: random node crash/recovery on the baseline circuit. Every
	// node power-cycles at ~1.5 outages/min with 4 s crashes (state loss),
	// so routes break mid-flow, MAC queues flush as "node:down" drops, and
	// recovered nodes rejoin cold. No metric floors: any node — including
	// every flow endpoint — can be down at any time; the workload's
	// contract is the conservation/custody invariants, not throughput.
	MustRegister(Spec{
		Name:         "churn",
		Description:  "fault churn: 25 vehicles, every node crash/recovers ~1.5x per min (4 s outages)",
		LaneVehicles: []int{25},
		SimTime:      60 * sim.Second,
		Faults: fault.Spec{
			ChurnRatePerMin: 1.5,
			ChurnDownSec:    4,
		},
		Expect: Expect{},
	})

	// 9. Blackout: a correlated mass failure — at t=10 s, 60% of the fleet
	// crashes simultaneously for 8 s, expiring whole neighborhoods of
	// routing state in one purge wave, then everyone recovers at once and
	// the network re-converges.
	MustRegister(Spec{
		Name:         "blackout",
		Description:  "fault blackout: 24 vehicles, 60% of the fleet crashes at t=10 s for 8 s",
		LaneVehicles: []int{24},
		SimTime:      50 * sim.Second,
		Faults: fault.Spec{
			BlackoutStartSec: 10,
			BlackoutDurSec:   8,
			BlackoutFraction: 0.6,
		},
		Expect: Expect{},
	})

	// 10. Flaky corridor: no node ever dies, but every link into the
	// receiver (node 0) runs at 35% random frame erasure plus 3 dB extra
	// attenuation for a 12 s window — the degraded-interface regime where
	// MAC retries, link-failure feedback and route repair do the work.
	MustRegister(Spec{
		Name:         "flaky-corridor",
		Description:  "fault impairment: links into the receiver lose 35% of frames (+3 dB) for 12 s",
		LaneVehicles: []int{20},
		SimTime:      50 * sim.Second,
		Faults: fault.Spec{
			Impairs: []fault.Impair{
				{A: 0, B: 1, StartSec: 4, DurSec: 12, Loss: 0.35, AttenDB: 3},
				{A: 0, B: 2, StartSec: 4, DurSec: 12, Loss: 0.35, AttenDB: 3},
				{A: 0, B: 3, StartSec: 4, DurSec: 12, Loss: 0.35, AttenDB: 3},
				{A: 0, B: 4, StartSec: 4, DurSec: 12, Loss: 0.35, AttenDB: 3},
				{A: 0, B: 5, StartSec: 4, DurSec: 12, Loss: 0.35, AttenDB: 3},
				{A: 0, B: 6, StartSec: 4, DurSec: 12, Loss: 0.35, AttenDB: 3},
			},
		},
		Expect: Expect{},
	})

	// 11. Manhattan: the urban workload. 48 vehicles on a 4×4 street grid
	// of one-way signalized blocks — turning at intersections, queueing at
	// red — with GPSR as the default protocol: position beacons suit a city
	// where topology churns at every corner. The 600 m extent keeps the
	// network 1–3 radio hops wide, so the floor holds for every protocol.
	MustRegister(Spec{
		Name:            "manhattan",
		Description:     "urban grid: 48 vehicles on a 4x4 signalized one-way street grid, GPSR default",
		GridRows:        4,
		GridCols:        4,
		GridVehicles:    48,
		GridSignalGreen: 25,
		GridSignalRed:   20,
		Protocol:        GPSR,
		Expect:          Expect{MinDelivered: 10},
	})

	// 12. Downtown: V2I infrastructure uplink. 40 vehicles on a 5×5 grid
	// send to external addresses (1000–1007) advertised by a roadside unit
	// at the central intersection via OLSR HNA — the paper's §II
	// car-to-hotspot workload — alongside ordinary V2V flows from disjoint
	// senders. Only OLSR completes the uplink; under the other protocols
	// the uplink flows drop explicitly (no route / no location), so the
	// catalogue promises invariants here, not delivery floors.
	MustRegister(Spec{
		Name:            "downtown",
		Description:     "V2I uplink: 40 vehicles on a 5x5 grid, RSU gateway advertises 1000-1007 via OLSR HNA",
		GridRows:        5,
		GridCols:        5,
		GridVehicles:    40,
		GridSignalGreen: 25,
		GridSignalRed:   20,
		Protocol:        OLSR,
		Uplink:          &Uplink{Row: 2, Col: 2, ExternalBase: 1000, ExternalCount: 8},
		Flows: []Flow{
			{Src: 1, Dst: 1000}, {Src: 5, Dst: 1001}, {Src: 9, Dst: 1002},
			{Src: 13, Dst: 1003}, {Src: 2, Dst: 0}, {Src: 6, Dst: 3},
		},
		Expect: Expect{},
	})
}
