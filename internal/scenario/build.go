package scenario

import (
	"fmt"
	"math"

	"cavenet/internal/ca"
	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
	"cavenet/internal/rng"
	"cavenet/internal/scenario/check"
)

// BuildRoad assembles the spec's cellular-automaton road: one ring lane
// per Lanes entry, placed on concentric circles LaneSpacingM apart, with
// signals installed and lane-change coupling enabled when requested.
func BuildRoad(s Spec) (*ca.Road, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return buildRoad(&s)
}

func buildRoad(s *Spec) (*ca.Road, error) {
	cells := int(math.Round(s.CircuitMeters / ca.CellLength))
	src := rng.NewSource(s.Seed)
	specs := make([]ca.LaneSpec, 0, s.Lanes)
	for li := 0; li < s.Lanes; li++ {
		var signals []ca.Signal
		for _, sig := range s.Signals {
			if sig.Lane != li {
				continue
			}
			signals = append(signals, ca.Signal{
				Site:       int(math.Round(sig.PositionMeters / ca.CellLength)),
				GreenSteps: sig.GreenSteps,
				RedSteps:   sig.RedSteps,
				Offset:     sig.OffsetSteps,
			})
		}
		placement := ca.EvenPlacement
		if s.RandomStart {
			placement = ca.RandomPlacement
		}
		specs = append(specs, ca.LaneSpec{
			Config: ca.Config{
				Length:    cells,
				Vehicles:  s.LaneVehicles[li],
				SlowdownP: s.SlowdownP,
				Boundary:  ca.RingBoundary,
				Placement: placement,
			},
			Placement: geometry.Ring{
				Center:        geometry.Vec2{X: s.CircuitMeters / 2, Y: s.CircuitMeters / 2},
				Circumference: s.CircuitMeters,
				RadialOffset:  float64(li) * s.LaneSpacingM,
			},
			Reversed: s.Bidirectional && li >= (s.Lanes+1)/2,
			Signals:  signals,
		})
	}
	road, err := ca.NewRoad(specs, src.Stream("ca"))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if s.LaneChangeP > 0 {
		if err := road.EnableLaneChanges(ca.LaneChange{P: s.LaneChangeP}, src.Stream("lanechange")); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	return road, nil
}

// BuildTrace generates the scenario's mobility input: the CA road warmed
// up and recorded for the scenario duration, with the activation-ramp
// staging applied for rush-hour specs.
func BuildTrace(s Spec) (*mobility.SampledTrace, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return buildTrace(&s, nil)
}

// BuildTraceChecked is BuildTrace under the CA-sanity and trace-sanity
// invariants: the road dynamics are validated at every step (collisions,
// teleports, flow capacity) and the finished trace is scanned for
// physically impossible jumps.
func BuildTraceChecked(s Spec, report *check.Report) (*mobility.SampledTrace, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return buildTrace(&s, report)
}

func buildTrace(s *Spec, report *check.Report) (*mobility.SampledTrace, error) {
	road, err := buildRoad(s)
	if err != nil {
		return nil, err
	}
	var after func()
	if report != nil {
		watcher := check.WatchRoad(road, report)
		after = watcher.AfterStep
	}
	mobility.WarmupRoadFunc(road, s.CAWarmup, after)
	steps := int(s.SimTime.Seconds()) + 1
	trace := mobility.RecordRoadFunc(road, steps, after)
	applyRamp(s, trace)
	if report != nil {
		check.Trace(trace, s.MaxSampleStepMeters(), s.activationSteps(), report)
	}
	return trace, nil
}

// applyRamp parks every node in an isolated staging spot until its
// activation step — the rush-hour density ramp. Staging spots are spaced
// beyond the carrier-sense range (2.2× the decode range, plus margin) of
// the road and of each other, so a staged vehicle is radio-dark until it
// merges, whatever radio range the spec configures.
func applyRamp(s *Spec, trace *mobility.SampledTrace) {
	act := s.activationSteps()
	if act == nil {
		return
	}
	spacing := 600.0
	if cs := s.RangeMeters * 2.2 * 1.05; cs > spacing {
		spacing = cs
	}
	for n, at := range act {
		if at <= 0 || n >= trace.NumNodes() {
			continue
		}
		staging := geometry.Vec2{X: -spacing * float64(n+1), Y: -spacing}
		samples := trace.Positions[n]
		for i := 0; i < at && i < len(samples); i++ {
			samples[i] = staging
		}
	}
}
