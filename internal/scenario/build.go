package scenario

import (
	"fmt"
	"math"

	"cavenet/internal/ca"
	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
	"cavenet/internal/rng"
	"cavenet/internal/scenario/check"
)

// BuildRoad assembles the spec's cellular-automaton road: one ring lane
// per Lanes entry, placed on concentric circles LaneSpacingM apart, with
// signals installed and lane-change coupling enabled when requested.
func BuildRoad(s Spec) (*ca.Road, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	if s.Urban() {
		return nil, fmt.Errorf("scenario %s: street-grid spec has no ring road; use BuildNetwork", s.Name)
	}
	return buildRoad(&s)
}

// BuildNetwork assembles the spec's urban road network: the Manhattan
// street grid laid down as a CA network of one-way signalized segments.
func BuildNetwork(s Spec) (*ca.Network, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	if !s.Urban() {
		return nil, fmt.Errorf("scenario %s: ring spec has no street grid; use BuildRoad", s.Name)
	}
	net, _, err := buildNetwork(&s)
	return net, err
}

func buildNetwork(s *Spec) (*ca.Network, *geometry.RoadGrid, error) {
	grid, err := geometry.Manhattan(s.GridRows, s.GridCols, s.BlockMeters, geometry.Vec2{})
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	src := rng.NewSource(s.Seed)
	net, err := ca.NewGridNetwork(grid, ca.GridNetworkConfig{
		Vehicles:    s.GridVehicles,
		SlowdownP:   s.SlowdownP,
		SignalGreen: s.GridSignalGreen,
		SignalRed:   s.GridSignalRed,
	}, src.Stream("ca"))
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return net, grid, nil
}

// rsuPositions reports the static node rows appended after the fleet: the
// uplink RSU parked curbside at its intersection. The (6, 6) m offset
// keeps the RSU off the exact intersection point a vehicle can occupy —
// zero radio distance is a propagation-model singularity, and a real
// roadside unit stands on the corner, not in the junction.
func (s *Spec) rsuPositions(grid *geometry.RoadGrid) []geometry.Vec2 {
	if s.Uplink == nil {
		return nil
	}
	p := grid.Intersections[grid.Intersection(s.Uplink.Row, s.Uplink.Col)]
	return []geometry.Vec2{{X: p.X + 6, Y: p.Y + 6}}
}

func buildRoad(s *Spec) (*ca.Road, error) {
	cells := int(math.Round(s.CircuitMeters / ca.CellLength))
	src := rng.NewSource(s.Seed)
	specs := make([]ca.LaneSpec, 0, s.Lanes)
	for li := 0; li < s.Lanes; li++ {
		var signals []ca.Signal
		for _, sig := range s.Signals {
			if sig.Lane != li {
				continue
			}
			signals = append(signals, ca.Signal{
				Site:       int(math.Round(sig.PositionMeters / ca.CellLength)),
				GreenSteps: sig.GreenSteps,
				RedSteps:   sig.RedSteps,
				Offset:     sig.OffsetSteps,
			})
		}
		placement := ca.EvenPlacement
		if s.RandomStart {
			placement = ca.RandomPlacement
		}
		specs = append(specs, ca.LaneSpec{
			Config: ca.Config{
				Length:    cells,
				Vehicles:  s.LaneVehicles[li],
				SlowdownP: s.SlowdownP,
				Boundary:  ca.RingBoundary,
				Placement: placement,
			},
			Placement: geometry.Ring{
				Center:        geometry.Vec2{X: s.CircuitMeters / 2, Y: s.CircuitMeters / 2},
				Circumference: s.CircuitMeters,
				RadialOffset:  float64(li) * s.LaneSpacingM,
			},
			Reversed: s.Bidirectional && li >= (s.Lanes+1)/2,
			Signals:  signals,
		})
	}
	road, err := ca.NewRoad(specs, src.Stream("ca"))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if s.LaneChangeP > 0 {
		if err := road.EnableLaneChanges(ca.LaneChange{P: s.LaneChangeP}, src.Stream("lanechange")); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	return road, nil
}

// BuildSource generates the scenario's mobility as a streaming source:
// the CA road warmed up, then stepping live (O(nodes) retained state) as
// the simulation pulls positions, with the activation-ramp staging
// applied as a per-sample overlay for rush-hour specs.
func BuildSource(s Spec) (mobility.Source, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return buildSource(&s, nil)
}

// BuildSourceChecked is BuildSource under the CA-sanity and trace-sanity
// invariants, consumed as the stream advances: the road dynamics are
// validated at every CA step (collisions, teleports, flow capacity) and
// every produced sample row is scanned for physically impossible jumps.
func BuildSourceChecked(s Spec, report *check.Report) (mobility.Source, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return buildSource(&s, report)
}

// BuildTrace generates the scenario's mobility input as a materialized
// trace: Record over BuildSource. It is the differential oracle for the
// streaming path — a run on the recording is bit-identical to a run on
// the source, which the streamed-vs-recorded property test asserts for
// the whole catalogue.
func BuildTrace(s Spec) (*mobility.SampledTrace, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return buildTrace(&s, nil)
}

// BuildTraceChecked is BuildTrace under the CA-sanity and trace-sanity
// invariants, applied while the trace is produced.
func BuildTraceChecked(s Spec, report *check.Report) (*mobility.SampledTrace, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return buildTrace(&s, report)
}

func buildTrace(s *Spec, report *check.Report) (*mobility.SampledTrace, error) {
	src, err := buildSource(s, report)
	if err != nil {
		return nil, err
	}
	return mobility.Record(src), nil
}

func buildSource(s *Spec, report *check.Report) (*mobility.Stream, error) {
	if s.Urban() {
		return buildUrbanSource(s, report)
	}
	road, err := buildRoad(s)
	if err != nil {
		return nil, err
	}
	var after func()
	var onSample func(int, []geometry.Vec2)
	if report != nil {
		watcher := check.WatchRoad(road, report)
		after = watcher.AfterStep
		onSample = check.WatchTrace(s.MaxSampleStepMeters(), s.activationSteps(), report).OnSample
	}
	mobility.WarmupRoadFunc(road, s.CAWarmup, after)
	steps := int(s.SimTime.Seconds()) + 1
	src, err := mobility.NewRoadSource(mobility.RoadSourceConfig{
		Road:      road,
		Steps:     steps,
		AfterStep: after,
		Overlay:   rampOverlay(s),
		OnSample:  onSample,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return src, nil
}

// buildUrbanSource streams the street-grid CA network as the mobility
// source, with the uplink RSU (if any) appended as a static row. Same
// identity contract as the ring path: vehicle i is sample column i for
// the whole run, then infrastructure rows.
func buildUrbanSource(s *Spec, report *check.Report) (*mobility.Stream, error) {
	net, grid, err := buildNetwork(s)
	if err != nil {
		return nil, err
	}
	var after func()
	var onSample func(int, []geometry.Vec2)
	if report != nil {
		watcher := check.WatchNetwork(net, report)
		after = watcher.AfterStep
		onSample = check.WatchTrace(s.MaxSampleStepMeters(), nil, report).OnSample
	}
	mobility.WarmupRoadFunc(net, s.CAWarmup, after)
	steps := int(s.SimTime.Seconds()) + 1
	src, err := mobility.NewRoadSource(mobility.RoadSourceConfig{
		Road:      net,
		Steps:     steps,
		Static:    s.rsuPositions(grid),
		AfterStep: after,
		OnSample:  onSample,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return src, nil
}

// rampOverlay parks every node in an isolated staging spot until its
// activation step — the rush-hour density ramp, applied per produced
// sample row instead of edited into a materialized trace. Staging spots
// are spaced beyond the carrier-sense range (2.2× the decode range, plus
// margin) of the road and of each other, so a staged vehicle is
// radio-dark until it merges, whatever radio range the spec configures.
// Nil without a ramp.
func rampOverlay(s *Spec) func(k int, row []geometry.Vec2) {
	act := s.activationSteps()
	if act == nil {
		return nil
	}
	spacing := 600.0
	if cs := s.RangeMeters * 2.2 * 1.05; cs > spacing {
		spacing = cs
	}
	return func(k int, row []geometry.Vec2) {
		for n, at := range act {
			if n >= len(row) {
				break
			}
			if k < at {
				row[n] = geometry.Vec2{X: -spacing * float64(n+1), Y: -spacing}
			}
		}
	}
}
