package scenario

import (
	"fmt"
	"math"

	"cavenet/internal/ca"
	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
	"cavenet/internal/rng"
	"cavenet/internal/scenario/check"
)

// BuildRoad assembles the spec's cellular-automaton road: one ring lane
// per Lanes entry, placed on concentric circles LaneSpacingM apart, with
// signals installed and lane-change coupling enabled when requested.
func BuildRoad(s Spec) (*ca.Road, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return buildRoad(&s)
}

func buildRoad(s *Spec) (*ca.Road, error) {
	cells := int(math.Round(s.CircuitMeters / ca.CellLength))
	src := rng.NewSource(s.Seed)
	specs := make([]ca.LaneSpec, 0, s.Lanes)
	for li := 0; li < s.Lanes; li++ {
		var signals []ca.Signal
		for _, sig := range s.Signals {
			if sig.Lane != li {
				continue
			}
			signals = append(signals, ca.Signal{
				Site:       int(math.Round(sig.PositionMeters / ca.CellLength)),
				GreenSteps: sig.GreenSteps,
				RedSteps:   sig.RedSteps,
				Offset:     sig.OffsetSteps,
			})
		}
		placement := ca.EvenPlacement
		if s.RandomStart {
			placement = ca.RandomPlacement
		}
		specs = append(specs, ca.LaneSpec{
			Config: ca.Config{
				Length:    cells,
				Vehicles:  s.LaneVehicles[li],
				SlowdownP: s.SlowdownP,
				Boundary:  ca.RingBoundary,
				Placement: placement,
			},
			Placement: geometry.Ring{
				Center:        geometry.Vec2{X: s.CircuitMeters / 2, Y: s.CircuitMeters / 2},
				Circumference: s.CircuitMeters,
				RadialOffset:  float64(li) * s.LaneSpacingM,
			},
			Reversed: s.Bidirectional && li >= (s.Lanes+1)/2,
			Signals:  signals,
		})
	}
	road, err := ca.NewRoad(specs, src.Stream("ca"))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if s.LaneChangeP > 0 {
		if err := road.EnableLaneChanges(ca.LaneChange{P: s.LaneChangeP}, src.Stream("lanechange")); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	return road, nil
}

// BuildSource generates the scenario's mobility as a streaming source:
// the CA road warmed up, then stepping live (O(nodes) retained state) as
// the simulation pulls positions, with the activation-ramp staging
// applied as a per-sample overlay for rush-hour specs.
func BuildSource(s Spec) (mobility.Source, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return buildSource(&s, nil)
}

// BuildSourceChecked is BuildSource under the CA-sanity and trace-sanity
// invariants, consumed as the stream advances: the road dynamics are
// validated at every CA step (collisions, teleports, flow capacity) and
// every produced sample row is scanned for physically impossible jumps.
func BuildSourceChecked(s Spec, report *check.Report) (mobility.Source, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return buildSource(&s, report)
}

// BuildTrace generates the scenario's mobility input as a materialized
// trace: Record over BuildSource. It is the differential oracle for the
// streaming path — a run on the recording is bit-identical to a run on
// the source, which the streamed-vs-recorded property test asserts for
// the whole catalogue.
func BuildTrace(s Spec) (*mobility.SampledTrace, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return buildTrace(&s, nil)
}

// BuildTraceChecked is BuildTrace under the CA-sanity and trace-sanity
// invariants, applied while the trace is produced.
func BuildTraceChecked(s Spec, report *check.Report) (*mobility.SampledTrace, error) {
	s = s.clone()
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return buildTrace(&s, report)
}

func buildTrace(s *Spec, report *check.Report) (*mobility.SampledTrace, error) {
	src, err := buildSource(s, report)
	if err != nil {
		return nil, err
	}
	return mobility.Record(src), nil
}

func buildSource(s *Spec, report *check.Report) (*mobility.Stream, error) {
	road, err := buildRoad(s)
	if err != nil {
		return nil, err
	}
	var after func()
	var onSample func(int, []geometry.Vec2)
	if report != nil {
		watcher := check.WatchRoad(road, report)
		after = watcher.AfterStep
		onSample = check.WatchTrace(s.MaxSampleStepMeters(), s.activationSteps(), report).OnSample
	}
	mobility.WarmupRoadFunc(road, s.CAWarmup, after)
	steps := int(s.SimTime.Seconds()) + 1
	src, err := mobility.NewRoadSource(mobility.RoadSourceConfig{
		Road:      road,
		Steps:     steps,
		AfterStep: after,
		Overlay:   rampOverlay(s),
		OnSample:  onSample,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return src, nil
}

// rampOverlay parks every node in an isolated staging spot until its
// activation step — the rush-hour density ramp, applied per produced
// sample row instead of edited into a materialized trace. Staging spots
// are spaced beyond the carrier-sense range (2.2× the decode range, plus
// margin) of the road and of each other, so a staged vehicle is
// radio-dark until it merges, whatever radio range the spec configures.
// Nil without a ramp.
func rampOverlay(s *Spec) func(k int, row []geometry.Vec2) {
	act := s.activationSteps()
	if act == nil {
		return nil
	}
	spacing := 600.0
	if cs := s.RangeMeters * 2.2 * 1.05; cs > spacing {
		spacing = cs
	}
	return func(k int, row []geometry.Vec2) {
		for n, at := range act {
			if n >= len(row) {
				break
			}
			if k < at {
				row[n] = geometry.Vec2{X: -spacing * float64(n+1), Y: -spacing}
			}
		}
	}
}
