package ca

import (
	"math/rand"
	"testing"
)

func TestSignalRedAt(t *testing.T) {
	s := Signal{Site: 10, GreenSteps: 3, RedSteps: 2}
	want := []bool{false, false, false, true, true, false, false, false, true, true}
	for step, red := range want {
		if s.RedAt(step) != red {
			t.Fatalf("step %d: RedAt = %v, want %v", step, s.RedAt(step), red)
		}
	}
	shifted := Signal{Site: 10, GreenSteps: 3, RedSteps: 2, Offset: 3}
	if !shifted.RedAt(0) {
		t.Fatal("offset 3 should start red")
	}
}

func TestAddSignalValidation(t *testing.T) {
	lane := newTestLane(t, Config{Length: 50, Vehicles: 5}, 1)
	for _, s := range []Signal{
		{Site: -1, GreenSteps: 1, RedSteps: 1},
		{Site: 50, GreenSteps: 1, RedSteps: 1},
		{Site: 5, GreenSteps: 0, RedSteps: 1},
		{Site: 5, GreenSteps: 1, RedSteps: 0},
	} {
		if err := lane.AddSignal(s); err == nil {
			t.Fatalf("signal %+v should be rejected", s)
		}
	}
	if err := lane.AddSignal(Signal{Site: 5, GreenSteps: 10, RedSteps: 10}); err != nil {
		t.Fatal(err)
	}
	if len(lane.Signals()) != 1 {
		t.Fatal("signal not installed")
	}
}

func TestRedSignalStopsVehicle(t *testing.T) {
	// A lone vehicle approaching a permanently-red-ish signal must stop
	// one cell before it and wait for green.
	lane := newTestLane(t, Config{Length: 100, Vehicles: 1}, 1)
	if err := lane.AddSignal(Signal{Site: 30, GreenSteps: 1, RedSteps: 1000, Offset: 1}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 50; s++ {
		lane.Step()
		invariantCheck(t, lane)
	}
	v := lane.Vehicle(0)
	if v.Pos != 29 {
		t.Fatalf("vehicle at %d, want stopped at 29 (one before the signal)", v.Pos)
	}
	if v.Vel != 0 {
		t.Fatalf("vehicle velocity %d at a red light", v.Vel)
	}
}

func TestGreenSignalReleasesQueue(t *testing.T) {
	lane := newTestLane(t, Config{Length: 100, Vehicles: 8, Placement: CompactPlacement}, 1)
	// Red for the first 40 steps, then green forever.
	if err := lane.AddSignal(Signal{Site: 30, GreenSteps: 100000, RedSteps: 40, Offset: 100000}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 40; s++ {
		lane.Step()
	}
	// During red a queue forms behind the signal.
	if lane.MeanVelocity() != 0 {
		t.Fatalf("queue still moving at end of red: v=%v", lane.MeanVelocity())
	}
	front := lane.Vehicle(lane.NumVehicles() - 1)
	if front.Pos != 29 {
		t.Fatalf("queue head at %d, want 29", front.Pos)
	}
	for s := 0; s < 60; s++ {
		lane.Step()
		invariantCheck(t, lane)
	}
	if lane.MeanVelocity() < 4 {
		t.Fatalf("queue not released after green: v=%v", lane.MeanVelocity())
	}
}

func TestSignalReducesFlow(t *testing.T) {
	// The crosspoint is the bottleneck (§III): a 50% duty-cycle signal must
	// cut the measured flow substantially at mid density.
	run := func(withSignal bool) float64 {
		lane, err := NewLane(Config{Length: 200, Vehicles: 30, SlowdownP: 0.1, Placement: RandomPlacement},
			rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		if withSignal {
			if err := lane.AddSignal(Signal{Site: 100, GreenSteps: 20, RedSteps: 20}); err != nil {
				t.Fatal(err)
			}
		}
		return FundamentalPoint(lane, 200, 400)
	}
	free := run(false)
	signaled := run(true)
	if signaled >= free*0.85 {
		t.Fatalf("signal should throttle flow: %v vs %v", signaled, free)
	}
}

func TestSignalOnOpenLane(t *testing.T) {
	lane, err := NewLane(Config{Length: 60, Vehicles: 1, Boundary: OpenBoundary}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := lane.AddSignal(Signal{Site: 30, GreenSteps: 1, RedSteps: 10000, Offset: 1}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 30; s++ {
		lane.Step()
	}
	if got := lane.Vehicle(0).Pos; got != 29 {
		t.Fatalf("open-lane vehicle at %d, want 29", got)
	}
}

func TestVehicleOnSignalSiteMayLeave(t *testing.T) {
	// A vehicle already on the site when the light turns red is not
	// trapped.
	lane, err := NewLane(Config{Length: 60, Vehicles: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Place the vehicle exactly on the signal site.
	lane.vehicles[0].Pos = 30
	lane.cells = make([]int, 60)
	for i := range lane.cells {
		lane.cells[i] = -1
	}
	lane.cells[30] = 0
	if err := lane.AddSignal(Signal{Site: 30, GreenSteps: 1, RedSteps: 10000, Offset: 1}); err != nil {
		t.Fatal(err)
	}
	lane.Step()
	if lane.Vehicle(0).Pos == 30 {
		t.Fatal("vehicle stuck on the signal site")
	}
}
