package ca

import (
	"fmt"
	"math/rand"

	"cavenet/internal/geometry"
)

// SegmentSpec describes one directed street of a road network: a NaS lane
// of Length sites whose exit feeds the Next segments across an
// intersection.
type SegmentSpec struct {
	// Length is the number of sites; must be at least VMax+1 so a vehicle
	// crossing an intersection always lands inside the successor.
	Length int
	// Placement maps the along-segment coordinate (meters, site·CellLength)
	// to the plane. Successive segments must join continuously at their
	// shared intersection (Place(Length·CellLength) of this segment equals
	// Place(0) of every successor) so sampled motion never teleports.
	Placement geometry.LanePlacement
	// Next lists the successor segments a vehicle may turn into; must be
	// non-empty (the grid generator guarantees strong connectivity).
	Next []int
	// ExitSignal, when non-nil, gates the segment's exit: while red no
	// vehicle may cross the intersection (the stop line is the last site).
	// Only the cycle fields are used; Site is implicitly Length-1.
	ExitSignal *Signal
}

// NetworkConfig parameterizes a road network.
type NetworkConfig struct {
	Segments []SegmentSpec
	// Vehicles is the total car count, spread across segments
	// proportionally to their length at construction.
	Vehicles int
	// VMax is the speed limit in sites per step; DefaultVMax if zero.
	VMax int
	// SlowdownP is the NaS randomization probability of rule 2'.
	SlowdownP float64
	// InitialVel is the velocity assigned to every vehicle at t=0.
	InitialVel int
}

// NetVehicle is the public vehicle record of a road network. The ID is
// the persistent road-global identity, assigned once at construction and
// stable across segment hops — the network analogue of the coupled-road
// identity contract that keeps recorded traces teleport-free.
type NetVehicle struct {
	ID  int
	Seg int // current segment
	Pos int // site within the segment, in [0, Length)
	Vel int // sites per step; always equals the last step's displacement
	// Next is the successor segment the vehicle will turn into at the end
	// of Seg, drawn from the vehicle's own forked RNG stream on entry.
	Next int
}

type netSegment struct {
	spec  SegmentSpec
	cells []int // global vehicle index occupying each site, or -1
	vehs  []int // global vehicle indices, ascending by Pos
}

// Network is a set of NaS segments joined at intersections — the urban
// generalization of Road: instead of independent closed rings, traffic
// flows through a directed street graph with per-vehicle turning
// decisions. The system is closed (no vehicle enters or leaves), updates
// are synchronous from the time-n state, and only a segment's leader can
// cross an intersection in a given step (followers are gap-limited by the
// leader's time-n position), so displacement always equals velocity along
// the vehicle's path.
type Network struct {
	cfg  NetworkConfig
	segs []netSegment
	vs   []NetVehicle
	// rnds holds one RNG stream per vehicle, forked from the construction
	// stream: turning and slowdown draws are per-vehicle, so a vehicle's
	// randomness is independent of everyone else's trajectory.
	rnds []*rand.Rand
	step int
}

func (c *NetworkConfig) normalize() error {
	if len(c.Segments) == 0 {
		return fmt.Errorf("ca: network needs at least one segment")
	}
	if c.VMax == 0 {
		c.VMax = DefaultVMax
	}
	if c.VMax < 0 {
		return fmt.Errorf("ca: vmax %d must be non-negative", c.VMax)
	}
	if c.SlowdownP < 0 || c.SlowdownP > 1 {
		return fmt.Errorf("ca: slowdown probability %v outside [0,1]", c.SlowdownP)
	}
	if c.InitialVel < 0 || c.InitialVel > c.VMax {
		return fmt.Errorf("ca: initial velocity %d outside [0,%d]", c.InitialVel, c.VMax)
	}
	capacity := 0
	for i, s := range c.Segments {
		if s.Length < c.VMax+1 {
			return fmt.Errorf("ca: segment %d length %d below vmax+1 = %d", i, s.Length, c.VMax+1)
		}
		if s.Placement == nil {
			return fmt.Errorf("ca: segment %d has no placement", i)
		}
		if len(s.Next) == 0 {
			return fmt.Errorf("ca: segment %d has no successor", i)
		}
		for _, nx := range s.Next {
			if nx < 0 || nx >= len(c.Segments) {
				return fmt.Errorf("ca: segment %d successor %d out of range", i, nx)
			}
		}
		if sig := s.ExitSignal; sig != nil {
			if sig.GreenSteps <= 0 || sig.RedSteps <= 0 {
				return fmt.Errorf("ca: segment %d signal cycle must have positive green (%d) and red (%d)",
					i, sig.GreenSteps, sig.RedSteps)
			}
		}
		capacity += s.Length / 2
	}
	// Half-full segments keep traffic flowing and guarantee the largest-
	// remainder apportionment below can always place every vehicle.
	if c.Vehicles < 0 || c.Vehicles > capacity {
		return fmt.Errorf("ca: %d vehicles exceed the network's half-occupancy capacity %d", c.Vehicles, capacity)
	}
	return nil
}

// NewNetwork builds a road network. rnd seeds the per-vehicle RNG streams
// and may be nil only when the model is fully deterministic (SlowdownP ==
// 0 and every segment has exactly one successor).
func NewNetwork(cfg NetworkConfig, rnd *rand.Rand) (*Network, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	needsRand := cfg.SlowdownP > 0
	for _, s := range cfg.Segments {
		if len(s.Next) > 1 {
			needsRand = true
		}
	}
	if rnd == nil && needsRand {
		return nil, fmt.Errorf("ca: network config requires randomness but rnd is nil")
	}
	n := &Network{cfg: cfg}
	n.segs = make([]netSegment, len(cfg.Segments))
	total := 0
	for i, spec := range cfg.Segments {
		n.segs[i].spec = spec
		n.segs[i].cells = make([]int, spec.Length)
		for j := range n.segs[i].cells {
			n.segs[i].cells[j] = -1
		}
		total += spec.Length
	}
	// Spread vehicles across segments proportionally to length (largest
	// remainder), then evenly within each segment; global IDs follow
	// segment order, then position order — assigned once, here.
	counts := apportion(cfg.Vehicles, cfg.Segments, total)
	n.vs = make([]NetVehicle, 0, cfg.Vehicles)
	n.rnds = make([]*rand.Rand, 0, cfg.Vehicles)
	for si := range n.segs {
		seg := &n.segs[si]
		cnt := counts[si]
		for k := 0; k < cnt; k++ {
			id := len(n.vs)
			var vr *rand.Rand
			if rnd != nil {
				vr = rand.New(rand.NewSource(rnd.Int63()))
			}
			pos := k * seg.spec.Length / cnt
			v := NetVehicle{ID: id, Seg: si, Pos: pos, Vel: cfg.InitialVel}
			v.Next = pickTurn(seg.spec.Next, vr)
			n.vs = append(n.vs, v)
			n.rnds = append(n.rnds, vr)
			seg.vehs = append(seg.vehs, id)
			seg.cells[pos] = id
		}
	}
	return n, nil
}

// apportion splits total vehicles over the segments proportionally to
// length with largest-remainder rounding, capping each segment at half
// its sites so initial placement leaves room to move.
func apportion(vehicles int, segs []SegmentSpec, totalSites int) []int {
	counts := make([]int, len(segs))
	if vehicles == 0 {
		return counts
	}
	rem := make([]float64, len(segs))
	assigned := 0
	for i, s := range segs {
		exact := float64(vehicles) * float64(s.Length) / float64(totalSites)
		counts[i] = int(exact)
		if half := s.Length / 2; counts[i] > half {
			counts[i] = half
		}
		rem[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < vehicles {
		best := -1
		for i := range segs {
			if counts[i] >= segs[i].Length/2 {
				continue
			}
			if best < 0 || rem[i] > rem[best] {
				best = i
			}
		}
		if best < 0 {
			break // cannot happen: normalize capped vehicles at Σ Length/2
		}
		counts[best]++
		rem[best]--
		assigned++
	}
	return counts
}

func pickTurn(next []int, rnd *rand.Rand) int {
	if len(next) == 1 {
		return next[0]
	}
	return next[rnd.Intn(len(next))]
}

// NumSegments reports the segment count.
func (n *Network) NumSegments() int { return len(n.segs) }

// SegmentLen reports the site count of segment s.
func (n *Network) SegmentLen(s int) int { return n.segs[s].spec.Length }

// SegmentVehicles reports how many vehicles currently occupy segment s.
func (n *Network) SegmentVehicles(s int) int { return len(n.segs[s].vehs) }

// Successors returns the successor list of segment s (shared; callers
// must not mutate).
func (n *Network) Successors(s int) []int { return n.segs[s].spec.Next }

// VMax reports the network speed limit in sites per step.
func (n *Network) VMax() int { return n.cfg.VMax }

// StepCount reports how many steps have been executed.
func (n *Network) StepCount() int { return n.step }

// TotalVehicles reports the vehicle count (constant: the network is a
// closed system).
func (n *Network) TotalVehicles() int { return len(n.vs) }

// Vehicle returns a copy of the vehicle with global ID i.
func (n *Network) Vehicle(i int) NetVehicle { return n.vs[i] }

// MeanVelocity reports the mean velocity across all vehicles, in sites
// per step.
func (n *Network) MeanVelocity() float64 {
	if len(n.vs) == 0 {
		return 0
	}
	sum := 0
	for i := range n.vs {
		sum += n.vs[i].Vel
	}
	return float64(sum) / float64(len(n.vs))
}

// exitOpen reports whether segment s may release its leader across the
// intersection this step.
func (n *Network) exitOpen(s int) bool {
	sig := n.segs[s].spec.ExitSignal
	return sig == nil || !sig.RedAt(n.step)
}

// gap computes the time-n gap of the vehicle at index k of segment s's
// position-sorted list: empty sites ahead within the segment and — for
// the leader, when the exit is open — continuing into the head of the
// vehicle's chosen successor segment.
func (n *Network) gap(s, k int) int {
	seg := &n.segs[s]
	v := &n.vs[seg.vehs[k]]
	if k+1 < len(seg.vehs) {
		return n.vs[seg.vehs[k+1]].Pos - v.Pos - 1
	}
	// Leader: free road to the segment end...
	g := seg.spec.Length - 1 - v.Pos
	if !n.exitOpen(s) || g >= n.cfg.VMax {
		return g
	}
	// ...and, while the light is green, into the successor until its first
	// occupied site (time-n occupancy; residents only move forward, so the
	// sites counted free here stay free of them).
	succ := &n.segs[v.Next]
	for e := 0; g < n.cfg.VMax && e < len(succ.cells); e++ {
		if succ.cells[e] >= 0 {
			break
		}
		g++
	}
	return g
}

// Step advances the network by one time step: the NaS velocity rules from
// the time-n state, then motion with intersection transfer. Merge
// conflicts (two streets releasing their leaders into the same successor
// sites) are resolved in segment-index order; a losing leader is clamped
// to the end of its own segment with its velocity set to the realized
// displacement, preserving the displacement-equals-velocity invariant.
func (n *Network) Step() {
	vmax := n.cfg.VMax
	// Phase 1: velocity update (rules 1, 2, 2') for every vehicle from the
	// time-n state.
	for s := range n.segs {
		seg := &n.segs[s]
		for k, id := range seg.vehs {
			v := &n.vs[id]
			nv := v.Vel + 1
			if nv > vmax {
				nv = vmax
			}
			if g := n.gap(s, k); nv > g {
				nv = g
			}
			if n.cfg.SlowdownP > 0 && nv > 0 && n.rnds[id].Float64() < n.cfg.SlowdownP {
				nv--
			}
			v.Vel = nv
		}
	}
	// Phase 2: motion. Intra-segment moves first; they cannot conflict
	// (parallel NaS update with gap-limited velocities).
	type crossing struct{ id, from int }
	var crossers []crossing
	for s := range n.segs {
		seg := &n.segs[s]
		for i := range seg.cells {
			seg.cells[i] = -1
		}
		kept := seg.vehs[:0]
		for _, id := range seg.vehs {
			v := &n.vs[id]
			p := v.Pos + v.Vel
			if p >= seg.spec.Length {
				crossers = append(crossers, crossing{id: id, from: s})
				continue
			}
			v.Pos = p
			seg.cells[p] = id
			kept = append(kept, id)
		}
		seg.vehs = kept
	}
	// Intersection transfer in segment-index order (at most one crosser
	// per segment — only the leader can reach the boundary).
	for _, c := range crossers {
		v := &n.vs[c.id]
		from := &n.segs[c.from]
		dest := &n.segs[v.Next]
		e := v.Pos + v.Vel - from.spec.Length
		// The gap scan proved sites 0..e free of residents; earlier
		// crossers may have claimed some, so fall back toward the
		// intersection.
		for e >= 0 && dest.cells[e] >= 0 {
			e--
		}
		if e < 0 {
			// Merge lost outright: stay on the home stretch. The segment
			// end is free — the crosser was the leader and its followers
			// were gap-limited behind its time-n position.
			p := from.spec.Length - 1
			v.Vel = p - v.Pos
			v.Pos = p
			from.cells[p] = c.id
			from.vehs = append(from.vehs, c.id)
			continue
		}
		v.Vel = from.spec.Length - v.Pos + e
		v.Pos = e
		v.Seg = v.Next
		dest.cells[e] = c.id
		dest.vehs = append(dest.vehs, c.id)
		// Entering a new street: draw the next turn from the vehicle's own
		// stream.
		v.Next = pickTurn(dest.spec.Next, n.rnds[c.id])
	}
	// Restore per-segment position order; entries landed at the head and
	// the lists are nearly sorted, so insertion sort is cheap.
	for s := range n.segs {
		vehs := n.segs[s].vehs
		for i := 1; i < len(vehs); i++ {
			for j := i; j > 0 && n.vs[vehs[j-1]].Pos > n.vs[vehs[j]].Pos; j-- {
				vehs[j-1], vehs[j] = vehs[j], vehs[j-1]
			}
		}
	}
	n.step++
}

// Positions appends the absolute plane position of every vehicle, in
// persistent global-ID order, to dst — the same identity contract as
// Road.Positions: index i is always the same physical vehicle, no matter
// how many intersections it has crossed.
func (n *Network) Positions(dst []geometry.Vec2) []geometry.Vec2 {
	for i := range n.vs {
		v := &n.vs[i]
		x := float64(v.Pos) * CellLength
		dst = append(dst, n.segs[v.Seg].spec.Placement.Place(x))
	}
	return dst
}

// GridNetworkConfig parameterizes NewGridNetwork.
type GridNetworkConfig struct {
	Vehicles   int
	VMax       int // DefaultVMax if zero
	SlowdownP  float64
	InitialVel int
	// SignalGreen/SignalRed, when both positive, install an exit signal on
	// every street: horizontal streets start green (offset 0), vertical
	// streets start red (offset SignalGreen), so crossing directions
	// alternate like coordinated city lights.
	SignalGreen, SignalRed int
}

// NewGridNetwork lays a Manhattan road grid (geometry.Manhattan) down as
// a CA network: every street becomes one segment whose placement maps the
// CA coordinate linearly onto the street's endpoints, so consecutive
// segments join exactly at their shared intersection and sampled motion
// stays plane-continuous across turns.
func NewGridNetwork(grid *geometry.RoadGrid, cfg GridNetworkConfig, rnd *rand.Rand) (*Network, error) {
	vmax := cfg.VMax
	if vmax == 0 {
		vmax = DefaultVMax
	}
	cells := int(grid.BlockMeters/CellLength + 0.5)
	if cells < vmax+1 {
		cells = vmax + 1
	}
	specs := make([]SegmentSpec, len(grid.Segments))
	for i, gs := range grid.Segments {
		specs[i] = SegmentSpec{
			Length:    cells,
			Placement: segmentLine(gs, cells),
			Next:      grid.Outgoing[gs.To],
		}
		if cfg.SignalGreen > 0 && cfg.SignalRed > 0 {
			sig := &Signal{GreenSteps: cfg.SignalGreen, RedSteps: cfg.SignalRed}
			if gs.A.X == gs.B.X {
				sig.Offset = cfg.SignalGreen // vertical street: phase-shifted
			}
			specs[i].ExitSignal = sig
		}
	}
	return NewNetwork(NetworkConfig{
		Segments:   specs,
		Vehicles:   cfg.Vehicles,
		VMax:       vmax,
		SlowdownP:  cfg.SlowdownP,
		InitialVel: cfg.InitialVel,
	}, rnd)
}

// segmentLine maps CA coordinate x ∈ [0, cells·CellLength] linearly onto
// the street from A to B, so site `cells` lands exactly on the To
// intersection regardless of rounding between block meters and sites.
func segmentLine(gs geometry.GridSegment, cells int) geometry.LanePlacement {
	d := gs.B.Sub(gs.A)
	scale := 1.0 / (float64(cells) * CellLength)
	return geometry.Line{Transform: geometry.Affine{
		A: d.X * scale, C: gs.A.X,
		D: d.Y * scale, F: gs.A.Y,
	}}
}
