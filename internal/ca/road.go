package ca

import (
	"fmt"
	"math/rand"

	"cavenet/internal/geometry"
)

// LaneSpec describes one lane of a road: its CA configuration plus its
// placement in the plane (§III-D lane construction).
type LaneSpec struct {
	Config    Config
	Placement geometry.LanePlacement
	// Reversed runs traffic in the decreasing-coordinate direction, used
	// for opposite-direction lanes (Fig. 1's interference discussion).
	Reversed bool
	// Signals are installed on the lane at construction (see Lane.AddSignal).
	Signals []Signal
}

// Road is a set of lanes simulated side by side. Lanes are independent NaS
// automata unless lane-change coupling is enabled (EnableLaneChanges); the
// road exists so that connectivity and interference across lanes can be
// analyzed and so that multi-lane traces can be exported.
type Road struct {
	lanes     []*Lane
	specs     []LaneSpec
	stepCount int

	// Lane-change coupling state (nil/false when disabled).
	coupled bool
	lc      LaneChange
	lcRnd   *rand.Rand
}

// NewRoad builds a road from lane specs. Each lane receives its own RNG
// stream split from rnd so per-lane randomness is independent.
func NewRoad(specs []LaneSpec, rnd *rand.Rand) (*Road, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("ca: road needs at least one lane")
	}
	r := &Road{specs: make([]LaneSpec, len(specs))}
	copy(r.specs, specs)
	for i, spec := range specs {
		var laneRnd *rand.Rand
		if rnd != nil {
			laneRnd = rand.New(rand.NewSource(rnd.Int63()))
		}
		lane, err := NewLane(spec.Config, laneRnd)
		if err != nil {
			return nil, fmt.Errorf("ca: lane %d: %w", i, err)
		}
		for _, sig := range spec.Signals {
			if err := lane.AddSignal(sig); err != nil {
				return nil, fmt.Errorf("ca: lane %d: %w", i, err)
			}
		}
		r.lanes = append(r.lanes, lane)
	}
	return r, nil
}

// NumLanes reports the number of lanes.
func (r *Road) NumLanes() int { return len(r.lanes) }

// Lane returns the i-th lane.
func (r *Road) Lane(i int) *Lane { return r.lanes[i] }

// Spec returns the i-th lane spec.
func (r *Road) Spec(i int) LaneSpec { return r.specs[i] }

// Step advances every lane by one time step. With lane-change coupling
// enabled, sideways moves are applied (from the time-n state, in parallel)
// before the per-lane NaS rules.
func (r *Road) Step() {
	if r.coupled {
		r.applyLaneChanges()
	}
	for _, l := range r.lanes {
		l.Step()
	}
	r.stepCount++
}

// StepCount reports how many steps have been executed.
func (r *Road) StepCount() int { return r.stepCount }

// TotalVehicles reports the vehicle count across all lanes.
func (r *Road) TotalVehicles() int {
	n := 0
	for _, l := range r.lanes {
		n += l.NumVehicles()
	}
	return n
}

// VehicleGlobalID maps (lane, vehicle) to a road-wide vehicle index:
// vehicles of lane 0 first, then lane 1, and so on. For a lane-change
// coupled road the mapping is only valid at construction time — vehicles
// migrate between lanes afterwards; use Vehicle.ID, which EnableLaneChanges
// makes globally unique and persistent.
func (r *Road) VehicleGlobalID(lane, vehicle int) int {
	id := 0
	for i := 0; i < lane; i++ {
		id += r.lanes[i].NumVehicles()
	}
	return id + vehicle
}

// Positions appends the absolute plane position of every vehicle on the
// road, in global-ID order, to dst.
//
// The global ID is the *persistent vehicle identity* — lane 0's vehicles
// in their initial-position order, then lane 1's, and so on (Vehicle.ID
// plus the lane's offset; on a coupled road Vehicle.ID is already global).
// Indexing by the lanes' position-sorted slices instead would silently
// reassign identities every time a wrap-around rotates a lane's vehicle
// order — every recorded node would teleport to its neighbor's position
// mid-trace, which is exactly the violation the scenario invariant
// harness caught.
func (r *Road) Positions(dst []geometry.Vec2) []geometry.Vec2 {
	base := len(dst)
	for i := 0; i < r.TotalVehicles(); i++ {
		dst = append(dst, geometry.Vec2{})
	}
	laneBase := 0
	for li, l := range r.lanes {
		spec := r.specs[li]
		circuit := float64(l.Len()) * CellLength
		for vi := 0; vi < l.NumVehicles(); vi++ {
			v := l.Vehicle(vi)
			x := float64(v.Pos) * CellLength
			if spec.Reversed {
				x = circuit - x
			}
			id := v.ID
			if !r.coupled {
				id += laneBase
			}
			dst[base+id] = spec.Placement.Place(x)
		}
		if !r.coupled {
			laneBase += l.NumVehicles()
		}
	}
	return dst
}

// MeanVelocity reports the vehicle-weighted mean velocity across lanes, in
// sites per step.
func (r *Road) MeanVelocity() float64 {
	sum := 0.0
	n := 0
	for _, l := range r.lanes {
		sum += l.MeanVelocity() * float64(l.NumVehicles())
		n += l.NumVehicles()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
