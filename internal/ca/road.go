package ca

import (
	"fmt"
	"math/rand"

	"cavenet/internal/geometry"
)

// LaneSpec describes one lane of a road: its CA configuration plus its
// placement in the plane (§III-D lane construction).
type LaneSpec struct {
	Config    Config
	Placement geometry.LanePlacement
	// Reversed runs traffic in the decreasing-coordinate direction, used
	// for opposite-direction lanes (Fig. 1's interference discussion).
	Reversed bool
}

// Road is a set of lanes simulated side by side. Lanes are independent NaS
// automata (the paper models no lane changing); the road exists so that
// connectivity and interference across lanes can be analyzed and so that
// multi-lane traces can be exported.
type Road struct {
	lanes     []*Lane
	specs     []LaneSpec
	stepCount int
}

// NewRoad builds a road from lane specs. Each lane receives its own RNG
// stream split from rnd so per-lane randomness is independent.
func NewRoad(specs []LaneSpec, rnd *rand.Rand) (*Road, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("ca: road needs at least one lane")
	}
	r := &Road{specs: make([]LaneSpec, len(specs))}
	copy(r.specs, specs)
	for i, spec := range specs {
		var laneRnd *rand.Rand
		if rnd != nil {
			laneRnd = rand.New(rand.NewSource(rnd.Int63()))
		}
		lane, err := NewLane(spec.Config, laneRnd)
		if err != nil {
			return nil, fmt.Errorf("ca: lane %d: %w", i, err)
		}
		r.lanes = append(r.lanes, lane)
	}
	return r, nil
}

// NumLanes reports the number of lanes.
func (r *Road) NumLanes() int { return len(r.lanes) }

// Lane returns the i-th lane.
func (r *Road) Lane(i int) *Lane { return r.lanes[i] }

// Spec returns the i-th lane spec.
func (r *Road) Spec(i int) LaneSpec { return r.specs[i] }

// Step advances every lane by one time step.
func (r *Road) Step() {
	for _, l := range r.lanes {
		l.Step()
	}
	r.stepCount++
}

// StepCount reports how many steps have been executed.
func (r *Road) StepCount() int { return r.stepCount }

// TotalVehicles reports the vehicle count across all lanes.
func (r *Road) TotalVehicles() int {
	n := 0
	for _, l := range r.lanes {
		n += l.NumVehicles()
	}
	return n
}

// VehicleGlobalID maps (lane, vehicle) to a road-wide vehicle index:
// vehicles of lane 0 first, then lane 1, and so on.
func (r *Road) VehicleGlobalID(lane, vehicle int) int {
	id := 0
	for i := 0; i < lane; i++ {
		id += r.lanes[i].NumVehicles()
	}
	return id + vehicle
}

// Positions appends the absolute plane position of every vehicle on the
// road, in global-ID order, to dst.
func (r *Road) Positions(dst []geometry.Vec2) []geometry.Vec2 {
	for li, l := range r.lanes {
		spec := r.specs[li]
		circuit := float64(l.Len()) * CellLength
		for vi := 0; vi < l.NumVehicles(); vi++ {
			x := float64(l.Vehicle(vi).Pos) * CellLength
			if spec.Reversed {
				x = circuit - x
			}
			dst = append(dst, spec.Placement.Place(x))
		}
	}
	return dst
}

// MeanVelocity reports the vehicle-weighted mean velocity across lanes, in
// sites per step.
func (r *Road) MeanVelocity() float64 {
	sum := 0.0
	n := 0
	for _, l := range r.lanes {
		sum += l.MeanVelocity() * float64(l.NumVehicles())
		n += l.NumVehicles()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
