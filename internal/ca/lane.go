// Package ca implements the 1-dimensional Nagel–Schreckenberg (NaS)
// cellular-automaton traffic model that is the core of CAVENET's
// Behavioural Analyzer block (§III-A of the paper).
//
// Time advances in discrete steps Δt. A lane is a vector of L sites; each
// site is either empty or holds one vehicle with an integer velocity in
// [0, vmax]. At every step the three NaS rules are applied in parallel to
// all vehicles:
//
//  1. acceleration:  v ← min(v+1, vmax)
//  2. slowing down:  v ← min(v, gap)      (gap = empty sites ahead)
//     2'. randomization: v ← max(v-1, 0)      with probability p (stochastic)
//  3. motion:        x ← x + v
//
// With the paper's calibration vmax = 135 km/h and Δt = 1 s, one site is
// s = 7.5 m, so vmax = 5 sites/step.
package ca

import (
	"fmt"
	"math/rand"
)

// Paper calibration constants (§III-A).
const (
	// CellLength is the physical length of one site in meters.
	CellLength = 7.5
	// DefaultVMax is 135 km/h expressed in sites per step (37.5 m/s ÷ 7.5 m).
	DefaultVMax = 5
	// StepSeconds is the duration Δt of one CA step in seconds.
	StepSeconds = 1.0
)

// Boundary selects how the lane ends are handled.
type Boundary int

const (
	// RingBoundary wraps position L back to 0 — the paper's improved
	// "circuit" movement pattern, giving a closed system with constant
	// density and no communication gap between head and tail.
	RingBoundary Boundary = iota + 1
	// OpenBoundary is the first-version "straight line": a vehicle leaving
	// the right end is teleported to the leftmost free site. The paper
	// reports this causes a delay and breaks head/tail communication, which
	// motivated the circuit improvement.
	OpenBoundary
)

// String implements fmt.Stringer.
func (b Boundary) String() string {
	switch b {
	case RingBoundary:
		return "ring"
	case OpenBoundary:
		return "open"
	default:
		return fmt.Sprintf("Boundary(%d)", int(b))
	}
}

// Vehicle is the per-vehicle data structure VE_i of §III-C: it stores the
// gap, the velocity and the current lane position. Laps counts completed
// wrap-arounds so trace generation can reconstruct the unbounded coordinate
// (the paper: "for closed boundaries ... we check if a shift has taken
// place").
type Vehicle struct {
	// ID is a stable identifier, assigned in initial-position order.
	ID int
	// Pos is the current site index in [0, L).
	Pos int
	// Vel is the current velocity in sites per step.
	Vel int
	// Gap is the number of empty sites to the vehicle ahead, refreshed each
	// step before the rules are applied.
	Gap int
	// Laps counts completed traversals of the lane (ring boundary), or
	// teleports (open boundary).
	Laps int
}

// Config parameterizes a lane.
type Config struct {
	// Length is the number of sites L. Must be positive.
	Length int
	// Vehicles is the number of cars N placed on the lane. Must satisfy
	// 0 <= N <= L.
	Vehicles int
	// VMax is the speed limit in sites per step; DefaultVMax if zero.
	VMax int
	// SlowdownP is the randomization probability p of rule 2'. Zero gives
	// the deterministic model.
	SlowdownP float64
	// Boundary defaults to RingBoundary (the improved CAVENET).
	Boundary Boundary
	// Placement selects the initial arrangement; defaults to EvenPlacement.
	Placement Placement
	// InitialVel is the velocity assigned to every vehicle at t=0.
	InitialVel int
}

// Placement selects the initial vehicle arrangement.
type Placement int

const (
	// EvenPlacement spreads vehicles uniformly around the lane.
	EvenPlacement Placement = iota + 1
	// RandomPlacement samples distinct sites uniformly at random.
	RandomPlacement
	// CompactPlacement packs all vehicles into consecutive sites starting at
	// 0 — the worst-case jam used to probe transient behaviour.
	CompactPlacement
)

func (c *Config) normalize() error {
	if c.Length <= 0 {
		return fmt.Errorf("ca: lane length %d must be positive", c.Length)
	}
	if c.Vehicles < 0 || c.Vehicles > c.Length {
		return fmt.Errorf("ca: %d vehicles do not fit %d sites", c.Vehicles, c.Length)
	}
	if c.VMax == 0 {
		c.VMax = DefaultVMax
	}
	if c.VMax < 0 {
		return fmt.Errorf("ca: vmax %d must be non-negative", c.VMax)
	}
	if c.SlowdownP < 0 || c.SlowdownP > 1 {
		return fmt.Errorf("ca: slowdown probability %v outside [0,1]", c.SlowdownP)
	}
	if c.Boundary == 0 {
		c.Boundary = RingBoundary
	}
	if c.Placement == 0 {
		c.Placement = EvenPlacement
	}
	if c.InitialVel < 0 || c.InitialVel > c.VMax {
		return fmt.Errorf("ca: initial velocity %d outside [0,%d]", c.InitialVel, c.VMax)
	}
	return nil
}

// Lane is one NaS lane: the vector L_n of the paper plus the vehicle
// structures. All updates are parallel (synchronous), per footnote 1 of the
// paper.
type Lane struct {
	cfg      Config
	cells    []int // vehicle index occupying each site, or -1
	vehicles []Vehicle
	step     int
	rnd      *rand.Rand
	signals  []Signal
}

// NewLane builds a lane from cfg using rnd for the stochastic rule and for
// random placement. rnd may be nil when cfg is fully deterministic
// (SlowdownP == 0 and Placement != RandomPlacement).
func NewLane(cfg Config, rnd *rand.Rand) (*Lane, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if rnd == nil && (cfg.SlowdownP > 0 || cfg.Placement == RandomPlacement) {
		return nil, fmt.Errorf("ca: config requires randomness but rnd is nil")
	}
	l := &Lane{
		cfg:      cfg,
		cells:    make([]int, cfg.Length),
		vehicles: make([]Vehicle, cfg.Vehicles),
		rnd:      rnd,
	}
	for i := range l.cells {
		l.cells[i] = -1
	}
	positions, err := initialPositions(cfg, rnd)
	if err != nil {
		return nil, err
	}
	for i, pos := range positions {
		l.vehicles[i] = Vehicle{ID: i, Pos: pos, Vel: cfg.InitialVel}
		l.cells[pos] = i
	}
	l.refreshGaps()
	return l, nil
}

func initialPositions(cfg Config, rnd *rand.Rand) ([]int, error) {
	n := cfg.Vehicles
	positions := make([]int, 0, n)
	switch cfg.Placement {
	case EvenPlacement:
		for i := 0; i < n; i++ {
			positions = append(positions, i*cfg.Length/n)
		}
	case CompactPlacement:
		for i := 0; i < n; i++ {
			positions = append(positions, i)
		}
	case RandomPlacement:
		perm := rnd.Perm(cfg.Length)[:n]
		positions = append(positions, perm...)
		sortInts(positions)
	default:
		return nil, fmt.Errorf("ca: unknown placement %d", cfg.Placement)
	}
	return positions, nil
}

func sortInts(s []int) {
	// Insertion sort: n is small and this avoids importing sort for one call.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// Config returns the lane configuration after normalization.
func (l *Lane) Config() Config { return l.cfg }

// Len reports the number of sites L.
func (l *Lane) Len() int { return l.cfg.Length }

// NumVehicles reports the number of cars N.
func (l *Lane) NumVehicles() int { return len(l.vehicles) }

// Density reports ρ = N/L in vehicles per site.
func (l *Lane) Density() float64 {
	return float64(len(l.vehicles)) / float64(l.cfg.Length)
}

// StepCount reports how many steps have been executed.
func (l *Lane) StepCount() int { return l.step }

// Vehicle returns a copy of the i-th vehicle structure.
func (l *Lane) Vehicle(i int) Vehicle { return l.vehicles[i] }

// Vehicles appends copies of all vehicle structures to dst and returns it.
func (l *Lane) Vehicles(dst []Vehicle) []Vehicle {
	return append(dst, l.vehicles...)
}

// Occupancy returns the site vector: for each site, the velocity of the
// occupying vehicle or -1 when empty (the paper's L_{i,n} encoding).
func (l *Lane) Occupancy(dst []int) []int {
	if cap(dst) < len(l.cells) {
		dst = make([]int, len(l.cells))
	}
	dst = dst[:len(l.cells)]
	for i, v := range l.cells {
		if v < 0 {
			dst[i] = -1
		} else {
			dst[i] = l.vehicles[v].Vel
		}
	}
	return dst
}

// refreshGaps recomputes the Gap field of every vehicle. Vehicles are kept
// sorted by position at all times (overtaking is impossible in 1-D).
func (l *Lane) refreshGaps() {
	n := len(l.vehicles)
	if n == 0 {
		return
	}
	if n == 1 {
		// A lone vehicle is never gap-limited: a ring shows it the whole
		// lane, an open lane has open road past the end.
		if l.cfg.Boundary == RingBoundary {
			l.vehicles[0].Gap = l.cfg.Length - 1
		} else {
			l.vehicles[0].Gap = l.cfg.VMax
		}
		l.applySignals()
		return
	}
	for i := 0; i < n; i++ {
		cur := l.vehicles[i].Pos
		var ahead int
		if i == n-1 {
			if l.cfg.Boundary == RingBoundary {
				ahead = l.vehicles[0].Pos + l.cfg.Length
			} else {
				// Leader of an open lane: the end is open road, so the
				// leader is never gap-limited. It drives off the end and is
				// shifted back to the beginning (see Step).
				l.vehicles[i].Gap = l.cfg.VMax
				continue
			}
		} else {
			ahead = l.vehicles[i+1].Pos
		}
		l.vehicles[i].Gap = ahead - cur - 1
	}
	l.applySignals()
}

// Step advances the lane by one time step, applying the NaS rules in
// parallel to every vehicle.
func (l *Lane) Step() {
	l.refreshGaps()
	n := len(l.vehicles)
	vmax := l.cfg.VMax
	// Phase 1: velocity update (rules 1, 2, 2') for all vehicles, using the
	// time-n state only — this is the parallel update of footnote 1.
	for i := 0; i < n; i++ {
		v := &l.vehicles[i]
		nv := v.Vel + 1
		if nv > vmax {
			nv = vmax
		}
		if nv > v.Gap {
			nv = v.Gap
		}
		if l.cfg.SlowdownP > 0 && nv > 0 && l.rnd.Float64() < l.cfg.SlowdownP {
			nv--
		}
		v.Vel = nv
	}
	// Phase 2: motion (rule 3).
	for i := range l.cells {
		l.cells[i] = -1
	}
	switch l.cfg.Boundary {
	case RingBoundary:
		for i := 0; i < n; i++ {
			v := &l.vehicles[i]
			p := v.Pos + v.Vel
			if p >= l.cfg.Length {
				p -= l.cfg.Length
				v.Laps++
			}
			v.Pos = p
		}
		// Positions may have wrapped; restore sorted order by rotating the
		// slice so the smallest position comes first. Relative order is
		// preserved because vehicles cannot pass each other.
		l.restoreOrder()
	case OpenBoundary:
		// First-version CAVENET: a vehicle that runs off the right end is
		// shifted back to the beginning of the line (paper §III-B). It
		// restarts from the first free site with velocity zero — the
		// "delay" the paper attributes to this scheme. Only the leader can
		// cross the boundary in a given step (followers are gap-limited by
		// the leader's previous position), so a single scan suffices.
		wrapped := -1
		for i := 0; i < n; i++ {
			v := &l.vehicles[i]
			p := v.Pos + v.Vel
			if p >= l.cfg.Length {
				wrapped = i
				continue
			}
			v.Pos = p
		}
		occupied := make(map[int]bool, n)
		for i := 0; i < n; i++ {
			if i != wrapped {
				occupied[l.vehicles[i].Pos] = true
			}
		}
		if wrapped >= 0 {
			v := &l.vehicles[wrapped]
			site := 0
			for occupied[site] {
				site++
			}
			v.Pos = site
			v.Vel = 0
			v.Laps++
		}
		// The re-inserted vehicle may land between tail vehicles, so a
		// rotation is not enough: fully re-sort by position. Stability
		// keeps IDs deterministic.
		l.sortByPosition()
	}
	for i := 0; i < n; i++ {
		l.cells[l.vehicles[i].Pos] = i
	}
	l.step++
	l.refreshGaps()
}

// sortByPosition re-sorts vehicles ascending by position (insertion sort;
// the slice is nearly sorted already).
func (l *Lane) sortByPosition() {
	vs := l.vehicles
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j-1].Pos > vs[j].Pos; j-- {
			vs[j-1], vs[j] = vs[j], vs[j-1]
		}
	}
}

// restoreOrder rotates l.vehicles so positions are ascending again after a
// wrap-around. Because overtaking is impossible the sequence is always a
// rotation of a sorted sequence.
func (l *Lane) restoreOrder() {
	n := len(l.vehicles)
	if n < 2 {
		return
	}
	pivot := -1
	for i := 1; i < n; i++ {
		if l.vehicles[i].Pos < l.vehicles[i-1].Pos {
			pivot = i
			break
		}
	}
	if pivot < 0 {
		return
	}
	// Rotate left by pivot in place (three reversals): wraps happen nearly
	// every step on a busy lane, so this must not allocate.
	reverseVehicles(l.vehicles[:pivot])
	reverseVehicles(l.vehicles[pivot:])
	reverseVehicles(l.vehicles)
}

func reverseVehicles(v []Vehicle) {
	for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
}

// MeanVelocity reports v̄(t) = N⁻¹ Σ v_i in sites per step; zero when the
// lane is empty.
func (l *Lane) MeanVelocity() float64 {
	if len(l.vehicles) == 0 {
		return 0
	}
	sum := 0
	for i := range l.vehicles {
		sum += l.vehicles[i].Vel
	}
	return float64(sum) / float64(len(l.vehicles))
}

// Flow reports J = ρ·v̄, the fundamental-diagram quantity of Fig. 4, in
// vehicles per step per site.
func (l *Lane) Flow() float64 { return l.Density() * l.MeanVelocity() }

// PositionMeters reports the along-lane coordinate of vehicle i in meters,
// including completed laps (the unbounded coordinate used for trace export;
// callers may reduce it modulo the circumference).
func (l *Lane) PositionMeters(i int) float64 {
	v := &l.vehicles[i]
	return (float64(v.Laps)*float64(l.cfg.Length) + float64(v.Pos)) * CellLength
}

// VelocityMetersPerSec reports the speed of vehicle i in m/s.
func (l *Lane) VelocityMetersPerSec(i int) float64 {
	return float64(l.vehicles[i].Vel) * CellLength / StepSeconds
}
