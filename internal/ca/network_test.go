package ca

import (
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
)

func testGridNetwork(t *testing.T, rows, cols, vehicles int, seed int64, cfg GridNetworkConfig) *Network {
	t.Helper()
	grid, err := geometry.Manhattan(rows, cols, 150, geometry.Vec2{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Vehicles = vehicles
	net, err := NewGridNetwork(grid, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestNetworkInvariants drives a signalized grid and checks, every step:
// vehicle conservation, distinct occupancy, velocity bounds, the
// displacement-equals-velocity contract across intersection hops, and the
// per-segment Σv capacity bound.
func TestNetworkInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		net := testGridNetwork(t, 3, 3, 40, seed, GridNetworkConfig{
			SlowdownP:   0.3,
			SignalGreen: 20,
			SignalRed:   15,
		})
		n := net.TotalVehicles()
		if n != 40 {
			t.Fatalf("seed %d: placed %d vehicles, want 40", seed, n)
		}
		vmax := net.VMax()
		prev := make([]NetVehicle, n)
		for i := 0; i < n; i++ {
			prev[i] = net.Vehicle(i)
		}
		for step := 0; step < 400; step++ {
			net.Step()
			counts := make([]int, net.NumSegments())
			sumV := make([]int, net.NumSegments())
			seen := make(map[[2]int]bool, n)
			for i := 0; i < n; i++ {
				v := net.Vehicle(i)
				if v.ID != i {
					t.Fatalf("seed %d step %d: vehicle %d reports ID %d", seed, step, i, v.ID)
				}
				if v.Vel < 0 || v.Vel > vmax {
					t.Fatalf("seed %d step %d: vehicle %d velocity %d outside [0,%d]", seed, step, i, v.Vel, vmax)
				}
				key := [2]int{v.Seg, v.Pos}
				if seen[key] {
					t.Fatalf("seed %d step %d: two vehicles on segment %d site %d", seed, step, v.Seg, v.Pos)
				}
				seen[key] = true
				counts[v.Seg]++
				sumV[v.Seg] += v.Vel
				// Displacement along the path must equal the velocity.
				p := prev[i]
				if v.Seg == p.Seg && v.Pos >= p.Pos {
					if v.Pos-p.Pos != v.Vel {
						t.Fatalf("seed %d step %d: vehicle %d moved %d sites at velocity %d",
							seed, step, i, v.Pos-p.Pos, v.Vel)
					}
				} else {
					if v.Seg != p.Next {
						t.Fatalf("seed %d step %d: vehicle %d hopped %d -> %d but had chosen %d",
							seed, step, i, p.Seg, v.Seg, p.Next)
					}
					d := net.SegmentLen(p.Seg) - p.Pos + v.Pos
					if d != v.Vel {
						t.Fatalf("seed %d step %d: vehicle %d crossed with displacement %d at velocity %d",
							seed, step, i, d, v.Vel)
					}
					ok := false
					for _, nx := range net.Successors(p.Seg) {
						if nx == v.Seg {
							ok = true
						}
					}
					if !ok {
						t.Fatalf("seed %d step %d: vehicle %d entered non-successor segment %d from %d",
							seed, step, i, v.Seg, p.Seg)
					}
				}
				prev[i] = v
			}
			if len(seen) != n {
				t.Fatalf("seed %d step %d: %d occupied sites for %d vehicles", seed, step, len(seen), n)
			}
			for s := 0; s < net.NumSegments(); s++ {
				if counts[s] != net.SegmentVehicles(s) {
					t.Fatalf("seed %d step %d: segment %d count %d vs reported %d",
						seed, step, s, counts[s], net.SegmentVehicles(s))
				}
				// Per-segment capacity sanity: intra-segment gaps sum to at
				// most L-N, and the exiting leader adds at most vmax.
				if limit := net.SegmentLen(s) - counts[s] + vmax; counts[s] > 0 && sumV[s] > limit {
					t.Fatalf("seed %d step %d: segment %d Σv = %d exceeds (L-N)+vmax = %d",
						seed, step, s, sumV[s], limit)
				}
			}
		}
	}
}

// TestNetworkTurnsMixTraffic proves vehicles actually take different
// turns: after enough steps, vehicles initially on segment 0 have spread
// over several segments.
func TestNetworkTurnsMixTraffic(t *testing.T) {
	net := testGridNetwork(t, 3, 3, 30, 7, GridNetworkConfig{SlowdownP: 0.1})
	visited := make(map[int]bool)
	for step := 0; step < 300; step++ {
		net.Step()
		visited[net.Vehicle(0).Seg] = true
	}
	if len(visited) < 3 {
		t.Fatalf("vehicle 0 visited only %d segments in 300 steps", len(visited))
	}
}

// TestNetworkSignalsGateExits freezes a red light forever and checks no
// vehicle ever leaves its segment, while the unsignalized copy mixes.
func TestNetworkSignalsGateExits(t *testing.T) {
	grid, err := geometry.Manhattan(2, 2, 150, geometry.Vec2{})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]SegmentSpec, len(grid.Segments))
	for i, gs := range grid.Segments {
		specs[i] = SegmentSpec{
			Length:    20,
			Placement: segmentLine(gs, 20),
			Next:      grid.Outgoing[gs.To],
			// Offset puts the whole horizon inside the red phase.
			ExitSignal: &Signal{GreenSteps: 1, RedSteps: 10000, Offset: 1},
		}
	}
	net, err := NewNetwork(NetworkConfig{Segments: specs, Vehicles: 8}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	home := make([]int, net.TotalVehicles())
	for i := range home {
		home[i] = net.Vehicle(i).Seg
	}
	for step := 0; step < 100; step++ {
		net.Step()
		for i := range home {
			if got := net.Vehicle(i).Seg; got != home[i] {
				t.Fatalf("step %d: vehicle %d crossed a red light (%d -> %d)", step, i, home[i], got)
			}
		}
	}
}

// TestNetworkDeterministic: same seed, same trajectory; the per-vehicle
// RNG forking makes this exact.
func TestNetworkDeterministic(t *testing.T) {
	run := func() []NetVehicle {
		net := testGridNetwork(t, 3, 4, 35, 11, GridNetworkConfig{
			SlowdownP:   0.3,
			SignalGreen: 10,
			SignalRed:   10,
		})
		for i := 0; i < 200; i++ {
			net.Step()
		}
		out := make([]NetVehicle, net.TotalVehicles())
		for i := range out {
			out[i] = net.Vehicle(i)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vehicle %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestNetworkPositionsContinuous checks the plane-motion contract the
// trace watcher relies on: between consecutive steps no vehicle jumps
// farther than vmax sites of plane distance (plus rounding slack), even
// across intersection hops.
func TestNetworkPositionsContinuous(t *testing.T) {
	net := testGridNetwork(t, 3, 3, 40, 5, GridNetworkConfig{SlowdownP: 0.3, SignalGreen: 8, SignalRed: 8})
	maxStep := float64(net.VMax())*CellLength + 1
	prev := net.Positions(nil)
	for step := 0; step < 300; step++ {
		net.Step()
		cur := net.Positions(nil)
		for i := range cur {
			if d := cur[i].Dist(prev[i]); d > maxStep {
				t.Fatalf("step %d: vehicle %d jumped %.2f m (> %.2f)", step, i, d, maxStep)
			}
		}
		prev = cur
	}
}

func TestNetworkConfigValidation(t *testing.T) {
	line := geometry.Line{Transform: geometry.Identity()}
	if _, err := NewNetwork(NetworkConfig{}, nil); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := NewNetwork(NetworkConfig{
		Segments: []SegmentSpec{{Length: 3, Placement: line, Next: []int{0}}},
	}, nil); err == nil {
		t.Error("segment shorter than vmax+1 accepted")
	}
	if _, err := NewNetwork(NetworkConfig{
		Segments: []SegmentSpec{{Length: 20, Placement: line}},
	}, nil); err == nil {
		t.Error("successor-less segment accepted")
	}
	if _, err := NewNetwork(NetworkConfig{
		Segments: []SegmentSpec{{Length: 20, Placement: line, Next: []int{5}}},
	}, nil); err == nil {
		t.Error("out-of-range successor accepted")
	}
	if _, err := NewNetwork(NetworkConfig{
		Segments: []SegmentSpec{{Length: 20, Placement: line, Next: []int{0}}},
		Vehicles: 11,
	}, nil); err == nil {
		t.Error("over-capacity vehicle count accepted")
	}
	// A deterministic single-loop network needs no RNG.
	if _, err := NewNetwork(NetworkConfig{
		Segments: []SegmentSpec{{Length: 20, Placement: line, Next: []int{0}}},
		Vehicles: 5,
	}, nil); err != nil {
		t.Errorf("deterministic network rejected: %v", err)
	}
}
