package ca

import (
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
)

func coupledRoad(t *testing.T, lanes, length, vehicles int, p float64, seed int64) *Road {
	t.Helper()
	specs := make([]LaneSpec, lanes)
	for i := range specs {
		specs[i] = LaneSpec{
			Config: Config{
				Length:    length,
				Vehicles:  vehicles,
				SlowdownP: 0.3,
				Boundary:  RingBoundary,
				Placement: RandomPlacement,
			},
			Placement: geometry.Line{Transform: geometry.Translate(0, float64(i)*4)},
		}
	}
	rnd := rand.New(rand.NewSource(seed))
	road, err := NewRoad(specs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if err := road.EnableLaneChanges(LaneChange{P: p}, rand.New(rand.NewSource(seed+1))); err != nil {
		t.Fatal(err)
	}
	return road
}

// TestLaneChangeConservesVehicles steps a congested coupled road and
// asserts the CA stays physical: total vehicle count constant, IDs unique,
// positions distinct per lane, and at least one lane change actually
// happens (the coupling is not a no-op).
func TestLaneChangeConservesVehicles(t *testing.T) {
	road := coupledRoad(t, 3, 100, 25, 0.5, 1)
	total := road.TotalVehicles()
	if total != 75 {
		t.Fatalf("total vehicles = %d", total)
	}
	initialPerLane := make([]int, road.NumLanes())
	for li := range initialPerLane {
		initialPerLane[li] = road.Lane(li).NumVehicles()
	}
	migrated := false
	for step := 0; step < 200; step++ {
		road.Step()
		seen := make(map[int]bool, total)
		count := 0
		for li := 0; li < road.NumLanes(); li++ {
			lane := road.Lane(li)
			count += lane.NumVehicles()
			if lane.NumVehicles() != initialPerLane[li] {
				migrated = true
			}
			prevPos := -1
			for vi := 0; vi < lane.NumVehicles(); vi++ {
				v := lane.Vehicle(vi)
				if seen[v.ID] {
					t.Fatalf("step %d: vehicle %d duplicated", step, v.ID)
				}
				seen[v.ID] = true
				if v.Pos <= prevPos {
					t.Fatalf("step %d lane %d: positions not strictly increasing at %d", step, li, v.Pos)
				}
				prevPos = v.Pos
				if v.Vel < 0 || v.Vel > DefaultVMax {
					t.Fatalf("step %d: vehicle %d velocity %d", step, v.ID, v.Vel)
				}
			}
		}
		if count != total {
			t.Fatalf("step %d: %d vehicles, want %d", step, count, total)
		}
	}
	if !migrated {
		t.Fatal("no lane change happened in 200 congested steps")
	}
}

// TestLaneChangeDeterministic asserts two identically seeded coupled roads
// evolve identically.
func TestLaneChangeDeterministic(t *testing.T) {
	a := coupledRoad(t, 2, 120, 30, 0.4, 7)
	b := coupledRoad(t, 2, 120, 30, 0.4, 7)
	for step := 0; step < 100; step++ {
		a.Step()
		b.Step()
	}
	pa := a.Positions(nil)
	pb := b.Positions(nil)
	if len(pa) != len(pb) {
		t.Fatalf("position counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("vehicle %d diverged: %v vs %v", i, pa[i], pb[i])
		}
	}
}

// TestLaneChangePositionsTrackIdentity asserts Positions reports by
// persistent vehicle ID: between consecutive steps no vehicle moves more
// than vmax cells along the lane plus one sideways hop.
func TestLaneChangePositionsTrackIdentity(t *testing.T) {
	road := coupledRoad(t, 2, 150, 30, 0.5, 3)
	prev := road.Positions(nil)
	const maxStep = DefaultVMax*CellLength + 4 + 1e-9
	for step := 0; step < 150; step++ {
		road.Step()
		cur := road.Positions(nil)
		for i := range cur {
			// The lane is a straight Line placement, so wrap-around jumps
			// are expected; skip those (they move backwards by ~L).
			dx := cur[i].X - prev[i].X
			if dx < 0 {
				continue
			}
			if d := cur[i].Dist(prev[i]); d > maxStep {
				t.Fatalf("step %d: vehicle %d jumped %.1f m", step, i, d)
			}
		}
		prev = cur
	}
}

// TestEnableLaneChangesRejectsBadConfigs covers the validation matrix.
func TestEnableLaneChangesRejectsBadConfigs(t *testing.T) {
	mk := func(specs ...LaneSpec) *Road {
		road, err := NewRoad(specs, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		return road
	}
	line := geometry.Line{Transform: geometry.Identity()}
	ring := LaneSpec{Config: Config{Length: 50, Vehicles: 5}, Placement: line}

	if err := mk(ring).EnableLaneChanges(LaneChange{P: 0.5}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("single lane accepted")
	}
	if err := mk(ring, ring).EnableLaneChanges(LaneChange{P: 0}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero probability accepted")
	}
	if err := mk(ring, ring).EnableLaneChanges(LaneChange{P: 0.5}, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	open := ring
	open.Config.Boundary = OpenBoundary
	if err := mk(ring, open).EnableLaneChanges(LaneChange{P: 0.5}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("open boundary accepted")
	}
	short := ring
	short.Config.Length = 40
	if err := mk(ring, short).EnableLaneChanges(LaneChange{P: 0.5}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("mismatched lengths accepted")
	}
	rev := ring
	rev.Reversed = true
	if err := mk(ring, rev).EnableLaneChanges(LaneChange{P: 0.5}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("opposing directions accepted")
	}
}

// TestLaneSpecSignalsInstalled asserts NewRoad wires LaneSpec.Signals.
func TestLaneSpecSignalsInstalled(t *testing.T) {
	road, err := NewRoad([]LaneSpec{{
		Config:    Config{Length: 60, Vehicles: 6},
		Placement: geometry.Line{Transform: geometry.Identity()},
		Signals:   []Signal{{Site: 10, GreenSteps: 5, RedSteps: 5}},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(road.Lane(0).Signals()); got != 1 {
		t.Fatalf("lane has %d signals, want 1", got)
	}
	bad := []LaneSpec{{
		Config:    Config{Length: 60, Vehicles: 6},
		Placement: geometry.Line{Transform: geometry.Identity()},
		Signals:   []Signal{{Site: 99, GreenSteps: 5, RedSteps: 5}},
	}}
	if _, err := NewRoad(bad, nil); err == nil {
		t.Fatal("out-of-lane signal accepted")
	}
}
