package ca

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestLane(t *testing.T, cfg Config, seed int64) *Lane {
	t.Helper()
	lane, err := NewLane(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("NewLane: %v", err)
	}
	return lane
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero length", Config{Length: 0, Vehicles: 1}},
		{"negative vehicles", Config{Length: 10, Vehicles: -1}},
		{"too many vehicles", Config{Length: 10, Vehicles: 11}},
		{"bad probability", Config{Length: 10, Vehicles: 1, SlowdownP: 1.5}},
		{"negative vmax", Config{Length: 10, Vehicles: 1, VMax: -1}},
		{"bad initial velocity", Config{Length: 10, Vehicles: 1, InitialVel: 99}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewLane(tc.cfg, rand.New(rand.NewSource(1))); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestNewLaneRequiresRNGWhenStochastic(t *testing.T) {
	if _, err := NewLane(Config{Length: 10, Vehicles: 1, SlowdownP: 0.5}, nil); err == nil {
		t.Fatal("stochastic config with nil rng must error")
	}
	if _, err := NewLane(Config{Length: 10, Vehicles: 1}, nil); err != nil {
		t.Fatalf("deterministic config with nil rng should work: %v", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	lane := newTestLane(t, Config{Length: 100, Vehicles: 5}, 1)
	cfg := lane.Config()
	if cfg.VMax != DefaultVMax {
		t.Fatalf("VMax = %d, want %d", cfg.VMax, DefaultVMax)
	}
	if cfg.Boundary != RingBoundary {
		t.Fatalf("Boundary = %v, want ring", cfg.Boundary)
	}
	if cfg.Placement != EvenPlacement {
		t.Fatalf("Placement = %v, want even", cfg.Placement)
	}
}

func TestPaperCalibration(t *testing.T) {
	// vmax=135 km/h and Δt=1 s give s=7.5 m (paper §III-A).
	if CellLength != 7.5 {
		t.Fatalf("CellLength = %v", CellLength)
	}
	metersPerStep := float64(DefaultVMax) * CellLength / StepSeconds
	if kmh := metersPerStep * 3.6; kmh != 135 {
		t.Fatalf("vmax corresponds to %v km/h, want 135", kmh)
	}
}

func TestBoundaryString(t *testing.T) {
	if RingBoundary.String() != "ring" || OpenBoundary.String() != "open" {
		t.Fatal("Boundary.String broken")
	}
	if Boundary(99).String() != "Boundary(99)" {
		t.Fatal("unknown boundary formatting broken")
	}
}

// invariantCheck asserts the structural invariants that must hold after any
// number of steps: one vehicle per cell, positions sorted, velocities in
// range, density conserved.
func invariantCheck(t *testing.T, l *Lane) {
	t.Helper()
	seen := make(map[int]bool)
	prev := -1
	for i := 0; i < l.NumVehicles(); i++ {
		v := l.Vehicle(i)
		if v.Pos < 0 || v.Pos >= l.Len() {
			t.Fatalf("vehicle %d position %d out of range", i, v.Pos)
		}
		if seen[v.Pos] {
			t.Fatalf("two vehicles on cell %d", v.Pos)
		}
		seen[v.Pos] = true
		if v.Pos <= prev {
			t.Fatalf("vehicle order not ascending: %d after %d", v.Pos, prev)
		}
		prev = v.Pos
		if v.Vel < 0 || v.Vel > l.Config().VMax {
			t.Fatalf("velocity %d outside [0,%d]", v.Vel, l.Config().VMax)
		}
	}
	occ := l.Occupancy(nil)
	count := 0
	for _, c := range occ {
		if c >= 0 {
			count++
		}
	}
	if count != l.NumVehicles() {
		t.Fatalf("occupancy count %d != vehicles %d", count, l.NumVehicles())
	}
}

func TestInvariantsRingStochastic(t *testing.T) {
	lane := newTestLane(t, Config{Length: 200, Vehicles: 80, SlowdownP: 0.4, Placement: RandomPlacement}, 7)
	for s := 0; s < 500; s++ {
		lane.Step()
		invariantCheck(t, lane)
	}
}

func TestInvariantsOpenBoundary(t *testing.T) {
	lane := newTestLane(t, Config{Length: 100, Vehicles: 30, SlowdownP: 0.3, Boundary: OpenBoundary, Placement: RandomPlacement}, 11)
	for s := 0; s < 500; s++ {
		lane.Step()
		invariantCheck(t, lane)
	}
}

func TestInvariantsQuick(t *testing.T) {
	f := func(seed int64, lengthRaw, vehRaw uint8, pRaw uint8) bool {
		length := 10 + int(lengthRaw)%200
		n := int(vehRaw) % (length + 1)
		p := float64(pRaw%100) / 100
		lane, err := NewLane(Config{
			Length: length, Vehicles: n, SlowdownP: p, Placement: RandomPlacement,
		}, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		for s := 0; s < 50; s++ {
			lane.Step()
		}
		// Re-run the invariant conditions without t.Fatal.
		seen := make(map[int]bool)
		prev := -1
		for i := 0; i < lane.NumVehicles(); i++ {
			v := lane.Vehicle(i)
			if v.Pos < 0 || v.Pos >= lane.Len() || seen[v.Pos] || v.Pos <= prev {
				return false
			}
			if v.Vel < 0 || v.Vel > lane.Config().VMax {
				return false
			}
			seen[v.Pos] = true
			prev = v.Pos
		}
		return lane.NumVehicles() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicFreeFlowReachesVMax(t *testing.T) {
	// Low density, p=0: all vehicles accelerate to vmax and stay there.
	lane := newTestLane(t, Config{Length: 100, Vehicles: 10}, 1)
	for s := 0; s < 50; s++ {
		lane.Step()
	}
	if v := lane.MeanVelocity(); v != float64(DefaultVMax) {
		t.Fatalf("free-flow mean velocity = %v, want %d", v, DefaultVMax)
	}
}

func TestDeterministicJamVelocity(t *testing.T) {
	// Above critical density the deterministic steady state has mean
	// velocity (L-N)/N (each gap shared): for L=100, N=50, v → 1.
	lane := newTestLane(t, Config{Length: 100, Vehicles: 50}, 1)
	for s := 0; s < 500; s++ {
		lane.Step()
	}
	if v := lane.MeanVelocity(); v != 1 {
		t.Fatalf("jam mean velocity = %v, want 1", v)
	}
}

func TestStochasticSlowerThanDeterministic(t *testing.T) {
	det := newTestLane(t, Config{Length: 400, Vehicles: 40}, 5)
	sto := newTestLane(t, Config{Length: 400, Vehicles: 40, SlowdownP: 0.5}, 5)
	var vd, vs float64
	for s := 0; s < 300; s++ {
		det.Step()
		sto.Step()
		if s >= 100 {
			vd += det.MeanVelocity()
			vs += sto.MeanVelocity()
		}
	}
	if vs >= vd {
		t.Fatalf("stochastic mean velocity %v should be below deterministic %v", vs/200, vd/200)
	}
}

func TestSingleVehicle(t *testing.T) {
	lane := newTestLane(t, Config{Length: 50, Vehicles: 1}, 1)
	for s := 0; s < 100; s++ {
		lane.Step()
		invariantCheck(t, lane)
	}
	if v := lane.Vehicle(0); v.Vel != DefaultVMax {
		t.Fatalf("lone vehicle velocity = %d, want vmax", v.Vel)
	}
	if lane.Vehicle(0).Laps == 0 {
		t.Fatal("lone vehicle should have lapped the ring")
	}
}

func TestEmptyLane(t *testing.T) {
	lane := newTestLane(t, Config{Length: 50, Vehicles: 0}, 1)
	lane.Step()
	if lane.MeanVelocity() != 0 || lane.Flow() != 0 {
		t.Fatal("empty lane should have zero velocity and flow")
	}
}

func TestFullLaneGridlock(t *testing.T) {
	// Every cell occupied: nobody can ever move.
	lane := newTestLane(t, Config{Length: 20, Vehicles: 20}, 1)
	for s := 0; s < 20; s++ {
		lane.Step()
		invariantCheck(t, lane)
	}
	if lane.MeanVelocity() != 0 {
		t.Fatalf("gridlock velocity = %v, want 0", lane.MeanVelocity())
	}
}

func TestOpenBoundaryWrapDelay(t *testing.T) {
	// A single fast vehicle on an open lane must restart at velocity 0
	// after the shift (the paper's "this caused a delay").
	lane := newTestLane(t, Config{Length: 20, Vehicles: 1, Boundary: OpenBoundary}, 1)
	sawWrapWithZeroVel := false
	lastLaps := 0
	for s := 0; s < 100; s++ {
		lane.Step()
		v := lane.Vehicle(0)
		if v.Laps > lastLaps {
			lastLaps = v.Laps
			if v.Vel == 0 {
				sawWrapWithZeroVel = true
			} else {
				t.Fatalf("wrapped vehicle has velocity %d, want 0", v.Vel)
			}
		}
	}
	if !sawWrapWithZeroVel {
		t.Fatal("vehicle never wrapped; test ineffective")
	}
}

func TestRingLapCounting(t *testing.T) {
	lane := newTestLane(t, Config{Length: 10, Vehicles: 1}, 1)
	for s := 0; s < 100; s++ {
		lane.Step()
	}
	v := lane.Vehicle(0)
	// 100 steps at vmax=5 over a 10-cell ring: ~50 laps.
	if v.Laps < 45 || v.Laps > 50 {
		t.Fatalf("laps = %d, want ≈50", v.Laps)
	}
	// Unbounded coordinate grows monotonically.
	if lane.PositionMeters(0) < float64(v.Laps)*10*CellLength {
		t.Fatalf("PositionMeters inconsistent with laps")
	}
}

func TestGapLawPreventsCollisionNextStep(t *testing.T) {
	// Property: after refreshGaps, v <= gap+1 possible before slowdown, but
	// post-step positions never collide (checked by invariantCheck); here
	// verify gap values are consistent with positions.
	lane := newTestLane(t, Config{Length: 100, Vehicles: 40, SlowdownP: 0.3, Placement: RandomPlacement}, 3)
	for s := 0; s < 100; s++ {
		lane.Step()
		n := lane.NumVehicles()
		for i := 0; i < n; i++ {
			cur := lane.Vehicle(i)
			next := lane.Vehicle((i + 1) % n)
			want := next.Pos - cur.Pos - 1
			if want < 0 {
				want += lane.Len()
			}
			if cur.Gap != want {
				t.Fatalf("step %d vehicle %d gap = %d, want %d", s, i, cur.Gap, want)
			}
		}
	}
}

func TestVelocityMetersPerSec(t *testing.T) {
	lane := newTestLane(t, Config{Length: 100, Vehicles: 1}, 1)
	for s := 0; s < 10; s++ {
		lane.Step()
	}
	if got := lane.VelocityMetersPerSec(0); got != float64(DefaultVMax)*CellLength {
		t.Fatalf("VelocityMetersPerSec = %v", got)
	}
}

func TestVehiclesCopy(t *testing.T) {
	lane := newTestLane(t, Config{Length: 100, Vehicles: 5}, 1)
	vs := lane.Vehicles(nil)
	if len(vs) != 5 {
		t.Fatalf("Vehicles len = %d", len(vs))
	}
	vs[0].Pos = -999
	if lane.Vehicle(0).Pos == -999 {
		t.Fatal("Vehicles must return copies")
	}
}

func TestDensityAndFlow(t *testing.T) {
	lane := newTestLane(t, Config{Length: 200, Vehicles: 50}, 1)
	if lane.Density() != 0.25 {
		t.Fatalf("Density = %v", lane.Density())
	}
	for s := 0; s < 100; s++ {
		lane.Step()
	}
	if got, want := lane.Flow(), lane.Density()*lane.MeanVelocity(); got != want {
		t.Fatalf("Flow = %v, want ρ·v̄ = %v", got, want)
	}
}

func TestPlacements(t *testing.T) {
	even := newTestLane(t, Config{Length: 100, Vehicles: 4}, 1)
	for i, want := range []int{0, 25, 50, 75} {
		if got := even.Vehicle(i).Pos; got != want {
			t.Fatalf("even placement vehicle %d at %d, want %d", i, got, want)
		}
	}
	compact, err := NewLane(Config{Length: 100, Vehicles: 4, Placement: CompactPlacement}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if compact.Vehicle(i).Pos != i {
			t.Fatal("compact placement should pack from 0")
		}
	}
	random := newTestLane(t, Config{Length: 100, Vehicles: 30, Placement: RandomPlacement}, 9)
	invariantCheck(t, random)
}

func TestStepCount(t *testing.T) {
	lane := newTestLane(t, Config{Length: 100, Vehicles: 3}, 1)
	for s := 0; s < 7; s++ {
		lane.Step()
	}
	if lane.StepCount() != 7 {
		t.Fatalf("StepCount = %d", lane.StepCount())
	}
}

func TestDeterministicRunsAreReproducible(t *testing.T) {
	run := func() []float64 {
		lane := newTestLane(t, Config{Length: 300, Vehicles: 60, SlowdownP: 0.5, Placement: RandomPlacement}, 123)
		return RunVelocitySeries(lane, 200)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}
