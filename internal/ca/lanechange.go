package ca

import (
	"fmt"
	"math/rand"
)

// LaneChange parameterizes the symmetric lane-change rule that couples the
// parallel lanes of a Road — the multi-lane extension the paper's §III-D
// lane construction anticipates. Before each NaS step a vehicle that cannot
// reach its desired speed on its own lane looks at the adjacent lanes; if
// one offers a strictly larger gap ahead, the sideways cell is free and a
// safety gap behind it is clear, the vehicle changes lanes with
// probability P. Decisions are taken from the time-n state for all
// vehicles (parallel update, like the NaS rules themselves).
type LaneChange struct {
	// P is the probability an advantageous, safe lane change is taken.
	// Must be in (0, 1].
	P float64
	// BackGap is the number of clear sites required behind the target cell
	// on the target lane; defaults to the lane's VMax (a follower at full
	// speed cannot hit the merger).
	BackGap int
}

// EnableLaneChanges couples the road's lanes with the given rule. It
// requires ≥ 2 lanes, all with ring boundaries, identical length and VMax,
// and uniform direction — the configuration where "adjacent lane" is well
// defined. Vehicle IDs are reassigned to be globally unique (lane 0 first)
// and persist across lane changes; Positions reports by that ID. rnd drives
// the stochastic rule and must be non-nil.
func (r *Road) EnableLaneChanges(cfg LaneChange, rnd *rand.Rand) error {
	if len(r.lanes) < 2 {
		return fmt.Errorf("ca: lane changes need >= 2 lanes, have %d", len(r.lanes))
	}
	if cfg.P <= 0 || cfg.P > 1 {
		return fmt.Errorf("ca: lane-change probability %v outside (0,1]", cfg.P)
	}
	if rnd == nil {
		return fmt.Errorf("ca: lane changes require an RNG")
	}
	ref := r.lanes[0].cfg
	for i, l := range r.lanes {
		if l.cfg.Boundary != RingBoundary {
			return fmt.Errorf("ca: lane %d: lane changes require ring boundaries", i)
		}
		if l.cfg.Length != ref.Length || l.cfg.VMax != ref.VMax {
			return fmt.Errorf("ca: lane %d: lane changes require identical length and vmax", i)
		}
		if r.specs[i].Reversed != r.specs[0].Reversed {
			return fmt.Errorf("ca: lane %d: lane changes require uniform direction", i)
		}
	}
	if cfg.BackGap == 0 {
		cfg.BackGap = ref.VMax
	}
	if cfg.BackGap < 0 {
		return fmt.Errorf("ca: negative lane-change back gap %d", cfg.BackGap)
	}
	// Persistent global IDs: lane 0's vehicles first, matching the
	// uncoupled VehicleGlobalID order at construction time.
	id := 0
	for _, l := range r.lanes {
		for vi := range l.vehicles {
			l.vehicles[vi].ID = id
			id++
		}
	}
	r.coupled = true
	r.lc = cfg
	r.lcRnd = rnd
	return nil
}

// LaneChangesEnabled reports whether the road's lanes are coupled.
func (r *Road) LaneChangesEnabled() bool { return r.coupled }

// lcMove is one decided lane change: the vehicle currently on fromLane at
// site pos moves sideways to toLane.
type lcMove struct {
	fromLane, toLane, pos int
}

// applyLaneChanges decides all sideways moves from the current state, then
// applies them. Conflicts (two vehicles targeting the same cell) are
// resolved in favor of the first claimant in (lane, position-index) scan
// order; occupancy tests use the pre-change state, so the rule is
// conservative but deterministic and collision-free.
func (r *Road) applyLaneChanges() {
	for _, l := range r.lanes {
		l.refreshGaps()
	}
	vmax := r.lanes[0].cfg.VMax
	var moves []lcMove
	var claimed map[[2]int]bool // {target lane, site} already promised
	for li, l := range r.lanes {
		for vi := range l.vehicles {
			v := &l.vehicles[vi]
			desired := v.Vel + 1
			if desired > vmax {
				desired = vmax
			}
			if v.Gap >= desired {
				continue // no incentive: the own lane is not limiting
			}
			best, bestGap := -1, v.Gap
			for _, ti := range [2]int{li - 1, li + 1} {
				if ti < 0 || ti >= len(r.lanes) {
					continue
				}
				t := r.lanes[ti]
				if t.cells[v.Pos] >= 0 || claimed[[2]int{ti, v.Pos}] {
					continue // sideways cell occupied or already claimed
				}
				if !t.clearBehind(v.Pos, r.lc.BackGap) {
					continue
				}
				if g := t.aheadGapAt(v.Pos, vmax+1); g > bestGap {
					best, bestGap = ti, g
				}
			}
			if best < 0 {
				continue
			}
			if r.lcRnd.Float64() >= r.lc.P {
				continue
			}
			if claimed == nil {
				claimed = make(map[[2]int]bool)
			}
			claimed[[2]int{best, v.Pos}] = true
			moves = append(moves, lcMove{fromLane: li, toLane: best, pos: v.Pos})
		}
	}
	for _, m := range moves {
		from := r.lanes[m.fromLane]
		v := from.takeVehicleAt(from.cells[m.pos])
		r.lanes[m.toLane].placeVehicle(v)
	}
}

// aheadGapAt reports the number of consecutive free sites ahead of pos on
// the (ring) lane, scanning at most limit sites.
func (l *Lane) aheadGapAt(pos, limit int) int {
	g := 0
	for i := 1; i <= limit; i++ {
		site := pos + i
		if site >= l.cfg.Length {
			site -= l.cfg.Length
		}
		if l.cells[site] >= 0 {
			return g
		}
		g++
	}
	return g
}

// clearBehind reports whether the need sites behind pos on the (ring) lane
// are all free.
func (l *Lane) clearBehind(pos, need int) bool {
	for i := 1; i <= need; i++ {
		site := pos - i
		if site < 0 {
			site += l.cfg.Length
		}
		if l.cells[site] >= 0 {
			return false
		}
	}
	return true
}

// takeVehicleAt removes and returns the vehicle at slice index idx,
// re-syncing the cell index entries of the vehicles shifted down.
func (l *Lane) takeVehicleAt(idx int) Vehicle {
	v := l.vehicles[idx]
	l.cells[v.Pos] = -1
	l.vehicles = append(l.vehicles[:idx], l.vehicles[idx+1:]...)
	for i := idx; i < len(l.vehicles); i++ {
		l.cells[l.vehicles[i].Pos] = i
	}
	return v
}

// placeVehicle inserts v keeping the position order, re-syncing the cell
// index entries of the vehicles shifted up. The target cell must be free.
func (l *Lane) placeVehicle(v Vehicle) {
	idx := 0
	for idx < len(l.vehicles) && l.vehicles[idx].Pos < v.Pos {
		idx++
	}
	l.vehicles = append(l.vehicles, Vehicle{})
	copy(l.vehicles[idx+1:], l.vehicles[idx:])
	l.vehicles[idx] = v
	for i := idx; i < len(l.vehicles); i++ {
		l.cells[l.vehicles[i].Pos] = i
	}
}
