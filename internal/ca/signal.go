package ca

import "fmt"

// Signal models a lane crosspoint — the paper's second mobility parameter
// ("the intersection of lanes ... the crosspoint is the bottleneck for the
// lane", §III), which the paper explicitly leaves out and we implement as
// the natural extension: a traffic signal that periodically blocks one
// site. While red, no vehicle may enter or cross the site, so a queue
// forms behind it exactly like at a real intersection.
type Signal struct {
	// Site is the blocked cell index.
	Site int
	// GreenSteps and RedSteps set the cycle; both must be positive.
	GreenSteps, RedSteps int
	// Offset shifts the cycle phase (0 starts green).
	Offset int
}

// RedAt reports whether the signal shows red at the given step.
func (s Signal) RedAt(step int) bool {
	cycle := s.GreenSteps + s.RedSteps
	phase := (step + s.Offset) % cycle
	if phase < 0 {
		phase += cycle
	}
	return phase >= s.GreenSteps
}

func (s Signal) validate(length int) error {
	if s.Site < 0 || s.Site >= length {
		return fmt.Errorf("ca: signal site %d outside lane [0,%d)", s.Site, length)
	}
	if s.GreenSteps <= 0 || s.RedSteps <= 0 {
		return fmt.Errorf("ca: signal cycle must have positive green (%d) and red (%d)",
			s.GreenSteps, s.RedSteps)
	}
	return nil
}

// AddSignal installs a traffic signal on the lane. Signals apply from the
// next step onward.
func (l *Lane) AddSignal(s Signal) error {
	if err := s.validate(l.cfg.Length); err != nil {
		return err
	}
	l.signals = append(l.signals, s)
	return nil
}

// Signals returns a copy of the installed signals.
func (l *Lane) Signals() []Signal {
	return append([]Signal(nil), l.signals...)
}

// applySignals caps each vehicle's gap so that nobody enters a red site
// this step. Called from refreshGaps after the car-following gaps are set.
func (l *Lane) applySignals() {
	if len(l.signals) == 0 {
		return
	}
	length := l.cfg.Length
	for si := range l.signals {
		sig := &l.signals[si]
		if !sig.RedAt(l.step) {
			continue
		}
		for i := range l.vehicles {
			v := &l.vehicles[i]
			dist := sig.Site - v.Pos
			if l.cfg.Boundary == RingBoundary {
				if dist < 0 {
					dist += length
				}
			} else if dist < 0 {
				continue // signal behind the vehicle on an open lane
			}
			if dist == 0 {
				continue // already on the site; it may leave
			}
			if limit := dist - 1; limit < v.Gap {
				v.Gap = limit
			}
		}
	}
}
