package ca

// RunVelocitySeries advances the lane for steps steps and returns the mean
// velocity v̄(t) after each step — the simulation variable used throughout
// §IV of the paper (Figs 6 and 7).
func RunVelocitySeries(l *Lane, steps int) []float64 {
	series := make([]float64, steps)
	for i := 0; i < steps; i++ {
		l.Step()
		series[i] = l.MeanVelocity()
	}
	return series
}

// SpaceTime records the occupancy of the lane over a window of steps: one
// row per step, each row the site vector with vehicle velocities (or -1 for
// empty sites). This is the raw data behind the space-time plots of Fig. 5.
func SpaceTime(l *Lane, steps int) [][]int {
	rows := make([][]int, steps)
	for i := 0; i < steps; i++ {
		l.Step()
		rows[i] = l.Occupancy(nil)
	}
	return rows
}

// FundamentalPoint runs a lane for warmup+measure steps and returns the
// time-averaged flow J over the measurement window. Fig. 4 averages this
// over an ensemble of trials.
func FundamentalPoint(l *Lane, warmup, measure int) float64 {
	for i := 0; i < warmup; i++ {
		l.Step()
	}
	sum := 0.0
	for i := 0; i < measure; i++ {
		l.Step()
		sum += l.Flow()
	}
	if measure == 0 {
		return 0
	}
	return sum / float64(measure)
}
