package ca

import (
	"math/rand"
	"testing"
)

func benchLane(b *testing.B, rho, p float64) *Lane {
	b.Helper()
	lane, err := NewLane(Config{
		Length:    1000,
		Vehicles:  int(rho * 1000),
		SlowdownP: p,
		Placement: RandomPlacement,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return lane
}

func BenchmarkLaneStepFreeFlow(b *testing.B) {
	lane := benchLane(b, 0.1, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lane.Step()
	}
}

func BenchmarkLaneStepCongested(b *testing.B) {
	lane := benchLane(b, 0.5, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lane.Step()
	}
}

func BenchmarkLaneStepDeterministic(b *testing.B) {
	lane := benchLane(b, 0.2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lane.Step()
	}
}

func BenchmarkOccupancySnapshot(b *testing.B) {
	lane := benchLane(b, 0.3, 0.3)
	buf := make([]int, lane.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = lane.Occupancy(buf)
	}
}

func BenchmarkLaneWithSignal(b *testing.B) {
	lane := benchLane(b, 0.3, 0.3)
	if err := lane.AddSignal(Signal{Site: 500, GreenSteps: 30, RedSteps: 30}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lane.Step()
	}
}
