package ca

import (
	"math"
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
)

func TestRoadValidation(t *testing.T) {
	if _, err := NewRoad(nil, nil); err == nil {
		t.Fatal("empty road must error")
	}
	if _, err := NewRoad([]LaneSpec{{Config: Config{Length: -1}}}, nil); err == nil {
		t.Fatal("bad lane config must propagate")
	}
}

func twoLaneRoad(t *testing.T) *Road {
	t.Helper()
	specs := []LaneSpec{
		{
			Config:    Config{Length: 100, Vehicles: 10, SlowdownP: 0.3},
			Placement: geometry.Line{Transform: geometry.Translate(0, 0)},
		},
		{
			Config:    Config{Length: 100, Vehicles: 8, SlowdownP: 0.3},
			Placement: geometry.Line{Transform: geometry.Translate(0, 10)},
			Reversed:  true,
		},
	}
	road, err := NewRoad(specs, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	return road
}

func TestRoadBasics(t *testing.T) {
	road := twoLaneRoad(t)
	if road.NumLanes() != 2 {
		t.Fatalf("NumLanes = %d", road.NumLanes())
	}
	if road.TotalVehicles() != 18 {
		t.Fatalf("TotalVehicles = %d", road.TotalVehicles())
	}
	road.Step()
	if road.StepCount() != 1 {
		t.Fatalf("StepCount = %d", road.StepCount())
	}
	if road.Lane(0).StepCount() != 1 || road.Lane(1).StepCount() != 1 {
		t.Fatal("Step must advance every lane")
	}
}

func TestRoadGlobalIDs(t *testing.T) {
	road := twoLaneRoad(t)
	if got := road.VehicleGlobalID(0, 3); got != 3 {
		t.Fatalf("lane0 vehicle3 global = %d", got)
	}
	if got := road.VehicleGlobalID(1, 0); got != 10 {
		t.Fatalf("lane1 vehicle0 global = %d, want 10", got)
	}
}

func TestRoadPositions(t *testing.T) {
	road := twoLaneRoad(t)
	ps := road.Positions(nil)
	if len(ps) != 18 {
		t.Fatalf("Positions len = %d", len(ps))
	}
	// Lane 0 vehicles sit at y=0, lane 1 at y=10.
	for i := 0; i < 10; i++ {
		if ps[i].Y != 0 {
			t.Fatalf("lane0 vehicle at %v", ps[i])
		}
	}
	for i := 10; i < 18; i++ {
		if ps[i].Y != 10 {
			t.Fatalf("lane1 vehicle at %v", ps[i])
		}
	}
}

func TestReversedLaneRunsBackward(t *testing.T) {
	// One vehicle per lane, deterministic; the reversed lane's x coordinate
	// must decrease (modulo wraps).
	specs := []LaneSpec{
		{
			Config:    Config{Length: 1000, Vehicles: 1},
			Placement: geometry.Line{Transform: geometry.Identity()},
		},
		{
			Config:    Config{Length: 1000, Vehicles: 1},
			Placement: geometry.Line{Transform: geometry.Translate(0, 5)},
			Reversed:  true,
		},
	}
	road, err := NewRoad(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := road.Positions(nil)
	for s := 0; s < 10; s++ {
		road.Step()
	}
	after := road.Positions(nil)
	if after[0].X <= before[0].X {
		t.Fatalf("forward lane should advance: %v -> %v", before[0], after[0])
	}
	if after[1].X >= before[1].X {
		t.Fatalf("reversed lane should regress: %v -> %v", before[1], after[1])
	}
}

func TestRoadMeanVelocityWeighted(t *testing.T) {
	road := twoLaneRoad(t)
	for s := 0; s < 50; s++ {
		road.Step()
	}
	want := (road.Lane(0).MeanVelocity()*10 + road.Lane(1).MeanVelocity()*8) / 18
	if got := road.MeanVelocity(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanVelocity = %v, want %v", got, want)
	}
}

func TestRoadRingPlacementStaysOnCircle(t *testing.T) {
	circumference := 3000.0
	ring := geometry.Ring{Center: geometry.Vec2{X: 1500, Y: 1500}, Circumference: circumference}
	road, err := NewRoad([]LaneSpec{{
		Config:    Config{Length: 400, Vehicles: 30, SlowdownP: 0.3},
		Placement: ring,
	}}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 100; s++ {
		road.Step()
		for _, p := range road.Positions(nil) {
			if r := p.Dist(ring.Center); math.Abs(r-ring.Radius()) > 1e-6 {
				t.Fatalf("vehicle off circle: radius %v vs %v", r, ring.Radius())
			}
		}
	}
}
