package ca

import (
	"math"
	"math/rand"
	"testing"
)

func TestRunVelocitySeriesLength(t *testing.T) {
	lane := newTestLane(t, Config{Length: 100, Vehicles: 10}, 1)
	s := RunVelocitySeries(lane, 50)
	if len(s) != 50 {
		t.Fatalf("series length = %d", len(s))
	}
	if lane.StepCount() != 50 {
		t.Fatalf("StepCount = %d", lane.StepCount())
	}
}

func TestSpaceTimeShape(t *testing.T) {
	lane := newTestLane(t, Config{Length: 80, Vehicles: 20, SlowdownP: 0.3}, 2)
	rows := SpaceTime(lane, 30)
	if len(rows) != 30 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row) != 80 {
			t.Fatalf("row width = %d", len(row))
		}
		n := 0
		for _, c := range row {
			if c >= 0 {
				n++
			}
		}
		if n != 20 {
			t.Fatalf("row vehicle count = %d, want 20 (conservation)", n)
		}
	}
}

// TestJamWaveMovesBackward checks the defining feature of Fig. 5-b: in the
// congested stochastic regime, jam clusters drift against the driving
// direction. The centroid of stopped vehicles is tracked on the circle and
// its cumulative angular drift over a window must be negative.
func TestJamWaveMovesBackward(t *testing.T) {
	const length = 200
	lane := newTestLane(t, Config{
		Length: length, Vehicles: 100, SlowdownP: 0.3, Placement: RandomPlacement,
	}, 3) // ρ=0.5, p=0.3: deep congestion, persistent jams
	for s := 0; s < 100; s++ {
		lane.Step()
	}
	centroid := func(row []int) (float64, bool) {
		var sx, sy float64
		any := false
		for pos, v := range row {
			if v == 0 {
				theta := 2 * math.Pi * float64(pos) / length
				sx += math.Cos(theta)
				sy += math.Sin(theta)
				any = true
			}
		}
		return math.Atan2(sy, sx), any
	}
	rows := SpaceTime(lane, 120)
	drift := 0.0
	prev, ok := centroid(rows[0])
	if !ok {
		t.Fatal("no stopped vehicles in deep congestion; test ineffective")
	}
	for _, row := range rows[1:] {
		cur, any := centroid(row)
		if !any {
			continue
		}
		d := cur - prev
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d <= -math.Pi {
			d += 2 * math.Pi
		}
		drift += d
		prev = cur
	}
	if drift >= 0 {
		t.Fatalf("jam centroid net drift = %v rad; expected backward (negative)", drift)
	}
}

func TestFundamentalPointFreeFlow(t *testing.T) {
	lane := newTestLane(t, Config{Length: 100, Vehicles: 5}, 1)
	j := FundamentalPoint(lane, 50, 100)
	want := 0.05 * 5.0 // ρ·vmax
	if math.Abs(j-want) > 1e-9 {
		t.Fatalf("free-flow J = %v, want %v", j, want)
	}
}

func TestFundamentalPointZeroMeasure(t *testing.T) {
	lane := newTestLane(t, Config{Length: 100, Vehicles: 5}, 1)
	if j := FundamentalPoint(lane, 10, 0); j != 0 {
		t.Fatalf("J with zero measurement window = %v", j)
	}
}

// TestDeterministicFundamentalPeak pins the known analytical result for the
// deterministic NaS model: J peaks at ρ=1/(vmax+1) with J=vmax/(vmax+1).
func TestDeterministicFundamentalPeak(t *testing.T) {
	const length = 300
	best, bestRho := 0.0, 0.0
	for _, n := range []int{30, 40, 50, 60, 75, 100, 150} {
		lane, err := NewLane(Config{Length: length, Vehicles: n, Placement: RandomPlacement},
			rand.New(rand.NewSource(int64(n))))
		if err != nil {
			t.Fatal(err)
		}
		j := FundamentalPoint(lane, 300, 200)
		if j > best {
			best = j
			bestRho = float64(n) / length
		}
	}
	wantPeak := float64(DefaultVMax) / float64(DefaultVMax+1) // 5/6 ≈ 0.833
	if math.Abs(best-wantPeak) > 0.02 {
		t.Fatalf("peak flow = %v, want ≈%v", best, wantPeak)
	}
	wantRho := 1.0 / float64(DefaultVMax+1) // ≈0.167
	if math.Abs(bestRho-wantRho) > 0.05 {
		t.Fatalf("peak density = %v, want ≈%v", bestRho, wantRho)
	}
}
