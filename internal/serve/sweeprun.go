package serve

import (
	"sync"

	"cavenet/internal/scenario"
)

// StreamEvent is one NDJSON line of a sweep's result stream: a "result"
// line per completed (cell, protocol) run — cached cells stream
// immediately, fresh ones as they land — and one final "done" line.
type StreamEvent struct {
	Type     string                `json:"type"` // "result" | "done"
	Cell     int                   `json:"cell"`
	Scenario string                `json:"scenario,omitempty"`
	Trial    int                   `json:"trial"`
	Protocol scenario.Protocol     `json:"protocol,omitempty"`
	Cached   bool                  `json:"cached,omitempty"`
	Result   *scenario.TrialResult `json:"result,omitempty"`
	// Completed/Total and Error describe the whole sweep on "done" lines.
	Completed int    `json:"completed,omitempty"`
	Total     int    `json:"total,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Status is the JSON shape of GET /sweeps/{id}.
type Status struct {
	ID          string `json:"id"`
	Done        bool   `json:"done"`
	Cells       int    `json:"cells"`
	Protocols   int    `json:"protocols"`
	Total       int    `json:"totalRuns"`
	Completed   int    `json:"completedRuns"`
	CacheHits   int    `json:"cacheHits"`
	CacheMisses int    `json:"cacheMisses"`
	Error       string `json:"error,omitempty"`
}

// sweepRun is the server-side state of one submitted grid. Cell results
// land in an index-addressed matrix (the exp.Map gather discipline), so
// the finished artifact is identical no matter in which order — or from
// which mix of cache and fresh simulation — the runs completed.
type sweepRun struct {
	id   string
	grid *scenario.Grid

	mu     sync.Mutex
	update chan struct{} // closed + replaced on every state change
	cells  [][]scenario.TrialResult
	filled [][]bool
	events []StreamEvent
	done   bool
	err    error

	cacheHits, cacheMisses int
}

func newSweepRun(id string, grid *scenario.Grid) *sweepRun {
	r := &sweepRun{
		id:     id,
		grid:   grid,
		update: make(chan struct{}),
		cells:  make([][]scenario.TrialResult, grid.Cells()),
		filled: make([][]bool, grid.Cells()),
	}
	for j := range r.cells {
		r.cells[j] = make([]scenario.TrialResult, len(grid.Protocols))
		r.filled[j] = make([]bool, len(grid.Protocols))
	}
	return r
}

// notify wakes every stream listener. Callers hold r.mu.
func (r *sweepRun) notify() {
	close(r.update)
	r.update = make(chan struct{})
}

// complete records one (cell, protocol) result and streams it.
func (r *sweepRun) complete(cell, pi int, res scenario.TrialResult, cached bool) {
	name, trial := r.grid.Cell(cell)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled[cell][pi] {
		return
	}
	r.cells[cell][pi] = res
	r.filled[cell][pi] = true
	if cached {
		r.cacheHits++
	} else {
		r.cacheMisses++
	}
	ev := res
	r.events = append(r.events, StreamEvent{
		Type: "result", Cell: cell, Scenario: name, Trial: trial,
		Protocol: r.grid.Protocols[pi], Cached: cached, Result: &ev,
	})
	r.notify()
}

// finish seals the run; err records the lowest-index failure, if any.
func (r *sweepRun) finish(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	r.done = true
	r.err = err
	r.notify()
}

// totalRuns is the grid's (cell × protocol) run count.
func (r *sweepRun) totalRuns() int { return r.grid.Cells() * len(r.grid.Protocols) }

// status snapshots the run for the status endpoint.
func (r *sweepRun) status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		ID:          r.id,
		Done:        r.done,
		Cells:       r.grid.Cells(),
		Protocols:   len(r.grid.Protocols),
		Total:       r.totalRuns(),
		Completed:   len(r.events),
		CacheHits:   r.cacheHits,
		CacheMisses: r.cacheMisses,
	}
	if r.err != nil {
		st.Error = r.err.Error()
	}
	return st
}

// snapshot returns the events from index `from` on, plus the done state
// and the channel that signals the next change — the stream handler's
// wait loop primitive.
func (r *sweepRun) snapshot(from int) (events []StreamEvent, done bool, err error, update <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < len(r.events) {
		events = append(events, r.events[from:]...)
	}
	return events, r.done, r.err, r.update
}

// artifact aggregates the finished matrix into sweep rows. It is only
// valid once every run completed.
func (r *sweepRun) artifact() ([]scenario.SweepRow, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.done {
		return nil, errNotFinished
	}
	if r.err != nil {
		return nil, r.err
	}
	return r.grid.Aggregate(r.cells), nil
}
