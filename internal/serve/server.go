package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"cavenet/internal/exp"
	"cavenet/internal/scenario"
)

var errNotFinished = errors.New("serve: sweep not finished")

// Config tunes a Server. The zero value is usable: every core runs
// jobs, the queue holds 256 cells, and non-streaming requests time out
// after 30 seconds.
type Config struct {
	// Workers caps concurrently running simulation jobs across all
	// sweeps; <= 0 uses every core (the exp.Runner default).
	Workers int
	// QueueDepth bounds admitted-but-unfinished cell jobs; a submission
	// that would exceed it is rejected with 503. Default 256.
	QueueDepth int
	// RequestTimeout bounds non-streaming request handling. Default 30s.
	// The NDJSON stream endpoint is exempt: it lives as long as the sweep
	// and the client connection.
	RequestTimeout time.Duration
	// Log receives request and job lines; nil discards them.
	Log *log.Logger
}

// Server is the experiment service: the scenario catalogue, a bounded
// sweep queue over the deterministic engine, a content-addressed result
// cache, NDJSON result streams, and CLI-identical artifacts.
type Server struct {
	cfg   Config
	gate  *jobGate
	cache *resultCache
	log   *log.Logger

	mu     sync.Mutex
	sweeps map[string]*sweepRun
	order  []string // insertion order, for the sweep index
	nextID int

	met struct {
		sync.Mutex
		jobsDone         uint64
		cacheHits        uint64
		cacheMisses      uint64
		simSecondsServed float64
	}
}

// New builds a Server; Start nothing — plug Handler into an http.Server.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) // the exp.Runner default
	}
	lg := cfg.Log
	if lg == nil {
		lg = log.New(io.Discard, "", 0)
	}
	return &Server{
		cfg:    cfg,
		gate:   newJobGate(cfg.QueueDepth, workers),
		cache:  newResultCache(),
		log:    lg,
		sweeps: make(map[string]*sweepRun),
	}
}

// Drain stops admitting work and waits for outstanding jobs (or ctx).
func (s *Server) Drain(ctx context.Context) error { return s.gate.drain(ctx) }

// sweepRequest is the POST /sweeps body. Unknown fields are rejected:
// a misspelled knob must fail loudly, not silently run the default grid.
type sweepRequest struct {
	Scenarios []string `json:"scenarios"`
	Protocols []string `json:"protocols"`
	Trials    int      `json:"trials"`
	Seed      int64    `json:"seed"`
	Quick     bool     `json:"quick"`
	// Checked defaults to true (the CLI's -check default) when omitted.
	Checked   *bool `json:"checked"`
	Overrides struct {
		TimeSec float64 `json:"timeSec"`
		Nodes   int     `json:"nodes"`
	} `json:"overrides"`
}

// submitResponse is the 202 body of POST /sweeps.
type submitResponse struct {
	ID          string `json:"id"`
	Cells       int    `json:"cells"`
	Protocols   int    `json:"protocols"`
	Total       int    `json:"totalRuns"`
	CachedRuns  int    `json:"cachedRuns"`
	FreshRuns   int    `json:"freshRuns"`
	CodeVersion string `json:"codeVersion"`
}

// catalogueEntry is one GET /scenarios row.
type catalogueEntry struct {
	Name        string            `json:"name"`
	Description string            `json:"description"`
	Protocol    scenario.Protocol `json:"protocol"`
	Vehicles    int               `json:"vehicles"`
	SimTimeSec  float64           `json:"simTimeSec"`
	Flows       int               `json:"flows"`
	Urban       bool              `json:"urban"`
	Heavy       bool              `json:"heavy"`
	SpecHash    string            `json:"specHash"`
}

// Handler returns the service's routing table. Every non-streaming
// route is wrapped in a request timeout; all routes are logged.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	timed := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, s.cfg.RequestTimeout, "request timed out\n")
	}
	mux.Handle("GET /healthz", timed(s.handleHealthz))
	mux.Handle("GET /metrics", timed(s.handleMetrics))
	mux.Handle("GET /scenarios", timed(s.handleScenarios))
	mux.Handle("POST /sweeps", timed(s.handleSubmit))
	mux.Handle("GET /sweeps", timed(s.handleSweepIndex))
	mux.Handle("GET /sweeps/{id}", timed(s.handleSweepStatus))
	mux.Handle("GET /sweeps/{id}/artifact", timed(s.handleArtifact))
	// The stream outlives any fixed timeout by design (it follows a
	// running sweep) and TimeoutHandler would buffer it besides.
	mux.Handle("GET /sweeps/{id}/stream", http.HandlerFunc(s.handleStream))
	return s.logged(mux)
}

// logged records method, path, status and duration per request.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		lw := &loggingWriter{ResponseWriter: w}
		next.ServeHTTP(lw, r)
		status := lw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.log.Printf("%s %s %d %dB %s", r.Method, r.URL.Path, status, lw.bytes, time.Since(start).Round(time.Microsecond))
	})
}

type loggingWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *loggingWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *loggingWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Flush keeps the NDJSON stream flushable through the logging wrapper.
func (w *loggingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// httpError answers with a JSON error document — the daemon's 4xx/5xx
// contract: every failure is a response, never a process exit.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	specs := scenario.Specs()
	out := make([]catalogueEntry, 0, len(specs))
	for _, sp := range specs {
		h, err := sp.Hash()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "hashing %s: %v", sp.Name, err)
			return
		}
		out = append(out, catalogueEntry{
			Name:        sp.Name,
			Description: sp.Description,
			Protocol:    sp.Protocol,
			Vehicles:    sp.TotalVehicles(),
			SimTimeSec:  sp.SimTime.Seconds(),
			Flows:       len(sp.Flows),
			Urban:       sp.Urban(),
			Heavy:       sp.Heavy,
			SpecHash:    h,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// cellPlan is the submit-time cache partition of one cell: which
// protocol-axis entries are already content-addressed and which must run.
type cellPlan struct {
	cached  map[int]scenario.TrialResult // protocol index -> cached result
	missing []int                        // protocol indexes to simulate
	keys    []string                     // cache key per protocol index
	simSec  float64                      // per-run simulated seconds
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding sweep request: %v", err)
		return
	}
	protocols := make([]scenario.Protocol, 0, len(req.Protocols))
	for _, p := range req.Protocols {
		parsed, err := scenario.ParseProtocol(p)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		protocols = append(protocols, parsed)
	}
	checked := true
	if req.Checked != nil {
		checked = *req.Checked
	}
	grid, err := scenario.NewGrid(scenario.SweepConfig{
		Scenarios:       req.Scenarios,
		Protocols:       protocols,
		Trials:          req.Trials,
		Seed:            req.Seed,
		Shrunk:          req.Quick,
		Checked:         checked,
		OverrideTimeSec: req.Overrides.TimeSec,
		OverrideNodes:   req.Overrides.Nodes,
	})
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Partition the grid against the cache before admitting anything:
	// cached runs are answered from memory and only the misses compete
	// for queue slots.
	plans := make([]cellPlan, grid.Cells())
	var hits, misses int
	for j := range plans {
		base, err := grid.CellSpec(j)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		plan := cellPlan{cached: make(map[int]scenario.TrialResult), keys: make([]string, len(grid.Protocols)), simSec: base.SimTime.Seconds()}
		for pi, p := range grid.Protocols {
			run := base
			run.Protocol = p
			h, err := run.Hash()
			if err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			key := cacheKey(h, p, base.Seed, grid.Checked)
			plan.keys[pi] = key
			if res, ok := s.cache.get(key); ok {
				plan.cached[pi] = res
				hits++
			} else {
				plan.missing = append(plan.missing, pi)
				misses++
			}
		}
		plans[j] = plan
	}

	// One queue slot per cell that needs fresh simulation.
	var jobs []int
	for j := range plans {
		if len(plans[j].missing) > 0 {
			jobs = append(jobs, j)
		}
	}
	if err := s.gate.admit(len(jobs)); err != nil {
		code := http.StatusServiceUnavailable
		httpError(w, code, "%v", err)
		return
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	run := newSweepRun(id, grid)
	s.sweeps[id] = run
	s.order = append(s.order, id)
	s.mu.Unlock()

	s.met.Lock()
	s.met.cacheHits += uint64(hits)
	s.met.cacheMisses += uint64(misses)
	s.met.Unlock()

	// Cached runs stream immediately, in cell order.
	for j := range plans {
		for pi := range grid.Protocols {
			if res, ok := plans[j].cached[pi]; ok {
				run.complete(j, pi, res, true)
				s.serveSimSeconds(plans[j].simSec)
			}
		}
	}

	s.log.Printf("sweep %s: %d cells, %d runs (%d cached, %d fresh), code %s",
		id, grid.Cells(), run.totalRuns(), hits, misses, codeVersion)

	if len(jobs) == 0 {
		run.finish(nil)
	} else {
		go s.runSweep(run, plans, jobs)
	}

	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:          id,
		Cells:       grid.Cells(),
		Protocols:   len(grid.Protocols),
		Total:       run.totalRuns(),
		CachedRuns:  hits,
		FreshRuns:   misses,
		CodeVersion: codeVersion,
	})
}

// runSweep executes the uncached cells of one sweep on the engine.
// jobs[k] is the cell index of job k; each job runs its cell's missing
// protocol subset under a gate token. A panicking spec fails the sweep,
// not the daemon.
func (s *Server) runSweep(run *sweepRun, plans []cellPlan, jobs []int) {
	var startedMu sync.Mutex
	started := 0
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("serve: sweep %s panicked: %v", run.id, p)
			}
		}()
		_, err = exp.Map(exp.Runner{Workers: s.cfg.Workers}, len(jobs), func(k int) (struct{}, error) {
			startedMu.Lock()
			started++
			startedMu.Unlock()
			s.gate.start()
			defer s.gate.finish()
			j := jobs[k]
			plan := plans[j]
			results, err := run.grid.RunCell(j, protocolSubset(run.grid.Protocols, plan.missing))
			if err != nil {
				return struct{}{}, err
			}
			for i, pi := range plan.missing {
				s.cache.put(plan.keys[pi], results[i])
				run.complete(j, pi, results[i], false)
				s.serveSimSeconds(plan.simSec)
			}
			s.met.Lock()
			s.met.jobsDone++
			s.met.Unlock()
			return struct{}{}, nil
		})
		return err
	}()
	// Jobs skipped after a failure hold admission slots but never start;
	// hand those back so the queue does not leak capacity.
	startedMu.Lock()
	skipped := len(jobs) - started
	startedMu.Unlock()
	s.gate.abandon(skipped)
	if err != nil {
		s.log.Printf("sweep %s: failed: %v", run.id, err)
	} else {
		s.log.Printf("sweep %s: done", run.id)
	}
	run.finish(err)
}

func protocolSubset(axis []scenario.Protocol, idx []int) []scenario.Protocol {
	out := make([]scenario.Protocol, len(idx))
	for i, pi := range idx {
		out[i] = axis[pi]
	}
	return out
}

func (s *Server) serveSimSeconds(sec float64) {
	s.met.Lock()
	s.met.simSecondsServed += sec
	s.met.Unlock()
}

func (s *Server) lookup(id string) (*sweepRun, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	run, ok := s.sweeps[id]
	return run, ok
}

func (s *Server) handleSweepIndex(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if run, ok := s.lookup(id); ok {
			out = append(out, run.status())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, run.status())
}

// handleStream follows a sweep as NDJSON: one "result" line per
// completed (cell, protocol) run, then a single "done" line.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	from := 0
	for {
		events, done, err, update := run.snapshot(from)
		for _, ev := range events {
			if encErr := enc.Encode(ev); encErr != nil {
				return // client went away
			}
		}
		from += len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			final := StreamEvent{Type: "done", Completed: from, Total: run.totalRuns()}
			if err != nil {
				final.Error = err.Error()
			}
			_ = enc.Encode(final)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-update:
		case <-r.Context().Done():
			return
		}
	}
}

// handleArtifact serves the finished sweep table — the same bytes
// `cavenet scenario sweep` prints, because both call the same renderer
// over the same aggregation.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "csv"
	}
	switch strings.ToLower(format) {
	case "csv", "json":
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want csv or json)", format)
		return
	}
	rows, err := run.artifact()
	switch {
	case errors.Is(err, errNotFinished):
		httpError(w, http.StatusConflict, "sweep %s still running", run.id)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "sweep %s failed: %v", run.id, err)
		return
	}
	var buf bytes.Buffer
	if strings.EqualFold(format, "json") {
		err = scenario.WriteSweepJSON(&buf, rows)
		w.Header().Set("Content-Type", "application/json")
	} else {
		err = scenario.WriteSweepCSV(&buf, rows)
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "rendering artifact: %v", err)
		return
	}
	_, _ = w.Write(buf.Bytes())
}

// Metrics is the JSON shape of GET /metrics?format=json.
type Metrics struct {
	JobsQueued       int     `json:"jobsQueued"`
	JobsRunning      int     `json:"jobsRunning"`
	JobsDone         uint64  `json:"jobsDone"`
	CacheHits        uint64  `json:"cacheHits"`
	CacheMisses      uint64  `json:"cacheMisses"`
	CacheEntries     int     `json:"cacheEntries"`
	SimSecondsServed float64 `json:"simSecondsServed"`
	Sweeps           int     `json:"sweeps"`
	CodeVersion      string  `json:"codeVersion"`
}

// SnapshotMetrics returns the service counters (also the /metrics body).
func (s *Server) SnapshotMetrics() Metrics {
	queued, running := s.gate.counts()
	s.mu.Lock()
	sweeps := len(s.sweeps)
	s.mu.Unlock()
	s.met.Lock()
	defer s.met.Unlock()
	return Metrics{
		JobsQueued:       queued,
		JobsRunning:      running,
		JobsDone:         s.met.jobsDone,
		CacheHits:        s.met.cacheHits,
		CacheMisses:      s.met.cacheMisses,
		CacheEntries:     s.cache.len(),
		SimSecondsServed: s.met.simSecondsServed,
		Sweeps:           sweeps,
		CodeVersion:      codeVersion,
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.SnapshotMetrics()
	switch format := r.URL.Query().Get("format"); strings.ToLower(format) {
	case "json":
		writeJSON(w, http.StatusOK, m)
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "cavenet_jobs_queued %d\n", m.JobsQueued)
		fmt.Fprintf(w, "cavenet_jobs_running %d\n", m.JobsRunning)
		fmt.Fprintf(w, "cavenet_jobs_done %d\n", m.JobsDone)
		fmt.Fprintf(w, "cavenet_cache_hits %d\n", m.CacheHits)
		fmt.Fprintf(w, "cavenet_cache_misses %d\n", m.CacheMisses)
		fmt.Fprintf(w, "cavenet_cache_entries %d\n", m.CacheEntries)
		fmt.Fprintf(w, "cavenet_sim_seconds_served %g\n", m.SimSecondsServed)
		fmt.Fprintf(w, "cavenet_sweeps %d\n", m.Sweeps)
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want text or json)", format)
	}
}
