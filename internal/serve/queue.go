package serve

import (
	"context"
	"fmt"
	"sync"
)

// errQueueFull rejects a submission whose cell jobs do not fit in the
// queue; the handler maps it to 503 so a loaded daemon degrades by
// refusing work, never by queueing unboundedly.
var errQueueFull = fmt.Errorf("serve: job queue full")

// jobGate bounds the service's outstanding simulation work. Sweeps run
// their cells on internal/exp worker pools; the gate sits in front:
// admission reserves one slot per uncached cell job (all-or-nothing, so
// a rejected sweep leaves no orphan jobs), and every job start passes
// through the run tokens that cap cross-sweep parallelism.
type jobGate struct {
	mu          sync.Mutex
	cond        *sync.Cond
	outstanding int // admitted jobs not yet finished (queued + running)
	running     int // jobs currently holding a run token
	depth       int // outstanding cap
	tokens      chan struct{}
	draining    bool
}

func newJobGate(depth, workers int) *jobGate {
	g := &jobGate{depth: depth, tokens: make(chan struct{}, workers)}
	g.cond = sync.NewCond(&g.mu)
	for i := 0; i < workers; i++ {
		g.tokens <- struct{}{}
	}
	return g
}

// admit reserves n job slots, or rejects the whole batch: either every
// cell of a sweep is admitted or none is.
func (g *jobGate) admit(n int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return fmt.Errorf("serve: draining, not accepting work")
	}
	if g.outstanding+n > g.depth {
		return errQueueFull
	}
	g.outstanding += n
	return nil
}

// start blocks until a run token is free, marking the job running.
func (g *jobGate) start() {
	<-g.tokens
	g.mu.Lock()
	g.running++
	g.mu.Unlock()
}

// finish releases the job's token and its admission slot.
func (g *jobGate) finish() {
	g.mu.Lock()
	g.running--
	g.outstanding--
	g.cond.Broadcast()
	g.mu.Unlock()
	g.tokens <- struct{}{}
}

// abandon releases admission slots for jobs that will never start (a
// failed sweep skips its remaining cells).
func (g *jobGate) abandon(n int) {
	if n == 0 {
		return
	}
	g.mu.Lock()
	g.outstanding -= n
	g.cond.Broadcast()
	g.mu.Unlock()
}

// counts reports (queued, running) for the metrics endpoint.
func (g *jobGate) counts() (queued, running int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.outstanding - g.running, g.running
}

// drain stops admission and waits until every outstanding job finished
// or the context expires.
func (g *jobGate) drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()

	done := make(chan struct{})
	go func() {
		g.mu.Lock()
		for g.outstanding > 0 {
			g.cond.Wait()
		}
		g.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with %d jobs outstanding: %w", func() int {
			g.mu.Lock()
			defer g.mu.Unlock()
			return g.outstanding
		}(), ctx.Err())
	}
}
