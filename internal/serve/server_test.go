package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cavenet/internal/scenario"
)

// testGrid is the sweep every test submits: the same grid the CLI golden
// test locks (scenario_sweep.golden), so byte-level comparisons are
// meaningful across the whole tool.
const testGrid = `{"scenarios":["highway","sparse"],"protocols":["aodv","dymo"],"trials":2,"seed":1,"quick":true}`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Workers: 2, QueueDepth: 64})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func submitSweep(t *testing.T, ts *httptest.Server, body string) submitResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, buf.String())
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

// followStream reads the NDJSON stream to its done line — the
// deterministic way to wait for a sweep.
func followStream(t *testing.T, ts *httptest.Server, id string) []StreamEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/sweeps/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
		if ev.Type == "done" {
			return events
		}
	}
	t.Fatalf("stream ended without a done line (err=%v)", sc.Err())
	return nil
}

func fetchArtifact(t *testing.T, ts *httptest.Server, id, format string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/sweeps/" + id + "/artifact?format=" + format)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestScenarioCatalogue(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []catalogueEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(scenario.Names()) {
		t.Fatalf("catalogue lists %d scenarios, registry has %d", len(entries), len(scenario.Names()))
	}
	for _, e := range entries {
		if len(e.SpecHash) != 64 {
			t.Errorf("scenario %s: spec hash %q is not a sha256 digest", e.Name, e.SpecHash)
		}
	}
}

// TestSweepLifecycle drives one grid through submit → stream → status →
// artifact, and checks the artifact matches the CLI renderer byte for
// byte.
func TestSweepLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	sub := submitSweep(t, ts, testGrid)
	if sub.Total != 8 || sub.Cells != 4 {
		t.Fatalf("submit accounting: %+v", sub)
	}
	events := followStream(t, ts, sub.ID)
	done := events[len(events)-1]
	if done.Error != "" || done.Completed != 8 || done.Total != 8 {
		t.Fatalf("done line: %+v", done)
	}
	results := 0
	for _, ev := range events[:len(events)-1] {
		if ev.Type != "result" || ev.Result == nil {
			t.Fatalf("unexpected stream event: %+v", ev)
		}
		results++
	}
	if results != 8 {
		t.Fatalf("streamed %d results, want 8", results)
	}

	var st Status
	resp, err := http.Get(ts.URL + "/sweeps/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Completed != 8 || st.Error != "" {
		t.Fatalf("status after done: %+v", st)
	}

	got := fetchArtifact(t, ts, sub.ID, "csv")
	rows, err := scenario.Sweep(scenario.SweepConfig{
		Scenarios: []string{"highway", "sparse"},
		Protocols: []scenario.Protocol{scenario.AODV, scenario.DYMO},
		Trials:    2,
		Seed:      1,
		Shrunk:    true,
		Checked:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := scenario.WriteSweepCSV(&want, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("artifact differs from the CLI renderer:\n--- serve ---\n%s--- cli ---\n%s", got, want.Bytes())
	}
}

// TestCacheHit is the acceptance gate: the same grid submitted twice is
// served wholly from cache — zero new kernel runs — and the artifact is
// byte-identical.
func TestCacheHit(t *testing.T) {
	srv, ts := newTestServer(t)
	first := submitSweep(t, ts, testGrid)
	followStream(t, ts, first.ID)
	firstArtifact := fetchArtifact(t, ts, first.ID, "csv")
	jobsAfterFirst := srv.SnapshotMetrics().JobsDone

	second := submitSweep(t, ts, testGrid)
	if second.CachedRuns != second.Total || second.FreshRuns != 0 {
		t.Fatalf("resubmission not fully cached: %+v", second)
	}
	events := followStream(t, ts, second.ID)
	for _, ev := range events[:len(events)-1] {
		if !ev.Cached {
			t.Fatalf("resubmitted run not served from cache: %+v", ev)
		}
	}
	m := srv.SnapshotMetrics()
	if m.JobsDone != jobsAfterFirst {
		t.Fatalf("resubmission ran %d fresh jobs", m.JobsDone-jobsAfterFirst)
	}
	if m.CacheHits == 0 || m.CacheMisses == 0 {
		t.Fatalf("cache counters did not move: %+v", m)
	}
	secondArtifact := fetchArtifact(t, ts, second.ID, "csv")
	if !bytes.Equal(firstArtifact, secondArtifact) {
		t.Fatal("cached artifact differs from the freshly computed one")
	}

	// A different seed must not hit the cache.
	third := submitSweep(t, ts, strings.Replace(testGrid, `"seed":1`, `"seed":2`, 1))
	if third.CachedRuns != 0 {
		t.Fatalf("different seed hit the cache: %+v", third)
	}
	followStream(t, ts, third.ID)
}

// TestMalformedRequests: every bad input is a 4xx response, never a
// process exit, and never a queued job.
func TestMalformedRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"bad json", "POST", "/sweeps", `{"scenarios":`, http.StatusBadRequest},
		{"unknown field", "POST", "/sweeps", `{"scenario":["highway"]}`, http.StatusBadRequest},
		{"unknown scenario", "POST", "/sweeps", `{"scenarios":["motorway9"]}`, http.StatusBadRequest},
		{"unknown protocol", "POST", "/sweeps", `{"protocols":["ospf"]}`, http.StatusBadRequest},
		{"negative trials", "POST", "/sweeps", `{"scenarios":["highway"],"trials":-3}`, http.StatusBadRequest},
		{"unknown sweep status", "GET", "/sweeps/s999", "", http.StatusNotFound},
		{"unknown sweep artifact", "GET", "/sweeps/s999/artifact", "", http.StatusNotFound},
		{"unknown sweep stream", "GET", "/sweeps/s999/stream", "", http.StatusNotFound},
		{"bad metrics format", "GET", "/metrics?format=xml", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			var msg map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
				t.Fatalf("error body is not the JSON error shape: %v", err)
			}
			if msg["error"] == "" {
				t.Fatal("empty error message")
			}
		})
	}
	if q, r := srv.gate.counts(); q != 0 || r != 0 {
		t.Fatalf("malformed requests left jobs in the gate: queued=%d running=%d", q, r)
	}
}

// TestArtifactFormat rejects unknown formats up front and keeps CSV and
// JSON apart.
func TestArtifactFormat(t *testing.T) {
	_, ts := newTestServer(t)
	sub := submitSweep(t, ts, testGrid)
	followStream(t, ts, sub.ID)
	resp, err := http.Get(ts.URL + "/sweeps/" + sub.ID + "/artifact?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", resp.StatusCode)
	}
	var rows []scenario.SweepRow
	if err := json.Unmarshal(fetchArtifact(t, ts, sub.ID, "json"), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("JSON artifact has %d rows, want 4", len(rows))
	}
}

// TestQueueFull: a submission that does not fit is rejected whole with
// 503 and reserves nothing.
func TestQueueFull(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(testGrid))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if q, r := srv.gate.counts(); q != 0 || r != 0 {
		t.Fatalf("rejected sweep left reservations: queued=%d running=%d", q, r)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	sub := submitSweep(t, ts, testGrid)
	followStream(t, ts, sub.ID)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, counter := range []string{
		"cavenet_jobs_queued", "cavenet_jobs_running", "cavenet_jobs_done",
		"cavenet_cache_hits", "cavenet_cache_misses", "cavenet_sim_seconds_served",
	} {
		if !strings.Contains(text, counter+" ") {
			t.Errorf("metrics text missing %s:\n%s", counter, text)
		}
	}
	if !strings.Contains(text, "cavenet_jobs_done 4") {
		t.Errorf("metrics should report 4 finished cell jobs:\n%s", text)
	}

	var m Metrics
	resp2, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.SimSecondsServed <= 0 {
		t.Errorf("sim seconds served not accounted: %+v", m)
	}
	if m.CodeVersion == "" {
		t.Error("metrics omit the code version")
	}
}

// TestDrainRejectsNewWork: after Drain starts, submissions are refused
// but finished sweeps remain readable.
func TestDrainRejectsNewWork(t *testing.T) {
	srv, ts := newTestServer(t)
	sub := submitSweep(t, ts, testGrid)
	followStream(t, ts, sub.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain with idle queue: %v", err)
	}
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(testGrid))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d, want 503", resp.StatusCode)
	}
	if got := fetchArtifact(t, ts, sub.ID, "csv"); len(got) == 0 {
		t.Fatal("artifact unreadable after drain")
	}
}

// TestStreamFollowsLiveRun opens the stream before the sweep finishes
// and still sees every result plus the done line.
func TestStreamFollowsLiveRun(t *testing.T) {
	_, ts := newTestServer(t)
	sub := submitSweep(t, ts, testGrid)
	// Open immediately; the sweep is almost certainly still running.
	events := followStream(t, ts, sub.ID)
	if events[len(events)-1].Completed != sub.Total {
		t.Fatalf("live stream completed %d of %d", events[len(events)-1].Completed, sub.Total)
	}
}
