// Package serve is the CAVENET experiment service: a long-running HTTP
// daemon that exposes the scenario catalogue, accepts (scenario ×
// protocol × seed) sweep grids, schedules their cells on the
// deterministic parallel engine behind a bounded job queue, streams
// per-cell results as NDJSON while a grid runs, and serves finished
// artifacts in the same CSV/JSON dialect the CLI emits.
//
// Because runs are deterministic and specs are normalized, a
// (canonical spec hash, protocol, seed, code version) tuple fully
// determines a cell's result — so the service keeps a content-addressed
// result cache and answers repeated cells with a lookup instead of a
// simulation. Cached and freshly computed responses are byte-identical
// by construction (same TrialResult values through the same renderer);
// the differential tests pin it.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"
	"sync"

	"cavenet/internal/scenario"
)

// codeVersion identifies the running build in cache keys: results are
// only valid as long as the simulator that produced them. Within one
// process the version is constant — the in-memory cache can never serve
// a stale build's result — but keeping it in the key preserves the
// contract for persistent backends.
var codeVersion = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			return rev + dirty
		}
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			return bi.Main.Version
		}
	}
	return "dev"
}()

// CodeVersion reports the build identity mixed into every cache key.
func CodeVersion() string { return codeVersion }

// cacheKey derives the content address of one (cell, protocol) run. The
// spec hash already covers the seed, the protocol and every normalized
// knob; protocol and seed are mixed in redundantly so the key remains
// self-describing, and checked runs key separately from unchecked ones
// (only they carry invariant-violation counts).
func cacheKey(specHash string, p scenario.Protocol, seed int64, checked bool) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%d|%t|%s", specHash, p, seed, checked, codeVersion)))
	return hex.EncodeToString(sum[:])
}

// resultCache is the in-memory content-addressed result store. Entries
// are immutable once written: a key collision can only re-store the
// identical value (determinism), so Put never compares.
type resultCache struct {
	mu sync.RWMutex
	m  map[string]scenario.TrialResult
}

func newResultCache() *resultCache {
	return &resultCache{m: make(map[string]scenario.TrialResult)}
}

func (c *resultCache) get(key string) (scenario.TrialResult, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.m[key]
	return r, ok
}

func (c *resultCache) put(key string, r scenario.TrialResult) {
	c.mu.Lock()
	c.m[key] = r
	c.mu.Unlock()
}

func (c *resultCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
