package phy

import (
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/sim"
)

// recorder is a minimal Handler that logs radio events.
type recorder struct {
	received []*Frame
	powers   []float64
	carrier  []bool
	txDone   int
}

func (r *recorder) RadioReceive(f *Frame, p float64) {
	r.received = append(r.received, f)
	r.powers = append(r.powers, p)
}
func (r *recorder) RadioCarrier(busy bool) { r.carrier = append(r.carrier, busy) }
func (r *recorder) RadioTxDone(*Frame)     { r.txDone++ }

func testChannel(t *testing.T, cfg Config) (*sim.Kernel, *Channel) {
	t.Helper()
	k := sim.NewKernel()
	return k, NewChannel(k, TwoRayGround{}, cfg)
}

func attach(c *Channel, x, y float64) (*Radio, *recorder) {
	r := c.Attach(geometry.Vec2{X: x, Y: y})
	rec := &recorder{}
	r.SetHandler(rec)
	return r, rec
}

func TestDeliveryInRange(t *testing.T) {
	k, c := testChannel(t, Config{})
	tx, _ := attach(c, 0, 0)
	_, rxRec := attach(c, 200, 0)
	tx.Transmit("hello", 100, sim.Millisecond)
	k.Run()
	if len(rxRec.received) != 1 {
		t.Fatalf("received %d frames, want 1", len(rxRec.received))
	}
	if rxRec.received[0].Payload != "hello" {
		t.Fatalf("payload = %v", rxRec.received[0].Payload)
	}
	if rxRec.powers[0] < c.RxThreshW() {
		t.Fatal("reported power below receive threshold")
	}
}

func TestNoDeliveryBeyondRange(t *testing.T) {
	k, c := testChannel(t, Config{})
	tx, _ := attach(c, 0, 0)
	_, nearRec := attach(c, 400, 0) // between RX (250) and CS (550) range
	_, farRec := attach(c, 600, 0)  // beyond CS range
	tx.Transmit("x", 100, sim.Millisecond)
	k.Run()
	if len(nearRec.received) != 0 {
		t.Fatal("node inside CS but outside RX range must not decode")
	}
	if len(nearRec.carrier) == 0 {
		t.Fatal("node inside CS range must sense the carrier")
	}
	if len(farRec.received) != 0 || len(farRec.carrier) != 0 {
		t.Fatal("node beyond CS range must hear nothing")
	}
}

func TestCarrierTransitions(t *testing.T) {
	k, c := testChannel(t, Config{})
	tx, _ := attach(c, 0, 0)
	_, rec := attach(c, 100, 0)
	tx.Transmit("x", 100, sim.Millisecond)
	k.Run()
	if len(rec.carrier) != 2 || rec.carrier[0] != true || rec.carrier[1] != false {
		t.Fatalf("carrier transitions = %v, want [true false]", rec.carrier)
	}
}

func TestTxDoneNotification(t *testing.T) {
	k, c := testChannel(t, Config{})
	tx, txRec := attach(c, 0, 0)
	tx.Transmit("x", 10, sim.Millisecond)
	if !tx.Transmitting() {
		t.Fatal("radio should report Transmitting during tx")
	}
	k.Run()
	if tx.Transmitting() {
		t.Fatal("radio still transmitting after completion")
	}
	if txRec.txDone != 1 {
		t.Fatalf("txDone = %d", txRec.txDone)
	}
}

func TestCollisionCorruptsBoth(t *testing.T) {
	k, c := testChannel(t, Config{})
	a, _ := attach(c, 0, 0)
	b, _ := attach(c, 100, 0)
	_, mid := attach(c, 50, 0) // equidistant: comparable powers
	a.Transmit("A", 100, sim.Millisecond)
	b.Transmit("B", 100, sim.Millisecond)
	k.Run()
	if len(mid.received) != 0 {
		t.Fatalf("middle node decoded %d frames from a collision", len(mid.received))
	}
	_, _, collided := c.Stats()
	if collided == 0 {
		t.Fatal("collision counter should be non-zero")
	}
}

func TestCaptureStrongerFrameSurvives(t *testing.T) {
	k, c := testChannel(t, Config{CaptureRatio: 10})
	near, _ := attach(c, 10, 0) // very close to receiver: strong
	far, _ := attach(c, 240, 0) // near edge of range: weak
	_, rx := attach(c, 0, 0)
	// Weak frame starts first, strong frame arrives during reception and
	// captures the receiver.
	far.Transmit("weak", 100, sim.Millisecond)
	k.Schedule(100*sim.Microsecond, func() {
		near.Transmit("strong", 100, sim.Millisecond)
	})
	k.Run()
	if len(rx.received) != 1 || rx.received[0].Payload != "strong" {
		t.Fatalf("capture failed: received %v", payloads(rx.received))
	}
}

func TestCaptureWeakerLateFrameIgnored(t *testing.T) {
	k, c := testChannel(t, Config{CaptureRatio: 10})
	near, _ := attach(c, 10, 0)
	far, _ := attach(c, 240, 0)
	_, rx := attach(c, 0, 0)
	// Strong frame first; weak late arrival must not corrupt it.
	near.Transmit("strong", 100, sim.Millisecond)
	k.Schedule(100*sim.Microsecond, func() {
		far.Transmit("weak", 100, sim.Millisecond)
	})
	k.Run()
	if len(rx.received) != 1 || rx.received[0].Payload != "strong" {
		t.Fatalf("ongoing strong reception lost: received %v", payloads(rx.received))
	}
}

func TestNoCaptureModeBothLost(t *testing.T) {
	k, c := testChannel(t, Config{CaptureRatio: 0})
	near, _ := attach(c, 10, 0)
	far, _ := attach(c, 240, 0)
	_, rx := attach(c, 0, 0)
	near.Transmit("strong", 100, sim.Millisecond)
	k.Schedule(100*sim.Microsecond, func() {
		far.Transmit("weak", 100, sim.Millisecond)
	})
	k.Run()
	if len(rx.received) != 0 {
		t.Fatalf("capture disabled: received %v", payloads(rx.received))
	}
}

func TestHalfDuplexTxDuringRx(t *testing.T) {
	k, c := testChannel(t, Config{})
	a, _ := attach(c, 0, 0)
	b, bRec := attach(c, 100, 0)
	a.Transmit("fromA", 100, sim.Millisecond)
	// b starts transmitting mid-reception: the arriving frame is lost.
	k.Schedule(200*sim.Microsecond, func() {
		b.Transmit("fromB", 100, sim.Millisecond)
	})
	k.Run()
	if len(bRec.received) != 0 {
		t.Fatal("half-duplex radio decoded a frame while transmitting")
	}
}

func TestArrivalDuringOwnTxLost(t *testing.T) {
	k, c := testChannel(t, Config{})
	a, _ := attach(c, 0, 0)
	b, bRec := attach(c, 100, 0)
	b.Transmit("mine", 100, 2*sim.Millisecond)
	k.Schedule(500*sim.Microsecond, func() {
		a.Transmit("late", 10, 100*sim.Microsecond)
	})
	k.Run()
	if len(bRec.received) != 0 {
		t.Fatal("frame arriving during own transmission must be lost")
	}
}

func TestDoubleTransmitPanics(t *testing.T) {
	_, c := testChannel(t, Config{})
	a, _ := attach(c, 0, 0)
	a.Transmit("x", 10, sim.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("transmitting while transmitting must panic")
		}
	}()
	a.Transmit("y", 10, sim.Millisecond)
}

func TestPropagationDelay(t *testing.T) {
	k, c := testChannel(t, Config{})
	tx, _ := attach(c, 0, 0)
	_, rec := attach(c, 250, 0) // ≈834 ns at light speed
	var deliveredAt sim.Time
	wrapped := &hookHandler{inner: rec, onReceive: func() { deliveredAt = k.Now() }}
	c.radios[1].SetHandler(wrapped)
	tx.Transmit("x", 100, sim.Millisecond)
	k.Run()
	wantMin := sim.Millisecond + 800*sim.Nanosecond
	if deliveredAt < wantMin {
		t.Fatalf("delivered at %v, want >= %v (duration + propagation)", deliveredAt, wantMin)
	}
}

func TestNoPropDelayOption(t *testing.T) {
	k, c := testChannel(t, Config{NoPropDelay: true})
	tx, _ := attach(c, 0, 0)
	_, rec := attach(c, 250, 0)
	var deliveredAt sim.Time
	wrapped := &hookHandler{inner: rec, onReceive: func() { deliveredAt = k.Now() }}
	c.radios[1].SetHandler(wrapped)
	tx.Transmit("x", 100, sim.Millisecond)
	k.Run()
	if deliveredAt != sim.Millisecond {
		t.Fatalf("delivered at %v, want exactly the frame duration", deliveredAt)
	}
}

func TestChannelStats(t *testing.T) {
	k, c := testChannel(t, Config{})
	tx, _ := attach(c, 0, 0)
	attach(c, 100, 0)
	attach(c, 150, 0)
	tx.Transmit("x", 100, sim.Millisecond)
	k.Run()
	transmitted, delivered, _ := c.Stats()
	if transmitted != 1 {
		t.Fatalf("transmitted = %d", transmitted)
	}
	if delivered != 2 {
		t.Fatalf("delivered = %d (two receivers in range)", delivered)
	}
}

type hookHandler struct {
	inner     Handler
	onReceive func()
}

func (h *hookHandler) RadioReceive(f *Frame, p float64) {
	h.onReceive()
	h.inner.RadioReceive(f, p)
}
func (h *hookHandler) RadioCarrier(b bool)  { h.inner.RadioCarrier(b) }
func (h *hookHandler) RadioTxDone(f *Frame) { h.inner.RadioTxDone(f) }

func payloads(fs []*Frame) []any {
	var out []any
	for _, f := range fs {
		out = append(out, f.Payload)
	}
	return out
}
