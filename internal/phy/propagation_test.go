package phy

import (
	"math"
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
)

func TestFreeSpaceInverseSquare(t *testing.T) {
	m := FreeSpace{}
	p1 := m.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: 100})
	p2 := m.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: 200})
	if ratio := p1 / p2; math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("doubling distance should quarter power; ratio = %v", ratio)
	}
}

func TestFreeSpaceZeroDistance(t *testing.T) {
	m := FreeSpace{}
	if got := m.RxPower(0.5, geometry.Vec2{X: 3}, geometry.Vec2{X: 3}); got != 0.5 {
		t.Fatalf("zero distance power = %v, want tx power", got)
	}
}

func TestTwoRayGroundFourthPower(t *testing.T) {
	m := TwoRayGround{}
	d0 := m.Crossover() * 2
	p1 := m.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: d0})
	p2 := m.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: 2 * d0})
	if ratio := p1 / p2; math.Abs(ratio-16) > 1e-9 {
		t.Fatalf("beyond crossover, doubling distance should cut power 16×; ratio = %v", ratio)
	}
}

func TestTwoRayGroundFallsBackToFriis(t *testing.T) {
	m := TwoRayGround{}
	fs := FreeSpace{}
	d := m.Crossover() / 2
	got := m.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: d})
	want := fs.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: d})
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("below crossover: %v, want free space %v", got, want)
	}
}

func TestTwoRayCrossoverMatchesNS2(t *testing.T) {
	// With 1.5 m antennas at 914 MHz the classic ns-2 crossover is ≈86 m.
	m := TwoRayGround{}
	if d := m.Crossover(); math.Abs(d-86.14) > 0.5 {
		t.Fatalf("crossover = %v m, want ≈86.1", d)
	}
}

func TestTwoRayMonotoneDecay(t *testing.T) {
	m := TwoRayGround{}
	prev := math.Inf(1)
	for d := 10.0; d < 1000; d += 5 {
		p := m.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: d})
		if p > prev {
			t.Fatalf("power increased at %v m", d)
		}
		prev = p
	}
}

func TestNS2DefaultThresholds(t *testing.T) {
	// The famous ns-2 numbers: 0.28183815 W transmit power gives
	// RXThresh ≈ 3.652e-10 W at 250 m under two-ray ground.
	m := TwoRayGround{}
	got := PowerAtRange(m, 0.28183815, 250)
	if math.Abs(got-3.652e-10) > 0.01e-10 {
		t.Fatalf("power at 250 m = %e, want ≈3.652e-10", got)
	}
	cs := PowerAtRange(m, 0.28183815, 550)
	if math.Abs(cs-1.559e-11) > 0.01e-11 {
		t.Fatalf("power at 550 m = %e, want ≈1.559e-11", cs)
	}
}

func TestShadowingMeanFollowsPathLoss(t *testing.T) {
	// With many samples the dB-domain mean must match the deterministic
	// path-loss line.
	rnd := rand.New(rand.NewSource(1))
	m := Shadowing{Beta: 2.7, SigmaDB: 6, Rnd: rnd}
	det := Shadowing{Beta: 2.7, SigmaDB: 6} // nil Rnd: no deviation
	var sumDB float64
	const n = 5000
	for i := 0; i < n; i++ {
		p := m.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: 100})
		sumDB += 10 * math.Log10(p)
	}
	meanDB := sumDB / n
	wantDB := 10 * math.Log10(det.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: 100}))
	if math.Abs(meanDB-wantDB) > 0.5 {
		t.Fatalf("shadowing mean %v dB, want %v dB", meanDB, wantDB)
	}
}

func TestShadowingVariability(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	m := Shadowing{SigmaDB: 8, Rnd: rnd}
	a := m.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: 100})
	b := m.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: 100})
	if a == b {
		t.Fatal("shadowing should randomize per call")
	}
}

func TestShadowingBelowReferenceClamped(t *testing.T) {
	m := Shadowing{}
	a := m.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: 0.1})
	b := m.RxPower(1, geometry.Vec2{}, geometry.Vec2{X: 1})
	if a != b {
		t.Fatalf("distances below d0 should clamp: %v vs %v", a, b)
	}
}
