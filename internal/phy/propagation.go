// Package phy models the wireless physical layer of CAVENET's CPS block:
// propagation (two-ray ground, as in Table I, plus free-space and log-normal
// shadowing for the paper's future-work experiments), a shared broadcast
// channel, and per-radio reception state with carrier sensing, collisions
// and capture.
//
// The constants default to the classic ns-2 wireless configuration the
// paper inherits: 914 MHz radio, 1.5 m antennas, 250 m receive range and
// 550 m carrier-sense range.
package phy

import (
	"math"
	"math/rand"

	"cavenet/internal/geometry"
)

// Speed of light, m/s, used for propagation delay and wavelength.
const lightSpeed = 299_792_458.0

// Propagation computes received power for a transmit power and geometry.
type Propagation interface {
	// RxPower returns the received power in watts when transmitting txW
	// watts from 'from' to 'to'.
	RxPower(txW float64, from, to geometry.Vec2) float64
}

// DistanceMonotone is the optional contract behind the channel's
// spatial-grid culling. A model that reports true guarantees that for any
// distance d beyond a reference distance r, RxPower at d is *strictly
// below* RxPower at r — i.e. power strictly decreases past every range of
// interest. "Never increases" is not enough: a model whose power plateaus
// at the carrier-sense threshold beyond the CS range would satisfy
// non-increase yet still reach radios the grid would cull. Under the
// strict contract, any radio farther away than the carrier-sense range is
// guaranteed below the derived carrier-sense threshold and can be skipped
// without evaluating the model. Models that do not implement the
// interface, or report false (e.g. shadowing with a random component),
// force the channel onto the brute-force oracle path.
type DistanceMonotone interface {
	DistanceMonotone() bool
}

// propIsDistanceMonotone reports whether the model opted into
// distance-based culling.
func propIsDistanceMonotone(m Propagation) bool {
	dm, ok := m.(DistanceMonotone)
	return ok && dm.DistanceMonotone()
}

// FreeSpace is the Friis free-space model:
// Pr = Pt·Gt·Gr·λ² / ((4π·d)²·L).
type FreeSpace struct {
	// Gt, Gr are antenna gains (default 1).
	Gt, Gr float64
	// L is the system loss factor (default 1).
	L float64
	// FreqHz is the carrier frequency (default 914 MHz).
	FreqHz float64
}

func (m FreeSpace) params() (gt, gr, l, lambda float64) {
	gt, gr, l = m.Gt, m.Gr, m.L
	if gt == 0 {
		gt = 1
	}
	if gr == 0 {
		gr = 1
	}
	if l == 0 {
		l = 1
	}
	f := m.FreqHz
	if f == 0 {
		f = 914e6
	}
	return gt, gr, l, lightSpeed / f
}

// DistanceMonotone implements the culling contract: Friis power decays
// strictly with distance.
func (m FreeSpace) DistanceMonotone() bool { return true }

// RxPower implements Propagation.
func (m FreeSpace) RxPower(txW float64, from, to geometry.Vec2) float64 {
	d := from.Dist(to)
	if d == 0 {
		return txW
	}
	gt, gr, l, lambda := m.params()
	den := 4 * math.Pi * d
	return txW * gt * gr * lambda * lambda / (den * den * l)
}

// TwoRayGround is the two-ray ground-reflection model used by the paper
// (Table I): beyond the crossover distance dc = 4π·ht·hr/λ,
// Pr = Pt·Gt·Gr·ht²·hr² / (d⁴·L); below dc it falls back to free space,
// exactly as ns-2 does.
type TwoRayGround struct {
	// Ht, Hr are antenna heights above ground in meters (default 1.5).
	Ht, Hr float64
	// Gt, Gr are antenna gains (default 1).
	Gt, Gr float64
	// L is the system loss factor (default 1).
	L float64
	// FreqHz is the carrier frequency (default 914 MHz).
	FreqHz float64
}

func (m TwoRayGround) params() (ht, hr float64, fs FreeSpace) {
	ht, hr = m.Ht, m.Hr
	if ht == 0 {
		ht = 1.5
	}
	if hr == 0 {
		hr = 1.5
	}
	fs = FreeSpace{Gt: m.Gt, Gr: m.Gr, L: m.L, FreqHz: m.FreqHz}
	return ht, hr, fs
}

// Crossover reports the distance where the model switches from free-space
// to fourth-power attenuation.
func (m TwoRayGround) Crossover() float64 {
	ht, hr, fs := m.params()
	_, _, _, lambda := fs.params()
	return 4 * math.Pi * ht * hr / lambda
}

// DistanceMonotone implements the culling contract: both branches decay
// with distance and the model is continuous at the crossover.
func (m TwoRayGround) DistanceMonotone() bool { return true }

// RxPower implements Propagation.
func (m TwoRayGround) RxPower(txW float64, from, to geometry.Vec2) float64 {
	d := from.Dist(to)
	ht, hr, fs := m.params()
	if d < m.Crossover() {
		return fs.RxPower(txW, from, to)
	}
	gt, gr, l, _ := fs.params()
	return txW * gt * gr * ht * ht * hr * hr / (d * d * d * d * l)
}

// Shadowing is the log-normal shadowing model of the paper's future-work
// references [18][19]: mean path loss with exponent Beta relative to a
// reference distance, plus a zero-mean Gaussian deviation of SigmaDB
// decibels sampled per (transmission, receiver) pair.
type Shadowing struct {
	// Beta is the path-loss exponent (default 2.7, a typical outdoor value).
	Beta float64
	// SigmaDB is the shadowing standard deviation in dB (default 4).
	SigmaDB float64
	// RefDist is the reference distance d0 in meters (default 1).
	RefDist float64
	// Ref computes the mean power at RefDist (default free space at 914 MHz).
	Ref Propagation
	// Rnd supplies the Gaussian deviations; must be non-nil unless SigmaDB
	// is zero.
	Rnd *rand.Rand
}

// DistanceMonotone implements the culling contract. With a random source
// the sampled deviation can lift far-away receivers above threshold, so
// culling is only sound in the deterministic (mean path loss) setting.
func (m Shadowing) DistanceMonotone() bool { return m.Rnd == nil }

// RxPower implements Propagation.
func (m Shadowing) RxPower(txW float64, from, to geometry.Vec2) float64 {
	beta := m.Beta
	if beta == 0 {
		beta = 2.7
	}
	d0 := m.RefDist
	if d0 == 0 {
		d0 = 1
	}
	ref := m.Ref
	if ref == nil {
		ref = FreeSpace{}
	}
	d := from.Dist(to)
	if d < d0 {
		d = d0
	}
	pr0 := ref.RxPower(txW, geometry.Vec2{}, geometry.Vec2{X: d0})
	meanDB := 10*math.Log10(pr0) - 10*beta*math.Log10(d/d0)
	sigma := m.SigmaDB
	if sigma == 0 {
		sigma = 4
	}
	dev := 0.0
	if m.Rnd != nil {
		dev = m.Rnd.NormFloat64() * sigma
	}
	return math.Pow(10, (meanDB+dev)/10)
}

// PowerAtRange computes the received power at the given distance under the
// model — used to derive receive/carrier-sense thresholds from the paper's
// 250 m / 550 m ranges instead of hard-coding magic watts.
func PowerAtRange(m Propagation, txW, rangeM float64) float64 {
	return m.RxPower(txW, geometry.Vec2{}, geometry.Vec2{X: rangeM})
}
