package phy

import (
	"fmt"
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/sim"
)

// benchStrip builds a constant-density highway strip: nodes 40 m apart on
// average along a 1.5 km-wide corridor, so a carrier-sense disc always
// covers a few dozen radios no matter how large N grows. This is the shape
// where all-pairs interference evaluation dominates large scenarios.
func benchStrip(n int, cfg Config) (*sim.Kernel, *Channel, []*Radio) {
	rnd := rand.New(rand.NewSource(1))
	k := sim.NewKernel()
	c := NewChannel(k, TwoRayGround{}, cfg)
	radios := make([]*Radio, n)
	length := float64(n) * 40
	for i := range radios {
		radios[i] = c.Attach(geometry.Vec2{
			X: rnd.Float64() * length,
			Y: rnd.Float64() * 1500,
		})
	}
	return k, c, radios
}

// BenchmarkChannelBroadcast measures one broadcast frame through the PHY —
// schedule arrivals, run signal start/end — at highway densities. The
// "brute" variants are the pre-culling O(N) sweep per transmission and
// serve as the before numbers in PERF.md.
func BenchmarkChannelBroadcast(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		for _, mode := range []struct {
			name  string
			brute bool
		}{{"grid", false}, {"brute", true}} {
			b.Run(fmt.Sprintf("%s/N=%d", mode.name, n), func(b *testing.B) {
				k, _, radios := benchStrip(n, Config{CaptureRatio: 10, BruteForce: mode.brute})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					radios[i%n].Transmit("payload", 512, 100*sim.Microsecond)
					k.Run()
				}
			})
		}
	}
}

// BenchmarkChannelMobilityTick measures the incremental spatial-index
// update cost of moving every radio a few meters (same-cell fast path).
func BenchmarkChannelMobilityTick(b *testing.B) {
	const n = 10000
	_, _, radios := benchStrip(n, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range radios {
			p := r.Position()
			p.X += 2.5
			r.SetPosition(p)
		}
	}
}
