package phy

import (
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/sim"
)

// runRandomScenario drives a scripted random 200-node broadcast scenario —
// bursty transmissions plus mid-run mobility — and returns the channel
// counters. The script consumes the RNG identically regardless of the
// culling mode, so the grid-culled run and the brute-force oracle must
// produce bit-identical statistics.
func runRandomScenario(t *testing.T, seed int64, brute bool) (transmitted, delivered, collided uint64) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	k := sim.NewKernel()
	c := NewChannel(k, TwoRayGround{}, Config{CaptureRatio: 10, BruteForce: brute})
	if c.Culling() == brute {
		t.Fatalf("Culling() = %v with BruteForce=%v", c.Culling(), brute)
	}
	const n = 200
	radios := make([]*Radio, n)
	randPos := func() geometry.Vec2 {
		// A 6×1.5 km strip: several carrier-sense cells long, so culling
		// actually skips radios, with enough density for collisions.
		return geometry.Vec2{X: rnd.Float64() * 6000, Y: rnd.Float64() * 1500}
	}
	for i := range radios {
		radios[i] = c.Attach(randPos())
	}
	horizon := 2 * sim.Second
	for s := 0; s < 600; s++ {
		at := sim.Time(rnd.Int63n(int64(horizon)))
		r := radios[rnd.Intn(n)]
		dur := sim.Time(rnd.Int63n(int64(2*sim.Millisecond))) + 100*sim.Microsecond
		k.Schedule(at, func() {
			// A radio may already be mid-transmission when its slot
			// arrives; the skip decision depends only on scripted state,
			// so both modes skip identically.
			if !r.Transmitting() {
				r.Transmit("payload", 512, dur)
			}
		})
	}
	for s := 0; s < 120; s++ {
		at := sim.Time(rnd.Int63n(int64(horizon)))
		r := radios[rnd.Intn(n)]
		p := randPos()
		k.Schedule(at, func() { r.SetPosition(p) })
	}
	k.Run()
	return c.Stats()
}

// TestChannelGridMatchesBruteForce is the oracle check behind the
// spatial-culling fast path: identical Channel.Stats() on a random
// 200-node scenario, across several seeds.
func TestChannelGridMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		gt, gd, gc := runRandomScenario(t, seed, false)
		bt, bd, bc := runRandomScenario(t, seed, true)
		if gt != bt || gd != bd || gc != bc {
			t.Fatalf("seed %d: grid stats (%d,%d,%d) != brute-force stats (%d,%d,%d)",
				seed, gt, gd, gc, bt, bd, bc)
		}
		if gd == 0 || gc == 0 {
			t.Fatalf("seed %d: degenerate scenario (delivered=%d collided=%d), tighten the script",
				seed, gd, gc)
		}
	}
}

// TestChannelShadowingFallsBackToBruteForce pins the safety rail: a
// propagation model with a random component must not be distance-culled.
func TestChannelShadowingFallsBackToBruteForce(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, Shadowing{Rnd: rand.New(rand.NewSource(1))}, Config{})
	if c.Culling() {
		t.Fatal("randomized shadowing must disable spatial culling")
	}
	c = NewChannel(k, Shadowing{}, Config{})
	if !c.Culling() {
		t.Fatal("deterministic shadowing should allow spatial culling")
	}
}

// TestRadioSetPositionMovesCoverage checks deliveries follow a moved radio:
// out of range silence, back in range reception.
func TestRadioSetPositionMovesCoverage(t *testing.T) {
	k, c := testChannel(t, Config{})
	tx, _ := attach(c, 0, 0)
	rx, rec := attach(c, 200, 0)
	tx.Transmit("a", 100, sim.Millisecond)
	k.Run()
	if len(rec.received) != 1 {
		t.Fatalf("in range: received %d, want 1", len(rec.received))
	}
	rx.SetPosition(geometry.Vec2{X: 5000})
	tx.Transmit("b", 100, sim.Millisecond)
	k.Run()
	if len(rec.received) != 1 {
		t.Fatalf("moved out of range: received %d, want still 1", len(rec.received))
	}
	rx.SetPosition(geometry.Vec2{X: 150})
	tx.Transmit("c", 100, sim.Millisecond)
	k.Run()
	if len(rec.received) != 2 || rec.received[1].Payload != "c" {
		t.Fatalf("moved back in range: received %v", rec.received)
	}
}

// TestEachNearRxReentrant pins that a visit callback may itself query the
// channel without corrupting the outer iteration.
func TestEachNearRxReentrant(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, TwoRayGround{}, Config{})
	for i := 0; i < 20; i++ {
		c.Attach(geometry.Vec2{X: float64(i) * 30})
	}
	flat := 0
	if !c.EachNearRx(geometry.Vec2{X: 300}, func(*Radio) { flat++ }) {
		t.Fatal("culling unexpectedly disabled")
	}
	outer, inner := 0, 0
	c.EachNearRx(geometry.Vec2{X: 300}, func(r *Radio) {
		outer++
		c.EachNearRx(r.Position(), func(*Radio) { inner++ })
	})
	if outer != flat {
		t.Fatalf("outer visit count %d changed under nesting, want %d", outer, flat)
	}
	if inner == 0 {
		t.Fatal("nested queries visited nothing")
	}
}
