package phy

import (
	"fmt"
	"math"
	"math/rand"

	"cavenet/internal/geometry"
	"cavenet/internal/sim"
	"cavenet/internal/spatial"
)

// Frame is one physical-layer transmission unit. Payload is opaque to the
// PHY (the MAC frame).
type Frame struct {
	ID       uint64
	Bytes    int
	Duration sim.Time
	Payload  any
}

// Config sets the channel-wide radio parameters.
type Config struct {
	// TxPowerW is the transmit power in watts (ns-2 default 0.28183815 W,
	// which yields 250 m range under two-ray ground).
	TxPowerW float64
	// RxRangeM is the intended decode range in meters; the receive
	// threshold is the model's power at this distance (Table I: 250 m).
	RxRangeM float64
	// CSRangeM is the carrier-sense range (ns-2 default 550 m).
	CSRangeM float64
	// CaptureRatio is the linear power ratio above which a stronger frame
	// survives a collision (ns-2 default 10 = 10 dB). Zero disables capture:
	// any overlap corrupts both frames.
	CaptureRatio float64
	// PropDelay enables speed-of-light propagation delay (default on; the
	// ablation bench turns it off to measure its cost).
	NoPropDelay bool
	// BruteForce disables the spatial-grid interference culling and visits
	// every attached radio on each transmission. This is the O(N²) oracle
	// path: it is what the grid is differentially tested against, and the
	// fallback for propagation models whose received power is not a
	// monotone function of distance (e.g. randomized shadowing), where
	// distance-based culling could skip a radio the model would reach.
	BruteForce bool
}

func (c *Config) normalize() {
	if c.TxPowerW == 0 {
		c.TxPowerW = 0.28183815
	}
	if c.RxRangeM == 0 {
		c.RxRangeM = 250
	}
	if c.CSRangeM == 0 {
		c.CSRangeM = 550
	}
}

// cullMargin slightly inflates grid query radii so floating-point noise in
// the exact power predicate can never disagree with the distance cull.
const cullMargin = 1.001

// Handler receives radio events. Implemented by the MAC.
type Handler interface {
	// RadioReceive delivers a successfully decoded frame.
	RadioReceive(f *Frame, rxPowerW float64)
	// RadioCarrier notifies carrier-sense transitions (busy=true when the
	// medium at this radio becomes non-idle, false when it clears).
	RadioCarrier(busy bool)
	// RadioTxDone notifies that this radio's own transmission ended.
	RadioTxDone(f *Frame)
}

// Channel is the shared broadcast medium connecting all radios.
type Channel struct {
	kernel      *sim.Kernel
	prop        Propagation
	cfg         Config
	rxThreshW   float64
	csThreshW   float64
	radios      []*Radio
	grid        *spatial.Grid           // nil when running the brute-force oracle
	csCullM     float64                 // grid query radius covering the CS threshold
	rxCullM     float64                 // grid query radius covering the Rx threshold
	nearBuf     []int32                 // Transmit-only grid-query scratch (never re-entered)
	bufPool     [][]int32               // recycled EachNearRx buffers; survives nesting
	sigFree     []*signal               // recycled per-receiver signal records
	impairs     map[[2]int32]impairment // per-pair fault-injected link impairments; nil when none ever set
	impairRnd   *rand.Rand              // loss-draw stream; required before any lossy impairment
	nextFrameID uint64
	transmitted uint64
	delivered   uint64
	collided    uint64
}

// impairment is a fault-injected per-link degradation: gain multiplies the
// received power (from an attenuation in dB), loss is a per-reception
// erasure probability drawn at propagation time.
type impairment struct {
	gain float64
	loss float64
}

// impairKey normalizes an unordered radio-index pair.
func impairKey(a, b int) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{int32(a), int32(b)}
}

// SetImpairRand installs the RNG stream that lossy impairments draw from.
// Draws are consumed at Transmit time in receiver-visit order (grid cell
// order, or attach order on the brute path), which is deterministic, so
// runs with the same impairment schedule replay bit-identically.
func (c *Channel) SetImpairRand(rnd *rand.Rand) { c.impairRnd = rnd }

// SetImpairment installs a loss/attenuation impairment on the unordered
// link (a, b). Attenuation applies before the carrier-sense threshold test,
// so it only ever shrinks the reachable set and grid culling stays
// conservative; loss erases receptions after the threshold. Installing a
// lossy impairment without a prior SetImpairRand is a wiring bug and
// panics.
func (c *Channel) SetImpairment(a, b int, loss, attenDB float64) {
	if loss > 0 && c.impairRnd == nil {
		panic("phy: lossy impairment without SetImpairRand")
	}
	if c.impairs == nil {
		c.impairs = make(map[[2]int32]impairment)
	}
	c.impairs[impairKey(a, b)] = impairment{
		gain: math.Pow(10, -attenDB/10),
		loss: loss,
	}
}

// ClearImpairment removes the impairment on the unordered link (a, b), if
// any.
func (c *Channel) ClearImpairment(a, b int) {
	delete(c.impairs, impairKey(a, b))
}

// NewChannel builds a channel over the given propagation model.
//
// Unless cfg.BruteForce is set and provided the model guarantees power
// monotone in distance (see DistanceMonotone), the channel indexes radio
// positions in a uniform grid with cell size equal to the carrier-sense
// range, so each Transmit visits only the 3×3 cell neighborhood of the
// sender instead of every radio in the world.
func NewChannel(k *sim.Kernel, prop Propagation, cfg Config) *Channel {
	cfg.normalize()
	c := &Channel{
		kernel: k,
		prop:   prop,
		cfg:    cfg,
	}
	c.rxThreshW = PowerAtRange(prop, cfg.TxPowerW, cfg.RxRangeM)
	c.csThreshW = PowerAtRange(prop, cfg.TxPowerW, cfg.CSRangeM)
	if !cfg.BruteForce && propIsDistanceMonotone(prop) {
		c.grid = spatial.NewGrid(cfg.CSRangeM)
		c.csCullM = cfg.CSRangeM * cullMargin
		c.rxCullM = cfg.RxRangeM * cullMargin
	}
	return c
}

// TxPowerW reports the normalized transmit power all thresholds derive
// from; analysis code should read it here rather than re-applying the
// Config defaulting rules.
func (c *Channel) TxPowerW() float64 { return c.cfg.TxPowerW }

// RxThreshW reports the derived receive-power threshold.
func (c *Channel) RxThreshW() float64 { return c.rxThreshW }

// CSThreshW reports the derived carrier-sense threshold.
func (c *Channel) CSThreshW() float64 { return c.csThreshW }

// Culling reports whether the spatial-grid fast path is active.
func (c *Channel) Culling() bool { return c.grid != nil }

// Stats reports cumulative channel counters: frames transmitted, frame
// deliveries (per receiver) and collision-corrupted receptions.
func (c *Channel) Stats() (transmitted, delivered, collided uint64) {
	return c.transmitted, c.delivered, c.collided
}

// Attach registers a new radio at the given position; move it afterwards
// with Radio.SetPosition. The handler must be set via Radio.SetHandler
// before first use.
func (c *Channel) Attach(pos geometry.Vec2) *Radio {
	r := &Radio{
		channel:  c,
		position: pos,
		index:    len(c.radios),
	}
	c.radios = append(c.radios, r)
	if c.grid != nil {
		c.grid.Insert(r.index, pos)
	}
	return r
}

// EachNearRx visits every radio that could possibly receive at or above the
// decode threshold from pos, plus false positives the caller must filter
// with an exact power test. It reports false without visiting anything when
// culling is disabled — the caller must then scan all radios itself.
// The visit callback may re-enter the channel (nested EachNearRx,
// Transmit): each call iterates its own pooled buffer.
func (c *Channel) EachNearRx(pos geometry.Vec2, visit func(*Radio)) bool {
	if c.grid == nil {
		return false
	}
	var buf []int32
	if n := len(c.bufPool); n > 0 {
		buf = c.bufPool[n-1]
		c.bufPool = c.bufPool[:n-1]
	}
	buf = c.grid.Near(buf[:0], pos, c.rxCullM)
	for _, idx := range buf {
		visit(c.radios[idx])
	}
	c.bufPool = append(c.bufPool, buf)
	return true
}

// Transmit broadcasts a frame from radio r. Duration must cover the whole
// frame (preamble + payload at the PHY bitrate); the MAC computes it.
// Transmitting while already transmitting is a MAC bug and panics.
func (c *Channel) Transmit(r *Radio, payload any, bytes int, duration sim.Time) *Frame {
	if r.transmitting {
		panic("phy: radio already transmitting")
	}
	if r.detached {
		panic(fmt.Sprintf("phy: t=%v: detached %v transmitting", c.kernel.Now(), r))
	}
	c.nextFrameID++
	c.transmitted++
	f := &Frame{ID: c.nextFrameID, Bytes: bytes, Duration: duration, Payload: payload}
	r.transmitting = true
	r.busy = true
	src := r.position
	// A transmitting radio cannot decode concurrent arrivals.
	for _, sig := range r.active {
		sig.corrupted = true
	}
	if c.grid != nil {
		// Detached radios are absent from the grid, so the cull skips them.
		c.nearBuf = c.grid.Near(c.nearBuf[:0], src, c.csCullM)
		for _, idx := range c.nearBuf {
			rx := c.radios[idx]
			if rx != r {
				c.propagate(r, rx, f)
			}
		}
	} else {
		for _, rx := range c.radios {
			if rx != r && !rx.detached {
				c.propagate(r, rx, f)
			}
		}
	}
	r.txFrame = f
	c.kernel.AfterArg(duration, txDoneFn, r)
	return f
}

// propagate schedules the arrival of frame f at rx if the received power
// clears the carrier-sense threshold.
func (c *Channel) propagate(tx, rx *Radio, f *Frame) {
	src := tx.position
	rxPos := rx.position
	power := c.prop.RxPower(c.cfg.TxPowerW, src, rxPos)
	var loss float64
	if len(c.impairs) > 0 {
		if imp, ok := c.impairs[impairKey(tx.index, rx.index)]; ok {
			// Attenuation before the threshold test: the impairment only
			// ever reduces power, so the grid cull (a superset of the
			// unimpaired reachable set) remains conservative.
			power *= imp.gain
			loss = imp.loss
		}
	}
	if power < c.csThreshW {
		return
	}
	if loss > 0 && c.impairRnd.Float64() < loss {
		// Erasure model: the reception vanishes entirely rather than
		// arriving corrupted, so it contributes no interference.
		return
	}
	sig := c.newSignal()
	sig.radio = rx
	sig.frame = f
	sig.power = power
	delay := sim.Time(0)
	if !c.cfg.NoPropDelay {
		meters := src.Dist(rxPos)
		delay = sim.Time(meters / lightSpeed * float64(sim.Second))
	}
	c.kernel.AfterArg(delay, signalStartFn, sig)
}

// newSignal takes a signal record from the pool. Records return to the pool
// in signalEnd, after the last reference (the radio's active list) is gone.
func (c *Channel) newSignal() *signal {
	if n := len(c.sigFree); n > 0 {
		sig := c.sigFree[n-1]
		c.sigFree[n-1] = nil
		c.sigFree = c.sigFree[:n-1]
		return sig
	}
	return &signal{}
}

func (c *Channel) releaseSignal(sig *signal) {
	*sig = signal{}
	c.sigFree = append(c.sigFree, sig)
}

// Package-level event callbacks: scheduling these through AfterArg reuses a
// pooled kernel event instead of allocating a closure per signal edge.
var (
	signalStartFn = func(a any) { s := a.(*signal); s.radio.signalStart(s) }
	signalEndFn   = func(a any) { s := a.(*signal); s.radio.signalEnd(s) }
	txDoneFn      = func(a any) {
		r := a.(*Radio)
		f := r.txFrame
		r.txFrame = nil
		r.transmitting = false
		r.busy = len(r.active) > 0
		if r.handler != nil {
			r.handler.RadioTxDone(f)
		}
	}
)

// Radio is one station's attachment to the channel.
type Radio struct {
	channel      *Channel
	position     geometry.Vec2
	handler      Handler
	index        int
	transmitting bool
	busy         bool // carrier state, maintained at every tx/signal edge
	detached     bool
	txFrame      *Frame
	active       []*signal
	decoding     *signal
}

type signal struct {
	radio     *Radio
	frame     *Frame
	power     float64
	pos       int // index in radio.active while listed; enables O(1) removal
	corrupted bool
}

// SetHandler installs the MAC-layer event sink.
func (r *Radio) SetHandler(h Handler) { r.handler = h }

// Transmitting reports whether the radio is currently sending.
func (r *Radio) Transmitting() bool { return r.transmitting }

// CarrierBusy reports whether the medium is sensed busy at this radio
// (own transmission or any in-flight signal above the CS threshold). The
// flag is maintained incrementally at every transmit and signal edge, so
// the DCF's per-slot carrier check is a single field load.
func (r *Radio) CarrierBusy() bool { return r.busy }

// Position reports the radio's current location.
func (r *Radio) Position() geometry.Vec2 { return r.position }

// SetPosition moves the radio, updating the channel's spatial index
// incrementally (a move within the same grid cell is a field store). A
// detached radio still tracks its position — mobility continues while a
// node is down — but stays out of the index until Reattach.
func (r *Radio) SetPosition(p geometry.Vec2) {
	r.position = p
	if r.detached {
		return
	}
	if g := r.channel.grid; g != nil {
		g.Move(r.index, p)
	}
}

// Detached reports whether the radio is currently off the air.
func (r *Radio) Detached() bool { return r.detached }

// Detach takes the radio off the air: it leaves the spatial index, new
// transmissions panic, and in-flight arrivals are discarded on start.
// Signals already being decoded run to completion — their end events are
// scheduled — but the (down) MAC ignores the callbacks. Detaching twice is
// a lifecycle bug and panics.
func (r *Radio) Detach() {
	if r.detached {
		panic(fmt.Sprintf("phy: t=%v: %v already detached", r.channel.kernel.Now(), r))
	}
	r.detached = true
	if g := r.channel.grid; g != nil {
		g.Remove(r.index)
	}
}

// Reattach puts the radio back on the air at its current position.
// Reattaching an attached radio is a lifecycle bug and panics.
func (r *Radio) Reattach() {
	if !r.detached {
		panic(fmt.Sprintf("phy: t=%v: %v not detached", r.channel.kernel.Now(), r))
	}
	r.detached = false
	if g := r.channel.grid; g != nil {
		g.Insert(r.index, r.position)
	}
}

// Index reports the radio's attach-order index on its channel.
func (r *Radio) Index() int { return r.index }

// Transmit broadcasts a frame from this radio; see Channel.Transmit.
func (r *Radio) Transmit(payload any, bytes int, duration sim.Time) *Frame {
	return r.channel.Transmit(r, payload, bytes, duration)
}

func (r *Radio) signalStart(sig *signal) {
	if r.detached {
		// The radio went down while this signal was in flight; a powered-off
		// receiver hears nothing. No end event has been scheduled yet, so
		// the record can return to the pool immediately.
		r.channel.releaseSignal(sig)
		return
	}
	wasBusy := r.busy
	sig.pos = len(r.active)
	r.active = append(r.active, sig)
	r.busy = true

	switch {
	case r.transmitting:
		// Half-duplex: arrivals during our own transmission are lost.
		sig.corrupted = true
	case sig.power < r.channel.rxThreshW:
		// Sensed but not decodable; pure interference. It can still corrupt
		// an ongoing weaker reception below.
		sig.corrupted = true
		if r.decoding != nil && !capturedOver(r.channel.cfg.CaptureRatio, r.decoding.power, sig.power) {
			r.decoding.corrupted = true
		}
	case r.decoding == nil:
		// Check interference from already-active signals.
		strongest := 0.0
		for _, other := range r.active {
			if other != sig && other.power > strongest {
				strongest = other.power
			}
		}
		sig.corrupted = strongest > 0 && !capturedOver(r.channel.cfg.CaptureRatio, sig.power, strongest)
		r.decoding = sig
	default:
		cur := r.decoding
		switch {
		case capturedOver(r.channel.cfg.CaptureRatio, sig.power, cur.power):
			// The newcomer captures the receiver.
			cur.corrupted = true
			sig.corrupted = false
			r.decoding = sig
		case capturedOver(r.channel.cfg.CaptureRatio, cur.power, sig.power):
			// Ongoing reception survives; newcomer is lost.
			sig.corrupted = true
		default:
			// Comparable powers: both are lost.
			cur.corrupted = true
			sig.corrupted = true
		}
	}

	if !wasBusy && r.handler != nil {
		r.handler.RadioCarrier(true)
	}
	r.channel.kernel.AfterArg(sig.frame.Duration, signalEndFn, sig)
}

// capturedOver reports whether a signal with power p survives interference
// of power q under the channel's capture ratio.
func capturedOver(ratio, p, q float64) bool {
	if ratio <= 0 {
		return false
	}
	return p >= ratio*q
}

func (r *Radio) signalEnd(sig *signal) {
	// Swap-remove: the active list is order-free (its only full traversals
	// are the strongest-interferer max in signalStart and the corrupt-all
	// loop in Transmit), so a signal edge costs O(1) regardless of how many
	// signals overlap.
	last := len(r.active) - 1
	if moved := r.active[last]; moved != sig {
		r.active[sig.pos] = moved
		moved.pos = sig.pos
	}
	r.active[last] = nil
	r.active = r.active[:last]
	if r.decoding == sig {
		r.decoding = nil
		if !sig.corrupted && !r.transmitting {
			r.channel.delivered++
			if r.handler != nil {
				r.handler.RadioReceive(sig.frame, sig.power)
			}
		} else if sig.corrupted {
			r.channel.collided++
		}
	}
	r.channel.releaseSignal(sig)
	// Recompute after the receive callback: a handler that synchronously
	// transmitted has already re-set busy, and the clear edge must not fire.
	r.busy = r.transmitting || len(r.active) > 0
	if !r.busy && r.handler != nil {
		r.handler.RadioCarrier(false)
	}
}

// String identifies the radio for diagnostics.
func (r *Radio) String() string { return fmt.Sprintf("radio#%d", r.index) }
