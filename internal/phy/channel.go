package phy

import (
	"fmt"

	"cavenet/internal/geometry"
	"cavenet/internal/sim"
)

// Frame is one physical-layer transmission unit. Payload is opaque to the
// PHY (the MAC frame).
type Frame struct {
	ID       uint64
	Bytes    int
	Duration sim.Time
	Payload  any
}

// Config sets the channel-wide radio parameters.
type Config struct {
	// TxPowerW is the transmit power in watts (ns-2 default 0.28183815 W,
	// which yields 250 m range under two-ray ground).
	TxPowerW float64
	// RxRangeM is the intended decode range in meters; the receive
	// threshold is the model's power at this distance (Table I: 250 m).
	RxRangeM float64
	// CSRangeM is the carrier-sense range (ns-2 default 550 m).
	CSRangeM float64
	// CaptureRatio is the linear power ratio above which a stronger frame
	// survives a collision (ns-2 default 10 = 10 dB). Zero disables capture:
	// any overlap corrupts both frames.
	CaptureRatio float64
	// PropDelay enables speed-of-light propagation delay (default on; the
	// ablation bench turns it off to measure its cost).
	NoPropDelay bool
}

func (c *Config) normalize() {
	if c.TxPowerW == 0 {
		c.TxPowerW = 0.28183815
	}
	if c.RxRangeM == 0 {
		c.RxRangeM = 250
	}
	if c.CSRangeM == 0 {
		c.CSRangeM = 550
	}
}

// Handler receives radio events. Implemented by the MAC.
type Handler interface {
	// RadioReceive delivers a successfully decoded frame.
	RadioReceive(f *Frame, rxPowerW float64)
	// RadioCarrier notifies carrier-sense transitions (busy=true when the
	// medium at this radio becomes non-idle, false when it clears).
	RadioCarrier(busy bool)
	// RadioTxDone notifies that this radio's own transmission ended.
	RadioTxDone(f *Frame)
}

// Channel is the shared broadcast medium connecting all radios.
type Channel struct {
	kernel      *sim.Kernel
	prop        Propagation
	cfg         Config
	rxThreshW   float64
	csThreshW   float64
	radios      []*Radio
	nextFrameID uint64
	transmitted uint64
	delivered   uint64
	collided    uint64
}

// NewChannel builds a channel over the given propagation model.
func NewChannel(k *sim.Kernel, prop Propagation, cfg Config) *Channel {
	cfg.normalize()
	c := &Channel{
		kernel: k,
		prop:   prop,
		cfg:    cfg,
	}
	c.rxThreshW = PowerAtRange(prop, cfg.TxPowerW, cfg.RxRangeM)
	c.csThreshW = PowerAtRange(prop, cfg.TxPowerW, cfg.CSRangeM)
	return c
}

// RxThreshW reports the derived receive-power threshold.
func (c *Channel) RxThreshW() float64 { return c.rxThreshW }

// CSThreshW reports the derived carrier-sense threshold.
func (c *Channel) CSThreshW() float64 { return c.csThreshW }

// Stats reports cumulative channel counters: frames transmitted, frame
// deliveries (per receiver) and collision-corrupted receptions.
func (c *Channel) Stats() (transmitted, delivered, collided uint64) {
	return c.transmitted, c.delivered, c.collided
}

// Attach registers a new radio whose position is read lazily via pos.
// The handler must be set via Radio.SetHandler before first use.
func (c *Channel) Attach(pos func() geometry.Vec2) *Radio {
	r := &Radio{
		channel: c,
		pos:     pos,
		index:   len(c.radios),
	}
	c.radios = append(c.radios, r)
	return r
}

// Transmit broadcasts a frame from radio r. Duration must cover the whole
// frame (preamble + payload at the PHY bitrate); the MAC computes it.
// Transmitting while already transmitting is a MAC bug and panics.
func (c *Channel) Transmit(r *Radio, payload any, bytes int, duration sim.Time) *Frame {
	if r.transmitting {
		panic("phy: radio already transmitting")
	}
	c.nextFrameID++
	c.transmitted++
	f := &Frame{ID: c.nextFrameID, Bytes: bytes, Duration: duration, Payload: payload}
	r.transmitting = true
	src := r.pos()
	// A transmitting radio cannot decode concurrent arrivals.
	for _, sig := range r.active {
		sig.corrupted = true
	}
	for _, rx := range c.radios {
		if rx == r {
			continue
		}
		power := c.prop.RxPower(c.cfg.TxPowerW, src, rx.pos())
		if power < c.csThreshW {
			continue
		}
		rx := rx
		delay := sim.Time(0)
		if !c.cfg.NoPropDelay {
			meters := src.Dist(rx.pos())
			delay = sim.Time(meters / lightSpeed * float64(sim.Second))
		}
		c.kernel.After(delay, func() {
			rx.signalStart(f, power)
		})
	}
	c.kernel.After(duration, func() {
		r.transmitting = false
		if r.handler != nil {
			r.handler.RadioTxDone(f)
		}
	})
	return f
}

// Radio is one station's attachment to the channel.
type Radio struct {
	channel      *Channel
	pos          func() geometry.Vec2
	handler      Handler
	index        int
	transmitting bool
	active       []*signal
	decoding     *signal
}

type signal struct {
	frame     *Frame
	power     float64
	corrupted bool
}

// SetHandler installs the MAC-layer event sink.
func (r *Radio) SetHandler(h Handler) { r.handler = h }

// Transmitting reports whether the radio is currently sending.
func (r *Radio) Transmitting() bool { return r.transmitting }

// CarrierBusy reports whether the medium is sensed busy at this radio
// (own transmission or any in-flight signal above the CS threshold).
func (r *Radio) CarrierBusy() bool {
	return r.transmitting || len(r.active) > 0
}

// Position reports the radio's current location.
func (r *Radio) Position() geometry.Vec2 { return r.pos() }

// Transmit broadcasts a frame from this radio; see Channel.Transmit.
func (r *Radio) Transmit(payload any, bytes int, duration sim.Time) *Frame {
	return r.channel.Transmit(r, payload, bytes, duration)
}

func (r *Radio) signalStart(f *Frame, power float64) {
	sig := &signal{frame: f, power: power}
	wasBusy := r.CarrierBusy()
	r.active = append(r.active, sig)

	switch {
	case r.transmitting:
		// Half-duplex: arrivals during our own transmission are lost.
		sig.corrupted = true
	case power < r.channel.rxThreshW:
		// Sensed but not decodable; pure interference. It can still corrupt
		// an ongoing weaker reception below.
		sig.corrupted = true
		if r.decoding != nil && !capturedOver(r.channel.cfg.CaptureRatio, r.decoding.power, power) {
			r.decoding.corrupted = true
		}
	case r.decoding == nil:
		// Check interference from already-active signals.
		strongest := 0.0
		for _, other := range r.active {
			if other != sig && other.power > strongest {
				strongest = other.power
			}
		}
		sig.corrupted = strongest > 0 && !capturedOver(r.channel.cfg.CaptureRatio, power, strongest)
		r.decoding = sig
	default:
		cur := r.decoding
		switch {
		case capturedOver(r.channel.cfg.CaptureRatio, power, cur.power):
			// The newcomer captures the receiver.
			cur.corrupted = true
			sig.corrupted = false
			r.decoding = sig
		case capturedOver(r.channel.cfg.CaptureRatio, cur.power, power):
			// Ongoing reception survives; newcomer is lost.
			sig.corrupted = true
		default:
			// Comparable powers: both are lost.
			cur.corrupted = true
			sig.corrupted = true
		}
	}

	if !wasBusy && r.CarrierBusy() && r.handler != nil {
		r.handler.RadioCarrier(true)
	}
	r.channel.kernel.After(f.Duration, func() { r.signalEnd(sig) })
}

// capturedOver reports whether a signal with power p survives interference
// of power q under the channel's capture ratio.
func capturedOver(ratio, p, q float64) bool {
	if ratio <= 0 {
		return false
	}
	return p >= ratio*q
}

func (r *Radio) signalEnd(sig *signal) {
	for i, s := range r.active {
		if s == sig {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
	if r.decoding == sig {
		r.decoding = nil
		if !sig.corrupted && !r.transmitting {
			r.channel.delivered++
			if r.handler != nil {
				r.handler.RadioReceive(sig.frame, sig.power)
			}
		} else if sig.corrupted {
			r.channel.collided++
		}
	}
	if !r.CarrierBusy() && r.handler != nil {
		r.handler.RadioCarrier(false)
	}
}

// String identifies the radio for diagnostics.
func (r *Radio) String() string { return fmt.Sprintf("radio#%d", r.index) }
