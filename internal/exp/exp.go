// Package exp is CAVENET's deterministic parallel experiment engine.
//
// The paper's evaluation is built from embarrassingly parallel grids:
// Monte-Carlo ensembles ("each point ... is the ensemble average over 20
// trials", Fig. 4) and protocol × density sweeps over the same CA trace
// (Figs. 8–11). Every trial derives all of its randomness from its own
// rng fork, so trials share no mutable state and can run concurrently —
// as long as parallelism cannot change the answer.
//
// Map provides exactly that contract: jobs are dispatched to a fixed-size
// worker pool in index order and results are gathered into an
// index-addressed slice, so the output — including which error or panic is
// reported when jobs fail — is bit-identical for every worker count,
// including 1. The job function must be safe for concurrent calls and must
// derive everything it does from its index alone.
package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner sizes the worker pool. The zero value uses one worker per
// available CPU, which is the right default for CPU-bound simulation jobs.
type Runner struct {
	// Workers is the number of concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
}

func (r Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// failure records the outcome of the lowest-index failing job. Dispatch is
// strictly index-ordered and every grabbed job runs to completion, so the
// lowest failing index is always executed no matter how many workers race —
// which makes the reported error (or re-raised panic) independent of the
// worker count.
type failure struct {
	idx      int
	err      error
	panicVal any
	panicked bool
}

// Map runs job(0) … job(n-1) on the pool and returns their results in index
// order. On failure it returns the error of the lowest-index failing job;
// a panicking job is re-panicked in the caller with its original value.
// After the first observed failure no new jobs are started.
func Map[T any](r Runner, n int, job func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	w := r.workers()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			v, err := job(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		mu   sync.Mutex
		fail *failure
		stop atomic.Bool
		next atomic.Int64
		wg   sync.WaitGroup
	)
	record := func(f failure) {
		mu.Lock()
		if fail == nil || f.idx < fail.idx {
			fail = &f
		}
		mu.Unlock()
		stop.Store(true)
	}
	runOne := func(i int) {
		defer func() {
			if p := recover(); p != nil {
				record(failure{idx: i, panicVal: p, panicked: true})
			}
		}()
		v, err := job(i)
		if err != nil {
			record(failure{idx: i, err: err})
			return
		}
		out[i] = v
	}
	worker := func() {
		defer wg.Done()
		for {
			if stop.Load() {
				return
			}
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			runOne(i)
		}
	}
	wg.Add(w)
	for i := 0; i < w; i++ {
		go worker()
	}
	wg.Wait()
	if fail != nil {
		if fail.panicked {
			panic(fail.panicVal)
		}
		return nil, fail.err
	}
	return out, nil
}
