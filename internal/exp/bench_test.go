package exp

import "testing"

// BenchmarkMapOverhead measures the engine's fixed cost per job with a
// trivial job body — the serial fraction the pool adds on top of the
// experiment itself. Run with -cpu 1,2,4,8 to size it against GOMAXPROCS.
func BenchmarkMapOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = Map(Runner{}, 64, func(j int) (int, error) { return j, nil })
	}
}

// BenchmarkMapCPUBound runs a compute-heavy job mix; on an M-core machine
// ns/op should fall roughly M× between -cpu 1 and -cpu M (Map defaults its
// worker count to GOMAXPROCS, which -cpu sets).
func BenchmarkMapCPUBound(b *testing.B) {
	work := func(i int) (float64, error) {
		x := float64(i + 1)
		for k := 0; k < 200_000; k++ {
			x = x*1.0000001 + 1e-9
		}
		return x, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Map(Runner{}, 20, work)
	}
}
