package exp

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedAcrossWorkerCounts(t *testing.T) {
	want := make([]int, 500)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got, err := Map(Runner{Workers: workers}, len(want), func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results out of order", workers)
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	got, err := Map(Runner{}, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	// The zero Runner must still run every job exactly once.
	var ran atomic.Int64
	got, err := Map(Runner{}, 100, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if err != nil || len(got) != 100 || ran.Load() != 100 {
		t.Fatalf("got %d results, %d runs, err %v", len(got), ran.Load(), err)
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	// Index 7 fails immediately, index 3 fails slowly: the reported error
	// must still be index 3's, exactly as a sequential run would report,
	// for every worker count.
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(Runner{Workers: workers}, 16, func(i int) (int, error) {
			switch i {
			case 3:
				time.Sleep(10 * time.Millisecond)
				return 0, fmt.Errorf("job %d", i)
			case 7:
				return 0, fmt.Errorf("job %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3" {
			t.Fatalf("workers=%d: err = %v, want job 3", workers, err)
		}
	}
}

func TestMapStopsDispatchAfterError(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(Runner{Workers: 2}, 1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran.Load() > 100 {
		t.Fatalf("ran %d jobs after early failure", ran.Load())
	}
}

func TestMapRepanicsWithOriginalValue(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if p := recover(); p != "harness bug 2" {
					t.Fatalf("workers=%d: recovered %v", workers, p)
				}
			}()
			_, _ = Map(Runner{Workers: workers}, 8, func(i int) (int, error) {
				if i == 2 {
					panic("harness bug 2")
				}
				return i, nil
			})
			t.Fatalf("workers=%d: Map returned instead of panicking", workers)
		}()
	}
}

func TestMapConcurrentWritesAreDisjoint(t *testing.T) {
	// Exercised under -race in CI: each job writes only its own slot.
	got, err := Map(Runner{Workers: 8}, 10_000, func(i int) ([]int, error) {
		return []int{i}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if len(v) != 1 || v[0] != i {
			t.Fatalf("slot %d holds %v", i, v)
		}
	}
}
