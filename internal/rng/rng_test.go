package rng

import "testing"

func TestStreamDeterminism(t *testing.T) {
	a := NewSource(42).Stream("mac/0")
	b := NewSource(42).Stream("mac/0")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, name) must yield identical streams")
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	src := NewSource(42)
	a := src.Stream("mac/0")
	b := src.Stream("mac/1")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams for different names coincide on %d/100 draws", same)
	}
}

func TestSeedChangesStreams(t *testing.T) {
	a := NewSource(1).Stream("x")
	b := NewSource(2).Stream("x")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams for different seeds coincide on %d/100 draws", same)
	}
}

func TestForkDeterministicAndDistinct(t *testing.T) {
	src := NewSource(7)
	f1 := src.Fork(3).Stream("trial")
	f2 := NewSource(7).Fork(3).Stream("trial")
	if f1.Int63() != f2.Int63() {
		t.Fatal("Fork must be deterministic")
	}
	g1 := src.Fork(4).Stream("trial")
	g2 := src.Fork(5).Stream("trial")
	if g1.Int63() == g2.Int63() {
		t.Fatal("different fork indices should give different streams")
	}
}

func TestForkNoCrossSeedCollisions(t *testing.T) {
	// The old affine derivation seed*1_000_003+trial collided exactly here:
	a := NewSource(1).Fork(1_000_003)
	b := NewSource(2).Fork(0)
	if a.Seed() == b.Seed() {
		t.Fatal("Fork(1, 1_000_003) and Fork(2, 0) collide")
	}
	// ... and in general any (seed, trial) pair must map to a distinct
	// child across a sweep-sized grid.
	seen := make(map[int64][2]int, 50*2000)
	for seed := 0; seed < 50; seed++ {
		src := NewSource(int64(seed))
		for trial := 0; trial < 2000; trial++ {
			child := src.Fork(trial).Seed()
			if prev, dup := seen[child]; dup {
				t.Fatalf("fork collision: (%d,%d) and (%d,%d) -> %d",
					prev[0], prev[1], seed, trial, child)
			}
			seen[child] = [2]int{seed, trial}
		}
	}
}

func TestForkStreamsIndependent(t *testing.T) {
	// Adjacent trials must not produce correlated streams: compare draw
	// sequences pairwise and require essentially no coincidences.
	src := NewSource(9)
	for trial := 0; trial < 20; trial++ {
		a := src.Fork(trial).Stream("trial")
		b := src.Fork(trial + 1).Stream("trial")
		same := 0
		for i := 0; i < 200; i++ {
			if a.Int63() == b.Int63() {
				same++
			}
		}
		if same > 1 {
			t.Fatalf("forks %d and %d coincide on %d/200 draws", trial, trial+1, same)
		}
	}
}

func TestNestedForksDistinct(t *testing.T) {
	// Grid forks src.Fork(i).Fork(j) must be distinct across the grid and
	// distinct from single-level forks.
	src := NewSource(4)
	seen := make(map[int64]string)
	for i := 0; i < 30; i++ {
		seen[src.Fork(i).Seed()] = "single"
		for j := 0; j < 30; j++ {
			child := src.Fork(i).Fork(j).Seed()
			if kind, dup := seen[child]; dup {
				t.Fatalf("nested fork (%d,%d) collides with %s fork", i, j, kind)
			}
			seen[child] = "nested"
		}
	}
}

func TestSeedAccessor(t *testing.T) {
	if NewSource(99).Seed() != 99 {
		t.Fatal("Seed() should report the root seed")
	}
}
