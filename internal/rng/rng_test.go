package rng

import "testing"

func TestStreamDeterminism(t *testing.T) {
	a := NewSource(42).Stream("mac/0")
	b := NewSource(42).Stream("mac/0")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, name) must yield identical streams")
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	src := NewSource(42)
	a := src.Stream("mac/0")
	b := src.Stream("mac/1")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams for different names coincide on %d/100 draws", same)
	}
}

func TestSeedChangesStreams(t *testing.T) {
	a := NewSource(1).Stream("x")
	b := NewSource(2).Stream("x")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams for different seeds coincide on %d/100 draws", same)
	}
}

func TestForkDeterministicAndDistinct(t *testing.T) {
	src := NewSource(7)
	f1 := src.Fork(3).Stream("trial")
	f2 := NewSource(7).Fork(3).Stream("trial")
	if f1.Int63() != f2.Int63() {
		t.Fatal("Fork must be deterministic")
	}
	g1 := src.Fork(4).Stream("trial")
	g2 := src.Fork(5).Stream("trial")
	if g1.Int63() == g2.Int63() {
		t.Fatal("different fork indices should give different streams")
	}
}

func TestSeedAccessor(t *testing.T) {
	if NewSource(99).Seed() != 99 {
		t.Fatal("Seed() should report the root seed")
	}
}
