// Package rng provides named, deterministic random-number streams.
//
// Every stochastic component in CAVENET (the NaS slowdown rule, MAC backoff,
// protocol jitter, Monte-Carlo trials) draws from its own stream derived
// from a single scenario seed and a component name. Two runs with the same
// seed are therefore bit-identical, and changing the draw order inside one
// component cannot perturb any other component — the property that makes
// ablation experiments comparable.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Source derives independent streams from a root seed.
type Source struct {
	seed int64
}

// NewSource returns a stream factory rooted at seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed}
}

// Seed reports the root seed.
func (s *Source) Seed() int64 { return s.seed }

// Stream returns a deterministic *rand.Rand for the given component name.
// The same (seed, name) pair always yields the same sequence.
func (s *Source) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	const golden = int64(0x4F1BBCDCBFA53E0B) // odd 63-bit mixing constant
	mixed := int64(h.Sum64()) ^ (s.seed * golden)
	return rand.New(rand.NewSource(mixed))
}

// Fork derives a child Source, e.g. one per Monte-Carlo trial.
func (s *Source) Fork(trial int) *Source {
	return &Source{seed: s.seed*1_000_003 + int64(trial)}
}
