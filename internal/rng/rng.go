// Package rng provides named, deterministic random-number streams.
//
// Every stochastic component in CAVENET (the NaS slowdown rule, MAC backoff,
// protocol jitter, Monte-Carlo trials) draws from its own stream derived
// from a single scenario seed and a component name. Two runs with the same
// seed are therefore bit-identical, and changing the draw order inside one
// component cannot perturb any other component — the property that makes
// ablation experiments comparable.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Source derives independent streams from a root seed.
type Source struct {
	seed int64
}

// NewSource returns a stream factory rooted at seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed}
}

// Seed reports the root seed.
func (s *Source) Seed() int64 { return s.seed }

// Stream returns a deterministic *rand.Rand for the given component name.
// The same (seed, name) pair always yields the same sequence.
func (s *Source) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	const golden = int64(0x4F1BBCDCBFA53E0B) // odd 63-bit mixing constant
	mixed := int64(h.Sum64()) ^ (s.seed * golden)
	return rand.New(rand.NewSource(mixed))
}

// Fork derives a child Source, e.g. one per Monte-Carlo trial. The child
// seed is a splitmix64-style mix of (seed, trial), so distinct
// (seed, trial) pairs map to distinct, decorrelated children — the earlier
// affine derivation seed*1_000_003+trial aliased (1, 1_000_003) with
// (2, 0), silently correlating trials across large sweeps. Forks nest:
// src.Fork(i).Fork(j) is a well-mixed stream for grid cell (i, j).
func (s *Source) Fork(trial int) *Source {
	h := splitmix64(uint64(s.seed))
	h = splitmix64(h + uint64(trial))
	return &Source{seed: int64(h)}
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix generator: a
// bijective avalanche mix whose outputs pass BigCrush even on sequential
// inputs, which is exactly the trial-index shape Fork feeds it.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
