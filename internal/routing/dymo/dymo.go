// Package dymo implements the Dynamic MANET On-demand routing protocol of
// draft-ietf-manet-dymo-14, the third protocol of the paper (§III-B.3).
//
// DYMO keeps AODV's reactive RREQ/RREP discovery and sequence-number loop
// freedom but adds *path accumulation*: every router that forwards a
// routing message appends its own address and sequence number, so receivers
// learn routes to every intermediate hop, not just the originator and
// target — the "major difference between DYMO and AODV" the paper calls
// out. Link breaks trigger RERR messages flooded "to all nodes in range",
// and links are monitored through data-link feedback and HELLOs (Table I
// gives DYMO a 1 s HELLO interval).
package dymo

import (
	"fmt"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// Wire sizes (draft-14 generic packet/message format, approximated).
const (
	rmBaseBytes   = 16
	addrBlockSize = 8
	rerrBase      = 12
	rerrPerAddr   = 8
	helloSize     = 12
)

// AddrBlock is one accumulated (address, sequence number) pair plus the hop
// distance from the message's current transmitter.
type AddrBlock struct {
	Addr netsim.NodeID
	Seq  uint32
	Dist int // hops from this block's node to the current transmitter
}

// RM is a DYMO routing message: RREQ when IsReply is false, RREP otherwise.
type RM struct {
	IsReply        bool
	Target         netsim.NodeID
	TargetSeq      uint32
	TargetSeqKnown bool
	Orig           AddrBlock   // the message originator
	Path           []AddrBlock // accumulated intermediate routers
	HopCount       int
}

func rmBytes(m *RM) int { return rmBaseBytes + (1+len(m.Path))*addrBlockSize }

// RERR reports unreachable destinations; it floods one hop at a time
// through re-broadcasts by routers that had matching routes.
type RERR struct {
	Unreachable []AddrBlock
	HopLimit    int
}

func rerrBytes(n int) int { return rerrBase + n*rerrPerAddr }

// Hello is the neighbor-liveness beacon (draft §4.1; interval per Table I).
type Hello struct {
	Seq uint32
}

// Config holds protocol parameters; zero fields take draft defaults with
// Table I's 1 s HELLO interval.
type Config struct {
	HelloInterval    sim.Time // default 1 s
	AllowedHelloLoss int      // default 2
	RouteTimeout     sim.Time // default 5 s (draft ROUTE_TIMEOUT)
	RREQWaitTime     sim.Time // default 1 s
	RREQTries        int      // default 3
	HopLimit         int      // default 20 (draft MSG_HOPLIMIT)
	BufferCap        int      // default 64 packets per destination
	// PathAccumulation can be disabled for the ablation bench, reducing
	// DYMO to an AODV-like protocol.
	PathAccumulation *bool
	// Oracle routes the routing table through the retained map-based
	// implementation instead of the dense-index fast path. Whole runs are
	// bit-identical between the two (differential run-identity tests);
	// the switch lets any run be replayed against the oracle.
	Oracle bool
}

func (c *Config) normalize() {
	if c.HelloInterval == 0 {
		c.HelloInterval = sim.Second
	}
	if c.AllowedHelloLoss == 0 {
		c.AllowedHelloLoss = 2
	}
	if c.RouteTimeout == 0 {
		c.RouteTimeout = 5 * sim.Second
	}
	if c.RREQWaitTime == 0 {
		c.RREQWaitTime = sim.Second
	}
	if c.RREQTries == 0 {
		c.RREQTries = 3
	}
	if c.HopLimit == 0 {
		c.HopLimit = 20
	}
	if c.BufferCap == 0 {
		c.BufferCap = 64
	}
	if c.PathAccumulation == nil {
		t := true
		c.PathAccumulation = &t
	}
}

// route is a DYMO routing-table entry.
type route struct {
	dst       netsim.NodeID
	seq       uint32
	seqKnown  bool
	hops      int
	nextHop   netsim.NodeID
	expiresAt sim.Time
	valid     bool
}

// discovery tracks one in-progress route discovery. Records (and their
// timers and buffers) are pooled per router: a discovery is only released
// after its timer has been stopped or has fired its final time, so a
// recycled record can never receive a stale callback.
type discovery struct {
	dst     netsim.NodeID
	retries int
	timer   *sim.Timer
	buffer  []*netsim.Packet
}

type seenKey struct {
	orig netsim.NodeID
	seq  uint32
}

// seenHold bounds the RREQ duplicate-suppression memory; entries are
// retired lazily through an expiry heap so the purge tick costs
// O(expired), not O(table).
const seenHold = 10 * sim.Second

// Router is one node's DYMO instance.
type Router struct {
	cfg  Config
	node *netsim.Node

	seq         uint32
	table       routeTable
	discoveries map[netsim.NodeID]*discovery
	discFree    []*discovery
	seen        sim.ExpiringSet[seenKey]
	neighbors   map[netsim.NodeID]*sim.Timer

	// rerrBuf is the reusable RERR collection scratch; floodRERR copies
	// it into an exact-size wire slice, so it never escapes.
	rerrBuf []AddrBlock

	helloTicker *sim.Ticker
	purgeTicker *sim.Ticker

	ctrlPackets uint64
	ctrlBytes   uint64
}

var _ netsim.Router = (*Router)(nil)

// New builds a DYMO router for node.
func New(node *netsim.Node, cfg Config) *Router {
	cfg.normalize()
	r := &Router{
		cfg:         cfg,
		node:        node,
		discoveries: make(map[netsim.NodeID]*discovery),
		neighbors:   make(map[netsim.NodeID]*sim.Timer),
	}
	if cfg.Oracle {
		r.table = newMapTable(node.Kernel(), cfg.RouteTimeout)
	} else {
		r.table = newDenseTable(node.Kernel(), cfg.RouteTimeout)
	}
	jitter := func() sim.Time {
		span := int64(cfg.HelloInterval / 5)
		return sim.Time(node.Rand().Int63n(span) - span/2)
	}
	r.helloTicker = sim.NewTicker(node.Kernel(), cfg.HelloInterval, jitter, r.sendHello)
	r.purgeTicker = sim.NewTicker(node.Kernel(), sim.Second, nil, r.purge)
	return r
}

// Name implements netsim.Router.
func (r *Router) Name() string { return "dymo" }

// Start implements netsim.Router.
func (r *Router) Start() {
	r.helloTicker.Start()
	r.purgeTicker.Start()
}

// Stop implements netsim.Router.
func (r *Router) Stop() {
	r.helloTicker.Stop()
	r.purgeTicker.Stop()
	for _, d := range r.discoveries {
		d.timer.Stop()
	}
	for _, t := range r.neighbors {
		t.Stop()
	}
}

// ControlTraffic implements netsim.Router.
func (r *Router) ControlTraffic() (uint64, uint64) { return r.ctrlPackets, r.ctrlBytes }

// EachBuffered visits every data packet parked in route-discovery buffers —
// the router's share of the custody set the packet-conservation invariant
// audits.
func (r *Router) EachBuffered(f func(p *netsim.Packet)) {
	for _, d := range r.discoveries {
		for _, p := range d.buffer {
			f(p)
		}
	}
}

// Table reports the valid route to dst, if any (for tests).
func (r *Router) Table(dst netsim.NodeID) (next netsim.NodeID, hops int, ok bool) {
	return r.table.validNext(dst)
}

func (r *Router) now() sim.Time { return r.node.Kernel().Now() }

// updateRoute applies the draft's route-update rules (same sequence-number
// discipline as AODV), guarding against self-routes.
func (r *Router) updateRoute(dst netsim.NodeID, seq uint32, seqKnown bool, hops int, next netsim.NodeID) {
	if dst == r.node.ID() {
		return
	}
	r.table.update(dst, seq, seqKnown, hops, next)
}

// newDiscovery takes a discovery record from the pool (or builds one with
// its timer) and registers it for dst.
func (r *Router) newDiscovery(dst netsim.NodeID) *discovery {
	var d *discovery
	if n := len(r.discFree); n > 0 {
		d = r.discFree[n-1]
		r.discFree[n-1] = nil
		r.discFree = r.discFree[:n-1]
		d.dst, d.retries = dst, 0
	} else {
		d = &discovery{dst: dst}
		d.timer = sim.NewTimer(r.node.Kernel(), func() { r.discoveryTimeout(d) })
	}
	r.discoveries[dst] = d
	return d
}

// releaseDiscovery returns a record whose timer is no longer scheduled to
// the pool, dropping its buffered-packet references.
func (r *Router) releaseDiscovery(d *discovery) {
	for i := range d.buffer {
		d.buffer[i] = nil
	}
	d.buffer = d.buffer[:0]
	r.discFree = append(r.discFree, d)
}

func (r *Router) sendControl(next netsim.NodeID, ttl, size int, msg any) {
	p := &netsim.Packet{
		Kind:      netsim.KindControl,
		Src:       r.node.ID(),
		Dst:       netsim.BroadcastID,
		Port:      netsim.PortRouting,
		TTL:       ttl,
		Size:      size + netsim.IPHeaderBytes,
		Payload:   msg,
		CreatedAt: r.now(),
	}
	if next != netsim.BroadcastID {
		p.Dst = next
	}
	r.ctrlPackets++
	r.ctrlBytes += uint64(p.Size)
	r.node.SendFrame(next, p)
}

// Origin implements netsim.Router.
func (r *Router) Origin(p *netsim.Packet) {
	if next, _, ok := r.table.validNext(p.Dst); ok {
		r.table.refresh(p.Dst)
		r.table.refresh(next)
		r.node.SendFrame(next, p)
		return
	}
	d := r.discoveries[p.Dst]
	if d != nil {
		if len(d.buffer) >= r.cfg.BufferCap {
			r.node.DropData(p, "dymo:buffer-full")
			return
		}
		d.buffer = append(d.buffer, p)
		return
	}
	d = r.newDiscovery(p.Dst)
	d.buffer = append(d.buffer, p)
	r.sendRREQ(d)
}

func (r *Router) sendRREQ(d *discovery) {
	r.seq++
	msg := &RM{
		Target: d.dst,
		Orig:   AddrBlock{Addr: r.node.ID(), Seq: r.seq},
	}
	if seq, seqKnown, ok := r.table.lastSeq(d.dst); ok && seqKnown {
		msg.TargetSeq = seq
		msg.TargetSeqKnown = true
	}
	r.markSeen(seenKey{orig: r.node.ID(), seq: r.seq})
	r.sendControl(netsim.BroadcastID, r.cfg.HopLimit, rmBytes(msg), msg)
	// Exponential backoff across retries, as the draft recommends.
	wait := r.cfg.RREQWaitTime << uint(d.retries)
	d.timer.Reset(wait)
}

func (r *Router) discoveryTimeout(d *discovery) {
	if _, _, ok := r.table.validNext(d.dst); ok {
		r.flush(d)
		return
	}
	d.retries++
	if d.retries >= r.cfg.RREQTries {
		for _, p := range d.buffer {
			r.node.DropData(p, "dymo:no-route")
		}
		delete(r.discoveries, d.dst)
		r.releaseDiscovery(d)
		return
	}
	r.sendRREQ(d)
}

func (r *Router) flush(d *discovery) {
	delete(r.discoveries, d.dst)
	d.timer.Stop()
	for i, p := range d.buffer {
		d.buffer[i] = nil
		// Origin may open a fresh discovery for the same destination if
		// the route evaporated mid-flush; d is already unregistered, so
		// the two records never alias.
		r.Origin(p)
	}
	d.buffer = d.buffer[:0]
	r.releaseDiscovery(d)
}

// Receive implements netsim.Router.
func (r *Router) Receive(p *netsim.Packet, from netsim.NodeID) {
	if p.Kind == netsim.KindControl {
		switch msg := p.Payload.(type) {
		case *RM:
			r.handleRM(p, msg, from)
		case *RERR:
			r.handleRERR(msg, from)
		case *Hello:
			r.handleHello(msg, from)
		default:
			panic(fmt.Sprintf("dymo: unexpected control payload %T", p.Payload))
		}
		return
	}
	r.forwardData(p, from)
}

func (r *Router) forwardData(p *netsim.Packet, from netsim.NodeID) {
	p.TTL--
	if p.TTL <= 0 {
		r.node.DropData(p, "dymo:ttl")
		return
	}
	next, _, ok := r.table.validNext(p.Dst)
	if !ok {
		// DropData may recycle p, so read the destination first.
		dst := p.Dst
		r.node.DropData(p, "dymo:no-forward-route")
		seq, _, _ := r.table.lastSeq(dst)
		r.rerrBuf = append(r.rerrBuf[:0], AddrBlock{Addr: dst, Seq: seq})
		r.floodRERR(r.rerrBuf)
		return
	}
	r.table.refresh(p.Dst)
	r.table.refresh(p.Src)
	r.table.refresh(next)
	r.table.refresh(from)
	r.node.NoteForward(p)
	r.node.SendFrame(next, p)
}

// installFromRM learns routes from every address block carried by a routing
// message — the path-accumulation payoff.
func (r *Router) installFromRM(msg *RM, from netsim.NodeID) {
	// The originator block is len(Path)+1 hops away from the receiver
	// (each accumulated entry is one hop closer to us).
	r.updateRoute(msg.Orig.Addr, msg.Orig.Seq, true, msg.HopCount+1, from)
	if *r.cfg.PathAccumulation {
		n := len(msg.Path)
		for i, blk := range msg.Path {
			// Path[0] was appended first (closest to the originator); the
			// last entry is the previous transmitter, one hop from us.
			hops := n - i
			r.updateRoute(blk.Addr, blk.Seq, true, hops, from)
		}
	}
	r.updateRoute(from, 0, false, 1, from)
}

func (r *Router) handleRM(p *netsim.Packet, msg *RM, from netsim.NodeID) {
	me := r.node.ID()
	if msg.Orig.Addr == me {
		return
	}
	key := seenKey{orig: msg.Orig.Addr, seq: msg.Orig.Seq}
	if !msg.IsReply {
		if r.seen.Contains(key) {
			return
		}
		r.markSeen(key)
	}
	r.installFromRM(msg, from)

	if !msg.IsReply {
		if msg.Target == me {
			// Target: answer with an RREP accumulated back (draft §5.2).
			r.seq++
			if msg.TargetSeqKnown && int32(msg.TargetSeq-r.seq) > 0 {
				r.seq = msg.TargetSeq + 1
			}
			rep := &RM{
				IsReply: true,
				Target:  msg.Orig.Addr,
				Orig:    AddrBlock{Addr: me, Seq: r.seq},
			}
			next, _, ok := r.table.validNext(msg.Orig.Addr)
			if !ok {
				return
			}
			r.sendControl(next, r.cfg.HopLimit, rmBytes(rep), rep)
			return
		}
		// Intermediate: append ourselves and re-flood.
		if p.TTL <= 1 {
			return
		}
		fwd := &RM{
			Target:         msg.Target,
			TargetSeq:      msg.TargetSeq,
			TargetSeqKnown: msg.TargetSeqKnown,
			Orig:           msg.Orig,
			HopCount:       msg.HopCount + 1,
		}
		fwd.Path = appendPath(msg.Path, r.pathEntry())
		r.sendControl(netsim.BroadcastID, p.TTL-1, rmBytes(fwd), fwd)
		return
	}

	// RREP handling.
	if msg.Target == me {
		if d := r.discoveries[msg.Orig.Addr]; d != nil {
			r.flush(d)
		}
		return
	}
	next, _, ok := r.table.validNext(msg.Target)
	if !ok {
		return
	}
	fwd := &RM{
		IsReply:  true,
		Target:   msg.Target,
		Orig:     msg.Orig,
		HopCount: msg.HopCount + 1,
	}
	fwd.Path = appendPath(msg.Path, r.pathEntry())
	r.sendControl(next, p.TTL-1, rmBytes(fwd), fwd)
}

func (r *Router) pathEntry() AddrBlock {
	if *r.cfg.PathAccumulation {
		r.seq++
	}
	return AddrBlock{Addr: r.node.ID(), Seq: r.seq}
}

// appendPath builds the forwarded accumulation path in one exact-size
// allocation (the old double-append grew a zero-cap slice twice).
func appendPath(path []AddrBlock, self AddrBlock) []AddrBlock {
	out := make([]AddrBlock, len(path)+1)
	copy(out, path)
	out[len(path)] = self
	return out
}

func (r *Router) sendHello() {
	r.sendControl(netsim.BroadcastID, 1, helloSize, &Hello{Seq: r.seq})
}

func (r *Router) handleHello(msg *Hello, from netsim.NodeID) {
	r.updateRoute(from, msg.Seq, false, 1, from)
	t := r.neighbors[from]
	if t == nil {
		t = sim.NewTimer(r.node.Kernel(), func() { r.neighborLost(from) })
		r.neighbors[from] = t
	}
	t.Reset(sim.Time(r.cfg.AllowedHelloLoss+1) * r.cfg.HelloInterval)
}

func (r *Router) neighborLost(n netsim.NodeID) {
	delete(r.neighbors, n)
	r.linkBroken(n)
}

// LinkFailure implements netsim.Router (active link monitoring through
// data-link feedback, as the paper describes).
func (r *Router) LinkFailure(next netsim.NodeID, p *netsim.Packet) {
	if p.Kind == netsim.KindData {
		r.node.DropData(p, "dymo:link-failure")
	}
	r.linkBroken(next)
}

func (r *Router) linkBroken(neighbor netsim.NodeID) {
	r.rerrBuf = r.table.breakVia(neighbor, r.rerrBuf[:0])
	r.floodRERR(r.rerrBuf)
}

// floodRERR multicasts a RERR "to all nodes in range"; receivers that lose
// routes re-flood, spreading the breakage information (paper §III-B.3).
// floodRERR multicasts a RERR carrying the given unreachable set. The
// slice is copied at exact size onto the wire message — receivers retain
// RERR payloads past this call, so the reusable scratch must not escape.
func (r *Router) floodRERR(lost []AddrBlock) {
	if len(lost) == 0 {
		return
	}
	wire := make([]AddrBlock, len(lost))
	copy(wire, lost)
	msg := &RERR{Unreachable: wire, HopLimit: r.cfg.HopLimit}
	r.sendControl(netsim.BroadcastID, r.cfg.HopLimit, rerrBytes(len(wire)), msg)
}

func (r *Router) handleRERR(msg *RERR, from netsim.NodeID) {
	r.rerrBuf = r.rerrBuf[:0]
	for _, u := range msg.Unreachable {
		if seq, matched := r.table.rerrApply(u.Addr, from, u.Seq); matched {
			r.rerrBuf = append(r.rerrBuf, AddrBlock{Addr: u.Addr, Seq: seq})
		}
	}
	if len(r.rerrBuf) > 0 && msg.HopLimit > 1 {
		wire := make([]AddrBlock, len(r.rerrBuf))
		copy(wire, r.rerrBuf)
		fwd := &RERR{Unreachable: wire, HopLimit: msg.HopLimit - 1}
		r.sendControl(netsim.BroadcastID, fwd.HopLimit, rerrBytes(len(wire)), fwd)
	}
}

// markSeen installs a dedup entry and registers its deadline; keys are
// unique per message, so one push per insert keeps the heap at one item
// per live entry.
func (r *Router) markSeen(key seenKey) {
	r.seen.Add(key, r.now()+seenHold)
}

// SeenEntries reports the dedup-table size (for memory-stability tests).
func (r *Router) SeenEntries() int { return r.seen.Len() }

func (r *Router) purge() {
	r.table.purgeExpired()
	r.seen.Expire(r.now())
}
