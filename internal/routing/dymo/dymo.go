// Package dymo implements the Dynamic MANET On-demand routing protocol of
// draft-ietf-manet-dymo-14, the third protocol of the paper (§III-B.3).
//
// DYMO keeps AODV's reactive RREQ/RREP discovery and sequence-number loop
// freedom but adds *path accumulation*: every router that forwards a
// routing message appends its own address and sequence number, so receivers
// learn routes to every intermediate hop, not just the originator and
// target — the "major difference between DYMO and AODV" the paper calls
// out. Link breaks trigger RERR messages flooded "to all nodes in range",
// and links are monitored through data-link feedback and HELLOs (Table I
// gives DYMO a 1 s HELLO interval).
package dymo

import (
	"fmt"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// Wire sizes (draft-14 generic packet/message format, approximated).
const (
	rmBaseBytes   = 16
	addrBlockSize = 8
	rerrBase      = 12
	rerrPerAddr   = 8
	helloSize     = 12
)

// AddrBlock is one accumulated (address, sequence number) pair plus the hop
// distance from the message's current transmitter.
type AddrBlock struct {
	Addr netsim.NodeID
	Seq  uint32
	Dist int // hops from this block's node to the current transmitter
}

// RM is a DYMO routing message: RREQ when IsReply is false, RREP otherwise.
type RM struct {
	IsReply        bool
	Target         netsim.NodeID
	TargetSeq      uint32
	TargetSeqKnown bool
	Orig           AddrBlock   // the message originator
	Path           []AddrBlock // accumulated intermediate routers
	HopCount       int
}

func rmBytes(m *RM) int { return rmBaseBytes + (1+len(m.Path))*addrBlockSize }

// RERR reports unreachable destinations; it floods one hop at a time
// through re-broadcasts by routers that had matching routes.
type RERR struct {
	Unreachable []AddrBlock
	HopLimit    int
}

func rerrBytes(n int) int { return rerrBase + n*rerrPerAddr }

// Hello is the neighbor-liveness beacon (draft §4.1; interval per Table I).
type Hello struct {
	Seq uint32
}

// Config holds protocol parameters; zero fields take draft defaults with
// Table I's 1 s HELLO interval.
type Config struct {
	HelloInterval    sim.Time // default 1 s
	AllowedHelloLoss int      // default 2
	RouteTimeout     sim.Time // default 5 s (draft ROUTE_TIMEOUT)
	RREQWaitTime     sim.Time // default 1 s
	RREQTries        int      // default 3
	HopLimit         int      // default 20 (draft MSG_HOPLIMIT)
	BufferCap        int      // default 64 packets per destination
	// PathAccumulation can be disabled for the ablation bench, reducing
	// DYMO to an AODV-like protocol.
	PathAccumulation *bool
}

func (c *Config) normalize() {
	if c.HelloInterval == 0 {
		c.HelloInterval = sim.Second
	}
	if c.AllowedHelloLoss == 0 {
		c.AllowedHelloLoss = 2
	}
	if c.RouteTimeout == 0 {
		c.RouteTimeout = 5 * sim.Second
	}
	if c.RREQWaitTime == 0 {
		c.RREQWaitTime = sim.Second
	}
	if c.RREQTries == 0 {
		c.RREQTries = 3
	}
	if c.HopLimit == 0 {
		c.HopLimit = 20
	}
	if c.BufferCap == 0 {
		c.BufferCap = 64
	}
	if c.PathAccumulation == nil {
		t := true
		c.PathAccumulation = &t
	}
}

// route is a DYMO routing-table entry.
type route struct {
	dst       netsim.NodeID
	seq       uint32
	seqKnown  bool
	hops      int
	nextHop   netsim.NodeID
	expiresAt sim.Time
	valid     bool
}

type discovery struct {
	dst     netsim.NodeID
	retries int
	timer   *sim.Timer
	buffer  []*netsim.Packet
}

type seenKey struct {
	orig netsim.NodeID
	seq  uint32
}

// seenHold bounds the RREQ duplicate-suppression memory; entries are
// retired lazily through an expiry heap so the purge tick costs
// O(expired), not O(table).
const seenHold = 10 * sim.Second

// Router is one node's DYMO instance.
type Router struct {
	cfg  Config
	node *netsim.Node

	seq         uint32
	routes      map[netsim.NodeID]*route
	discoveries map[netsim.NodeID]*discovery
	seen        sim.ExpiringSet[seenKey]
	neighbors   map[netsim.NodeID]*sim.Timer

	helloTicker *sim.Ticker
	purgeTicker *sim.Ticker

	ctrlPackets uint64
	ctrlBytes   uint64
}

var _ netsim.Router = (*Router)(nil)

// New builds a DYMO router for node.
func New(node *netsim.Node, cfg Config) *Router {
	cfg.normalize()
	r := &Router{
		cfg:         cfg,
		node:        node,
		routes:      make(map[netsim.NodeID]*route),
		discoveries: make(map[netsim.NodeID]*discovery),
		neighbors:   make(map[netsim.NodeID]*sim.Timer),
	}
	jitter := func() sim.Time {
		span := int64(cfg.HelloInterval / 5)
		return sim.Time(node.Rand().Int63n(span) - span/2)
	}
	r.helloTicker = sim.NewTicker(node.Kernel(), cfg.HelloInterval, jitter, r.sendHello)
	r.purgeTicker = sim.NewTicker(node.Kernel(), sim.Second, nil, r.purge)
	return r
}

// Name implements netsim.Router.
func (r *Router) Name() string { return "dymo" }

// Start implements netsim.Router.
func (r *Router) Start() {
	r.helloTicker.Start()
	r.purgeTicker.Start()
}

// Stop implements netsim.Router.
func (r *Router) Stop() {
	r.helloTicker.Stop()
	r.purgeTicker.Stop()
	for _, d := range r.discoveries {
		d.timer.Stop()
	}
	for _, t := range r.neighbors {
		t.Stop()
	}
}

// ControlTraffic implements netsim.Router.
func (r *Router) ControlTraffic() (uint64, uint64) { return r.ctrlPackets, r.ctrlBytes }

// EachBuffered visits every data packet parked in route-discovery buffers —
// the router's share of the custody set the packet-conservation invariant
// audits.
func (r *Router) EachBuffered(f func(p *netsim.Packet)) {
	for _, d := range r.discoveries {
		for _, p := range d.buffer {
			f(p)
		}
	}
}

// Table reports the valid route to dst, if any (for tests).
func (r *Router) Table(dst netsim.NodeID) (next netsim.NodeID, hops int, ok bool) {
	rt := r.validRoute(dst)
	if rt == nil {
		return 0, 0, false
	}
	return rt.nextHop, rt.hops, true
}

func (r *Router) now() sim.Time { return r.node.Kernel().Now() }

func (r *Router) validRoute(dst netsim.NodeID) *route {
	rt := r.routes[dst]
	if rt == nil || !rt.valid {
		return nil
	}
	if r.now() >= rt.expiresAt {
		rt.valid = false
		return nil
	}
	return rt
}

// updateRoute applies the draft's route-update rules (same sequence-number
// discipline as AODV).
func (r *Router) updateRoute(dst netsim.NodeID, seq uint32, seqKnown bool, hops int, next netsim.NodeID) *route {
	if dst == r.node.ID() {
		return nil
	}
	now := r.now()
	rt := r.routes[dst]
	if rt == nil {
		rt = &route{dst: dst}
		r.routes[dst] = rt
	} else if rt.valid && rt.seqKnown && seqKnown {
		newer := int32(seq-rt.seq) > 0
		sameShorter := seq == rt.seq && hops < rt.hops
		if !newer && !sameShorter {
			if now+r.cfg.RouteTimeout > rt.expiresAt {
				rt.expiresAt = now + r.cfg.RouteTimeout
			}
			return rt
		}
	}
	rt.seq = seq
	rt.seqKnown = seqKnown
	rt.hops = hops
	rt.nextHop = next
	rt.valid = true
	rt.expiresAt = now + r.cfg.RouteTimeout
	return rt
}

func (r *Router) refresh(dst netsim.NodeID) {
	if rt := r.validRoute(dst); rt != nil {
		exp := r.now() + r.cfg.RouteTimeout
		if exp > rt.expiresAt {
			rt.expiresAt = exp
		}
	}
}

func (r *Router) sendControl(next netsim.NodeID, ttl, size int, msg any) {
	p := &netsim.Packet{
		Kind:      netsim.KindControl,
		Src:       r.node.ID(),
		Dst:       netsim.BroadcastID,
		Port:      netsim.PortRouting,
		TTL:       ttl,
		Size:      size + netsim.IPHeaderBytes,
		Payload:   msg,
		CreatedAt: r.now(),
	}
	if next != netsim.BroadcastID {
		p.Dst = next
	}
	r.ctrlPackets++
	r.ctrlBytes += uint64(p.Size)
	r.node.SendFrame(next, p)
}

// Origin implements netsim.Router.
func (r *Router) Origin(p *netsim.Packet) {
	if rt := r.validRoute(p.Dst); rt != nil {
		r.refresh(p.Dst)
		r.refresh(rt.nextHop)
		r.node.SendFrame(rt.nextHop, p)
		return
	}
	d := r.discoveries[p.Dst]
	if d != nil {
		if len(d.buffer) >= r.cfg.BufferCap {
			r.node.DropData(p, "dymo:buffer-full")
			return
		}
		d.buffer = append(d.buffer, p)
		return
	}
	d = &discovery{dst: p.Dst, buffer: []*netsim.Packet{p}}
	d.timer = sim.NewTimer(r.node.Kernel(), func() { r.discoveryTimeout(d) })
	r.discoveries[p.Dst] = d
	r.sendRREQ(d)
}

func (r *Router) sendRREQ(d *discovery) {
	r.seq++
	msg := &RM{
		Target: d.dst,
		Orig:   AddrBlock{Addr: r.node.ID(), Seq: r.seq},
	}
	if rt := r.routes[d.dst]; rt != nil && rt.seqKnown {
		msg.TargetSeq = rt.seq
		msg.TargetSeqKnown = true
	}
	r.markSeen(seenKey{orig: r.node.ID(), seq: r.seq})
	r.sendControl(netsim.BroadcastID, r.cfg.HopLimit, rmBytes(msg), msg)
	// Exponential backoff across retries, as the draft recommends.
	wait := r.cfg.RREQWaitTime << uint(d.retries)
	d.timer.Reset(wait)
}

func (r *Router) discoveryTimeout(d *discovery) {
	if r.validRoute(d.dst) != nil {
		r.flush(d)
		return
	}
	d.retries++
	if d.retries >= r.cfg.RREQTries {
		for _, p := range d.buffer {
			r.node.DropData(p, "dymo:no-route")
		}
		delete(r.discoveries, d.dst)
		return
	}
	r.sendRREQ(d)
}

func (r *Router) flush(d *discovery) {
	delete(r.discoveries, d.dst)
	d.timer.Stop()
	for _, p := range d.buffer {
		r.Origin(p)
	}
}

// Receive implements netsim.Router.
func (r *Router) Receive(p *netsim.Packet, from netsim.NodeID) {
	if p.Kind == netsim.KindControl {
		switch msg := p.Payload.(type) {
		case *RM:
			r.handleRM(p, msg, from)
		case *RERR:
			r.handleRERR(msg, from)
		case *Hello:
			r.handleHello(msg, from)
		default:
			panic(fmt.Sprintf("dymo: unexpected control payload %T", p.Payload))
		}
		return
	}
	r.forwardData(p, from)
}

func (r *Router) forwardData(p *netsim.Packet, from netsim.NodeID) {
	p.TTL--
	if p.TTL <= 0 {
		r.node.DropData(p, "dymo:ttl")
		return
	}
	rt := r.validRoute(p.Dst)
	if rt == nil {
		r.node.DropData(p, "dymo:no-forward-route")
		seq := uint32(0)
		if old := r.routes[p.Dst]; old != nil {
			seq = old.seq
		}
		r.floodRERR([]AddrBlock{{Addr: p.Dst, Seq: seq}})
		return
	}
	r.refresh(p.Dst)
	r.refresh(p.Src)
	r.refresh(rt.nextHop)
	r.refresh(from)
	r.node.NoteForward(p)
	r.node.SendFrame(rt.nextHop, p)
}

// installFromRM learns routes from every address block carried by a routing
// message — the path-accumulation payoff.
func (r *Router) installFromRM(msg *RM, from netsim.NodeID) {
	// The originator block is len(Path)+1 hops away from the receiver
	// (each accumulated entry is one hop closer to us).
	r.updateRoute(msg.Orig.Addr, msg.Orig.Seq, true, msg.HopCount+1, from)
	if *r.cfg.PathAccumulation {
		n := len(msg.Path)
		for i, blk := range msg.Path {
			// Path[0] was appended first (closest to the originator); the
			// last entry is the previous transmitter, one hop from us.
			hops := n - i
			r.updateRoute(blk.Addr, blk.Seq, true, hops, from)
		}
	}
	r.updateRoute(from, 0, false, 1, from)
}

func (r *Router) handleRM(p *netsim.Packet, msg *RM, from netsim.NodeID) {
	me := r.node.ID()
	if msg.Orig.Addr == me {
		return
	}
	key := seenKey{orig: msg.Orig.Addr, seq: msg.Orig.Seq}
	if !msg.IsReply {
		if r.seen.Contains(key) {
			return
		}
		r.markSeen(key)
	}
	r.installFromRM(msg, from)

	if !msg.IsReply {
		if msg.Target == me {
			// Target: answer with an RREP accumulated back (draft §5.2).
			r.seq++
			if msg.TargetSeqKnown && int32(msg.TargetSeq-r.seq) > 0 {
				r.seq = msg.TargetSeq + 1
			}
			rep := &RM{
				IsReply: true,
				Target:  msg.Orig.Addr,
				Orig:    AddrBlock{Addr: me, Seq: r.seq},
			}
			rt := r.validRoute(msg.Orig.Addr)
			if rt == nil {
				return
			}
			r.sendControl(rt.nextHop, r.cfg.HopLimit, rmBytes(rep), rep)
			return
		}
		// Intermediate: append ourselves and re-flood.
		if p.TTL <= 1 {
			return
		}
		fwd := &RM{
			Target:         msg.Target,
			TargetSeq:      msg.TargetSeq,
			TargetSeqKnown: msg.TargetSeqKnown,
			Orig:           msg.Orig,
			HopCount:       msg.HopCount + 1,
		}
		fwd.Path = append(append([]AddrBlock{}, msg.Path...), r.pathEntry())
		r.sendControl(netsim.BroadcastID, p.TTL-1, rmBytes(fwd), fwd)
		return
	}

	// RREP handling.
	if msg.Target == me {
		if d := r.discoveries[msg.Orig.Addr]; d != nil {
			r.flush(d)
		}
		return
	}
	rt := r.validRoute(msg.Target)
	if rt == nil {
		return
	}
	fwd := &RM{
		IsReply:  true,
		Target:   msg.Target,
		Orig:     msg.Orig,
		HopCount: msg.HopCount + 1,
	}
	fwd.Path = append(append([]AddrBlock{}, msg.Path...), r.pathEntry())
	r.sendControl(rt.nextHop, p.TTL-1, rmBytes(fwd), fwd)
}

func (r *Router) pathEntry() AddrBlock {
	if *r.cfg.PathAccumulation {
		r.seq++
	}
	return AddrBlock{Addr: r.node.ID(), Seq: r.seq}
}

func (r *Router) sendHello() {
	r.sendControl(netsim.BroadcastID, 1, helloSize, &Hello{Seq: r.seq})
}

func (r *Router) handleHello(msg *Hello, from netsim.NodeID) {
	r.updateRoute(from, msg.Seq, false, 1, from)
	t := r.neighbors[from]
	if t == nil {
		t = sim.NewTimer(r.node.Kernel(), func() { r.neighborLost(from) })
		r.neighbors[from] = t
	}
	t.Reset(sim.Time(r.cfg.AllowedHelloLoss+1) * r.cfg.HelloInterval)
}

func (r *Router) neighborLost(n netsim.NodeID) {
	delete(r.neighbors, n)
	r.linkBroken(n)
}

// LinkFailure implements netsim.Router (active link monitoring through
// data-link feedback, as the paper describes).
func (r *Router) LinkFailure(next netsim.NodeID, p *netsim.Packet) {
	if p.Kind == netsim.KindData {
		r.node.DropData(p, "dymo:link-failure")
	}
	r.linkBroken(next)
}

func (r *Router) linkBroken(neighbor netsim.NodeID) {
	var lost []AddrBlock
	for _, rt := range r.routes {
		if rt.valid && rt.nextHop == neighbor {
			rt.valid = false
			rt.seq++
			lost = append(lost, AddrBlock{Addr: rt.dst, Seq: rt.seq})
		}
	}
	r.floodRERR(lost)
}

// floodRERR multicasts a RERR "to all nodes in range"; receivers that lose
// routes re-flood, spreading the breakage information (paper §III-B.3).
func (r *Router) floodRERR(lost []AddrBlock) {
	if len(lost) == 0 {
		return
	}
	msg := &RERR{Unreachable: lost, HopLimit: r.cfg.HopLimit}
	r.sendControl(netsim.BroadcastID, r.cfg.HopLimit, rerrBytes(len(lost)), msg)
}

func (r *Router) handleRERR(msg *RERR, from netsim.NodeID) {
	var invalidated []AddrBlock
	for _, u := range msg.Unreachable {
		rt := r.routes[u.Addr]
		if rt == nil || !rt.valid || rt.nextHop != from {
			continue
		}
		rt.valid = false
		if int32(u.Seq-rt.seq) > 0 {
			rt.seq = u.Seq
		}
		invalidated = append(invalidated, AddrBlock{Addr: u.Addr, Seq: rt.seq})
	}
	if len(invalidated) > 0 && msg.HopLimit > 1 {
		fwd := &RERR{Unreachable: invalidated, HopLimit: msg.HopLimit - 1}
		r.sendControl(netsim.BroadcastID, fwd.HopLimit, rerrBytes(len(invalidated)), fwd)
	}
}

// markSeen installs a dedup entry and registers its deadline; keys are
// unique per message, so one push per insert keeps the heap at one item
// per live entry.
func (r *Router) markSeen(key seenKey) {
	r.seen.Add(key, r.now()+seenHold)
}

// SeenEntries reports the dedup-table size (for memory-stability tests).
func (r *Router) SeenEntries() int { return r.seen.Len() }

func (r *Router) purge() {
	now := r.now()
	for _, rt := range r.routes {
		if rt.valid && now >= rt.expiresAt {
			rt.valid = false
		}
	}
	r.seen.Expire(now)
}
