package dymo

import (
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// routeTable is the routing-table contract both implementations satisfy:
// the dense-index fast path (dense.go) and the retained map-based oracle
// below, selected by Config.Oracle. As with the AODV split, the interface
// is strictly value-based — no method hands out a pointer into table
// storage, because the dense path keeps entries in a growable slice where
// an escaping pointer would dangle across inserts.
//
// Reading a valid-but-expired entry through validNext or refresh flips it
// to invalid on the spot, mirroring the oracle's read side effect; the
// periodic purge retires the rest. The flip timing is part of the contract
// (breakVia bumps sequence numbers only on still-valid entries) and the
// run-identity tests pin both implementations to it.
type routeTable interface {
	// validNext reports the forwarding state of a live, unexpired route.
	validNext(dst netsim.NodeID) (next netsim.NodeID, hops int, ok bool)
	// lastSeq reports the stored sequence state for dst regardless of
	// route validity (RREQ target-seq seeding, RERR case ii).
	lastSeq(dst netsim.NodeID) (seq uint32, seqKnown bool, ok bool)
	// update installs or refreshes a route per the draft's rules; the
	// accepted entry's lifetime is reset to RouteTimeout from now.
	update(dst netsim.NodeID, seq uint32, seqKnown bool, hops int, next netsim.NodeID)
	// refresh extends a valid route's lifetime to RouteTimeout from now.
	refresh(dst netsim.NodeID)
	// breakVia invalidates every valid route whose next hop is the broken
	// neighbor, bumping each sequence number and appending the (dst,
	// bumped seq) pairs to buf.
	breakVia(neighbor netsim.NodeID, buf []AddrBlock) []AddrBlock
	// rerrApply processes one received RERR entry: matched when a valid
	// route to dst via from existed — it is flipped invalid without a seq
	// bump, adopting the reported seq when newer. seqOut is the entry's
	// sequence number after adoption.
	rerrApply(dst, from netsim.NodeID, seq uint32) (seqOut uint32, matched bool)
	// purgeExpired retires expired valid routes (periodic tick).
	purgeExpired()
}

// mapTable is the retained map-based oracle implementation.
type mapTable struct {
	kernel  *sim.Kernel
	timeout sim.Time
	routes  map[netsim.NodeID]*route
}

var _ routeTable = (*mapTable)(nil)

func newMapTable(k *sim.Kernel, timeout sim.Time) *mapTable {
	return &mapTable{kernel: k, timeout: timeout, routes: make(map[netsim.NodeID]*route)}
}

// validRoute returns a live, unexpired route to dst or nil, flipping an
// expired valid entry to invalid.
func (t *mapTable) validRoute(dst netsim.NodeID) *route {
	rt := t.routes[dst]
	if rt == nil || !rt.valid {
		return nil
	}
	if t.kernel.Now() >= rt.expiresAt {
		rt.valid = false
		return nil
	}
	return rt
}

func (t *mapTable) validNext(dst netsim.NodeID) (netsim.NodeID, int, bool) {
	rt := t.validRoute(dst)
	if rt == nil {
		return 0, 0, false
	}
	return rt.nextHop, rt.hops, true
}

func (t *mapTable) lastSeq(dst netsim.NodeID) (uint32, bool, bool) {
	rt := t.routes[dst]
	if rt == nil {
		return 0, false, false
	}
	return rt.seq, rt.seqKnown, true
}

// update applies the draft's route-update rules (same sequence-number
// discipline as AODV, but an accepted update resets the lifetime instead
// of stretching it).
func (t *mapTable) update(dst netsim.NodeID, seq uint32, seqKnown bool, hops int, next netsim.NodeID) {
	now := t.kernel.Now()
	rt := t.routes[dst]
	if rt == nil {
		rt = &route{dst: dst}
		t.routes[dst] = rt
	} else if rt.valid && rt.seqKnown && seqKnown {
		newer := int32(seq-rt.seq) > 0
		sameShorter := seq == rt.seq && hops < rt.hops
		if !newer && !sameShorter {
			if now+t.timeout > rt.expiresAt {
				rt.expiresAt = now + t.timeout
			}
			return
		}
	}
	rt.seq = seq
	rt.seqKnown = seqKnown
	rt.hops = hops
	rt.nextHop = next
	rt.valid = true
	rt.expiresAt = now + t.timeout
}

func (t *mapTable) refresh(dst netsim.NodeID) {
	if rt := t.validRoute(dst); rt != nil {
		exp := t.kernel.Now() + t.timeout
		if exp > rt.expiresAt {
			rt.expiresAt = exp
		}
	}
}

// breakVia invalidates the valid routes through the broken neighbor. Map
// iteration order varies, but RERR entries are processed independently by
// every receiver and the wire size depends only on the count, so the order
// never reaches the results — the same argument that lets the dense path
// use insertion order.
func (t *mapTable) breakVia(neighbor netsim.NodeID, buf []AddrBlock) []AddrBlock {
	for _, rt := range t.routes {
		if rt.valid && rt.nextHop == neighbor {
			rt.valid = false
			rt.seq++
			buf = append(buf, AddrBlock{Addr: rt.dst, Seq: rt.seq})
		}
	}
	return buf
}

func (t *mapTable) rerrApply(dst, from netsim.NodeID, seq uint32) (uint32, bool) {
	rt := t.routes[dst]
	if rt == nil || !rt.valid || rt.nextHop != from {
		return 0, false
	}
	rt.valid = false
	if int32(seq-rt.seq) > 0 {
		rt.seq = seq
	}
	return rt.seq, true
}

// purgeExpired flips expired valid routes to invalid.
func (t *mapTable) purgeExpired() {
	now := t.kernel.Now()
	for _, rt := range t.routes {
		if rt.valid && now >= rt.expiresAt {
			rt.valid = false
		}
	}
}
