package dymo

import (
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
	"cavenet/internal/traffic"
)

func chainWorld(t *testing.T, n int, spacing float64, cfg Config) *netsim.World {
	t.Helper()
	positions := make([]geometry.Vec2, n)
	for i := range positions {
		positions[i] = geometry.Vec2{X: float64(i) * spacing}
	}
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:  n,
		Seed:   1,
		Static: positions,
	}, func(node *netsim.Node) netsim.Router { return New(node, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func sendAt(w *netsim.World, at sim.Time, src, dst, size int) {
	w.Kernel.Schedule(at, func() {
		n := w.Node(src)
		n.SendData(n.NewPacket(netsim.NodeID(dst), netsim.PortCBR, size))
	})
}

func TestDiscoveryAndDelivery(t *testing.T) {
	w := chainWorld(t, 4, 200, Config{})
	sink := &traffic.Sink{}
	w.Node(3).AttachPort(netsim.PortCBR, sink)
	sendAt(w, sim.Second, 0, 3, 512)
	w.Run(5 * sim.Second)
	if sink.Received != 1 {
		t.Fatalf("delivered %d, want 1", sink.Received)
	}
	r := w.Node(0).Router().(*Router)
	if next, hops, ok := r.Table(3); !ok || next != 1 || hops != 3 {
		t.Fatalf("route = %d/%d/%v", next, hops, ok)
	}
}

// TestPathAccumulationLearnsIntermediates pins the paper's "major
// difference between DYMO and AODV": after one discovery 0→3, the source
// must know routes to ALL intermediate hops, not just the target.
func TestPathAccumulationLearnsIntermediates(t *testing.T) {
	w := chainWorld(t, 4, 200, Config{})
	sink := &traffic.Sink{}
	w.Node(3).AttachPort(netsim.PortCBR, sink)
	sendAt(w, sim.Second, 0, 3, 512)
	w.Run(5 * sim.Second)
	r := w.Node(0).Router().(*Router)
	for dst := 1; dst <= 3; dst++ {
		next, hops, ok := r.Table(netsim.NodeID(dst))
		if !ok {
			t.Fatalf("no route to intermediate %d after path accumulation", dst)
		}
		if next != 1 || hops != dst {
			t.Fatalf("route to %d = next %d hops %d", dst, next, hops)
		}
	}
	// Intermediate node 2 must also have learned both directions.
	r2 := w.Node(2).Router().(*Router)
	if _, _, ok := r2.Table(0); !ok {
		t.Fatal("intermediate lacks route to originator")
	}
	if _, _, ok := r2.Table(3); !ok {
		t.Fatal("intermediate lacks route to target")
	}
}

func TestPathAccumulationDisabledLearnsLess(t *testing.T) {
	off := false
	w := chainWorld(t, 5, 200, Config{PathAccumulation: &off})
	sink := &traffic.Sink{}
	w.Node(4).AttachPort(netsim.PortCBR, sink)
	sendAt(w, sim.Second, 0, 4, 512)
	w.Run(5 * sim.Second)
	if sink.Received != 1 {
		t.Fatalf("delivery failed without path accumulation: %d", sink.Received)
	}
	r := w.Node(0).Router().(*Router)
	// Route to target and 1-hop neighbor exist; a mid-chain node that is
	// neither should be unknown.
	if _, _, ok := r.Table(4); !ok {
		t.Fatal("no route to target")
	}
	if _, _, ok := r.Table(2); ok {
		t.Fatal("mid-chain route learned despite accumulation off")
	}
}

func TestBufferingThroughDiscovery(t *testing.T) {
	w := chainWorld(t, 4, 200, Config{})
	sink := &traffic.Sink{}
	w.Node(3).AttachPort(netsim.PortCBR, sink)
	for i := 0; i < 10; i++ {
		sendAt(w, sim.Second, 0, 3, 512)
	}
	w.Run(5 * sim.Second)
	if sink.Received != 10 {
		t.Fatalf("delivered %d/10", sink.Received)
	}
}

func TestUnreachableDropsAfterTries(t *testing.T) {
	w := chainWorld(t, 2, 5000, Config{})
	var drops int
	w.SetHooks(netsim.Hooks{DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
		if reason == "dymo:no-route" {
			drops++
		}
	}})
	sendAt(w, sim.Second, 0, 1, 512)
	w.Run(20 * sim.Second)
	if drops != 1 {
		t.Fatalf("drops = %d, want 1", drops)
	}
}

func TestVanishingDestinationRecovery(t *testing.T) {
	// Chain 0-1-2-3 with CBR from 0 to 3; node 3 vanishes mid-run and
	// returns. DYMO must detect the break (MAC feedback on the 2→3 hop),
	// flood RERRs, and rediscover once node 3 is back.
	positions := make([][]geometry.Vec2, 4)
	for i := 0; i < 4; i++ {
		col := make([]geometry.Vec2, 41)
		for s := range col {
			col[s] = geometry.Vec2{X: float64(i) * 200}
			if i == 3 && s >= 10 && s < 25 {
				col[s] = geometry.Vec2{X: 600, Y: 100000} // vanish t=10..25
			}
		}
		positions[i] = col
	}
	tr := &mobility.SampledTrace{Interval: 1, Positions: positions}
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: 4, Seed: 2, Mobility: tr,
	}, func(node *netsim.Node) netsim.Router { return New(node, Config{}) })
	if err != nil {
		t.Fatal(err)
	}
	sink := &traffic.Sink{}
	w.Node(3).AttachPort(netsim.PortCBR, sink)
	cbr := traffic.NewCBR(w.Node(0), traffic.CBRConfig{
		Dst: 3, Rate: 2, Start: 2 * sim.Second, Stop: 38 * sim.Second,
	})
	cbr.Start()
	w.Run(40 * sim.Second)
	if sink.Received < 15 {
		t.Fatalf("delivered %d packets; want both phases served", sink.Received)
	}
	if sink.LastAt < 30*sim.Second {
		t.Fatalf("no deliveries after the destination returned (last %v)", sink.LastAt)
	}
}

func TestRouterName(t *testing.T) {
	w := chainWorld(t, 2, 100, Config{})
	if w.Node(0).Router().Name() != "dymo" {
		t.Fatal("Name() should be dymo")
	}
}

func TestHelloMaintainsNeighbors(t *testing.T) {
	w := chainWorld(t, 2, 100, Config{})
	w.Run(5 * sim.Second)
	r := w.Node(0).Router().(*Router)
	if len(r.neighbors) != 1 {
		t.Fatalf("neighbors = %d, want 1", len(r.neighbors))
	}
	if _, _, ok := r.Table(1); !ok {
		t.Fatal("hello should install a 1-hop route")
	}
}

func TestSequenceMonotone(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	r := w.Node(0).Router().(*Router)
	before := r.seq
	sendAt(w, sim.Second, 0, 2, 512)
	w.Run(5 * sim.Second)
	if r.seq <= before {
		t.Fatal("sequence number must grow")
	}
}

func TestRouteUpdateRules(t *testing.T) {
	for _, oracle := range []bool{false, true} {
		name := "dense"
		if oracle {
			name = "oracle"
		}
		t.Run(name, func(t *testing.T) {
			w := chainWorld(t, 2, 100, Config{Oracle: oracle})
			r := w.Node(0).Router().(*Router)
			r.updateRoute(5, 10, true, 3, 1)
			r.updateRoute(5, 9, true, 1, 2) // stale seq: rejected
			if next, _, ok := r.Table(5); !ok || next != 1 {
				t.Fatalf("stale update accepted: next=%d ok=%v", next, ok)
			}
			r.updateRoute(5, 10, true, 2, 3) // same seq shorter: accepted
			if next, hops, ok := r.Table(5); !ok || next != 3 || hops != 2 {
				t.Fatalf("shorter path rejected: next=%d hops=%d ok=%v", next, hops, ok)
			}
			r.updateRoute(5, 11, true, 9, 4) // newer seq: accepted
			if next, _, ok := r.Table(5); !ok || next != 4 {
				t.Fatalf("newer seq rejected: next=%d ok=%v", next, ok)
			}
			// Routes to self are never installed.
			r.updateRoute(0, 1, true, 1, 1)
			if _, _, ok := r.Table(0); ok {
				t.Fatal("route to self must be refused")
			}
		})
	}
}

// TestTableLazyPurgeMatchesEager drives both implementations through the
// same schedule and checks the observable state stays identical — the
// dense path's epoch-stamped purge must behave exactly like the oracle's
// eager scan at every query.
func TestTableLazyPurgeMatchesEager(t *testing.T) {
	k := sim.NewKernel()
	dense := newDenseTable(k, 2*sim.Second)
	oracle := newMapTable(k, 2*sim.Second)
	both := [...]routeTable{dense, oracle}

	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 400; step++ {
		k.Schedule(k.Now()+sim.Time(rng.Int63n(int64(500*sim.Millisecond))), func() {})
		k.Run()
		dst := netsim.NodeID(rng.Intn(12))
		switch rng.Intn(5) {
		case 0:
			seq, hops := uint32(rng.Intn(8)), 1+rng.Intn(4)
			next := netsim.NodeID(rng.Intn(4))
			for _, tb := range both {
				tb.update(dst, seq, true, hops, next)
			}
		case 1:
			for _, tb := range both {
				tb.refresh(dst)
			}
		case 2:
			for _, tb := range both {
				tb.purgeExpired()
			}
		case 3:
			n := netsim.NodeID(rng.Intn(4))
			got := dense.breakVia(n, nil)
			want := oracle.breakVia(n, nil)
			if len(got) != len(want) {
				t.Fatalf("step %d: breakVia count %d != %d", step, len(got), len(want))
			}
		case 4:
			seq := uint32(rng.Intn(10))
			from := netsim.NodeID(rng.Intn(4))
			gs, gm := dense.rerrApply(dst, from, seq)
			ws, wm := oracle.rerrApply(dst, from, seq)
			if gs != ws || gm != wm {
				t.Fatalf("step %d: rerrApply (%d,%v) != (%d,%v)", step, gs, gm, ws, wm)
			}
		}
		for dst := netsim.NodeID(0); dst < 12; dst++ {
			gn, gh, gok := dense.validNext(dst)
			wn, wh, wok := oracle.validNext(dst)
			if gn != wn || gh != wh || gok != wok {
				t.Fatalf("step %d dst %d: dense (%d,%d,%v) != oracle (%d,%d,%v)",
					step, dst, gn, gh, gok, wn, wh, wok)
			}
			gs, gk, gok2 := dense.lastSeq(dst)
			ws, wk, wok2 := oracle.lastSeq(dst)
			if gs != ws || gk != wk || gok2 != wok2 {
				t.Fatalf("step %d dst %d: lastSeq (%d,%v,%v) != (%d,%v,%v)",
					step, dst, gs, gk, gok2, ws, wk, wok2)
			}
		}
	}
}

func TestLinkBrokenFloodsRERR(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	sink := &traffic.Sink{}
	w.Node(2).AttachPort(netsim.PortCBR, sink)
	sendAt(w, sim.Second, 0, 2, 512)
	w.Run(4 * sim.Second)
	if sink.Received != 1 {
		t.Fatal("precondition: delivery works")
	}
	r1 := w.Node(1).Router().(*Router)
	if _, _, ok := r1.Table(2); !ok {
		t.Fatal("precondition: relay has route to 2")
	}
	// Simulate MAC feedback at the relay for the 1→2 hop.
	w.Kernel.Schedule(w.Kernel.Now(), func() {
		r1.LinkFailure(2, &netsim.Packet{Kind: netsim.KindData, Dst: 2})
	})
	w.Kernel.RunUntil(w.Kernel.Now() + sim.Second)
	if _, _, ok := r1.Table(2); ok {
		t.Fatal("relay route should be invalidated")
	}
	// The RERR flood must have reached node 0 and killed its route too.
	r0 := w.Node(0).Router().(*Router)
	if _, _, ok := r0.Table(2); ok {
		t.Fatal("upstream route survived the RERR flood")
	}
}

func TestControlTrafficCounted(t *testing.T) {
	w := chainWorld(t, 2, 100, Config{})
	w.Run(5 * sim.Second)
	pkts, bytes := w.Node(0).Router().ControlTraffic()
	if pkts == 0 || bytes == 0 {
		t.Fatal("hello traffic should be counted")
	}
}

// TestSeenEntriesExpire: RREQ dedup entries are reclaimed by the lazy
// expiry heap once their hold passes, instead of accumulating forever.
func TestSeenEntriesExpire(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	sendAt(w, sim.Second, 0, 2, 128)
	w.Run(3 * sim.Second)
	r1 := w.Node(1).Router().(*Router)
	if r1.SeenEntries() == 0 {
		t.Fatal("precondition: relay recorded no RREQ dedup entries")
	}
	// Advance well past seenHold with no new discoveries; the purge ticker
	// only runs while routers run, so keep the world alive.
	w.Kernel.RunUntil(w.Kernel.Now() + 2*seenHold)
	r1.purge()
	if got := r1.SeenEntries(); got != 0 {
		t.Fatalf("seen entries after expiry window = %d, want 0", got)
	}
}
