package dymo

import (
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// denseTable is the production routing table: entries live in a flat
// slice addressed through interned indices, so the per-packet path
// (validNext + refresh on every forwarded frame) does no map work and no
// allocation once the destination set has been seen.
//
// Expiry is epoch-stamped rather than heap-driven: the periodic purge
// only records its tick time (lastPurge), and the flip an eager scan
// would have performed is applied lazily the next time the entry is
// touched — an entry whose expiresAt is at or before lastPurge behaves as
// if the purge had flipped it. That deferral is unobservable because a
// purge flip has no side effect beyond the state bit (no sequence bump),
// and every consumer of the state bit (validNext, refresh, update's
// keep-branch guard, breakVia, rerrApply) runs the emulation first. AODV's
// dense table uses an ExpiryHeap instead; that approach needs lifetimes
// to be non-shrinking, which DYMO's reset-on-accept update rule violates
// (a route can be invalidated and relearned with a shorter lifetime).
//
// Interning is hybrid, as in AODV: real node ids map through a direct
// slice; ids outside [0, denseDirectLimit) — synthetic external uplink
// addresses, whose bases validate up to 1<<30 — fall back to a map the
// steady-state path never touches.
type denseTable struct {
	kernel    *sim.Kernel
	timeout   sim.Time
	direct    []int32                 // NodeID -> entry index + 1; 0 = absent
	ext       map[netsim.NodeID]int32 // entry index for ids outside the direct range
	entries   []denseEntry
	lastPurge sim.Time
}

// denseDirectLimit bounds the direct-slice id range; beyond it (synthetic
// external destinations validate up to 1<<30) the map fallback applies.
const denseDirectLimit = 1 << 16

type denseEntry struct {
	dst       netsim.NodeID
	seq       uint32
	seqKnown  bool
	valid     bool
	hops      int
	nextHop   netsim.NodeID
	expiresAt sim.Time
}

var _ routeTable = (*denseTable)(nil)

func newDenseTable(k *sim.Kernel, timeout sim.Time) *denseTable {
	return &denseTable{kernel: k, timeout: timeout, lastPurge: -1}
}

// index returns the entry index for id, or -1 when no entry exists.
func (t *denseTable) index(id netsim.NodeID) int32 {
	if i := int(id); i >= 0 && i < len(t.direct) {
		return t.direct[i] - 1
	}
	if int(id) >= 0 && int(id) < denseDirectLimit {
		return -1
	}
	if x, ok := t.ext[id]; ok {
		return x
	}
	return -1
}

// intern returns the entry index for id, creating an empty slot on first
// sight.
func (t *denseTable) intern(id netsim.NodeID) int32 {
	if x := t.index(id); x >= 0 {
		return x
	}
	x := int32(len(t.entries))
	t.entries = append(t.entries, denseEntry{dst: id})
	if i := int(id); i >= 0 && i < denseDirectLimit {
		for len(t.direct) <= i {
			t.direct = append(t.direct, 0)
		}
		t.direct[i] = x + 1
	} else {
		if t.ext == nil {
			t.ext = make(map[netsim.NodeID]int32)
		}
		t.ext[id] = x
	}
	return x
}

// stateValid reports whether e is state-valid in the oracle's sense,
// applying the deferred purge flip: if a purge tick has passed the entry's
// deadline since it became valid, the eager scan would have flipped it.
func (t *denseTable) stateValid(e *denseEntry) bool {
	if !e.valid {
		return false
	}
	if e.expiresAt <= t.lastPurge {
		e.valid = false
		return false
	}
	return true
}

// liveEntry returns dst's entry if it is state-valid and unexpired,
// flipping a valid-but-expired entry to invalid (the oracle's read side
// effect). The pointer is only valid until the next intern.
func (t *denseTable) liveEntry(dst netsim.NodeID) *denseEntry {
	x := t.index(dst)
	if x < 0 {
		return nil
	}
	e := &t.entries[x]
	if !t.stateValid(e) {
		return nil
	}
	if t.kernel.Now() >= e.expiresAt {
		e.valid = false
		return nil
	}
	return e
}

func (t *denseTable) validNext(dst netsim.NodeID) (netsim.NodeID, int, bool) {
	e := t.liveEntry(dst)
	if e == nil {
		return 0, 0, false
	}
	return e.nextHop, e.hops, true
}

func (t *denseTable) lastSeq(dst netsim.NodeID) (uint32, bool, bool) {
	x := t.index(dst)
	if x < 0 {
		return 0, false, false
	}
	e := &t.entries[x]
	return e.seq, e.seqKnown, true
}

func (t *denseTable) update(dst netsim.NodeID, seq uint32, seqKnown bool, hops int, next netsim.NodeID) {
	now := t.kernel.Now()
	x := t.intern(dst)
	e := &t.entries[x]
	if t.stateValid(e) && e.seqKnown && seqKnown {
		newer := int32(seq-e.seq) > 0
		sameShorter := seq == e.seq && hops < e.hops
		if !newer && !sameShorter {
			if now+t.timeout > e.expiresAt {
				e.expiresAt = now + t.timeout
			}
			return
		}
	}
	e.seq = seq
	e.seqKnown = seqKnown
	e.hops = hops
	e.nextHop = next
	e.valid = true
	e.expiresAt = now + t.timeout
}

func (t *denseTable) refresh(dst netsim.NodeID) {
	if e := t.liveEntry(dst); e != nil {
		exp := t.kernel.Now() + t.timeout
		if exp > e.expiresAt {
			e.expiresAt = exp
		}
	}
}

func (t *denseTable) breakVia(neighbor netsim.NodeID, buf []AddrBlock) []AddrBlock {
	for i := range t.entries {
		e := &t.entries[i]
		if t.stateValid(e) && e.nextHop == neighbor {
			e.valid = false
			e.seq++
			buf = append(buf, AddrBlock{Addr: e.dst, Seq: e.seq})
		}
	}
	return buf
}

func (t *denseTable) rerrApply(dst, from netsim.NodeID, seq uint32) (uint32, bool) {
	x := t.index(dst)
	if x < 0 {
		return 0, false
	}
	e := &t.entries[x]
	if !t.stateValid(e) || e.nextHop != from {
		return 0, false
	}
	e.valid = false
	if int32(seq-e.seq) > 0 {
		e.seq = seq
	}
	return e.seq, true
}

// purgeExpired records the tick; the flips it implies are applied lazily
// by stateValid on the next touch of each affected entry.
func (t *denseTable) purgeExpired() {
	t.lastPurge = t.kernel.Now()
}
