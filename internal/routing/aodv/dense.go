package aodv

import (
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// denseTable is the production routing table: entries live in a flat
// slice addressed through interned indices, so the per-packet path
// (validNext + refresh on every forwarded frame) does no map work and no
// allocation once the destination set has been seen. Expiry is lazy —
// one ExpiryHeap item per valid entry, re-registered on refresh by the
// heap itself — so the periodic purge costs O(expired) instead of a full
// table scan, while flipping exactly the entries the oracle's eager scan
// would flip at the same tick (a heap item's deadline never exceeds its
// entry's expiresAt, so every expired entry has surfaced by the time the
// purge runs).
//
// Interning is hybrid: real node ids are small and dense, so they map
// through a direct slice; ids outside [0, denseDirectLimit) — the HNA
// uplink's synthetic external addresses — fall back to a map that the
// steady-state forwarding path never touches.
type denseTable struct {
	kernel  *sim.Kernel
	direct  []int32                 // NodeID -> entry index + 1; 0 = absent
	ext     map[netsim.NodeID]int32 // entry index for ids outside the direct range
	entries []denseEntry
	exp     sim.ExpiryHeap[int32]
}

// denseDirectLimit bounds the direct-slice id range; beyond it (synthetic
// external destinations validate up to 1<<30) the map fallback applies.
const denseDirectLimit = 1 << 16

type denseEntry struct {
	dst       netsim.NodeID
	seq       uint32
	seqKnown  bool
	state     routeState
	hasPrec   bool // replaces the oracle's precursor set: only len>0 is ever read
	inHeap    bool
	hops      int
	nextHop   netsim.NodeID
	expiresAt sim.Time
}

var _ routeTable = (*denseTable)(nil)

func newDenseTable(k *sim.Kernel) *denseTable {
	return &denseTable{kernel: k}
}

// index returns the entry index for id, or -1 when no entry exists.
func (t *denseTable) index(id netsim.NodeID) int32 {
	if i := int(id); i >= 0 && i < len(t.direct) {
		return t.direct[i] - 1
	}
	if int(id) >= 0 && int(id) < denseDirectLimit {
		return -1 // inside the direct range but the slice hasn't grown there
	}
	if x, ok := t.ext[id]; ok {
		return x
	}
	return -1
}

// intern returns the entry index for id, creating an empty entry slot on
// first sight.
func (t *denseTable) intern(id netsim.NodeID) int32 {
	if x := t.index(id); x >= 0 {
		return x
	}
	x := int32(len(t.entries))
	t.entries = append(t.entries, denseEntry{dst: id})
	if i := int(id); i >= 0 && i < denseDirectLimit {
		for len(t.direct) <= i {
			t.direct = append(t.direct, 0)
		}
		t.direct[i] = x + 1
	} else {
		if t.ext == nil {
			t.ext = make(map[netsim.NodeID]int32)
		}
		t.ext[id] = x
	}
	return x
}

// liveEntry returns dst's entry if it is state-valid and unexpired,
// flipping a valid-but-expired entry to invalid (the oracle's read side
// effect). The pointer is only valid until the next intern.
func (t *denseTable) liveEntry(dst netsim.NodeID) *denseEntry {
	x := t.index(dst)
	if x < 0 {
		return nil
	}
	e := &t.entries[x]
	if e.state != routeValid {
		return nil
	}
	if t.kernel.Now() >= e.expiresAt {
		e.state = routeInvalid
		return nil
	}
	return e
}

func (t *denseTable) validNext(dst netsim.NodeID) (netsim.NodeID, int, bool) {
	e := t.liveEntry(dst)
	if e == nil {
		return 0, 0, false
	}
	return e.nextHop, e.hops, true
}

func (t *denseTable) replyInfo(dst netsim.NodeID) (int, uint32, bool, sim.Time, bool) {
	e := t.liveEntry(dst)
	if e == nil {
		return 0, 0, false, 0, false
	}
	return e.hops, e.seq, e.seqKnown, e.expiresAt, true
}

func (t *denseTable) lastSeq(dst netsim.NodeID) (uint32, bool, bool) {
	x := t.index(dst)
	if x < 0 {
		return 0, false, false
	}
	e := &t.entries[x]
	return e.seq, e.seqKnown, true
}

func (t *denseTable) update(dst netsim.NodeID, seq uint32, seqKnown bool, hops int, next netsim.NodeID, lifetime sim.Time) {
	now := t.kernel.Now()
	x := t.intern(dst)
	e := &t.entries[x]
	if e.state == routeValid && e.seqKnown && seqKnown {
		newer := int32(seq-e.seq) > 0
		sameButShorter := seq == e.seq && hops < e.hops
		if !newer && !sameButShorter {
			if now+lifetime > e.expiresAt {
				e.expiresAt = now + lifetime
			}
			return
		}
	}
	e.seq = seq
	e.seqKnown = seqKnown
	e.hops = hops
	e.nextHop = next
	e.state = routeValid
	if now+lifetime > e.expiresAt {
		e.expiresAt = now + lifetime
	}
	if !e.inHeap {
		e.inHeap = true
		t.exp.Push(x, e.expiresAt)
	}
}

func (t *denseTable) refresh(dst netsim.NodeID, lifetime sim.Time) {
	if e := t.liveEntry(dst); e != nil {
		exp := t.kernel.Now() + lifetime
		if exp > e.expiresAt {
			e.expiresAt = exp
		}
	}
}

func (t *denseTable) addPrecursor(dst, prev netsim.NodeID) {
	if x := t.index(dst); x >= 0 {
		t.entries[x].hasPrec = true
	}
}

func (t *denseTable) breakVia(next netsim.NodeID, buf []UnreachableDst) []UnreachableDst {
	for i := range t.entries {
		e := &t.entries[i]
		if e.state == routeValid && e.nextHop == next {
			e.state = routeInvalid
			e.seq++
			buf = append(buf, UnreachableDst{Dst: e.dst, Seq: e.seq})
		}
	}
	return buf
}

func (t *denseTable) rerrApply(dst, from netsim.NodeID, seq uint32) (uint32, bool, bool) {
	x := t.index(dst)
	if x < 0 {
		return 0, false, false
	}
	e := &t.entries[x]
	if e.state != routeValid || e.nextHop != from {
		return 0, false, false
	}
	e.state = routeInvalid
	if int32(seq-e.seq) > 0 {
		e.seq = seq
	}
	return e.seq, e.hasPrec, true
}

func (t *denseTable) purgeExpired() {
	now := t.kernel.Now()
	t.exp.Expire(now,
		func(x int32) (sim.Time, bool) {
			e := &t.entries[x]
			if e.state != routeValid {
				return 0, false
			}
			return e.expiresAt, true
		},
		func(x int32) {
			e := &t.entries[x]
			e.inHeap = false
			if e.state == routeValid {
				// keep was true, so expiresAt <= now: expired for real.
				e.state = routeInvalid
			}
		})
}
