package aodv

import (
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// TestDataPlaneZeroAlloc pins the dense table's per-packet work at exactly
// zero allocations once the destination set is warm: route lookup plus
// refresh (the forwarding path), steady route updates (RREP/reverse-route
// maintenance), the link-break → RERR cycle through the reused scratch
// buffer, and the lazy purge tick. One destination sits in the map
// fallback range (an external uplink address) so the hybrid interning is
// exercised too.
func TestDataPlaneZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	tbl := newDenseTable(k)
	const lifetime = 3 * sim.Second
	dsts := []netsim.NodeID{1 << 30}
	for d := netsim.NodeID(0); d < 64; d++ {
		dsts = append(dsts, d)
	}
	var buf []UnreachableDst
	seq := uint32(1)
	steady := func() {
		for _, d := range dsts {
			tbl.update(d, seq, true, 2, 5, lifetime)
		}
		for _, d := range dsts {
			tbl.validNext(d)
			tbl.refresh(d, lifetime)
		}
		buf = tbl.breakVia(5, buf[:0])
		for _, d := range dsts {
			tbl.rerrApply(d, 5, seq)
		}
		tbl.purgeExpired()
		seq++
	}
	steady() // warm: intern the destinations, size the scratch buffer
	if allocs := testing.AllocsPerRun(200, steady); allocs != 0 {
		t.Fatalf("steady data-plane table work allocates %.1f/op, want 0", allocs)
	}
}

// warmTable interns n destinations with valid routes via next hop 5.
func warmTable(tbl routeTable, n int, lifetime sim.Time) {
	for d := netsim.NodeID(0); d < netsim.NodeID(n); d++ {
		tbl.update(d, 1, true, 2, 5, lifetime)
	}
}

// BenchmarkAODVForward measures the per-packet table work of forwarding —
// one validNext plus the two refreshes every forwarded frame performs —
// on a warm 64-destination table. "dense" is the production path (zero
// allocations); "oracle" is the retained map-based reference, which is
// also the pre-optimization cost profile. See PERF.md for the table.
func BenchmarkAODVForward(b *testing.B) {
	const lifetime = 3 * sim.Second
	for _, mode := range []string{"dense", "oracle"} {
		b.Run(mode, func(b *testing.B) {
			k := sim.NewKernel()
			var tbl routeTable
			if mode == "oracle" {
				tbl = newMapTable(k)
			} else {
				tbl = newDenseTable(k)
			}
			warmTable(tbl, 64, lifetime)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := netsim.NodeID(i & 63)
				tbl.validNext(d)
				tbl.refresh(d, lifetime)
				tbl.refresh(5, lifetime)
			}
		})
	}
}

// BenchmarkAODVRREQStorm runs a 49-node static grid where eight senders
// simultaneously discover routes to distinct far destinations — an RREQ
// flood storm over the whole network, followed by RREPs and the first
// data deliveries — for three simulated seconds per iteration, with the
// routing tables on the dense fast path vs the map oracle.
func BenchmarkAODVRREQStorm(b *testing.B) {
	const n = 49
	positions := make([]geometry.Vec2, n)
	for i := range positions {
		positions[i] = geometry.Vec2{X: float64(i % 7 * 180), Y: float64(i / 7 * 180)}
	}
	for _, mode := range []string{"dense", "oracle"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w, err := netsim.NewWorld(netsim.WorldConfig{
					Nodes: n, Seed: 1, Static: positions,
				}, func(node *netsim.Node) netsim.Router {
					return New(node, Config{Oracle: mode == "oracle"})
				})
				if err != nil {
					b.Fatal(err)
				}
				for s := 0; s < 8; s++ {
					src := w.Node(s)
					dst := netsim.NodeID(n - 1 - s)
					w.Node(int(dst)).AttachPort(netsim.PortCBR+s, netsim.PortFunc(func(*netsim.Packet, sim.Time) {}))
					port := netsim.PortCBR + s
					w.Kernel.Schedule(0, func() {
						src.SendData(src.NewPacket(dst, port, 128))
					})
				}
				b.StartTimer()
				w.Run(3 * sim.Second)
			}
		})
	}
}
