package aodv

import (
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// routeState distinguishes usable from recently-invalidated entries.
type routeState int

const (
	routeValid routeState = iota + 1
	routeInvalid
)

// route is one routing-table entry (RFC 3561 §2).
type route struct {
	dst        netsim.NodeID
	seq        uint32
	seqKnown   bool
	hops       int
	nextHop    netsim.NodeID
	expiresAt  sim.Time
	state      routeState
	precursors map[netsim.NodeID]struct{}
}

func (r *route) addPrecursor(id netsim.NodeID) {
	if r.precursors == nil {
		r.precursors = make(map[netsim.NodeID]struct{})
	}
	r.precursors[id] = struct{}{}
}

// table is the per-node routing table.
type table struct {
	kernel *sim.Kernel
	routes map[netsim.NodeID]*route
}

func newTable(k *sim.Kernel) *table {
	return &table{kernel: k, routes: make(map[netsim.NodeID]*route)}
}

// lookup returns the entry for dst if it exists (valid or not).
func (t *table) lookup(dst netsim.NodeID) *route {
	return t.routes[dst]
}

// validRoute returns a live, unexpired route to dst or nil.
func (t *table) validRoute(dst netsim.NodeID) *route {
	r := t.routes[dst]
	if r == nil || r.state != routeValid {
		return nil
	}
	if t.kernel.Now() >= r.expiresAt {
		r.state = routeInvalid
		return nil
	}
	return r
}

// update installs or refreshes a route following the RFC 3561 §6.2 rules:
// accept when the entry is new, the sequence number is newer, equal-seq with
// fewer hops, or the existing entry is invalid/unknown-seq.
func (t *table) update(dst netsim.NodeID, seq uint32, seqKnown bool, hops int, next netsim.NodeID, lifetime sim.Time) *route {
	now := t.kernel.Now()
	r := t.routes[dst]
	if r == nil {
		r = &route{dst: dst}
		t.routes[dst] = r
	} else if r.state == routeValid && r.seqKnown && seqKnown {
		newer := int32(seq-r.seq) > 0
		sameButShorter := seq == r.seq && hops < r.hops
		if !newer && !sameButShorter {
			// Keep the existing entry but stretch its lifetime.
			if now+lifetime > r.expiresAt {
				r.expiresAt = now + lifetime
			}
			return r
		}
	}
	r.seq = seq
	r.seqKnown = seqKnown
	r.hops = hops
	r.nextHop = next
	r.state = routeValid
	if now+lifetime > r.expiresAt {
		r.expiresAt = now + lifetime
	}
	return r
}

// refresh extends the lifetime of a valid route (data traffic keeps active
// routes alive, RFC 3561 §6.2).
func (t *table) refresh(dst netsim.NodeID, lifetime sim.Time) {
	if r := t.validRoute(dst); r != nil {
		exp := t.kernel.Now() + lifetime
		if exp > r.expiresAt {
			r.expiresAt = exp
		}
	}
}

// invalidate marks the route to dst broken, bumping its sequence number so
// stale information cannot resurrect it (RFC 3561 §6.11). It returns the
// entry or nil.
func (t *table) invalidate(dst netsim.NodeID) *route {
	r := t.routes[dst]
	if r == nil || r.state != routeValid {
		return nil
	}
	r.state = routeInvalid
	r.seq++
	return r
}

// routesVia returns the valid routes whose next hop is the given neighbor.
func (t *table) routesVia(next netsim.NodeID) []*route {
	var out []*route
	for _, r := range t.routes {
		if r.state == routeValid && r.nextHop == next {
			out = append(out, r)
		}
	}
	return out
}

// purgeExpired flips expired valid routes to invalid.
func (t *table) purgeExpired() {
	now := t.kernel.Now()
	for _, r := range t.routes {
		if r.state == routeValid && now >= r.expiresAt {
			r.state = routeInvalid
		}
	}
}
