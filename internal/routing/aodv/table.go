package aodv

import (
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// routeState distinguishes usable from recently-invalidated entries.
type routeState int

const (
	routeValid routeState = iota + 1
	routeInvalid
)

// routeTable is the table contract both implementations satisfy: the
// dense-index fast path (dense.go) and the retained map-based oracle
// below, selected by Config.Oracle. The interface is strictly
// value-based — no method hands out a pointer into table storage —
// because the dense path keeps entries in a growable slice, where an
// escaping pointer would dangle across inserts.
//
// Several methods share a read side effect the RFC's active-route check
// has in the oracle: reading a valid-but-expired entry flips it to
// invalid on the spot. The flip timing (on read, and at the periodic
// purge) is part of the contract — RERR contents depend on which entries
// are still state-valid — and the run-identity tests pin both
// implementations to it.
type routeTable interface {
	// validNext reports the forwarding state of a live, unexpired route
	// to dst.
	validNext(dst netsim.NodeID) (next netsim.NodeID, hops int, ok bool)
	// replyInfo reports what an intermediate RREP answer needs from a
	// live route (RFC 3561 §6.6.2). Same flip side effect as validNext.
	replyInfo(dst netsim.NodeID) (hops int, seq uint32, seqKnown bool, expiresAt sim.Time, ok bool)
	// lastSeq reports the stored sequence state for dst regardless of
	// route validity (RREQ destination-seq seeding, RERR case ii).
	lastSeq(dst netsim.NodeID) (seq uint32, seqKnown bool, ok bool)
	// update installs or refreshes a route per RFC 3561 §6.2.
	update(dst netsim.NodeID, seq uint32, seqKnown bool, hops int, next netsim.NodeID, lifetime sim.Time)
	// refresh extends the lifetime of a valid route (data traffic keeps
	// active routes alive, RFC 3561 §6.2).
	refresh(dst netsim.NodeID, lifetime sim.Time)
	// addPrecursor marks dst's entry, when one exists, as having
	// precursors (the only precursor fact the protocol ever reads).
	addPrecursor(dst, prev netsim.NodeID)
	// breakVia invalidates every valid route whose next hop is the
	// broken neighbor, bumping each sequence number and appending the
	// (dst, bumped seq) pairs to buf (RFC 3561 §6.11 case i).
	breakVia(neighbor netsim.NodeID, buf []UnreachableDst) []UnreachableDst
	// rerrApply processes one received RERR entry (§6.11): matched when
	// a valid route to dst via from existed — it is flipped invalid
	// without a seq bump, adopting the reported seq when newer — and
	// propagate when that route had precursors. seqOut is the entry's
	// sequence number after adoption.
	rerrApply(dst, from netsim.NodeID, seq uint32) (seqOut uint32, propagate, matched bool)
	// purgeExpired retires expired valid routes (periodic tick).
	purgeExpired()
}

// route is one routing-table entry (RFC 3561 §2) of the map oracle.
type route struct {
	dst        netsim.NodeID
	seq        uint32
	seqKnown   bool
	hops       int
	nextHop    netsim.NodeID
	expiresAt  sim.Time
	state      routeState
	precursors map[netsim.NodeID]struct{}
}

func (r *route) addPrecursor(id netsim.NodeID) {
	if r.precursors == nil {
		r.precursors = make(map[netsim.NodeID]struct{})
	}
	r.precursors[id] = struct{}{}
}

// mapTable is the retained map-based oracle implementation.
type mapTable struct {
	kernel *sim.Kernel
	routes map[netsim.NodeID]*route
}

var _ routeTable = (*mapTable)(nil)

func newMapTable(k *sim.Kernel) *mapTable {
	return &mapTable{kernel: k, routes: make(map[netsim.NodeID]*route)}
}

// validRoute returns a live, unexpired route to dst or nil, flipping an
// expired valid entry to invalid.
func (t *mapTable) validRoute(dst netsim.NodeID) *route {
	r := t.routes[dst]
	if r == nil || r.state != routeValid {
		return nil
	}
	if t.kernel.Now() >= r.expiresAt {
		r.state = routeInvalid
		return nil
	}
	return r
}

func (t *mapTable) validNext(dst netsim.NodeID) (netsim.NodeID, int, bool) {
	r := t.validRoute(dst)
	if r == nil {
		return 0, 0, false
	}
	return r.nextHop, r.hops, true
}

func (t *mapTable) replyInfo(dst netsim.NodeID) (int, uint32, bool, sim.Time, bool) {
	r := t.validRoute(dst)
	if r == nil {
		return 0, 0, false, 0, false
	}
	return r.hops, r.seq, r.seqKnown, r.expiresAt, true
}

func (t *mapTable) lastSeq(dst netsim.NodeID) (uint32, bool, bool) {
	r := t.routes[dst]
	if r == nil {
		return 0, false, false
	}
	return r.seq, r.seqKnown, true
}

// update follows the RFC 3561 §6.2 rules: accept when the entry is new,
// the sequence number is newer, equal-seq with fewer hops, or the
// existing entry is invalid/unknown-seq.
func (t *mapTable) update(dst netsim.NodeID, seq uint32, seqKnown bool, hops int, next netsim.NodeID, lifetime sim.Time) {
	now := t.kernel.Now()
	r := t.routes[dst]
	if r == nil {
		r = &route{dst: dst}
		t.routes[dst] = r
	} else if r.state == routeValid && r.seqKnown && seqKnown {
		newer := int32(seq-r.seq) > 0
		sameButShorter := seq == r.seq && hops < r.hops
		if !newer && !sameButShorter {
			// Keep the existing entry but stretch its lifetime.
			if now+lifetime > r.expiresAt {
				r.expiresAt = now + lifetime
			}
			return
		}
	}
	r.seq = seq
	r.seqKnown = seqKnown
	r.hops = hops
	r.nextHop = next
	r.state = routeValid
	if now+lifetime > r.expiresAt {
		r.expiresAt = now + lifetime
	}
}

func (t *mapTable) refresh(dst netsim.NodeID, lifetime sim.Time) {
	if r := t.validRoute(dst); r != nil {
		exp := t.kernel.Now() + lifetime
		if exp > r.expiresAt {
			r.expiresAt = exp
		}
	}
}

func (t *mapTable) addPrecursor(dst, prev netsim.NodeID) {
	if r := t.routes[dst]; r != nil {
		r.addPrecursor(prev)
	}
}

// breakVia invalidates the valid routes through the broken neighbor,
// bumping each sequence number so stale information cannot resurrect
// them (RFC 3561 §6.11). Map iteration order varies, but RERR entries
// are processed independently by every receiver and the wire size
// depends only on the count, so the order never reaches the results —
// the same argument that lets the dense path use insertion order.
func (t *mapTable) breakVia(next netsim.NodeID, buf []UnreachableDst) []UnreachableDst {
	for _, r := range t.routes {
		if r.state == routeValid && r.nextHop == next {
			r.state = routeInvalid
			r.seq++
			buf = append(buf, UnreachableDst{Dst: r.dst, Seq: r.seq})
		}
	}
	return buf
}

func (t *mapTable) rerrApply(dst, from netsim.NodeID, seq uint32) (uint32, bool, bool) {
	r := t.routes[dst]
	if r == nil || r.state != routeValid || r.nextHop != from {
		return 0, false, false
	}
	r.state = routeInvalid
	if int32(seq-r.seq) > 0 {
		r.seq = seq
	}
	return r.seq, len(r.precursors) > 0, true
}

// purgeExpired flips expired valid routes to invalid.
func (t *mapTable) purgeExpired() {
	now := t.kernel.Now()
	for _, r := range t.routes {
		if r.state == routeValid && now >= r.expiresAt {
			r.state = routeInvalid
		}
	}
}
