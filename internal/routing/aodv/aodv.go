package aodv

import (
	"fmt"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// Config holds protocol timing parameters; zero fields take the RFC 3561
// defaults (with Table I's 1 s HELLO interval).
type Config struct {
	HelloInterval      sim.Time // default 1 s (Table I)
	AllowedHelloLoss   int      // default 2
	ActiveRouteTimeout sim.Time // default 3 s
	MyRouteTimeout     sim.Time // default 6 s
	NodeTraversalTime  sim.Time // default 40 ms
	NetDiameter        int      // default 35
	RREQRetries        int      // default 2
	// ExpandingRing enables the TTL expanding-ring search of RFC 3561 §6.4
	// (default true; the ablation bench disables it).
	ExpandingRing *bool
	// TTLStart, TTLIncrement, TTLThreshold tune the ring search.
	TTLStart, TTLIncrement, TTLThreshold int
	// BufferCap bounds the number of data packets queued per destination
	// while discovery runs (default 64, matching ns-2's sendBuffer).
	BufferCap int
	// Oracle routes the routing table through the retained map-based
	// implementation instead of the dense-index fast path. Whole runs are
	// bit-identical between the two (differential run-identity tests);
	// the switch lets any run be replayed against the oracle.
	Oracle bool
}

func (c *Config) normalize() {
	if c.HelloInterval == 0 {
		c.HelloInterval = sim.Second
	}
	if c.AllowedHelloLoss == 0 {
		c.AllowedHelloLoss = 2
	}
	if c.ActiveRouteTimeout == 0 {
		c.ActiveRouteTimeout = 3 * sim.Second
	}
	if c.MyRouteTimeout == 0 {
		c.MyRouteTimeout = 2 * c.ActiveRouteTimeout
	}
	if c.NodeTraversalTime == 0 {
		c.NodeTraversalTime = 40 * sim.Millisecond
	}
	if c.NetDiameter == 0 {
		c.NetDiameter = 35
	}
	if c.RREQRetries == 0 {
		c.RREQRetries = 2
	}
	if c.ExpandingRing == nil {
		t := true
		c.ExpandingRing = &t
	}
	if c.TTLStart == 0 {
		c.TTLStart = 5
	}
	if c.TTLIncrement == 0 {
		c.TTLIncrement = 2
	}
	if c.TTLThreshold == 0 {
		c.TTLThreshold = 7
	}
	if c.BufferCap == 0 {
		c.BufferCap = 64
	}
}

func (c Config) netTraversalTime() sim.Time {
	return 2 * c.NodeTraversalTime * sim.Time(c.NetDiameter)
}

func (c Config) ringTraversalTime(ttl int) sim.Time {
	return 2 * c.NodeTraversalTime * sim.Time(ttl+2)
}

// discovery tracks one in-progress route discovery. Records (and their
// timers and buffers) are pooled per router: a discovery is only released
// after its timer has been stopped or has fired its final time, so a
// recycled record can never receive a stale callback.
type discovery struct {
	dst     netsim.NodeID
	retries int
	ttl     int
	timer   *sim.Timer
	buffer  []*netsim.Packet
}

// seenKey deduplicates RREQ floods.
type seenKey struct {
	src netsim.NodeID
	id  uint32
}

// Router is one node's AODV instance.
type Router struct {
	cfg  Config
	node *netsim.Node

	table       routeTable
	seq         uint32
	rreqID      uint32
	seen        sim.ExpiringSet[seenKey]
	discoveries map[netsim.NodeID]*discovery
	discFree    []*discovery
	neighbors   map[netsim.NodeID]*sim.Timer // hello liveness

	// rerrBuf is the reusable RERR collection scratch; broadcastRERR
	// copies it into an exact-size wire slice, so it never escapes.
	rerrBuf []UnreachableDst

	helloTicker *sim.Ticker
	purgeTicker *sim.Ticker

	ctrlPackets uint64
	ctrlBytes   uint64
}

var _ netsim.Router = (*Router)(nil)

// New builds an AODV router for node.
func New(node *netsim.Node, cfg Config) *Router {
	cfg.normalize()
	r := &Router{
		cfg:         cfg,
		node:        node,
		discoveries: make(map[netsim.NodeID]*discovery),
		neighbors:   make(map[netsim.NodeID]*sim.Timer),
	}
	if cfg.Oracle {
		r.table = newMapTable(node.Kernel())
	} else {
		r.table = newDenseTable(node.Kernel())
	}
	jitter := func() sim.Time {
		// ±10% emission jitter, standard to decorrelate HELLO storms.
		span := int64(cfg.HelloInterval / 5)
		return sim.Time(node.Rand().Int63n(span) - span/2)
	}
	r.helloTicker = sim.NewTicker(node.Kernel(), cfg.HelloInterval, jitter, r.sendHello)
	r.purgeTicker = sim.NewTicker(node.Kernel(), sim.Second, nil, r.purge)
	return r
}

// markSeen installs an RREQ dedup entry, expiring after PATH_DISCOVERY_TIME
// (RFC 3561 §10) through a lazy heap so the periodic purge costs
// O(expired). The seed implementation never retired these entries, which
// grew the table without bound over long runs.
func (r *Router) markSeen(key seenKey) {
	r.seen.Add(key, r.node.Kernel().Now()+2*r.cfg.netTraversalTime())
}

// SeenEntries reports the dedup-table size (for memory-stability tests).
func (r *Router) SeenEntries() int { return r.seen.Len() }

func (r *Router) purge() {
	r.table.purgeExpired()
	r.seen.Expire(r.node.Kernel().Now())
}

// Name implements netsim.Router.
func (r *Router) Name() string { return "aodv" }

// Start implements netsim.Router.
func (r *Router) Start() {
	r.helloTicker.Start()
	r.purgeTicker.Start()
}

// Stop implements netsim.Router.
func (r *Router) Stop() {
	r.helloTicker.Stop()
	r.purgeTicker.Stop()
	for _, d := range r.discoveries {
		d.timer.Stop()
	}
	for _, t := range r.neighbors {
		t.Stop()
	}
}

// ControlTraffic implements netsim.Router.
func (r *Router) ControlTraffic() (uint64, uint64) { return r.ctrlPackets, r.ctrlBytes }

// EachBuffered visits every data packet parked in route-discovery buffers —
// the router's share of the custody set the packet-conservation invariant
// audits.
func (r *Router) EachBuffered(f func(p *netsim.Packet)) {
	for _, d := range r.discoveries {
		for _, p := range d.buffer {
			f(p)
		}
	}
}

// Table exposes route lookups for tests: it reports the next hop and
// whether a valid route to dst exists.
func (r *Router) Table(dst netsim.NodeID) (next netsim.NodeID, hops int, ok bool) {
	return r.table.validNext(dst)
}

// newDiscovery takes a discovery record from the pool (or builds one with
// its timer) and registers it for dst.
func (r *Router) newDiscovery(dst netsim.NodeID) *discovery {
	var d *discovery
	if n := len(r.discFree); n > 0 {
		d = r.discFree[n-1]
		r.discFree[n-1] = nil
		r.discFree = r.discFree[:n-1]
		d.dst, d.retries, d.ttl = dst, 0, 0
	} else {
		d = &discovery{dst: dst}
		d.timer = sim.NewTimer(r.node.Kernel(), func() { r.discoveryTimeout(d) })
	}
	r.discoveries[dst] = d
	return d
}

// releaseDiscovery returns a record whose timer is no longer scheduled to
// the pool, dropping its buffered-packet references.
func (r *Router) releaseDiscovery(d *discovery) {
	for i := range d.buffer {
		d.buffer[i] = nil
	}
	d.buffer = d.buffer[:0]
	r.discFree = append(r.discFree, d)
}

// sendControl wraps an AODV message into a control packet and transmits it.
func (r *Router) sendControl(next netsim.NodeID, dst netsim.NodeID, ttl, size int, msg any) {
	p := &netsim.Packet{
		UID:       0, // control packets are not tracked by metrics UIDs
		Kind:      netsim.KindControl,
		Src:       r.node.ID(),
		Dst:       dst,
		Port:      netsim.PortRouting,
		TTL:       ttl,
		Size:      size + netsim.IPHeaderBytes,
		Payload:   msg,
		CreatedAt: r.node.Kernel().Now(),
	}
	r.ctrlPackets++
	r.ctrlBytes += uint64(p.Size)
	r.node.SendFrame(next, p)
}

// Origin implements netsim.Router.
func (r *Router) Origin(p *netsim.Packet) {
	if next, _, ok := r.table.validNext(p.Dst); ok {
		r.table.refresh(p.Dst, r.cfg.ActiveRouteTimeout)
		r.table.refresh(next, r.cfg.ActiveRouteTimeout)
		r.node.SendFrame(next, p)
		return
	}
	r.bufferAndDiscover(p)
}

func (r *Router) bufferAndDiscover(p *netsim.Packet) {
	d := r.discoveries[p.Dst]
	if d != nil {
		if len(d.buffer) >= r.cfg.BufferCap {
			r.node.DropData(p, "aodv:buffer-full")
			return
		}
		d.buffer = append(d.buffer, p)
		return
	}
	d = r.newDiscovery(p.Dst)
	d.buffer = append(d.buffer, p)
	r.sendRREQ(d)
}

func (r *Router) sendRREQ(d *discovery) {
	r.seq++ // RFC 3561 §6.1: increment own seq before a RREQ
	r.rreqID++
	ttl := r.cfg.NetDiameter
	if *r.cfg.ExpandingRing {
		switch {
		case d.ttl == 0:
			ttl = r.cfg.TTLStart
		case d.ttl+r.cfg.TTLIncrement <= r.cfg.TTLThreshold:
			ttl = d.ttl + r.cfg.TTLIncrement
		default:
			ttl = r.cfg.NetDiameter
		}
	}
	d.ttl = ttl
	dstSeq, dstSeqKnown, _ := r.table.lastSeq(d.dst)
	if !dstSeqKnown {
		dstSeq = 0
	}
	msg := &RREQ{
		ID:          r.rreqID,
		Dst:         d.dst,
		DstSeq:      dstSeq,
		DstSeqKnown: dstSeqKnown,
		Src:         r.node.ID(),
		SrcSeq:      r.seq,
	}
	r.markSeen(seenKey{src: r.node.ID(), id: msg.ID})
	r.sendControl(netsim.BroadcastID, netsim.BroadcastID, ttl, rreqBytes, msg)
	d.timer.Reset(r.cfg.ringTraversalTime(ttl))
}

func (r *Router) discoveryTimeout(d *discovery) {
	if _, _, ok := r.table.validNext(d.dst); ok {
		r.flushBuffer(d)
		return
	}
	d.retries++
	maxTries := r.cfg.RREQRetries
	if d.retries > maxTries {
		for _, p := range d.buffer {
			r.node.DropData(p, "aodv:no-route")
		}
		delete(r.discoveries, d.dst)
		r.releaseDiscovery(d)
		return
	}
	r.sendRREQ(d)
}

func (r *Router) flushBuffer(d *discovery) {
	delete(r.discoveries, d.dst)
	d.timer.Stop()
	for i, p := range d.buffer {
		d.buffer[i] = nil
		// Origin may open a fresh discovery for the same destination if
		// the route evaporated mid-flush; d is already unregistered, so
		// the two records never alias.
		r.Origin(p)
	}
	d.buffer = d.buffer[:0]
	r.releaseDiscovery(d)
}

// Receive implements netsim.Router.
func (r *Router) Receive(p *netsim.Packet, from netsim.NodeID) {
	if p.Kind == netsim.KindControl {
		switch msg := p.Payload.(type) {
		case *RREQ:
			r.handleRREQ(p, msg, from)
		case *RREP:
			r.handleRREP(p, msg, from)
		case *RERR:
			r.handleRERR(msg, from)
		default:
			panic(fmt.Sprintf("aodv: unexpected control payload %T", p.Payload))
		}
		return
	}
	r.forwardData(p, from)
}

func (r *Router) forwardData(p *netsim.Packet, from netsim.NodeID) {
	p.TTL--
	if p.TTL <= 0 {
		r.node.DropData(p, "aodv:ttl")
		return
	}
	next, _, ok := r.table.validNext(p.Dst)
	if !ok {
		// RFC 3561 §6.11 case (ii): data for a destination we cannot reach.
		// DropData may recycle p, so read the destination first.
		dst := p.Dst
		r.node.DropData(p, "aodv:no-forward-route")
		seq, _, _ := r.table.lastSeq(dst)
		r.rerrBuf = append(r.rerrBuf[:0], UnreachableDst{Dst: dst, Seq: seq})
		r.broadcastRERR(r.rerrBuf)
		return
	}
	// Active data refreshes source, destination and next-hop routes.
	r.table.refresh(p.Dst, r.cfg.ActiveRouteTimeout)
	r.table.refresh(next, r.cfg.ActiveRouteTimeout)
	r.table.refresh(p.Src, r.cfg.ActiveRouteTimeout)
	r.table.refresh(from, r.cfg.ActiveRouteTimeout)
	r.node.NoteForward(p)
	r.node.SendFrame(next, p)
}

func (r *Router) handleRREQ(p *netsim.Packet, msg *RREQ, from netsim.NodeID) {
	me := r.node.ID()
	if msg.Src == me {
		return // our own flood echoed back
	}
	key := seenKey{src: msg.Src, id: msg.ID}
	if r.seen.Contains(key) {
		return
	}
	r.markSeen(key)

	// Reverse route to the previous hop and to the originator (§6.5).
	r.table.update(from, 0, false, 1, from, r.cfg.ActiveRouteTimeout)
	hops := msg.HopCount + 1
	minLifetime := 2*r.cfg.netTraversalTime() - sim.Time(2*hops)*r.cfg.NodeTraversalTime
	r.table.update(msg.Src, msg.SrcSeq, true, hops, from, minLifetime)

	if msg.Dst == me {
		// RFC 3561 §6.6.1: destination replies, seq = max(own, RREQ's).
		if msg.DstSeqKnown && int32(msg.DstSeq-r.seq) > 0 {
			r.seq = msg.DstSeq
		}
		rep := &RREP{
			Dst:      me,
			DstSeq:   r.seq,
			Src:      msg.Src,
			Lifetime: int64(r.cfg.MyRouteTimeout / sim.Millisecond),
		}
		r.sendControl(from, msg.Src, netsim.DefaultTTL, rrepBytes, rep)
		return
	}
	// Intermediate node with a fresh-enough valid route may answer (§6.6.2).
	if rtHops, rtSeq, rtSeqKnown, rtExpires, ok := r.table.replyInfo(msg.Dst); ok && rtSeqKnown &&
		(!msg.DstSeqKnown || int32(rtSeq-msg.DstSeq) >= 0) {
		r.table.addPrecursor(msg.Dst, from)
		rep := &RREP{
			HopCount: rtHops,
			Dst:      msg.Dst,
			DstSeq:   rtSeq,
			Src:      msg.Src,
			Lifetime: int64((rtExpires - r.node.Kernel().Now()) / sim.Millisecond),
		}
		r.sendControl(from, msg.Src, netsim.DefaultTTL, rrepBytes, rep)
		return
	}
	// Otherwise re-flood with decremented TTL.
	if p.TTL <= 1 {
		return
	}
	fwd := *msg
	fwd.HopCount = hops
	r.sendControl(netsim.BroadcastID, netsim.BroadcastID, p.TTL-1, rreqBytes, &fwd)
}

func (r *Router) handleRREP(p *netsim.Packet, msg *RREP, from netsim.NodeID) {
	me := r.node.ID()
	if msg.Hello {
		r.handleHello(msg, from)
		return
	}
	hops := msg.HopCount + 1
	lifetime := sim.Time(msg.Lifetime) * sim.Millisecond
	// Forward route to the replied destination (§6.7).
	r.table.update(msg.Dst, msg.DstSeq, true, hops, from, lifetime)
	r.table.update(from, 0, false, 1, from, r.cfg.ActiveRouteTimeout)

	if msg.Src == me {
		// Discovery complete: release buffered traffic.
		if d := r.discoveries[msg.Dst]; d != nil {
			r.flushBuffer(d)
		}
		return
	}
	// Relay toward the originator along the reverse path.
	revNext, _, ok := r.table.validNext(msg.Src)
	if !ok {
		return // reverse route evaporated; the originator will retry
	}
	r.table.addPrecursor(msg.Dst, revNext)
	if _, _, ok := r.table.validNext(msg.Dst); ok {
		r.table.addPrecursor(from, revNext)
	}
	fwd := *msg
	fwd.HopCount = hops
	r.sendControl(revNext, msg.Src, p.TTL-1, rrepBytes, &fwd)
}

func (r *Router) sendHello() {
	msg := &RREP{
		Dst:      r.node.ID(),
		DstSeq:   r.seq,
		Lifetime: int64((1 + sim.Time(r.cfg.AllowedHelloLoss)) * r.cfg.HelloInterval / sim.Millisecond),
		Hello:    true,
	}
	r.sendControl(netsim.BroadcastID, netsim.BroadcastID, 1, helloBytes, msg)
}

func (r *Router) handleHello(msg *RREP, from netsim.NodeID) {
	life := sim.Time(msg.Lifetime) * sim.Millisecond
	r.table.update(from, msg.DstSeq, true, 1, from, life)
	t := r.neighbors[from]
	if t == nil {
		t = sim.NewTimer(r.node.Kernel(), func() { r.neighborLost(from) })
		r.neighbors[from] = t
	}
	t.Reset(sim.Time(r.cfg.AllowedHelloLoss+1) * r.cfg.HelloInterval)
}

func (r *Router) neighborLost(neighbor netsim.NodeID) {
	delete(r.neighbors, neighbor)
	r.linkBroken(neighbor)
}

// LinkFailure implements netsim.Router (data-link feedback, §6.11 case i).
func (r *Router) LinkFailure(next netsim.NodeID, p *netsim.Packet) {
	if p.Kind == netsim.KindData {
		r.node.DropData(p, "aodv:link-failure")
	}
	r.linkBroken(next)
}

func (r *Router) linkBroken(neighbor netsim.NodeID) {
	r.rerrBuf = r.table.breakVia(neighbor, r.rerrBuf[:0])
	r.broadcastRERR(r.rerrBuf)
}

// broadcastRERR emits a RERR carrying the given unreachable set. The
// slice is copied at exact size onto the wire message — receivers retain
// RERR payloads past this call, so the reusable scratch must not escape.
func (r *Router) broadcastRERR(unreachable []UnreachableDst) {
	if len(unreachable) == 0 {
		return
	}
	wire := make([]UnreachableDst, len(unreachable))
	copy(wire, unreachable)
	msg := &RERR{Unreachable: wire}
	r.sendControl(netsim.BroadcastID, netsim.BroadcastID, 1, rerrSize(len(wire)), msg)
}

func (r *Router) handleRERR(msg *RERR, from netsim.NodeID) {
	r.rerrBuf = r.rerrBuf[:0]
	for _, u := range msg.Unreachable {
		if seq, propagate, matched := r.table.rerrApply(u.Dst, from, u.Seq); matched && propagate {
			r.rerrBuf = append(r.rerrBuf, UnreachableDst{Dst: u.Dst, Seq: seq})
		}
	}
	r.broadcastRERR(r.rerrBuf)
}
