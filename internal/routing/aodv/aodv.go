package aodv

import (
	"fmt"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// Config holds protocol timing parameters; zero fields take the RFC 3561
// defaults (with Table I's 1 s HELLO interval).
type Config struct {
	HelloInterval      sim.Time // default 1 s (Table I)
	AllowedHelloLoss   int      // default 2
	ActiveRouteTimeout sim.Time // default 3 s
	MyRouteTimeout     sim.Time // default 6 s
	NodeTraversalTime  sim.Time // default 40 ms
	NetDiameter        int      // default 35
	RREQRetries        int      // default 2
	// ExpandingRing enables the TTL expanding-ring search of RFC 3561 §6.4
	// (default true; the ablation bench disables it).
	ExpandingRing *bool
	// TTLStart, TTLIncrement, TTLThreshold tune the ring search.
	TTLStart, TTLIncrement, TTLThreshold int
	// BufferCap bounds the number of data packets queued per destination
	// while discovery runs (default 64, matching ns-2's sendBuffer).
	BufferCap int
}

func (c *Config) normalize() {
	if c.HelloInterval == 0 {
		c.HelloInterval = sim.Second
	}
	if c.AllowedHelloLoss == 0 {
		c.AllowedHelloLoss = 2
	}
	if c.ActiveRouteTimeout == 0 {
		c.ActiveRouteTimeout = 3 * sim.Second
	}
	if c.MyRouteTimeout == 0 {
		c.MyRouteTimeout = 2 * c.ActiveRouteTimeout
	}
	if c.NodeTraversalTime == 0 {
		c.NodeTraversalTime = 40 * sim.Millisecond
	}
	if c.NetDiameter == 0 {
		c.NetDiameter = 35
	}
	if c.RREQRetries == 0 {
		c.RREQRetries = 2
	}
	if c.ExpandingRing == nil {
		t := true
		c.ExpandingRing = &t
	}
	if c.TTLStart == 0 {
		c.TTLStart = 5
	}
	if c.TTLIncrement == 0 {
		c.TTLIncrement = 2
	}
	if c.TTLThreshold == 0 {
		c.TTLThreshold = 7
	}
	if c.BufferCap == 0 {
		c.BufferCap = 64
	}
}

func (c Config) netTraversalTime() sim.Time {
	return 2 * c.NodeTraversalTime * sim.Time(c.NetDiameter)
}

func (c Config) ringTraversalTime(ttl int) sim.Time {
	return 2 * c.NodeTraversalTime * sim.Time(ttl+2)
}

// discovery tracks one in-progress route discovery.
type discovery struct {
	dst     netsim.NodeID
	retries int
	ttl     int
	timer   *sim.Timer
	buffer  []*netsim.Packet
}

// seenKey deduplicates RREQ floods.
type seenKey struct {
	src netsim.NodeID
	id  uint32
}

// Router is one node's AODV instance.
type Router struct {
	cfg  Config
	node *netsim.Node

	table       *table
	seq         uint32
	rreqID      uint32
	seen        sim.ExpiringSet[seenKey]
	discoveries map[netsim.NodeID]*discovery
	neighbors   map[netsim.NodeID]*sim.Timer // hello liveness

	helloTicker *sim.Ticker
	purgeTicker *sim.Ticker

	ctrlPackets uint64
	ctrlBytes   uint64
}

var _ netsim.Router = (*Router)(nil)

// New builds an AODV router for node.
func New(node *netsim.Node, cfg Config) *Router {
	cfg.normalize()
	r := &Router{
		cfg:         cfg,
		node:        node,
		table:       newTable(node.Kernel()),
		discoveries: make(map[netsim.NodeID]*discovery),
		neighbors:   make(map[netsim.NodeID]*sim.Timer),
	}
	jitter := func() sim.Time {
		// ±10% emission jitter, standard to decorrelate HELLO storms.
		span := int64(cfg.HelloInterval / 5)
		return sim.Time(node.Rand().Int63n(span) - span/2)
	}
	r.helloTicker = sim.NewTicker(node.Kernel(), cfg.HelloInterval, jitter, r.sendHello)
	r.purgeTicker = sim.NewTicker(node.Kernel(), sim.Second, nil, r.purge)
	return r
}

// markSeen installs an RREQ dedup entry, expiring after PATH_DISCOVERY_TIME
// (RFC 3561 §10) through a lazy heap so the periodic purge costs
// O(expired). The seed implementation never retired these entries, which
// grew the table without bound over long runs.
func (r *Router) markSeen(key seenKey) {
	r.seen.Add(key, r.node.Kernel().Now()+2*r.cfg.netTraversalTime())
}

// SeenEntries reports the dedup-table size (for memory-stability tests).
func (r *Router) SeenEntries() int { return r.seen.Len() }

func (r *Router) purge() {
	r.table.purgeExpired()
	r.seen.Expire(r.node.Kernel().Now())
}

// Name implements netsim.Router.
func (r *Router) Name() string { return "aodv" }

// Start implements netsim.Router.
func (r *Router) Start() {
	r.helloTicker.Start()
	r.purgeTicker.Start()
}

// Stop implements netsim.Router.
func (r *Router) Stop() {
	r.helloTicker.Stop()
	r.purgeTicker.Stop()
	for _, d := range r.discoveries {
		d.timer.Stop()
	}
	for _, t := range r.neighbors {
		t.Stop()
	}
}

// ControlTraffic implements netsim.Router.
func (r *Router) ControlTraffic() (uint64, uint64) { return r.ctrlPackets, r.ctrlBytes }

// EachBuffered visits every data packet parked in route-discovery buffers —
// the router's share of the custody set the packet-conservation invariant
// audits.
func (r *Router) EachBuffered(f func(p *netsim.Packet)) {
	for _, d := range r.discoveries {
		for _, p := range d.buffer {
			f(p)
		}
	}
}

// Table exposes route lookups for tests: it reports the next hop and
// whether a valid route to dst exists.
func (r *Router) Table(dst netsim.NodeID) (next netsim.NodeID, hops int, ok bool) {
	rt := r.table.validRoute(dst)
	if rt == nil {
		return 0, 0, false
	}
	return rt.nextHop, rt.hops, true
}

// sendControl wraps an AODV message into a control packet and transmits it.
func (r *Router) sendControl(next netsim.NodeID, dst netsim.NodeID, ttl, size int, msg any) {
	p := &netsim.Packet{
		UID:       0, // control packets are not tracked by metrics UIDs
		Kind:      netsim.KindControl,
		Src:       r.node.ID(),
		Dst:       dst,
		Port:      netsim.PortRouting,
		TTL:       ttl,
		Size:      size + netsim.IPHeaderBytes,
		Payload:   msg,
		CreatedAt: r.node.Kernel().Now(),
	}
	r.ctrlPackets++
	r.ctrlBytes += uint64(p.Size)
	r.node.SendFrame(next, p)
}

// Origin implements netsim.Router.
func (r *Router) Origin(p *netsim.Packet) {
	if rt := r.table.validRoute(p.Dst); rt != nil {
		r.table.refresh(p.Dst, r.cfg.ActiveRouteTimeout)
		r.table.refresh(rt.nextHop, r.cfg.ActiveRouteTimeout)
		r.node.SendFrame(rt.nextHop, p)
		return
	}
	r.bufferAndDiscover(p)
}

func (r *Router) bufferAndDiscover(p *netsim.Packet) {
	d := r.discoveries[p.Dst]
	if d != nil {
		if len(d.buffer) >= r.cfg.BufferCap {
			r.node.DropData(p, "aodv:buffer-full")
			return
		}
		d.buffer = append(d.buffer, p)
		return
	}
	d = &discovery{dst: p.Dst, buffer: []*netsim.Packet{p}}
	d.timer = sim.NewTimer(r.node.Kernel(), func() { r.discoveryTimeout(d) })
	r.discoveries[p.Dst] = d
	r.sendRREQ(d)
}

func (r *Router) sendRREQ(d *discovery) {
	r.seq++ // RFC 3561 §6.1: increment own seq before a RREQ
	r.rreqID++
	ttl := r.cfg.NetDiameter
	if *r.cfg.ExpandingRing {
		switch {
		case d.ttl == 0:
			ttl = r.cfg.TTLStart
		case d.ttl+r.cfg.TTLIncrement <= r.cfg.TTLThreshold:
			ttl = d.ttl + r.cfg.TTLIncrement
		default:
			ttl = r.cfg.NetDiameter
		}
	}
	d.ttl = ttl
	var dstSeq uint32
	dstSeqKnown := false
	if rt := r.table.lookup(d.dst); rt != nil && rt.seqKnown {
		dstSeq = rt.seq
		dstSeqKnown = true
	}
	msg := &RREQ{
		ID:          r.rreqID,
		Dst:         d.dst,
		DstSeq:      dstSeq,
		DstSeqKnown: dstSeqKnown,
		Src:         r.node.ID(),
		SrcSeq:      r.seq,
	}
	r.markSeen(seenKey{src: r.node.ID(), id: msg.ID})
	r.sendControl(netsim.BroadcastID, netsim.BroadcastID, ttl, rreqBytes, msg)
	d.timer.Reset(r.cfg.ringTraversalTime(ttl))
}

func (r *Router) discoveryTimeout(d *discovery) {
	if r.table.validRoute(d.dst) != nil {
		r.flushBuffer(d)
		return
	}
	d.retries++
	maxTries := r.cfg.RREQRetries
	if d.retries > maxTries {
		for _, p := range d.buffer {
			r.node.DropData(p, "aodv:no-route")
		}
		delete(r.discoveries, d.dst)
		return
	}
	r.sendRREQ(d)
}

func (r *Router) flushBuffer(d *discovery) {
	delete(r.discoveries, d.dst)
	d.timer.Stop()
	for _, p := range d.buffer {
		r.Origin(p)
	}
}

// Receive implements netsim.Router.
func (r *Router) Receive(p *netsim.Packet, from netsim.NodeID) {
	if p.Kind == netsim.KindControl {
		switch msg := p.Payload.(type) {
		case *RREQ:
			r.handleRREQ(p, msg, from)
		case *RREP:
			r.handleRREP(p, msg, from)
		case *RERR:
			r.handleRERR(msg, from)
		default:
			panic(fmt.Sprintf("aodv: unexpected control payload %T", p.Payload))
		}
		return
	}
	r.forwardData(p, from)
}

func (r *Router) forwardData(p *netsim.Packet, from netsim.NodeID) {
	p.TTL--
	if p.TTL <= 0 {
		r.node.DropData(p, "aodv:ttl")
		return
	}
	rt := r.table.validRoute(p.Dst)
	if rt == nil {
		// RFC 3561 §6.11 case (ii): data for a destination we cannot reach.
		r.node.DropData(p, "aodv:no-forward-route")
		seq := uint32(0)
		if old := r.table.lookup(p.Dst); old != nil {
			seq = old.seq
		}
		r.broadcastRERR([]UnreachableDst{{Dst: p.Dst, Seq: seq}})
		return
	}
	// Active data refreshes source, destination and next-hop routes.
	r.table.refresh(p.Dst, r.cfg.ActiveRouteTimeout)
	r.table.refresh(rt.nextHop, r.cfg.ActiveRouteTimeout)
	r.table.refresh(p.Src, r.cfg.ActiveRouteTimeout)
	r.table.refresh(from, r.cfg.ActiveRouteTimeout)
	r.node.NoteForward(p)
	r.node.SendFrame(rt.nextHop, p)
}

func (r *Router) handleRREQ(p *netsim.Packet, msg *RREQ, from netsim.NodeID) {
	me := r.node.ID()
	if msg.Src == me {
		return // our own flood echoed back
	}
	key := seenKey{src: msg.Src, id: msg.ID}
	if r.seen.Contains(key) {
		return
	}
	r.markSeen(key)

	// Reverse route to the previous hop and to the originator (§6.5).
	r.table.update(from, 0, false, 1, from, r.cfg.ActiveRouteTimeout)
	hops := msg.HopCount + 1
	minLifetime := 2*r.cfg.netTraversalTime() - sim.Time(2*hops)*r.cfg.NodeTraversalTime
	rev := r.table.update(msg.Src, msg.SrcSeq, true, hops, from, minLifetime)
	_ = rev

	if msg.Dst == me {
		// RFC 3561 §6.6.1: destination replies, seq = max(own, RREQ's).
		if msg.DstSeqKnown && int32(msg.DstSeq-r.seq) > 0 {
			r.seq = msg.DstSeq
		}
		rep := &RREP{
			Dst:      me,
			DstSeq:   r.seq,
			Src:      msg.Src,
			Lifetime: int64(r.cfg.MyRouteTimeout / sim.Millisecond),
		}
		r.sendControl(from, msg.Src, netsim.DefaultTTL, rrepBytes, rep)
		return
	}
	// Intermediate node with a fresh-enough valid route may answer (§6.6.2).
	if rt := r.table.validRoute(msg.Dst); rt != nil && rt.seqKnown &&
		(!msg.DstSeqKnown || int32(rt.seq-msg.DstSeq) >= 0) {
		rt.addPrecursor(from)
		rep := &RREP{
			HopCount: rt.hops,
			Dst:      msg.Dst,
			DstSeq:   rt.seq,
			Src:      msg.Src,
			Lifetime: int64((rt.expiresAt - r.node.Kernel().Now()) / sim.Millisecond),
		}
		r.sendControl(from, msg.Src, netsim.DefaultTTL, rrepBytes, rep)
		return
	}
	// Otherwise re-flood with decremented TTL.
	if p.TTL <= 1 {
		return
	}
	fwd := *msg
	fwd.HopCount = hops
	r.sendControl(netsim.BroadcastID, netsim.BroadcastID, p.TTL-1, rreqBytes, &fwd)
}

func (r *Router) handleRREP(p *netsim.Packet, msg *RREP, from netsim.NodeID) {
	me := r.node.ID()
	if msg.Hello {
		r.handleHello(msg, from)
		return
	}
	hops := msg.HopCount + 1
	lifetime := sim.Time(msg.Lifetime) * sim.Millisecond
	// Forward route to the replied destination (§6.7).
	fwdRoute := r.table.update(msg.Dst, msg.DstSeq, true, hops, from, lifetime)
	r.table.update(from, 0, false, 1, from, r.cfg.ActiveRouteTimeout)

	if msg.Src == me {
		// Discovery complete: release buffered traffic.
		if d := r.discoveries[msg.Dst]; d != nil {
			r.flushBuffer(d)
		}
		return
	}
	// Relay toward the originator along the reverse path.
	rev := r.table.validRoute(msg.Src)
	if rev == nil {
		return // reverse route evaporated; the originator will retry
	}
	fwdRoute.addPrecursor(rev.nextHop)
	if next := r.table.validRoute(msg.Dst); next != nil {
		if back := r.table.lookup(from); back != nil {
			back.addPrecursor(rev.nextHop)
		}
	}
	fwd := *msg
	fwd.HopCount = hops
	r.sendControl(rev.nextHop, msg.Src, p.TTL-1, rrepBytes, &fwd)
}

func (r *Router) sendHello() {
	msg := &RREP{
		Dst:      r.node.ID(),
		DstSeq:   r.seq,
		Lifetime: int64((1 + sim.Time(r.cfg.AllowedHelloLoss)) * r.cfg.HelloInterval / sim.Millisecond),
		Hello:    true,
	}
	r.sendControl(netsim.BroadcastID, netsim.BroadcastID, 1, helloBytes, msg)
}

func (r *Router) handleHello(msg *RREP, from netsim.NodeID) {
	life := sim.Time(msg.Lifetime) * sim.Millisecond
	r.table.update(from, msg.DstSeq, true, 1, from, life)
	t := r.neighbors[from]
	if t == nil {
		t = sim.NewTimer(r.node.Kernel(), func() { r.neighborLost(from) })
		r.neighbors[from] = t
	}
	t.Reset(sim.Time(r.cfg.AllowedHelloLoss+1) * r.cfg.HelloInterval)
}

func (r *Router) neighborLost(neighbor netsim.NodeID) {
	delete(r.neighbors, neighbor)
	r.linkBroken(neighbor)
}

// LinkFailure implements netsim.Router (data-link feedback, §6.11 case i).
func (r *Router) LinkFailure(next netsim.NodeID, p *netsim.Packet) {
	if p.Kind == netsim.KindData {
		r.node.DropData(p, "aodv:link-failure")
	}
	r.linkBroken(next)
}

func (r *Router) linkBroken(neighbor netsim.NodeID) {
	broken := r.table.routesVia(neighbor)
	if len(broken) == 0 {
		return
	}
	var unreachable []UnreachableDst
	for _, rt := range broken {
		r.table.invalidate(rt.dst)
		unreachable = append(unreachable, UnreachableDst{Dst: rt.dst, Seq: rt.seq})
	}
	r.broadcastRERR(unreachable)
}

func (r *Router) broadcastRERR(unreachable []UnreachableDst) {
	if len(unreachable) == 0 {
		return
	}
	msg := &RERR{Unreachable: unreachable}
	r.sendControl(netsim.BroadcastID, netsim.BroadcastID, 1, rerrSize(len(unreachable)), msg)
}

func (r *Router) handleRERR(msg *RERR, from netsim.NodeID) {
	var propagate []UnreachableDst
	for _, u := range msg.Unreachable {
		rt := r.table.lookup(u.Dst)
		if rt == nil || rt.state != routeValid || rt.nextHop != from {
			continue
		}
		rt.state = routeInvalid
		if int32(u.Seq-rt.seq) > 0 {
			rt.seq = u.Seq
		}
		if len(rt.precursors) > 0 {
			propagate = append(propagate, UnreachableDst{Dst: u.Dst, Seq: rt.seq})
		}
	}
	r.broadcastRERR(propagate)
}
